// Chaos-injection property harness (DESIGN.md §8).
//
// The engine's robustness contract against malformed telemetry, asserted
// over thousands of randomized corruption patterns from eval::apply_chaos:
//  * a diagnosis over a corrupted db NEVER crashes and NEVER emits a
//    non-finite score — defects degrade to documented fallbacks;
//  * clean inputs pass through every hardening guard bit-for-bit unchanged,
//    at any thread count;
//  * corruption itself is deterministic: one seed, one fault pattern, one
//    diagnosis result — a failing chaos ticket reproduces from its seed.
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/batch.h"
#include "src/core/murphy.h"
#include "src/eval/chaos.h"
#include "src/obs/metrics.h"

namespace murphy {
namespace {

using telemetry::EntityType;
using telemetry::MonitoringDb;
using telemetry::RelationKind;

constexpr std::size_t kSlices = 96;

// A small two-tier service mesh: gateway -> {svc0, svc1, svc2} -> backing
// {db0, db1}, each entity exporting two correlated metrics. Big enough for
// multi-hop graphs and cross-entity features, small enough for thousands of
// diagnoses under sanitizers.
struct ChaosEnv {
  MonitoringDb db;
  std::vector<EntityId> entities;
  EntityId gateway;
  MetricKindId latency;
  MetricKindId load;
};

ChaosEnv make_env() {
  ChaosEnv e;
  e.gateway = e.db.add_entity(EntityType::kService, "gateway");
  std::vector<EntityId> svcs, backs;
  for (int i = 0; i < 3; ++i)
    svcs.push_back(
        e.db.add_entity(EntityType::kService, "svc" + std::to_string(i)));
  for (int i = 0; i < 2; ++i)
    backs.push_back(
        e.db.add_entity(EntityType::kVm, "db" + std::to_string(i)));
  for (const EntityId s : svcs) {
    e.db.add_association(e.gateway, s, RelationKind::kGeneric);
    for (const EntityId b : backs)
      e.db.add_association(s, b, RelationKind::kGeneric);
  }
  e.entities.push_back(e.gateway);
  e.entities.insert(e.entities.end(), svcs.begin(), svcs.end());
  e.entities.insert(e.entities.end(), backs.begin(), backs.end());

  e.latency = e.db.catalog().intern("latency_ms");
  e.load = e.db.catalog().intern("load");
  e.db.metrics().set_axis(TimeAxis(0.0, 10.0, kSlices));

  // backs drive svcs drive the gateway; a late surge at db0 propagates up.
  Rng rng(4242);
  std::vector<std::vector<double>> loads(e.entities.size(),
                                         std::vector<double>(kSlices));
  for (std::size_t t = 0; t < kSlices; ++t) {
    const double surge = t + 12 >= kSlices ? 9.0 : 0.0;
    for (std::size_t b = 0; b < backs.size(); ++b)
      loads[4 + b][t] = 5.0 + 2.0 * std::sin(0.1 * t + b) +
                        rng.normal(0.0, 0.3) + (b == 0 ? surge : 0.0);
    for (std::size_t s = 0; s < svcs.size(); ++s)
      loads[1 + s][t] = 0.7 * loads[4][t] + 0.5 * loads[5][t] +
                        rng.normal(0.0, 0.3);
    loads[0][t] =
        0.5 * (loads[1][t] + loads[2][t] + loads[3][t]) + rng.normal(0.0, 0.3);
  }
  for (std::size_t i = 0; i < e.entities.size(); ++i) {
    e.db.metrics().put(e.entities[i], e.load, loads[i]);
    std::vector<double> lat(kSlices);
    for (std::size_t t = 0; t < kSlices; ++t)
      lat[t] = 3.0 + 1.4 * loads[i][t] + rng.normal(0.0, 0.2);
    e.db.metrics().put(e.entities[i], e.latency, lat);
  }
  return e;
}

core::MurphyOptions tiny_opts(std::size_t num_threads = 1) {
  core::MurphyOptions opts;
  opts.sampler.num_samples = 12;
  opts.sampler.gibbs_rounds = 1;
  opts.num_threads = num_threads;
  return opts;
}

core::DiagnosisResult diagnose(const MonitoringDb& db, EntityId symptom,
                               TimeIndex now, TimeIndex train_begin,
                               TimeIndex train_end,
                               std::size_t num_threads = 1) {
  core::MurphyDiagnoser murphy(tiny_opts(num_threads));
  core::DiagnosisRequest req;
  req.db = &db;
  req.symptom_entity = symptom;
  req.symptom_metric = "latency_ms";
  req.now = now;
  req.train_begin = train_begin;
  req.train_end = train_end;
  return murphy.diagnose(req);
}

void expect_all_finite(const core::DiagnosisResult& r, std::uint64_t seed) {
  for (std::size_t i = 0; i < r.causes.size(); ++i) {
    EXPECT_TRUE(std::isfinite(r.causes[i].score))
        << "non-finite score at rank " << i << " for chaos seed " << seed;
  }
  EXPECT_EQ(r.explanations.size(), r.causes.size()) << "chaos seed " << seed;
}

void expect_bitwise_equal(const core::DiagnosisResult& x,
                          const core::DiagnosisResult& y) {
  ASSERT_EQ(x.causes.size(), y.causes.size());
  for (std::size_t i = 0; i < x.causes.size(); ++i) {
    EXPECT_EQ(x.causes[i].entity, y.causes[i].entity) << "rank " << i;
    EXPECT_EQ(x.causes[i].score, y.causes[i].score) << "rank " << i;
  }
  ASSERT_EQ(x.explanations.size(), y.explanations.size());
  for (std::size_t i = 0; i < x.explanations.size(); ++i)
    EXPECT_EQ(x.explanations[i], y.explanations[i]) << "rank " << i;
}

// ---------- the tentpole property: 1000+ corrupted tickets ----------------

TEST(Chaos, CorruptedTicketsNeverCrashOrEmitNonFinite) {
  constexpr std::uint64_t kTickets = 1000;
  const ChaosEnv base = make_env();
  // The symptom series stays clean so every ticket remains a diagnosable
  // incident; everything else is fair game.
  const std::vector<MetricRef> protect{{base.gateway, base.latency}};

  std::size_t corrupted_total = 0;
  for (std::uint64_t seed = 1; seed <= kTickets; ++seed) {
    ChaosEnv env = base;  // fresh copy; DbUid gives it a fresh identity
    eval::ChaosOptions copts;
    copts.seed = seed;
    copts.reingest = (seed % 3 == 0);  // exercise ingest AND read-path guards
    const eval::ChaosReport report = eval::apply_chaos(env.db, copts, protect);
    corrupted_total += report.total();

    // Window shapes cycle through the degenerate corners: the healthy
    // window, an empty one, a single slice, an inverted pair, and a `now`
    // beyond the time axis.
    TimeIndex now = kSlices - 1, begin = 0, end = kSlices;
    switch (seed % 5) {
      case 1: begin = end = 50; break;                 // empty
      case 2: begin = 50; end = 51; break;             // single slice
      case 3: begin = 60; end = 40; break;             // inverted
      case 4: now = kSlices + 37; end = kSlices; break;  // now off the axis
      default: break;
    }
    const auto result = diagnose(env.db, env.gateway, now, begin, end);
    expect_all_finite(result, seed);
  }
  // The mix must actually bite: on average more than one fault per ticket.
  EXPECT_GT(corrupted_total, kTickets);
}

// ---------- clean inputs: bit-for-bit through every guard ------------------

TEST(Chaos, CleanInputsBitwiseUnchangedAtAnyThreadCount) {
  const ChaosEnv env = make_env();
  const auto serial =
      diagnose(env.db, env.gateway, kSlices - 1, 0, kSlices, 1);
  ASSERT_FALSE(serial.causes.empty());
  expect_all_finite(serial, 0);

  // A zero-probability chaos pass must not perturb a single bit either.
  ChaosEnv zeroed = make_env();
  eval::ChaosOptions none;
  none.p_nan_slice = none.p_inf_slice = none.p_denormal_slice = 0.0;
  none.p_constant_column = none.p_near_constant_column = 0.0;
  none.p_huge_scale_column = none.p_drop_history = 0.0;
  none.p_duplicate_run = none.p_swap_slices = 0.0;
  none.self_loops = none.orphan_edges = none.strip_entities = 0;
  const eval::ChaosReport report = eval::apply_chaos(zeroed.db, none);
  EXPECT_EQ(report.total(), 0u);
  expect_bitwise_equal(
      serial, diagnose(zeroed.db, zeroed.gateway, kSlices - 1, 0, kSlices, 1));

  for (const std::size_t threads : {2u, 8u}) {
    SCOPED_TRACE("num_threads=" + std::to_string(threads));
    expect_bitwise_equal(
        serial,
        diagnose(env.db, env.gateway, kSlices - 1, 0, kSlices, threads));
  }
}

TEST(Chaos, CorruptedInputsStayDeterministicAcrossThreadCounts) {
  // Determinism survives corruption: the degraded result is still bitwise
  // identical at every thread count (the guards never branch on scheduling).
  ChaosEnv env = make_env();
  eval::ChaosOptions copts;
  copts.seed = 77;
  eval::apply_chaos(env.db, copts, {});
  const auto serial = diagnose(env.db, env.gateway, kSlices - 1, 0, kSlices, 1);
  expect_all_finite(serial, 77);
  for (const std::size_t threads : {2u, 8u}) {
    SCOPED_TRACE("num_threads=" + std::to_string(threads));
    expect_bitwise_equal(serial, diagnose(env.db, env.gateway, kSlices - 1, 0,
                                          kSlices, threads));
  }
}

// ---------- the injector itself -------------------------------------------

TEST(Chaos, SameSeedSameFaultsSameDiagnosis) {
  ChaosEnv a = make_env();
  ChaosEnv b = make_env();
  eval::ChaosOptions copts;
  copts.seed = 123;
  const auto ra = eval::apply_chaos(a.db, copts, {});
  const auto rb = eval::apply_chaos(b.db, copts, {});
  EXPECT_EQ(ra.nan_slices, rb.nan_slices);
  EXPECT_EQ(ra.inf_slices, rb.inf_slices);
  EXPECT_EQ(ra.constant_columns, rb.constant_columns);
  EXPECT_EQ(ra.swapped_slices, rb.swapped_slices);
  EXPECT_EQ(ra.stripped_entities, rb.stripped_entities);
  EXPECT_EQ(ra.total(), rb.total());
  EXPECT_GT(ra.total(), 0u);
  expect_bitwise_equal(
      diagnose(a.db, a.gateway, kSlices - 1, 0, kSlices),
      diagnose(b.db, b.gateway, kSlices - 1, 0, kSlices));
}

TEST(Chaos, ProtectedSeriesAreNeverTouched) {
  const ChaosEnv base = make_env();
  ChaosEnv env = base;
  const std::vector<MetricRef> protect{{base.gateway, base.latency}};
  eval::ChaosOptions copts;
  copts.seed = 5;
  copts.p_nan_slice = copts.p_constant_column = 1.0;  // corrupt everything...
  copts.strip_entities = 3;
  eval::apply_chaos(env.db, copts, protect);
  const auto* before = base.db.metrics().find(base.gateway, base.latency);
  const auto* after = env.db.metrics().find(env.gateway, env.latency);
  ASSERT_NE(before, nullptr);
  ASSERT_NE(after, nullptr);  // ...except the protected symptom series
  ASSERT_EQ(before->size(), after->size());
  for (TimeIndex t = 0; t < before->size(); ++t)
    EXPECT_EQ(before->value(t), after->value(t)) << "slice " << t;
}

TEST(Chaos, StructuralFaultsAreDroppedAtIngestAndCounted) {
  ChaosEnv env = make_env();
  const std::size_t edges_before = env.db.association_count();
  const auto selfloops_before =
      obs::global_metrics().counter("ingest.selfloop_edges_dropped")->value();
  const auto orphans_before =
      obs::global_metrics().counter("ingest.orphan_edges_dropped")->value();

  eval::ChaosOptions copts;
  copts.seed = 9;
  copts.p_nan_slice = copts.p_inf_slice = copts.p_denormal_slice = 0.0;
  copts.p_constant_column = copts.p_near_constant_column = 0.0;
  copts.p_huge_scale_column = copts.p_drop_history = 0.0;
  copts.p_duplicate_run = copts.p_swap_slices = 0.0;
  copts.strip_entities = 0;
  copts.self_loops = 4;
  copts.orphan_edges = 3;
  const auto report = eval::apply_chaos(env.db, copts, {});

  EXPECT_EQ(report.self_loops_offered, 4u);
  EXPECT_EQ(report.orphan_edges_offered, 3u);
  // Dropped at ingest: the association store never grew...
  EXPECT_EQ(env.db.association_count(), edges_before);
  // ...and the drops are observable.
  EXPECT_EQ(obs::global_metrics()
                .counter("ingest.selfloop_edges_dropped")
                ->value(),
            selfloops_before + 4);
  EXPECT_EQ(
      obs::global_metrics().counter("ingest.orphan_edges_dropped")->value(),
      orphans_before + 3);
}

TEST(Chaos, ValueDefectsSurfaceInCounters) {
  ChaosEnv env = make_env();
  const auto reads_before =
      obs::global_metrics().counter("ingest.nonfinite_reads")->value();
  const auto cells_before =
      obs::global_metrics().counter("train.nonfinite_cells")->value();

  eval::ChaosOptions copts;
  copts.seed = 31;
  copts.p_nan_slice = copts.p_inf_slice = 1.0;  // raw writes, no reingest
  const auto report = eval::apply_chaos(env.db, copts, {});
  ASSERT_GT(report.nan_slices + report.inf_slices, 0u);

  const auto result =
      diagnose(env.db, env.gateway, kSlices - 1, 0, kSlices, 1);
  expect_all_finite(result, 31);
  // Raw non-finite payloads were seen and degraded somewhere observable:
  // either the read path (value_or) or a kernel boundary.
  const auto reads_after =
      obs::global_metrics().counter("ingest.nonfinite_reads")->value();
  const auto cells_after =
      obs::global_metrics().counter("train.nonfinite_cells")->value();
  EXPECT_GT(reads_after + cells_after, reads_before + cells_before);
}

TEST(Chaos, ReingestedCorruptionIsAbsorbedAtIngest) {
  ChaosEnv env = make_env();
  const auto dropped_before =
      obs::global_metrics().counter("ingest.nonfinite_dropped")->value();
  eval::ChaosOptions copts;
  copts.seed = 13;
  copts.p_nan_slice = copts.p_inf_slice = 1.0;
  copts.reingest = true;
  eval::apply_chaos(env.db, copts, {});
  EXPECT_GT(
      obs::global_metrics().counter("ingest.nonfinite_dropped")->value(),
      dropped_before);
  // Post-ingest the store holds no valid non-finite slice at all.
  for (const EntityId e : env.db.all_entities()) {
    for (const MetricKindId k : env.db.metrics().kinds_of(e)) {
      const auto* ts = env.db.metrics().find(e, k);
      ASSERT_NE(ts, nullptr);
      for (TimeIndex t = 0; t < ts->size(); ++t) {
        if (ts->is_valid(t)) {
          EXPECT_TRUE(std::isfinite(ts->value(t)))
              << "entity " << e.value() << " slice " << t;
        }
      }
    }
  }
  expect_all_finite(diagnose(env.db, env.gateway, kSlices - 1, 0, kSlices, 1),
                    13);
}

// ---------- batch + shared caches under chaos ------------------------------

TEST(Chaos, BatchDiagnosisWithSharedCachesSurvivesCorruption) {
  ChaosEnv env = make_env();
  eval::ChaosOptions copts;
  copts.seed = 55;
  eval::apply_chaos(env.db, copts, {});

  core::BatchOptions bopts;
  bopts.murphy = tiny_opts(1);
  core::BatchDiagnoser batch(bopts);
  const std::vector<core::Symptom> symptoms{
      core::Symptom{env.gateway, "latency_ms", 0.0, 5.0},
      core::Symptom{env.entities[1], "latency_ms", 0.0, 4.0},
      core::Symptom{env.entities[4], "latency_ms", 0.0, 3.0},
  };
  const auto result =
      batch.diagnose_symptoms(env.db, symptoms, kSlices - 1, 0, kSlices);
  for (const auto& cause : result.merged)
    EXPECT_TRUE(std::isfinite(cause.score));
  for (const auto& per : result.per_symptom) expect_all_finite(per, 55);
}

}  // namespace
}  // namespace murphy
