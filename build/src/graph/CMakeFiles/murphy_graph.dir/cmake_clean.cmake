file(REMOVE_RECURSE
  "CMakeFiles/murphy_graph.dir/relationship_graph.cpp.o"
  "CMakeFiles/murphy_graph.dir/relationship_graph.cpp.o.d"
  "libmurphy_graph.a"
  "libmurphy_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/murphy_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
