file(REMOVE_RECURSE
  "CMakeFiles/murphy_enterprise.dir/dynamics.cpp.o"
  "CMakeFiles/murphy_enterprise.dir/dynamics.cpp.o.d"
  "CMakeFiles/murphy_enterprise.dir/incidents.cpp.o"
  "CMakeFiles/murphy_enterprise.dir/incidents.cpp.o.d"
  "CMakeFiles/murphy_enterprise.dir/metrics_dataset.cpp.o"
  "CMakeFiles/murphy_enterprise.dir/metrics_dataset.cpp.o.d"
  "CMakeFiles/murphy_enterprise.dir/topology.cpp.o"
  "CMakeFiles/murphy_enterprise.dir/topology.cpp.o.d"
  "libmurphy_enterprise.a"
  "libmurphy_enterprise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/murphy_enterprise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
