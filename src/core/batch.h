// Multi-symptom diagnosis (§3 / Appendix A.1).
//
// A real ticket maps to several problematic symptoms; Murphy runs its
// inference separately per symptom and the operator wants one consolidated
// list. BatchDiagnosis runs the symptom finder over an affected application
// (or an explicit symptom list), diagnoses each symptom, and merges the
// per-symptom rankings: an entity implicated for several independent
// symptoms is a stronger suspect than one implicated once.
#pragma once

#include <map>

#include "src/core/murphy.h"
#include "src/core/symptom_finder.h"

namespace murphy::core {

struct BatchOptions {
  MurphyOptions murphy;
  SymptomFinderOptions finder;
  // Per-symptom candidates below this rank do not contribute to the merge.
  std::size_t per_symptom_top_k = 10;
};

struct BatchResult {
  std::vector<Symptom> symptoms;                // what was diagnosed
  std::vector<DiagnosisResult> per_symptom;     // parallel to `symptoms`
  // Merged ranking: score = sum over symptoms of 1/rank (reciprocal-rank
  // fusion), so breadth of implication beats a single high placement.
  std::vector<RankedRootCause> merged;
};

class BatchDiagnoser {
 public:
  explicit BatchDiagnoser(BatchOptions opts = {});

  // Finds symptoms of `app` at `now` and diagnoses each.
  [[nodiscard]] BatchResult diagnose_app(const telemetry::MonitoringDb& db,
                                         AppId app, TimeIndex now,
                                         TimeIndex train_begin,
                                         TimeIndex train_end);

  // Diagnoses an explicit symptom list.
  [[nodiscard]] BatchResult diagnose_symptoms(
      const telemetry::MonitoringDb& db, std::vector<Symptom> symptoms,
      TimeIndex now, TimeIndex train_begin, TimeIndex train_end);

 private:
  BatchOptions opts_;
};

}  // namespace murphy::core
