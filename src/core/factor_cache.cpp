#include "src/core/factor_cache.h"

namespace murphy::core {

std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) {
  std::uint64_t z = h ^ (v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2));
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

void FactorCache::reset(std::uint64_t fingerprint) {
  std::unique_lock lock(mu_);
  if (fingerprint == fingerprint_ && !entries_.empty()) return;
  entries_.clear();
  fingerprint_ = fingerprint;
}

const CachedFactor& FactorCache::get_or_train(std::uint64_t key,
                                              const Trainer& trainer,
                                              bool* trained) {
  Entry* entry = nullptr;
  {
    std::shared_lock lock(mu_);
    if (const auto it = entries_.find(key); it != entries_.end())
      entry = it->second.get();
  }
  if (entry == nullptr) {
    std::unique_lock lock(mu_);
    auto& slot = entries_[key];
    if (slot == nullptr) slot = std::make_unique<Entry>();
    entry = slot.get();
  }
  bool built = false;
  std::call_once(entry->once, [&] {
    entry->factor = trainer();
    built = true;
  });
  (built ? misses_ : hits_).fetch_add(1, std::memory_order_relaxed);
  if (trained != nullptr) *trained = built;
  return entry->factor;
}

std::uint64_t FactorCache::hits() const {
  return hits_.load(std::memory_order_relaxed);
}

std::uint64_t FactorCache::misses() const {
  return misses_.load(std::memory_order_relaxed);
}

std::size_t FactorCache::size() const {
  std::shared_lock lock(mu_);
  return entries_.size();
}

void FactorCache::prune(std::size_t max_entries) {
  std::unique_lock lock(mu_);
  if (entries_.size() > max_entries) entries_.clear();
}

}  // namespace murphy::core
