# Empty compiler generated dependencies file for murphy_core.
# This may be replaced when dependencies are built.
