# Empty dependencies file for murphy_enterprise.
# This may be replaced when dependencies are built.
