// Anomaly scoring and candidate search.
//
// Anomaly score (§4.2, "Ranking the root causes"): how many historical
// standard deviations an entity's most anomalous current metric is from its
// historical mean. Candidate search: breadth-first exploration from the
// symptom entity through entities whose metrics look suspicious, pruning the
// rest — this bounds the root-cause search space and, per the paper, is
// shared with the baselines for fairness.
#pragma once

#include <vector>

#include "src/core/factor_model.h"
#include "src/core/metric_space.h"
#include "src/core/thresholds.h"

namespace murphy::core {

// |z-score| of variable v's current value vs its training-window marginal.
[[nodiscard]] double variable_anomaly(const FactorSet& factors, VarIndex v,
                                      double current);

// Max anomaly across the node's metrics; also reports which variable.
struct NodeAnomaly {
  double score = 0.0;
  // Ranking score: z * (1 + |x - center| / max(|center|, 1)). The extra
  // relative-excursion factor discounts chronically jittery or tiny-baseline
  // metrics whose MAD-based z explodes, so a client whose request rate rose
  // 14x outranks a container whose CPU rose 3x even when both are >20 sigma.
  double rank_score = 0.0;
  VarIndex driver = 0;  // the most anomalous variable of the node
  bool high = true;     // driver is abnormally high (vs low)
};
[[nodiscard]] NodeAnomaly node_anomaly(const FactorSet& factors,
                                       const MetricSpace& space,
                                       graph::NodeIndex node,
                                       std::span<const double> state);

struct CandidateSearchOptions {
  Thresholds thresholds;
  // Alternative criterion for metrics that collapse rather than spike (a
  // crashed VM's CPU never crosses a "too high" threshold): a metric is
  // suspicious when |z| exceeds this.
  double z_min = 2.0;
  // Hop budget from the symptom entity (expansion never crosses a
  // non-suspicious entity).
  std::size_t max_hops = 6;
  std::size_t max_candidates = 200;
};

// The pruned candidate set (§4.2): BFS from `symptom`, expanding only
// through entities with at least one suspicious metric. The symptom node
// itself is always included and is a legal candidate (self-caused
// incidents exist, e.g. a stuck process on the symptomatic VM).
[[nodiscard]] std::vector<graph::NodeIndex> candidate_search(
    const telemetry::MonitoringDb& db, const graph::RelationshipGraph& graph,
    const MetricSpace& space, const FactorSet& factors,
    std::span<const double> state, graph::NodeIndex symptom,
    const CandidateSearchOptions& opts);

}  // namespace murphy::core
