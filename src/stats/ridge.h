// Ridge regression — the metric-prediction model Murphy ships with.
//
// Closed-form solve of (X^T X + lambda I) w = X^T y on standardized features,
// with an unpenalized intercept. Robust to collinear and constant columns,
// and well-behaved with the few hundred training points available from one
// week of telemetry.
#pragma once

#include "src/stats/predictor.h"

namespace murphy::stats {

class RidgeRegression final : public Predictor {
 public:
  explicit RidgeRegression(double l2 = 1.0);

  void fit(const Matrix& x, const Vector& y) override;

  // Weighted fit: row r contributes with weight w[r] >= 0 to the loss (and
  // to the standardization statistics). Enables recency-weighted "offline +
  // online" training (§7 of the paper, future work): long histories inform
  // the model without drowning the freshest in-incident points.
  void fit_weighted(const Matrix& x, const Vector& y, const Vector& weights);
  [[nodiscard]] double predict(std::span<const double> x) const override;
  [[nodiscard]] double residual_sigma() const override { return sigma_; }
  [[nodiscard]] ModelKind kind() const override { return ModelKind::kRidge; }

  // Weights in the standardized feature space (diagnostic / tests).
  [[nodiscard]] const Vector& standardized_weights() const { return w_; }

  // Standardization parameters and intercept, exposed so the sampler can
  // flatten fitted ridge models into a branch-free kernel:
  //   predict(x) = y_mean + sum_j w[j] * (x[j] - mean[j]) / scale[j].
  [[nodiscard]] const Vector& feature_means() const { return feat_mean_; }
  [[nodiscard]] const Vector& feature_scales() const { return feat_scale_; }
  [[nodiscard]] double intercept() const { return y_mean_; }

 private:
  double l2_;
  Vector w_;            // weights over standardized features
  Vector feat_mean_;    // per-feature standardization
  Vector feat_scale_;
  double y_mean_ = 0.0;
  double sigma_ = 0.0;
  bool fitted_ = false;
};

}  // namespace murphy::stats
