#include "src/enterprise/dynamics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/telemetry/metric_catalog.h"

namespace murphy::enterprise {
namespace {

constexpr double kTwoPi = 6.283185307179586;

struct Buffers {
  std::vector<std::vector<double>> vm_cpu, vm_mem, vm_tx, vm_rx;
  std::vector<std::vector<double>> vnic_tx, vnic_rx, vnic_drops;
  std::vector<std::vector<double>> flow_thr, flow_sess, flow_rtt;
  std::vector<std::vector<double>> host_cpu, host_mem;
  std::vector<std::vector<double>> pnic_tx, pnic_drops;
  std::vector<std::vector<double>> port_thr, port_buf, port_drops;
  std::vector<std::vector<double>> tor_cpu;
  std::vector<std::vector<double>> ds_space;
};

}  // namespace

void generate_dynamics(Topology& topo,
                       const std::vector<Perturbation>& perturbations,
                       const DynamicsOptions& opts) {
  telemetry::MonitoringDb& db = topo.db;
  Rng rng(opts.seed);
  const std::size_t slices = opts.slices;
  const std::size_t n_vm = topo.vms.size();
  const std::size_t n_fl = topo.flows.size();
  const std::size_t n_h = topo.hosts.size();
  const std::size_t n_p = topo.switch_ports.size();
  const std::size_t n_t = topo.tors.size();
  const std::size_t n_d = topo.datastores.size();
  const std::size_t n_a = topo.apps.size();

  db.metrics().set_axis(TimeAxis(0.0, opts.interval_seconds, slices));

  auto buf = [&](std::size_t n) {
    return std::vector<std::vector<double>>(n, std::vector<double>(slices));
  };
  Buffers b;
  b.vm_cpu = buf(n_vm);
  b.vm_mem = buf(n_vm);
  b.vm_tx = buf(n_vm);
  b.vm_rx = buf(n_vm);
  b.vnic_tx = buf(n_vm);
  b.vnic_rx = buf(n_vm);
  b.vnic_drops = buf(n_vm);
  b.flow_thr = buf(n_fl);
  b.flow_sess = buf(n_fl);
  b.flow_rtt = buf(n_fl);
  b.host_cpu = buf(n_h);
  b.host_mem = buf(n_h);
  b.pnic_tx = buf(n_h);
  b.pnic_drops = buf(n_h);
  b.port_thr = buf(n_p);
  b.port_buf = buf(n_p);
  b.port_drops = buf(n_p);
  b.tor_cpu = buf(n_t);
  b.ds_space = buf(n_d);

  // Stable per-entity idiosyncrasies.
  std::vector<double> app_base(n_a), app_phase(n_a);
  for (std::size_t a = 0; a < n_a; ++a) {
    app_base[a] = rng.uniform(20.0, 120.0);  // MB/s-scale latent demand
    app_phase[a] = rng.uniform(0.0, kTwoPi);
  }
  std::vector<double> vm_cpu_base(n_vm), vm_mem_base(n_vm),
      vm_cpu_per_load(n_vm);
  for (std::size_t v = 0; v < n_vm; ++v) {
    vm_cpu_base[v] = rng.uniform(3.0, 12.0);
    vm_mem_base[v] = rng.uniform(20.0, 45.0);
    vm_cpu_per_load[v] = rng.uniform(0.25, 0.7);  // CPU% per MB/s handled
  }
  std::vector<double> ds_base(n_d);
  for (std::size_t d = 0; d < n_d; ++d) ds_base[d] = rng.uniform(30.0, 60.0);

  // Index apps by value for demand lookup.
  auto app_index = [&](AppId app) -> std::size_t { return app.value(); };

  constexpr double kPortCapacity = 1000.0;  // MB/s per switch port
  constexpr double kHostContentionKnee = 85.0;

  for (TimeIndex t = 0; t < slices; ++t) {
    // 1. Latent app demand with diurnal modulation.
    std::vector<double> demand(n_a);
    for (std::size_t a = 0; a < n_a; ++a) {
      const double phase =
          kTwoPi * static_cast<double>(t) /
              static_cast<double>(opts.diurnal_period) +
          app_phase[a];
      double d = app_base[a] * (1.0 + 0.35 * std::sin(phase));
      for (const Perturbation& p : perturbations)
        if (p.kind == PerturbationKind::kAppDemandSurge && p.target == a &&
            p.active(t))
          d *= p.magnitude;
      demand[a] = std::max(0.0, d * (1.0 + rng.normal(0.0, opts.noise)));
    }

    // 2. Flow loads from app demand (plus surges, minus crashed endpoints),
    //    then request forwarding: every VM forwards a fraction of its
    //    inbound load onto its outgoing flows (the crawler -> frontend ->
    //    backend propagation of Fig. 1). A few relaxation passes let surges
    //    travel across multi-tier chains.
    std::vector<double> base_load(n_fl);
    std::vector<bool> fl_dead(n_fl, false);
    for (std::size_t f = 0; f < n_fl; ++f) {
      const auto& flow = topo.flows[f];
      const std::size_t a = app_index(topo.vm_app[flow.src_vm]);
      double load = flow.weight * demand[a] * 0.2;
      for (const Perturbation& p : perturbations) {
        if (!p.active(t)) continue;
        if (p.kind == PerturbationKind::kFlowSurge && p.target == f)
          load *= p.magnitude;
        if (p.kind == PerturbationKind::kVmCrash &&
            (p.target == flow.src_vm || p.target == flow.dst_vm))
          fl_dead[f] = true;
      }
      base_load[f] = std::max(0.0, load);
    }
    // Per-VM outgoing weight totals for proportional forwarding.
    std::vector<double> out_weight(n_vm, 0.0);
    for (std::size_t f = 0; f < n_fl; ++f)
      out_weight[topo.flows[f].src_vm] += topo.flows[f].weight;
    constexpr double kForwardFraction = 0.6;
    std::vector<double> fl_load = base_load;
    for (int pass = 0; pass < 3; ++pass) {
      std::vector<double> inbound(n_vm, 0.0);
      for (std::size_t f = 0; f < n_fl; ++f)
        if (!fl_dead[f]) inbound[topo.flows[f].dst_vm] += fl_load[f];
      for (std::size_t f = 0; f < n_fl; ++f) {
        const auto& flow = topo.flows[f];
        if (fl_dead[f]) {
          fl_load[f] = 0.0;
          continue;
        }
        const double share =
            out_weight[flow.src_vm] > 1e-12
                ? flow.weight / out_weight[flow.src_vm]
                : 0.0;
        fl_load[f] = base_load[f] +
                     kForwardFraction * inbound[flow.src_vm] * share;
      }
    }
    for (std::size_t f = 0; f < n_fl; ++f) {
      fl_load[f] =
          std::max(0.0, fl_load[f] * (1.0 + rng.normal(0.0, opts.noise)));
      b.flow_thr[f][t] = fl_load[f];
      b.flow_sess[f][t] = std::max(
          0.0, fl_load[f] * 2.5 * (1.0 + rng.normal(0.0, opts.noise)));
    }

    // 3. VM traffic & first-pass CPU.
    std::vector<double> vm_in(n_vm, 0.0), vm_out(n_vm, 0.0);
    for (std::size_t f = 0; f < n_fl; ++f) {
      vm_out[topo.flows[f].src_vm] += fl_load[f];
      vm_in[topo.flows[f].dst_vm] += fl_load[f];
    }
    std::vector<double> cpu(n_vm);
    std::vector<bool> crashed(n_vm, false);
    for (std::size_t v = 0; v < n_vm; ++v) {
      double c = vm_cpu_base[v] +
                 vm_cpu_per_load[v] * (vm_in[v] + 0.4 * vm_out[v]);
      double mem = vm_mem_base[v] + 0.15 * (vm_in[v] + vm_out[v]);
      for (const Perturbation& p : perturbations) {
        if (!p.active(t) || p.target != v) continue;
        switch (p.kind) {
          case PerturbationKind::kVmCpuSpike: c += p.magnitude; break;
          case PerturbationKind::kVmMemLeak: {
            const double frac =
                static_cast<double>(t - p.start) /
                std::max<double>(1.0, static_cast<double>(p.end - p.start));
            mem += p.magnitude * frac;
            break;
          }
          case PerturbationKind::kVmCrash:
            crashed[v] = true;
            break;
          default: break;
        }
      }
      if (crashed[v]) {
        c = rng.uniform(0.0, 0.5);
        mem = rng.uniform(0.0, 2.0);
      }
      cpu[v] = c;
      b.vm_mem[v][t] =
          std::clamp(mem * (1.0 + rng.normal(0.0, opts.noise)), 0.0, 100.0);
    }

    // 4. Host aggregation + contention feedback (the cyclic coupling).
    std::vector<double> host_raw(n_h, 0.0);
    for (std::size_t v = 0; v < n_vm; ++v)
      host_raw[topo.vm_host[v]] += cpu[v] * 0.25;  // 4 VMs' worth saturates
    for (const Perturbation& p : perturbations)
      if (p.kind == PerturbationKind::kHostOverload && p.active(t))
        host_raw[p.target] += p.magnitude;
    std::vector<double> contention(n_h, 1.0);
    for (std::size_t h = 0; h < n_h; ++h) {
      if (host_raw[h] > kHostContentionKnee)
        contention[h] = 1.0 + (host_raw[h] - kHostContentionKnee) / 40.0;
      b.host_cpu[h][t] = std::clamp(
          host_raw[h] * (1.0 + rng.normal(0.0, opts.noise)), 0.0, 100.0);
      b.host_mem[h][t] = std::clamp(
          30.0 + 0.4 * host_raw[h] + rng.normal(0.0, 2.0), 0.0, 100.0);
    }
    // Back-pressure: VMs on contended hosts burn more CPU for the same work.
    for (std::size_t v = 0; v < n_vm; ++v) {
      if (!crashed[v]) cpu[v] *= contention[topo.vm_host[v]];
      b.vm_cpu[v][t] = std::clamp(
          cpu[v] * (1.0 + rng.normal(0.0, opts.noise)), 0.0, 100.0);
      b.vm_tx[v][t] =
          std::max(0.0, vm_out[v] * (1.0 + rng.normal(0.0, opts.noise)));
      b.vm_rx[v][t] =
          std::max(0.0, vm_in[v] * (1.0 + rng.normal(0.0, opts.noise)));
      b.vnic_tx[v][t] = b.vm_tx[v][t];
      b.vnic_rx[v][t] = b.vm_rx[v][t];
    }

    // 5. Fabric: per-port traffic = traffic of hosts uplinked through it,
    //    plus any injected congestion.
    std::vector<double> port_load(n_p, 0.0);
    std::vector<double> host_traffic(n_h, 0.0);
    for (std::size_t v = 0; v < n_vm; ++v)
      host_traffic[topo.vm_host[v]] += vm_in[v] + vm_out[v];
    for (std::size_t h = 0; h < n_h; ++h) {
      port_load[topo.host_tor_port[h]] += host_traffic[h];
      b.pnic_tx[h][t] = std::max(
          0.0, host_traffic[h] * (1.0 + rng.normal(0.0, opts.noise)));
    }
    for (const Perturbation& p : perturbations)
      if (p.kind == PerturbationKind::kPortCongestion && p.active(t))
        port_load[p.target] += p.magnitude;
    std::vector<double> port_drop_rate(n_p, 0.0);
    for (std::size_t p = 0; p < n_p; ++p) {
      const double util = port_load[p] / kPortCapacity;
      b.port_thr[p][t] =
          std::max(0.0, port_load[p] * (1.0 + rng.normal(0.0, opts.noise)));
      b.port_buf[p][t] = std::clamp(
          util * 100.0 * (1.0 + rng.normal(0.0, opts.noise)), 0.0, 100.0);
      port_drop_rate[p] =
          util > 0.8 ? (util - 0.8) * 5.0 : 0.0;  // % drops past 80% util
      b.port_drops[p][t] = std::max(
          0.0, port_drop_rate[p] * (1.0 + std::abs(rng.normal(0.0, 0.2))));
    }
    for (std::size_t tor = 0; tor < n_t; ++tor)
      b.tor_cpu[tor][t] =
          std::clamp(15.0 + rng.normal(0.0, 2.0), 0.0, 100.0);

    // 6. vNIC & pNIC drops inherit from port congestion + host contention.
    for (std::size_t v = 0; v < n_vm; ++v) {
      const std::size_t h = topo.vm_host[v];
      const double port_drops = port_drop_rate[topo.host_tor_port[h]];
      const double vnic_drop =
          0.5 * port_drops + (contention[h] - 1.0) * 0.8;
      b.vnic_drops[v][t] =
          std::max(0.0, vnic_drop * (1.0 + std::abs(rng.normal(0.0, 0.2))));
    }
    for (std::size_t h = 0; h < n_h; ++h)
      b.pnic_drops[h][t] = std::max(
          0.0, port_drop_rate[topo.host_tor_port[h]] *
                   (1.0 + std::abs(rng.normal(0.0, 0.2))));

    // 7. Flow RTT: base + fabric congestion + destination host contention.
    for (std::size_t f = 0; f < n_fl; ++f) {
      const auto& flow = topo.flows[f];
      const std::size_t hs = topo.vm_host[flow.src_vm];
      const std::size_t hd = topo.vm_host[flow.dst_vm];
      const double fabric = 0.5 * (b.port_buf[topo.host_tor_port[hs]][t] +
                                   b.port_buf[topo.host_tor_port[hd]][t]);
      double rtt = 0.5 + 0.03 * fabric + 4.0 * (contention[hd] - 1.0) +
                   2.0 * (port_drop_rate[topo.host_tor_port[hd]]);
      b.flow_rtt[f][t] =
          std::max(0.1, rtt * (1.0 + std::abs(rng.normal(0.0, opts.noise))));
    }

    // 8. Datastores.
    for (std::size_t d = 0; d < n_d; ++d) {
      double space = ds_base[d] + 3.0 * std::sin(kTwoPi * t / slices);
      for (const Perturbation& p : perturbations) {
        if (p.kind == PerturbationKind::kDatastoreFill && p.target == d &&
            p.active(t)) {
          const double frac =
              static_cast<double>(t - p.start) /
              std::max<double>(1.0, static_cast<double>(p.end - p.start));
          space = std::max(space, space + (p.magnitude - space) * frac);
        }
      }
      b.ds_space[d][t] =
          std::clamp(space + rng.normal(0.0, 0.5), 0.0, 100.0);
    }
  }

  // --- write out -------------------------------------------------------------
  auto& cat = db.catalog();
  namespace mk = telemetry::metrics;
  const auto m_cpu = cat.intern(mk::kCpuUtil);
  const auto m_mem = cat.intern(mk::kMemUtil);
  const auto m_tx = cat.intern(mk::kNetTx);
  const auto m_rx = cat.intern(mk::kNetRx);
  const auto m_drops = cat.intern(mk::kPacketDrops);
  const auto m_thr = cat.intern(mk::kThroughput);
  const auto m_sess = cat.intern(mk::kSessionCount);
  const auto m_rtt = cat.intern(mk::kRtt);
  const auto m_buf = cat.intern(mk::kBufferUtil);
  const auto m_space = cat.intern(mk::kSpaceUtil);

  auto& ms = db.metrics();
  for (std::size_t v = 0; v < n_vm; ++v) {
    ms.put(topo.vms[v], m_cpu, std::move(b.vm_cpu[v]));
    ms.put(topo.vms[v], m_mem, std::move(b.vm_mem[v]));
    ms.put(topo.vms[v], m_tx, std::move(b.vm_tx[v]));
    ms.put(topo.vms[v], m_rx, std::move(b.vm_rx[v]));
    ms.put(topo.vm_vnics[v], m_tx, std::move(b.vnic_tx[v]));
    ms.put(topo.vm_vnics[v], m_rx, std::move(b.vnic_rx[v]));
    ms.put(topo.vm_vnics[v], m_drops, std::move(b.vnic_drops[v]));
  }
  for (std::size_t f = 0; f < n_fl; ++f) {
    ms.put(topo.flows[f].id, m_thr, std::move(b.flow_thr[f]));
    ms.put(topo.flows[f].id, m_sess, std::move(b.flow_sess[f]));
    ms.put(topo.flows[f].id, m_rtt, std::move(b.flow_rtt[f]));
  }
  for (std::size_t h = 0; h < n_h; ++h) {
    ms.put(topo.hosts[h], m_cpu, std::move(b.host_cpu[h]));
    ms.put(topo.hosts[h], m_mem, std::move(b.host_mem[h]));
    ms.put(topo.host_pnics[h], m_tx, std::move(b.pnic_tx[h]));
    ms.put(topo.host_pnics[h], m_drops, std::move(b.pnic_drops[h]));
  }
  for (std::size_t p = 0; p < n_p; ++p) {
    ms.put(topo.switch_ports[p], m_thr, std::move(b.port_thr[p]));
    ms.put(topo.switch_ports[p], m_buf, std::move(b.port_buf[p]));
    ms.put(topo.switch_ports[p], m_drops, std::move(b.port_drops[p]));
  }
  for (std::size_t tor = 0; tor < n_t; ++tor)
    ms.put(topo.tors[tor], m_cpu, std::move(b.tor_cpu[tor]));
  for (std::size_t d = 0; d < n_d; ++d)
    ms.put(topo.datastores[d], m_space, std::move(b.ds_space[d]));
}

}  // namespace murphy::enterprise
