// Unit tests for the observability layer: span tracer nesting and flushing,
// metrics registry (including a TSAN-targeted concurrent stress), the
// deterministic Perfetto export, audit-trail JSONL round-trips and the JSON
// utilities they all rest on. The end-to-end "instrumented diagnosis is
// bitwise identical at every thread count" contract lives in
// concurrency_test.cpp next to the other determinism tests.
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/thread_pool.h"
#include "src/common/time_axis.h"
#include "src/core/batch.h"
#include "src/obs/audit.h"
#include "src/obs/json.h"
#include "src/obs/markers.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace murphy::obs {
namespace {

// ---------- JSON utilities -------------------------------------------------

TEST(Json, NumberRoundTripsBitExactly) {
  for (const double v : {0.1, 1.0 / 3.0, 1e-300, 6.02214076e23, -0.0}) {
    JsonValue parsed;
    ASSERT_TRUE(json_parse(json_number(v), parsed));
    ASSERT_EQ(parsed.kind, JsonValue::Kind::kNumber);
    EXPECT_EQ(parsed.number, v);
  }
}

TEST(Json, NonFiniteBecomesNull) {
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
}

TEST(Json, EscapingRoundTrips) {
  const std::string nasty = "a\"b\\c\n\t\x01 d";
  std::string doc;
  json_append_escaped(doc, nasty);
  JsonValue parsed;
  std::string error;
  ASSERT_TRUE(json_parse(doc, parsed, &error)) << error;
  ASSERT_EQ(parsed.kind, JsonValue::Kind::kString);
  EXPECT_EQ(parsed.string, nasty);
}

TEST(Json, ParsesNestedDocument) {
  JsonValue v;
  ASSERT_TRUE(json_parse(
      R"({"a":[1,2,{"b":true}],"c":null,"d":"xAy"})", v));
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_EQ(a->array[1].number, 2.0);
  EXPECT_TRUE(a->array[2].find("b")->boolean);
  EXPECT_EQ(v.find("c")->kind, JsonValue::Kind::kNull);
  EXPECT_EQ(v.find("d")->string, "xAy");
}

TEST(Json, RejectsMalformedAndTrailingGarbage) {
  JsonValue v;
  EXPECT_FALSE(json_parse("{", v));
  EXPECT_FALSE(json_parse("[1,]", v));
  EXPECT_FALSE(json_parse("{\"a\":1} extra", v));
  EXPECT_FALSE(json_parse("", v));
}

// ---------- span tracer ----------------------------------------------------

#ifdef MURPHY_OBS_DISABLED

// Compiled-out build (-DMURPHY_OBS_COMPILED_OUT=ON): spans must not record,
// but finish() still times (PhaseTimings derive from spans).
TEST(Tracer, CompiledOutSpansTimeButRecordNothing) {
  Tracer tracer;
  {
    Span span(&tracer, "gone");
    EXPECT_FALSE(span.enabled());
    span.arg("ignored", 1.0);
    EXPECT_GE(span.finish(), 0.0);
  }
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_EQ(tracer.to_chrome_json(), "{\"traceEvents\":[]}");
}

#else  // recording behaviour, stripped under MURPHY_OBS_DISABLED

TEST(Tracer, NestedSpansParentToInnermostOpenSpan) {
  Tracer tracer;
  std::uint64_t outer_id = 0, inner_id = 0;
  {
    Span outer(&tracer, "outer");
    outer_id = outer.id();
    {
      Span inner(&tracer, "inner");
      inner_id = inner.id();
    }
  }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  // events() sorts by stable id, so locate by name.
  const SpanEvent* outer = nullptr;
  const SpanEvent* inner = nullptr;
  for (const auto& e : events)
    (e.name == "outer" ? outer : inner) = &e;
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->id, outer_id);
  EXPECT_EQ(outer->parent, 0u);
  EXPECT_EQ(inner->id, inner_id);
  EXPECT_EQ(inner->parent, outer_id);
  // After both closed, a new root span parents to 0 again (stack drained).
  Span again(&tracer, "again");
  again.finish();
  for (const auto& e : tracer.events())
    if (e.name == "again") EXPECT_EQ(e.parent, 0u);
}

TEST(Tracer, StableIdsAreThreadCountInvariantInputs) {
  // Same (parent, name, stream) -> same id; any input change -> different.
  EXPECT_EQ(derive_span_id(7, "fit", 3), derive_span_id(7, "fit", 3));
  EXPECT_NE(derive_span_id(7, "fit", 3), derive_span_id(7, "fit", 4));
  EXPECT_NE(derive_span_id(7, "fit", 3), derive_span_id(8, "fit", 3));
  EXPECT_NE(derive_span_id(7, "fit", 3), derive_span_id(7, "fig", 3));
  EXPECT_NE(derive_span_id(0, "", 0), 0u);  // 0 is reserved for "no parent"
}

TEST(Tracer, FinishIsIdempotentAndReturnsElapsed) {
  Tracer tracer;
  Span span(&tracer, "once");
  const double first = span.finish();
  EXPECT_GE(first, 0.0);
  EXPECT_EQ(span.finish(), first);  // second finish: same answer, no event
  EXPECT_EQ(tracer.events().size(), 1u);
}

TEST(Tracer, NullTracerTimesButRecordsNothing) {
  Span span(nullptr, "free");
  EXPECT_FALSE(span.enabled());
  span.arg("ignored", 1.0);
  EXPECT_GE(span.finish(), 0.0);
}

TEST(Tracer, ArgsAreRecordedAsJsonFragments) {
  Tracer tracer;
  {
    Span span(&tracer, "args");
    span.arg("s", std::string_view("x\"y"));
    span.arg("d", 0.5);
    span.arg("u", std::uint64_t{42});
    span.arg("b", true);
  }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  ASSERT_EQ(events[0].args.size(), 4u);
  EXPECT_EQ(events[0].args[0].second, "\"x\\\"y\"");
  EXPECT_EQ(events[0].args[1].second, "0.5");
  EXPECT_EQ(events[0].args[2].second, "42");
  EXPECT_EQ(events[0].args[3].second, "true");
}

TEST(Tracer, ClearDropsEventsButKeepsRecording) {
  Tracer tracer;
  { Span s(&tracer, "a"); }
  tracer.clear();
  EXPECT_TRUE(tracer.events().empty());
  { Span s(&tracer, "b"); }
  EXPECT_EQ(tracer.events().size(), 1u);
}

// Synthetic parallel workload mirroring the engine's instrumentation idiom:
// explicit parent + loop-index stream inside parallel_for, nested
// stack-parented spans within each item.
std::string traced_parallel_run(std::size_t threads) {
  Tracer tracer;
  {
    Span root(&tracer, "root");
    const std::uint64_t root_id = root.id();
    parallel_for(threads, 16, [&](std::size_t i) {
      Span item(&tracer, "item", i, root_id);
      item.arg("i", static_cast<std::uint64_t>(i));
      Span inner(&tracer, "inner");
      inner.finish();
    });
  }
  TraceExportOptions opts;
  opts.deterministic = true;
  return tracer.to_chrome_json(opts);
}

TEST(Tracer, DeterministicExportByteIdenticalAcrossThreadCounts) {
  const std::string serial = traced_parallel_run(1);
  EXPECT_EQ(serial, traced_parallel_run(2));
  EXPECT_EQ(serial, traced_parallel_run(8));
}

TEST(Tracer, ExportIsValidTraceEventJson) {
  for (const bool deterministic : {true, false}) {
    Tracer tracer;
    {
      Span outer(&tracer, "outer");
      Span inner(&tracer, "in\"ner");  // name needing escapes
      inner.arg("k", 1.25);
    }
    TraceExportOptions opts;
    opts.deterministic = deterministic;
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(json_parse(tracer.to_chrome_json(opts), doc, &error))
        << error;
    const JsonValue* events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->is_array());
    ASSERT_EQ(events->array.size(), 2u);
    for (const JsonValue& e : events->array) {
      EXPECT_EQ(e.find("ph")->string, "X");
      EXPECT_EQ(e.find("cat")->string, "murphy");
      EXPECT_NE(e.find("name"), nullptr);
      EXPECT_NE(e.find("ts"), nullptr);
      EXPECT_NE(e.find("dur"), nullptr);
      EXPECT_NE(e.find("args")->find("sid"), nullptr);
    }
  }
}

#endif  // MURPHY_OBS_DISABLED

// ---------- metrics registry -----------------------------------------------

TEST(Metrics, GetOrCreateReturnsTheSameInstrument) {
  MetricsRegistry reg;
  Counter* c = reg.counter("x");
  EXPECT_EQ(c, reg.counter("x"));
  c->add(3);
  EXPECT_EQ(reg.find_counter("x")->value(), 3u);
  EXPECT_EQ(reg.find_counter("absent"), nullptr);
  EXPECT_EQ(reg.find_gauge("x"), nullptr);  // wrong kind
}

TEST(Metrics, HistogramBucketsObservations) {
  MetricsRegistry reg;
  Histogram* h = reg.histogram("lat", {1.0, 10.0});
  h->observe(0.5);
  h->observe(1.0);   // boundary counts into its bucket (<= bound)
  h->observe(5.0);
  h->observe(50.0);  // overflow
  EXPECT_EQ(h->count(), 4u);
  const auto buckets = h->bucket_counts();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_DOUBLE_EQ(h->sum(), 56.5);
  // Re-registering keeps the original bounds.
  EXPECT_EQ(reg.histogram("lat", {99.0}), h);
  EXPECT_EQ(h->bounds().size(), 2u);
}

TEST(Metrics, SnapshotIsSortedAndJsonParses) {
  MetricsRegistry reg;
  reg.counter("b.count")->add(2);
  reg.gauge("a.level")->set(1.5);
  reg.histogram("c.hist", {1.0})->observe(0.5);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.entries.size(), 3u);
  EXPECT_EQ(snap.entries[0].name, "a.level");
  EXPECT_EQ(snap.entries[1].name, "b.count");
  EXPECT_EQ(snap.entries[2].name, "c.hist");
  EXPECT_EQ(snap.entries[2].kind, "histogram");
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse(reg.to_json(), doc, &error)) << error;
  EXPECT_EQ(doc.find("b.count")->find("value")->number, 2.0);
  EXPECT_EQ(doc.find("a.level")->find("value")->number, 1.5);
  EXPECT_EQ(doc.find("c.hist")->find("count")->number, 1.0);
}

TEST(Metrics, ResetZeroesButKeepsPointersValid) {
  MetricsRegistry reg;
  Counter* c = reg.counter("n");
  Histogram* h = reg.histogram("h", {1.0});
  c->add(5);
  h->observe(2.0);
  reg.reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  c->add(1);
  EXPECT_EQ(reg.find_counter("n")->value(), 1u);
}

// The cross-symptom factor cache must actually engage in a batch run: with
// symptoms whose relationship graphs overlap (here: identical), the second
// and later symptoms are served from cache, and the engine reports that
// through the registry the caller attached.
TEST(Metrics, BatchDiagnosisRecordsFactorCacheHits) {
  using telemetry::EntityType;
  using telemetry::MonitoringDb;
  using telemetry::RelationKind;
  MonitoringDb db;
  const auto a = db.add_entity(EntityType::kVm, "A");
  const auto b = db.add_entity(EntityType::kVm, "B");
  const auto c = db.add_entity(EntityType::kVm, "C");
  db.add_association(a, b, RelationKind::kGeneric);
  db.add_association(b, c, RelationKind::kGeneric);
  const auto cpu = db.catalog().intern("cpu_util");
  constexpr std::size_t kSlices = 120;
  db.metrics().set_axis(TimeAxis(0.0, 10.0, kSlices));
  std::vector<double> va(kSlices), vb(kSlices), vc(kSlices);
  for (std::size_t t = 0; t < kSlices; ++t) {
    const double surge = t + 15 >= kSlices ? 9.0 : 0.0;
    va[t] = 5.0 + 2.0 * std::sin(0.11 * static_cast<double>(t)) + surge;
    vb[t] = 1.5 * va[t] + std::cos(0.07 * static_cast<double>(t));
    vc[t] = 1.2 * vb[t] + std::sin(0.05 * static_cast<double>(t));
  }
  db.metrics().put(a, cpu, va);
  db.metrics().put(b, cpu, vb);
  db.metrics().put(c, cpu, vc);

  MetricsRegistry registry;
  core::BatchOptions bopts;
  bopts.murphy.sampler.num_samples = 40;
  bopts.murphy.num_threads = 1;
  bopts.murphy.obs.metrics = &registry;
  core::BatchDiagnoser batch(bopts);
  const std::vector<core::Symptom> symptoms{
      core::Symptom{c, "cpu_util", 0.0, 4.0},
      core::Symptom{b, "cpu_util", 0.0, 3.0},
      core::Symptom{a, "cpu_util", 0.0, 2.0},
  };
  const auto result =
      batch.diagnose_symptoms(db, symptoms, kSlices - 1, 0, kSlices);
  ASSERT_FALSE(result.merged.empty());

  const Counter* hits = registry.find_counter("cache.factor_hits");
  const Counter* misses = registry.find_counter("cache.factor_misses");
  ASSERT_NE(hits, nullptr);
  ASSERT_NE(misses, nullptr);
  EXPECT_GT(misses->value(), 0u);  // somebody trained each unique factor
  EXPECT_GT(hits->value(), 0u);    // and later symptoms reused it
  // Window-column reuse flows through the same registry-backed accounting.
  EXPECT_GT(registry.find_counter("train.corr_cells")->value(), 0u);
}

// TSAN target: hammer one counter and one histogram from many threads while
// other threads register fresh instruments. Totals must come out exact.
TEST(Metrics, ConcurrentStressIsRaceFreeAndExact) {
  MetricsRegistry reg;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 10000;
  Counter* shared = reg.counter("stress.shared");
  Histogram* hist = reg.histogram("stress.hist", {0.25, 0.5, 0.75});
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, shared, hist, t] {
      // Per-thread get-or-create races the updates on purpose.
      Counter* own =
          reg.counter("stress.thread." + std::to_string(t));
      for (std::size_t i = 0; i < kPerThread; ++i) {
        shared->add(1);
        own->add(1);
        hist->observe(static_cast<double>(i % 4) / 4.0);
        reg.gauge("stress.gauge")->set(static_cast<double>(i));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(shared->value(), kThreads * kPerThread);
  EXPECT_EQ(hist->count(), kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : hist->bucket_counts()) bucket_total += b;
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
  for (std::size_t t = 0; t < kThreads; ++t)
    EXPECT_EQ(reg.find_counter("stress.thread." + std::to_string(t))->value(),
              kPerThread);
}

// ---------- audit trail ----------------------------------------------------

DiagnosisAudit sample_audit() {
  DiagnosisAudit audit;
  audit.scheme = "murphy";
  audit.symptom_entity = "web-vm \"7\"";  // exercise escaping
  audit.symptom_metric = "cpu_util";
  audit.now = 199;
  audit.graph_nodes = 12;
  audit.variables = 30;
  audit.incident_id = 41;  // watchdog linkage
  CandidateAudit accepted;
  accepted.entity = EntityId(3);
  accepted.entity_name = "db-vm";
  accepted.driver_metric = "disk_io";
  accepted.anomaly_z = 4.125;
  accepted.rank_score = 3.0625;
  accepted.evaluated = true;
  accepted.accepted = true;
  accepted.p_value = 0.001953125;
  accepted.mean_factual = 17.5;
  accepted.mean_counterfactual = 9.25;
  accepted.counterfactual_delta = -8.25;
  accepted.path_len = 3;
  accepted.rank = 1;
  accepted.path = {"db-vm", "app-vm", "web-vm \"7\""};
  CandidateAudit rejected;
  rejected.entity = EntityId(9);
  rejected.entity_name = "tor-port";
  rejected.driver_metric = "rx_bytes";
  rejected.anomaly_z = 0.1;  // exercises non-dyadic double round-trip
  rejected.rank_score = 0.1;
  rejected.evaluated = true;
  rejected.accepted = false;
  rejected.p_value = 0.75;
  audit.candidates = {accepted, rejected};
  return audit;
}

TEST(Audit, JsonlRoundTripsEveryField) {
  const DiagnosisAudit original = sample_audit();
  const std::string text = to_jsonl(original);
  DiagnosisAudit parsed;
  std::string error;
  ASSERT_TRUE(parse_jsonl(text, parsed, &error)) << error;
  EXPECT_EQ(parsed.scheme, original.scheme);
  EXPECT_EQ(parsed.symptom_entity, original.symptom_entity);
  EXPECT_EQ(parsed.symptom_metric, original.symptom_metric);
  EXPECT_EQ(parsed.now, original.now);
  EXPECT_EQ(parsed.graph_nodes, original.graph_nodes);
  EXPECT_EQ(parsed.variables, original.variables);
  EXPECT_EQ(parsed.incident_id, original.incident_id);
  ASSERT_EQ(parsed.candidates.size(), original.candidates.size());
  for (std::size_t i = 0; i < original.candidates.size(); ++i) {
    const CandidateAudit& a = original.candidates[i];
    const CandidateAudit& b = parsed.candidates[i];
    EXPECT_EQ(a.entity, b.entity);
    EXPECT_EQ(a.entity_name, b.entity_name);
    EXPECT_EQ(a.driver_metric, b.driver_metric);
    EXPECT_EQ(a.anomaly_z, b.anomaly_z);
    EXPECT_EQ(a.rank_score, b.rank_score);
    EXPECT_EQ(a.self_symptom, b.self_symptom);
    EXPECT_EQ(a.evaluated, b.evaluated);
    EXPECT_EQ(a.accepted, b.accepted);
    EXPECT_EQ(a.p_value, b.p_value);
    EXPECT_EQ(a.mean_factual, b.mean_factual);
    EXPECT_EQ(a.mean_counterfactual, b.mean_counterfactual);
    EXPECT_EQ(a.counterfactual_delta, b.counterfactual_delta);
    EXPECT_EQ(a.path_len, b.path_len);
    EXPECT_EQ(a.rank, b.rank);
    EXPECT_EQ(a.path, b.path);
  }
  // Determinism: serialize(parse(serialize(x))) == serialize(x), byte for
  // byte.
  EXPECT_EQ(to_jsonl(parsed), text);
}

TEST(Audit, EveryLineIsStandaloneJson) {
  const std::string text = to_jsonl(sample_audit());
  std::size_t lines = 0;
  std::size_t begin = 0;
  while (begin < text.size()) {
    std::size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    JsonValue v;
    std::string error;
    ASSERT_TRUE(
        json_parse(std::string_view(text).substr(begin, end - begin), v,
                   &error))
        << error;
    const JsonValue* type = v.find("type");
    ASSERT_NE(type, nullptr);
    EXPECT_EQ(type->string, lines == 0 ? "diagnosis" : "candidate");
    ++lines;
    begin = end + 1;
  }
  EXPECT_EQ(lines, 3u);
}

TEST(IncidentJournal, JsonlRoundTripsEveryField) {
  std::vector<IncidentEvent> events(2);
  events[0].incident_id = 7;
  events[0].event = "open";
  events[0].slice = 315;
  events[0].entity = "profile \"eu\"";  // exercise escaping
  events[0].metric = "latency_ms";
  events[0].severity = 110.5;
  events[0].state = "open";
  events[1].incident_id = 7;
  events[1].event = "diagnosed";
  events[1].slice = 317;
  events[1].entity = "profile \"eu\"";
  events[1].metric = "latency_ms";
  events[1].severity = 0.1;  // non-dyadic double round-trip
  events[1].priority = 111;
  events[1].refires = 2;
  events[1].state = "diagnosed";
  events[1].causes = {"rate", "search"};
  const std::string text = to_jsonl(events);
  std::vector<IncidentEvent> parsed;
  std::string error;
  ASSERT_TRUE(parse_incident_jsonl(text, parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(parsed[i].incident_id, events[i].incident_id);
    EXPECT_EQ(parsed[i].event, events[i].event);
    EXPECT_EQ(parsed[i].slice, events[i].slice);
    EXPECT_EQ(parsed[i].entity, events[i].entity);
    EXPECT_EQ(parsed[i].metric, events[i].metric);
    EXPECT_EQ(parsed[i].severity, events[i].severity);
    EXPECT_EQ(parsed[i].priority, events[i].priority);
    EXPECT_EQ(parsed[i].refires, events[i].refires);
    EXPECT_EQ(parsed[i].state, events[i].state);
    EXPECT_EQ(parsed[i].causes, events[i].causes);
  }
  // Byte-stable: the journal is part of the determinism contract.
  EXPECT_EQ(to_jsonl(parsed), text);
}

TEST(Markers, NameFollowsT2Convention) {
  EXPECT_EQ(marker_name("Murphyd", "service.total_ms"),
            "MurphydServiceTotalMs_split");
  EXPECT_EQ(marker_name("Murphyd", "watchdog.incidents_open"),
            "MurphydWatchdogIncidentsOpen_split");
  EXPECT_EQ(marker_name("AppGw", "cpu-util"), "AppGwCpuUtil_split");
}

TEST(Markers, PayloadIsDeterministicJson) {
  Marker m;
  m.name = "MurphydIngestCells_split";
  m.sum = 6825.0;
  m.count = 1;
  m.unit = "count";
  m.interval_sec = 5.0;
  EXPECT_EQ(marker_payload_json(m),
            "{\"sum\":6825,\"count\":1,\"unit\":\"count\","
            "\"reporting_interval_sec\":5}");
}

TEST(Markers, AggregatorDiffsCountersAndEmitsGauges) {
  MetricsRegistry reg;
  reg.counter("ingest.cells")->add(100);
  reg.counter("idle.counter");  // never incremented: must not emit
  reg.gauge("watchdog.incidents_open")->set(2.0);
  Histogram* h = reg.histogram("service.total_ms", {1.0, 10.0, 100.0});
  h->observe(10.0);
  h->observe(30.0);

  MarkerAggregator agg("Murphyd");
  const std::vector<Marker> first = agg.collect(reg.snapshot(), 5.0);
  // idle.counter has zero delta -> skipped; the other three emit.
  ASSERT_EQ(first.size(), 3u);
  EXPECT_EQ(first[0].name, "MurphydIngestCells_split");
  EXPECT_EQ(first[0].sum, 100.0);
  EXPECT_EQ(first[0].unit, "count");
  EXPECT_EQ(first[1].name, "MurphydServiceTotalMs_split");
  EXPECT_EQ(first[1].sum, 40.0);  // histogram sum delta
  EXPECT_EQ(first[1].count, 2u);  // observation-count delta
  EXPECT_EQ(first[1].unit, "ms");
  EXPECT_EQ(first[2].name, "MurphydWatchdogIncidentsOpen_split");
  EXPECT_EQ(first[2].sum, 2.0);

  // Second interval: only what changed since the first collect.
  reg.counter("ingest.cells")->add(50);
  reg.gauge("watchdog.incidents_open")->set(0.0);
  const std::vector<Marker> second = agg.collect(reg.snapshot(), 5.0);
  ASSERT_EQ(second.size(), 2u);
  EXPECT_EQ(second[0].name, "MurphydIngestCells_split");
  EXPECT_EQ(second[0].sum, 50.0);  // delta, not cumulative
  EXPECT_EQ(second[1].name, "MurphydWatchdogIncidentsOpen_split");
  EXPECT_EQ(second[1].sum, 0.0);  // gauges always report point-in-time
}

TEST(Markers, CounterResetReportsPostResetValue) {
  MetricsRegistry reg;
  reg.counter("ingest.cells")->add(100);
  MarkerAggregator agg;
  (void)agg.collect(reg.snapshot(), 1.0);
  reg.reset();
  reg.counter("ingest.cells")->add(30);
  const std::vector<Marker> after = agg.collect(reg.snapshot(), 1.0);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].sum, 30.0);  // not the negative delta -70
}

TEST(Audit, ParseRejectsMissingOrDuplicateHeader) {
  DiagnosisAudit out;
  EXPECT_FALSE(parse_jsonl("{\"type\":\"candidate\"}", out));
  const std::string two_headers =
      "{\"type\":\"diagnosis\",\"scheme\":\"a\"}\n"
      "{\"type\":\"diagnosis\",\"scheme\":\"b\"}";
  EXPECT_FALSE(parse_jsonl(two_headers, out));
  EXPECT_FALSE(parse_jsonl("not json", out));
}

}  // namespace
}  // namespace murphy::obs
