#include "src/core/batch.h"

#include <algorithm>
#include <bit>
#include <unordered_map>

#include "src/common/thread_pool.h"

namespace murphy::core {

std::vector<RankedRootCause> fuse_reciprocal_rank(
    std::span<const Symptom> symptoms,
    std::span<const DiagnosisResult> per_symptom,
    std::size_t per_symptom_top_k) {
  std::unordered_map<EntityId, double> fused;
  for (std::size_t s = 0; s < symptoms.size(); ++s) {
    const DiagnosisResult& diagnosis = per_symptom[s];
    for (std::size_t r = 0;
         r < diagnosis.causes.size() && r < per_symptom_top_k; ++r) {
      // The symptom entity itself is excluded from the merge (it is an
      // effect here, even if self-caused cases keep it in the per-symptom
      // list).
      if (diagnosis.causes[r].entity == symptoms[s].entity) continue;
      fused[diagnosis.causes[r].entity] += 1.0 / static_cast<double>(r + 1);
    }
  }
  std::vector<RankedRootCause> merged;
  merged.reserve(fused.size());
  for (const auto& [entity, score] : fused)
    merged.push_back(RankedRootCause{entity, score});
  std::sort(merged.begin(), merged.end(),
            [](const RankedRootCause& a, const RankedRootCause& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.entity < b.entity;
            });
  return merged;
}

BatchDiagnoser::BatchDiagnoser(BatchOptions opts) : opts_(opts) {}

BatchResult BatchDiagnoser::diagnose_app(const telemetry::MonitoringDb& db,
                                         AppId app, TimeIndex now,
                                         TimeIndex train_begin,
                                         TimeIndex train_end) {
  SymptomFinderOptions fopts = opts_.finder;
  fopts.history_begin = train_begin;
  return diagnose_symptoms(db, find_symptoms(db, app, now, fopts), now,
                           train_begin, train_end);
}

BatchResult BatchDiagnoser::diagnose_symptoms(
    const telemetry::MonitoringDb& db, std::vector<Symptom> symptoms,
    TimeIndex now, TimeIndex train_begin, TimeIndex train_end) {
  BatchResult result;
  result.symptoms = std::move(symptoms);
  result.per_symptom.resize(result.symptoms.size());

  const obs::ObsHooks& hooks = opts_.murphy.obs;
  obs::Span batch_span(hooks.tracer, "batch_diagnose");
  if (batch_span.enabled())
    batch_span.arg("symptoms",
                   static_cast<std::uint64_t>(result.symptoms.size()));
  const std::uint64_t batch_span_id = batch_span.id();
  if (hooks.metrics != nullptr)
    hooks.metrics->counter("batch.symptoms_diagnosed")
        ->add(result.symptoms.size());

  // Symptoms parallelize at the outer level; when they do, the inner
  // per-candidate parallelism is switched off to avoid oversubscription.
  // Either split produces the same bits (determinism is per-diagnosis).
  MurphyOptions inner = opts_.murphy;
  if (resolve_num_threads(opts_.murphy.num_threads) > 1 &&
      result.symptoms.size() > 1)
    inner.num_threads = 1;

  // Cross-symptom training caches. The generation fingerprint covers the
  // training window, every db mutation (data_version) and the training
  // options that shape a fit; the db's process-unique uid distinguishes
  // distinct stores. (The uid, not the address: an address can be recycled
  // by a db that is destroyed and another constructed at the same storage —
  // with a coincidentally equal data_version the caches would serve stale
  // factors, the classic ABA.) A fingerprint change resets both caches, so
  // a window shift or any telemetry write retrains from scratch.
  if (opts_.share_training) {
    const FactorTrainingOptions& t = opts_.murphy.training;
    std::uint64_t fp = hash_mix(0xB47C4ACEu, train_begin);
    fp = hash_mix(fp, train_end);
    fp = hash_mix(fp, db.data_version());
    fp = hash_mix(fp, db.uid());
    if (window_stats_ == nullptr)
      window_stats_ = std::make_unique<stats::WindowStats>();
    window_stats_->reset(fp);
    fp = hash_mix(fp, t.top_b);
    fp = hash_mix(fp, static_cast<std::uint64_t>(t.model));
    fp = hash_mix(fp, std::bit_cast<std::uint64_t>(t.predictor.l2));
    fp = hash_mix(fp, std::bit_cast<std::uint64_t>(t.recency_half_life));
    if (factor_cache_ == nullptr)
      factor_cache_ = std::make_unique<FactorCache>();
    factor_cache_->reset(fp);
    inner.training.window_stats = window_stats_.get();
    inner.training.factor_cache = factor_cache_.get();
  }
  parallel_for(
      opts_.murphy.num_threads, result.symptoms.size(), [&](std::size_t i) {
        // Explicit parent + symptom index as stream: the nested diagnosis
        // spans chain under this one on whatever thread runs it, so the
        // trace is thread-count invariant.
        obs::Span symptom_span(hooks.tracer, "diagnose_symptom", i,
                               batch_span_id);
        if (symptom_span.enabled())
          symptom_span.arg("metric", result.symptoms[i].metric);
        MurphyDiagnoser murphy(inner);
        DiagnosisRequest request;
        request.db = &db;
        request.symptom_entity = result.symptoms[i].entity;
        request.symptom_metric = result.symptoms[i].metric;
        request.now = now;
        request.train_begin = train_begin;
        request.train_end = train_end;
        result.per_symptom[i] = murphy.diagnose(request);
      });

  obs::Span merge_span(hooks.tracer, "merge_rankings", 0, batch_span_id);
  result.merged = fuse_reciprocal_rank(result.symptoms, result.per_symptom,
                                       opts_.per_symptom_top_k);
  merge_span.finish();
  return result;
}

}  // namespace murphy::core
