// CSV import — the inverse of csv_export.
//
// Rebuilds a MonitoringDb from the three files the exporter writes, so
// captured datasets (or externally produced ones in the same schema) can be
// diagnosed offline: export a production window, load it on a laptop, run
// Murphy. Entity ids are re-assigned densely on import; names are the stable
// key, and associations/metrics refer to entities by their exported id.
#pragma once

#include <istream>
#include <optional>
#include <string>

#include "src/telemetry/monitoring_db.h"

namespace murphy::telemetry {

struct ImportError {
  std::string message;
  std::size_t line = 0;  // 1-based line in the offending file
};

struct ImportResult {
  MonitoringDb db;
  std::size_t entities = 0;
  std::size_t associations = 0;
  std::size_t series = 0;
  // Telemetry-defect tallies (DESIGN.md §8). Real exports carry duplicated
  // and out-of-order timestamps; the importer accepts both with defined
  // semantics instead of failing or silently mangling:
  //  * rows may arrive in any slice order — series are rebuilt sorted on the
  //    slice index (the long format's explicit timestamp), and every row
  //    whose slice is smaller than one already seen for its series is
  //    tallied here;
  //  * a repeated (entity, metric, slice) key is last-write-wins: the later
  //    row replaces the earlier one, and the collision is tallied.
  // The two tallies are disjoint: a repeated key counts as a duplicate only,
  // never additionally as out-of-order.
  std::size_t out_of_order_rows = 0;
  std::size_t duplicate_rows = 0;
  // Rows whose value parsed as NaN/Inf. They are imported and immediately
  // dropped to missing by MetricStore::put's ingest sanitizer (the slice
  // keeps valid=0), so a round-trip through export_csv converges.
  std::size_t nonfinite_values = 0;
};

// Stream-based import. The metrics stream must use the long format written
// by export_metrics_csv; `interval_seconds` sets the rebuilt axis (the CSV
// stores slice indices, not wall-clock times). Returns nullopt and fills
// `error` on malformed input. Duplicated / out-of-order / non-finite metric
// rows are accepted with the semantics documented on ImportResult; the
// rebuilt db's data_version() reflects every series put (one bump per
// series), never the pre-ingest collisions.
[[nodiscard]] std::optional<ImportResult> import_csv(
    std::istream& entities, std::istream& associations, std::istream& metrics,
    double interval_seconds, ImportError* error = nullptr);

// File-based convenience matching export_csv's path scheme.
[[nodiscard]] std::optional<ImportResult> import_csv_files(
    const std::string& path_prefix, double interval_seconds,
    ImportError* error = nullptr);

}  // namespace murphy::telemetry
