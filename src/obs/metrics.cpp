#include "src/obs/metrics.h"

#include <algorithm>

#include "src/obs/json.h"

namespace murphy::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  // Atomics are not movable, so size the bucket array once here.
  buckets_ = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Relaxed CAS accumulation: the total is exact, the addition order is not.
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

double Histogram::quantile(double p) const {
  const std::uint64_t n = count();
  if (n == 0 || bounds_.empty()) return 0.0;
  const double clamped = std::min(std::max(p, 0.0), 1.0);
  // ceil(p * n) without float rounding surprises at the boundaries.
  std::uint64_t target = static_cast<std::uint64_t>(clamped * static_cast<double>(n));
  if (static_cast<double>(target) < clamped * static_cast<double>(n) ||
      target == 0)
    ++target;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    cum += buckets_[i].load(std::memory_order_relaxed);
    if (cum >= target) return bounds_[i];
  }
  return bounds_.back();  // overflow bucket: report the largest bound
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  return it->second.get();
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  // std::map iteration is name-sorted; merge the three kinds into one
  // name-sorted list afterwards.
  for (const auto& [name, c] : counters_) {
    Snapshot::Entry e;
    e.name = name;
    e.kind = "counter";
    e.value = static_cast<double>(c->value());
    snap.entries.push_back(std::move(e));
  }
  for (const auto& [name, g] : gauges_) {
    Snapshot::Entry e;
    e.name = name;
    e.kind = "gauge";
    e.value = g->value();
    snap.entries.push_back(std::move(e));
  }
  for (const auto& [name, h] : histograms_) {
    Snapshot::Entry e;
    e.name = name;
    e.kind = "histogram";
    e.value = static_cast<double>(h->count());
    e.sum = h->sum();
    e.bounds = h->bounds();
    e.bucket_counts = h->bucket_counts();
    snap.entries.push_back(std::move(e));
  }
  std::sort(snap.entries.begin(), snap.entries.end(),
            [](const Snapshot::Entry& a, const Snapshot::Entry& b) {
              return a.name < b.name;
            });
  return snap;
}

std::string MetricsRegistry::to_json() const {
  const Snapshot snap = snapshot();
  std::string out = "{";
  for (std::size_t i = 0; i < snap.entries.size(); ++i) {
    const auto& e = snap.entries[i];
    if (i > 0) out.push_back(',');
    json_append_escaped(out, e.name);
    out += ":{\"kind\":\"";
    out += e.kind;
    out += "\"";
    if (e.kind == "histogram") {
      out += ",\"count\":" + json_number(e.value);
      out += ",\"sum\":" + json_number(e.sum);
      out += ",\"bounds\":[";
      for (std::size_t b = 0; b < e.bounds.size(); ++b) {
        if (b > 0) out.push_back(',');
        out += json_number(e.bounds[b]);
      }
      out += "],\"buckets\":[";
      for (std::size_t b = 0; b < e.bucket_counts.size(); ++b) {
        if (b > 0) out.push_back(',');
        out += json_number(e.bucket_counts[b]);
      }
      out += "]";
    } else {
      out += ",\"value\":" + json_number(e.value);
    }
    out += "}";
  }
  out += "}";
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->set(0.0);
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& global_metrics() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

}  // namespace murphy::obs
