// Gaussian mixture model regressor.
//
// Fits a diagonal-covariance GMM to the joint (x, y) vectors with EM, then
// predicts E[y | x] as the responsibility-weighted mixture of per-component
// conditional means. One of the four candidate factor models of Fig. 8a.
#pragma once

#include <vector>

#include "src/common/rng.h"
#include "src/stats/predictor.h"

namespace murphy::stats {

class GmmRegressor final : public Predictor {
 public:
  GmmRegressor(int components, std::uint64_t seed);

  void fit(const Matrix& x, const Vector& y) override;
  [[nodiscard]] double predict(std::span<const double> x) const override;
  [[nodiscard]] double residual_sigma() const override { return sigma_; }
  [[nodiscard]] ModelKind kind() const override { return ModelKind::kGmm; }

  [[nodiscard]] int num_components() const {
    return static_cast<int>(comps_.size());
  }

 private:
  struct Component {
    double weight = 0.0;
    Vector mean;  // joint (x..., y) mean; y is the last dimension
    Vector var;   // diagonal variances, same layout
  };

  // log N(z | comp) over the x-dimensions only (for prediction) or all
  // dimensions (during EM), controlled by `dims`.
  [[nodiscard]] double log_density(const Component& c,
                                   std::span<const double> z,
                                   std::size_t dims) const;

  int requested_components_;
  std::uint64_t seed_;
  std::vector<Component> comps_;
  std::size_t dim_ = 0;  // joint dimension = p + 1
  double sigma_ = 0.0;
  Vector feat_mean_, feat_scale_;  // standardization of x dims
  double y_mean_ = 0.0, y_scale_ = 1.0;
  bool fitted_ = false;
};

}  // namespace murphy::stats
