# Empty compiler generated dependencies file for bench_fig8b_gibbs.
# This may be replaced when dependencies are built.
