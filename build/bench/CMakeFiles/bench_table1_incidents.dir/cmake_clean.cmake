file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_incidents.dir/bench_table1_incidents.cpp.o"
  "CMakeFiles/bench_table1_incidents.dir/bench_table1_incidents.cpp.o.d"
  "bench_table1_incidents"
  "bench_table1_incidents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_incidents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
