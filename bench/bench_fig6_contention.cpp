// Figure 6 — resource contention in microservices (§6.3).
//
// Regenerates: (6a) a sample latency trace with prior incidents and the main
// fault, and (6b/6c) top-K accuracy for the four schemes on the acyclic
// contention scenarios for social-network and hotel-reservation.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/strings.h"
#include "src/emulation/scenarios.h"
#include "src/eval/metrics.h"
#include "src/eval/runner.h"
#include "src/eval/ascii_chart.h"
#include "src/eval/tables.h"

using namespace murphy;

namespace {

void run_app(emulation::ContentionOptions::App app, const char* app_name,
             std::size_t scenarios, std::uint64_t seed) {
  const auto sweep = emulation::contention_sweep(app, scenarios,
                                                 /*prior_incidents=*/4, seed);
  auto schemes = bench::make_schemes(seed);
  struct Row {
    core::Diagnoser* scheme;
    eval::Accuracy acc;
  };
  std::vector<Row> rows;
  for (auto* s : schemes.all()) rows.push_back(Row{s, {}});

  std::size_t i = 0;
  for (const auto& opts : sweep) {
    const auto c = emulation::make_contention_case(opts);
    if (i == 0)
      bench::stamp_workload({app_name, c.entities.services.size(),
                             c.entities.nodes.size(), seed, "contention"});
    for (auto& row : rows) row.acc.add(eval::run_case(*row.scheme, c));
    std::fprintf(stderr, "  %s scenario %zu/%zu done\n", app_name, ++i,
                 sweep.size());
  }

  eval::Table table(
      {"scheme", "top-1", "top-2", "top-4", "top-5", "top-8"});
  for (const auto& row : rows) {
    table.add_row({std::string(row.scheme->name()),
                   format_double(row.acc.top_k(1), 2),
                   format_double(row.acc.top_k(2), 2),
                   format_double(row.acc.top_k(4), 2),
                   format_double(row.acc.top_k(5), 2),
                   format_double(row.acc.top_k(8), 2)});
  }
  std::printf("Fig 6%s: top-K accuracy (%s, %zu scenarios)\n%s\n",
              app == emulation::ContentionOptions::App::kSocialNetwork ? "b"
                                                                       : "c",
              app_name, sweep.size(), table.render().c_str());
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 6: resource contention (acyclic setup, Sage's home turf)",
      "Murphy 77% top-1 / 83% top-5; Sage 69% top-1 / 77% top-5; "
      "NetMedic and ExplainIt poor");

  // ---- Fig. 6a: a sample trace ------------------------------------------------
  {
    emulation::ContentionOptions opts;
    opts.app = emulation::ContentionOptions::App::kSocialNetwork;
    opts.slices = 280;
    opts.prior_incidents = 4;
    opts.seed = 2023;
    const auto c = emulation::make_contention_case(opts);
    const auto* lat = c.db.metrics().find(
        c.symptom_entity, c.db.catalog().find(telemetry::metrics::kLatency));
    std::printf("Fig 6a: client latency trace (social-network, 4 prior "
                "incidents, main fault at t=%zu0s)\n",
                c.incident_start);
    eval::ChartOptions copts;
    copts.x_label = "time (0 .. 2800s)";
    copts.y_label = "service latency (ms)";
    std::vector<double> trace(lat->values().begin(), lat->values().end());
    std::printf("%s\n", eval::line_chart(trace, copts).c_str());
  }

  const std::size_t scenarios = bench::scaled(8, 100);
  run_app(emulation::ContentionOptions::App::kSocialNetwork, "social-network",
          scenarios, 31);
  run_app(emulation::ContentionOptions::App::kHotelReservation,
          "hotel-reservation", scenarios, 37);

  std::printf("expected shape: murphy >= sage on top-1 and top-5; both far "
              "above netmedic/explainit\n");
  murphy::bench::write_bench_json("fig6_contention");
  return 0;
}
