// The murphyd line protocol, extracted from the daemon's main() so the
// stdio front end and the socket front end (net_server.h) dispatch through
// one implementation (DESIGN.md §12).
//
// Framing: one command per newline-terminated line, one response line per
// command ("OK ..." / "ERR ..."). A command may carry a client tag — a
// leading token starting with '#' (e.g. "#7 DIAGNOSE web cpu_util") — and
// its response line is then prefixed with the same tag ("#7 OK ...").
// Untagged commands produce the exact byte sequences the pre-socket stdio
// protocol produced, so existing transcripts keep working.
//
// Delivery: every verb except DIAGNOSE is answered synchronously, in
// command order. DIAGNOSE is scheduled on the DiagnosisService; in blocking
// mode (stdio) dispatch() waits for the result so responses stay strictly
// in command order, while in async mode (sockets) dispatch() returns as
// soon as the request is admitted and the response is delivered from the
// worker that completes it — possibly out of order relative to later
// commands, which is what tags are for. Either way every dispatched line
// gets exactly one response.
//
// Thread safety: dispatch() may be called concurrently from the stdio loop
// and the socket event loop; Protocol itself is stateless between calls and
// the hooks it is built with must be individually thread-safe (murphyd's
// are — replay is serialized by the daemon's replay mutex, the stream and
// service are concurrent by design).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/markers.h"
#include "src/obs/metrics.h"
#include "src/service/diagnosis_service.h"
#include "src/service/telemetry_stream.h"

namespace murphy::service {

// Strict full-token numeric parsing shared by protocol operands and the
// daemon's CLI (a failed istream extraction writes 0 over any preset — the
// max_hops-clobbering bug — so operands are parsed from explicit tokens).
// Rejects empty tokens, signs, trailing garbage and overflow.
[[nodiscard]] std::optional<std::uint64_t> parse_count(std::string_view tok);
// Strict finite double: full token, no trailing garbage, no inf/nan.
[[nodiscard]] std::optional<double> parse_double(std::string_view tok);

// Callbacks the daemon wires in; each must be thread-safe (see above).
struct ProtocolHooks {
  // Replays up to n feed slices, returns cells written (REPLAY verb).
  std::function<std::size_t(std::size_t)> replay_n;
  // Slices replayed so far (REPLAY response + STATS).
  std::function<std::size_t()> replayed;
  // Marker export shared with --marker-every (MARKERS verb).
  std::function<std::vector<obs::Marker>(double)> export_markers;
  // Incident table as a JSON array (INCIDENTS verb). Unset => "[]".
  std::function<std::string()> incidents_json;
  // Registry behind STATS; null disables the summary counters/quantiles.
  obs::MetricsRegistry* metrics = nullptr;
};

class Protocol {
 public:
  // One full response line, without the trailing '\n'. In async mode the
  // sink for a DIAGNOSE line is invoked from a service thread after
  // dispatch() returned; it must be safe to call from any thread.
  using Sink = std::function<void(std::string)>;

  enum class DispatchKind {
    kNone,       // empty line: no response
    kImmediate,  // sink was called before dispatch() returned
    kAsync,      // DIAGNOSE admitted; sink fires on completion
    kQuit,       // QUIT: "OK bye" sent, caller should wind down
  };

  // The stream and service must outlive the protocol.
  Protocol(TelemetryStream& stream, DiagnosisService& svc,
           ProtocolHooks hooks);

  // Dispatches one command line. `deliver_async` selects DIAGNOSE delivery:
  // false = block until the diagnosis completes (stdio ordering), true =
  // deliver from the completing worker (socket pipelining). Exactly one
  // sink call per non-empty line, kNone lines produce none.
  DispatchKind dispatch(std::string_view line, const Sink& sink,
                        bool deliver_async);

  // EXTEND bound: a mistyped count should not allocate the axis into
  // oblivion before admission control can say no.
  static constexpr std::uint64_t kMaxExtend = 1u << 20;

 private:
  DispatchKind dispatch_untagged(std::string_view line, const Sink& sink,
                                 bool deliver_async);
  [[nodiscard]] std::string format_diagnose_response(
      const ServiceResponse& resp) const;

  TelemetryStream& stream_;
  DiagnosisService& svc_;
  ProtocolHooks hooks_;
};

}  // namespace murphy::service
