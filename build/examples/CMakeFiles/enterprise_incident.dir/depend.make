# Empty dependencies file for enterprise_incident.
# This may be replaced when dependencies are built.
