file(REMOVE_RECURSE
  "libmurphy_emulation.a"
)
