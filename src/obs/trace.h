// Low-overhead span tracer with a Chrome trace-event / Perfetto exporter.
//
// Instrumented code opens RAII `Span`s against a `Tracer`; every completed
// span becomes one event (name, wall-clock interval, thread track, key/value
// args). Design constraints, in order:
//
//  * Near-zero cost when disabled. A null `Tracer*` is the runtime null
//    sink: the Span constructor then only reads the monotonic clock (the
//    phase timings of DiagnosisResult are derived from spans, so the clock
//    read stays) and records nothing. Compiling with -DMURPHY_OBS_DISABLED
//    removes the recording path entirely.
//  * Thread friendliness. Each thread appends completed spans to its own
//    buffer — no lock, no atomic on the hot path; buffers are registered
//    once per (thread, tracer) under a mutex and drained at export time,
//    which must happen after parallel work has joined.
//  * Determinism. Every span carries a *stable id* derived from its parent's
//    stable id, its name, and an optional caller-supplied stream index (the
//    loop index inside parallel regions) — never from arrival order or
//    thread identity. The deterministic export mode sorts spans by stable id
//    and replaces wall-clock fields with synthetic ones, so a diagnosis
//    traced at num_threads 1, 2 or 8 exports byte-identical JSON
//    (tests/obs_test.cpp holds this as a golden invariant).
//
// Nesting: spans opened on the same thread parent to the innermost open span
// of that thread. Inside a parallel_for the worker threads have empty span
// stacks, so parallel-loop instrumentation passes the enclosing span's id()
// explicitly — parentage is then identical at every thread count.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace murphy::obs {

// One completed span. `args` values are pre-rendered JSON fragments (quoted
// strings or numbers) so export is a plain concatenation.
struct SpanEvent {
  std::string name;
  std::uint64_t id = 0;      // stable id (thread-count invariant)
  std::uint64_t parent = 0;  // stable id of the parent span, 0 = root
  std::int64_t start_ns = 0; // since tracer construction, steady clock
  std::int64_t dur_ns = 0;
  std::uint32_t track = 0;   // per-thread track (wall-clock export only)
  std::vector<std::pair<std::string, std::string>> args;
};

struct TraceExportOptions {
  // When true, spans are sorted by (id, name, args) and the wall-clock
  // fields (ts/dur/tid) are replaced with synthetic values derived from that
  // order, making the export a pure function of the *logical* trace —
  // byte-identical across runs and thread counts. When false, real
  // timestamps and per-thread tracks are kept for flame-chart viewing in
  // Perfetto (ui.perfetto.dev) or chrome://tracing.
  bool deterministic = false;
};

class Tracer {
 public:
  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // All completed spans, sorted by (id, name). Must not run concurrently
  // with open spans; call after parallel work has joined.
  [[nodiscard]] std::vector<SpanEvent> events() const;

  // Chrome trace-event JSON ({"traceEvents":[...]}): load in Perfetto or
  // chrome://tracing. Same concurrency contract as events().
  [[nodiscard]] std::string to_chrome_json(
      const TraceExportOptions& opts = {}) const;

  // Drops all recorded spans (buffers stay registered).
  void clear();

 private:
  friend class Span;
  struct ThreadBuffer {
    std::vector<SpanEvent> done;
    std::vector<std::uint64_t> stack;  // open-span stable ids, this thread
    std::uint32_t track = 0;
  };

  // The calling thread's buffer, registering it on first use.
  [[nodiscard]] ThreadBuffer* current_buffer();

  const std::uint64_t gen_;  // process-unique tracer generation
  const std::chrono::steady_clock::time_point start_;
  mutable std::mutex mu_;  // guards buffers_ registration and drains
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

// RAII scoped span. Copy-free on the hot path; args are only materialized
// when the span is recording (check `enabled()` before formatting anything
// expensive).
class Span {
 public:
  // Opens a span parented to the innermost open span of this thread.
  // `stream` disambiguates same-named siblings — pass the loop index when
  // the span sits inside any loop, parallel or not.
  Span(Tracer* tracer, std::string_view name, std::uint64_t stream = 0);
  // Opens a span with an explicit parent id, ignoring the thread stack. Use
  // inside parallel loops, where the enclosing span lives on another
  // thread's stack.
  Span(Tracer* tracer, std::string_view name, std::uint64_t stream,
       std::uint64_t parent_id);
  ~Span() { finish(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // True when the span is recording (tracer attached and not compiled out).
  [[nodiscard]] bool enabled() const { return buffer_ != nullptr; }
  // Stable id, for parenting spans opened in parallel regions.
  [[nodiscard]] std::uint64_t id() const { return id_; }

  // Key/value attributes; no-ops unless enabled().
  void arg(std::string_view key, std::string_view value);
  void arg(std::string_view key, double value);
  void arg(std::string_view key, std::uint64_t value);
  void arg(std::string_view key, std::int64_t value);
  void arg(std::string_view key, bool value);

  // Ends the span now (idempotent; the destructor calls it) and returns the
  // elapsed wall-clock milliseconds. Works with a null tracer too: spans
  // are the single source of truth for PhaseTimings.
  double finish();

 private:
  void open(Tracer* tracer, std::string_view name, std::uint64_t stream,
            std::uint64_t parent, bool use_stack);

  Tracer* tracer_ = nullptr;
  Tracer::ThreadBuffer* buffer_ = nullptr;
  std::string_view name_;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::chrono::steady_clock::time_point begin_;
  double elapsed_ms_ = 0.0;
  bool done_ = false;
  std::vector<std::pair<std::string, std::string>> args_;
};

// Derives a child stable id outside any Span (e.g. to pre-compute the ids of
// per-item spans); exposed mainly for tests.
[[nodiscard]] std::uint64_t derive_span_id(std::uint64_t parent,
                                           std::string_view name,
                                           std::uint64_t stream);

// Convenience scope macro: MURPHY_TRACE_SCOPE(tracer, "phase") opens an
// anonymous span for the rest of the enclosing block.
#define MURPHY_OBS_CONCAT2(a, b) a##b
#define MURPHY_OBS_CONCAT(a, b) MURPHY_OBS_CONCAT2(a, b)
#define MURPHY_TRACE_SCOPE(tracer, name) \
  ::murphy::obs::Span MURPHY_OBS_CONCAT(murphy_span_, __LINE__)((tracer), (name))

}  // namespace murphy::obs
