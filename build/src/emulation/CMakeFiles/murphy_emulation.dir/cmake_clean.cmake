file(REMOVE_RECURSE
  "CMakeFiles/murphy_emulation.dir/app_model.cpp.o"
  "CMakeFiles/murphy_emulation.dir/app_model.cpp.o.d"
  "CMakeFiles/murphy_emulation.dir/faults.cpp.o"
  "CMakeFiles/murphy_emulation.dir/faults.cpp.o.d"
  "CMakeFiles/murphy_emulation.dir/scenarios.cpp.o"
  "CMakeFiles/murphy_emulation.dir/scenarios.cpp.o.d"
  "CMakeFiles/murphy_emulation.dir/simulator.cpp.o"
  "CMakeFiles/murphy_emulation.dir/simulator.cpp.o.d"
  "CMakeFiles/murphy_emulation.dir/trace_discovery.cpp.o"
  "CMakeFiles/murphy_emulation.dir/trace_discovery.cpp.o.d"
  "CMakeFiles/murphy_emulation.dir/tracing.cpp.o"
  "CMakeFiles/murphy_emulation.dir/tracing.cpp.o.d"
  "CMakeFiles/murphy_emulation.dir/workload.cpp.o"
  "CMakeFiles/murphy_emulation.dir/workload.cpp.o.d"
  "libmurphy_emulation.a"
  "libmurphy_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/murphy_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
