// Common interface for metric-prediction models.
//
// Murphy's per-entity factor P_v is "predict entity v's metric from its
// neighbors' metrics in the same time slice, plus Gaussian residual noise".
// The paper evaluates four candidate families for this sub-task (Fig. 8a):
// ridge linear regression, Gaussian mixture models, SVMs and small neural
// networks, and selects ridge. All four live behind this interface so the
// factor-model code and the Fig. 8a bench are model-agnostic.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "src/stats/matrix.h"

namespace murphy::stats {

enum class ModelKind {
  kRidge,
  kGmm,
  kSvr,
  kMlp,
};

[[nodiscard]] std::string_view model_kind_name(ModelKind kind);

class Predictor {
 public:
  virtual ~Predictor() = default;

  // Fits y ~ f(X). X has one row per observation; rows of X and entries of y
  // are aligned. Implementations must tolerate zero-variance columns and
  // n < p (all regimes occur with real telemetry).
  virtual void fit(const Matrix& x, const Vector& y) = 0;

  // Point prediction for a single feature row.
  [[nodiscard]] virtual double predict(std::span<const double> x) const = 0;

  // Standard deviation of the training residuals; the Gaussian conditional
  // used when the MRF *samples* (rather than point-predicts) a metric.
  [[nodiscard]] virtual double residual_sigma() const = 0;

  [[nodiscard]] virtual ModelKind kind() const = 0;
};

struct PredictorOptions {
  // Ridge / SVR L2 strength.
  double l2 = 1.0;
  // GMM components.
  int gmm_components = 3;
  // MLP topology (per the paper's footnote: up to 3 layers of 5 neurons).
  int mlp_hidden_layers = 2;
  int mlp_hidden_width = 5;
  int mlp_epochs = 200;
  double mlp_learning_rate = 0.01;
  // SVR epsilon-insensitive tube half-width (in standardized units).
  double svr_epsilon = 0.05;
  int svr_epochs = 120;
  // Random Fourier features approximating an RBF kernel; 0 = linear SVR.
  int svr_rff_features = 48;
  // Seed for stochastic trainers (MLP initialization, SGD shuffling).
  std::uint64_t seed = 1;
};

[[nodiscard]] std::unique_ptr<Predictor> make_predictor(
    ModelKind kind, const PredictorOptions& opts = {});

}  // namespace murphy::stats
