// Small string helpers used for report formatting and entity naming.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace murphy {

// "vm-web-03" style join of parts with the given separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

// Fixed-precision decimal rendering, e.g. format_double(0.8617, 2) == "0.86".
[[nodiscard]] std::string format_double(double v, int decimals);

// Left-pad/truncate to a column width; used by the bench table printers.
[[nodiscard]] std::string pad_right(std::string_view s, std::size_t width);
[[nodiscard]] std::string pad_left(std::string_view s, std::size_t width);

// True if `s` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

}  // namespace murphy
