#include "src/obs/markers.h"

#include <cctype>

#include "src/obs/json.h"

namespace murphy::obs {

namespace {

// "ms" when the instrument name's final [._-]-separated segment is a
// millisecond quantity ("service.total_ms", "matrix_latency....ms"),
// "count" otherwise. Heuristic by design: the registry carries no unit
// metadata, and the repo-wide naming convention is the _ms suffix.
std::string_view unit_of(std::string_view instrument) {
  if (instrument.size() >= 3) {
    const std::string_view tail = instrument.substr(instrument.size() - 3);
    if (tail == "_ms" || tail == ".ms") return "ms";
  }
  return instrument == "ms" ? "ms" : "count";
}

}  // namespace

std::string marker_name(std::string_view prefix, std::string_view instrument) {
  std::string out(prefix);
  bool upper_next = true;
  for (const char ch : instrument) {
    if (ch == '.' || ch == '_' || ch == '-') {
      upper_next = true;
      continue;
    }
    out.push_back(upper_next
                      ? static_cast<char>(
                            std::toupper(static_cast<unsigned char>(ch)))
                      : ch);
    upper_next = false;
  }
  out += "_split";
  return out;
}

std::string marker_payload_json(const Marker& m) {
  std::string out = "{\"sum\":";
  out += json_number(m.sum);
  out += ",\"count\":";
  out += json_number(m.count);
  out += ",\"unit\":";
  json_append_escaped(out, m.unit);
  out += ",\"reporting_interval_sec\":";
  out += json_number(m.interval_sec);
  out += "}";
  return out;
}

MarkerAggregator::MarkerAggregator(std::string prefix)
    : prefix_(std::move(prefix)) {}

std::vector<Marker> MarkerAggregator::collect(
    const MetricsRegistry::Snapshot& snap, double interval_sec) {
  std::vector<Marker> out;
  for (const auto& e : snap.entries) {
    Prev& prev = prev_[e.name];
    Marker m;
    m.name = marker_name(prefix_, e.name);
    m.unit = unit_of(e.name);
    m.interval_sec = interval_sec;
    bool emit = false;
    if (e.kind == "counter") {
      // A shrunken counter means the registry was reset mid-flight; report
      // the post-reset value rather than a negative delta.
      const double delta = e.value >= prev.value ? e.value - prev.value
                                                 : e.value;
      m.sum = delta;
      m.count = 1;
      emit = delta != 0.0;
    } else if (e.kind == "gauge") {
      m.sum = e.value;
      m.count = 1;
      emit = true;
    } else {  // histogram: e.value is the observation count
      const bool reset = e.value < prev.value || e.sum < prev.sum;
      const double dcount = reset ? e.value : e.value - prev.value;
      const double dsum = reset ? e.sum : e.sum - prev.sum;
      m.sum = dsum;
      m.count = static_cast<std::uint64_t>(dcount);
      emit = dcount != 0.0;
    }
    prev.value = e.value;
    prev.sum = e.sum;
    if (emit) out.push_back(std::move(m));
  }
  return out;
}

}  // namespace murphy::obs
