// The long-running diagnosis service (DESIGN.md §9): admission control,
// deadline enforcement, shutdown semantics, streaming ingestion under
// concurrent diagnoses, and the determinism contract — a kOk response is a
// pure function of (request, db version, options), bitwise identical at any
// worker count, arrival order or ingest interleaving. The soak test here is
// the TSAN target in CI.
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <future>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/murphy.h"
#include "src/obs/metrics.h"
#include "src/service/diagnosis_service.h"
#include "src/service/feed.h"
#include "src/service/telemetry_stream.h"

namespace murphy::service {
namespace {

using telemetry::ConfigEvent;
using telemetry::ConfigEventKind;
using telemetry::EntityType;
using telemetry::MonitoringDb;
using telemetry::RelationKind;

// Chain A -> B -> C -> D with a surge at A near the end — small enough that
// one diagnosis costs ~1 ms, rich enough to rank several candidates and emit
// explanation chains (same shape the concurrency tests use).
struct ChainEnv {
  MonitoringDb db;
  EntityId a, b, c, d;
  MetricKindId load;
};

ChainEnv make_chain_env(std::size_t slices) {
  ChainEnv e;
  e.a = e.db.add_entity(EntityType::kVm, "A");
  e.b = e.db.add_entity(EntityType::kVm, "B");
  e.c = e.db.add_entity(EntityType::kVm, "C");
  e.d = e.db.add_entity(EntityType::kVm, "D");
  e.db.add_association(e.a, e.b, RelationKind::kGeneric);
  e.db.add_association(e.b, e.c, RelationKind::kGeneric);
  e.db.add_association(e.c, e.d, RelationKind::kGeneric);
  e.load = e.db.catalog().intern("cpu_util");
  e.db.metrics().set_axis(TimeAxis(0.0, 10.0, slices));
  Rng rng(11);
  std::vector<double> va(slices), vb(slices), vc(slices), vd(slices);
  for (std::size_t t = 0; t < slices; ++t) {
    const double surge = t + 20 >= slices ? 14.0 : 0.0;
    va[t] = 6.0 + 2.0 * std::sin(0.07 * t) + rng.normal(0.0, 0.3) + surge;
    vb[t] = 1.6 * va[t] + rng.normal(0.0, 0.3);
    vc[t] = 1.2 * vb[t] + rng.normal(0.0, 0.4);
    vd[t] = 1.1 * vc[t] + rng.normal(0.0, 0.4);
  }
  e.db.metrics().put(e.a, e.load, va);
  e.db.metrics().put(e.b, e.load, vb);
  e.db.metrics().put(e.c, e.load, vc);
  e.db.metrics().put(e.d, e.load, vd);
  e.db.config_events().record(ConfigEvent{ConfigEventKind::kResourcesResized,
                                          e.b, static_cast<TimeIndex>(slices - 5),
                                          "vCPU 4 -> 8"});
  return e;
}

core::MurphyOptions fast_opts() {
  core::MurphyOptions mopts;
  mopts.sampler.num_samples = 20;
  mopts.num_threads = 1;  // workers provide the concurrency
  mopts.seed = 7;
  return mopts;
}

ServiceRequest make_request(const ChainEnv& env, TimeIndex train_end) {
  ServiceRequest req;
  req.symptom_entity = env.d;
  req.symptom_metric = "cpu_util";
  req.now = train_end - 1;
  req.train_begin = 0;
  req.train_end = train_end;
  return req;
}

// Direct (service-less) execution of the same request against a db — the
// reference side of the determinism contract. No caches: the cache layers
// are bitwise-transparent by their own tests.
core::DiagnosisResult run_direct(const MonitoringDb& db,
                                 const ServiceRequest& r,
                                 const core::MurphyOptions& base) {
  core::MurphyDiagnoser diagnoser(base);
  core::DiagnosisRequest q;
  q.db = &db;
  q.symptom_entity = r.symptom_entity;
  q.symptom_metric = r.symptom_metric;
  q.now = r.now;
  q.train_begin = r.train_begin;
  q.train_end = r.train_end;
  q.max_hops = r.max_hops;
  return diagnoser.diagnose(q);
}

void expect_bitwise_equal(const core::DiagnosisResult& a,
                          const core::DiagnosisResult& b) {
  ASSERT_EQ(a.causes.size(), b.causes.size());
  for (std::size_t i = 0; i < a.causes.size(); ++i) {
    EXPECT_EQ(a.causes[i].entity, b.causes[i].entity) << "rank " << i;
    // Bitwise, not approximate: the determinism contract is exact.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.causes[i].score),
              std::bit_cast<std::uint64_t>(b.causes[i].score))
        << "rank " << i;
  }
  EXPECT_EQ(a.explanations, b.explanations);
  ASSERT_EQ(a.recent_config_changes.size(), b.recent_config_changes.size());
  for (std::size_t i = 0; i < a.recent_config_changes.size(); ++i) {
    EXPECT_EQ(a.recent_config_changes[i].entity,
              b.recent_config_changes[i].entity);
    EXPECT_EQ(a.recent_config_changes[i].at, b.recent_config_changes[i].at);
  }
}

// ---------- the soak: concurrent ingest + diagnosis, nothing lost ---------

TEST(ServiceSoak, ThousandRequestsUnderStreamingIngest) {
  const ChainEnv env = make_chain_env(160);
  ReplayFeed feed = make_replay_feed(env.db, 120);
  ASSERT_EQ(feed.batches.size(), 40u);
  TelemetryStream stream(std::move(feed.warm));

  obs::MetricsRegistry registry;
  DiagnosisServiceOptions opts;
  opts.murphy = fast_opts();
  opts.murphy.obs.metrics = &registry;
  opts.num_workers = 3;
  opts.max_queue = 2048;  // soak exercises completion, not admission
  opts.cache_max_entries = 64;  // maintain() prunes for real during the run
  DiagnosisService svc(stream, opts);

  // db snapshots keyed by data_version, for post-hoc bitwise verification.
  // Only the ingester writes, only the main thread reads after join().
  // Versions between a replay's extend_axis and append have no entry and
  // are skipped — every mutation bumps data_version, so a version that IS
  // present names exactly one db state.
  std::map<std::uint64_t, MonitoringDb> db_at_version;
  {
    TelemetryStream::ReadLock lock = stream.read();
    db_at_version.emplace(lock->data_version(), *lock);
  }

  std::thread ingester([&] {
    for (std::size_t i = 0; i < feed.batches.size(); ++i) {
      replay_slice(stream, feed, i);
      {
        TelemetryStream::ReadLock lock = stream.read();
        db_at_version.emplace(lock->data_version(), *lock);
      }
      if (i % 8 == 7) svc.maintain();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  enum Category { kValid, kExpired, kInvalid };
  struct Issued {
    std::future<ServiceResponse> future;
    ServiceRequest req;
    Category category;
  };
  constexpr std::size_t kTotal = 1000;
  std::vector<Issued> issued;
  issued.reserve(kTotal);
  for (std::size_t i = 0; i < kTotal; ++i) {
    ServiceRequest req =
        make_request(env, static_cast<TimeIndex>(stream.slice_count()));
    req.train_begin = static_cast<TimeIndex>(i % 3);  // window variants
    req.priority = static_cast<int>(i % 4);
    Category cat = kValid;
    if (i % 9 == 4) {
      cat = kExpired;  // already past its deadline at submission
      req.deadline = std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1);
    } else if (i % 11 == 6) {
      cat = kInvalid;
      req.symptom_metric = "no_such_metric";
    }
    auto fut = svc.submit(req);
    issued.push_back({std::move(fut), std::move(req), cat});
    if (i % 16 == 15) std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  std::set<std::uint64_t> ids;
  std::size_t ok = 0, expired = 0, invalid = 0, other = 0;
  for (std::size_t i = 0; i < issued.size(); ++i) {
    const ServiceResponse resp = issued[i].future.get();  // never lost
    ids.insert(resp.request_id);
    switch (resp.status) {
      case RequestStatus::kOk:
        ++ok;
        EXPECT_EQ(issued[i].category, kValid);
        EXPECT_GT(resp.db_version, 0u);
        break;
      case RequestStatus::kDeadlineExceeded:
        ++expired;
        EXPECT_EQ(issued[i].category, kExpired);
        break;
      case RequestStatus::kInvalidRequest:
        ++invalid;
        EXPECT_EQ(issued[i].category, kInvalid);
        break;
      default:
        ++other;
        break;
    }
  }
  ingester.join();

  // Soak requests race the replay, so any of them may legitimately predate
  // the surge and find nothing. Now the feed is fully replayed: a final
  // deterministic batch over the complete window must rank causes.
  std::size_t with_causes = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    ServiceRequest req =
        make_request(env, static_cast<TimeIndex>(stream.slice_count()));
    req.train_begin = static_cast<TimeIndex>(i % 3);
    const ServiceResponse resp = svc.submit(std::move(req)).get();
    EXPECT_EQ(resp.status, RequestStatus::kOk);
    if (!resp.result.causes.empty()) ++with_causes;
  }
  svc.stop();

  // No response lost, none duplicated, every id unique.
  EXPECT_EQ(ids.size(), kTotal);
  EXPECT_EQ(ok + expired + invalid + other, kTotal);
  EXPECT_EQ(other, 0u);
  EXPECT_GT(ok, 0u);
  EXPECT_GT(with_causes, 0u);
  EXPECT_GT(expired, 0u);
  EXPECT_GT(invalid, 0u);

  // The service's own accounting agrees with the futures (the +6 is the
  // post-replay batch above).
  EXPECT_EQ(registry.find_counter("service.completed")->value(), ok + 6);
  EXPECT_EQ(registry.find_counter("service.deadline_exceeded")->value(),
            expired);
  EXPECT_EQ(registry.find_counter("service.invalid")->value(), invalid);
  EXPECT_EQ(registry.find_counter("service.rejected")->value(), 0u);
  const obs::Histogram* total_hist = registry.find_histogram("service.total_ms");
  ASSERT_NE(total_hist, nullptr);
  EXPECT_EQ(total_hist->count(), ok + expired + invalid + 6);
  EXPECT_NE(registry.find_gauge("service.queue_depth"), nullptr);
}

// Bitwise service-vs-direct at matching db versions, while ingest churns the
// epoch-keyed caches. Smaller request count than the soak — every kOk
// response is re-executed directly against a version-matched db copy.
TEST(ServiceDeterminism, ResponsesMatchDirectExecutionAtSameDbVersion) {
  const ChainEnv env = make_chain_env(160);
  ReplayFeed feed = make_replay_feed(env.db, 130);
  TelemetryStream stream(std::move(feed.warm));

  DiagnosisServiceOptions opts;
  opts.murphy = fast_opts();
  opts.num_workers = 3;
  opts.max_queue = 512;
  DiagnosisService svc(stream, opts);

  std::map<std::uint64_t, MonitoringDb> db_at_version;
  {
    TelemetryStream::ReadLock lock = stream.read();
    db_at_version.emplace(lock->data_version(), *lock);
  }
  std::thread ingester([&] {
    for (std::size_t i = 0; i < feed.batches.size(); ++i) {
      replay_slice(stream, feed, i);
      TelemetryStream::ReadLock lock = stream.read();
      db_at_version.emplace(lock->data_version(), *lock);
    }
  });

  struct Issued {
    std::future<ServiceResponse> future;
    ServiceRequest req;
  };
  std::vector<Issued> issued;
  for (std::size_t i = 0; i < 60; ++i) {
    ServiceRequest req =
        make_request(env, static_cast<TimeIndex>(stream.slice_count()));
    req.train_begin = static_cast<TimeIndex>(i % 3);
    req.priority = static_cast<int>(i % 2);
    auto fut = svc.submit(req);
    issued.push_back({std::move(fut), std::move(req)});
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }

  std::vector<std::pair<ServiceRequest, ServiceResponse>> completed;
  for (auto& is : issued) {
    ServiceResponse resp = is.future.get();
    ASSERT_EQ(resp.status, RequestStatus::kOk);
    completed.emplace_back(is.req, std::move(resp));
  }
  ingester.join();
  svc.stop();

  std::size_t verified = 0, skipped = 0;
  for (const auto& [req, resp] : completed) {
    const auto it = db_at_version.find(resp.db_version);
    if (it == db_at_version.end()) {
      // Ran between a replay's extend_axis and append — no snapshot exists
      // for that version. Legitimate; just not verifiable here.
      ++skipped;
      continue;
    }
    const core::DiagnosisResult direct = run_direct(it->second, req, opts.murphy);
    expect_bitwise_equal(resp.result, direct);
    ++verified;
  }
  // The ingester pauses between slices, so the overwhelming majority of
  // requests must land on snapshotted versions.
  EXPECT_GT(verified, skipped);
  EXPECT_GE(verified, 30u);
}

// Same fixed request set, workers 0 / 1 / 3: identical bitwise output, and
// identical to direct execution (worker count is pure mechanism).
TEST(ServiceDeterminism, WorkerCountDoesNotChangeBits) {
  const ChainEnv env = make_chain_env(150);
  std::vector<ServiceRequest> reqs;
  for (std::size_t i = 0; i < 9; ++i) {
    ServiceRequest r = make_request(env, 150);
    r.train_begin = static_cast<TimeIndex>(i % 3);
    r.priority = static_cast<int>(i % 3);
    reqs.push_back(r);
  }

  std::vector<std::vector<core::DiagnosisResult>> per_count;
  for (const std::size_t workers : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
    TelemetryStream stream{MonitoringDb(env.db)};  // copy: identical values
    DiagnosisServiceOptions opts;
    opts.murphy = fast_opts();
    opts.num_workers = workers;
    DiagnosisService svc(stream, opts);
    std::vector<std::future<ServiceResponse>> futs;
    for (const ServiceRequest& r : reqs) futs.push_back(svc.submit(r));
    std::vector<core::DiagnosisResult> results;
    for (auto& f : futs) {
      ServiceResponse resp = f.get();
      ASSERT_EQ(resp.status, RequestStatus::kOk);
      results.push_back(std::move(resp.result));
    }
    svc.stop();
    per_count.push_back(std::move(results));
  }

  for (std::size_t w = 1; w < per_count.size(); ++w)
    for (std::size_t i = 0; i < reqs.size(); ++i)
      expect_bitwise_equal(per_count[0][i], per_count[w][i]);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    core::MurphyOptions base = fast_opts();
    expect_bitwise_equal(per_count[0][i], run_direct(env.db, reqs[i], base));
  }
}

// ---------- admission control ----------------------------------------------

TEST(ServiceAdmission, QueueFullIsExplicitNeverSilent) {
  const ChainEnv env = make_chain_env(150);
  TelemetryStream stream{MonitoringDb(env.db)};
  obs::MetricsRegistry registry;
  DiagnosisServiceOptions opts;
  opts.murphy = fast_opts();
  opts.murphy.obs.metrics = &registry;
  opts.num_workers = 1;
  opts.max_queue = 2;
  DiagnosisService svc(stream, opts);

  std::vector<std::future<ServiceResponse>> futs;
  {
    // Holding the stream's write lock pins the single worker inside its
    // first execute() (it blocks on the read lock after popping), so
    // admission outcomes are fully deterministic: one popped + two queued
    // fit, everything else must be rejected — explicitly.
    TelemetryStream::WriteLock pin = stream.write();
    for (std::size_t i = 0; i < 10; ++i)
      futs.push_back(svc.submit(make_request(env, 150)));
    // Give the worker time to pop its request (it cannot finish: the write
    // lock is held). Without the pop the count below would be racy.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::size_t rejected_now = 0;
    for (auto& f : futs)
      if (f.wait_for(std::chrono::seconds(0)) == std::future_status::ready)
        ++rejected_now;
    // Rejections resolve synchronously at submit(); admitted ones are still
    // pending because the db is locked.
    EXPECT_GE(rejected_now, 10u - 3u);
  }  // release the db; the worker drains everything admitted

  std::size_t ok = 0, rejected = 0;
  for (auto& f : futs) {
    const ServiceResponse resp = f.get();
    if (resp.status == RequestStatus::kOk)
      ++ok;
    else if (resp.status == RequestStatus::kRejectedQueueFull)
      ++rejected;
    else
      FAIL() << "unexpected status " << to_string(resp.status);
  }
  EXPECT_EQ(ok + rejected, 10u);
  // At most: 1 popped by the pinned worker + 2 queued; at least the first 2
  // submissions fit (the queue cannot be full before it holds 2).
  EXPECT_LE(ok, 3u);
  EXPECT_GE(ok, 2u);
  EXPECT_EQ(registry.find_counter("service.rejected")->value(), rejected);
}

TEST(ServiceAdmission, SubmitAfterStopResolvesShuttingDown) {
  const ChainEnv env = make_chain_env(150);
  TelemetryStream stream{MonitoringDb(env.db)};
  DiagnosisServiceOptions opts;
  opts.murphy = fast_opts();
  opts.num_workers = 2;
  DiagnosisService svc(stream, opts);

  std::vector<std::future<ServiceResponse>> before;
  for (std::size_t i = 0; i < 6; ++i)
    before.push_back(svc.submit(make_request(env, 150)));
  svc.stop();
  // stop() completed every admitted request: all futures are ready now.
  for (auto& f : before) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_EQ(f.get().status, RequestStatus::kOk);
  }
  auto after = svc.submit(make_request(env, 150));
  EXPECT_EQ(after.get().status, RequestStatus::kShuttingDown);
  svc.stop();  // idempotent
}

// ---------- deadlines -------------------------------------------------------

TEST(ServiceDeadline, ExpiredBeforeDequeueNeverRuns) {
  const ChainEnv env = make_chain_env(150);
  TelemetryStream stream{MonitoringDb(env.db)};
  obs::MetricsRegistry registry;
  DiagnosisServiceOptions opts;
  opts.murphy = fast_opts();
  opts.murphy.obs.metrics = &registry;
  opts.num_workers = 1;
  DiagnosisService svc(stream, opts);

  ServiceRequest req = make_request(env, 150);
  req.deadline = std::chrono::steady_clock::now() - std::chrono::milliseconds(5);
  const ServiceResponse resp = svc.submit(std::move(req)).get();
  EXPECT_EQ(resp.status, RequestStatus::kDeadlineExceeded);
  // db_version stays 0: the diagnosis never ran.
  EXPECT_EQ(resp.db_version, 0u);
  EXPECT_TRUE(resp.result.causes.empty());
  EXPECT_EQ(registry.find_counter("service.deadline_exceeded")->value(), 1u);
}

TEST(ServiceDeadline, MidRunExpiryCancelsCooperatively) {
  const ChainEnv env = make_chain_env(150);
  TelemetryStream stream{MonitoringDb(env.db)};
  DiagnosisServiceOptions opts;
  opts.murphy = fast_opts();
  // Enough sampling work that the deadline below lands mid-run on any
  // machine; the phase-boundary cancellation hook must catch it.
  opts.murphy.sampler.num_samples = 4000;
  opts.num_workers = 1;
  DiagnosisService svc(stream, opts);

  ServiceRequest req = make_request(env, 150);
  req.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(2);
  const ServiceResponse resp = svc.submit(std::move(req)).get();
  EXPECT_EQ(resp.status, RequestStatus::kDeadlineExceeded);
  EXPECT_TRUE(resp.result.causes.empty());
}

// ---------- request validation ---------------------------------------------

TEST(ServiceValidation, UnknownEntityOrMetricIsInvalidRequest) {
  const ChainEnv env = make_chain_env(150);
  TelemetryStream stream{MonitoringDb(env.db)};
  DiagnosisServiceOptions opts;
  opts.murphy = fast_opts();
  opts.num_workers = 1;
  DiagnosisService svc(stream, opts);

  ServiceRequest bad_metric = make_request(env, 150);
  bad_metric.symptom_metric = "no_such_metric";
  EXPECT_EQ(svc.submit(std::move(bad_metric)).get().status,
            RequestStatus::kInvalidRequest);

  ServiceRequest bad_entity = make_request(env, 150);
  bad_entity.symptom_entity = EntityId(999);
  EXPECT_EQ(svc.submit(std::move(bad_entity)).get().status,
            RequestStatus::kInvalidRequest);
}

// ---------- stream snapshot integration ------------------------------------

TEST(ServiceSnapshot, RestoredStreamReproducesDiagnosisBitwise) {
  const ChainEnv env = make_chain_env(150);
  TelemetryStream stream{MonitoringDb(env.db)};
  const std::string path = testing::TempDir() + "/service_stream.snap";
  ASSERT_TRUE(stream.save_snapshot(path));

  TelemetryStream restored;
  telemetry::SnapshotError err;
  ASSERT_TRUE(restored.restore_snapshot(path, &err)) << err.message;
  EXPECT_EQ(restored.slice_count(), stream.slice_count());
  EXPECT_EQ(restored.data_version(), stream.data_version());

  DiagnosisServiceOptions opts;
  opts.murphy = fast_opts();
  opts.num_workers = 1;
  DiagnosisService svc_a(stream, opts);
  DiagnosisService svc_b(restored, opts);
  const ServiceResponse a = svc_a.submit(make_request(env, 150)).get();
  const ServiceResponse b = svc_b.submit(make_request(env, 150)).get();
  ASSERT_EQ(a.status, RequestStatus::kOk);
  ASSERT_EQ(b.status, RequestStatus::kOk);
  expect_bitwise_equal(a.result, b.result);
}

TEST(ServiceSnapshot, CorruptSnapshotLeavesStreamUntouched) {
  const ChainEnv env = make_chain_env(150);
  TelemetryStream stream{MonitoringDb(env.db)};
  const std::string path = testing::TempDir() + "/service_corrupt.snap";
  ASSERT_TRUE(stream.save_snapshot(path));
  {
    // Flip a payload byte past the header.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(100);
    char c;
    f.seekg(100);
    f.get(c);
    f.seekp(100);
    f.put(static_cast<char>(c ^ 0x10));
  }
  const std::uint64_t version_before = stream.data_version();
  const std::size_t slices_before = stream.slice_count();
  telemetry::SnapshotError err;
  EXPECT_FALSE(stream.restore_snapshot(path, &err));
  EXPECT_FALSE(err.message.empty());
  EXPECT_EQ(stream.data_version(), version_before);
  EXPECT_EQ(stream.slice_count(), slices_before);
}

// ---------- ingestion edge cases -------------------------------------------

TEST(TelemetryStreamIngest, DropsUnknownEntitiesAndOutOfAxisCells) {
  const ChainEnv env = make_chain_env(10);
  TelemetryStream stream{MonitoringDb(env.db)};
  const std::vector<TelemetryCell> cells = {
      {env.a, env.load, 3, 1.0},          // fine
      {EntityId(999), env.load, 3, 2.0},  // unknown entity: dropped
      {env.b, env.load, 400, 3.0},        // past the axis: dropped
  };
  EXPECT_EQ(stream.append(cells), 1u);
  EXPECT_TRUE(stream.append_cell(env.a, "cpu_util", 4, 5.5));
  EXPECT_FALSE(stream.append_cell(EntityId(999), "cpu_util", 4, 5.5));
}

}  // namespace
}  // namespace murphy::service
