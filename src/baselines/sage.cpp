#include "src/baselines/sage.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_map>

#include "src/core/metric_space.h"
#include "src/common/rng.h"
#include "src/stats/matrix.h"
#include "src/stats/summary.h"

namespace murphy::baselines {
namespace {

using telemetry::RelationKind;

// Dependency semantics of the association kinds Sage understands: X -> Y
// means "X's behaviour depends on Y". Sage is *given* the call-graph
// directions (that is its input requirement); what it cannot use are the
// loose associations whose direction nobody knows.
struct DepEdge {
  EntityId from;  // dependent
  EntityId to;    // dependency
};

// Extracts the dependency edges Sage can interpret. Returns nullopt when a
// required direction is unknown (the association is marked undirected), in
// which case Sage cannot construct its causal DAG from that edge.
std::vector<DepEdge> dependency_edges(const telemetry::MonitoringDb& db,
                                      bool* saw_undirected_call) {
  std::vector<DepEdge> out;
  *saw_undirected_call = false;
  for (std::size_t i = 0; i < db.association_count(); ++i) {
    const auto& assoc = db.association(i);
    switch (assoc.kind) {
      case RelationKind::kCallerCallee:
      case RelationKind::kClientOfService:
        if (!assoc.directed) {
          // Direction unknown -> Sage cannot place this edge in a DAG.
          *saw_undirected_call = true;
          continue;
        }
        // Directed associations are stored in influence order (callee ->
        // caller / service -> client); the dependent is the target side.
        out.push_back(DepEdge{assoc.b, assoc.a});
        break;
      case RelationKind::kServiceOnContainer:
        out.push_back(DepEdge{assoc.a, assoc.b});  // service depends on ctr
        break;
      case RelationKind::kContainerOnNode:
        out.push_back(DepEdge{assoc.a, assoc.b});
        break;
      default:
        // Loose association without causal semantics: unusable by Sage.
        break;
    }
  }
  return out;
}

}  // namespace

Sage::Sage(SageOptions opts) : opts_(opts) {}

core::DiagnosisResult Sage::diagnose(const core::DiagnosisRequest& request) {
  core::DiagnosisResult result;
  obs::Span diag_span(opts_.obs.tracer, "sage_diagnose");
  if (diag_span.enabled()) diag_span.arg("symptom_metric", request.symptom_metric);
  const telemetry::MonitoringDb& db = *request.db;

  bool saw_undirected_call = false;
  const auto deps = dependency_edges(db, &saw_undirected_call);
  if (deps.empty()) return result;  // no causal structure available at all

  // Model scope: the symptom's dependency subtree (BFS along dep edges).
  std::vector<EntityId> model;
  std::unordered_map<EntityId, std::size_t> index;
  std::deque<EntityId> queue{request.symptom_entity};
  index.emplace(request.symptom_entity, 0);
  model.push_back(request.symptom_entity);
  while (!queue.empty()) {
    const EntityId cur = queue.front();
    queue.pop_front();
    for (const DepEdge& e : deps) {
      if (e.from != cur) continue;
      if (index.find(e.to) != index.end()) continue;
      index.emplace(e.to, model.size());
      model.push_back(e.to);
      queue.push_back(e.to);
    }
  }
  if (model.size() < 2) return result;  // nothing to reason over

  // Adjacency within the model + cycle check (Kahn). A cyclic dependency
  // graph is outside Sage's model class: refuse.
  std::vector<std::vector<std::size_t>> deps_of(model.size());
  std::vector<std::size_t> out_degree(model.size(), 0);
  for (const DepEdge& e : deps) {
    const auto fi = index.find(e.from);
    const auto ti = index.find(e.to);
    if (fi == index.end() || ti == index.end()) continue;
    deps_of[fi->second].push_back(ti->second);
    ++out_degree[fi->second];
  }
  std::vector<std::size_t> order;  // leaves (no deps) first
  {
    std::vector<std::size_t> remaining = out_degree;
    std::deque<std::size_t> ready;
    for (std::size_t i = 0; i < model.size(); ++i)
      if (remaining[i] == 0) ready.push_back(i);
    std::vector<std::vector<std::size_t>> dependents(model.size());
    for (std::size_t i = 0; i < model.size(); ++i)
      for (const std::size_t d : deps_of[i]) dependents[d].push_back(i);
    while (!ready.empty()) {
      const std::size_t cur = ready.front();
      ready.pop_front();
      order.push_back(cur);
      for (const std::size_t parent : dependents[cur])
        if (--remaining[parent] == 0) ready.push_back(parent);
    }
    if (order.size() != model.size()) return result;  // cyclic: refuse
  }

  // Variables: all metrics of the model entities.
  struct SageVar {
    std::size_t node;
    MetricKindId kind;
  };
  std::vector<SageVar> vars;
  std::unordered_map<MetricRef, std::size_t> var_index;
  std::vector<std::vector<std::size_t>> node_vars(model.size());
  for (std::size_t n = 0; n < model.size(); ++n) {
    for (const MetricKindId kind : db.metrics().kinds_of(model[n])) {
      var_index.emplace(MetricRef{model[n], kind}, vars.size());
      node_vars[n].push_back(vars.size());
      vars.push_back(SageVar{n, kind});
    }
  }
  const auto symptom_kind = db.catalog().find(request.symptom_metric);
  const auto symptom_it =
      var_index.find(MetricRef{request.symptom_entity, symptom_kind});
  if (symptom_it == var_index.end()) return result;
  const std::size_t symptom_var = symptom_it->second;

  // Histories + per-variable generative model: predict each variable from
  // the metrics of the node's dependencies.
  const TimeIndex begin = request.train_begin;
  const TimeIndex end = request.train_end;
  const std::size_t rows = end - begin;
  std::vector<std::vector<double>> hist(vars.size());
  for (std::size_t v = 0; v < vars.size(); ++v) {
    const auto* ts = db.metrics().find(vars[v].node < model.size()
                                           ? model[vars[v].node]
                                           : EntityId::invalid(),
                                       vars[v].kind);
    hist[v] = ts ? ts->window(begin, end, 0.0)
                 : std::vector<double>(rows, 0.0);
  }

  struct NodeModel {
    std::vector<std::size_t> features;
    std::unique_ptr<stats::Predictor> predictor;
    double normal = 0.0;  // historical median, the "healthy" value
  };
  std::vector<NodeModel> models(vars.size());
  Rng rng(opts_.seed);
  for (std::size_t v = 0; v < vars.size(); ++v) {
    NodeModel& m = models[v];
    m.normal = stats::median(hist[v]);
    for (const std::size_t dep : deps_of[vars[v].node])
      for (const std::size_t f : node_vars[dep]) m.features.push_back(f);
    if (m.features.empty()) continue;  // leaf: exogenous
    stats::Matrix x(rows, m.features.size());
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t c = 0; c < m.features.size(); ++c)
        x.at(r, c) = hist[m.features[c]][r];
    stats::PredictorOptions popts = opts_.predictor;
    popts.seed = rng();
    m.predictor = stats::make_predictor(opts_.node_model, popts);
    m.predictor->fit(x, hist[v]);
  }

  // Current state + counterfactual replay.
  std::vector<double> current(vars.size(), 0.0);
  for (std::size_t v = 0; v < vars.size(); ++v) {
    const auto* ts = db.metrics().find(model[vars[v].node], vars[v].kind);
    if (ts) current[v] = ts->value_or(request.now, 0.0);
  }

  const auto replay = [&](std::size_t pinned_node) -> double {
    std::vector<double> state = current;
    // Pin the candidate's metrics to their historical normal.
    for (const std::size_t v : node_vars[pinned_node])
      state[v] = models[v].normal;
    // Recompute every non-leaf variable in dependency order (leaves first),
    // skipping the pinned node.
    std::vector<double> row;
    for (const std::size_t n : order) {
      if (n == pinned_node) continue;
      for (const std::size_t v : node_vars[n]) {
        const NodeModel& m = models[v];
        if (!m.predictor) continue;
        row.resize(m.features.size());
        for (std::size_t c = 0; c < m.features.size(); ++c)
          row[c] = state[m.features[c]];
        state[v] = m.predictor->predict(row);
      }
    }
    return state[symptom_var];
  };

  const double symptom_now = current[symptom_var];
  const double symptom_normal = models[symptom_var].normal;
  const double deviation = symptom_now - symptom_normal;
  if (std::abs(deviation) < 1e-9) return result;

  std::vector<core::RankedRootCause> ranked;
  for (std::size_t n = 1; n < model.size(); ++n) {  // skip the symptom itself
    const double cf = replay(n);
    // Fraction of the deviation the counterfactual removes.
    const double restored = (symptom_now - cf) / deviation;
    if (restored >= opts_.restoration_threshold)
      ranked.push_back(core::RankedRootCause{model[n], restored});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const core::RankedRootCause& a, const core::RankedRootCause& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.entity < b.entity;
            });
  result.causes = std::move(ranked);
  if (opts_.obs.metrics != nullptr) {
    opts_.obs.metrics->counter("sage.candidates_replayed")
        ->add(model.size() - 1);
    opts_.obs.metrics->counter("sage.causes_reported")
        ->add(result.causes.size());
  }
  return result;
}

}  // namespace murphy::baselines
