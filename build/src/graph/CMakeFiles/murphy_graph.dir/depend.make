# Empty dependencies file for murphy_graph.
# This may be replaced when dependencies are built.
