# Empty dependencies file for bench_table2_robustness.
# This may be replaced when dependencies are built.
