// Shared helpers for the benchmark harnesses.
//
// Every bench binary regenerates one table or figure of the paper's
// evaluation section. Absolute numbers differ (the substrate is a simulator,
// not the authors' testbed); what must hold is the *shape*: which scheme
// wins, by roughly what factor, and where crossovers fall. Each binary
// prints the paper's reported values alongside the measured ones.
//
// MURPHY_BENCH_SCALE=quick|full (default quick) controls workload sizes so
// the whole suite runs in minutes on one core; "full" approaches the paper's
// scenario counts.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/baselines/explainit.h"
#include "src/baselines/netmedic.h"
#include "src/baselines/sage.h"
#include "src/common/thread_pool.h"
#include "src/core/murphy.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"

namespace murphy::bench {

inline bool full_scale() {
  const char* env = std::getenv("MURPHY_BENCH_SCALE");
  return env != nullptr && std::string(env) == "full";
}

// Scales a scenario count: `quick` in quick mode, `full` otherwise.
inline std::size_t scaled(std::size_t quick, std::size_t full) {
  return full_scale() ? full : quick;
}

// MURPHY_FAST_INFERENCE=1 runs every make_schemes() Murphy instance with the
// vectorized counterfactual kernel (MurphyOptions::fast_inference). The mode
// is stamped into the BENCH_*.json header alongside num_threads/build_flags
// so fast and scalar baselines can never be silently compared.
inline bool fast_inference_env() {
  const char* env = std::getenv("MURPHY_FAST_INFERENCE");
  return env != nullptr && std::string(env) == "1";
}

struct SchemeSet {
  std::unique_ptr<core::MurphyDiagnoser> murphy;
  std::unique_ptr<baselines::Sage> sage;
  std::unique_ptr<baselines::NetMedic> netmedic;
  std::unique_ptr<baselines::ExplainIt> explainit;

  std::vector<core::Diagnoser*> all() {
    return {murphy.get(), sage.get(), netmedic.get(), explainit.get()};
  }
};

// Constructs all four schemes with bench-appropriate sampling effort. All
// four record engine internals into the process-global metrics registry so
// write_bench_json can snapshot them when the binary exits.
inline SchemeSet make_schemes(std::uint64_t seed = 1) {
  SchemeSet s;
  core::MurphyOptions mopts;
  mopts.sampler.num_samples = full_scale() ? 500 : 150;
  mopts.fast_inference = fast_inference_env();
  mopts.seed = seed;
  mopts.obs.metrics = &obs::global_metrics();
  s.murphy = std::make_unique<core::MurphyDiagnoser>(mopts);
  baselines::SageOptions sopts;
  sopts.seed = seed;
  sopts.obs.metrics = &obs::global_metrics();
  s.sage = std::make_unique<baselines::Sage>(sopts);
  baselines::NetMedicOptions nopts;
  nopts.obs.metrics = &obs::global_metrics();
  s.netmedic = std::make_unique<baselines::NetMedic>(nopts);
  baselines::ExplainItOptions eopts;
  eopts.obs.metrics = &obs::global_metrics();
  s.explainit = std::make_unique<baselines::ExplainIt>(eopts);
  return s;
}

// Workload provenance: which topology/scenario shape produced the numbers.
// Benches stamp one entry per distinct workload (topology level, app model,
// sweep...) before exiting; write_bench_json emits them under "workloads".
// Without the stamp a snapshot says *how fast* but not *on what* — two
// BENCH files with different node counts or fault mixes are not comparable.
struct WorkloadInfo {
  std::string topology;   // generator level or app-model name
  std::size_t services = 0;
  std::size_t nodes = 0;  // physical nodes hosting the containers
  std::uint64_t seed = 0;
  std::string fault_mix;  // comma-joined fault/incident kinds (may be empty)
};

inline std::vector<WorkloadInfo>& workload_stamps() {
  static std::vector<WorkloadInfo> stamps;
  return stamps;
}

inline void stamp_workload(WorkloadInfo info) {
  workload_stamps().push_back(std::move(info));
}

inline std::string workloads_json() {
  std::string out = "[";
  bool first = true;
  for (const WorkloadInfo& w : workload_stamps()) {
    if (!first) out += ",";
    first = false;
    out += "{\"topology\":";
    obs::json_append_escaped(out, w.topology);
    out += ",\"services\":" + std::to_string(w.services);
    out += ",\"nodes\":" + std::to_string(w.nodes);
    out += ",\"seed\":" + std::to_string(w.seed);
    out += ",\"fault_mix\":";
    obs::json_append_escaped(out, w.fault_mix);
    out += "}";
  }
  out += "]";
  return out;
}

// Provenance stamped into every snapshot (configure-time capture; see
// bench/CMakeLists.txt).
#ifndef MURPHY_GIT_SHA
#define MURPHY_GIT_SHA "unknown"
#endif
#ifndef MURPHY_BUILD_FLAGS
#define MURPHY_BUILD_FLAGS "unknown"
#endif

// Dumps the global metrics registry (engine internals plus the phase.*_ms
// timing histograms) as BENCH_<name>.json next to the binary's cwd, so runs
// are machine-readable in addition to the stdout tables. Each snapshot is
// stamped with the measurement's provenance: git SHA, build flags, and the
// thread count the process would resolve for parallel phases — numbers
// without that context can't be compared across machines or commits.
inline void write_bench_json(const char* name) {
  const std::string path = std::string("BENCH_") + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::string out = "{\"bench\":";
  obs::json_append_escaped(out, name);
  out += ",\"scale\":\"";
  out += full_scale() ? "full" : "quick";
  out += "\",\"git_sha\":\"" MURPHY_GIT_SHA "\"";
  out += ",\"build_flags\":";
  obs::json_append_escaped(out, MURPHY_BUILD_FLAGS);
  out += ",\"num_threads\":";
  out += std::to_string(resolve_num_threads(0));
  // Inference-mode knobs: snapshots from different modes are not comparable
  // (fast mode trades the bitwise contract for throughput), so the header
  // carries the mode next to the other provenance fields.
  out += ",\"fast_inference\":";
  out += fast_inference_env() ? "true" : "false";
  if (!workload_stamps().empty()) {
    out += ",\"workloads\":";
    out += workloads_json();
  }
  out += ",\"metrics\":";
  out += obs::global_metrics().to_json();
  out += "}\n";
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("\n[metrics written to %s]\n", path.c_str());
}

inline void print_header(const char* experiment, const char* paper_summary) {
  std::printf("==================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_summary);
  std::printf("scale: %s (set MURPHY_BENCH_SCALE=full for paper-sized runs)\n",
              full_scale() ? "full" : "quick");
  std::printf("==================================================================\n\n");
}

}  // namespace murphy::bench
