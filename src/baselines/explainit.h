// ExplainIt-style baseline (Jeyakumar et al., SIGMOD '19, as used in the
// paper's comparisons): rank candidate root causes by the pairwise
// correlation between their metrics and the problematic symptom metric. No
// topological reasoning — which is precisely the weakness the paper's
// evaluation exposes (nearby, highly-correlated entities dominate the
// ranking regardless of causal plausibility).
#pragma once

#include "src/core/diagnosis.h"
#include "src/obs/hooks.h"

namespace murphy::baselines {

struct ExplainItOptions {
  // Correlation window: the trailing fraction of the training range used
  // for correlation (ExplainIt correlates over the queried interval).
  double window_fraction = 1.0;
  // Minimum |correlation| for an entity to be reported at all. Calibrated
  // per-experiment (§6.2 calibrates every scheme for equal recall).
  double min_correlation = 0.1;
  // Share Murphy's pruned candidate search space (the paper grants this to
  // all reference schemes; it improved their accuracy).
  bool use_pruned_search_space = true;
  // Optional observability hooks (span per diagnosis + candidate counters).
  obs::ObsHooks obs;
};

class ExplainIt final : public core::Diagnoser {
 public:
  explicit ExplainIt(ExplainItOptions opts = {});

  [[nodiscard]] core::DiagnosisResult diagnose(
      const core::DiagnosisRequest& request) override;
  [[nodiscard]] std::string_view name() const override { return "explainit"; }

  ExplainItOptions& mutable_options() { return opts_; }

 private:
  ExplainItOptions opts_;
};

}  // namespace murphy::baselines
