#include "src/common/rng.h"

#include <cassert>
#include <cmath>

namespace murphy {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t state = seed ^ (stream * 0xBF58476D1CE4E5B9ULL);
  (void)splitmix64(state);
  return splitmix64(state);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::below(std::uint64_t n) {
  assert(n > 0);
  // Rejection sampling to remove modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

double Rng::exponential(double rate) {
  assert(rate > 0.0);
  // uniform() can return 0; 1-u is in (0, 1].
  return -std::log(1.0 - uniform()) / rate;
}

Rng Rng::fork() { return Rng((*this)() ^ 0xD1B54A32D192ED03ULL); }

}  // namespace murphy
