#include "src/stats/summary.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace murphy::stats {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - mu) * (x - mu);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double zscore(double x, double mu, double sigma, double sigma_floor) {
  return (x - mu) / std::max(sigma, sigma_floor);
}

double quantile(std::span<const double> xs, double q) {
  assert(!xs.empty());
  assert(q >= 0.0 && q <= 1.0);
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return quantile(xs, 0.5);
}

double mad_sigma(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double med = median(xs);
  std::vector<double> dev(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) dev[i] = std::abs(xs[i] - med);
  const double mad = median(dev);
  const double robust = 1.4826 * mad;
  if (robust > 1e-12) return robust;
  // MAD degenerates to 0 for heavily quantized series (>50% identical
  // values); only then fall back to a fraction of the classic scale.
  return 0.1 * stddev(xs);
}

double mase(std::span<const double> predicted, std::span<const double> actual) {
  assert(predicted.size() == actual.size());
  if (actual.size() < 2) return 0.0;
  double err = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i)
    err += std::abs(predicted[i] - actual[i]);
  err /= static_cast<double>(actual.size());

  double naive = 0.0;
  for (std::size_t i = 1; i < actual.size(); ++i)
    naive += std::abs(actual[i] - actual[i - 1]);
  naive /= static_cast<double>(actual.size() - 1);

  if (naive < 1e-12) return err < 1e-12 ? 0.0 : 1e6;
  return err / naive;
}

std::vector<double> sorted_copy(std::span<const double> xs) {
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  return v;
}

}  // namespace murphy::stats
