// Service throughput bench: concurrent diagnosis requests over streaming
// ingestion (DESIGN.md §9).
//
// Drives the murphyd stack — TelemetryStream + DiagnosisService — with the
// microservice interference scenario: the feed's incident tail is replayed
// into the stream while batches of diagnosis requests (mixed priorities,
// varying training windows) flow through the worker pool. Reported numbers:
// end-to-end request latency p50/p99 (exact, over the collected responses)
// and sustained req/s, plus the service's own latency histograms in the
// JSON snapshot. There is no paper figure for this — the paper's engine is
// offline — so the bench documents the service's engineering envelope.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/emulation/scenarios.h"
#include "src/service/diagnosis_service.h"
#include "src/service/feed.h"
#include "src/service/telemetry_stream.h"

using namespace murphy;

namespace {

double exact_quantile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

int main() {
  bench::print_header(
      "Service throughput: concurrent diagnosis over streaming ingestion",
      "engineering experiment (no paper figure) — the long-running service's "
      "latency/throughput envelope");

  emulation::InterferenceOptions sopts;
  const auto scenario = make_interference_case(sopts);
  bench::stamp_workload({"hotel-reservation",
                         scenario.entities.services.size(),
                         scenario.entities.nodes.size(), sopts.seed,
                         "interference,streaming-replay"});
  // Warm start just past the incident ramp; the tail streams in during the
  // run, churning series epochs under the caches exactly as production would.
  service::ReplayFeed feed = service::make_replay_feed(
      scenario.db, scenario.incident_start + 20);
  service::TelemetryStream stream(std::move(feed.warm));

  service::DiagnosisServiceOptions svc_opts;
  svc_opts.num_workers = std::clamp<std::size_t>(resolve_num_threads(0), 2, 4);
  svc_opts.max_queue = 1024;  // throughput run: admission never rejects
  svc_opts.murphy.num_threads = 1;
  svc_opts.murphy.sampler.num_samples = bench::full_scale() ? 500 : 150;
  svc_opts.murphy.obs.metrics = &obs::global_metrics();
  service::DiagnosisService svc(stream, svc_opts);

  const std::size_t requests = bench::scaled(120, 600);
  std::printf("%zu requests, %zu workers, %zu feed slices streaming in\n\n",
              requests, svc_opts.num_workers, feed.batches.size());

  std::atomic<bool> done{false};
  std::thread ingester([&] {
    // One slice every few ms until the feed is dry; maintain() bounds the
    // epoch-keyed caches under the exclusive lock.
    std::size_t next = 0;
    while (!done.load() && next < feed.batches.size()) {
      service::replay_slice(stream, feed, next++);
      svc.maintain();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  std::vector<std::future<service::ServiceResponse>> futures;
  futures.reserve(requests);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < requests; ++i) {
    service::ServiceRequest req;
    req.symptom_entity = scenario.symptom_entity;
    req.symptom_metric = scenario.symptom_metric;
    const std::size_t slices = stream.slice_count();
    req.now = slices - 1;
    req.train_begin = i % 3;  // three window variants share cache entries
    req.train_end = slices;
    req.priority = static_cast<int>(i % 2);
    futures.push_back(svc.submit(std::move(req)));
    if ((i + 1) % svc_opts.num_workers == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::vector<double> total_ms;
  std::size_t ok = 0, rejected = 0, other = 0;
  for (auto& f : futures) {
    const service::ServiceResponse resp = f.get();
    if (resp.status == service::RequestStatus::kOk) {
      ++ok;
      total_ms.push_back(resp.queue_ms + resp.run_ms);
    } else if (resp.status == service::RequestStatus::kRejectedQueueFull) {
      ++rejected;
    } else {
      ++other;
    }
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  done.store(true);
  ingester.join();
  svc.stop();

  std::sort(total_ms.begin(), total_ms.end());
  const double p50 = exact_quantile(total_ms, 0.50);
  const double p99 = exact_quantile(total_ms, 0.99);
  const double rps = static_cast<double>(ok) / wall_s;

  std::printf("completed %zu  rejected %zu  other %zu  in %.2f s\n", ok,
              rejected, other, wall_s);
  std::printf("throughput : %8.1f req/s\n", rps);
  std::printf("latency p50: %8.1f ms\n", p50);
  std::printf("latency p99: %8.1f ms\n", p99);

  auto& m = obs::global_metrics();
  m.gauge("bench.req_per_s")->set(rps);
  m.gauge("bench.p50_ms")->set(p50);
  m.gauge("bench.p99_ms")->set(p99);
  m.gauge("bench.completed")->set(static_cast<double>(ok));
  bench::write_bench_json("service_throughput");
  return 0;
}
