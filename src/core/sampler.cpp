#include "src/core/sampler.h"

#include <algorithm>
#include <cassert>

#include "src/stats/ttest.h"
#include "src/stats/summary.h"

namespace murphy::core {

CounterfactualSampler::CounterfactualSampler(
    const graph::RelationshipGraph& graph, const MetricSpace& space,
    const FactorSet& factors, SamplerOptions opts)
    : graph_(graph),
      space_(space),
      factors_(factors),
      opts_(opts),
      rng_(opts.seed) {}

void CounterfactualSampler::prepare(graph::NodeIndex dst) {
  dist_to_ = graph_.distances_to(dst);
  prepared_dst_ = dst;
}

double CounterfactualSampler::resample_path(
    std::span<const graph::NodeIndex> path, VarIndex d_var,
    std::vector<double>& state, Rng& rng, std::size_t gibbs_rounds) const {
  for (std::size_t round = 0; round < gibbs_rounds; ++round) {
    for (std::size_t i = 1; i < path.size(); ++i)  // skip pinned candidate
      factors_.resample_node(path[i], space_, state, rng);
  }
  return state[d_var];
}

CounterfactualVerdict CounterfactualSampler::evaluate(
    graph::NodeIndex a, VarIndex a_var, graph::NodeIndex d, VarIndex d_var,
    std::span<const double> state, bool symptom_high) {
  return evaluate(a, a_var, d, d_var, state, symptom_high, rng_);
}

bool CounterfactualSampler::evaluate_fast(
    std::span<const VarIndex> order, VarIndex a_var, VarIndex d_var,
    std::span<const double> cent0, double cent_a_cf, Rng& rng,
    std::vector<double>& d1, std::vector<double>& d2) const {
  const SampleKernel& kernel = factors_.kernel();
  for (const VarIndex v : order)
    if (!kernel.vars[v].flat) return false;  // non-ridge family on the path

  // --- SoA packing -----------------------------------------------------------
  // Compact the written variable set (`order`) into slots [0, m). Features of
  // a resampled conditional split three ways: slot features vary per lane
  // (chain) and stay in the inner loop; the pinned candidate variable is
  // constant per SIDE and folds into a per-side base; every other feature is
  // frozen at its factual centered value and folds into the base outright.
  // With the kernel's pre-divided weights the inner loop is then a pure
  // FMA over contiguous lanes.
  const std::size_t m = order.size();
  thread_local std::vector<std::int32_t> slot_of;
  slot_of.assign(cent0.size(), -1);
  for (std::size_t j = 0; j < m; ++j)
    slot_of[order[j]] = static_cast<std::int32_t>(j);
  const std::int32_t d_slot = slot_of[d_var];
  if (d_slot < 0) return false;  // defensive: d must be on the path

  thread_local std::vector<std::uint32_t> vf_begin, vf_slot;
  thread_local std::vector<double> vf_w, base_c, a_coef, sigma, init_cent;
  vf_begin.resize(m + 1);
  vf_slot.clear();
  vf_w.clear();
  base_c.resize(m);
  a_coef.resize(m);
  sigma.resize(m);
  init_cent.resize(m);
  for (std::size_t j = 0; j < m; ++j) {
    const VarIndex v = order[j];
    const SampleKernel::VarEntry& e = kernel.vars[v];
    vf_begin[j] = static_cast<std::uint32_t>(vf_slot.size());
    double base = e.base;
    double ac = 0.0;
    for (std::uint32_t k = e.begin; k < e.begin + e.count; ++k) {
      const std::uint32_t f = kernel.feat[k];
      const double wd = kernel.wdiv[k];
      if (f == a_var) {
        ac += wd;
      } else if (slot_of[f] >= 0) {
        vf_slot.push_back(static_cast<std::uint32_t>(slot_of[f]));
        vf_w.push_back(wd);
      } else {
        base += wd * cent0[f];
      }
    }
    // Store the base already re-centered for variable v: the lane update is
    // then cent[v] = base_c + sum(varying) + sigma * z in one pass.
    base_c[j] = base - kernel.mean[v];
    a_coef[j] = ac;
    sigma[j] = e.sigma;
    init_cent[j] = cent0[v];
  }
  vf_begin[m] = static_cast<std::uint32_t>(vf_slot.size());

  // --- lane-batched chains ---------------------------------------------------
  constexpr std::size_t kLanes = 64;
  thread_local std::vector<double> centL, mu, z, side_base;
  centL.resize(m * kLanes);
  mu.resize(kLanes);
  z.resize(kLanes);
  side_base.resize(m);
  const std::size_t rounds = opts_.gibbs_rounds;
  const double mean_d = kernel.mean[d_var];

  auto run_side = [&](double cent_a, std::vector<double>& out) {
    for (std::size_t j = 0; j < m; ++j)
      side_base[j] = base_c[j] + a_coef[j] * cent_a;
    for (std::size_t s0 = 0; s0 < opts_.num_samples; s0 += kLanes) {
      const std::size_t lanes = std::min(kLanes, opts_.num_samples - s0);
      for (std::size_t j = 0; j < m; ++j) {
        const double c0 = init_cent[j];
        double* cj = centL.data() + j * kLanes;
        for (std::size_t l = 0; l < lanes; ++l) cj[l] = c0;
      }
      for (std::size_t round = 0; round < rounds; ++round) {
        for (std::size_t j = 0; j < m; ++j) {
          rng.fill_normal(std::span<double>(z.data(), lanes));
          const double b = side_base[j];
          for (std::size_t l = 0; l < lanes; ++l) mu[l] = b;
          for (std::uint32_t k = vf_begin[j]; k < vf_begin[j + 1]; ++k) {
            const double w = vf_w[k];
            const double* cf = centL.data() + vf_slot[k] * kLanes;
            for (std::size_t l = 0; l < lanes; ++l) mu[l] += w * cf[l];
          }
          const double sg = sigma[j];
          double* cj = centL.data() + j * kLanes;
          for (std::size_t l = 0; l < lanes; ++l) cj[l] = mu[l] + sg * z[l];
        }
      }
      const double* cd = centL.data() + static_cast<std::size_t>(d_slot) * kLanes;
      for (std::size_t l = 0; l < lanes; ++l) out.push_back(cd[l] + mean_d);
    }
  };
  run_side(cent_a_cf, d1);
  run_side(cent0[a_var], d2);
  return true;
}

CounterfactualVerdict CounterfactualSampler::evaluate(
    graph::NodeIndex a, VarIndex a_var, graph::NodeIndex d, VarIndex d_var,
    std::span<const double> state, bool symptom_high, Rng& rng) const {
  CounterfactualVerdict verdict;
  if (a == d) return verdict;

  // One backward BFS per diagnosis (prepare), one bounded forward BFS per
  // candidate; same path vector as the self-contained overload.
  const auto path =
      d == prepared_dst_
          ? graph_.shortest_path_subgraph(a, d, opts_.path_slack, dist_to_)
          : graph_.shortest_path_subgraph(a, d, opts_.path_slack);
  if (path.empty()) return verdict;  // A cannot influence D
  verdict.path_len = path.size();
  verdict.node_resamples =
      2 * opts_.num_samples * opts_.gibbs_rounds * (path.size() - 1);

  const MetricConditional& a_cond = factors_.conditional(a_var);
  const double a_now = state[a_var];
  // Counterfactual: push A's driver metric 2 sigma toward its historical
  // normal (lower when it's abnormally high, higher when abnormally low).
  // Direction comes from the robust center; the magnitude uses the classic
  // stddev of the window, which (incident included) reflects the scale of
  // recent excursions (§4.2 step 1).
  const double sigma = std::max(a_cond.hist_sigma(), 1e-6);
  const double direction = a_now >= a_cond.robust_center() ? -1.0 : 1.0;
  const double a_cf =
      a_now + direction * opts_.counterfactual_sigmas * sigma;

  // The inner loop below is the engine's hottest code (hundreds of millions
  // of variable draws per batch run). It is equivalent draw-for-draw to
  // resample_path() over a fresh copy of `state` per sample, but
  //  - the resampling order is flattened once into `order` (vars of
  //    path[1..], the candidate's own vars stay pinned),
  //  - conditionals are drawn through FactorSet::kernel_sample over the
  //    shared standardized z-state (see SampleKernel),
  //  - instead of re-copying the full state per sample, only the variables
  //    this path actually writes (`order` + a_var) are restored,
  // none of which changes a single draw or FP operation.
  thread_local std::vector<VarIndex> order;
  order.clear();
  for (std::size_t i = 1; i < path.size(); ++i)
    for (const VarIndex v : space_.vars_of(path[i])) order.push_back(v);

  const SampleKernel& kernel = factors_.kernel();
  std::size_t cells_per_round = 0;
  for (const VarIndex v : order) cells_per_round += kernel.vars[v].count;
  verdict.kernel_cells =
      2 * opts_.num_samples * opts_.gibbs_rounds * cells_per_round;

  const std::size_t n_vars = state.size();
  thread_local std::vector<double> work, cent, cent0, d1, d2;
  work.assign(state.begin(), state.end());
  cent.resize(n_vars);
  for (VarIndex v = 0; v < n_vars; ++v)
    cent[v] = factors_.center(v, state[v]);
  cent0.assign(cent.begin(), cent.end());
  const double a_cf_c = factors_.center(a_var, a_cf);

  d1.clear();
  d2.clear();
  d1.reserve(opts_.num_samples);
  d2.reserve(opts_.num_samples);

  // Opt-in vectorized path: lane-batch the independent chains over an SoA
  // state. Statistically equivalent, not bitwise (see SamplerOptions); the
  // work accounting above is shared, so both modes report identical
  // node_resamples/kernel_cells for the same request. Falls back per
  // candidate when the path touches a non-flattened conditional.
  if (opts_.fast_inference &&
      evaluate_fast(order, a_var, d_var, cent0, a_cf_c, rng, d1, d2)) {
    verdict.fast_path = true;
    const auto t = stats::welch_t_test(d1, d2);
    verdict.p_value = symptom_high ? t.p_less : 1.0 - t.p_less;
    verdict.is_root_cause = verdict.p_value < opts_.significance;
    verdict.mean_counterfactual = stats::mean(d1);
    verdict.mean_factual = stats::mean(d2);
    return verdict;
  }

  const std::size_t rounds = opts_.gibbs_rounds;
  auto run_side = [&](double a_start, double a_start_c,
                      std::vector<double>& out) {
    work[a_var] = a_start;
    cent[a_var] = a_start_c;
    for (std::size_t round = 0; round < rounds; ++round) {
      for (const VarIndex v : order) {
        const double val = factors_.kernel_sample(v, work, cent, rng);
        work[v] = val;
        cent[v] = factors_.center(v, val);
      }
    }
    out.push_back(work[d_var]);
    for (const VarIndex v : order) {
      work[v] = state[v];
      cent[v] = cent0[v];
    }
    work[a_var] = state[a_var];
    cent[a_var] = cent0[a_var];
  };

  for (std::size_t s = 0; s < opts_.num_samples; ++s) {
    // Counterfactual start, then factual start (same resampling so the
    // distributions are comparable).
    run_side(a_cf, a_cf_c, d1);
    run_side(a_now, cent0[a_var], d2);
  }

  const auto t = stats::welch_t_test(d1, d2);
  // Symptom abnormally high: root cause iff counterfactual lowers D
  // (d1 << d2, small p_less). Abnormally low: iff it raises D.
  verdict.p_value = symptom_high ? t.p_less : 1.0 - t.p_less;
  verdict.is_root_cause = verdict.p_value < opts_.significance;
  verdict.mean_counterfactual = stats::mean(d1);
  verdict.mean_factual = stats::mean(d2);
  return verdict;
}

}  // namespace murphy::core
