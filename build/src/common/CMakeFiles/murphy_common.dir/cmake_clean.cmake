file(REMOVE_RECURSE
  "CMakeFiles/murphy_common.dir/rng.cpp.o"
  "CMakeFiles/murphy_common.dir/rng.cpp.o.d"
  "CMakeFiles/murphy_common.dir/strings.cpp.o"
  "CMakeFiles/murphy_common.dir/strings.cpp.o.d"
  "CMakeFiles/murphy_common.dir/time_axis.cpp.o"
  "CMakeFiles/murphy_common.dir/time_axis.cpp.o.d"
  "libmurphy_common.a"
  "libmurphy_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/murphy_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
