// The conservative metric thresholds of the paper (§5.1.1 footnote 7):
// 25% CPU/memory/disk/port utilization, 0.1% drop rate, 50 TCP sessions or
// 1 GB per interval for a flow. Shared by candidate pruning (§4.2) and the
// explanation labeling scheme (§4.3).
#pragma once

#include <string_view>

namespace murphy::core {

struct Thresholds {
  double util_percent = 25.0;     // cpu / mem / disk / port buffer util
  double drop_rate = 0.1;         // % packet drops
  double flow_sessions = 50.0;    // TCP sessions per interval
  double flow_throughput = 8.0;   // MB/s (~1 GB per 2-minute interval)
  double latency_ms = 50.0;       // service latency / flow RTT
  double request_rate = 100.0;    // req/s for services & clients

  // True when `value` of metric `metric_name` crosses the conservative
  // threshold for its kind ("this metric looks busy/bad").
  [[nodiscard]] bool is_above(std::string_view metric_name,
                              double value) const;
};

}  // namespace murphy::core
