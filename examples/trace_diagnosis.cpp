// Observability walkthrough: one microservice-interference diagnosis run
// with every sink attached — tracing spans, the metrics registry, and the
// per-candidate audit trail.
//
// Produces two files in the working directory:
//   trace.json   — Chrome trace-event JSON; open at https://ui.perfetto.dev
//                  (or chrome://tracing) for the diagnosis flame chart.
//   audit.jsonl  — one JSON line per evaluated candidate: score components,
//                  counterfactual verdict, path through the graph.
// Plus a metrics-registry snapshot on stdout showing what the engine did.
#include <cstdio>
#include <string>

#include "src/core/murphy.h"
#include "src/emulation/scenarios.h"
#include "src/eval/runner.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

using namespace murphy;

namespace {

bool write_file(const char* path, const std::string& content) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace

int main() {
  emulation::InterferenceOptions opts;
  opts.slices = 420;
  opts.ramp_at = 300;
  opts.seed = 17;
  std::printf("simulating hotel-reservation with aggressor/victim clients...\n");
  const auto c = emulation::make_interference_case(opts);

  // All three observability sinks on: spans -> tracer, internals -> metrics
  // registry, per-candidate evidence -> result.audit.
  obs::Tracer tracer;
  obs::MetricsRegistry registry;
  core::MurphyOptions mopts;
  mopts.sampler.num_samples = 300;
  mopts.num_threads = 2;  // the trace is identical at any thread count
  mopts.obs.tracer = &tracer;
  mopts.obs.metrics = &registry;
  mopts.obs.collect_audit = true;
  core::MurphyDiagnoser murphy(mopts);

  const auto result = murphy.diagnose(eval::request_for(c));

  std::printf("\ndiagnosis: %zu ranked causes; true root cause '%s' at #%zu\n",
              result.causes.size(), c.db.entity(c.root_cause).name.c_str(),
              result.rank_of(c.root_cause));
  std::printf("phases (derived from the same spans the trace shows):\n");
  std::printf("  graph %.1f ms | train %.1f ms | search %.1f ms | "
              "infer %.1f ms | explain %.1f ms | total %.1f ms\n",
              result.timings.graph_ms, result.timings.training_ms,
              result.timings.search_ms, result.timings.inference_ms,
              result.timings.explain_ms, result.timings.total_ms);

  // Wall-clock export mode: real timestamps and per-thread tracks, the
  // right view for a human reading a flame chart.
  if (write_file("trace.json", tracer.to_chrome_json()))
    std::printf("\nwrote trace.json   (%zu spans) — open at ui.perfetto.dev\n",
                tracer.events().size());
  if (write_file("audit.jsonl", obs::to_jsonl(result.audit)))
    std::printf("wrote audit.jsonl  (%zu candidate records)\n",
                result.audit.candidates.size());

  std::printf("\nmetrics registry snapshot:\n");
  for (const auto& e : registry.snapshot().entries) {
    if (e.kind == "histogram")
      std::printf("  %-35s %s n=%.0f\n", e.name.c_str(), e.kind.c_str(),
                  e.value);
    else
      std::printf("  %-35s %s %.0f\n", e.name.c_str(), e.kind.c_str(),
                  e.value);
  }

  std::printf("\naudit evidence for the top-ranked cause:\n");
  for (const auto& cand : result.audit.candidates) {
    if (cand.rank != 1) continue;
    std::printf("  %s: z=%.2f p=%.4f factual=%.1f counterfactual=%.1f\n",
                cand.entity_name.c_str(), cand.anomaly_z, cand.p_value,
                cand.mean_factual, cand.mean_counterfactual);
    std::printf("  path:");
    for (const auto& hop : cand.path) std::printf(" -> %s", hop.c_str());
    std::printf("\n");
  }
  return 0;
}
