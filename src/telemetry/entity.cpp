#include "src/telemetry/entity.h"

namespace murphy::telemetry {

std::string_view entity_type_name(EntityType t) {
  switch (t) {
    case EntityType::kVm: return "vm";
    case EntityType::kHost: return "host";
    case EntityType::kContainer: return "container";
    case EntityType::kVirtualNic: return "vnic";
    case EntityType::kPhysicalNic: return "pnic";
    case EntityType::kFlow: return "flow";
    case EntityType::kSwitch: return "switch";
    case EntityType::kSwitchPort: return "switch_port";
    case EntityType::kDatastore: return "datastore";
    case EntityType::kService: return "service";
    case EntityType::kClient: return "client";
    case EntityType::kNode: return "node";
  }
  return "unknown";
}

std::string_view relation_kind_name(RelationKind k) {
  switch (k) {
    case RelationKind::kVmOnHost: return "vm_on_host";
    case RelationKind::kVnicOfVm: return "vnic_of_vm";
    case RelationKind::kPnicOfHost: return "pnic_of_host";
    case RelationKind::kFlowEndpoint: return "flow_endpoint";
    case RelationKind::kPortOfSwitch: return "port_of_switch";
    case RelationKind::kHostUplink: return "host_uplink";
    case RelationKind::kVmOnDatastore: return "vm_on_datastore";
    case RelationKind::kServiceOnContainer: return "service_on_container";
    case RelationKind::kContainerOnNode: return "container_on_node";
    case RelationKind::kCallerCallee: return "caller_callee";
    case RelationKind::kClientOfService: return "client_of_service";
    case RelationKind::kGeneric: return "generic";
  }
  return "unknown";
}

}  // namespace murphy::telemetry
