// Deterministic pseudo-random number generation.
//
// Every stochastic component in this repository (simulators, samplers,
// degradation injectors) draws from an explicitly seeded generator so that
// benchmark tables reproduce bit-for-bit across runs. We implement
// xoshiro256** (public-domain algorithm by Blackman & Vigna) seeded through
// SplitMix64, which has far better statistical behaviour than
// std::minstd_rand and, unlike std::mt19937, a guaranteed cross-platform
// stream for a given seed.
//
// The generator step and the uniform/normal draws are defined inline: the
// Gibbs sampler draws one normal per variable per round, and a cross-TU call
// for every draw is measurable on that path. The polar method below is exact
// IEEE arithmetic (no fast-math), so inlining cannot change the stream.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>

namespace murphy {

namespace detail {
constexpr std::uint64_t rotl64(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace detail

// SplitMix64 step; used for seeding and as a cheap stateless mixer.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

// Deterministic mix of a base seed and a stream index, for deriving one
// independent RNG stream per parallel work item (per candidate, per
// variable, per symptom). Because the derived seed depends only on (seed,
// stream) — never on which thread runs the item or in what order — results
// are bitwise identical for any thread count.
[[nodiscard]] std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream);

// xoshiro256** generator. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  [[nodiscard]] static constexpr result_type min() { return 0; }
  [[nodiscard]] static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = detail::rotl64(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = detail::rotl64(s_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  [[nodiscard]] double uniform() {
    // 53 top bits -> double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }
  // Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }
  // Uniform integer in [0, n). Requires n > 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t n);
  // Standard normal via Marsaglia polar method (cached spare).
  [[nodiscard]] double normal() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    has_spare_ = true;
    return u * m;
  }
  // Normal with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }
  // Exponential with the given rate (mean 1/rate). Requires rate > 0.
  [[nodiscard]] double exponential(double rate);

  // Batched standard-normal fill for the fast-inference path: writes
  // out.size() independent N(0,1) draws with contiguous stores, via a
  // 128-layer ziggurat over this xoshiro256** stream (~1 generator step, one
  // table compare and one multiply per draw on the ~97.7% common path —
  // several-fold cheaper than the ~60-cycle polar normal() above). The
  // sequence is a pure function of the stream state and the total number of
  // draws: fill_normal(64) twice produces the same values as one
  // fill_normal(128). It is a DIFFERENT stream from normal() — the scalar
  // polar method stays untouched as the bitwise-determinism golden, and
  // callers opt into this one through fast_inference modes only.
  void fill_normal(std::span<double> out);
  // Bernoulli trial with probability p of true.
  [[nodiscard]] bool chance(double p) { return uniform() < p; }

  // Derive an independent child generator; useful to give each simulated
  // entity its own stream so adding entities doesn't perturb others.
  [[nodiscard]] Rng fork();

 private:
  std::uint64_t s_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace murphy
