// Minimal fixed-size thread pool with an index-claiming parallel_for.
//
// Murphy's hot loops (per-variable factor fits, per-candidate counterfactual
// evaluations, per-symptom batch diagnoses) are embarrassingly parallel:
// every iteration writes only its own output slot and draws from its own
// deterministically derived RNG stream (see mix_seed in rng.h). The schedule
// can therefore be fully dynamic — workers claim the next iteration index
// from one atomic counter; no work stealing, no chunking heuristics — while
// results stay bitwise identical for any thread count or interleaving. See
// DESIGN.md "Execution model".
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace murphy {

// Resolves a user-facing thread-count option: 0 means "use the hardware"
// (std::thread::hardware_concurrency, at least 1), any other value is taken
// verbatim.
[[nodiscard]] std::size_t resolve_num_threads(std::size_t requested);

class ThreadPool {
 public:
  // Spawns `num_workers` persistent worker threads. Zero is legal: every
  // parallel_for then runs inline on the calling thread, and submit()
  // executes each task inline too.
  explicit ThreadPool(std::size_t num_workers);
  // Joins the workers. Tasks still QUEUED at destruction are abandoned —
  // destroyed unexecuted — while tasks already in flight on a worker run to
  // completion (join waits for them). Call drain() first when every queued
  // task must finish; the split lets an aborting owner tear the pool down
  // without paying for a backlog it no longer wants.
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  // Runs body(i) for every i in [0, n). The calling thread participates, so
  // n iterations engage worker_count() + 1 threads at most. Blocks until all
  // iterations finish; the first exception thrown by any iteration is
  // rethrown here after the loop drains.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  // Task mode, the diagnosis service's execution substrate (DESIGN.md §9).
  // submit() enqueues one closure for any idle worker and returns
  // immediately; tasks run FIFO whenever no parallel_for batch is active
  // (batches take priority — a worker mid-task finishes it first, so a batch
  // may wait for in-flight tasks). With zero workers the task runs inline
  // before submit() returns. A task has no call site to rethrow at, so the
  // first exception any task throws is stashed and rethrown by the next
  // drain(); service closures are expected to catch their own.
  void submit(std::function<void()> task);

  // Blocks until the task queue is empty AND no task is in flight, then
  // rethrows the first task exception since the last drain (if any).
  // Completes queued work — the counterpart of the destructor's abandonment.
  // Must not be called from inside a task (the task can never finish while
  // its thread waits) and gives no completeness guarantee for tasks
  // submitted concurrently with the wait.
  void drain();

 private:
  void worker_loop();
  void run_iterations();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a batch or task
  std::condition_variable done_cv_;   // caller waits for batch completion
  std::condition_variable drain_cv_;  // drain() waits for task quiescence
  const std::function<void(std::size_t)>* body_ = nullptr;  // guarded by mu_
  std::size_t n_ = 0;                 // guarded by mu_ (stable during batch)
  std::atomic<std::size_t> next_{0};  // next unclaimed iteration index
  std::size_t pending_ = 0;           // workers still inside current batch
  std::uint64_t epoch_ = 0;           // batch counter, guarded by mu_
  bool stop_ = false;
  std::exception_ptr error_;          // first iteration failure, guarded by mu_
  std::deque<std::function<void()>> tasks_;  // guarded by mu_
  std::size_t tasks_running_ = 0;     // tasks in flight, guarded by mu_
  std::exception_ptr task_error_;     // first task failure, guarded by mu_
};

// One-shot convenience: runs body(i) for i in [0, n) on `num_threads`
// threads (0 = hardware concurrency). num_threads <= 1 — the legacy serial
// path — executes a plain inline loop with no atomics or thread machinery.
void parallel_for(std::size_t num_threads, std::size_t n,
                  const std::function<void(std::size_t)>& body);

}  // namespace murphy
