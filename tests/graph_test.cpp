// Unit tests for the relationship graph: expansion semantics, bidirectional
// edge materialization, path subgraphs, cycle census and degradation copies.
#include <gtest/gtest.h>

#include "src/graph/relationship_graph.h"
#include "src/telemetry/monitoring_db.h"

namespace murphy::graph {
namespace {

using telemetry::EntityType;
using telemetry::MonitoringDb;
using telemetry::RelationKind;

// Builds the Figure-1-like miniature: crawler -> flow1 -> frontend ->
// flow2/flow3 -> backends, VMs on hosts.
class Fig1Graph : public ::testing::Test {
 protected:
  void SetUp() override {
    crawler_ = db_.add_entity(EntityType::kVm, "crawler");
    frontend_ = db_.add_entity(EntityType::kVm, "frontend");
    backend1_ = db_.add_entity(EntityType::kVm, "backend1");
    backend2_ = db_.add_entity(EntityType::kVm, "backend2");
    flow1_ = db_.add_entity(EntityType::kFlow, "flow1");
    flow2_ = db_.add_entity(EntityType::kFlow, "flow2");
    flow3_ = db_.add_entity(EntityType::kFlow, "flow3");
    host_ = db_.add_entity(EntityType::kHost, "host");

    db_.add_association(flow1_, crawler_, RelationKind::kFlowEndpoint);
    db_.add_association(flow1_, frontend_, RelationKind::kFlowEndpoint);
    db_.add_association(flow2_, frontend_, RelationKind::kFlowEndpoint);
    db_.add_association(flow2_, backend1_, RelationKind::kFlowEndpoint);
    db_.add_association(flow3_, frontend_, RelationKind::kFlowEndpoint);
    db_.add_association(flow3_, backend2_, RelationKind::kFlowEndpoint);
    db_.add_association(backend1_, host_, RelationKind::kVmOnHost);
    db_.add_association(backend2_, host_, RelationKind::kVmOnHost);
  }

  MonitoringDb db_;
  EntityId crawler_, frontend_, backend1_, backend2_;
  EntityId flow1_, flow2_, flow3_, host_;
};

TEST_F(Fig1Graph, FullExpansionReachesEverything) {
  const EntityId seeds[] = {backend1_};
  const auto g = RelationshipGraph::build(db_, seeds, /*max_hops=*/5);
  EXPECT_EQ(g.node_count(), 8u);
  // Every undirected association became two directed edges.
  EXPECT_EQ(g.edge_count(), 16u);
}

TEST_F(Fig1Graph, HopBudgetLimitsExpansion) {
  const EntityId seeds[] = {crawler_};
  const auto g1 = RelationshipGraph::build(db_, seeds, /*max_hops=*/1);
  // crawler + flow1 only.
  EXPECT_EQ(g1.node_count(), 2u);
  const auto g2 = RelationshipGraph::build(db_, seeds, /*max_hops=*/2);
  EXPECT_EQ(g2.node_count(), 3u);  // + frontend
}

TEST_F(Fig1Graph, NodeCapStopsGrowth) {
  const EntityId seeds[] = {crawler_};
  const auto g = RelationshipGraph::build(db_, seeds, 10, /*max_nodes=*/4);
  EXPECT_LE(g.node_count(), 4u);
}

TEST_F(Fig1Graph, ShortestPathSubgraphOrdersByDistance) {
  const EntityId seeds[] = {crawler_};
  const auto g = RelationshipGraph::build(db_, seeds, 10);
  const auto src = g.index_of(crawler_);
  const auto dst = g.index_of(backend1_);
  ASSERT_TRUE(src && dst);
  const auto path = g.shortest_path_subgraph(*src, *dst);
  // crawler -> flow1 -> frontend -> flow2 -> backend1
  ASSERT_EQ(path.size(), 5u);
  EXPECT_EQ(g.entity_of(path.front()), crawler_);
  EXPECT_EQ(g.entity_of(path[1]), flow1_);
  EXPECT_EQ(g.entity_of(path[2]), frontend_);
  EXPECT_EQ(g.entity_of(path[3]), flow2_);
  EXPECT_EQ(g.entity_of(path.back()), backend1_);
}

TEST_F(Fig1Graph, ShortestPathSubgraphIncludesAllTiedPaths) {
  // host is reachable from frontend via backend1 or backend2: both length-3
  // paths should contribute their middle nodes.
  const EntityId seeds[] = {crawler_};
  const auto g = RelationshipGraph::build(db_, seeds, 10);
  const auto src = g.index_of(frontend_);
  const auto dst = g.index_of(host_);
  const auto sub = g.shortest_path_subgraph(*src, *dst);
  // frontend, flow2, flow3, backend1, backend2, host
  EXPECT_EQ(sub.size(), 6u);
}

TEST_F(Fig1Graph, BidirectionalEdgesMakeCycles) {
  const EntityId seeds[] = {crawler_};
  const auto g = RelationshipGraph::build(db_, seeds, 10);
  EXPECT_FALSE(g.is_dag());
  // Each bidirectional association is a 2-cycle.
  EXPECT_EQ(g.count_2cycles(), 8u);
  const auto n = g.index_of(frontend_);
  EXPECT_TRUE(g.on_cycle(*n));
}

TEST_F(Fig1Graph, UnreachableReturnsEmptySubgraph) {
  MonitoringDb db;
  const auto a = db.add_entity(EntityType::kVm, "a");
  const auto b = db.add_entity(EntityType::kVm, "b");
  db.add_association(a, b, RelationKind::kCallerCallee, /*directed=*/true);
  const EntityId seeds[] = {a, b};
  const auto g = RelationshipGraph::build(db, seeds, 3);
  const auto ia = g.index_of(a);
  const auto ib = g.index_of(b);
  EXPECT_TRUE(g.shortest_path_subgraph(*ib, *ia).empty());  // b cannot reach a
  EXPECT_EQ(g.shortest_path_subgraph(*ia, *ib).size(), 2u);
}

TEST(RelationshipGraph, DirectedDagHasTopologicalOrder) {
  MonitoringDb db;
  const auto a = db.add_entity(EntityType::kService, "a");
  const auto b = db.add_entity(EntityType::kService, "b");
  const auto c = db.add_entity(EntityType::kService, "c");
  db.add_association(a, b, RelationKind::kCallerCallee, true);
  db.add_association(b, c, RelationKind::kCallerCallee, true);
  db.add_association(a, c, RelationKind::kCallerCallee, true);
  const EntityId seeds[] = {a};
  const auto g = RelationshipGraph::build(db, seeds, 5);
  EXPECT_TRUE(g.is_dag());
  const auto order = g.topological_order();
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(g.entity_of(order->front()), a);
  EXPECT_EQ(g.entity_of(order->back()), c);
  EXPECT_EQ(g.count_2cycles(), 0u);
  EXPECT_EQ(g.count_3cycles(), 0u);
}

TEST(RelationshipGraph, ThreeCycleCensus) {
  MonitoringDb db;
  const auto a = db.add_entity(EntityType::kVm, "a");
  const auto b = db.add_entity(EntityType::kVm, "b");
  const auto c = db.add_entity(EntityType::kVm, "c");
  db.add_association(a, b, RelationKind::kGeneric, true);
  db.add_association(b, c, RelationKind::kGeneric, true);
  db.add_association(c, a, RelationKind::kGeneric, true);
  const EntityId seeds[] = {a};
  const auto g = RelationshipGraph::build(db, seeds, 5);
  EXPECT_EQ(g.count_3cycles(), 1u);
  EXPECT_FALSE(g.is_dag());
}

TEST_F(Fig1Graph, WithoutEdgeRemovesOnlyThatDirection) {
  const EntityId seeds[] = {crawler_};
  const auto g = RelationshipGraph::build(db_, seeds, 10);
  const auto f = *g.index_of(flow1_);
  const auto fe = *g.index_of(frontend_);
  const auto g2 = g.without_edge(f, fe);
  EXPECT_EQ(g2.edge_count(), g.edge_count() - 1);
  // Reverse direction survives.
  const auto in_f = g2.in_neighbors(f);
  bool has_rev = false;
  for (const auto n : in_f) has_rev |= (n == fe);
  EXPECT_TRUE(has_rev);
}

TEST_F(Fig1Graph, WithoutNodeRepacksIndices) {
  const EntityId seeds[] = {crawler_};
  const auto g = RelationshipGraph::build(db_, seeds, 10);
  const auto f = *g.index_of(flow1_);
  const auto g2 = g.without_node(f);
  EXPECT_EQ(g2.node_count(), g.node_count() - 1);
  EXPECT_FALSE(g2.index_of(flow1_).has_value());
  // crawler is now isolated: no path to backend1.
  const auto src = g2.index_of(crawler_);
  const auto dst = g2.index_of(backend1_);
  ASSERT_TRUE(src && dst);
  EXPECT_TRUE(g2.shortest_path_subgraph(*src, *dst).empty());
}

TEST_F(Fig1Graph, PrecomputedDistanceOverloadMatchesTwoBfsEverywhere) {
  // The per-diagnosis BFS-reuse overload must return the identical vector
  // the self-contained overload produces, for every (src, dst, slack) —
  // including slacks far beyond the graph's diameter.
  const EntityId seeds[] = {crawler_};
  const auto g = RelationshipGraph::build(db_, seeds, 10);
  for (NodeIndex dst = 0; dst < g.node_count(); ++dst) {
    const auto d_to = g.distances_to(dst);
    for (NodeIndex src = 0; src < g.node_count(); ++src) {
      for (const std::size_t slack : {0u, 1u, 2u, 7u, 100u}) {
        SCOPED_TRACE("src=" + std::to_string(src) + " dst=" +
                     std::to_string(dst) + " slack=" + std::to_string(slack));
        EXPECT_EQ(g.shortest_path_subgraph(src, dst, slack),
                  g.shortest_path_subgraph(src, dst, slack, d_to));
      }
    }
  }
}

TEST_F(Fig1Graph, CandidateEqualToSymptomIsSingletonAtZeroSlack) {
  const EntityId seeds[] = {crawler_};
  const auto g = RelationshipGraph::build(db_, seeds, 10);
  const auto n = *g.index_of(frontend_);
  const auto sub = g.shortest_path_subgraph(n, n, 0);
  ASSERT_EQ(sub.size(), 1u);
  EXPECT_EQ(sub.front(), n);
  // With slack, the 2-cycles through frontend's neighbors qualify; the
  // dst-strictly-last ordering still holds even when src == dst.
  const auto wide = g.shortest_path_subgraph(n, n, 2);
  EXPECT_GT(wide.size(), 1u);
  EXPECT_EQ(wide.back(), n);
}

TEST(ShortestPathSubgraph, DisconnectedCandidateStaysEmptyUnderSlack) {
  // No amount of slack manufactures a path that does not exist: membership
  // requires reaching dst at all, so a disconnected candidate yields the
  // empty subgraph from both overloads.
  MonitoringDb db;
  const auto a = db.add_entity(EntityType::kVm, "a");
  const auto b = db.add_entity(EntityType::kVm, "b");
  db.add_association(a, b, RelationKind::kCallerCallee, /*directed=*/true);
  const EntityId seeds[] = {a, b};
  const auto g = RelationshipGraph::build(db, seeds, 3);
  const auto ia = *g.index_of(a);
  const auto ib = *g.index_of(b);
  EXPECT_TRUE(g.shortest_path_subgraph(ib, ia, 100).empty());
  const auto d_to = g.distances_to(ia);
  EXPECT_TRUE(g.shortest_path_subgraph(ib, ia, 100, d_to).empty());
}

TEST_F(Fig1Graph, SlackBeyondDiameterAdmitsEveryConnectedNode) {
  // All Fig-1 associations are bidirectional, so with slack far past the
  // diameter every node lies on some crawler -> backend1 walk within the
  // bound: the subgraph saturates at the full node set, src first (distance
  // 0) and dst strictly last.
  const EntityId seeds[] = {crawler_};
  const auto g = RelationshipGraph::build(db_, seeds, 10);
  const auto src = *g.index_of(crawler_);
  const auto dst = *g.index_of(backend1_);
  const auto sub = g.shortest_path_subgraph(src, dst, 100);
  EXPECT_EQ(sub.size(), g.node_count());
  EXPECT_EQ(sub.front(), src);
  EXPECT_EQ(sub.back(), dst);
}

TEST_F(Fig1Graph, DistancesFromAndTo) {
  const EntityId seeds[] = {crawler_};
  const auto g = RelationshipGraph::build(db_, seeds, 10);
  const auto d = g.distances_from(*g.index_of(crawler_));
  EXPECT_EQ(d[*g.index_of(flow1_)], 1u);
  EXPECT_EQ(d[*g.index_of(backend1_)], 4u);
  const auto dt = g.distances_to(*g.index_of(backend1_));
  EXPECT_EQ(dt[*g.index_of(crawler_)], 4u);
}

}  // namespace
}  // namespace murphy::graph
