file(REMOVE_RECURSE
  "CMakeFiles/murphy_telemetry.dir/config_events.cpp.o"
  "CMakeFiles/murphy_telemetry.dir/config_events.cpp.o.d"
  "CMakeFiles/murphy_telemetry.dir/csv_export.cpp.o"
  "CMakeFiles/murphy_telemetry.dir/csv_export.cpp.o.d"
  "CMakeFiles/murphy_telemetry.dir/csv_import.cpp.o"
  "CMakeFiles/murphy_telemetry.dir/csv_import.cpp.o.d"
  "CMakeFiles/murphy_telemetry.dir/entity.cpp.o"
  "CMakeFiles/murphy_telemetry.dir/entity.cpp.o.d"
  "CMakeFiles/murphy_telemetry.dir/metric_catalog.cpp.o"
  "CMakeFiles/murphy_telemetry.dir/metric_catalog.cpp.o.d"
  "CMakeFiles/murphy_telemetry.dir/metric_store.cpp.o"
  "CMakeFiles/murphy_telemetry.dir/metric_store.cpp.o.d"
  "CMakeFiles/murphy_telemetry.dir/monitoring_db.cpp.o"
  "CMakeFiles/murphy_telemetry.dir/monitoring_db.cpp.o.d"
  "libmurphy_telemetry.a"
  "libmurphy_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/murphy_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
