#include "src/eval/matrix.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <future>

#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/eval/runner.h"
#include "src/eval/tables.h"
#include "src/obs/metrics.h"
#include "src/service/diagnosis_service.h"
#include "src/service/feed.h"
#include "src/service/telemetry_stream.h"

namespace murphy::eval {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// Case seed: a function of (matrix seed, cell coordinates, case index) but
// NOT of the quality level — qualities re-corrupt the same case.
std::uint64_t case_seed(const MatrixOptions& opts, std::size_t topo_idx,
                        std::size_t fault_idx, std::size_t case_i) {
  return mix_seed(mix_seed(opts.seed, topo_idx * 131 + fault_idx), case_i);
}

ChaosOptions scaled_chaos(const ChaosOptions& base, double severity,
                          std::uint64_t seed) {
  ChaosOptions c = base;
  c.seed = seed;
  c.p_nan_slice *= severity;
  c.p_inf_slice *= severity;
  c.p_denormal_slice *= severity;
  c.p_constant_column *= severity;
  c.p_near_constant_column *= severity;
  c.p_huge_scale_column *= severity;
  c.p_drop_history *= severity;
  c.p_duplicate_run *= severity;
  c.p_swap_slices *= severity;
  c.self_loops = static_cast<std::size_t>(
      std::lround(static_cast<double>(base.self_loops) * severity));
  c.orphan_edges = static_cast<std::size_t>(
      std::lround(static_cast<double>(base.orphan_edges) * severity));
  c.strip_entities = static_cast<std::size_t>(
      std::lround(static_cast<double>(base.strip_entities) * severity));
  // Corrupted series round-trip through the ingest sanitizer so a streamed
  // replay of the db (the service route) carries the same effective values
  // as the in-memory copy the direct schemes read.
  c.reingest = true;
  return c;
}

// Applies the quality level to a copy-constructed case db. The symptom
// series is protected — an unreadable symptom makes the ticket meaningless,
// not hard.
void degrade_case(emulation::DiagnosisCase& c, const MatrixOptions& opts,
                  double severity, std::uint64_t chaos_seed) {
  if (severity <= 0.0) return;
  const MetricRef protect{
      c.symptom_entity, c.db.catalog().intern(c.symptom_metric)};
  (void)apply_chaos(c.db, scaled_chaos(opts.chaos, severity, chaos_seed),
                    std::span<const MetricRef>(&protect, 1));
}

// Murphy through the long-running service: warm prefix + streamed incident
// tail, a low-priority probe in flight, then the scored request through the
// priority queue. Returns the kOk result (empty causes on any other
// status, which the aggregation counts as a miss rather than hiding).
core::DiagnosisResult diagnose_via_service(
    const emulation::DiagnosisCase& c, const MatrixOptions& opts,
    double* latency_ms) {
  service::ReplayFeed feed =
      service::make_replay_feed(c.db, c.incident_start);
  service::TelemetryStream stream(std::move(feed.warm));
  service::DiagnosisServiceOptions sopts;
  sopts.murphy = opts.murphy;
  sopts.num_workers = opts.service_workers;
  sopts.max_queue = 64;
  service::DiagnosisService svc(stream, sopts);

  // Stream the tail (epoch bumps retire exactly the touched cache entries)
  // with a maintenance pass, as the murphyd ingest loop does.
  for (std::size_t i = 0; i < feed.batches.size(); ++i)
    service::replay_slice(stream, feed, i);
  svc.maintain();

  const core::DiagnosisRequest base = request_for(c);
  service::ServiceRequest probe;
  probe.symptom_entity = base.symptom_entity;
  probe.symptom_metric = base.symptom_metric;
  probe.now = c.incident_start / 2;
  probe.train_begin = 0;
  probe.train_end = probe.now + 1;
  probe.max_hops = 2;
  probe.priority = 0;

  service::ServiceRequest main_req;
  main_req.symptom_entity = base.symptom_entity;
  main_req.symptom_metric = base.symptom_metric;
  main_req.now = base.now;
  main_req.train_begin = base.train_begin;
  main_req.train_end = base.train_end;
  main_req.max_hops = base.max_hops;
  main_req.priority = 10;  // outranks the probe at the queue

  auto probe_future = svc.submit(probe);
  const auto t0 = Clock::now();
  auto main_future = svc.submit(main_req);
  service::ServiceResponse resp = main_future.get();
  if (latency_ms != nullptr) *latency_ms = ms_since(t0);
  (void)probe_future.get();  // resolve before the service dies
  if (resp.status != service::RequestStatus::kOk)
    return core::DiagnosisResult{};
  return std::move(resp.result);
}

MatrixCaseRun run_scheme_on_case(const emulation::DiagnosisCase& c,
                                 const MatrixOptions& opts,
                                 core::Diagnoser& scheme, bool via_service) {
  MatrixCaseRun run;
  run.scheme = std::string(scheme.name());
  run.via_service = via_service;
  if (via_service) {
    run.result = diagnose_via_service(c, opts, &run.latency_ms);
  } else {
    const auto t0 = Clock::now();
    run.result = scheme.diagnose(request_for(c));
    run.latency_ms = ms_since(t0);
  }
  run.outcome = score_result(run.result, c.all_roots, c.relaxed_set);
  return run;
}

}  // namespace

MatrixCellRuns run_matrix_cell(const MatrixOptions& opts,
                               std::span<core::Diagnoser* const> schemes,
                               std::size_t topo_idx, std::size_t fault_idx,
                               std::size_t quality_idx) {
  assert(topo_idx < opts.topologies.size());
  assert(fault_idx < opts.faults.size());
  assert(quality_idx < opts.qualities.size());
  const MatrixTopoLevel& level = opts.topologies[topo_idx];
  const MatrixQualityLevel& quality = opts.qualities[quality_idx];
  const emulation::GeneratedTopology topo = generate_topology(level.topo);

  MatrixCellRuns cell;
  cell.topology = level.name;
  cell.fault = std::string(incident_kind_name(opts.faults[fault_idx]));
  cell.quality = quality.name;
  cell.services = topo.app.services.size();
  const bool via_service =
      cell.services >= opts.service_route_min_services;

  for (std::size_t i = 0; i < opts.cases_per_cell; ++i) {
    emulation::TopologyCaseOptions copts = opts.scenario;
    copts.fault = opts.faults[fault_idx];
    copts.seed = case_seed(opts, topo_idx, fault_idx, i);
    emulation::DiagnosisCase c = make_topology_case(topo, copts);
    degrade_case(c, opts, quality.severity,
                 mix_seed(copts.seed, 7777 + quality_idx));
    if (cell.entities == 0) cell.entities = c.db.entity_count();
    for (core::Diagnoser* scheme : schemes) {
      const bool route = via_service && scheme->name() == "murphy";
      cell.runs.push_back(run_scheme_on_case(c, opts, *scheme, route));
    }
  }
  return cell;
}

namespace {

void aggregate_cell(const MatrixCellRuns& cell,
                    std::span<core::Diagnoser* const> schemes,
                    MatrixReport& report) {
  for (core::Diagnoser* scheme : schemes) {
    MatrixCell agg;
    agg.topology = cell.topology;
    agg.fault = cell.fault;
    agg.quality = cell.quality;
    agg.scheme = std::string(scheme->name());
    agg.services = cell.services;
    agg.entities = cell.entities;
    for (const MatrixCaseRun& run : cell.runs) {
      if (run.scheme != agg.scheme) continue;
      ++agg.cases;
      agg.top1 += run.outcome.hit(1) ? 1.0 : 0.0;
      agg.top3 += run.outcome.hit(3) ? 1.0 : 0.0;
      agg.mrr += run.outcome.precision();
      agg.relaxed_top1 += run.outcome.relaxed_hit(1) ? 1.0 : 0.0;
      agg.mean_latency_ms += run.latency_ms;
      agg.via_service = agg.via_service || run.via_service;
    }
    if (agg.cases > 0) {
      const double n = static_cast<double>(agg.cases);
      agg.top1 /= n;
      agg.top3 /= n;
      agg.mrr /= n;
      agg.relaxed_top1 /= n;
      agg.mean_latency_ms /= n;
    }
    report.cells.push_back(std::move(agg));
  }
}

}  // namespace

MatrixReport run_battle_matrix(const MatrixOptions& opts,
                               std::span<core::Diagnoser* const> schemes) {
  MatrixReport report;
  for (std::size_t t = 0; t < opts.topologies.size(); ++t) {
    const emulation::GeneratedTopology topo =
        generate_topology(opts.topologies[t].topo);
    const bool via_service =
        topo.app.services.size() >= opts.service_route_min_services;
    for (std::size_t f = 0; f < opts.faults.size(); ++f) {
      // Cases generate once per (topology, fault, index); the quality axis
      // re-corrupts copies of the same case.
      std::vector<MatrixCellRuns> cells(opts.qualities.size());
      for (std::size_t q = 0; q < opts.qualities.size(); ++q) {
        cells[q].topology = opts.topologies[t].name;
        cells[q].fault = std::string(incident_kind_name(opts.faults[f]));
        cells[q].quality = opts.qualities[q].name;
        cells[q].services = topo.app.services.size();
      }
      for (std::size_t i = 0; i < opts.cases_per_cell; ++i) {
        emulation::TopologyCaseOptions copts = opts.scenario;
        copts.fault = opts.faults[f];
        copts.seed = case_seed(opts, t, f, i);
        const emulation::DiagnosisCase base = make_topology_case(topo, copts);
        for (std::size_t q = 0; q < opts.qualities.size(); ++q) {
          emulation::DiagnosisCase c = base;  // fresh copy per quality
          degrade_case(c, opts, opts.qualities[q].severity,
                       mix_seed(copts.seed, 7777 + q));
          if (cells[q].entities == 0)
            cells[q].entities = c.db.entity_count();
          for (core::Diagnoser* scheme : schemes) {
            const bool route = via_service && scheme->name() == "murphy";
            cells[q].runs.push_back(
                run_scheme_on_case(c, opts, *scheme, route));
          }
        }
      }
      for (std::size_t q = 0; q < opts.qualities.size(); ++q)
        aggregate_cell(cells[q], schemes, report);
    }
  }
  return report;
}

void record_matrix_gauges(const MatrixReport& report) {
  auto& reg = obs::global_metrics();
  for (const MatrixCell& cell : report.cells) {
    const std::string key = "matrix." + cell.topology + "." + cell.fault +
                            "." + cell.quality + "." + cell.scheme + ".";
    reg.gauge(key + "top1")->set(cell.top1);
    reg.gauge(key + "top3")->set(cell.top3);
    reg.gauge(key + "mrr")->set(cell.mrr);
    reg.gauge(key + "relaxed_top1")->set(cell.relaxed_top1);
    reg.gauge(key + "cases")->set(static_cast<double>(cell.cases));
    reg.gauge(key + "services")->set(static_cast<double>(cell.services));
    reg.gauge(key + "via_service")->set(cell.via_service ? 1.0 : 0.0);
    // Latency is the one nondeterministic field; its own prefix keeps the
    // matrix.* namespace bit-reproducible for snapshot diffs.
    reg.gauge("matrix_latency." + cell.topology + "." + cell.fault + "." +
              cell.quality + "." + cell.scheme + ".ms")
        ->set(cell.mean_latency_ms);
  }
}

std::string matrix_table(const MatrixReport& report) {
  Table table({"topology", "fault", "quality", "scheme", "top-1", "top-3",
               "MRR", "relaxed@1", "lat ms", "route"});
  for (const MatrixCell& cell : report.cells) {
    table.add_row({cell.topology, cell.fault, cell.quality, cell.scheme,
                   format_double(cell.top1, 2), format_double(cell.top3, 2),
                   format_double(cell.mrr, 2),
                   format_double(cell.relaxed_top1, 2),
                   format_double(cell.mean_latency_ms, 1),
                   cell.via_service ? "service" : "direct"});
  }
  return table.render();
}

MatrixOptions default_matrix_options() {
  MatrixOptions opts;
  {
    MatrixTopoLevel small;
    small.name = "small-60";
    small.topo.services = 60;
    small.topo.applications = 1;
    small.topo.seed = 101;
    opts.topologies.push_back(small);
    MatrixTopoLevel medium;
    medium.name = "medium-150";
    medium.topo.services = 150;
    medium.topo.applications = 2;
    medium.topo.seed = 202;
    opts.topologies.push_back(medium);
    MatrixTopoLevel large;
    large.name = "large-320";
    large.topo.services = 320;
    large.topo.applications = 3;
    large.topo.seed = 303;
    opts.topologies.push_back(large);
  }
  opts.faults = {emulation::IncidentKind::kSingleContention,
                 emulation::IncidentKind::kCorrelatedMultiRoot,
                 emulation::IncidentKind::kSlowBurn,
                 emulation::IncidentKind::kRetryStorm,
                 emulation::IncidentKind::kCascade};
  opts.qualities = {{"clean", 0.0}, {"degraded", 0.6}};
  return opts;
}

}  // namespace murphy::eval
