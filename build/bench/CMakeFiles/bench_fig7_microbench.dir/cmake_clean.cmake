file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_microbench.dir/bench_fig7_microbench.cpp.o"
  "CMakeFiles/bench_fig7_microbench.dir/bench_fig7_microbench.cpp.o.d"
  "bench_fig7_microbench"
  "bench_fig7_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
