// Figure 5 — performance interference in microservices (§6.1).
//
// Regenerates: (5b) the victim-latency trace around the aggressor's ramp,
// (5c) top-K recall for K in {1..10} for Murphy / NetMedic / ExplainIt /
// Sage over the interference sweep, and (5d) precision/recall plus the
// relaxed variants at K = 5.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/strings.h"
#include "src/emulation/scenarios.h"
#include "src/eval/metrics.h"
#include "src/eval/runner.h"
#include "src/eval/ascii_chart.h"
#include "src/eval/tables.h"
#include "src/stats/summary.h"

using namespace murphy;

int main() {
  bench::print_header(
      "Figure 5: performance interference (hotel-reservation, cyclic input)",
      "Murphy 86% recall@5; Sage 0 (root cause outside model); "
      "NetMedic/ExplainIt <15%; Murphy perfect relaxed-recall");

  // ---- Fig. 5b: one sample trace --------------------------------------------
  {
    emulation::InterferenceOptions opts;
    opts.slices = 420;
    opts.ramp_at = 300;
    opts.seed = 42;
    const auto c = emulation::make_interference_case(opts);
    const auto* lat = c.db.metrics().find(
        c.symptom_entity, c.db.catalog().find(telemetry::metrics::kLatency));
    std::printf("Fig 5b: victim (service 2 / client B) latency trace, "
                "aggressor ramps at t=%zu0s\n", static_cast<std::size_t>(300));
    eval::ChartOptions copts;
    copts.x_label = "time (0 .. 4200s)";
    copts.y_label = "service latency (ms)";
    std::vector<double> trace(lat->values().begin(), lat->values().end());
    std::printf("%s\n", eval::line_chart(trace, copts).c_str());
  }

  // ---- sweep -----------------------------------------------------------------
  const std::size_t variants = bench::scaled(8, 32);
  const auto sweep = emulation::interference_sweep(variants, 2023);

  auto schemes = bench::make_schemes(7);
  struct Row {
    core::Diagnoser* scheme;
    eval::Accuracy acc;
  };
  std::vector<Row> rows;
  for (auto* s : schemes.all()) rows.push_back(Row{s, {}});

  std::size_t i = 0;
  for (const auto& opts : sweep) {
    const auto c = emulation::make_interference_case(opts);
    if (i == 0)
      bench::stamp_workload({"hotel-reservation",
                             c.entities.services.size(),
                             c.entities.nodes.size(), /*sweep seed=*/2023,
                             "interference"});
    for (auto& row : rows) row.acc.add(eval::run_case(*row.scheme, c));
    std::fprintf(stderr, "  variant %zu/%zu done\n", ++i, sweep.size());
  }

  // ---- Fig. 5c: top-K recall --------------------------------------------------
  {
    eval::Table table({"scheme", "top-1", "top-2", "top-4", "top-5", "top-8",
                       "top-10"});
    for (const auto& row : rows) {
      table.add_row({std::string(row.scheme->name()),
                     format_double(row.acc.top_k(1), 2),
                     format_double(row.acc.top_k(2), 2),
                     format_double(row.acc.top_k(4), 2),
                     format_double(row.acc.top_k(5), 2),
                     format_double(row.acc.top_k(8), 2),
                     format_double(row.acc.top_k(10), 2)});
    }
    std::printf("Fig 5c: top-K recall over %zu interference variants\n%s\n",
                sweep.size(), table.render().c_str());
  }

  // ---- Fig. 5d: precision/recall + relaxed ------------------------------------
  {
    eval::Table table({"scheme", "recall@5", "relaxed-recall@5", "precision",
                       "relaxed-precision"});
    for (const auto& row : rows) {
      table.add_row({std::string(row.scheme->name()),
                     format_double(row.acc.top_k(5), 2),
                     format_double(row.acc.relaxed_top_k(5), 2),
                     format_double(row.acc.mean_precision(), 2),
                     format_double(row.acc.mean_relaxed_precision(), 2)});
    }
    std::printf("Fig 5d: correctness criteria at K=5\n%s\n",
                table.render().c_str());
  }

  std::printf("expected shape: murphy wins recall@5 by a wide margin; sage=0 "
              "(true root cause outside its call-tree model); murphy "
              "relaxed-recall ~1.0\n");
  murphy::bench::write_bench_json("fig5_interference");
  return 0;
}
