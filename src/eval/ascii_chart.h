// Terminal chart rendering for the bench binaries.
//
// The paper's figures are line plots and CDFs; the bench harnesses print
// their series as small ASCII charts so the *shape* (spikes, crossovers,
// dominance) is visible directly in the captured output, alongside the raw
// rows.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace murphy::eval {

struct ChartOptions {
  std::size_t width = 64;   // plot columns
  std::size_t height = 12;  // plot rows
  std::string y_label;
  std::string x_label;
};

// Single-series line chart of y over its index (time).
[[nodiscard]] std::string line_chart(std::span<const double> ys,
                                     const ChartOptions& opts = {});

// Multi-series chart; each series gets its own glyph ('*', 'o', '+', 'x').
// Series may have different lengths; x is normalized per series.
struct Series {
  std::string name;
  std::vector<double> ys;
};
[[nodiscard]] std::string multi_line_chart(std::span<const Series> series,
                                           const ChartOptions& opts = {});

// Empirical CDF chart: sorts each series and plots value (x) vs cumulative
// fraction (y) over a shared x-range — the Fig. 8a presentation.
[[nodiscard]] std::string cdf_chart(std::span<const Series> series,
                                    const ChartOptions& opts = {});

}  // namespace murphy::eval
