// Human-readable explanations (§4.3).
//
// Each entity is labeled from its current metrics and the conservative
// thresholds: Non-functional, Degraded performance, High drop rate,
// Heavy hitter, or Okay. A small state machine (Fig. 4) encodes which label
// can cause which ("a heavy-hitter flow can cause high load on a VM"), and
// a chain from root cause to symptom is traced so that every step respects
// the causal rules. Labeling never changes the diagnosis itself.
#pragma once

#include <string>
#include <vector>

#include "src/core/anomaly.h"
#include "src/core/factor_model.h"
#include "src/core/metric_space.h"
#include "src/core/thresholds.h"

namespace murphy::core {

enum class EntityLabel {
  kOkay,
  kNonFunctional,
  kDegraded,
  kHighDropRate,
  kHeavyHitter,
};

[[nodiscard]] std::string_view label_name(EntityLabel label);

// Labels one node from its current metrics (thresholds) and its history
// (collapse detection for Non-functional).
[[nodiscard]] EntityLabel label_node(const telemetry::MonitoringDb& db,
                                     const MetricSpace& space,
                                     const FactorSet& factors,
                                     graph::NodeIndex node,
                                     std::span<const double> state,
                                     const Thresholds& thresholds);

// The causal state machine of Fig. 4: can `from`'s condition cause `to`'s?
[[nodiscard]] bool can_cause(EntityLabel from, EntityLabel to);

// Traces a path root -> ... -> symptom whose every hop respects can_cause
// (intermediate nodes must not be Okay). Falls back to the plain shortest
// path when no labeled path exists. Returns node indices including both
// endpoints; empty when symptom is unreachable from root.
[[nodiscard]] std::vector<graph::NodeIndex> explanation_path(
    const graph::RelationshipGraph& graph,
    const std::vector<EntityLabel>& labels, graph::NodeIndex root,
    graph::NodeIndex symptom);

// Renders "entity A (heavy hitter) -> entity B (degraded) -> ..." text.
[[nodiscard]] std::string render_explanation(
    const telemetry::MonitoringDb& db, const graph::RelationshipGraph& graph,
    const std::vector<EntityLabel>& labels,
    const std::vector<graph::NodeIndex>& path);

// Renders the narrative form shown in the paper's Fig. 2 — one sentence per
// hop with the driving metric and its deviation, e.g.
//   "flow 'crawler->fe' sent heavy traffic (throughput 92.1, ~14x normal)."
//   "vm 'backend-3' faced high load (cpu_util 94.0, ~6x normal)."
[[nodiscard]] std::string render_narrative(
    const telemetry::MonitoringDb& db, const graph::RelationshipGraph& graph,
    const MetricSpace& space, const FactorSet& factors,
    const std::vector<EntityLabel>& labels,
    const std::vector<graph::NodeIndex>& path, std::span<const double> state);

}  // namespace murphy::core
