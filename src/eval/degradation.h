// Data-degradation injectors for the robustness experiments (Table 2).
//
// Four corruption modes, mirroring §6.4:
//  * missing edge   — remove the association between a randomly chosen RPC
//                     and its caller (tracing-framework bug);
//  * missing entity — remove a randomly chosen entity with all its metrics
//                     and associations (monitoring coverage gap);
//  * missing metric — remove a single metric of the root-cause entity;
//  * missing values — for 25% of entities, delete historical values while
//                     keeping the in-incident window (newly spawned entity).
#pragma once

#include <string_view>

#include "src/common/rng.h"
#include "src/emulation/scenarios.h"

namespace murphy::eval {

enum class Degradation {
  kNone,
  kMissingValues,
  kMissingEdge,
  kMissingEntity,
  kMissingMetric,
};

[[nodiscard]] std::string_view degradation_name(Degradation d);

// Applies the degradation in place. Never removes the symptom entity or the
// ground-truth root cause (the experiment measures robustness of reasoning,
// not of data about the answer itself — except kMissingMetric, which by
// definition targets the root cause, and kMissingValues, which may hit any
// entity). `incident_start` guards the kept window for kMissingValues.
void apply_degradation(emulation::DiagnosisCase& c, Degradation d, Rng& rng);

}  // namespace murphy::eval
