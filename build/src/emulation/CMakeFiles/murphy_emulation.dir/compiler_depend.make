# Empty compiler generated dependencies file for murphy_emulation.
# This may be replaced when dependencies are built.
