// Statistical-equivalence gate for the vectorized fast-inference mode
// (DESIGN.md §11).
//
// The fast path abandons the bitwise contract (different normal generator,
// draw order and summation order than the scalar golden), so its correctness
// claim is statistical: on the same workloads it must produce the same
// DIAGNOSES. This harness runs Murphy scalar-vs-fast over (a) the Table-1
// enterprise incidents and (b) a battle-matrix smoke slice of generated
// topology cases, and enforces three gates:
//   1. identical top-1 root cause per case;
//   2. identical top-3 ranking per case;
//   3. a two-sided Welch t-test over the per-candidate counterfactual score
//      deltas (mean_cf - mean_factual, collected from the audit trails of
//      both modes) must NOT reject equality at alpha = 0.01.
// Any violated gate exits non-zero, which is what CI keys on.
//
// Borderline candidates — those whose acceptance p-value lands inside
// [alpha/20, 20*alpha] in EITHER mode — are excluded from the top-1/top-3
// identity checks. A candidate whose true p sits at the significance
// threshold flips verdicts under ANY stream change (a reseeded scalar run
// flips the same incidents; measured here before the band was added), so
// gating on it would only measure RNG coincidence. A systematic kernel bias
// still fails: it moves p-values of NON-borderline candidates across the
// threshold and shifts the paired score deltas the t-test watches. The
// exclusions themselves are gated where they bite: borderline entities that
// reach an unfiltered top-3 must average at most one per case, so the band
// cannot silently swallow the ranking comparison.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/strings.h"
#include "src/emulation/topo_gen.h"
#include "src/enterprise/incidents.h"
#include "src/eval/runner.h"
#include "src/eval/tables.h"
#include "src/stats/ttest.h"

using namespace murphy;

namespace {

// The acceptance test runs at alpha = 0.01 (SamplerOptions::significance).
// A t-statistic re-estimated on a fresh stream moves by ~N(0,1); this band
// covers estimates within about one sigma of the acceptance threshold
// (t in [0.8, 3.3]), whose verdicts are stream-coin-flips.
constexpr double kBorderlineLo = 0.0005;  // alpha / 20
constexpr double kBorderlineHi = 0.2;     // alpha * 20

struct GateStats {
  std::size_t cases = 0;
  std::size_t top1_mismatch = 0;
  std::size_t top3_mismatch = 0;
  std::size_t borderline = 0;       // candidates excluded from top-k identity
  std::size_t top3_borderline = 0;  // ...of those, ones an unfiltered top-3
                                    // would have contained (the gated count)
  // Paired per-candidate counterfactual deltas, one entry per (case,
  // candidate) that both modes evaluated.
  std::vector<double> scalar_scores;
  std::vector<double> fast_scores;
};

// Runs one request through both diagnosers and scores the agreement.
void compare_case(core::MurphyDiagnoser& scalar, core::MurphyDiagnoser& fast,
                  const core::DiagnosisRequest& req, const std::string& name,
                  GateStats& gs) {
  const auto rs = scalar.diagnose(req);
  const auto rf = fast.diagnose(req);
  ++gs.cases;

  // Entities whose verdict is borderline in either mode (see file comment).
  std::vector<std::uint32_t> borderline;
  auto collect_borderline = [&](const core::DiagnosisResult& r) {
    for (const auto& c : r.audit.candidates)
      if (c.evaluated && !c.self_symptom && c.p_value >= kBorderlineLo &&
          c.p_value <= kBorderlineHi)
        borderline.push_back(c.entity.value());
  };
  collect_borderline(rs);
  collect_borderline(rf);
  std::sort(borderline.begin(), borderline.end());
  borderline.erase(std::unique(borderline.begin(), borderline.end()),
                   borderline.end());
  gs.borderline += borderline.size();

  auto top = [&](const core::DiagnosisResult& r, std::size_t k) {
    std::vector<std::uint32_t> ids;
    for (const auto& cause : r.causes) {
      if (ids.size() >= k) break;
      const std::uint32_t id = cause.entity.value();
      if (std::binary_search(borderline.begin(), borderline.end(), id))
        continue;
      ids.push_back(id);
    }
    return ids;
  };
  // How much would the band have eaten from an unfiltered top-3?
  std::vector<std::uint32_t> eaten;
  for (const auto* r : {&rs, &rf})
    for (std::size_t i = 0; i < r->causes.size() && i < 3; ++i) {
      const std::uint32_t id = r->causes[i].entity.value();
      if (std::binary_search(borderline.begin(), borderline.end(), id))
        eaten.push_back(id);
    }
  std::sort(eaten.begin(), eaten.end());
  eaten.erase(std::unique(eaten.begin(), eaten.end()), eaten.end());
  gs.top3_borderline += eaten.size();
  const bool top1_ok = top(rs, 1) == top(rf, 1);
  const bool top3_ok = top(rs, 3) == top(rf, 3);
  if (!top1_ok) ++gs.top1_mismatch;
  if (!top3_ok) ++gs.top3_mismatch;
  if (!top1_ok || !top3_ok) {
    std::printf("  MISMATCH %s: top1 %s top3 %s (scalar %zu causes, fast "
                "%zu)\n",
                name.c_str(), top1_ok ? "ok" : "DIFF",
                top3_ok ? "ok" : "DIFF", rs.causes.size(), rf.causes.size());
    auto p_of = [](const core::DiagnosisResult& r, std::uint32_t id) {
      for (const auto& c : r.audit.candidates)
        if (c.entity.value() == id) return c.p_value;
      return -1.0;
    };
    auto dump = [&](const char* mode, const core::DiagnosisResult& r) {
      std::printf("    %s top3:", mode);
      for (const std::uint32_t id : top(r, 3))
        std::printf(" e%u(ps=%.4g pf=%.4g)", id, p_of(rs, id), p_of(rf, id));
      std::printf("\n");
    };
    dump("scalar", rs);
    dump("fast  ", rf);
  }

  // Candidate audits are sorted by entity id in both results, so pairing is
  // positional after matching entities.
  std::size_t j = 0;
  for (const auto& ca : rs.audit.candidates) {
    while (j < rf.audit.candidates.size() &&
           rf.audit.candidates[j].entity < ca.entity)
      ++j;
    if (j >= rf.audit.candidates.size() ||
        !(rf.audit.candidates[j].entity == ca.entity))
      continue;
    const auto& cb = rf.audit.candidates[j];
    if (!ca.evaluated || !cb.evaluated) continue;
    gs.scalar_scores.push_back(ca.counterfactual_delta);
    gs.fast_scores.push_back(cb.counterfactual_delta);
  }
}

core::MurphyDiagnoser make_murphy(bool fast, std::uint64_t seed) {
  core::MurphyOptions mopts;
  // More samples than the production default: the gate compares two
  // different random streams, so borderline p ~ alpha verdicts need tight
  // p-value estimates or membership flips would mask real regressions.
  mopts.sampler.num_samples = bench::full_scale() ? 2000 : 800;
  mopts.seed = seed;
  mopts.fast_inference = fast;
  mopts.obs.metrics = &obs::global_metrics();
  mopts.obs.collect_audit = true;
  return core::MurphyDiagnoser(mopts);
}

}  // namespace

int main() {
  bench::print_header(
      "Fast-inference statistical equivalence gate",
      "fast mode must reproduce scalar verdicts: identical top-1/top-3 on "
      "Table-1 + battle-matrix smoke cases; Welch t-test on candidate score "
      "deltas not rejected at alpha=0.01");

  GateStats gs;

  // --- Table-1 enterprise incidents ----------------------------------------
  {
    enterprise::IncidentDatasetOptions opts;
    if (!bench::full_scale()) {
      opts.topology.num_apps = 8;
      opts.topology.hosts = 12;
      opts.topology.tors = 3;
      opts.topology.ports_per_tor = 8;
      opts.topology.datastores = 4;
      opts.dynamics.slices = 168;
    }
    std::fprintf(stderr, "building 13 incidents...\n");
    const auto dataset = enterprise::make_incident_dataset(opts);
    bench::stamp_workload({"enterprise-incidents", opts.topology.num_apps,
                           opts.topology.hosts, opts.seed,
                           "operator-incidents-1-13"});
    auto scalar = make_murphy(false, 11);
    auto fast = make_murphy(true, 11);
    for (const auto& inc : dataset) {
      compare_case(scalar, fast, eval::request_for(inc),
                   "incident-" + std::to_string(inc.number), gs);
      std::fprintf(stderr, "  incident %d done\n", inc.number);
    }
  }

  // --- battle-matrix smoke cells -------------------------------------------
  {
    emulation::TopoGenOptions topts;
    topts.services = 60;
    topts.applications = 2;
    topts.seed = 7;
    const auto topo = emulation::generate_topology(topts);
    bench::stamp_workload({"topo-gen-smoke", topts.services, 0, topts.seed,
                           "single_contention,correlated_multi_root,cascade"});
    auto scalar = make_murphy(false, 7);
    auto fast = make_murphy(true, 7);
    const emulation::IncidentKind kinds[] = {
        emulation::IncidentKind::kSingleContention,
        emulation::IncidentKind::kCorrelatedMultiRoot,
        emulation::IncidentKind::kCascade,
    };
    for (const auto kind : kinds) {
      emulation::TopologyCaseOptions copts;
      copts.fault = kind;
      copts.seed = 21;
      const auto c = emulation::make_topology_case(topo, copts);
      compare_case(scalar, fast, eval::request_for(c), c.name, gs);
      std::fprintf(stderr, "  case %s done\n", c.name.c_str());
    }
  }

  // --- gates -----------------------------------------------------------------
  const auto t = stats::welch_t_test(gs.scalar_scores, gs.fast_scores);
  const bool ttest_ok = t.p_two_sided >= 0.01;
  // The band must not hollow out the ranking comparison: across all cases,
  // at most one borderline entity per case may have reached a top-3.
  const bool borderline_ok = gs.top3_borderline <= gs.cases;

  eval::Table table({"gate", "result", "detail"});
  table.add_row({"top-1 identical", gs.top1_mismatch == 0 ? "PASS" : "FAIL",
                 std::to_string(gs.cases - gs.top1_mismatch) + "/" +
                     std::to_string(gs.cases) + " cases"});
  table.add_row({"top-3 identical", gs.top3_mismatch == 0 ? "PASS" : "FAIL",
                 std::to_string(gs.cases - gs.top3_mismatch) + "/" +
                     std::to_string(gs.cases) + " cases"});
  table.add_row({"score-delta t-test", ttest_ok ? "PASS" : "FAIL",
                 "p=" + format_double(t.p_two_sided, 4) + " over " +
                     std::to_string(gs.scalar_scores.size()) +
                     " paired candidates (reject below 0.01)"});
  table.add_row({"borderline in top-3", borderline_ok ? "PASS" : "FAIL",
                 std::to_string(gs.top3_borderline) + " excluded across " +
                     std::to_string(gs.cases) + " cases (<= 1 per case; " +
                     std::to_string(gs.borderline) +
                     " band-total among evaluated)"});
  std::printf("%s\n", table.render().c_str());

  auto* m = &obs::global_metrics();
  m->gauge("equiv.cases")->set(static_cast<double>(gs.cases));
  m->gauge("equiv.top1_mismatch")->set(static_cast<double>(gs.top1_mismatch));
  m->gauge("equiv.top3_mismatch")->set(static_cast<double>(gs.top3_mismatch));
  m->gauge("equiv.paired_candidates")
      ->set(static_cast<double>(gs.scalar_scores.size()));
  m->gauge("equiv.ttest_p")->set(t.p_two_sided);
  m->gauge("equiv.borderline")->set(static_cast<double>(gs.borderline));
  m->gauge("equiv.top3_borderline")
      ->set(static_cast<double>(gs.top3_borderline));
  murphy::bench::write_bench_json("fast_equivalence");

  const bool ok = gs.top1_mismatch == 0 && gs.top3_mismatch == 0 &&
                  ttest_ok && borderline_ok;
  std::printf("%s\n", ok ? "equivalence gate PASSED"
                         : "equivalence gate FAILED");
  return ok ? 0 : 1;
}
