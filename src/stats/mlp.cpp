#include "src/stats/mlp.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "src/stats/summary.h"

namespace murphy::stats {

MlpRegressor::MlpRegressor(int hidden_layers, int hidden_width, int epochs,
                           double learning_rate, std::uint64_t seed)
    : hidden_layers_(hidden_layers),
      hidden_width_(hidden_width),
      epochs_(epochs),
      lr_(learning_rate),
      seed_(seed) {
  assert(hidden_layers >= 1 && hidden_width >= 1 && epochs >= 1);
}

double MlpRegressor::forward(std::span<const double> zx,
                             std::vector<std::vector<double>>& acts) const {
  acts.resize(layers_.size() + 1);
  acts[0].assign(zx.begin(), zx.end());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    const bool is_output = (l + 1 == layers_.size());
    auto& out = acts[l + 1];
    out.assign(layer.out_dim, 0.0);
    for (std::size_t o = 0; o < layer.out_dim; ++o) {
      double z = layer.biases[o];
      const double* w = &layer.weights[o * layer.in_dim];
      for (std::size_t i = 0; i < layer.in_dim; ++i) z += w[i] * acts[l][i];
      out[o] = is_output ? z : std::tanh(z);
    }
  }
  return acts.back()[0];
}

void MlpRegressor::fit(const Matrix& x, const Vector& y) {
  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  assert(y.size() == n && n >= 1);

  feat_mean_.assign(p, 0.0);
  feat_scale_.assign(p, 1.0);
  for (std::size_t j = 0; j < p; ++j) {
    OnlineStats s;
    for (std::size_t i = 0; i < n; ++i) s.add(x.at(i, j));
    feat_mean_[j] = s.mean();
    feat_scale_[j] = s.stddev() > 1e-12 ? s.stddev() : 1.0;
  }
  {
    OnlineStats s;
    for (double v : y) s.add(v);
    y_mean_ = s.mean();
    y_scale_ = s.stddev() > 1e-12 ? s.stddev() : 1.0;
  }

  Matrix xs(n, p);
  Vector ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < p; ++j)
      xs.at(i, j) = (x.at(i, j) - feat_mean_[j]) / feat_scale_[j];
    ys[i] = (y[i] - y_mean_) / y_scale_;
  }

  Rng rng(seed_);
  layers_.clear();
  std::size_t in_dim = p;
  for (int l = 0; l < hidden_layers_; ++l) {
    Layer layer;
    layer.in_dim = in_dim;
    layer.out_dim = static_cast<std::size_t>(hidden_width_);
    layer.weights.resize(layer.in_dim * layer.out_dim);
    layer.biases.assign(layer.out_dim, 0.0);
    const double scale = std::sqrt(1.0 / static_cast<double>(in_dim));
    for (auto& w : layer.weights) w = rng.normal(0.0, scale);
    layer.w_vel.assign(layer.weights.size(), 0.0);
    layer.b_vel.assign(layer.biases.size(), 0.0);
    layers_.push_back(std::move(layer));
    in_dim = static_cast<std::size_t>(hidden_width_);
  }
  {
    Layer out;
    out.in_dim = in_dim;
    out.out_dim = 1;
    out.weights.resize(in_dim);
    const double scale = std::sqrt(1.0 / static_cast<double>(in_dim));
    for (auto& w : out.weights) w = rng.normal(0.0, scale);
    out.biases.assign(1, 0.0);
    out.w_vel.assign(out.weights.size(), 0.0);
    out.b_vel.assign(1, 0.0);
    layers_.push_back(std::move(out));
  }

  constexpr double kMomentum = 0.9;
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<std::vector<double>> acts;
  std::vector<std::vector<double>> deltas(layers_.size());

  for (int epoch = 0; epoch < epochs_; ++epoch) {
    for (std::size_t i = n; i-- > 1;)
      std::swap(order[i], order[rng.below(i + 1)]);
    const double eta = lr_ / (1.0 + 0.01 * epoch);
    for (std::size_t idx : order) {
      const double pred = forward({xs.row(idx), p}, acts);
      const double err = pred - ys[idx];  // d(0.5*err^2)/dpred

      // Backward pass.
      for (std::size_t l = layers_.size(); l-- > 0;) {
        Layer& layer = layers_[l];
        const bool is_output = (l + 1 == layers_.size());
        auto& delta = deltas[l];
        delta.assign(layer.out_dim, 0.0);
        if (is_output) {
          delta[0] = err;
        } else {
          const Layer& next = layers_[l + 1];
          for (std::size_t o = 0; o < layer.out_dim; ++o) {
            double g = 0.0;
            for (std::size_t no = 0; no < next.out_dim; ++no)
              g += deltas[l + 1][no] * next.weights[no * next.in_dim + o];
            const double a = acts[l + 1][o];
            delta[o] = g * (1.0 - a * a);  // tanh'
          }
        }
      }
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        Layer& layer = layers_[l];
        for (std::size_t o = 0; o < layer.out_dim; ++o) {
          const double d = deltas[l][o];
          double* w = &layer.weights[o * layer.in_dim];
          double* wv = &layer.w_vel[o * layer.in_dim];
          for (std::size_t i2 = 0; i2 < layer.in_dim; ++i2) {
            wv[i2] = kMomentum * wv[i2] - eta * d * acts[l][i2];
            w[i2] += wv[i2];
          }
          layer.b_vel[o] = kMomentum * layer.b_vel[o] - eta * d;
          layer.biases[o] += layer.b_vel[o];
        }
      }
    }
  }

  OnlineStats resid;
  fitted_ = true;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> row(x.row(i), x.row(i) + p);
    resid.add(y[i] - predict(row));
  }
  sigma_ = resid.count() >= 2 ? resid.stddev() : 0.0;
}

double MlpRegressor::predict(std::span<const double> x) const {
  assert(fitted_);
  assert(x.size() == feat_mean_.size());
  std::vector<double> zx(x.size());
  for (std::size_t j = 0; j < x.size(); ++j)
    zx[j] = (x[j] - feat_mean_[j]) / feat_scale_[j];
  std::vector<std::vector<double>> acts;
  const double zy = forward(zx, acts);
  return y_mean_ + y_scale_ * zy;
}

}  // namespace murphy::stats
