// Always-on watchdog: streaming anomaly detection feeding continuous
// diagnosis (DESIGN.md §10).
//
// Murphy is request-driven — someone must notice a symptom before the
// engine can explain it. The watchdog closes that loop: it rides the
// TelemetryStream's post-commit observer (series touched + write epochs), so
// only freshly-written series are ever rescored, maintains O(1) incremental
// window statistics per (entity, kind) series, and turns sustained
// anomalies into prioritized DiagnosisService requests through a debounced
// trigger policy with a full incident lifecycle:
//
//   open -> diagnosing -> diagnosed -> resolved
//                ^            |  (re-fire escalation when severity grows)
//                +------------+
//
// Detector. Each series keeps a trailing window of its last
// `baseline_window` finite values with running sum/sum-of-squares, so
// scoring a new slice is O(1): z = |x - mean| / max(sigma, floor), the
// streaming analogue of the engine's robust anomaly score (core/anomaly.h).
// The ranking engine can afford median/MAD over a training window; the
// detector cannot, so windowed mean/sigma stand in — with the same
// self-masking defense by a different mechanism: while a series is hot its
// values are NOT folded into the baseline (the window freezes), so a
// sustained incident cannot inflate sigma enough to hide itself, and
// recovery is measured against the pre-incident baseline. Non-finite and
// missing slices never score and never enter the baseline, so corrupted
// telemetry cannot open an incident through a non-finite z (the chaos
// property, DESIGN.md §8).
//
// Trigger policy. A series fires after `open_hits` consecutive scores at or
// above z_open and clears after `clear_streak` consecutive scores below
// z_clear (hysteresis; between the two thresholds it holds state). Newly
// firing entities are deduplicated against in-flight work: entities already
// covered by an active incident update its severity instead of opening a
// second one; co-onset firings within `group_window` slices of an open
// incident attach to it (one fault lighting up a neighborhood yields ONE
// incident); a resolved entity is in cooldown for `cooldown` slices.
// Opening an incident enqueues a DiagnosisService request whose priority is
// the anomaly severity (rounded z, capped) — severe symptoms preempt mild
// ones in the PR 5 priority queue.
//
// Determinism contract. The incident journal (obs::IncidentEvent JSONL) is
// a pure function of (db contents at each scan, scan schedule, options):
// bitwise identical at any ingest thread count and any service worker
// count. The pieces: dirty series are scored in sorted (entity, kind) order
// from db state (not notification order); in-flight diagnoses are harvested
// blocking, in incident-id order, at the START of each scan (so completion
// timing cannot reorder journal entries); and every journal field is slice-
// indexed, never wall-clocked. Auto-enqueued requests carry now/train
// windows frozen at enqueue time, and replayed telemetry is append-only
// past `now`, so the diagnosis result itself is deterministic even though
// ingestion continues while workers run.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/time_axis.h"
#include "src/obs/audit.h"
#include "src/obs/metrics.h"
#include "src/service/diagnosis_service.h"
#include "src/service/telemetry_stream.h"

namespace murphy::watchdog {

struct WatchdogOptions {
  // --- detector ------------------------------------------------------------
  // Trailing finite samples per series the baseline is computed over.
  std::size_t baseline_window = 64;
  // Slices never score before the baseline holds this many samples (a
  // newborn series must earn a baseline before it can alarm).
  std::size_t min_baseline = 16;
  // Hysteresis pair: a series turns hot at/above z_open and cools below
  // z_clear. z_clear < z_open or the hysteresis is vacuous.
  double z_open = 6.0;
  double z_clear = 2.5;
  // Consecutive hot scores before a series fires (debounce: one spiky slice
  // is not an incident).
  std::size_t open_hits = 2;
  // Consecutive cool scores before a firing series clears.
  std::size_t clear_streak = 4;
  // Scale-aware sigma floor: sigma is clamped to
  // max(sigma_abs_floor, sigma_rel_floor * |mean|), so constant and
  // near-constant baselines (chaos-injected or real) cannot manufacture
  // infinite z from denormal variance (DESIGN.md §8 regime).
  double sigma_abs_floor = 1e-9;
  double sigma_rel_floor = 1e-12;

  // --- trigger policy / lifecycle -----------------------------------------
  // Entities firing within this many slices of an active incident's open
  // attach to it instead of opening their own (fault neighborhoods co-fire).
  std::size_t group_window = 6;
  // Slices after an entity's incident resolves before it may open another.
  std::size_t cooldown = 12;
  // Re-fire: a diagnosed-but-unresolved incident re-enqueues when its
  // severity reaches escalation_ratio * the severity it was last diagnosed
  // at (the fault got materially worse — the old ranking may be stale).
  double escalation_ratio = 1.5;
  // Consecutive scans with no firing member series before auto-resolve.
  std::size_t resolve_streak = 3;

  // --- auto-enqueued requests ---------------------------------------------
  std::size_t max_hops = 6;
  // Per-request deadline; 0 = none. Deadline enforcement is the service's
  // (dequeue check + phase-boundary cancellation).
  long deadline_ms = 0;
  // Priority = min(round(severity z), priority_cap): severity-ordered, but
  // capped so a pathological z cannot starve everything else forever.
  int priority_cap = 1000;

  // Forensic sink: invoked synchronously (from scan()) for every journal
  // event, in journal order. murphyd uses this to emit per-incident T2-style
  // forensic markers as transitions happen.
  std::function<void(const obs::IncidentEvent&)> on_event;
};

enum class IncidentState : std::uint8_t {
  kOpen = 0,        // symptom observed, no diagnosis in flight
  kDiagnosing,      // a DiagnosisService request is in flight
  kDiagnosed,       // latest diagnosis completed kOk
  kResolved,        // symptom cleared (terminal)
};

[[nodiscard]] std::string_view to_string(IncidentState s);

struct Incident {
  std::uint64_t id = 0;  // 1-based, assigned in deterministic open order
  IncidentState state = IncidentState::kOpen;
  EntityId entity;          // primary symptom entity (max-z firing at open)
  std::string entity_name;
  std::string metric;       // driver metric of the primary firing series
  TimeIndex opened_at = 0;
  TimeIndex resolved_at = 0;
  double severity = 0.0;           // max member |z| seen over the lifetime
  double diagnosed_severity = 0.0; // severity at the last enqueue
  int priority = 0;                // priority of the last enqueue
  std::uint64_t refires = 0;
  // Entities attributed to this incident (primary first, then attach order).
  std::vector<EntityId> members;
  // Top-ranked root-cause entity names from the latest kOk diagnosis.
  std::vector<std::string> top_causes;
  bool diagnosis_ok = false;
};

// Deterministic single-line JSON renderings (fixed key order, round-trip
// number precision) — the INCIDENTS daemon verb and tests use these.
[[nodiscard]] std::string to_json(const Incident& inc);
[[nodiscard]] std::string to_json(std::span<const Incident> incidents);

class Watchdog {
 public:
  // Stream and service must outlive the watchdog. `metrics` may be null
  // (counters are then skipped). attach() must be called to start receiving
  // touches; scan() drives everything else.
  Watchdog(service::TelemetryStream& stream, service::DiagnosisService& service,
           WatchdogOptions opts, obs::MetricsRegistry* metrics = nullptr);
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  // Installs this watchdog as the stream's commit observer. detach() (or
  // destruction) uninstalls it; the stream must not outlive the watchdog
  // while attached.
  void attach();
  void detach();

  // Records touched series. Thread-safe and cheap (set insertion under a
  // mutex); safe to call from any number of concurrent appenders.
  void note(std::span<const service::SeriesTouch> touches);

  // One watchdog cycle: (1) harvest finished diagnoses (blocking, incident-
  // id order), (2) score every dirty series' new slices against its
  // baseline, (3) run the trigger policy (open/attach/refire/resolve,
  // enqueue requests). Call after each ingest batch (murphyd: per replayed
  // slice). NOT thread-safe against itself — one scanner at a time; it IS
  // safe against concurrent note()/append().
  void scan();

  // Harvests all in-flight diagnoses and re-scans until the lifecycle
  // quiesces: every incident ends kDiagnosed or kResolved. Call at shutdown
  // or end of replay before reading final state.
  void drain();

  // All incidents ever opened, indexed by id - 1.
  [[nodiscard]] const std::vector<Incident>& incidents() const {
    return incidents_;
  }
  [[nodiscard]] std::size_t open_count() const;

  // The lifecycle journal so far (obs::IncidentEvent JSONL, deterministic).
  [[nodiscard]] std::string journal_jsonl() const;
  [[nodiscard]] const std::vector<obs::IncidentEvent>& journal() const {
    return journal_;
  }

  // Per-candidate diagnosis audits of completed incident diagnoses, each
  // stamped with its incident_id — the DESIGN.md §10 audit linkage. Only
  // populated when the service's MurphyOptions::obs.collect_audit is set.
  [[nodiscard]] std::string audit_jsonl() const;

 private:
  struct SeriesState {
    // Ring buffer of the last `baseline_window` finite samples.
    std::vector<double> window;
    std::size_t head = 0;
    std::size_t count = 0;
    double sum = 0.0;
    double sumsq = 0.0;
    double inv_n = 0.0;  // 1/count, updated only when count changes
    TimeIndex next_t = 0;  // first slice not yet scored
    // Last score in squared space: z^2 = diff2 / var. The hot loop never
    // takes a sqrt or divides — z itself is materialized lazily (candidate
    // ranking, severity refresh), where only firing series are touched.
    double last_diff2 = 0.0;
    double last_var = 1.0;
    std::size_t hits = 0;
    std::size_t cool = 0;
    bool firing = false;
    // Cached series pointer: unordered_map nodes are address-stable under
    // insert, and every erase path bumps the store's structural_version —
    // ts_gen ties the cache to that version, so a stale pointer is never
    // dereferenced. Saves a hash lookup per series per scan.
    const telemetry::TimeSeries* ts = nullptr;
    std::uint64_t ts_gen = 0;
  };

  struct InFlight {
    std::size_t incident_idx = 0;
    std::future<service::ServiceResponse> future;
  };

  void journal_event(obs::IncidentEvent ev);
  void harvest();
  void enqueue(std::size_t incident_idx, TimeIndex now);
  // Scores x against the baseline in squared space: writes the floored
  // variance to *var and returns (x - mean)^2; z^2 is the ratio. Below
  // min_baseline returns 0 with *var = 1 (z == 0).
  [[nodiscard]] double score_slice2(SeriesState& st, double x,
                                    double* var) const;
  void push_baseline(SeriesState& st, double x) const;
  [[nodiscard]] static double last_z(const SeriesState& st) {
    return std::sqrt(st.last_diff2 / st.last_var);
  }

  service::TelemetryStream& stream_;
  service::DiagnosisService& service_;
  WatchdogOptions opts_;
  obs::MetricsRegistry* metrics_;

  std::mutex dirty_mu_;
  // Dirty list: series with unscored writes. Append-only under the mutex
  // (O(1) per touch on the ingest path); the scan swaps it out and
  // sort+uniques — scoring reads db slices, not epochs, so only the ref
  // matters.
  std::vector<MetricRef> dirty_;
  // Scan-side scratch, swapped with dirty_ each scan: the two buffers
  // ping-pong so neither side reallocates in steady state.
  std::vector<MetricRef> dirty_scan_;

  // Scan-side state (single scanner; no locking needed beyond dirty_mu_).
  // Sorted by ref: the scan merge-joins the sorted dirty list against it
  // (contiguous, O(dirty + series)) instead of a tree lookup per series —
  // this is the per-slice hot loop of the always-on path.
  std::vector<std::pair<MetricRef, SeriesState>> series_;
  std::size_t total_firing_ = 0;  // firing series across all entities
  std::map<EntityId, std::size_t> firing_series_of_;  // count per entity
  std::map<EntityId, std::size_t> active_incident_of_;  // -> incidents_ index
  std::map<EntityId, TimeIndex> cooldown_until_;
  std::map<std::size_t, std::size_t> quiet_scans_;  // incident idx -> streak
  std::vector<Incident> incidents_;
  std::vector<InFlight> in_flight_;
  std::vector<obs::IncidentEvent> journal_;
  std::vector<obs::DiagnosisAudit> audits_;
  std::uint64_t next_incident_id_ = 0;
  // Series-pointer cache generation (see SeriesState::ts_gen).
  std::uint64_t structural_seen_ = 0;
  std::uint64_t ptr_gen_ = 0;
  bool attached_ = false;
};

}  // namespace murphy::watchdog
