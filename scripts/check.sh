#!/usr/bin/env bash
# CI-style check: build + run the full test suite in the default mode and
# under the sanitizers (ThreadSanitizer for the parallel diagnosis engine,
# ASan+UBSan for memory/UB). A race or sanitizer report fails the run.
#
# Usage:
#   scripts/check.sh                # default + thread + address
#   scripts/check.sh thread         # just one mode
#   scripts/check.sh default thread # any subset, in order
set -euo pipefail

cd "$(dirname "$0")/.."

modes=("$@")
if [ ${#modes[@]} -eq 0 ]; then
  modes=(default thread address)
fi

jobs="$(nproc 2>/dev/null || echo 2)"

for mode in "${modes[@]}"; do
  case "$mode" in
    default)  dir=build;         sanitize="" ;;
    thread)   dir=build-tsan;    sanitize=thread ;;
    address)  dir=build-asan;    sanitize=address ;;
    undefined) dir=build-ubsan;  sanitize=undefined ;;
    *) echo "unknown mode: $mode (want default|thread|address|undefined)" >&2
       exit 2 ;;
  esac

  echo "==> [$mode] configure + build ($dir)"
  cmake -B "$dir" -S . -DMURPHY_SANITIZE="$sanitize"
  cmake --build "$dir" -j "$jobs"

  echo "==> [$mode] ctest"
  # halt_on_error makes a TSAN race / ASan report fail the owning test
  # instead of scrolling past; second_deadlock_stack improves lock reports.
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  ASAN_OPTIONS="halt_on_error=1 detect_leaks=0" \
  UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
    ctest --test-dir "$dir" -j "$jobs" --output-on-failure
done

echo "==> all modes passed: ${modes[*]}"
