file(REMOVE_RECURSE
  "CMakeFiles/telemetry_graph_test.dir/graph_test.cpp.o"
  "CMakeFiles/telemetry_graph_test.dir/graph_test.cpp.o.d"
  "CMakeFiles/telemetry_graph_test.dir/telemetry_test.cpp.o"
  "CMakeFiles/telemetry_graph_test.dir/telemetry_test.cpp.o.d"
  "telemetry_graph_test"
  "telemetry_graph_test.pdb"
  "telemetry_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
