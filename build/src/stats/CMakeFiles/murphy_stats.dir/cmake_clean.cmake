file(REMOVE_RECURSE
  "CMakeFiles/murphy_stats.dir/correlation.cpp.o"
  "CMakeFiles/murphy_stats.dir/correlation.cpp.o.d"
  "CMakeFiles/murphy_stats.dir/gmm.cpp.o"
  "CMakeFiles/murphy_stats.dir/gmm.cpp.o.d"
  "CMakeFiles/murphy_stats.dir/matrix.cpp.o"
  "CMakeFiles/murphy_stats.dir/matrix.cpp.o.d"
  "CMakeFiles/murphy_stats.dir/mlp.cpp.o"
  "CMakeFiles/murphy_stats.dir/mlp.cpp.o.d"
  "CMakeFiles/murphy_stats.dir/predictor.cpp.o"
  "CMakeFiles/murphy_stats.dir/predictor.cpp.o.d"
  "CMakeFiles/murphy_stats.dir/ridge.cpp.o"
  "CMakeFiles/murphy_stats.dir/ridge.cpp.o.d"
  "CMakeFiles/murphy_stats.dir/summary.cpp.o"
  "CMakeFiles/murphy_stats.dir/summary.cpp.o.d"
  "CMakeFiles/murphy_stats.dir/svr.cpp.o"
  "CMakeFiles/murphy_stats.dir/svr.cpp.o.d"
  "CMakeFiles/murphy_stats.dir/ttest.cpp.o"
  "CMakeFiles/murphy_stats.dir/ttest.cpp.o.d"
  "libmurphy_stats.a"
  "libmurphy_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/murphy_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
