file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_contention.dir/bench_fig6_contention.cpp.o"
  "CMakeFiles/bench_fig6_contention.dir/bench_fig6_contention.cpp.o.d"
  "bench_fig6_contention"
  "bench_fig6_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
