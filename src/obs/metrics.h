// Thread-safe metrics registry: counters, gauges, fixed-bucket histograms.
//
// Engine internals (factors trained, neighbors pruned by the one-in-ten
// rule, Gibbs iterations, candidates evaluated, per-phase milliseconds, ...)
// are recorded here so benches, tests and the audit pipeline can read them
// after a run. Instruments are registered by name (get-or-create under a
// mutex, once) and then updated lock-free through atomics, so hammering a
// counter from every worker thread is cheap and TSAN-clean.
//
// Determinism: integer counter totals depend only on the work performed, so
// a deterministic diagnosis yields identical counter values at every thread
// count. Histogram *bucket counts* share that property when the observed
// values are themselves deterministic (p-values, feature counts) — but not
// for wall-clock observations like the phase.*_ms histograms. The `sum`
// field is a floating-point accumulation whose order varies with
// scheduling, so tests must not compare sums across thread counts.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace murphy::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

// Last-writer-wins double value. Set gauges from serial sections only if the
// final value must be deterministic.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

// Fixed-bucket histogram: bucket i counts observations <= bounds[i]; one
// overflow bucket counts the rest. Bounds are set at registration and
// immutable afterwards.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  // bucket_counts()[i] pairs with bounds()[i]; the final entry is overflow.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  // Upper-bound estimate of the p-quantile (p in [0, 1]) from the bucket
  // counts: the bound of the first bucket whose cumulative count reaches
  // p * count(). Resolution is the bucket width — good enough for the
  // service's p50/p99 latency reporting, not for fine-grained percentiles.
  // Observations past the last bound report the last bound. 0 when empty.
  [[nodiscard]] double quantile(double p) const;
  void reset();

 private:
  const std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Get-or-create; the returned pointer stays valid for the registry's
  // lifetime. Re-registering a histogram name keeps the original bounds.
  [[nodiscard]] Counter* counter(std::string_view name);
  [[nodiscard]] Gauge* gauge(std::string_view name);
  [[nodiscard]] Histogram* histogram(std::string_view name,
                                     std::vector<double> bounds);

  // Lookup without creation; nullptr when absent (or a different kind).
  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;

  // Point-in-time snapshot of every instrument, sorted by name.
  struct Snapshot {
    struct Entry {
      std::string name;
      std::string kind;  // "counter" | "gauge" | "histogram"
      double value = 0.0;             // counter/gauge value, histogram count
      double sum = 0.0;               // histogram only
      std::vector<double> bounds;     // histogram only
      std::vector<std::uint64_t> bucket_counts;  // histogram only
    };
    std::vector<Entry> entries;
  };
  [[nodiscard]] Snapshot snapshot() const;

  // Snapshot rendered as one JSON object keyed by instrument name.
  [[nodiscard]] std::string to_json() const;

  // Zeroes every registered instrument (instruments stay registered and
  // previously returned pointers stay valid).
  void reset();

 private:
  mutable std::mutex mu_;  // guards the maps; instruments update lock-free
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// Process-global registry. The stats layer and the bench harness record
// here; the engine itself only writes to an explicitly supplied registry.
[[nodiscard]] MetricsRegistry& global_metrics();

}  // namespace murphy::obs
