// The relationship graph of §4.1 — the structure Murphy reasons over.
//
// Nodes are entities pulled from the MonitoringDb by recursive neighborhood
// expansion from a seed set; edges are the loose associations, materialized
// as directed edges in BOTH directions unless the association is known to be
// causal one way (caller -> callee). Cycles are therefore the norm, which is
// precisely the regime Murphy's MRF is designed for.
#pragma once

#include <cstddef>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "src/common/ids.h"
#include "src/telemetry/monitoring_db.h"

namespace murphy::graph {

// Dense node index within one RelationshipGraph.
using NodeIndex = std::size_t;
inline constexpr std::size_t kUnreachable = std::numeric_limits<std::size_t>::max();

struct GraphEdge {
  NodeIndex src;
  NodeIndex dst;
  telemetry::RelationKind kind;
};

class RelationshipGraph {
 public:
  // Builds by expanding `seeds` through the db's associations for at most
  // `max_hops` rounds (S = neighbors(S), per §4.1). `max_nodes` caps growth
  // for intractably large environments; expansion stops once exceeded.
  static RelationshipGraph build(const telemetry::MonitoringDb& db,
                                 std::span<const EntityId> seeds,
                                 std::size_t max_hops = 4,
                                 std::size_t max_nodes = 100000);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

  [[nodiscard]] EntityId entity_of(NodeIndex n) const { return nodes_[n]; }
  [[nodiscard]] std::optional<NodeIndex> index_of(EntityId id) const;
  [[nodiscard]] std::span<const EntityId> entities() const { return nodes_; }

  // Outgoing / incoming neighbor node indices. `in_neighbors(v)` is the
  // in_nbrs(v) of the MRF factor definition.
  [[nodiscard]] std::span<const NodeIndex> out_neighbors(NodeIndex n) const {
    return out_[n];
  }
  [[nodiscard]] std::span<const NodeIndex> in_neighbors(NodeIndex n) const {
    return in_[n];
  }
  [[nodiscard]] std::span<const GraphEdge> edges() const { return edges_; }

  // BFS hop distances along out-edges from `src`; kUnreachable when not
  // reachable.
  [[nodiscard]] std::vector<std::size_t> distances_from(NodeIndex src) const;
  // BFS distances along *in*-edges (i.e. distance TO `dst`).
  [[nodiscard]] std::vector<std::size_t> distances_to(NodeIndex dst) const;

  // The shortest-path subgraph from `src` to `dst` (§4.2): every node lying
  // on a directed path of length <= dist(src,dst) + slack, ordered by
  // increasing distance from `src` (so `src` is first and `dst` last; ties
  // place `dst` after other nodes at its distance). slack = 0 gives the
  // strict shortest-path subgraph; a small slack also captures the
  // "sibling" entities (a service's container, a VM's host) through which
  // influence flows in parallel. Empty when unreachable.
  [[nodiscard]] std::vector<NodeIndex> shortest_path_subgraph(
      NodeIndex src, NodeIndex dst, std::size_t slack = 0) const;

  // Same subgraph, but reusing a precomputed `distances_to(dst)` map. A
  // diagnosis evaluates every candidate against ONE symptom node, so the
  // backward BFS is shared across candidates and only a forward search —
  // bounded at depth dist(src,dst) + slack, past which no node can satisfy
  // the membership inequality — runs per call. Returns the identical vector
  // the two-BFS overload produces.
  [[nodiscard]] std::vector<NodeIndex> shortest_path_subgraph(
      NodeIndex src, NodeIndex dst, std::size_t slack,
      std::span<const std::size_t> dist_to_dst) const;

  // Cycle census used by §2.2's statistics: directed cycles of length 2
  // (a->b->a) and 3 (a->b->c->a), counted once per node set.
  [[nodiscard]] std::size_t count_2cycles() const;
  [[nodiscard]] std::size_t count_3cycles() const;
  // True if node n lies on at least one directed cycle.
  [[nodiscard]] bool on_cycle(NodeIndex n) const;
  // True if the graph contains no directed cycle (then Sage can model it).
  [[nodiscard]] bool is_dag() const;

  // Topological order; nullopt when the graph is cyclic.
  [[nodiscard]] std::optional<std::vector<NodeIndex>> topological_order()
      const;

  // A copy without the directed edge src->dst (and, for bidirectional
  // associations, the paired reverse edge stays). For degradation tests.
  [[nodiscard]] RelationshipGraph without_edge(NodeIndex src,
                                               NodeIndex dst) const;
  // A copy without node n (all its edges removed; indices re-packed).
  [[nodiscard]] RelationshipGraph without_node(NodeIndex n) const;

 private:
  void add_edge(NodeIndex src, NodeIndex dst, telemetry::RelationKind kind);
  void finalize();

  [[nodiscard]] bool has_edge(NodeIndex src, NodeIndex dst) const;

  std::vector<EntityId> nodes_;
  std::vector<GraphEdge> edges_;
  std::vector<std::vector<NodeIndex>> out_;
  std::vector<std::vector<NodeIndex>> in_;
};

}  // namespace murphy::graph
