# Empty compiler generated dependencies file for murphy_baselines.
# This may be replaced when dependencies are built.
