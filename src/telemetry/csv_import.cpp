#include "src/telemetry/csv_import.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <fstream>
#include <unordered_map>
#include <vector>

namespace murphy::telemetry {
namespace {

// Splits one CSV line, honouring double-quoted fields with "" escapes.
std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"' && i + 1 < line.size() && line[i + 1] == '"') {
        cur += '"';
        ++i;
      } else if (c == '"') {
        quoted = false;
      } else {
        cur += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      out.push_back(std::move(cur));
      cur.clear();
    } else if (c != '\r') {
      cur += c;
    }
  }
  out.push_back(std::move(cur));
  return out;
}

bool parse_u32(const std::string& s, std::uint32_t* out) {
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool parse_size(const std::string& s, std::size_t* out) {
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool parse_double(const std::string& s, double* out) {
  try {
    std::size_t pos = 0;
    *out = std::stod(s, &pos);
    return pos == s.size();
  } catch (...) {
    return false;
  }
}

std::optional<EntityType> entity_type_from(const std::string& name) {
  for (const auto t :
       {EntityType::kVm, EntityType::kHost, EntityType::kContainer,
        EntityType::kVirtualNic, EntityType::kPhysicalNic, EntityType::kFlow,
        EntityType::kSwitch, EntityType::kSwitchPort, EntityType::kDatastore,
        EntityType::kService, EntityType::kClient, EntityType::kNode}) {
    if (entity_type_name(t) == name) return t;
  }
  return std::nullopt;
}

std::optional<RelationKind> relation_kind_from(const std::string& name) {
  for (const auto k :
       {RelationKind::kVmOnHost, RelationKind::kVnicOfVm,
        RelationKind::kPnicOfHost, RelationKind::kFlowEndpoint,
        RelationKind::kPortOfSwitch, RelationKind::kHostUplink,
        RelationKind::kVmOnDatastore, RelationKind::kServiceOnContainer,
        RelationKind::kContainerOnNode, RelationKind::kCallerCallee,
        RelationKind::kClientOfService, RelationKind::kGeneric}) {
    if (relation_kind_name(k) == name) return k;
  }
  return std::nullopt;
}

bool fail(ImportError* error, std::string message, std::size_t line) {
  if (error != nullptr) {
    error->message = std::move(message);
    error->line = line;
  }
  return false;
}

}  // namespace

std::optional<ImportResult> import_csv(std::istream& entities,
                                       std::istream& associations,
                                       std::istream& metrics,
                                       double interval_seconds,
                                       ImportError* error) {
  ImportResult result;
  MonitoringDb& db = result.db;
  // exported id -> imported EntityId.
  std::unordered_map<std::uint32_t, EntityId> id_map;
  std::unordered_map<std::string, AppId> app_map;

  std::string line;
  std::size_t line_no = 0;

  // --- entities --------------------------------------------------------------
  if (!std::getline(entities, line))
    return fail(error, "empty entities file", 0), std::nullopt;
  ++line_no;
  while (std::getline(entities, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fields = split_csv(line);
    if (fields.size() != 4)
      return fail(error, "entities: expected 4 fields", line_no),
             std::nullopt;
    std::uint32_t exported_id = 0;
    if (!parse_u32(fields[0], &exported_id))
      return fail(error, "entities: bad id '" + fields[0] + "'", line_no),
             std::nullopt;
    const auto type = entity_type_from(fields[1]);
    if (!type)
      return fail(error, "entities: unknown type '" + fields[1] + "'",
                  line_no),
             std::nullopt;
    AppId app;
    if (!fields[3].empty()) {
      if (const auto it = app_map.find(fields[3]); it != app_map.end())
        app = it->second;
      else {
        app = db.define_app(fields[3]);
        app_map.emplace(fields[3], app);
      }
    }
    id_map.emplace(exported_id, db.add_entity(*type, fields[2], app));
    ++result.entities;
  }

  // --- associations -----------------------------------------------------------
  line_no = 0;
  if (!std::getline(associations, line))
    return fail(error, "empty associations file", 0), std::nullopt;
  ++line_no;
  while (std::getline(associations, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fields = split_csv(line);
    if (fields.size() != 4)
      return fail(error, "associations: expected 4 fields", line_no),
             std::nullopt;
    std::uint32_t a = 0, b = 0;
    if (!parse_u32(fields[0], &a) || !parse_u32(fields[1], &b))
      return fail(error, "associations: bad entity id", line_no),
             std::nullopt;
    const auto ia = id_map.find(a);
    const auto ib = id_map.find(b);
    if (ia == id_map.end() || ib == id_map.end())
      return fail(error, "associations: unknown entity id", line_no),
             std::nullopt;
    const auto kind = relation_kind_from(fields[2]);
    if (!kind)
      return fail(error, "associations: unknown kind '" + fields[2] + "'",
                  line_no),
             std::nullopt;
    db.add_association(ia->second, ib->second, *kind, fields[3] == "1");
    ++result.associations;
  }

  // --- metrics (long format) ----------------------------------------------------
  struct SeriesAccumulator {
    std::vector<double> values;
    std::vector<bool> valid;
    // Duplicate / ordering detection (see ImportResult): which slices have
    // been written, and the highest slice written so far.
    std::vector<bool> written;
    std::size_t max_slice_written = 0;
    bool any_written = false;
  };
  std::unordered_map<MetricRef, SeriesAccumulator> series;
  std::size_t max_slice = 0;
  line_no = 0;
  if (!std::getline(metrics, line))
    return fail(error, "empty metrics file", 0), std::nullopt;
  ++line_no;
  while (std::getline(metrics, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fields = split_csv(line);
    if (fields.size() != 5)
      return fail(error, "metrics: expected 5 fields", line_no), std::nullopt;
    std::uint32_t exported_id = 0;
    std::size_t slice = 0;
    double value = 0.0;
    if (!parse_u32(fields[0], &exported_id) ||
        !parse_size(fields[2], &slice) || !parse_double(fields[3], &value))
      return fail(error, "metrics: malformed row", line_no), std::nullopt;
    const auto it = id_map.find(exported_id);
    if (it == id_map.end())
      return fail(error, "metrics: unknown entity id", line_no), std::nullopt;
    const MetricKindId kind = db.catalog().intern(fields[1]);
    auto& acc = series[MetricRef{it->second, kind}];
    if (slice >= acc.values.size()) {
      acc.values.resize(slice + 1, 0.0);
      acc.valid.resize(slice + 1, false);
      acc.written.resize(slice + 1, false);
    }
    // Defined defect semantics (ImportResult): duplicated keys are
    // last-write-wins, out-of-order rows land on their slice regardless of
    // file order; both are tallied so degradation is observable. The tallies
    // are disjoint — a repeated key is a duplicate, never also out-of-order.
    if (acc.written[slice]) {
      ++result.duplicate_rows;
    } else if (acc.any_written && slice < acc.max_slice_written) {
      ++result.out_of_order_rows;
    }
    if (!std::isfinite(value)) ++result.nonfinite_values;
    acc.values[slice] = value;
    acc.valid[slice] = fields[4] == "1";
    acc.written[slice] = true;
    acc.max_slice_written = std::max(acc.max_slice_written, slice);
    acc.any_written = true;
    max_slice = std::max(max_slice, slice);
  }

  db.metrics().set_axis(TimeAxis(0.0, interval_seconds, max_slice + 1));
  for (auto& [ref, acc] : series) {
    acc.values.resize(max_slice + 1, 0.0);
    acc.valid.resize(max_slice + 1, false);
    db.metrics().put(ref.entity, ref.kind,
                     TimeSeries(std::move(acc.values), std::move(acc.valid)));
    ++result.series;
  }
  return result;
}

std::optional<ImportResult> import_csv_files(const std::string& path_prefix,
                                             double interval_seconds,
                                             ImportError* error) {
  std::ifstream entities(path_prefix + "_entities.csv");
  std::ifstream associations(path_prefix + "_associations.csv");
  std::ifstream metrics(path_prefix + "_metrics.csv");
  if (!entities || !associations || !metrics) {
    if (error != nullptr)
      error->message = "could not open one of the csv files under '" +
                       path_prefix + "'";
    return std::nullopt;
  }
  return import_csv(entities, associations, metrics, interval_seconds, error);
}

}  // namespace murphy::telemetry
