// Tests for the evaluation harness: scoring semantics, aggregation, the
// degradation injectors and the recall-calibration procedure.
#include <gtest/gtest.h>

#include "src/baselines/explainit.h"
#include "src/eval/degradation.h"
#include "src/eval/metrics.h"
#include "src/eval/runner.h"
#include "src/eval/tables.h"

namespace murphy::eval {
namespace {

core::DiagnosisResult result_of(std::initializer_list<std::uint32_t> ids) {
  core::DiagnosisResult r;
  double score = 100.0;
  for (const auto id : ids)
    r.causes.push_back(core::RankedRootCause{EntityId(id), score--});
  return r;
}

TEST(Metrics, ScoreResultRankAndPrecision) {
  const auto result = result_of({10, 20, 30});
  const std::vector<EntityId> truth{EntityId(20)};
  const auto outcome = score_result(result, truth);
  EXPECT_EQ(outcome.rank, 2u);
  EXPECT_TRUE(outcome.hit(2));
  EXPECT_FALSE(outcome.hit(1));
  EXPECT_DOUBLE_EQ(outcome.precision(), 0.5);
  EXPECT_EQ(outcome.false_positives, 2u);
  EXPECT_EQ(outcome.output_size, 3u);
}

TEST(Metrics, MissingTruthGivesZero) {
  const auto result = result_of({10, 20});
  const std::vector<EntityId> truth{EntityId(99)};
  const auto outcome = score_result(result, truth);
  EXPECT_EQ(outcome.rank, 0u);
  EXPECT_DOUBLE_EQ(outcome.precision(), 0.0);
  EXPECT_EQ(outcome.false_positives, 2u);
}

TEST(Metrics, MultiEntityTruthUsesBestRank) {
  const auto result = result_of({10, 20, 30});
  const std::vector<EntityId> truth{EntityId(30), EntityId(20)};
  const auto outcome = score_result(result, truth);
  EXPECT_EQ(outcome.rank, 2u);
  // Only entity 10 is a false positive.
  EXPECT_EQ(outcome.false_positives, 1u);
}

TEST(Metrics, RelaxedSetWidensAcceptance) {
  const auto result = result_of({10, 20});
  const std::vector<EntityId> truth{EntityId(99)};
  const std::vector<EntityId> relaxed{EntityId(99), EntityId(10)};
  const auto outcome = score_result(result, truth, relaxed);
  EXPECT_EQ(outcome.rank, 0u);
  EXPECT_EQ(outcome.relaxed_rank, 1u);
  EXPECT_TRUE(outcome.relaxed_hit(5));
}

TEST(Metrics, AccuracyAggregation) {
  Accuracy acc;
  CaseOutcome hit1;
  hit1.rank = 1;
  hit1.false_positives = 2;
  CaseOutcome miss;
  miss.rank = 0;
  miss.false_positives = 4;
  acc.add(hit1);
  acc.add(miss);
  EXPECT_DOUBLE_EQ(acc.top_k(1), 0.5);
  EXPECT_DOUBLE_EQ(acc.top_k(5), 0.5);
  EXPECT_DOUBLE_EQ(acc.mean_precision(), 0.5);
  EXPECT_DOUBLE_EQ(acc.mean_false_positives(), 3.0);
  EXPECT_EQ(acc.total_false_positives(), 6u);
}

TEST(Runner, TruncatedCapsOutput) {
  auto r = result_of({1, 2, 3, 4, 5});
  const auto t = truncated(std::move(r), 2);
  EXPECT_EQ(t.causes.size(), 2u);
  EXPECT_EQ(t.causes[0].entity, EntityId(1));
}

class DegradationTest : public ::testing::Test {
 protected:
  static emulation::DiagnosisCase make_case(std::uint64_t seed = 5) {
    emulation::ContentionOptions opts;
    opts.app = emulation::ContentionOptions::App::kHotelReservation;
    opts.seed = seed;
    opts.slices = 120;
    opts.prior_incidents = 1;
    return emulation::make_contention_case(opts);
  }
};

TEST_F(DegradationTest, MissingValuesKeepsIncidentWindow) {
  auto c = make_case();
  Rng rng(9);
  apply_degradation(c, Degradation::kMissingValues, rng);
  // Some series lost pre-incident history; every series keeps the incident.
  std::size_t degraded = 0;
  for (const EntityId e : c.db.all_entities()) {
    for (const MetricKindId kind : c.db.metrics().kinds_of(e)) {
      const auto* ts = c.db.metrics().find(e, kind);
      if (!ts->is_valid(0)) ++degraded;
      EXPECT_TRUE(ts->is_valid(c.incident_start));
    }
  }
  EXPECT_GT(degraded, 0u);
}

TEST_F(DegradationTest, MissingEdgeRemovesOneRpcAssociation) {
  auto c = make_case();
  const std::size_t before = c.db.association_count();
  Rng rng(9);
  apply_degradation(c, Degradation::kMissingEdge, rng);
  EXPECT_EQ(c.db.association_count(), before - 1);
}

TEST_F(DegradationTest, MissingEntityPreservesTruthAndSymptom) {
  auto c = make_case();
  const std::size_t before = c.db.all_entities().size();
  Rng rng(9);
  apply_degradation(c, Degradation::kMissingEntity, rng);
  EXPECT_EQ(c.db.all_entities().size(), before - 1);
  EXPECT_TRUE(c.db.has_entity(c.symptom_entity));
  EXPECT_TRUE(c.db.has_entity(c.root_cause));
}

TEST_F(DegradationTest, MissingMetricHitsRootCauseOnly) {
  auto c = make_case();
  const std::size_t before = c.db.metrics().kinds_of(c.root_cause).size();
  Rng rng(9);
  apply_degradation(c, Degradation::kMissingMetric, rng);
  EXPECT_EQ(c.db.metrics().kinds_of(c.root_cause).size(), before - 1);
}

TEST_F(DegradationTest, DegradedCaseStillDiagnosable) {
  // The pipeline must not crash on degraded inputs (robustness experiment's
  // basic contract).
  for (const auto d : {Degradation::kMissingValues, Degradation::kMissingEdge,
                       Degradation::kMissingEntity,
                       Degradation::kMissingMetric}) {
    auto c = make_case(11);
    Rng rng(13);
    apply_degradation(c, d, rng);
    baselines::ExplainIt explainit;
    const auto outcome = run_case(explainit, c);
    (void)outcome;  // any result is acceptable; crash/UB is not
  }
  SUCCEED();
}

TEST(Tables, RendersAlignedColumns) {
  Table t({"scheme", "recall"});
  t.add_row({"murphy", "0.86"});
  t.add_row({"netmedic", "0.15"});
  const auto s = t.render();
  EXPECT_NE(s.find("scheme"), std::string::npos);
  EXPECT_NE(s.find("murphy"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  // Column alignment: "netmedic" defines the width.
  EXPECT_NE(s.find("murphy  "), std::string::npos);
}

}  // namespace
}  // namespace murphy::eval
