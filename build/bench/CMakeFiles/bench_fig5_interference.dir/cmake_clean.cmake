file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_interference.dir/bench_fig5_interference.cpp.o"
  "CMakeFiles/bench_fig5_interference.dir/bench_fig5_interference.cpp.o.d"
  "bench_fig5_interference"
  "bench_fig5_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
