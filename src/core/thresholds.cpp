#include "src/core/thresholds.h"

#include "src/telemetry/metric_catalog.h"

namespace murphy::core {

bool Thresholds::is_above(std::string_view metric_name, double value) const {
  namespace mk = telemetry::metrics;
  if (metric_name == mk::kCpuUtil || metric_name == mk::kMemUtil ||
      metric_name == mk::kDiskUtil || metric_name == mk::kBufferUtil ||
      metric_name == mk::kSpaceUtil)
    return value > util_percent;
  if (metric_name == mk::kPacketDrops || metric_name == mk::kErrorRate)
    return value > drop_rate;
  if (metric_name == mk::kSessionCount) return value > flow_sessions;
  if (metric_name == mk::kThroughput || metric_name == mk::kNetTx ||
      metric_name == mk::kNetRx || metric_name == mk::kDiskIo)
    return value > flow_throughput;
  if (metric_name == mk::kLatency || metric_name == mk::kRtt)
    return value > latency_ms;
  if (metric_name == mk::kRequestRate) return value > request_rate;
  if (metric_name == mk::kRetransmitRatio) return value > drop_rate;
  return false;
}

}  // namespace murphy::core
