// Common interface implemented by Murphy and the reference baselines.
//
// Every scheme consumes the same inputs (the monitoring database, one
// problematic symptom and the time of the incident) and produces the same
// output shape (a ranked list of candidate root-cause entities), so the
// evaluation harness and benches can treat them interchangeably.
#pragma once

#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/time_axis.h"
#include "src/obs/audit.h"
#include "src/telemetry/monitoring_db.h"

namespace murphy::core {

struct DiagnosisRequest {
  const telemetry::MonitoringDb* db = nullptr;

  // The problematic symptom (E_o, M_o).
  EntityId symptom_entity;
  std::string symptom_metric;

  // Time slice at which the diagnosis runs (the "current" values). Training
  // uses history in [train_begin, train_end); with online training
  // train_end == now + 1 so the window includes in-incident points (§4.2).
  TimeIndex now = 0;
  TimeIndex train_begin = 0;
  TimeIndex train_end = 0;

  // Relationship-graph expansion depth from the symptom entity (§4.1).
  std::size_t max_hops = 4;
};

struct RankedRootCause {
  EntityId entity;
  // Scheme-specific score; larger = more suspect. Used only for ordering.
  double score = 0.0;
};

// Per-phase wall-clock timings of one diagnosis, in milliseconds. Murphy
// fills these (baselines leave zeros) so benches and tests can assert where
// time goes instead of guessing from end-to-end numbers. Since the
// observability layer landed they are derived from the engine's phase spans
// (obs::Span::finish), one source of truth shared with the trace export.
// Timings are the one part of a DiagnosisResult that is NOT deterministic.
struct PhaseTimings {
  double graph_ms = 0.0;      // relationship-graph build + metric space
  double training_ms = 0.0;   // online factor training
  double search_ms = 0.0;     // snapshot + candidate pruning
  double inference_ms = 0.0;  // counterfactual evaluation of all candidates
  double explain_ms = 0.0;    // labeling + explanation chains
  double total_ms = 0.0;      // whole diagnose() call
};

struct DiagnosisResult {
  // Candidates in rank order (index 0 = top suspect).
  std::vector<RankedRootCause> causes;

  // Human-readable explanation chains (Murphy only; empty for baselines).
  // Each chain explains causes[i] for matching i.
  std::vector<std::string> explanations;

  // Recent configuration changes around the incident (§4.2 "Edge cases"):
  // presented alongside the metric-driven diagnosis so that problems caused
  // by freshly spawned/migrated/resized entities are not missed. Murphy
  // fills this from the db's config-event log; baselines leave it empty.
  std::vector<telemetry::ConfigEvent> recent_config_changes;

  // Where the wall-clock went (see PhaseTimings).
  PhaseTimings timings;

  // Per-candidate evidence behind the ranking (Murphy only, and only when
  // MurphyOptions::obs.collect_audit is set; empty otherwise). Everything in
  // it is deterministic — see src/obs/audit.h.
  obs::DiagnosisAudit audit;

  // True when the diagnosis was abandoned at a phase boundary by the
  // cooperative cancellation hook (MurphyOptions::cancel — the service's
  // deadline enforcement). A cancelled result carries no causes; consumers
  // must check this before trusting an empty ranking to mean "healthy".
  bool cancelled = false;

  // Rank (1-based) of `entity`, or 0 when absent.
  [[nodiscard]] std::size_t rank_of(EntityId entity) const {
    for (std::size_t i = 0; i < causes.size(); ++i)
      if (causes[i].entity == entity) return i + 1;
    return 0;
  }
};

class Diagnoser {
 public:
  virtual ~Diagnoser() = default;
  [[nodiscard]] virtual DiagnosisResult diagnose(
      const DiagnosisRequest& request) = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;
};

}  // namespace murphy::core
