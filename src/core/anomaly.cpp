#include "src/core/anomaly.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "src/stats/summary.h"

namespace murphy::core {

double variable_anomaly(const FactorSet& factors, VarIndex v, double current) {
  // Robust statistics: with online training the incident sits inside the
  // window and would otherwise inflate mean/sigma enough to mask itself.
  const MetricConditional& c = factors.conditional(v);
  return std::abs(
      stats::zscore(current, c.robust_center(), c.robust_sigma(), 1e-3));
}

NodeAnomaly node_anomaly(const FactorSet& factors, const MetricSpace& space,
                         graph::NodeIndex node,
                         std::span<const double> state) {
  NodeAnomaly out;
  bool first = true;
  for (const VarIndex v : space.vars_of(node)) {
    const double a = variable_anomaly(factors, v, state[v]);
    const double center = factors.conditional(v).robust_center();
    const double ratio =
        std::abs(state[v] - center) / std::max(std::abs(center), 1.0);
    out.rank_score = std::max(out.rank_score, a * (1.0 + ratio));
    if (first || a > out.score) {
      out.score = a;
      out.driver = v;
      out.high = state[v] >= center;
      first = false;
    }
  }
  return out;
}

std::vector<graph::NodeIndex> candidate_search(
    const telemetry::MonitoringDb& db, const graph::RelationshipGraph& graph,
    const MetricSpace& space, const FactorSet& factors,
    std::span<const double> state, graph::NodeIndex symptom,
    const CandidateSearchOptions& opts) {
  auto suspicious = [&](graph::NodeIndex n) {
    for (const VarIndex v : space.vars_of(n)) {
      const auto& var = space.var(v);
      const auto name = db.catalog().name(var.kind);
      if (opts.thresholds.is_above(name, state[v])) return true;
      if (variable_anomaly(factors, v, state[v]) > opts.z_min) return true;
    }
    return false;
  };

  std::vector<graph::NodeIndex> out;
  std::vector<bool> seen(graph.node_count(), false);
  std::deque<std::pair<graph::NodeIndex, std::size_t>> queue;
  queue.emplace_back(symptom, 0);
  seen[symptom] = true;

  while (!queue.empty() && out.size() < opts.max_candidates) {
    const auto [cur, depth] = queue.front();
    queue.pop_front();
    out.push_back(cur);
    if (depth >= opts.max_hops) continue;
    // Explore both edge directions: influence may flow either way through a
    // loose association.
    auto visit = [&](graph::NodeIndex nb) {
      if (seen[nb]) return;
      seen[nb] = true;
      if (suspicious(nb)) queue.emplace_back(nb, depth + 1);
    };
    for (const graph::NodeIndex nb : graph.out_neighbors(cur)) visit(nb);
    for (const graph::NodeIndex nb : graph.in_neighbors(cur)) visit(nb);
  }
  return out;
}

}  // namespace murphy::core
