# Empty dependencies file for murphy_telemetry.
# This may be replaced when dependencies are built.
