// Minimal dense linear algebra for the learning code.
//
// The models trained in this repository are tiny by ML standards (a few
// hundred rows, B <= ~20 features per the paper's one-in-ten rule), so a
// simple row-major dense matrix with Cholesky-based solves is all that is
// needed; no BLAS dependency.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace murphy::stats {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] const double* row(std::size_t r) const {
    return data_.data() + r * cols_;
  }
  [[nodiscard]] double* row(std::size_t r) { return data_.data() + r * cols_; }

  [[nodiscard]] static Matrix identity(std::size_t n);

  // C = A^T * A (Gram matrix), the core of the normal equations.
  [[nodiscard]] Matrix gram() const;
  // y = A^T * v; requires v.size() == rows().
  [[nodiscard]] Vector transpose_times(const Vector& v) const;
  // y = A * v; requires v.size() == cols().
  [[nodiscard]] Vector times(const Vector& v) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// In-place Cholesky factorization of a symmetric positive-definite matrix.
// Returns false if the matrix is not (numerically) positive definite.
[[nodiscard]] bool cholesky(Matrix& a);

// Solves A x = b given the Cholesky factor produced by cholesky().
[[nodiscard]] Vector cholesky_solve(const Matrix& chol, const Vector& b);

// Solves the SPD system A x = b; returns nullopt if A is not SPD.
[[nodiscard]] std::optional<Vector> solve_spd(Matrix a, const Vector& b);

[[nodiscard]] double dot(const Vector& a, const Vector& b);

// Low-level kernels shared by the matrix routines, the correlation cache and
// the sampler. Both keep the exact sequential accumulation order of the
// naive loops (dot uses a single accumulator in index order; every axpy
// output slot is independent), so calls are bit-identical to the scalar
// code they replace — unrolling only exposes instruction-level parallelism
// for the multiplies.
[[nodiscard]] double dot_kernel(const double* a, const double* b,
                                std::size_t n);
// y[i] += a * x[i] for i in [0, n).
void axpy_kernel(std::size_t n, double a, const double* x, double* y);

}  // namespace murphy::stats
