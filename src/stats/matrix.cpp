#include "src/stats/matrix.h"

#include <cassert>
#include <cmath>

namespace murphy::stats {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Matrix::gram() const {
  Matrix g(cols_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* x = row(r);
    for (std::size_t i = 0; i < cols_; ++i) {
      const double xi = x[i];
      if (xi == 0.0) continue;
      double* gi = g.row(i);
      for (std::size_t j = i; j < cols_; ++j) gi[j] += xi * x[j];
    }
  }
  for (std::size_t i = 0; i < cols_; ++i)
    for (std::size_t j = 0; j < i; ++j) g.at(i, j) = g.at(j, i);
  return g;
}

Vector Matrix::transpose_times(const Vector& v) const {
  assert(v.size() == rows_);
  Vector out(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* x = row(r);
    const double vr = v[r];
    for (std::size_t c = 0; c < cols_; ++c) out[c] += x[c] * vr;
  }
  return out;
}

Vector Matrix::times(const Vector& v) const {
  assert(v.size() == cols_);
  Vector out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* x = row(r);
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += x[c] * v[c];
    out[r] = acc;
  }
  return out;
}

bool cholesky(Matrix& a) {
  assert(a.rows() == a.cols());
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double d = a.at(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= a.at(j, k) * a.at(j, k);
    if (d <= 0.0 || !std::isfinite(d)) return false;
    const double ljj = std::sqrt(d);
    a.at(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a.at(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= a.at(i, k) * a.at(j, k);
      a.at(i, j) = s / ljj;
    }
    // Zero the strictly-upper triangle so the factor is clean.
    for (std::size_t c = j + 1; c < n; ++c) a.at(j, c) = 0.0;
  }
  return true;
}

Vector cholesky_solve(const Matrix& chol, const Vector& b) {
  const std::size_t n = chol.rows();
  assert(b.size() == n);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {  // forward: L y = b
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= chol.at(i, k) * y[k];
    y[i] = s / chol.at(i, i);
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {  // backward: L^T x = y
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= chol.at(k, ii) * x[k];
    x[ii] = s / chol.at(ii, ii);
  }
  return x;
}

std::optional<Vector> solve_spd(Matrix a, const Vector& b) {
  if (!cholesky(a)) return std::nullopt;
  return cholesky_solve(a, b);
}

double dot(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace murphy::stats
