
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/features_test.cpp" "tests/CMakeFiles/features_test.dir/features_test.cpp.o" "gcc" "tests/CMakeFiles/features_test.dir/features_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/murphy_core.dir/DependInfo.cmake"
  "/root/repo/build/src/emulation/CMakeFiles/murphy_emulation.dir/DependInfo.cmake"
  "/root/repo/build/src/enterprise/CMakeFiles/murphy_enterprise.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/murphy_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/murphy_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/murphy_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/murphy_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
