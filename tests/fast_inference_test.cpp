// Tests for the opt-in vectorized inference mode (DESIGN.md §11) and its
// batched normal generator.
//
// The contract under test has three parts:
//  1. Rng::fill_normal is a correct N(0,1) sampler (moments, tails), is
//     chunking-invariant, and its mix_seed-derived streams are independent.
//  2. fast_inference=false stays the bitwise golden: the scalar path is
//     untouched at any thread count, and running a fast diagnosis never
//     perturbs a scalar one. The integer xoshiro stream is pinned to golden
//     values so the scalar normal stream cannot silently drift either.
//  3. fast_inference=true is statistically equivalent (same verdicts),
//     deterministic at any thread count, reports the IDENTICAL work
//     accounting (node_resamples / kernel_cells) as scalar mode, and falls
//     back per candidate when conditionals are not flattened.
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/factor_model.h"
#include "src/core/metric_space.h"
#include "src/core/murphy.h"
#include "src/core/sampler.h"
#include "src/obs/metrics.h"

namespace murphy {
namespace {

using telemetry::ConfigEvent;
using telemetry::ConfigEventKind;
using telemetry::EntityType;
using telemetry::MonitoringDb;
using telemetry::RelationKind;

// ---------- the batched generator ------------------------------------------

TEST(FillNormal, GoldenU64StreamUnchanged) {
  // The scalar golden contract rests on the raw xoshiro256** stream: pin it.
  // (splitmix64-seeded, values independent of platform).
  Rng rng(1);
  const std::uint64_t expected[] = {
      0xb3f2af6d0fc710c5ull, 0x853b559647364ceaull, 0x92f89756082a4514ull,
      0x642e1c7bc266a3a7ull, 0xb27a48e29a233673ull, 0x24c123126ffda722ull,
  };
  for (const std::uint64_t want : expected) EXPECT_EQ(rng(), want);
}

TEST(FillNormal, MomentsMatchStandardNormal) {
  constexpr std::size_t kN = 200000;
  Rng rng(42);
  std::vector<double> z(kN);
  rng.fill_normal(z);

  double sum = 0.0, sum2 = 0.0;
  std::size_t beyond196 = 0, beyond3 = 0;
  for (const double v : z) {
    sum += v;
    sum2 += v * v;
    if (std::abs(v) > 1.96) ++beyond196;
    if (std::abs(v) > 3.0) ++beyond3;
  }
  const double mean = sum / kN;
  const double var = sum2 / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
  // P(|Z| > 1.96) = 0.05, P(|Z| > 3) = 0.0027 — the ziggurat tail path.
  EXPECT_NEAR(static_cast<double>(beyond196) / kN, 0.05, 0.005);
  EXPECT_NEAR(static_cast<double>(beyond3) / kN, 0.0027, 0.0015);
}

TEST(FillNormal, ChunkingInvariant) {
  // The fast kernel consumes lane-sized blocks whose width depends on how
  // many chains remain; the stream must not depend on the chunking.
  constexpr std::size_t kN = 1024;
  Rng whole_rng(9);
  std::vector<double> whole(kN);
  whole_rng.fill_normal(whole);

  Rng halves_rng(9);
  std::vector<double> halves(kN);
  halves_rng.fill_normal(std::span<double>(halves.data(), kN / 2));
  halves_rng.fill_normal(std::span<double>(halves.data() + kN / 2, kN / 2));
  EXPECT_EQ(whole, halves);

  Rng singles_rng(9);
  std::vector<double> singles(kN);
  for (std::size_t i = 0; i < kN; ++i)
    singles_rng.fill_normal(std::span<double>(singles.data() + i, 1));
  EXPECT_EQ(whole, singles);
}

TEST(FillNormal, DeterministicAndSeedSensitive) {
  std::vector<double> a(256), b(256), c(256);
  Rng ra(7), rb(7), rc(8);
  ra.fill_normal(a);
  rb.fill_normal(b);
  rc.fill_normal(c);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(FillNormal, MixSeedStreamsIndependent) {
  // Per-candidate streams are derived via mix_seed(seed, stream); adjacent
  // streams must be uncorrelated or parallel candidates would covary.
  constexpr std::size_t kN = 100000;
  Rng r1(mix_seed(5, 1)), r2(mix_seed(5, 2));
  std::vector<double> z1(kN), z2(kN);
  r1.fill_normal(z1);
  r2.fill_normal(z2);
  double dot = 0.0;
  for (std::size_t i = 0; i < kN; ++i) dot += z1[i] * z2[i];
  // Both sides ~N(0,1): corr ~= dot/N, stderr ~= 1/sqrt(N) ~= 0.003.
  EXPECT_LT(std::abs(dot / kN), 0.02);
}

// ---------- end-to-end fixture ---------------------------------------------

// Chain A -> B -> C -> D with a late surge at A propagating to the symptom
// at D (same construction as concurrency_test.cpp, so results here are
// comparable to the determinism suite's expectations).
struct ChainEnv {
  MonitoringDb db;
  EntityId a, b, c, d;
  MetricKindId load;
};

ChainEnv make_chain_env(std::size_t slices = 200) {
  ChainEnv e;
  e.a = e.db.add_entity(EntityType::kVm, "A");
  e.b = e.db.add_entity(EntityType::kVm, "B");
  e.c = e.db.add_entity(EntityType::kVm, "C");
  e.d = e.db.add_entity(EntityType::kVm, "D");
  e.db.add_association(e.a, e.b, RelationKind::kGeneric);
  e.db.add_association(e.b, e.c, RelationKind::kGeneric);
  e.db.add_association(e.c, e.d, RelationKind::kGeneric);
  e.load = e.db.catalog().intern("cpu_util");
  e.db.metrics().set_axis(TimeAxis(0.0, 10.0, slices));
  Rng rng(11);
  std::vector<double> va(slices), vb(slices), vc(slices), vd(slices);
  for (std::size_t t = 0; t < slices; ++t) {
    const double surge = t + 20 >= slices ? 14.0 : 0.0;
    va[t] = 6.0 + 2.0 * std::sin(0.07 * t) + rng.normal(0.0, 0.3) + surge;
    vb[t] = 1.6 * va[t] + rng.normal(0.0, 0.3);
    vc[t] = 1.2 * vb[t] + rng.normal(0.0, 0.4);
    vd[t] = 1.1 * vc[t] + rng.normal(0.0, 0.4);
  }
  e.db.metrics().put(e.a, e.load, va);
  e.db.metrics().put(e.b, e.load, vb);
  e.db.metrics().put(e.c, e.load, vc);
  e.db.metrics().put(e.d, e.load, vd);
  e.db.config_events().record(
      ConfigEvent{ConfigEventKind::kResourcesResized, e.b, slices - 5,
                  "vCPU 4 -> 8"});
  return e;
}

core::DiagnosisResult diagnose_chain(const ChainEnv& env, bool fast,
                                     std::size_t num_threads,
                                     obs::MetricsRegistry* metrics = nullptr,
                                     stats::ModelKind model =
                                         stats::ModelKind::kRidge) {
  core::MurphyOptions mopts;
  mopts.sampler.num_samples = 120;
  mopts.num_threads = num_threads;
  mopts.fast_inference = fast;
  mopts.training.model = model;
  mopts.obs.metrics = metrics;
  core::MurphyDiagnoser murphy(mopts);
  core::DiagnosisRequest req;
  req.db = &env.db;
  req.symptom_entity = env.d;
  req.symptom_metric = "cpu_util";
  req.now = 199;
  req.train_begin = 0;
  req.train_end = 200;
  return murphy.diagnose(req);
}

void expect_bitwise_equal(const core::DiagnosisResult& x,
                          const core::DiagnosisResult& y) {
  ASSERT_EQ(x.causes.size(), y.causes.size());
  for (std::size_t i = 0; i < x.causes.size(); ++i) {
    EXPECT_EQ(x.causes[i].entity, y.causes[i].entity) << "rank " << i;
    EXPECT_EQ(x.causes[i].score, y.causes[i].score) << "rank " << i;
  }
  ASSERT_EQ(x.explanations.size(), y.explanations.size());
  for (std::size_t i = 0; i < x.explanations.size(); ++i)
    EXPECT_EQ(x.explanations[i], y.explanations[i]) << "rank " << i;
}

// ---------- scalar golden unperturbed --------------------------------------

TEST(FastInference, ScalarGoldenUnchangedByFastRunsAndThreads) {
  const auto env = make_chain_env();
  const auto scalar1 = diagnose_chain(env, /*fast=*/false, 1);
  ASSERT_FALSE(scalar1.causes.empty());

  // A fast diagnosis in between must not perturb subsequent scalar runs
  // (no shared mutable state, no global RNG).
  const auto fast = diagnose_chain(env, /*fast=*/true, 1);
  ASSERT_FALSE(fast.causes.empty());

  for (const std::size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("num_threads=" + std::to_string(threads));
    expect_bitwise_equal(scalar1, diagnose_chain(env, /*fast=*/false,
                                                 threads));
  }
}

TEST(FastInference, FastModeDeterministicAcrossThreadCounts) {
  const auto env = make_chain_env();
  const auto serial = diagnose_chain(env, /*fast=*/true, 1);
  ASSERT_FALSE(serial.causes.empty());
  for (const std::size_t threads : {2u, 8u}) {
    SCOPED_TRACE("num_threads=" + std::to_string(threads));
    expect_bitwise_equal(serial, diagnose_chain(env, /*fast=*/true, threads));
  }
}

TEST(FastInference, VerdictAgreesWithScalar) {
  // Statistical-equivalence smoke: same ranked entities in the same order
  // (scores may differ within noise; the bench gate t-tests those).
  const auto env = make_chain_env();
  const auto scalar = diagnose_chain(env, /*fast=*/false, 1);
  const auto fast = diagnose_chain(env, /*fast=*/true, 1);
  ASSERT_FALSE(scalar.causes.empty());
  ASSERT_EQ(scalar.causes.size(), fast.causes.size());
  for (std::size_t i = 0; i < scalar.causes.size(); ++i)
    EXPECT_EQ(scalar.causes[i].entity, fast.causes[i].entity) << "rank " << i;
}

// ---------- work accounting ------------------------------------------------

TEST(FastInference, WorkCountersIdenticalAcrossModes) {
  // node_resamples / kernel_cells are a function of the request, never of
  // the execution mode: the lane-batched kernel resamples the same
  // (sample, round, variable) grid as the scalar loop.
  const auto env = make_chain_env();
  const std::vector<EntityId> seeds{env.d};
  const auto g = graph::RelationshipGraph::build(env.db, seeds, 4);
  const core::MetricSpace space(env.db, g);
  const auto state = space.snapshot(env.db, 199);
  const core::FactorSet factors(env.db, g, space, 0, 200,
                                core::FactorTrainingOptions{});

  const auto a_var = space.find(env.a, env.load);
  const auto d_var = space.find(env.d, env.load);
  ASSERT_TRUE(a_var.has_value());
  ASSERT_TRUE(d_var.has_value());
  const auto a_node = space.var(*a_var).node;
  const auto d_node = space.var(*d_var).node;

  core::SamplerOptions sopts;
  sopts.num_samples = 120;
  auto run = [&](bool fast) {
    sopts.fast_inference = fast;
    const core::CounterfactualSampler sampler(g, space, factors, sopts);
    Rng rng(mix_seed(99, 1));
    return sampler.evaluate(a_node, *a_var, d_node, *d_var, state,
                            /*symptom_high=*/true, rng);
  };
  const auto scalar = run(false);
  const auto fast = run(true);

  EXPECT_FALSE(scalar.fast_path);
  EXPECT_TRUE(fast.fast_path);  // the chain is all-ridge: no fallback
  EXPECT_GT(scalar.node_resamples, 0u);
  EXPECT_GT(scalar.kernel_cells, 0u);
  EXPECT_EQ(scalar.path_len, fast.path_len);
  EXPECT_EQ(scalar.node_resamples, fast.node_resamples);
  EXPECT_EQ(scalar.kernel_cells, fast.kernel_cells);
  // Both verdicts must agree on the clear-cut root cause.
  EXPECT_EQ(scalar.is_root_cause, fast.is_root_cause);
}

TEST(FastInference, RegistryCountersIdenticalAcrossModes) {
  const auto env = make_chain_env();
  obs::MetricsRegistry scalar_reg, fast_reg;
  (void)diagnose_chain(env, /*fast=*/false, 1, &scalar_reg);
  (void)diagnose_chain(env, /*fast=*/true, 1, &fast_reg);

  const auto scalar_resamples =
      scalar_reg.counter("infer.gibbs_node_resamples")->value();
  const auto fast_resamples =
      fast_reg.counter("infer.gibbs_node_resamples")->value();
  EXPECT_GT(scalar_resamples, 0u);
  EXPECT_EQ(scalar_resamples, fast_resamples);
  EXPECT_EQ(scalar_reg.counter("infer.kernel_cells")->value(),
            fast_reg.counter("infer.kernel_cells")->value());
  // Mode provenance: every evaluated candidate took the fast path (all
  // conditionals are ridge here), and the scalar run never registers the
  // fast counters in the first place.
  EXPECT_GT(fast_reg.counter("infer.fast_path")->value(), 0u);
  EXPECT_EQ(fast_reg.counter("infer.fast_fallback")->value(), 0u);
}

// ---------- fallback -------------------------------------------------------

TEST(FastInference, FallsBackPerCandidateForNonFlatModels) {
  // GMM conditionals cannot be flattened into the SoA kernel, so every
  // candidate must take the scalar fallback — and still produce a result.
  const auto env = make_chain_env();
  obs::MetricsRegistry reg;
  const auto result = diagnose_chain(env, /*fast=*/true, 1, &reg,
                                     stats::ModelKind::kGmm);
  EXPECT_FALSE(result.causes.empty());
  EXPECT_EQ(reg.counter("infer.fast_path")->value(), 0u);
  EXPECT_GT(reg.counter("infer.fast_fallback")->value(), 0u);

  // The fallback must be the bitwise scalar path: a plain scalar GMM run
  // matches exactly.
  const auto scalar = diagnose_chain(env, /*fast=*/false, 1, nullptr,
                                     stats::ModelKind::kGmm);
  expect_bitwise_equal(scalar, result);
}

}  // namespace
}  // namespace murphy
