// Support-vector regression trained by stochastic subgradient descent on the
// epsilon-insensitive loss with L2 regularization (the Pegasos-style primal
// formulation). With rff_features > 0 the input is first lifted through a
// random Fourier feature map approximating an RBF kernel (Rahimi & Recht),
// making this a kernel SVR — the model family the paper's "SVM" candidate
// refers to. One of the four candidate factor models of Fig. 8a.
#pragma once

#include "src/common/rng.h"
#include "src/stats/predictor.h"

namespace murphy::stats {

class LinearSvr final : public Predictor {
 public:
  LinearSvr(double l2, double epsilon, int epochs, std::uint64_t seed,
            int rff_features = 0);

  void fit(const Matrix& x, const Vector& y) override;
  [[nodiscard]] double predict(std::span<const double> x) const override;
  [[nodiscard]] double residual_sigma() const override { return sigma_; }
  [[nodiscard]] ModelKind kind() const override { return ModelKind::kSvr; }

 private:
  // Standardizes x and, when enabled, lifts it through the RFF map.
  [[nodiscard]] Vector transform(std::span<const double> x) const;

  double l2_;
  double epsilon_;
  int epochs_;
  std::uint64_t seed_;
  int rff_features_;

  Vector w_;
  double bias_ = 0.0;
  Vector feat_mean_, feat_scale_;
  // RFF parameters: omega is rff_features x input_dim (row-major), phase is
  // per-feature. Empty when the model is purely linear.
  Vector rff_omega_;
  Vector rff_phase_;
  double y_mean_ = 0.0, y_scale_ = 1.0;
  double sigma_ = 0.0;
  bool fitted_ = false;
};

}  // namespace murphy::stats
