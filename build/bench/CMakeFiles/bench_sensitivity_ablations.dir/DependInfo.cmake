
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_sensitivity_ablations.cpp" "bench/CMakeFiles/bench_sensitivity_ablations.dir/bench_sensitivity_ablations.cpp.o" "gcc" "bench/CMakeFiles/bench_sensitivity_ablations.dir/bench_sensitivity_ablations.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/murphy_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/murphy_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/emulation/CMakeFiles/murphy_emulation.dir/DependInfo.cmake"
  "/root/repo/build/src/enterprise/CMakeFiles/murphy_enterprise.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/murphy_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/murphy_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/murphy_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/murphy_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/murphy_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
