// Shared helpers for the benchmark harnesses.
//
// Every bench binary regenerates one table or figure of the paper's
// evaluation section. Absolute numbers differ (the substrate is a simulator,
// not the authors' testbed); what must hold is the *shape*: which scheme
// wins, by roughly what factor, and where crossovers fall. Each binary
// prints the paper's reported values alongside the measured ones.
//
// MURPHY_BENCH_SCALE=quick|full (default quick) controls workload sizes so
// the whole suite runs in minutes on one core; "full" approaches the paper's
// scenario counts.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/baselines/explainit.h"
#include "src/baselines/netmedic.h"
#include "src/baselines/sage.h"
#include "src/core/murphy.h"

namespace murphy::bench {

inline bool full_scale() {
  const char* env = std::getenv("MURPHY_BENCH_SCALE");
  return env != nullptr && std::string(env) == "full";
}

// Scales a scenario count: `quick` in quick mode, `full` otherwise.
inline std::size_t scaled(std::size_t quick, std::size_t full) {
  return full_scale() ? full : quick;
}

struct SchemeSet {
  std::unique_ptr<core::MurphyDiagnoser> murphy;
  std::unique_ptr<baselines::Sage> sage;
  std::unique_ptr<baselines::NetMedic> netmedic;
  std::unique_ptr<baselines::ExplainIt> explainit;

  std::vector<core::Diagnoser*> all() {
    return {murphy.get(), sage.get(), netmedic.get(), explainit.get()};
  }
};

// Constructs all four schemes with bench-appropriate sampling effort.
inline SchemeSet make_schemes(std::uint64_t seed = 1) {
  SchemeSet s;
  core::MurphyOptions mopts;
  mopts.sampler.num_samples = full_scale() ? 500 : 150;
  mopts.seed = seed;
  s.murphy = std::make_unique<core::MurphyDiagnoser>(mopts);
  baselines::SageOptions sopts;
  sopts.seed = seed;
  s.sage = std::make_unique<baselines::Sage>(sopts);
  s.netmedic = std::make_unique<baselines::NetMedic>();
  s.explainit = std::make_unique<baselines::ExplainIt>();
  return s;
}

inline void print_header(const char* experiment, const char* paper_summary) {
  std::printf("==================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_summary);
  std::printf("scale: %s (set MURPHY_BENCH_SCALE=full for paper-sized runs)\n",
              full_scale() ? "full" : "quick");
  std::printf("==================================================================\n\n");
}

}  // namespace murphy::bench
