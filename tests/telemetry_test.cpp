// Unit tests for the telemetry substrate: catalog interning, time series
// with validity masks, the MonitoringDb query surface and degradation ops.
#include <cmath>
#include <cstdint>
#include <limits>
#include <new>
#include <utility>

#include <gtest/gtest.h>

#include "src/common/time_axis.h"
#include "src/telemetry/metric_catalog.h"
#include "src/telemetry/metric_store.h"
#include "src/telemetry/monitoring_db.h"

namespace murphy::telemetry {
namespace {

TEST(TimeAxis, IndexOfClampsAndRoundsDown) {
  TimeAxis axis(100.0, 10.0, 5);  // slices at 100,110,120,130,140
  EXPECT_EQ(axis.index_of(100.0), 0u);
  EXPECT_EQ(axis.index_of(119.9), 1u);
  EXPECT_EQ(axis.index_of(50.0), 0u);     // clamped low
  EXPECT_EQ(axis.index_of(1000.0), 4u);   // clamped high
  EXPECT_DOUBLE_EQ(axis.time_of(3), 130.0);
}

TEST(TimeAxis, SliceProducesSubAxis) {
  TimeAxis axis(0.0, 60.0, 10);
  TimeAxis sub = axis.slice(2, 6);
  EXPECT_EQ(sub.size(), 4u);
  EXPECT_DOUBLE_EQ(sub.time_of(0), 120.0);
}

TEST(MetricCatalog, InternIsIdempotent) {
  MetricCatalog cat;
  const MetricKindId a = cat.intern("cpu_util");
  const MetricKindId b = cat.intern("mem_util");
  EXPECT_NE(a, b);
  EXPECT_EQ(cat.intern("cpu_util"), a);
  EXPECT_EQ(cat.name(a), "cpu_util");
  EXPECT_EQ(cat.size(), 2u);
}

TEST(MetricCatalog, FindDoesNotIntern) {
  MetricCatalog cat;
  EXPECT_FALSE(cat.find("absent").valid());
  EXPECT_EQ(cat.size(), 0u);
}

TEST(TimeSeries, ValueOrFallsBackOnInvalid) {
  TimeSeries ts({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(ts.value_or(1, -1.0), 2.0);
  ts.invalidate(1);
  EXPECT_DOUBLE_EQ(ts.value_or(1, -1.0), -1.0);
  EXPECT_DOUBLE_EQ(ts.value_or(99, -1.0), -1.0);  // out of range
}

TEST(TimeSeries, InvalidateBeforeKeepsIncidentWindow) {
  TimeSeries ts({1.0, 2.0, 3.0, 4.0});
  ts.invalidate_before(2);
  EXPECT_FALSE(ts.is_valid(0));
  EXPECT_FALSE(ts.is_valid(1));
  EXPECT_TRUE(ts.is_valid(2));
  EXPECT_TRUE(ts.is_valid(3));
}

TEST(TimeSeries, WindowSubstitutesFallback) {
  TimeSeries ts({1.0, 2.0, 3.0, 4.0});
  ts.invalidate(1);
  const auto w = ts.window(0, 3, 0.0);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w[1], 0.0);
  EXPECT_DOUBLE_EQ(w[2], 3.0);
}

class MonitoringDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    app_ = db_.define_app("shop");
    vm1_ = db_.add_entity(EntityType::kVm, "vm-web", app_);
    vm2_ = db_.add_entity(EntityType::kVm, "vm-db", app_);
    host_ = db_.add_entity(EntityType::kHost, "host-1");
    flow_ = db_.add_entity(EntityType::kFlow, "flow-web-db");
    db_.add_association(vm1_, host_, RelationKind::kVmOnHost);
    db_.add_association(vm2_, host_, RelationKind::kVmOnHost);
    db_.add_association(flow_, vm1_, RelationKind::kFlowEndpoint);
    db_.add_association(flow_, vm2_, RelationKind::kFlowEndpoint);

    db_.metrics().set_axis(TimeAxis(0.0, 60.0, 4));
    cpu_ = db_.catalog().intern("cpu_util");
    db_.metrics().put(vm1_, cpu_, {10.0, 20.0, 30.0, 40.0});
  }

  MonitoringDb db_;
  AppId app_;
  EntityId vm1_, vm2_, host_, flow_;
  MetricKindId cpu_;
};

TEST_F(MonitoringDbTest, EntityLookupByIdAndName) {
  EXPECT_EQ(db_.entity_count(), 4u);
  EXPECT_EQ(db_.entity(vm1_).name, "vm-web");
  EXPECT_EQ(db_.entity(vm1_).type, EntityType::kVm);
  EXPECT_EQ(db_.find_entity("vm-db"), vm2_);
  EXPECT_FALSE(db_.find_entity("nope").valid());
}

TEST_F(MonitoringDbTest, AppMembership) {
  EXPECT_EQ(db_.app(app_).members.size(), 2u);
  EXPECT_EQ(db_.entity(vm1_).app, app_);
  EXPECT_FALSE(db_.entity(host_).app.valid());
  EXPECT_EQ(db_.find_app("shop"), app_);
}

TEST_F(MonitoringDbTest, NeighborsAreDeduplicated) {
  const auto nb = db_.neighbors(host_);
  ASSERT_EQ(nb.size(), 2u);  // vm1, vm2
  const auto nb_vm1 = db_.neighbors(vm1_);
  EXPECT_EQ(nb_vm1.size(), 2u);  // host, flow
}

TEST_F(MonitoringDbTest, MetricRoundTrip) {
  const TimeSeries* ts = db_.metrics().find(vm1_, cpu_);
  ASSERT_NE(ts, nullptr);
  EXPECT_DOUBLE_EQ(ts->value(2), 30.0);
  EXPECT_EQ(db_.metrics().kinds_of(vm1_).size(), 1u);
  EXPECT_EQ(db_.metrics().find(vm2_, cpu_), nullptr);
}

TEST_F(MonitoringDbTest, RemoveEntityDropsAssociationsAndMetrics) {
  db_.remove_entity(vm1_);
  EXPECT_FALSE(db_.has_entity(vm1_));
  EXPECT_EQ(db_.neighbors(host_).size(), 1u);
  EXPECT_EQ(db_.neighbors(flow_).size(), 1u);
  EXPECT_EQ(db_.metrics().find(vm1_, cpu_), nullptr);
  EXPECT_EQ(db_.app(app_).members.size(), 1u);
  // ids of other entities remain stable
  EXPECT_EQ(db_.entity(vm2_).name, "vm-db");
}

TEST_F(MonitoringDbTest, RemoveAssociationKeepsEntities) {
  const std::size_t before = db_.association_count();
  db_.remove_association(0);  // vm1 <-> host
  EXPECT_EQ(db_.association_count(), before - 1);
  const auto nb = db_.neighbors(vm1_);
  EXPECT_EQ(nb.size(), 1u);  // only flow remains
  EXPECT_TRUE(db_.has_entity(vm1_));
}

TEST_F(MonitoringDbTest, MetricEraseSingleKind) {
  const MetricKindId mem = db_.catalog().intern("mem_util");
  db_.metrics().put(vm1_, mem, {1.0, 1.0, 1.0, 1.0});
  EXPECT_EQ(db_.metrics().kinds_of(vm1_).size(), 2u);
  db_.metrics().erase(vm1_, cpu_);
  EXPECT_EQ(db_.metrics().find(vm1_, cpu_), nullptr);
  ASSERT_EQ(db_.metrics().kinds_of(vm1_).size(), 1u);
  EXPECT_EQ(db_.metrics().kinds_of(vm1_)[0], mem);
}

TEST_F(MonitoringDbTest, DataVersionBumpsOnEveryMutation) {
  // The training caches key their generation on data_version(); every
  // mutation that can change what a training window would read must move it.
  std::uint64_t last = db_.data_version();
  const auto bumped = [&] {
    const std::uint64_t now = db_.data_version();
    const bool moved = now > last;
    last = now;
    return moved;
  };

  db_.metrics().put(vm2_, cpu_, {1.0, 2.0, 3.0, 4.0});
  EXPECT_TRUE(bumped());
  // find_mutable hands out a writable pointer: conservatively a new version.
  ASSERT_NE(db_.metrics().find_mutable(vm2_, cpu_), nullptr);
  EXPECT_TRUE(bumped());
  // A miss hands out nothing, so the version must NOT move.
  const MetricKindId absent = db_.catalog().intern("absent");
  ASSERT_EQ(db_.metrics().find_mutable(vm2_, absent), nullptr);
  EXPECT_FALSE(bumped());
  db_.metrics().erase(vm2_, cpu_);
  EXPECT_TRUE(bumped());

  const auto extra = db_.add_entity(EntityType::kVm, "vm-extra");
  EXPECT_TRUE(bumped());
  db_.add_association(extra, host_, RelationKind::kVmOnHost);
  EXPECT_TRUE(bumped());
  db_.add_to_app(app_, extra);
  EXPECT_TRUE(bumped());
  db_.remove_association(db_.association_count() - 1);
  EXPECT_TRUE(bumped());
  db_.remove_entity(extra);
  EXPECT_TRUE(bumped());
  // Read-only queries leave the generation alone.
  (void)db_.neighbors(host_);
  (void)db_.metrics().find(vm1_, cpu_);
  EXPECT_FALSE(bumped());
}

TEST(MonitoringDb, DirectedAssociationIsRecorded) {
  MonitoringDb db;
  const auto a = db.add_entity(EntityType::kService, "caller");
  const auto b = db.add_entity(EntityType::kService, "callee");
  db.add_association(a, b, RelationKind::kCallerCallee, /*directed=*/true);
  ASSERT_EQ(db.association_count(), 1u);
  EXPECT_TRUE(db.association(0).directed);
}

// ---------- telemetry-defect semantics (DESIGN.md §8) ----------------------

TEST(TimeSeries, PutSanitizesNonFiniteToMissing) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  MetricStore store(TimeAxis(0.0, 10.0, 4));
  MetricCatalog cat;
  const MetricKindId cpu = cat.intern("cpu_util");
  const EntityId e{0};
  store.put(e, cpu, {1.0, nan, inf, 4.0});
  const TimeSeries* ts = store.find(e, cpu);
  ASSERT_NE(ts, nullptr);
  EXPECT_TRUE(ts->is_valid(0));
  EXPECT_FALSE(ts->is_valid(1));  // ingest marked the NaN slice missing
  EXPECT_FALSE(ts->is_valid(2));  // and the Inf slice
  EXPECT_TRUE(ts->is_valid(3));
  // Finite slices are stored bit-for-bit unchanged.
  EXPECT_DOUBLE_EQ(ts->value(0), 1.0);
  EXPECT_DOUBLE_EQ(ts->value(3), 4.0);
  // The trainers' window shape sees the documented fallback, never NaN.
  const auto w = ts->window(0, 4, 0.0);
  for (const double v : w) EXPECT_TRUE(std::isfinite(v));
  EXPECT_DOUBLE_EQ(w[1], 0.0);
}

TEST(TimeSeries, ValueOrTreatsRawNonFiniteAsMissing) {
  // set() / find_mutable() bypass ingest (a buggy collector writing in
  // place); the read path must still degrade non-finite payloads to the
  // fallback instead of returning NaN into a snapshot.
  TimeSeries ts({1.0, 2.0, 3.0});
  ts.set(1, std::numeric_limits<double>::quiet_NaN());
  EXPECT_TRUE(ts.is_valid(1));  // the validity bit is untouched...
  EXPECT_DOUBLE_EQ(ts.value_or(1, -7.0), -7.0);  // ...but reads fall back
  const auto w = ts.window(0, 3, 0.0);
  EXPECT_DOUBLE_EQ(w[1], 0.0);
  // The raw accessor still exposes the payload (for export round-trips).
  EXPECT_TRUE(std::isnan(ts.value(1)));
}

TEST(TimeSeries, WindowIsTotalOnDegenerateRanges) {
  TimeSeries ts({1.0, 2.0, 3.0});
  EXPECT_TRUE(ts.window(2, 1, 0.0).empty());    // inverted -> empty
  EXPECT_TRUE(ts.window(50, 40, 0.0).empty());  // inverted off-axis
  const auto beyond = ts.window(2, 5, -1.0);    // end past the axis
  ASSERT_EQ(beyond.size(), 3u);
  EXPECT_DOUBLE_EQ(beyond[0], 3.0);
  EXPECT_DOUBLE_EQ(beyond[1], -1.0);
  EXPECT_DOUBLE_EQ(beyond[2], -1.0);
}

TEST(MonitoringDb, SelfLoopEdgesAreDroppedAtIngest) {
  MonitoringDb db;
  const auto a = db.add_entity(EntityType::kVm, "a");
  const auto b = db.add_entity(EntityType::kVm, "b");
  const std::uint64_t version = db.data_version();
  db.add_association(a, a, RelationKind::kGeneric);
  EXPECT_EQ(db.association_count(), 0u);
  EXPECT_EQ(db.data_version(), version);  // a dropped edge is not a mutation
  db.add_association(a, b, RelationKind::kGeneric);
  EXPECT_EQ(db.association_count(), 1u);
}

TEST(MonitoringDb, OrphanEdgesAreDroppedAtIngest) {
  MonitoringDb db;
  const auto a = db.add_entity(EntityType::kVm, "a");
  const auto b = db.add_entity(EntityType::kVm, "b");
  const EntityId ghost{999};
  db.add_association(a, ghost, RelationKind::kGeneric);
  db.add_association(ghost, b, RelationKind::kGeneric);
  EXPECT_EQ(db.association_count(), 0u);
  // An edge to a REMOVED entity is equally orphaned.
  db.remove_entity(b);
  db.add_association(a, b, RelationKind::kGeneric);
  EXPECT_EQ(db.association_count(), 0u);
  EXPECT_TRUE(db.neighbors(a).empty());
}

TEST(MonitoringDb, UidIsProcessUniqueAcrossCopiesAndStorageReuse) {
  MonitoringDb first;
  const std::uint64_t uid_first = first.uid();
  // Copies may diverge while their version counters coincide: a copy must
  // carry its own identity.
  const MonitoringDb copy = first;  // NOLINT(performance-unnecessary-copy)
  EXPECT_NE(copy.uid(), uid_first);
  // A move transfers the identity (the destination IS the same logical db)
  // and re-keys the source, whose emptied state must not alias it.
  MonitoringDb moved = std::move(first);
  EXPECT_EQ(moved.uid(), uid_first);
  EXPECT_NE(first.uid(), uid_first);  // NOLINT(bugprone-use-after-move)
}

TEST(MonitoringDb, UidDiffersForSequentialDbsAtTheSameStorage) {
  // The ABA scenario the uid exists for: destroy a db, construct another at
  // the same address. The address matches; the identity must not.
  alignas(MonitoringDb) unsigned char storage[sizeof(MonitoringDb)];
  auto* db1 = new (storage) MonitoringDb();
  const std::uint64_t uid1 = db1->uid();
  db1->~MonitoringDb();
  auto* db2 = new (storage) MonitoringDb();
  EXPECT_EQ(static_cast<void*>(db1), static_cast<void*>(db2));
  EXPECT_NE(db2->uid(), uid1);
  db2->~MonitoringDb();
}

}  // namespace
}  // namespace murphy::telemetry
