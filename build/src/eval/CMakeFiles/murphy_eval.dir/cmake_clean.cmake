file(REMOVE_RECURSE
  "CMakeFiles/murphy_eval.dir/ascii_chart.cpp.o"
  "CMakeFiles/murphy_eval.dir/ascii_chart.cpp.o.d"
  "CMakeFiles/murphy_eval.dir/degradation.cpp.o"
  "CMakeFiles/murphy_eval.dir/degradation.cpp.o.d"
  "CMakeFiles/murphy_eval.dir/metrics.cpp.o"
  "CMakeFiles/murphy_eval.dir/metrics.cpp.o.d"
  "CMakeFiles/murphy_eval.dir/runner.cpp.o"
  "CMakeFiles/murphy_eval.dir/runner.cpp.o.d"
  "CMakeFiles/murphy_eval.dir/tables.cpp.o"
  "CMakeFiles/murphy_eval.dir/tables.cpp.o.d"
  "libmurphy_eval.a"
  "libmurphy_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/murphy_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
