#include "src/stats/window_stats.h"

#include <cmath>

#include "src/obs/metrics.h"
#include "src/stats/correlation.h"
#include "src/stats/summary.h"

namespace murphy::stats {

ColumnMoments build_column_moments(std::vector<double> values) {
  ColumnMoments m;
  m.values = std::move(values);
  const std::size_t n = m.values.size();
  // Defined defect semantics: non-finite slices degrade to the missing-value
  // fallback (0.0) instead of poisoning every moment built from the column.
  std::size_t nonfinite = 0;
  for (double& v : m.values) {
    if (!std::isfinite(v)) {
      v = 0.0;
      ++nonfinite;
    }
  }
#ifndef MURPHY_OBS_DISABLED
  if (nonfinite > 0) {
    static obs::Counter* const c_nonfinite =
        obs::global_metrics().counter("train.nonfinite_cells");
    c_nonfinite->add(nonfinite);
  }
#else
  (void)nonfinite;
#endif
  // Exactly mean()'s sum order, then pearson()'s dx and sxx accumulation;
  // variance() accumulates the identical products, so sigma reproduces
  // stddev() bitwise.
  m.mean = stats::mean(m.values);
  m.centered.resize(n);
  for (std::size_t i = 0; i < n; ++i) m.centered[i] = m.values[i] - m.mean;
  double sxx = 0.0;
  for (std::size_t i = 0; i < n; ++i) sxx += m.centered[i] * m.centered[i];
  m.sxx = sxx;
  m.sigma = n < 2 ? 0.0 : std::sqrt(sxx / static_cast<double>(n - 1));
  return m;
}

namespace {

// Centers `col` in place-style into (centered, mean, sxx), with the
// accumulation order of pearson() on that column.
void center_column(const std::vector<double>& col,
                   std::vector<double>& centered, double& mean_out,
                   double& sxx_out) {
  const double mu = stats::mean(col);
  centered.resize(col.size());
  for (std::size_t i = 0; i < col.size(); ++i) centered[i] = col[i] - mu;
  double sxx = 0.0;
  for (std::size_t i = 0; i < col.size(); ++i)
    sxx += centered[i] * centered[i];
  mean_out = mu;
  sxx_out = sxx;
}

}  // namespace

void WindowStats::reset(std::uint64_t fingerprint) {
  std::unique_lock lock(mu_);
  if (fingerprint == fingerprint_ && !columns_.empty()) return;
  columns_.clear();
  fingerprint_ = fingerprint;
}

WindowStats::Entry& WindowStats::entry_for(std::uint64_t key) {
  {
    std::shared_lock lock(mu_);
    if (const auto it = columns_.find(key); it != columns_.end())
      return *it->second;
  }
  std::unique_lock lock(mu_);
  auto& slot = columns_[key];
  if (slot == nullptr) slot = std::make_unique<Entry>();
  return *slot;
}

const ColumnMoments& WindowStats::get_or_build(std::uint64_t key,
                                               const Loader& loader) {
  Entry& e = entry_for(key);
  bool built = false;
  std::call_once(e.base_once, [&] {
    e.moments = build_column_moments(loader());
    built = true;
  });
  (built ? misses_ : hits_).fetch_add(1, std::memory_order_relaxed);
  static obs::Counter* const c_hits =
      obs::global_metrics().counter("cache.window_hits");
  static obs::Counter* const c_misses =
      obs::global_metrics().counter("cache.window_misses");
  (built ? c_misses : c_hits)->add(1);
  return e.moments;
}

const ColumnMoments& WindowStats::with_ranks(std::uint64_t key,
                                             const Loader& loader) {
  Entry& e = entry_for(key);
  std::call_once(e.base_once, [&] {
    e.moments = build_column_moments(loader());
    misses_.fetch_add(1, std::memory_order_relaxed);
  });
  std::call_once(e.rank_once, [&] {
    center_column(midranks(e.moments.values), e.moments.rank_centered,
                  e.moments.rank_mean, e.moments.rank_sxx);
  });
  return e.moments;
}

const ColumnMoments& WindowStats::with_abnormality(std::uint64_t key,
                                                   const Loader& loader) {
  Entry& e = entry_for(key);
  std::call_once(e.base_once, [&] {
    e.moments = build_column_moments(loader());
    misses_.fetch_add(1, std::memory_order_relaxed);
  });
  std::call_once(e.abn_once, [&] {
    // The |z|-score column of abnormality_correlation(), with its exact
    // mean/stddev inputs (mean is cached verbatim; sigma reproduces
    // stddev() bitwise from sxx).
    const auto& v = e.moments.values;
    std::vector<double> abn(v.size());
    for (std::size_t i = 0; i < v.size(); ++i)
      abn[i] = std::abs(stats::zscore(v[i], e.moments.mean, e.moments.sigma));
    center_column(abn, e.moments.abn_centered, e.moments.abn_mean,
                  e.moments.abn_sxx);
  });
  return e.moments;
}

std::size_t WindowStats::size() const {
  std::shared_lock lock(mu_);
  return columns_.size();
}

void WindowStats::prune(std::size_t max_entries) {
  std::unique_lock lock(mu_);
  if (columns_.size() > max_entries) columns_.clear();
}

std::uint64_t WindowStats::hits() const {
  return hits_.load(std::memory_order_relaxed);
}

std::uint64_t WindowStats::misses() const {
  return misses_.load(std::memory_order_relaxed);
}

}  // namespace murphy::stats
