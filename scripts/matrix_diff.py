#!/usr/bin/env python3
"""Compare the deterministic matrix.* gauges of two battle-matrix snapshots.

Usage: scripts/matrix_diff.py <a.json> <b.json>

Only the matrix.* namespace is compared: those gauges (top-1/top-3/MRR/
relaxed accuracy, case and service counts, routing flags) are pure functions
of (MatrixOptions, scheme options) and must match bit-for-bit between runs
and against the committed baseline. Everything else in the snapshot —
matrix_latency.* wall-clock gauges, engine counters, phase timing histograms
— legitimately varies run to run and is ignored.
"""
import json
import sys


def matrix_gauges(path):
    with open(path) as f:
        snap = json.load(f)
    return {
        name: entry["value"]
        for name, entry in snap["metrics"].items()
        if name.startswith("matrix.")
    }


def main():
    if len(sys.argv) != 3:
        print(f"usage: {sys.argv[0]} <a.json> <b.json>", file=sys.stderr)
        return 2
    a = matrix_gauges(sys.argv[1])
    b = matrix_gauges(sys.argv[2])
    if not a or not b:
        print("no matrix.* gauges found — wrong snapshot?", file=sys.stderr)
        return 2
    bad = 0
    for name in sorted(set(a) | set(b)):
        if name not in a or name not in b:
            where = sys.argv[1] if name in a else sys.argv[2]
            print(f"MISSING {name}: only in {where}")
            bad += 1
        elif a[name] != b[name]:
            print(f"DIFF {name}: {a[name]} != {b[name]}")
            bad += 1
    if bad:
        print(f"{bad} matrix gauge(s) differ", file=sys.stderr)
        return 1
    print(f"{len(a)} matrix gauges match")
    return 0


if __name__ == "__main__":
    sys.exit(main())
