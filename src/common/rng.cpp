#include "src/common/rng.h"

#include <cassert>
#include <cmath>

namespace murphy {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t state = seed ^ (stream * 0xBF58476D1CE4E5B9ULL);
  (void)splitmix64(state);
  return splitmix64(state);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::below(std::uint64_t n) {
  assert(n > 0);
  // Rejection sampling to remove modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double m = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * m;
  has_spare_ = true;
  return u * m;
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) {
  assert(rate > 0.0);
  // uniform() can return 0; 1-u is in (0, 1].
  return -std::log(1.0 - uniform()) / rate;
}

bool Rng::chance(double p) { return uniform() < p; }

Rng Rng::fork() { return Rng((*this)() ^ 0xD1B54A32D192ED03ULL); }

}  // namespace murphy
