#include "src/common/thread_pool.h"

#include <algorithm>

namespace murphy {

std::size_t resolve_num_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t num_workers) {
  workers_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::run_iterations() {
  // Claim-one-index scheduling: dynamic load balance without chunk tuning.
  // Iterations are independent by contract, so claim order is irrelevant to
  // the result.
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n_) return;
    try {
      (*body_)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!error_) error_ = std::current_exception();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    work_cv_.wait(lock, [&] {
      return stop_ || epoch_ != seen_epoch || !tasks_.empty();
    });
    if (stop_) return;  // queued tasks_ are abandoned here by contract
    if (epoch_ != seen_epoch) {
      // parallel_for batches outrank queued tasks.
      seen_epoch = epoch_;
      lock.unlock();
      run_iterations();
      lock.lock();
      if (--pending_ == 0) done_cv_.notify_one();
      continue;
    }
    std::function<void()> task = std::move(tasks_.front());
    tasks_.pop_front();
    ++tasks_running_;
    lock.unlock();
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> elock(mu_);
      if (!task_error_) task_error_ = std::current_exception();
    }
    lock.lock();
    if (--tasks_running_ == 0 && tasks_.empty()) drain_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    pending_ = workers_.size();
    ++epoch_;
  }
  work_cv_.notify_all();
  run_iterations();  // the caller is a full participant
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return pending_ == 0; });
  body_ = nullptr;
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    // Inline execution mirrors parallel_for's zero-worker contract; the
    // exception still surfaces at drain() so callers see one error policy.
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!task_error_) task_error_ = std::current_exception();
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [&] { return tasks_.empty() && tasks_running_ == 0; });
  if (task_error_) {
    std::exception_ptr e = task_error_;
    task_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void parallel_for(std::size_t num_threads, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  const std::size_t k = std::min(resolve_num_threads(num_threads),
                                 std::max<std::size_t>(n, 1));
  if (k <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  ThreadPool pool(k - 1);
  pool.parallel_for(n, body);
}

}  // namespace murphy
