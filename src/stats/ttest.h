// Welch's unequal-variance t-test, the statistical decision at the heart of
// Murphy's counterfactual inference: the sampled symptom values under the
// counterfactual root-cause value (d1) are compared with samples under the
// factual value (d2); a significantly lower d1 implicates the candidate.
#pragma once

#include <span>

namespace murphy::stats {

struct TTestResult {
  double t = 0.0;        // Welch t statistic (mean(x) - mean(y)) / se
  double dof = 0.0;      // Welch-Satterthwaite degrees of freedom
  double p_less = 1.0;   // one-sided p-value for H1: mean(x) < mean(y)
  double p_two_sided = 1.0;
};

// Total on all inputs — the output is always finite with p values in
// [0, 1] (DESIGN.md §8):
//  * both samples zero-variance: p = 1 when means are equal, p = 0/1 for
//    the appropriate direction otherwise;
//  * fewer than 2 elements on either side, or non-finite values anywhere:
//    the evidence-free result (t = 0, p_less = 0.5, p_two_sided = 1) —
//    neutral, so a degenerate sample can never implicate a candidate
//    (counter `stats.ttest_degenerate`).
[[nodiscard]] TTestResult welch_t_test(std::span<const double> x,
                                       std::span<const double> y);

// Student-t CDF at t with `dof` degrees of freedom (via regularized
// incomplete beta). Exposed for testing.
[[nodiscard]] double student_t_cdf(double t, double dof);

// Regularized incomplete beta function I_x(a, b) via continued fractions.
[[nodiscard]] double incomplete_beta(double a, double b, double x);

}  // namespace murphy::stats
