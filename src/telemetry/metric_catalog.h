// Metric kind interning and the catalog of well-known metric names.
//
// Metric kinds ("cpu_util", "rtt", ...) are interned to dense MetricKindId
// handles so the learning code can use flat arrays instead of string maps.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"

namespace murphy::telemetry {

class MetricCatalog {
 public:
  // Returns the id of `name`, interning it on first use.
  MetricKindId intern(std::string_view name);
  // Returns the id if known, invalid otherwise. Does not intern.
  [[nodiscard]] MetricKindId find(std::string_view name) const;
  [[nodiscard]] std::string_view name(MetricKindId id) const;
  [[nodiscard]] std::size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, MetricKindId> index_;
};

// Well-known metric names used throughout the repository. Matching the
// paper's table of example metrics per entity type (§2.1).
namespace metrics {
inline constexpr std::string_view kCpuUtil = "cpu_util";            // %
inline constexpr std::string_view kMemUtil = "mem_util";            // %
inline constexpr std::string_view kDiskIo = "disk_io_rate";         // MB/s
inline constexpr std::string_view kDiskUtil = "disk_util";          // %
inline constexpr std::string_view kNetTx = "net_tx_rate";           // MB/s
inline constexpr std::string_view kNetRx = "net_rx_rate";           // MB/s
inline constexpr std::string_view kPacketDrops = "packet_drops";    // %
inline constexpr std::string_view kLatency = "latency_ms";          // ms
inline constexpr std::string_view kRtt = "rtt_ms";                  // ms
inline constexpr std::string_view kThroughput = "throughput";       // MB/s
inline constexpr std::string_view kSessionCount = "session_count";  // count
inline constexpr std::string_view kRetransmitRatio = "retransmit_ratio";
inline constexpr std::string_view kBufferUtil = "peak_buffer_util";  // %
inline constexpr std::string_view kSpaceUtil = "space_util";         // %
inline constexpr std::string_view kRequestRate = "request_rate";     // req/s
inline constexpr std::string_view kErrorRate = "error_rate";         // %
}  // namespace metrics

}  // namespace murphy::telemetry
