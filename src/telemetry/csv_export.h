// CSV export of a MonitoringDb — entities, associations and metric series.
//
// The paper publishes its DeathStarBench trace data as a public dataset;
// this exporter produces the equivalent for any simulated environment so
// results can be inspected or re-analyzed outside this library. Three files
// are written: <prefix>_entities.csv, <prefix>_associations.csv and
// <prefix>_metrics.csv (long format: entity, metric, slice, value, valid).
#pragma once

#include <ostream>
#include <string>

#include "src/telemetry/monitoring_db.h"

namespace murphy::telemetry {

// Stream variants (unit-testable; no filesystem).
void export_entities_csv(const MonitoringDb& db, std::ostream& out);
void export_associations_csv(const MonitoringDb& db, std::ostream& out);
void export_metrics_csv(const MonitoringDb& db, std::ostream& out);

// Writes all three files under the given path prefix. Returns false if any
// file could not be opened.
[[nodiscard]] bool export_csv(const MonitoringDb& db,
                              const std::string& path_prefix);

}  // namespace murphy::telemetry
