#include "src/common/strings.h"

#include <cmath>
#include <cstdio>

namespace murphy {

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string format_double(double v, int decimals) {
  if (std::isnan(v)) return "nan";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string pad_right(std::string_view s, std::size_t width) {
  std::string out(s.substr(0, width));
  out.resize(width, ' ');
  return out;
}

std::string pad_left(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s.substr(0, width));
  std::string out(width - s.size(), ' ');
  out += s;
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace murphy
