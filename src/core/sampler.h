// The counterfactual Gibbs-variant sampler of §4.2 ("Inference algorithm").
//
// To test whether candidate entity A explains the symptom at entity D:
//  1. set A's driver metric to a counterfactual value 2 sigma toward normal;
//  2. resample every entity on the shortest-path subgraph T(A -> D) in
//     increasing distance from A, using the learned conditionals;
//  3. repeat step 2 for W rounds (Gibbs re-visits propagate effects around
//     cycles);
//  4. collect the resulting sample of D's symptom metric; repeat to build
//     distributions d1 (counterfactual start) and d2 (factual start);
//  5. a one-sided Welch t-test decides whether the counterfactual moved the
//     symptom toward normal — if so, A is a root cause.
#pragma once

#include <span>
#include <vector>

#include "src/common/rng.h"
#include "src/core/factor_model.h"
#include "src/core/metric_space.h"

namespace murphy::core {

struct SamplerOptions {
  std::size_t gibbs_rounds = 4;   // W of the paper
  std::size_t num_samples = 500;  // per side; the paper's prototype uses 5000
  double significance = 0.01;     // t-test alpha
  double counterfactual_sigmas = 2.0;
  // Extra path length admitted into the resampled subgraph T beyond the
  // shortest src->dst distance. Slack 2 includes the "sibling" entities (a
  // service's container, a VM's host) whose pinned values would otherwise
  // absorb the counterfactual through collinear features.
  std::size_t path_slack = 2;
  std::uint64_t seed = 1;
  // Opt-in vectorized inference (DESIGN.md §11). The num_samples independent
  // chains of one candidate are batched into SIMD-width lanes over a
  // structure-of-arrays state, consuming pre-filled Rng::fill_normal blocks
  // and the kernel's pre-divided weights. The contract is STATISTICAL
  // equivalence (same verdicts and rankings, score deltas indistinguishable
  // under a Welch t-test), not bitwise identity: draw order, rounding and
  // the normal generator all differ from the scalar golden path. Output is
  // still deterministic for a fixed (seed, options) at any thread count.
  // Candidates whose resample order touches a non-flattened conditional
  // (non-ridge model families) fall back to the scalar path per candidate.
  bool fast_inference = false;
};

struct CounterfactualVerdict {
  bool is_root_cause = false;
  double p_value = 1.0;
  double mean_factual = 0.0;        // mean of d2
  double mean_counterfactual = 0.0; // mean of d1
  // Work accounting for the observability layer (deterministic: a function
  // of the graph and options, not of scheduling).
  std::size_t path_len = 0;         // resampled subgraph size, incl. endpoints
  std::size_t node_resamples = 0;   // resample_node calls across both sides
  // Flattened-kernel multiply-add slots evaluated (w * c / s terms) across
  // both sides — the sampler's arithmetic volume, again deterministic.
  // Lane-batched fast-inference work counts IDENTICALLY: both modes resample
  // the same (sample, round, variable) grid, so the accounting is a function
  // of the request, never of the execution mode (regression-tested).
  std::size_t kernel_cells = 0;
  // True when the vectorized fast-inference kernel produced this verdict
  // (false in scalar mode and for per-candidate fallbacks), so audits record
  // which mode a verdict came from.
  bool fast_path = false;
};

class CounterfactualSampler {
 public:
  CounterfactualSampler(const graph::RelationshipGraph& graph,
                        const MetricSpace& space, const FactorSet& factors,
                        SamplerOptions opts);

  // Evaluates candidate node A (driver variable `a_var`) against symptom
  // variable `d_var`. `state` holds the current (incident-time) values;
  // `symptom_high` says whether D's problem is an abnormally HIGH value
  // (true) or LOW (false) — it sets the t-test direction.
  // This overload draws from the sampler's own stream, so back-to-back
  // evaluations depend on call order (legacy behaviour, fine serially).
  [[nodiscard]] CounterfactualVerdict evaluate(graph::NodeIndex a,
                                               VarIndex a_var,
                                               graph::NodeIndex d,
                                               VarIndex d_var,
                                               std::span<const double> state,
                                               bool symptom_high);

  // Precomputes the backward BFS distance map for symptom node `dst`, so
  // that every subsequent evaluate(..., d == dst, ...) builds its path
  // subgraph with a single bounded forward BFS instead of two full ones.
  // Call once per diagnosis, BEFORE the parallel candidate loop: evaluate()
  // only reads the prepared map. Evaluating against a different symptom node
  // falls back to the self-contained two-BFS path. Purely a work-saving
  // cache — verdicts are bitwise identical either way.
  void prepare(graph::NodeIndex dst);

  // Order-independent variant: the caller supplies the RNG (typically one
  // derived per candidate via mix_seed). Const and free of shared mutable
  // state, so many threads may evaluate concurrently on one sampler.
  [[nodiscard]] CounterfactualVerdict evaluate(graph::NodeIndex a,
                                               VarIndex a_var,
                                               graph::NodeIndex d,
                                               VarIndex d_var,
                                               std::span<const double> state,
                                               bool symptom_high,
                                               Rng& rng) const;

  // One resampling pass (steps 2-3): resample nodes of `path` (excluding the
  // first, which holds the pinned candidate value) for W rounds, returning
  // the final value of `d_var`. Exposed for the Fig. 8b cyclic-effects
  // experiment, which uses the raw resampler for multi-hop prediction.
  [[nodiscard]] double resample_path(std::span<const graph::NodeIndex> path,
                                     VarIndex d_var,
                                     std::vector<double>& state, Rng& rng,
                                     std::size_t gibbs_rounds) const;

 private:
  // Lane-batched Gibbs chains for one candidate (the fast path): packs the
  // resample order into SoA buffers once, then runs all num_samples chains
  // of the counterfactual side (pinned centered value `cent_a_cf`) into `d1`
  // and of the factual side into `d2`. Returns false — before consuming any
  // randomness — when some resampled conditional is not flattened, in which
  // case the caller falls back to the scalar loop.
  bool evaluate_fast(std::span<const VarIndex> order, VarIndex a_var,
                     VarIndex d_var, std::span<const double> cent0,
                     double cent_a_cf, Rng& rng, std::vector<double>& d1,
                     std::vector<double>& d2) const;

  const graph::RelationshipGraph& graph_;
  const MetricSpace& space_;
  const FactorSet& factors_;
  SamplerOptions opts_;
  Rng rng_;
  // Backward distance map from prepare(); read-only during evaluation.
  std::vector<std::size_t> dist_to_;
  graph::NodeIndex prepared_dst_ = graph::kUnreachable;
};

}  // namespace murphy::core
