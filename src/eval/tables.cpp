#include "src/eval/tables.h"

#include <algorithm>

#include "src/common/strings.h"

namespace murphy::eval {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += pad_right(row[c], widths[c]);
      out += c + 1 < row.size() ? "  " : "";
    }
    out += '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  out += std::string(total > 2 ? total - 2 : total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

}  // namespace murphy::eval
