// Tests for the Murphy core: thresholds, metric space, factor training,
// counterfactual sampling, candidate search, labeling/explanations and the
// end-to-end diagnoser on both microservice and enterprise scenarios.
#include <algorithm>
#include <cmath>
#include <limits>
#include <new>

#include <gtest/gtest.h>

#include "src/core/anomaly.h"
#include "src/core/batch.h"
#include "src/core/explain.h"
#include "src/core/murphy.h"
#include "src/core/sampler.h"
#include "src/emulation/scenarios.h"
#include "src/enterprise/incidents.h"
#include "src/telemetry/metric_catalog.h"
#include "src/stats/summary.h"

namespace murphy::core {
namespace {

namespace mk = telemetry::metrics;
using telemetry::EntityType;
using telemetry::MonitoringDb;
using telemetry::RelationKind;

TEST(Thresholds, PerKindRules) {
  const Thresholds t;
  EXPECT_TRUE(t.is_above(mk::kCpuUtil, 30.0));
  EXPECT_FALSE(t.is_above(mk::kCpuUtil, 20.0));
  EXPECT_TRUE(t.is_above(mk::kPacketDrops, 0.2));
  EXPECT_FALSE(t.is_above(mk::kPacketDrops, 0.05));
  EXPECT_TRUE(t.is_above(mk::kSessionCount, 60.0));
  EXPECT_TRUE(t.is_above(mk::kThroughput, 10.0));
  EXPECT_TRUE(t.is_above(mk::kLatency, 80.0));
  EXPECT_FALSE(t.is_above("unknown_metric", 1e9));
}

// A small chain A -> B -> C where B = 2A + noise, C = 3B + noise.
// Bidirectional edges make it cyclic, like real relationship graphs.
struct ChainFixture {
  MonitoringDb db;
  EntityId a, b, c;
  MetricKindId load;
  graph::RelationshipGraph graph;
  std::unique_ptr<MetricSpace> space;
  std::unique_ptr<FactorSet> factors;

  explicit ChainFixture(std::size_t slices = 200, double surge_at_end = 0.0) {
    a = db.add_entity(EntityType::kVm, "A");
    b = db.add_entity(EntityType::kVm, "B");
    c = db.add_entity(EntityType::kVm, "C");
    db.add_association(a, b, RelationKind::kGeneric);
    db.add_association(b, c, RelationKind::kGeneric);
    load = db.catalog().intern("cpu_util");
    db.metrics().set_axis(TimeAxis(0.0, 10.0, slices));

    Rng rng(77);
    std::vector<double> va(slices), vb(slices), vc(slices);
    for (std::size_t t = 0; t < slices; ++t) {
      double base = 5.0 + 3.0 * std::sin(0.07 * static_cast<double>(t)) +
                    rng.normal(0.0, 0.2);
      if (surge_at_end > 0.0 && t >= slices - slices / 10) base += surge_at_end;
      va[t] = base;
      vb[t] = 2.0 * va[t] + rng.normal(0.0, 0.3);
      vc[t] = 3.0 * vb[t] + rng.normal(0.0, 0.5);
    }
    db.metrics().put(a, load, va);
    db.metrics().put(b, load, vb);
    db.metrics().put(c, load, vc);

    const std::vector<EntityId> seeds{c};
    graph = graph::RelationshipGraph::build(db, seeds, 5);
    space = std::make_unique<MetricSpace>(db, graph);
    FactorTrainingOptions opts;
    factors = std::make_unique<FactorSet>(db, graph, *space, 0, slices, opts);
  }
};

TEST(MetricSpace, EnumeratesAllVariables) {
  ChainFixture f;
  EXPECT_EQ(f.space->size(), 3u);
  const auto v = f.space->find(f.b, f.load);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(f.space->var(*v).entity, f.b);
  EXPECT_FALSE(f.space->find(f.b, MetricKindId(99)).has_value());
}

TEST(MetricSpace, SnapshotReadsCurrentSlice) {
  ChainFixture f;
  const auto state = f.space->snapshot(f.db, 100);
  const auto va = f.space->find(f.a, f.load);
  const auto* ts = f.db.metrics().find(f.a, f.load);
  EXPECT_DOUBLE_EQ(state[*va], ts->value(100));
}

TEST(FactorModel, LearnsLinearNeighborRelationship) {
  ChainFixture f;
  const auto vb = *f.space->find(f.b, f.load);
  const auto va = *f.space->find(f.a, f.load);
  const auto vc = *f.space->find(f.c, f.load);
  auto state = f.space->snapshot(f.db, 150);

  // B's conditional shares weight between its collinear neighbors A and C;
  // set both coherently (B = 2A, C = 3B = 6A) and predict B ~ 2A.
  state[va] = 10.0;
  state[vc] = 60.0;
  const double pred = f.factors->conditional(vb).predict(state);
  EXPECT_NEAR(pred, 20.0, 2.5);
  state[va] = 4.0;
  state[vc] = 24.0;
  EXPECT_NEAR(f.factors->conditional(vb).predict(state), 8.0, 2.5);
}

TEST(FactorModel, ResidualSigmaIsSmallForCleanRelationship) {
  ChainFixture f;
  const auto vb = *f.space->find(f.b, f.load);
  EXPECT_LT(f.factors->conditional(vb).residual_sigma(), 1.5);
  EXPECT_GT(f.factors->conditional(vb).hist_sigma(), 2.0);  // marginal varies
}

TEST(FactorModel, HistoricalMomentsStored)  {
  ChainFixture f;
  const auto va = *f.space->find(f.a, f.load);
  EXPECT_NEAR(f.factors->conditional(va).hist_mean(), 5.0, 1.5);
}

TEST(FactorModel, ResampleNodeUpdatesAllItsMetrics) {
  ChainFixture f;
  const auto vb = *f.space->find(f.b, f.load);
  auto state = f.space->snapshot(f.db, 150);
  const auto va = *f.space->find(f.a, f.load);
  const auto vc = *f.space->find(f.c, f.load);
  // B's ridge conditional shares weight between its collinear neighbors A
  // and C (deliberately — see FactorTrainingOptions); move both coherently
  // (B = 2A, C = 3B) so the expected resample mean is well defined.
  state[va] = 12.0;
  state[vc] = 72.0;
  Rng rng(5);
  const auto node_b = *f.graph.index_of(f.b);
  stats::OnlineStats samples;
  for (int i = 0; i < 200; ++i) {
    auto s = state;
    f.factors->resample_node(node_b, *f.space, s, rng);
    samples.add(s[vb]);
  }
  EXPECT_NEAR(samples.mean(), 24.0, 2.5);
  EXPECT_GT(samples.stddev(), 0.05);  // it actually samples, not predicts
}

TEST(Sampler, CounterfactualPropagatesAcrossTwoHops) {
  // During a surge on A, counterfactualizing A back to normal should drop
  // C's sampled value: A is found to be a root cause of C's high metric.
  ChainFixture f(200, /*surge_at_end=*/15.0);
  const auto na = *f.graph.index_of(f.a);
  const auto nc = *f.graph.index_of(f.c);
  const auto va = *f.space->find(f.a, f.load);
  const auto vc = *f.space->find(f.c, f.load);
  const auto state = f.space->snapshot(f.db, 199);

  SamplerOptions opts;
  opts.num_samples = 300;
  CounterfactualSampler sampler(f.graph, *f.space, *f.factors, opts);
  const auto verdict =
      sampler.evaluate(na, va, nc, vc, state, /*symptom_high=*/true);
  EXPECT_TRUE(verdict.is_root_cause);
  EXPECT_LT(verdict.mean_counterfactual, verdict.mean_factual - 1.0);
}

TEST(Sampler, DisconnectedEntityIsNeverRootCause) {
  // An entity with no path to the symptom cannot be a root cause: the
  // sampler must refuse without sampling. (Reverse-direction influence
  // through bidirectional edges, by contrast, is real in an MRF — the paper
  // is explicit that candidates are correlated, not proven causal.)
  MonitoringDb db;
  const auto a = db.add_entity(EntityType::kVm, "a");
  const auto b = db.add_entity(EntityType::kVm, "b");
  const auto d = db.add_entity(EntityType::kVm, "d");  // isolated
  db.add_association(a, b, RelationKind::kGeneric);
  const auto load = db.catalog().intern("cpu_util");
  db.metrics().set_axis(TimeAxis(0.0, 10.0, 50));
  Rng rng(4);
  for (const auto e : {a, b, d}) {
    std::vector<double> v(50);
    for (auto& x : v) x = rng.normal(10.0, 1.0);
    db.metrics().put(e, load, v);
  }
  const std::vector<EntityId> seeds{a, d};
  const auto g = graph::RelationshipGraph::build(db, seeds, 3);
  ASSERT_TRUE(g.index_of(d).has_value());
  MetricSpace space(db, g);
  FactorTrainingOptions topts;
  FactorSet factors(db, g, space, 0, 50, topts);
  const auto state = space.snapshot(db, 49);

  SamplerOptions opts;
  opts.num_samples = 50;
  CounterfactualSampler sampler(g, space, factors, opts);
  const auto verdict = sampler.evaluate(
      *g.index_of(d), *space.find(d, load), *g.index_of(a),
      *space.find(a, load), state, /*symptom_high=*/true);
  EXPECT_FALSE(verdict.is_root_cause);
  EXPECT_DOUBLE_EQ(verdict.p_value, 1.0);
}

TEST(Anomaly, ScoresScaleWithDeviation) {
  ChainFixture f(200, 15.0);
  const auto va = *f.space->find(f.a, f.load);
  const auto state = f.space->snapshot(f.db, 199);
  const double high = variable_anomaly(*f.factors, va, state[va]);
  const auto calm_state = f.space->snapshot(f.db, 100);
  const double low = variable_anomaly(*f.factors, va, calm_state[va]);
  EXPECT_GT(high, low + 1.0);
}

TEST(Anomaly, NodeAnomalyPicksDriverAndDirection) {
  ChainFixture f(200, 15.0);
  const auto na = *f.graph.index_of(f.a);
  const auto state = f.space->snapshot(f.db, 199);
  const auto anomaly = node_anomaly(*f.factors, *f.space, na, state);
  EXPECT_TRUE(anomaly.high);
  EXPECT_EQ(f.space->var(anomaly.driver).entity, f.a);
}

TEST(CandidateSearch, PrunesCalmBranches) {
  ChainFixture f(200, 15.0);
  const auto nc = *f.graph.index_of(f.c);
  const auto state = f.space->snapshot(f.db, 199);
  CandidateSearchOptions opts;
  const auto candidates = candidate_search(f.db, f.graph, *f.space,
                                           *f.factors, state, nc, opts);
  // All three entities are implicated during the surge.
  EXPECT_EQ(candidates.size(), 3u);
  // In the calm slice only the symptom node remains.
  const auto calm = f.space->snapshot(f.db, 100);
  const auto calm_candidates = candidate_search(f.db, f.graph, *f.space,
                                                *f.factors, calm, nc, opts);
  EXPECT_EQ(calm_candidates.size(), 1u);
  EXPECT_EQ(calm_candidates[0], nc);
}

TEST(Explain, StateMachineRules) {
  using L = EntityLabel;
  EXPECT_TRUE(can_cause(L::kHeavyHitter, L::kHighDropRate));
  EXPECT_TRUE(can_cause(L::kHeavyHitter, L::kDegraded));
  EXPECT_TRUE(can_cause(L::kHeavyHitter, L::kHeavyHitter));
  EXPECT_TRUE(can_cause(L::kHighDropRate, L::kDegraded));
  EXPECT_TRUE(can_cause(L::kDegraded, L::kNonFunctional));
  EXPECT_FALSE(can_cause(L::kOkay, L::kDegraded));
  EXPECT_FALSE(can_cause(L::kDegraded, L::kHeavyHitter));
  EXPECT_FALSE(can_cause(L::kHighDropRate, L::kHeavyHitter));
}

TEST(Explain, LabelsFromThresholdsAndCollapse) {
  ChainFixture f(200, 40.0);  // big surge -> heavy hitter labels
  const auto state = f.space->snapshot(f.db, 199);
  const Thresholds th;
  const auto na = *f.graph.index_of(f.a);
  EXPECT_EQ(label_node(f.db, *f.space, *f.factors, na, state, th),
            EntityLabel::kHeavyHitter);
  const auto calm = f.space->snapshot(f.db, 100);
  EXPECT_EQ(label_node(f.db, *f.space, *f.factors, na, calm, th),
            EntityLabel::kOkay);
}

TEST(Explain, PathRespectsLabelsWhenPossible) {
  ChainFixture f(200, 40.0);
  const auto state = f.space->snapshot(f.db, 199);
  const Thresholds th;
  std::vector<EntityLabel> labels(f.graph.node_count());
  for (graph::NodeIndex n = 0; n < f.graph.node_count(); ++n)
    labels[n] = label_node(f.db, *f.space, *f.factors, n, state, th);
  const auto na = *f.graph.index_of(f.a);
  const auto nc = *f.graph.index_of(f.c);
  const auto path = explanation_path(f.graph, labels, na, nc);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path.front(), na);
  EXPECT_EQ(path.back(), nc);
  const auto text = render_explanation(f.db, f.graph, labels, path);
  EXPECT_NE(text.find("'A'"), std::string::npos);
  EXPECT_NE(text.find("->"), std::string::npos);
}

// --- end-to-end -------------------------------------------------------------

TEST(MurphyEndToEnd, ChainRootCauseRankedFirst) {
  ChainFixture f(200, 15.0);
  MurphyOptions mopts;
  mopts.sampler.num_samples = 200;
  MurphyDiagnoser murphy(mopts);
  DiagnosisRequest req;
  req.db = &f.db;
  req.symptom_entity = f.c;
  req.symptom_metric = "cpu_util";
  req.now = 199;
  req.train_begin = 0;
  req.train_end = 200;
  const auto result = murphy.diagnose(req);
  ASSERT_FALSE(result.causes.empty());
  EXPECT_GE(result.rank_of(f.a), 1u);
  EXPECT_LE(result.rank_of(f.a), 3u);
  EXPECT_EQ(result.causes.size(), result.explanations.size());
}

TEST(MurphyEndToEnd, InterferenceScenario) {
  emulation::InterferenceOptions iopts;
  iopts.slices = 240;
  iopts.ramp_at = 180;
  iopts.seed = 3;
  auto c = emulation::make_interference_case(iopts);

  MurphyOptions mopts;
  mopts.sampler.num_samples = 150;
  MurphyDiagnoser murphy(mopts);
  DiagnosisRequest req;
  req.db = &c.db;
  req.symptom_entity = c.symptom_entity;
  req.symptom_metric = c.symptom_metric;
  req.now = 239;
  req.train_begin = 0;
  req.train_end = 240;
  const auto result = murphy.diagnose(req);
  const auto rank = result.rank_of(c.root_cause);
  ASSERT_GE(rank, 1u) << "root cause not produced";
  EXPECT_LE(rank, 5u);
}

TEST(MurphyEndToEnd, EnterpriseCrawlerIncident) {
  enterprise::IncidentDatasetOptions opts;
  opts.topology.num_apps = 6;
  opts.topology.hosts = 8;
  opts.topology.tors = 2;
  opts.topology.ports_per_tor = 8;
  opts.topology.datastores = 3;
  opts.dynamics.slices = 168;
  const auto inc = enterprise::make_incident(2, opts);

  MurphyOptions mopts;
  mopts.sampler.num_samples = 150;
  MurphyDiagnoser murphy(mopts);
  DiagnosisRequest req;
  req.db = &inc.topo.db;
  req.symptom_entity = inc.symptom_entity;
  req.symptom_metric = inc.symptom_metric;
  req.now = inc.incident_end - 1;
  req.train_begin = 0;
  req.train_end = inc.incident_end;
  const auto result = murphy.diagnose(req);
  const auto rank = result.rank_of(inc.ground_truth[0]);
  ASSERT_GE(rank, 1u) << "crawler flow not produced";
  EXPECT_LE(rank, 5u);
}

TEST(MurphyEndToEnd, DeterministicAcrossRuns) {
  ChainFixture f(200, 15.0);
  MurphyOptions mopts;
  mopts.sampler.num_samples = 100;
  DiagnosisRequest req;
  req.db = &f.db;
  req.symptom_entity = f.c;
  req.symptom_metric = "cpu_util";
  req.now = 199;
  req.train_begin = 0;
  req.train_end = 200;
  MurphyDiagnoser m1(mopts), m2(mopts);
  const auto r1 = m1.diagnose(req);
  const auto r2 = m2.diagnose(req);
  ASSERT_EQ(r1.causes.size(), r2.causes.size());
  for (std::size_t i = 0; i < r1.causes.size(); ++i)
    EXPECT_EQ(r1.causes[i].entity, r2.causes[i].entity);
}

TEST(MurphyEndToEnd, HandlesMissingHistoryGracefully) {
  // Invalidate most of A's history; Murphy should still run (placeholder
  // defaults per §4.2 "Edge cases") and produce some result.
  ChainFixture f(200, 15.0);
  auto* ts = f.db.metrics().find_mutable(f.a, f.load);
  ts->invalidate_before(150);
  MurphyOptions mopts;
  mopts.sampler.num_samples = 100;
  MurphyDiagnoser murphy(mopts);
  DiagnosisRequest req;
  req.db = &f.db;
  req.symptom_entity = f.c;
  req.symptom_metric = "cpu_util";
  req.now = 199;
  req.train_begin = 0;
  req.train_end = 200;
  const auto result = murphy.diagnose(req);
  EXPECT_FALSE(result.causes.empty());
}

// --- recent-config-change window --------------------------------------------

TEST(ConfigWindow, CoversLastTenthOfTrainingRange) {
  // span 200 -> window 20 slices: [179, now].
  EXPECT_EQ(recent_config_window_begin(0, 200, 199), 179u);
  // A training range that does not start at zero has the same window length.
  EXPECT_EQ(recent_config_window_begin(100, 300, 299), 279u);
}

TEST(ConfigWindow, ClampsWhenNowPredatesOneWindowLength) {
  // now < span/10 must clamp to slice 0, never wrap the unsigned arithmetic.
  EXPECT_EQ(recent_config_window_begin(0, 200, 5), 0u);
  EXPECT_EQ(recent_config_window_begin(0, 200, 20), 0u);   // now == window
  EXPECT_EQ(recent_config_window_begin(0, 200, 21), 1u);
  EXPECT_EQ(recent_config_window_begin(0, 200, 0), 0u);
}

TEST(ConfigWindow, ShortTrainingRangeStillLooksBack) {
  // span < 10 used to yield a zero-length window ([now, now]) that hid every
  // earlier change; the window floor is one slice.
  EXPECT_EQ(recent_config_window_begin(0, 5, 4), 3u);
  EXPECT_EQ(recent_config_window_begin(0, 0, 4), 3u);  // degenerate range
}

TEST(ConfigWindow, DiagnosisSurfacesRecentChangesOnly) {
  ChainFixture f(200, 15.0);
  f.db.config_events().record(telemetry::ConfigEvent{
      telemetry::ConfigEventKind::kResourcesResized, f.a, 195, "recent"});
  f.db.config_events().record(telemetry::ConfigEvent{
      telemetry::ConfigEventKind::kConfigPushed, f.b, 20, "ancient"});
  MurphyOptions mopts;
  mopts.sampler.num_samples = 60;
  MurphyDiagnoser murphy(mopts);
  DiagnosisRequest req;
  req.db = &f.db;
  req.symptom_entity = f.c;
  req.symptom_metric = "cpu_util";
  req.now = 199;
  req.train_begin = 0;
  req.train_end = 200;
  const auto result = murphy.diagnose(req);
  ASSERT_EQ(result.recent_config_changes.size(), 1u);
  EXPECT_EQ(result.recent_config_changes[0].entity, f.a);
  EXPECT_EQ(result.recent_config_changes[0].at, 195u);
}

// --- malformed-telemetry hardening (DESIGN.md §8) ---------------------------

TEST(FactorModel, PoisonedSliceNoLongerNaNsEveryScore) {
  // The regression the ingest/kernel guards exist for: before them, one raw
  // NaN slice in one series flowed into WindowStats moments and the ridge
  // Gram matrix, turning EVERY candidate's score into NaN. Now it degrades
  // to a missing value and the diagnosis stays finite and non-empty.
  ChainFixture f(200, 15.0);
  auto* ts = f.db.metrics().find_mutable(f.a, f.load);
  ts->set(60, std::numeric_limits<double>::quiet_NaN());
  ts->set(61, std::numeric_limits<double>::infinity());

  // Kernel level: retrained conditionals stay finite...
  FactorTrainingOptions topts;
  const FactorSet factors(f.db, f.graph, *f.space, 0, 200, topts);
  const auto state = f.space->snapshot(f.db, 150);
  for (VarIndex v = 0; v < f.space->size(); ++v) {
    EXPECT_TRUE(std::isfinite(factors.conditional(v).predict(state))) << v;
    EXPECT_TRUE(std::isfinite(factors.conditional(v).hist_mean())) << v;
  }

  // ...and so does the end-to-end ranking.
  MurphyOptions mopts;
  mopts.sampler.num_samples = 60;
  MurphyDiagnoser murphy(mopts);
  DiagnosisRequest req;
  req.db = &f.db;
  req.symptom_entity = f.c;
  req.symptom_metric = "cpu_util";
  req.now = 199;
  req.train_begin = 0;
  req.train_end = 200;
  const auto result = murphy.diagnose(req);
  EXPECT_FALSE(result.causes.empty());
  for (const auto& cause : result.causes)
    EXPECT_TRUE(std::isfinite(cause.score));
}

TEST(FactorModel, DegenerateTrainingWindowsAreDefined) {
  ChainFixture f(200, 15.0);
  const auto state = f.space->snapshot(f.db, 199);
  FactorTrainingOptions topts;
  // Empty, single-slice and inverted (clamped-to-empty) windows must train
  // flat-but-finite conditionals instead of asserting or dividing by zero.
  struct { TimeIndex begin, end; } windows[] = {{50, 50}, {50, 51}, {150, 50}};
  for (const auto [begin, end] : windows) {
    SCOPED_TRACE(std::to_string(begin) + ".." + std::to_string(end));
    const FactorSet factors(f.db, f.graph, *f.space, begin, end, topts);
    for (VarIndex v = 0; v < f.space->size(); ++v) {
      EXPECT_TRUE(std::isfinite(factors.conditional(v).predict(state)));
      EXPECT_TRUE(std::isfinite(factors.conditional(v).hist_sigma()));
    }
  }
}

TEST(MurphyEndToEnd, EmptyTrainingWindowProducesFiniteResult) {
  ChainFixture f(200, 15.0);
  MurphyOptions mopts;
  mopts.sampler.num_samples = 40;
  MurphyDiagnoser murphy(mopts);
  DiagnosisRequest req;
  req.db = &f.db;
  req.symptom_entity = f.c;
  req.symptom_metric = "cpu_util";
  req.now = 199;
  req.train_begin = 199;
  req.train_end = 199;  // no history at all
  const auto result = murphy.diagnose(req);
  for (const auto& cause : result.causes)
    EXPECT_TRUE(std::isfinite(cause.score));
}

namespace {

// Chain db for the ABA test: identical structure and mutation sequence
// (hence identical data_version), different payload values.
EntityId fill_chain_db(telemetry::MonitoringDb& db, double slope) {
  const auto a = db.add_entity(EntityType::kVm, "A");
  const auto b = db.add_entity(EntityType::kVm, "B");
  const auto c = db.add_entity(EntityType::kVm, "C");
  db.add_association(a, b, RelationKind::kGeneric);
  db.add_association(b, c, RelationKind::kGeneric);
  const auto load = db.catalog().intern("cpu_util");
  constexpr std::size_t kSlices = 100;
  db.metrics().set_axis(TimeAxis(0.0, 10.0, kSlices));
  Rng rng(5);
  std::vector<double> va(kSlices), vb(kSlices), vc(kSlices);
  for (std::size_t t = 0; t < kSlices; ++t) {
    va[t] = 5.0 + 2.0 * std::sin(0.1 * static_cast<double>(t)) +
            rng.normal(0.0, 0.2) + (t + 10 >= kSlices ? 8.0 : 0.0);
    vb[t] = slope * va[t] + rng.normal(0.0, 0.3);
    vc[t] = 1.5 * vb[t] + rng.normal(0.0, 0.3);
  }
  db.metrics().put(a, load, va);
  db.metrics().put(b, load, vb);
  db.metrics().put(c, load, vc);
  return c;
}

}  // namespace

TEST(FactorCache, SameStorageDbWithEqualVersionIsNotAnAbaHit) {
  // The classic ABA: db1 is diagnosed (warming the BatchDiagnoser's
  // persistent factor cache), destroyed, and db2 is constructed at the SAME
  // storage with the same structure — so the address matches and
  // data_version coincides — but different metric values. An address-based
  // fingerprint would serve db1's stale factors for db2; the process-unique
  // db uid must force a retrain instead.
  BatchOptions bopts;
  bopts.murphy.sampler.num_samples = 40;
  bopts.murphy.num_threads = 1;
  BatchDiagnoser batch(bopts);

  alignas(telemetry::MonitoringDb) unsigned char
      storage[sizeof(telemetry::MonitoringDb)];
  auto* db1 = new (storage) telemetry::MonitoringDb();
  const EntityId symptom1 = fill_chain_db(*db1, 2.0);
  const std::vector<Symptom> symptoms{Symptom{symptom1, "cpu_util", 0.0, 5.0}};
  (void)batch.diagnose_symptoms(*db1, symptoms, 99, 0, 100);
  const std::uint64_t version1 = db1->data_version();
  db1->~MonitoringDb();

  auto* db2 = new (storage) telemetry::MonitoringDb();
  const EntityId symptom2 = fill_chain_db(*db2, -1.5);
  ASSERT_EQ(symptom2, symptom1);
  // The ABA preconditions hold: same storage, coincidentally equal version.
  ASSERT_EQ(db2->data_version(), version1);

  const auto possibly_stale =
      batch.diagnose_symptoms(*db2, symptoms, 99, 0, 100);
  BatchDiagnoser cold(bopts);  // no cache to poison: the ground truth
  const auto expected = cold.diagnose_symptoms(*db2, symptoms, 99, 0, 100);

  ASSERT_EQ(possibly_stale.merged.size(), expected.merged.size());
  for (std::size_t i = 0; i < expected.merged.size(); ++i) {
    EXPECT_EQ(possibly_stale.merged[i].entity, expected.merged[i].entity);
    EXPECT_EQ(possibly_stale.merged[i].score, expected.merged[i].score);
  }
  db2->~MonitoringDb();
}

}  // namespace
}  // namespace murphy::core
