// Minimal JSON utilities for the observability layer.
//
// The tracer, metrics registry and audit trail all emit JSON (Chrome
// trace-event files, metrics snapshots, JSONL audit records), and the test
// suite must verify those emissions parse back. Rather than pull in a JSON
// dependency, this header provides the two small pieces we need: an escaping
// writer with *deterministic* number formatting (every double is printed
// with "%.17g", enough digits to round-trip bit-exactly, so identical inputs
// yield byte-identical output on every platform/thread-count), and a tiny
// recursive-descent parser sufficient for our own documents.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace murphy::obs {

// Appends `s` to `out` as a quoted JSON string (escapes quotes, backslashes
// and control characters).
void json_append_escaped(std::string& out, std::string_view s);

// Formats a double with enough precision to round-trip ("%.17g"), emitting
// "null" for non-finite values (JSON has no NaN/Inf).
[[nodiscard]] std::string json_number(double v);
[[nodiscard]] std::string json_number(std::uint64_t v);
[[nodiscard]] std::string json_number(std::int64_t v);

// A parsed JSON value. Object keys are kept in a sorted map — fine for
// verification, not a general-purpose DOM.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  // Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
};

// Parses one JSON document. Returns false (and sets *error when non-null)
// on malformed input or trailing garbage.
[[nodiscard]] bool json_parse(std::string_view text, JsonValue& out,
                              std::string* error = nullptr);

}  // namespace murphy::obs
