// Tests for the enterprise substrate: topology invariants, dynamic-model
// couplings (including the cyclic host feedback), the 13-incident dataset
// and the large metrics dataset.
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "src/enterprise/incidents.h"
#include "src/enterprise/metrics_dataset.h"
#include "src/graph/relationship_graph.h"
#include "src/stats/correlation.h"
#include "src/stats/summary.h"

namespace murphy::enterprise {
namespace {

namespace mk = telemetry::metrics;
using telemetry::EntityType;

TopologyOptions small_topology() {
  TopologyOptions o;
  o.num_apps = 6;
  o.hosts = 8;
  o.tors = 2;
  o.ports_per_tor = 8;
  o.datastores = 3;
  o.seed = 42;
  return o;
}

TEST(Topology, StructuralInvariants) {
  const auto topo = generate_topology(small_topology());
  EXPECT_EQ(topo.hosts.size(), 8u);
  EXPECT_EQ(topo.tors.size(), 2u);
  EXPECT_EQ(topo.switch_ports.size(), 16u);
  EXPECT_EQ(topo.apps.size(), 6u);
  EXPECT_EQ(topo.vms.size(), topo.vm_vnics.size());
  EXPECT_EQ(topo.vms.size(), topo.vm_host.size());
  for (const std::size_t h : topo.vm_host) EXPECT_LT(h, topo.hosts.size());
  for (const auto& f : topo.flows) {
    EXPECT_LT(f.src_vm, topo.vms.size());
    EXPECT_LT(f.dst_vm, topo.vms.size());
    EXPECT_GT(f.weight, 0.0);
  }
  // Every app has at least one VM in each tier list.
  for (const auto& tier : topo.app_tiers) {
    EXPECT_FALSE(tier.web.empty());
    EXPECT_FALSE(tier.app.empty());
    EXPECT_FALSE(tier.db.empty());
  }
}

TEST(Topology, VmsOfAppAndFlowsOfVm) {
  const auto topo = generate_topology(small_topology());
  const auto vms = topo.vms_of_app(topo.apps[0]);
  EXPECT_GE(vms.size(), 4u);
  for (const std::size_t v : vms) EXPECT_EQ(topo.vm_app[v], topo.apps[0]);
  if (!topo.flows.empty()) {
    const auto fs = topo.flows_of_vm(topo.flows[0].src_vm);
    EXPECT_FALSE(fs.empty());
  }
}

TEST(Topology, RelationshipGraphIsCyclicLikeTheProduction) {
  auto topo = generate_topology(small_topology());
  DynamicsOptions dopt;
  dopt.slices = 48;
  generate_dynamics(topo, {}, dopt);
  const std::vector<EntityId> seeds = {topo.vms[0]};
  const auto g = graph::RelationshipGraph::build(topo.db, seeds, 4);
  EXPECT_FALSE(g.is_dag());
  EXPECT_GT(g.count_2cycles(), 10u);
  EXPECT_GT(g.count_3cycles(), 0u);
}

class DynamicsTest : public ::testing::Test {
 protected:
  static Topology run(const std::vector<Perturbation>& perturbations,
                      std::size_t slices = 96) {
    auto topo = generate_topology(small_topology());
    DynamicsOptions dopt;
    dopt.slices = slices;
    dopt.seed = 9;
    generate_dynamics(topo, perturbations, dopt);
    return topo;
  }

  static std::vector<double> series(const Topology& topo, EntityId e,
                                    std::string_view metric) {
    const auto* ts =
        topo.db.metrics().find(e, topo.db.catalog().find(metric));
    EXPECT_NE(ts, nullptr);
    return ts ? std::vector<double>(ts->values().begin(), ts->values().end())
              : std::vector<double>{};
  }
};

TEST_F(DynamicsTest, EverySeriesPopulatedAndFinite) {
  const auto topo = run({});
  EXPECT_GT(topo.db.metrics().series_count(), 100u);
  const auto cpu = series(topo, topo.vms[0], mk::kCpuUtil);
  ASSERT_EQ(cpu.size(), 96u);
  for (const double v : cpu) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 100.0);
  }
}

TEST_F(DynamicsTest, FlowSurgeRaisesDestVmCpu) {
  // Surge flow 0 in the second half; dst VM CPU must jump.
  auto topo0 = generate_topology(small_topology());
  const std::size_t dst = topo0.flows[0].dst_vm;
  std::vector<Perturbation> p{
      {PerturbationKind::kFlowSurge, 0, 48, 96, 10.0}};
  const auto topo = run(p);
  const auto cpu = series(topo, topo.vms[dst], mk::kCpuUtil);
  const double before = stats::mean(std::span(cpu).subspan(0, 48));
  const double during = stats::mean(std::span(cpu).subspan(48, 48));
  EXPECT_GT(during, before + 5.0);
  const auto thr = series(topo, topo.flows[0].id, mk::kThroughput);
  EXPECT_GT(stats::mean(std::span(thr).subspan(48, 48)),
            stats::mean(std::span(thr).subspan(0, 48)) * 4.0);
}

TEST_F(DynamicsTest, HostOverloadBackPressuresColocatedVms) {
  auto topo0 = generate_topology(small_topology());
  // Pick a host with at least 2 VMs.
  std::size_t host = 0;
  for (std::size_t h = 0; h < topo0.hosts.size(); ++h) {
    std::size_t count = 0;
    for (const std::size_t vh : topo0.vm_host) count += (vh == h);
    if (count >= 2) {
      host = h;
      break;
    }
  }
  std::vector<Perturbation> p{
      {PerturbationKind::kHostOverload, host, 48, 96, 70.0}};
  const auto topo = run(p);
  // Every VM on the host sees elevated CPU during the overload.
  for (std::size_t v = 0; v < topo.vms.size(); ++v) {
    if (topo.vm_host[v] != host) continue;
    const auto cpu = series(topo, topo.vms[v], mk::kCpuUtil);
    const double before = stats::mean(std::span(cpu).subspan(0, 48));
    const double during = stats::mean(std::span(cpu).subspan(48, 48));
    EXPECT_GT(during, before * 1.1) << "vm " << v;
  }
  const auto hcpu = series(topo, topo.hosts[host], mk::kCpuUtil);
  EXPECT_GT(stats::mean(std::span(hcpu).subspan(48, 48)), 60.0);
}

TEST_F(DynamicsTest, PortCongestionInflatesRttAndDrops) {
  auto topo0 = generate_topology(small_topology());
  const std::size_t port = topo0.host_tor_port[topo0.vm_host[0]];
  std::vector<Perturbation> p{
      {PerturbationKind::kPortCongestion, port, 48, 96, 950.0}};
  const auto topo = run(p);
  const auto drops = series(topo, topo.switch_ports[port], mk::kPacketDrops);
  EXPECT_GT(stats::mean(std::span(drops).subspan(48, 48)),
            stats::mean(std::span(drops).subspan(0, 48)) + 0.1);
  // Some flow whose endpoint sits behind the port must see RTT inflation.
  bool rtt_moved = false;
  for (const auto& f : topo.flows) {
    if (topo.host_tor_port[topo.vm_host[f.dst_vm]] != port) continue;
    const auto rtt = series(topo, f.id, mk::kRtt);
    if (stats::mean(std::span(rtt).subspan(48, 48)) >
        stats::mean(std::span(rtt).subspan(0, 48)) * 1.5)
      rtt_moved = true;
  }
  EXPECT_TRUE(rtt_moved);
}

TEST_F(DynamicsTest, VmCrashZeroesCpuAndItsFlows) {
  std::vector<Perturbation> p{{PerturbationKind::kVmCrash, 0, 48, 96, 1.0}};
  const auto topo = run(p);
  const auto cpu = series(topo, topo.vms[0], mk::kCpuUtil);
  EXPECT_LT(stats::mean(std::span(cpu).subspan(48, 48)), 1.0);
  for (const std::size_t f : topo.flows_of_vm(0)) {
    const auto thr = series(topo, topo.flows[f].id, mk::kThroughput);
    EXPECT_LT(stats::mean(std::span(thr).subspan(48, 48)), 0.5);
  }
}

TEST_F(DynamicsTest, MemLeakGrowsAcrossWindow) {
  std::vector<Perturbation> p{{PerturbationKind::kVmMemLeak, 1, 48, 96, 50.0}};
  const auto topo = run(p);
  const auto memv = series(topo, topo.vms[1], mk::kMemUtil);
  const double early = stats::mean(std::span(memv).subspan(48, 12));
  const double late = stats::mean(std::span(memv).subspan(84, 12));
  EXPECT_GT(late, early + 15.0);
}

TEST_F(DynamicsTest, CyclicCouplingVisibleInCorrelations) {
  // Two VMs on the same host should have correlated CPU when the host is
  // driven into contention — evidence of the v1 -> host -> v2 channel.
  auto topo0 = generate_topology(small_topology());
  std::size_t host = SIZE_MAX, v1 = 0, v2 = 0;
  for (std::size_t h = 0; h < topo0.hosts.size() && host == SIZE_MAX; ++h) {
    std::vector<std::size_t> on;
    for (std::size_t v = 0; v < topo0.vms.size(); ++v)
      if (topo0.vm_host[v] == h) on.push_back(v);
    if (on.size() >= 2) {
      host = h;
      v1 = on[0];
      v2 = on[1];
    }
  }
  ASSERT_NE(host, SIZE_MAX);
  // Strong periodic overload on the host.
  std::vector<Perturbation> p;
  for (TimeIndex t = 10; t + 6 < 96; t += 16)
    p.push_back({PerturbationKind::kHostOverload, host, t, t + 6, 80.0});
  const auto topo = run(p);
  const auto c1 = series(topo, topo.vms[v1], mk::kCpuUtil);
  const auto c2 = series(topo, topo.vms[v2], mk::kCpuUtil);
  EXPECT_GT(stats::pearson(c1, c2), 0.3);
}

TEST(Incidents, DatasetHasThirteenWellFormedIncidents) {
  IncidentDatasetOptions opts;
  opts.topology = small_topology();
  opts.dynamics.slices = 96;
  const auto dataset = make_incident_dataset(opts);
  ASSERT_EQ(dataset.size(), 13u);
  std::set<int> numbers;
  int calibration = 0;
  for (const auto& inc : dataset) {
    numbers.insert(inc.number);
    calibration += inc.calibration ? 1 : 0;
    EXPECT_TRUE(inc.symptom_entity.valid()) << inc.number;
    EXPECT_FALSE(inc.ground_truth.empty()) << inc.number;
    EXPECT_FALSE(inc.symptom_metric.empty()) << inc.number;
    EXPECT_GT(inc.incident_start, 0u);
    EXPECT_GT(inc.topo.db.metrics().series_count(), 0u);
    // Symptom metric exists for the symptom entity.
    const auto kind = inc.topo.db.catalog().find(inc.symptom_metric);
    ASSERT_TRUE(kind.valid()) << inc.number;
    EXPECT_NE(inc.topo.db.metrics().find(inc.symptom_entity, kind), nullptr)
        << inc.number;
  }
  EXPECT_EQ(numbers.size(), 13u);
  EXPECT_EQ(calibration, 2);  // incidents 2 and 13
}

TEST(Incidents, SymptomActuallyMoves) {
  IncidentDatasetOptions opts;
  opts.topology = small_topology();
  opts.dynamics.slices = 96;
  for (const int n : {2, 7, 9, 13}) {
    const auto inc = make_incident(n, opts);
    const auto kind = inc.topo.db.catalog().find(inc.symptom_metric);
    const auto* ts = inc.topo.db.metrics().find(inc.symptom_entity, kind);
    ASSERT_NE(ts, nullptr);
    const auto before = ts->window(0, inc.incident_start);
    const auto during =
        ts->window(inc.incident_start, inc.incident_end);
    const double mu = stats::mean(before);
    const double sd = std::max(stats::stddev(before), 1e-3);
    EXPECT_GT(stats::mean(during), mu + 2.0 * sd) << "incident " << n;
  }
}

TEST(Incidents, CrawlerIncidentGroundTruthIsAFlow) {
  IncidentDatasetOptions opts;
  opts.topology = small_topology();
  opts.dynamics.slices = 96;
  const auto inc = make_incident(2, opts);
  ASSERT_EQ(inc.ground_truth.size(), 1u);
  EXPECT_EQ(inc.topo.db.entity(inc.ground_truth[0]).type, EntityType::kFlow);
  EXPECT_TRUE(inc.calibration);
  // Symptom is backend CPU, per Fig. 1.
  EXPECT_EQ(inc.symptom_metric, mk::kCpuUtil);
}

TEST(Incidents, Incident10GroundTruthIsOperatorDecision) {
  IncidentDatasetOptions opts;
  opts.topology = small_topology();
  opts.dynamics.slices = 96;
  const auto inc = make_incident(10, opts);
  // Injected = flows, ground truth = the rebooted VMs.
  for (const auto e : inc.ground_truth)
    EXPECT_EQ(inc.topo.db.entity(e).type, EntityType::kVm);
  bool injected_flow = false;
  for (const auto e : inc.injected)
    injected_flow |= inc.topo.db.entity(e).type == EntityType::kFlow;
  EXPECT_TRUE(injected_flow);
}

TEST(MetricsDataset, ScaledDownDatasetIsConsistent) {
  MetricsDatasetOptions opts;
  opts.scale = 0.05;  // ~15 apps for test speed
  opts.slices = 64;
  const auto topo = make_metrics_dataset(opts);
  EXPECT_GE(topo.apps.size(), 10u);
  EXPECT_GT(topo.entity_count(), 300u);
  EXPECT_EQ(topo.db.metrics().axis().size(), 64u);
  // Sanity: a random VM has all four metrics.
  EXPECT_EQ(topo.db.metrics().kinds_of(topo.vms[0]).size(), 4u);
}

TEST(MetricsDataset, FullScaleCensusMatchesPaper) {
  // Only the topology (not the week of dynamics) to keep the test fast.
  TopologyOptions topt;
  topt.num_apps = 300;
  topt.min_vms_per_app = 4;
  topt.max_vms_per_app = 20;
  topt.hosts = 136;
  topt.tors = 12;
  topt.ports_per_tor = 16;
  topt.datastores = 24;
  topt.seed = 17;
  const auto topo = generate_topology(topt);
  // ~17K entities, per §5.1.1: VMs + vNICs + flows + fabric.
  EXPECT_GT(topo.entity_count(), 12000u);
  EXPECT_LT(topo.entity_count(), 25000u);
  EXPECT_EQ(topo.apps.size(), 300u);
}

}  // namespace
}  // namespace murphy::enterprise
