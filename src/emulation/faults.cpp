#include "src/emulation/faults.h"

namespace murphy::emulation {

std::string_view fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kCpuStress: return "cpu_stress";
    case FaultKind::kMemStress: return "mem_stress";
    case FaultKind::kDiskStress: return "disk_stress";
  }
  return "unknown";
}

ContainerPressure pressure_at(const std::vector<Fault>& faults,
                              ContainerIdx container, double cpu_limit_cores,
                              TimeIndex t) {
  ContainerPressure p;
  for (const Fault& f : faults) {
    if (f.target != container || !f.active_at(t)) continue;
    switch (f.kind) {
      case FaultKind::kCpuStress:
        p.cpu_cores += f.intensity * cpu_limit_cores;
        break;
      case FaultKind::kMemStress:
        p.mem_fraction += f.intensity;
        // Memory pressure causes paging: page faults and reclaim burn a
        // large share of the container's CPU budget, which is what makes
        // stress-ng --vm degrade co-located request serving.
        p.cpu_cores += 0.7 * f.intensity * cpu_limit_cores;
        break;
      case FaultKind::kDiskStress:
        p.disk_mbps += f.intensity * 100.0;
        // IO-wait and kernel block-layer work steal substantial CPU.
        p.cpu_cores += 0.6 * f.intensity * cpu_limit_cores;
        break;
    }
  }
  return p;
}

}  // namespace murphy::emulation
