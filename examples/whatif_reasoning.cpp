// What-if performance reasoning (§7, "Using Murphy for performance
// reasoning"): the counterfactual machinery can answer questions beyond
// diagnosis — here, "how would the backend's CPU change if the frontend's
// inbound traffic doubled / halved?", evaluated by pinning the flow's
// throughput to hypothetical values and resampling the path to the backend.
#include <cstdio>

#include "src/core/factor_model.h"
#include "src/core/metric_space.h"
#include "src/core/sampler.h"
#include "src/enterprise/dynamics.h"
#include "src/enterprise/topology.h"
#include "src/stats/summary.h"
#include "src/telemetry/metric_catalog.h"

using namespace murphy;

int main() {
  // A healthy enterprise environment (no incident).
  enterprise::TopologyOptions topt;
  topt.num_apps = 8;
  topt.hosts = 12;
  topt.tors = 2;
  topt.seed = 3;
  auto topo = enterprise::generate_topology(topt);
  enterprise::DynamicsOptions dopt;
  dopt.slices = 336;
  enterprise::generate_dynamics(topo, {}, dopt);
  const auto& db = topo.db;

  // Question: for the first app's first intra-app flow, what happens to the
  // destination VM's CPU if that flow's throughput changes?
  const auto& flow = topo.flows.front();
  const EntityId dst_vm = topo.vms[flow.dst_vm];
  std::printf("what-if subject: flow '%s' -> vm '%s'\n",
              db.entity(flow.id).name.c_str(),
              db.entity(dst_vm).name.c_str());

  const std::vector<EntityId> seeds{dst_vm};
  const auto graph = graph::RelationshipGraph::build(db, seeds, 3);
  const core::MetricSpace space(db, graph);
  core::FactorTrainingOptions topts;
  const core::FactorSet factors(db, graph, space, 0, 336, topts);

  const auto m_thr = db.catalog().find(telemetry::metrics::kThroughput);
  const auto m_cpu = db.catalog().find(telemetry::metrics::kCpuUtil);
  const auto flow_var = *space.find(flow.id, m_thr);
  const auto cpu_var = *space.find(dst_vm, m_cpu);
  const auto flow_node = *graph.index_of(flow.id);
  const auto vm_node = *graph.index_of(dst_vm);

  const auto state = space.snapshot(db, 335);
  const double thr_now = state[flow_var];
  const double cpu_now = state[cpu_var];
  std::printf("current: throughput %.1f MB/s, dst cpu %.1f%%\n\n", thr_now,
              cpu_now);

  core::SamplerOptions sopts;
  sopts.num_samples = 64;
  const auto path = graph.shortest_path_subgraph(flow_node, vm_node, 2);

  std::printf("%-28s %s\n", "hypothetical throughput", "predicted dst cpu");
  for (const double factor : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    core::CounterfactualSampler sampler(graph, space, factors, sopts);
    Rng rng(11);
    stats::OnlineStats cpu_pred;
    for (int i = 0; i < 64; ++i) {
      auto work = state;
      work[flow_var] = thr_now * factor;
      cpu_pred.add(sampler.resample_path(path, cpu_var, work, rng, 4));
    }
    std::printf("%6.1f MB/s (%4.2fx)          %.1f%% (+/- %.1f)\n",
                thr_now * factor, factor, cpu_pred.mean(),
                cpu_pred.stddev());
  }
  std::printf("\nthe learned MRF predicts a monotone load->cpu response; the "
              "same machinery answers capacity questions like \"what if we "
              "doubled this tier's traffic?\" (paper §7)\n");
  return 0;
}
