// Property-based tests: invariants that must hold across parameter sweeps —
// graph path-subgraph properties on random graphs, predictor contracts
// across model kinds and seeds, t-test calibration, and sampler monotonicity.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/batch.h"
#include "src/core/factor_model.h"
#include "src/core/metric_space.h"
#include "src/core/sampler.h"
#include "src/graph/relationship_graph.h"
#include "src/stats/predictor.h"
#include "src/stats/summary.h"
#include "src/stats/ttest.h"
#include "src/telemetry/monitoring_db.h"

namespace murphy {
namespace {

using telemetry::EntityType;
using telemetry::MonitoringDb;
using telemetry::RelationKind;

// ---------- random-graph properties -----------------------------------------

class RandomGraphProperties : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  // Random db with n entities and ~2n undirected associations.
  static MonitoringDb random_db(std::size_t n, Rng& rng) {
    MonitoringDb db;
    for (std::size_t i = 0; i < n; ++i)
      db.add_entity(EntityType::kVm, "vm-" + std::to_string(i));
    for (std::size_t e = 0; e < 2 * n; ++e) {
      const auto a = EntityId(static_cast<std::uint32_t>(rng.below(n)));
      const auto b = EntityId(static_cast<std::uint32_t>(rng.below(n)));
      if (a == b) continue;
      db.add_association(a, b, RelationKind::kGeneric);
    }
    return db;
  }
};

TEST_P(RandomGraphProperties, PathSubgraphInvariants) {
  Rng rng(GetParam());
  const auto db = random_db(30, rng);
  std::vector<EntityId> seeds{EntityId(0)};
  const auto g = graph::RelationshipGraph::build(db, seeds, 10);
  if (g.node_count() < 2) return;

  for (int trial = 0; trial < 20; ++trial) {
    const auto src = rng.below(g.node_count());
    const auto dst = rng.below(g.node_count());
    if (src == dst) continue;
    const auto path = g.shortest_path_subgraph(src, dst);
    const auto dist = g.distances_from(src);
    if (dist[dst] == graph::kUnreachable) {
      EXPECT_TRUE(path.empty());
      continue;
    }
    // Endpoints present, src first, dst last.
    ASSERT_GE(path.size(), 2u);
    EXPECT_EQ(path.front(), src);
    EXPECT_EQ(path.back(), dst);
    // Ordered by nondecreasing distance from src, all on shortest paths.
    const auto dist_to = g.distances_to(dst);
    for (std::size_t i = 0; i < path.size(); ++i) {
      EXPECT_EQ(dist[path[i]] + dist_to[path[i]], dist[dst]);
      if (i > 0 && path[i] != dst) {
        EXPECT_GE(dist[path[i]], dist[path[i - 1]]);
      }
    }
  }
}

TEST_P(RandomGraphProperties, SlackOnlyAddsNodes) {
  Rng rng(GetParam() ^ 0x1234);
  const auto db = random_db(25, rng);
  std::vector<EntityId> seeds{EntityId(0)};
  const auto g = graph::RelationshipGraph::build(db, seeds, 10);
  for (int trial = 0; trial < 10; ++trial) {
    const auto src = rng.below(g.node_count());
    const auto dst = rng.below(g.node_count());
    if (src == dst) continue;
    const auto strict = g.shortest_path_subgraph(src, dst, 0);
    const auto slack = g.shortest_path_subgraph(src, dst, 2);
    EXPECT_GE(slack.size(), strict.size());
    for (const auto n : strict)
      EXPECT_NE(std::find(slack.begin(), slack.end(), n), slack.end());
  }
}

TEST_P(RandomGraphProperties, CycleCensusConsistentWithDagCheck) {
  Rng rng(GetParam() ^ 0x9876);
  const auto db = random_db(15, rng);
  std::vector<EntityId> seeds{EntityId(0)};
  const auto g = graph::RelationshipGraph::build(db, seeds, 10);
  // Undirected associations -> every edge has its reverse -> any edge at all
  // means cycles, and the DAG check must agree with the census.
  if (g.count_2cycles() + g.count_3cycles() > 0) {
    EXPECT_FALSE(g.is_dag());
  }
  if (g.is_dag()) {
    EXPECT_EQ(g.count_2cycles(), 0u);
    EXPECT_EQ(g.count_3cycles(), 0u);
  }
}

TEST_P(RandomGraphProperties, RemovalNeverGrowsGraph) {
  Rng rng(GetParam() ^ 0x55AA);
  const auto db = random_db(20, rng);
  std::vector<EntityId> seeds{EntityId(0)};
  const auto g = graph::RelationshipGraph::build(db, seeds, 10);
  if (g.node_count() < 3 || g.edge_count() == 0) return;
  const auto& edge = g.edges()[rng.below(g.edge_count())];
  const auto g2 = g.without_edge(edge.src, edge.dst);
  EXPECT_EQ(g2.edge_count(), g.edge_count() - 1);
  EXPECT_EQ(g2.node_count(), g.node_count());
  const auto g3 = g.without_node(rng.below(g.node_count()));
  EXPECT_EQ(g3.node_count(), g.node_count() - 1);
  EXPECT_LE(g3.edge_count(), g.edge_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphProperties,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// ---------- predictor contracts ----------------------------------------------

struct PredictorCase {
  stats::ModelKind kind;
  std::uint64_t seed;
};

class PredictorContracts : public ::testing::TestWithParam<PredictorCase> {};

TEST_P(PredictorContracts, DeterministicForSeed) {
  const auto param = GetParam();
  Rng rng(77);
  stats::Matrix x(80, 3);
  stats::Vector y(80);
  for (std::size_t i = 0; i < 80; ++i) {
    for (std::size_t j = 0; j < 3; ++j) x.at(i, j) = rng.uniform(0.0, 5.0);
    y[i] = x.at(i, 0) - x.at(i, 1) + rng.normal(0.0, 0.1);
  }
  stats::PredictorOptions opts;
  opts.seed = param.seed;
  auto m1 = stats::make_predictor(param.kind, opts);
  auto m2 = stats::make_predictor(param.kind, opts);
  m1->fit(x, y);
  m2->fit(x, y);
  const std::vector<double> probe{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(m1->predict(probe), m2->predict(probe));
  EXPECT_DOUBLE_EQ(m1->residual_sigma(), m2->residual_sigma());
}

TEST_P(PredictorContracts, FinitePredictionsOnDegenerateData) {
  const auto param = GetParam();
  // All-constant features and targets: the worst telemetry case.
  stats::Matrix x(20, 2, 3.0);
  stats::Vector y(20, 7.0);
  stats::PredictorOptions opts;
  opts.seed = param.seed;
  auto m = stats::make_predictor(param.kind, opts);
  m->fit(x, y);
  const double pred = m->predict(std::vector<double>{3.0, 3.0});
  EXPECT_TRUE(std::isfinite(pred));
  EXPECT_NEAR(pred, 7.0, 1.5);
  EXPECT_GE(m->residual_sigma(), 0.0);
  EXPECT_TRUE(std::isfinite(m->residual_sigma()));
}

TEST_P(PredictorContracts, SingleRowFitDoesNotCrash) {
  const auto param = GetParam();
  stats::Matrix x(1, 2);
  x.at(0, 0) = 1.0;
  x.at(0, 1) = 2.0;
  stats::Vector y{5.0};
  stats::PredictorOptions opts;
  opts.seed = param.seed;
  auto m = stats::make_predictor(param.kind, opts);
  m->fit(x, y);
  EXPECT_TRUE(std::isfinite(m->predict(std::vector<double>{1.0, 2.0})));
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSeeds, PredictorContracts,
    ::testing::Values(PredictorCase{stats::ModelKind::kRidge, 1},
                      PredictorCase{stats::ModelKind::kRidge, 99},
                      PredictorCase{stats::ModelKind::kGmm, 1},
                      PredictorCase{stats::ModelKind::kGmm, 99},
                      PredictorCase{stats::ModelKind::kSvr, 1},
                      PredictorCase{stats::ModelKind::kSvr, 99},
                      PredictorCase{stats::ModelKind::kMlp, 1},
                      PredictorCase{stats::ModelKind::kMlp, 99}),
    [](const auto& info) {
      return std::string(stats::model_kind_name(info.param.kind)) + "_s" +
             std::to_string(info.param.seed);
    });

// ---------- t-test calibration -----------------------------------------------

class TTestCalibration : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TTestCalibration, FalsePositiveRateNearAlpha) {
  // Under H0 (equal means), p_less < alpha should happen ~alpha of the time.
  Rng rng(GetParam());
  constexpr int kTrials = 400;
  constexpr double kAlpha = 0.05;
  int rejections = 0;
  std::vector<double> a(40), b(40);
  for (int t = 0; t < kTrials; ++t) {
    for (auto& v : a) v = rng.normal(0.0, 1.0);
    for (auto& v : b) v = rng.normal(0.0, 1.0);
    if (stats::welch_t_test(a, b).p_less < kAlpha) ++rejections;
  }
  const double rate = static_cast<double>(rejections) / kTrials;
  EXPECT_GT(rate, 0.01);
  EXPECT_LT(rate, 0.12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TTestCalibration,
                         ::testing::Values(11u, 22u, 33u));

// ---------- robust statistics -------------------------------------------------

TEST(RobustStats, MedianIgnoresQuarterOutliers) {
  Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 300; ++i) xs.push_back(rng.normal(10.0, 1.0));
  for (int i = 0; i < 100; ++i) xs.push_back(1000.0);  // 25% contamination
  EXPECT_NEAR(stats::median(xs), 10.0, 0.5);
  EXPECT_LT(stats::mad_sigma(xs), 3.0);      // robust scale barely moves
  EXPECT_GT(stats::stddev(xs), 100.0);       // classic scale explodes
}

TEST(RobustStats, MadSigmaMatchesStddevOnGaussian) {
  Rng rng(6);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.normal(0.0, 2.0));
  EXPECT_NEAR(stats::mad_sigma(xs), 2.0, 0.15);
}

TEST(RobustStats, MadSigmaFloorOnQuantizedData) {
  // >50% identical values would give MAD 0; the floor keeps it positive.
  std::vector<double> xs(80, 5.0);
  for (int i = 0; i < 20; ++i) xs.push_back(5.0 + i);
  EXPECT_GT(stats::mad_sigma(xs), 0.0);
}

// ---------- sampler properties -------------------------------------------------

class SamplerProperties : public ::testing::TestWithParam<std::size_t> {
 protected:
  // Chain A->B->C with a late surge; returns everything needed to sample.
  struct Env {
    MonitoringDb db;
    graph::RelationshipGraph graph;
    std::unique_ptr<core::MetricSpace> space;
    std::unique_ptr<core::FactorSet> factors;
    core::VarIndex va, vc;
    graph::NodeIndex na, nc;
  };

  static Env make_env() {
    Env e;
    const auto a = e.db.add_entity(EntityType::kVm, "A");
    const auto b = e.db.add_entity(EntityType::kVm, "B");
    const auto c = e.db.add_entity(EntityType::kVm, "C");
    e.db.add_association(a, b, RelationKind::kGeneric);
    e.db.add_association(b, c, RelationKind::kGeneric);
    const auto load = e.db.catalog().intern("cpu_util");
    e.db.metrics().set_axis(TimeAxis(0.0, 10.0, 200));
    Rng rng(3);
    std::vector<double> va(200), vb(200), vc(200);
    for (std::size_t t = 0; t < 200; ++t) {
      va[t] = 5.0 + 2.0 * std::sin(0.1 * t) + rng.normal(0.0, 0.3) +
              (t >= 180 ? 12.0 : 0.0);
      vb[t] = 2.0 * va[t] + rng.normal(0.0, 0.3);
      vc[t] = 1.5 * vb[t] + rng.normal(0.0, 0.4);
    }
    e.db.metrics().put(a, load, va);
    e.db.metrics().put(b, load, vb);
    e.db.metrics().put(c, load, vc);
    std::vector<EntityId> seeds{c};
    e.graph = graph::RelationshipGraph::build(e.db, seeds, 5);
    e.space = std::make_unique<core::MetricSpace>(e.db, e.graph);
    core::FactorTrainingOptions opts;
    e.factors =
        std::make_unique<core::FactorSet>(e.db, e.graph, *e.space, 0, 200, opts);
    e.va = *e.space->find(a, load);
    e.vc = *e.space->find(c, load);
    e.na = *e.graph.index_of(a);
    e.nc = *e.graph.index_of(c);
    return e;
  }
};

TEST_P(SamplerProperties, VerdictDeterministicAcrossConstructions) {
  const auto env = make_env();
  const auto state = env.space->snapshot(env.db, 199);
  core::SamplerOptions opts;
  opts.num_samples = 100;
  opts.gibbs_rounds = GetParam();
  core::CounterfactualSampler s1(env.graph, *env.space, *env.factors, opts);
  core::CounterfactualSampler s2(env.graph, *env.space, *env.factors, opts);
  const auto v1 = s1.evaluate(env.na, env.va, env.nc, env.vc, state, true);
  const auto v2 = s2.evaluate(env.na, env.va, env.nc, env.vc, state, true);
  EXPECT_DOUBLE_EQ(v1.p_value, v2.p_value);
  EXPECT_DOUBLE_EQ(v1.mean_factual, v2.mean_factual);
}

TEST_P(SamplerProperties, CounterfactualAlwaysMovesTowardNormal) {
  const auto env = make_env();
  const auto state = env.space->snapshot(env.db, 199);
  core::SamplerOptions opts;
  opts.num_samples = 150;
  opts.gibbs_rounds = GetParam();
  core::CounterfactualSampler s(env.graph, *env.space, *env.factors, opts);
  const auto v = s.evaluate(env.na, env.va, env.nc, env.vc, state, true);
  // During a high excursion the counterfactual start must not predict a
  // HIGHER symptom than the factual start, for any Gibbs round count.
  EXPECT_LE(v.mean_counterfactual, v.mean_factual + 0.5);
}

INSTANTIATE_TEST_SUITE_P(GibbsRounds, SamplerProperties,
                         ::testing::Values(1u, 2u, 4u, 8u));

// ---------- reciprocal-rank-fusion merge properties -------------------------

// Synthetic per-symptom diagnosis naming `entities` in rank order.
core::DiagnosisResult ranking_of(std::initializer_list<std::uint32_t> ids) {
  core::DiagnosisResult r;
  double score = static_cast<double>(ids.size());
  for (const std::uint32_t id : ids)
    r.causes.push_back(core::RankedRootCause{EntityId(id), score--});
  return r;
}

core::Symptom symptom_at(std::uint32_t id) {
  return core::Symptom{EntityId(id), "cpu_util", 0.0, 1.0};
}

TEST(RrfMergeProperties, InvariantUnderSymptomPermutation) {
  // Three symptoms with overlapping suspect lists; the merge must not care
  // in which order the symptoms were diagnosed.
  std::vector<core::Symptom> symptoms{symptom_at(90), symptom_at(91),
                                      symptom_at(92)};
  std::vector<core::DiagnosisResult> results;
  results.push_back(ranking_of({1, 2, 3}));
  results.push_back(ranking_of({2, 1, 4}));
  results.push_back(ranking_of({3, 2, 5}));

  const auto baseline = core::fuse_reciprocal_rank(symptoms, results, 10);
  ASSERT_FALSE(baseline.empty());

  std::vector<std::size_t> perm{0, 1, 2};
  while (std::next_permutation(perm.begin(), perm.end())) {
    std::vector<core::Symptom> ps;
    std::vector<core::DiagnosisResult> pr;
    for (const std::size_t i : perm) {
      ps.push_back(symptoms[i]);
      pr.push_back(results[i]);
    }
    const auto merged = core::fuse_reciprocal_rank(ps, pr, 10);
    ASSERT_EQ(merged.size(), baseline.size());
    for (std::size_t i = 0; i < merged.size(); ++i) {
      EXPECT_EQ(merged[i].entity, baseline[i].entity) << "rank " << i;
      EXPECT_EQ(merged[i].score, baseline[i].score) << "rank " << i;
    }
  }
}

TEST(RrfMergeProperties, BreadthOfImplicationBeatsSinglePlacement) {
  // Entity 7 sits at rank 2 in three symptoms; entity 8 sits at rank 2 in
  // one. Equal per-appearance rank, broader implication -> 7 must outrank 8.
  std::vector<core::Symptom> symptoms{symptom_at(90), symptom_at(91),
                                      symptom_at(92)};
  std::vector<core::DiagnosisResult> results;
  results.push_back(ranking_of({1, 7, 3}));
  results.push_back(ranking_of({2, 7, 4}));
  results.push_back(ranking_of({5, 8, 7}));  // 8's single appearance

  const auto merged = core::fuse_reciprocal_rank(symptoms, results, 10);
  std::size_t rank7 = 0, rank8 = 0;
  for (std::size_t i = 0; i < merged.size(); ++i) {
    if (merged[i].entity == EntityId(7)) rank7 = i + 1;
    if (merged[i].entity == EntityId(8)) rank8 = i + 1;
  }
  ASSERT_GT(rank7, 0u);
  ASSERT_GT(rank8, 0u);
  EXPECT_LT(rank7, rank8);
}

TEST(RrfMergeProperties, ExcludesSymptomEntitiesAndRespectsTopK) {
  // The symptom's own entity never enters the merge, and causes beyond
  // per_symptom_top_k contribute nothing.
  std::vector<core::Symptom> symptoms{symptom_at(1)};
  std::vector<core::DiagnosisResult> results;
  results.push_back(ranking_of({1, 2, 3, 4}));  // 1 is the symptom itself

  const auto merged = core::fuse_reciprocal_rank(symptoms, results, 3);
  ASSERT_EQ(merged.size(), 2u);  // 2 and 3 survive; 1 excluded, 4 beyond k
  EXPECT_EQ(merged[0].entity, EntityId(2));
  EXPECT_EQ(merged[1].entity, EntityId(3));
  // Scores keep the original (pre-exclusion) ranks: 1/2 and 1/3.
  EXPECT_DOUBLE_EQ(merged[0].score, 1.0 / 2.0);
  EXPECT_DOUBLE_EQ(merged[1].score, 1.0 / 3.0);
}

}  // namespace
}  // namespace murphy
