// Quickstart: diagnose a hand-built three-tier incident in ~60 lines.
//
// We populate a MonitoringDb with a load balancer, two app VMs sharing a
// host, and a database VM; generate a week of synthetic metrics in which the
// final hour contains a CPU runaway on one app VM that degrades the db tier;
// then ask Murphy why the database is slow.
#include <cmath>
#include <cstdio>

#include "src/common/rng.h"
#include "src/core/murphy.h"
#include "src/telemetry/metric_catalog.h"
#include "src/telemetry/monitoring_db.h"

using namespace murphy;
using telemetry::EntityType;
using telemetry::RelationKind;

int main() {
  telemetry::MonitoringDb db;

  // --- 1. entities & loose associations (what any monitoring tool exports) --
  const AppId shop = db.define_app("shop");
  const EntityId lb = db.add_entity(EntityType::kVm, "lb-1", shop);
  const EntityId app1 = db.add_entity(EntityType::kVm, "app-1", shop);
  const EntityId app2 = db.add_entity(EntityType::kVm, "app-2", shop);
  const EntityId dbvm = db.add_entity(EntityType::kVm, "db-1", shop);
  const EntityId host = db.add_entity(EntityType::kHost, "esx-7");
  db.add_association(lb, app1, RelationKind::kGeneric);
  db.add_association(lb, app2, RelationKind::kGeneric);
  db.add_association(app1, dbvm, RelationKind::kGeneric);
  db.add_association(app2, dbvm, RelationKind::kGeneric);
  db.add_association(app1, host, RelationKind::kVmOnHost);
  db.add_association(app2, host, RelationKind::kVmOnHost);

  // --- 2. one week of metrics at 30-minute intervals ------------------------
  constexpr std::size_t kSlices = 336;
  constexpr std::size_t kIncidentStart = 320;
  db.metrics().set_axis(TimeAxis(0.0, 1800.0, kSlices));
  const MetricKindId cpu = db.catalog().intern("cpu_util");
  const MetricKindId lat = db.catalog().intern("latency_ms");

  Rng rng(7);
  std::vector<double> lb_cpu(kSlices), a1_cpu(kSlices), a2_cpu(kSlices),
      db_cpu(kSlices), db_lat(kSlices), host_cpu(kSlices);
  for (std::size_t t = 0; t < kSlices; ++t) {
    const double day = 1.0 + 0.4 * std::sin(6.283 * t / 48.0);
    const bool incident = t >= kIncidentStart;
    lb_cpu[t] = 12.0 * day + rng.normal(0.0, 1.0);
    a1_cpu[t] = 20.0 * day + rng.normal(0.0, 2.0) + (incident ? 70.0 : 0.0);
    a2_cpu[t] = 22.0 * day + rng.normal(0.0, 2.0);
    // The runaway app VM hammers the database with queries.
    db_cpu[t] = 15.0 + 0.8 * a1_cpu[t] + 0.5 * a2_cpu[t] + rng.normal(0, 2);
    db_lat[t] = 3.0 + 0.25 * db_cpu[t] + rng.normal(0.0, 0.5);
    host_cpu[t] = 0.4 * (a1_cpu[t] + a2_cpu[t]) + rng.normal(0.0, 1.5);
  }
  db.metrics().put(lb, cpu, lb_cpu);
  db.metrics().put(app1, cpu, a1_cpu);
  db.metrics().put(app2, cpu, a2_cpu);
  db.metrics().put(dbvm, cpu, db_cpu);
  db.metrics().put(dbvm, lat, db_lat);
  db.metrics().put(host, cpu, host_cpu);

  // --- 3. diagnose "why is db-1 slow?" ---------------------------------------
  core::MurphyDiagnoser murphy;
  core::DiagnosisRequest request;
  request.db = &db;
  request.symptom_entity = dbvm;
  request.symptom_metric = "latency_ms";
  request.now = kSlices - 1;       // diagnose mid-incident
  request.train_begin = 0;         // online training on the full week,
  request.train_end = kSlices;     // including the in-incident points
  const auto result = murphy.diagnose(request);

  std::printf("Symptom: high latency_ms on '%s'\n\n",
              db.entity(dbvm).name.c_str());
  std::printf("Ranked root causes (%zu):\n", result.causes.size());
  for (std::size_t i = 0; i < result.causes.size(); ++i) {
    std::printf("  %zu. %-8s (anomaly score %.1f)\n", i + 1,
                db.entity(result.causes[i].entity).name.c_str(),
                result.causes[i].score);
    std::printf("     chain: %s\n", result.explanations[i].c_str());
  }
  const bool found = result.rank_of(app1) >= 1 && result.rank_of(app1) <= 2;
  std::printf("\napp-1 (the injected CPU runaway) ranked #%zu -> %s\n",
              result.rank_of(app1), found ? "diagnosis correct" : "unexpected");
  return found ? 0 : 1;
}
