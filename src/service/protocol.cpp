#include "src/service/protocol.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

namespace murphy::service {

std::optional<std::uint64_t> parse_count(std::string_view tok) {
  if (tok.empty()) return std::nullopt;
  std::uint64_t v = 0;
  const char* end = tok.data() + tok.size();
  const auto [ptr, ec] = std::from_chars(tok.data(), end, v, 10);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return v;
}

std::optional<double> parse_double(std::string_view tok) {
  if (tok.empty()) return std::nullopt;
  // strtod accepts leading whitespace and "inf"/"nan"; reject both — CLI
  // and protocol operands are single clean tokens or they are errors.
  if (std::isspace(static_cast<unsigned char>(tok.front()))) {
    return std::nullopt;
  }
  const std::string owned(tok);  // strtod needs a terminator
  char* end = nullptr;
  const double v = std::strtod(owned.c_str(), &end);
  if (end != owned.c_str() + owned.size()) return std::nullopt;
  if (!std::isfinite(v)) return std::nullopt;
  return v;
}

namespace {

[[nodiscard]] std::string printf_line(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  char buf[512];
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  return std::string(buf);
}

}  // namespace

Protocol::Protocol(TelemetryStream& stream, DiagnosisService& svc,
                   ProtocolHooks hooks)
    : stream_(stream), svc_(svc), hooks_(std::move(hooks)) {}

Protocol::DispatchKind Protocol::dispatch(std::string_view line,
                                          const Sink& sink,
                                          bool deliver_async) {
  // Peel an optional leading "#tag" token; the tagged sink prefixes every
  // response with it (captured by value — async completions outlive the
  // dispatch call).
  std::string_view rest = line;
  const std::size_t start = rest.find_first_not_of(" \t");
  if (start != std::string_view::npos && rest[start] == '#') {
    const std::size_t end = rest.find_first_of(" \t", start);
    const std::string_view tag = rest.substr(
        start, (end == std::string_view::npos ? rest.size() : end) - start);
    if (tag.size() > 1) {
      rest = end == std::string_view::npos ? std::string_view{}
                                           : rest.substr(end);
      Sink tagged = [tag = std::string(tag), sink](std::string s) {
        sink(tag + " " + std::move(s));
      };
      const DispatchKind kind = dispatch_untagged(rest, tagged, deliver_async);
      // A bare tag with no verb still gets its one response.
      if (kind == DispatchKind::kNone) {
        tagged("ERR empty command");
        return DispatchKind::kImmediate;
      }
      return kind;
    }
  }
  return dispatch_untagged(line, sink, deliver_async);
}

Protocol::DispatchKind Protocol::dispatch_untagged(std::string_view line,
                                                   const Sink& sink,
                                                   bool deliver_async) {
  std::istringstream in{std::string(line)};
  std::string verb;
  in >> verb;
  if (verb.empty()) return DispatchKind::kNone;

  if (verb == "QUIT") {
    sink("OK bye");
    return DispatchKind::kQuit;
  }

  if (verb == "STATS") {
    const obs::MetricsRegistry* m = hooks_.metrics;
    const obs::Histogram* h =
        m == nullptr ? nullptr : m->find_histogram("service.total_ms");
    const auto cnt = [&](const char* name) -> unsigned long long {
      const obs::Counter* c = m == nullptr ? nullptr : m->find_counter(name);
      return c == nullptr ? 0ULL : c->value();
    };
    // Summary fields first, then the FULL registry snapshot: every
    // instrument any subsystem ever registered, not the handful this
    // format string knew about (scripts/metrics_diff.py consumes the JSON).
    std::string out = printf_line(
        "OK slices=%zu version=%llu queue=%zu replayed=%zu completed=%llu "
        "rejected=%llu deadline_exceeded=%llu p50_ms=%.1f p99_ms=%.1f "
        "metrics=",
        stream_.slice_count(),
        static_cast<unsigned long long>(stream_.data_version()),
        svc_.queue_depth(), hooks_.replayed ? hooks_.replayed() : 0,
        cnt("service.completed"), cnt("service.rejected"),
        cnt("service.deadline_exceeded"),
        h == nullptr ? 0.0 : h->quantile(0.5),
        h == nullptr ? 0.0 : h->quantile(0.99));
    out += m == nullptr ? "{}" : m->to_json();
    sink(std::move(out));
    return DispatchKind::kImmediate;
  }

  if (verb == "MARKERS") {
    std::string out = "OK [";
    bool first = true;
    if (hooks_.export_markers) {
      for (const obs::Marker& mk : hooks_.export_markers(0.0)) {
        if (!first) out += ",";
        first = false;
        out += "{\"name\":\"" + mk.name +
               "\",\"payload\":" + obs::marker_payload_json(mk) + "}";
      }
    }
    out += "]";
    sink(std::move(out));
    return DispatchKind::kImmediate;
  }

  if (verb == "INCIDENTS") {
    sink("OK " + (hooks_.incidents_json ? hooks_.incidents_json()
                                        : std::string("[]")));
    return DispatchKind::kImmediate;
  }

  if (verb == "REPLAY" || verb == "EXTEND") {
    // Optional count, default 1. A failed `in >> n` extraction would write
    // 0 over the default and print OK (the pre-PR bug); parse the token
    // explicitly and reject garbage instead.
    std::uint64_t n = 1;
    std::string tok;
    if (in >> tok) {
      const auto parsed = parse_count(tok);
      if (!parsed.has_value()) {
        sink(printf_line("ERR bad count '%s' (usage: %s [n])", tok.c_str(),
                         verb.c_str()));
        return DispatchKind::kImmediate;
      }
      n = *parsed;
      if (in >> tok) {
        sink(printf_line("ERR trailing garbage '%s' (usage: %s [n])",
                         tok.c_str(), verb.c_str()));
        return DispatchKind::kImmediate;
      }
    }
    if (verb == "REPLAY") {
      const std::size_t cells =
          hooks_.replay_n ? hooks_.replay_n(static_cast<std::size_t>(n)) : 0;
      sink(printf_line("OK replayed_to=%zu cells=%zu",
                       hooks_.replayed ? hooks_.replayed() : 0, cells));
    } else {
      if (n > kMaxExtend) {
        sink(printf_line("ERR count too large (max %llu)",
                         static_cast<unsigned long long>(kMaxExtend)));
        return DispatchKind::kImmediate;
      }
      stream_.extend_axis(static_cast<std::size_t>(n));
      sink(printf_line("OK slices=%zu", stream_.slice_count()));
    }
    return DispatchKind::kImmediate;
  }

  if (verb == "INGEST") {
    std::string entity, metric;
    TimeIndex t = 0;
    double value = 0.0;
    if (!(in >> entity >> metric >> t >> value)) {
      sink("ERR usage: INGEST <entity> <metric> <slice> <value>");
      return DispatchKind::kImmediate;
    }
    const EntityId id = stream_.read()->find_entity(entity);
    if (!id.valid()) {
      sink("ERR unknown entity " + entity);
      return DispatchKind::kImmediate;
    }
    sink(stream_.append_cell(id, metric, t, value)
             ? "OK"
             : "ERR cell dropped (slice out of axis?)");
    return DispatchKind::kImmediate;
  }

  if (verb == "SNAPSHOT") {
    std::string path;
    if (!(in >> path)) {
      sink("ERR usage: SNAPSHOT <path>");
      return DispatchKind::kImmediate;
    }
    sink((stream_.save_snapshot(path) ? "OK " : "ERR write ") + path);
    return DispatchKind::kImmediate;
  }

  if (verb == "DIAGNOSE") {
    std::string entity, metric;
    if (!(in >> entity >> metric)) {
      sink("ERR usage: DIAGNOSE <entity> <metric> [hops] [deadline_ms]");
      return DispatchKind::kImmediate;
    }
    ServiceRequest req;
    req.max_hops = 4;
    std::uint64_t deadline_ms = 0;
    // Optional operands parsed token-by-token: the pre-PR `in >> max_hops`
    // zeroed the documented default of 4 whenever the operand was absent or
    // non-numeric, so every hop-less DIAGNOSE ran with max_hops=0.
    std::string tok;
    if (in >> tok) {
      const auto hops = parse_count(tok);
      if (!hops.has_value()) {
        sink(printf_line("ERR bad max_hops '%s' (usage: DIAGNOSE <entity> "
                         "<metric> [hops] [deadline_ms])",
                         tok.c_str()));
        return DispatchKind::kImmediate;
      }
      req.max_hops = static_cast<std::size_t>(*hops);
      if (in >> tok) {
        const auto dl = parse_count(tok);
        if (!dl.has_value()) {
          sink(printf_line("ERR bad deadline_ms '%s' (usage: DIAGNOSE "
                           "<entity> <metric> [hops] [deadline_ms])",
                           tok.c_str()));
          return DispatchKind::kImmediate;
        }
        deadline_ms = *dl;
        if (in >> tok) {
          sink(printf_line("ERR trailing garbage '%s' (usage: DIAGNOSE "
                           "<entity> <metric> [hops] [deadline_ms])",
                           tok.c_str()));
          return DispatchKind::kImmediate;
        }
      }
    }
    {
      const auto db = stream_.read();
      req.symptom_entity = db->find_entity(entity);
      const std::size_t slices = db->metrics().axis().size();
      if (slices == 0) {
        sink("ERR empty axis");
        return DispatchKind::kImmediate;
      }
      req.now = slices - 1;
      req.train_begin = 0;
      req.train_end = slices;  // online training includes `now`
    }
    if (!req.symptom_entity.valid()) {
      sink("ERR unknown entity " + entity);
      return DispatchKind::kImmediate;
    }
    req.symptom_metric = metric;
    if (deadline_ms > 0)
      req.deadline = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(deadline_ms);
    if (deliver_async) {
      // The completing worker formats and delivers; rejections fire the
      // hook synchronously inside submit(), which still lands exactly one
      // sink call for this line.
      req.on_complete = [this, sink](const ServiceResponse& resp) {
        sink(format_diagnose_response(resp));
      };
      (void)svc_.submit(std::move(req));
      return DispatchKind::kAsync;
    }
    auto fut = svc_.submit(std::move(req));
    sink(format_diagnose_response(fut.get()));
    return DispatchKind::kImmediate;
  }

  sink("ERR unknown verb " + verb);
  return DispatchKind::kImmediate;
}

std::string Protocol::format_diagnose_response(
    const ServiceResponse& resp) const {
  if (resp.status != RequestStatus::kOk) {
    return printf_line("ERR %s (queue %.1fms run %.1fms)",
                       std::string(to_string(resp.status)).c_str(),
                       resp.queue_ms, resp.run_ms);
  }
  std::ostringstream out;
  out << "OK id=" << resp.request_id << " version=" << resp.db_version
      << " run_ms=" << resp.run_ms;
  const auto db = stream_.read();
  const std::size_t top = std::min<std::size_t>(resp.result.causes.size(), 5);
  for (std::size_t i = 0; i < top; ++i) {
    const auto& c = resp.result.causes[i];
    out << " " << (i + 1) << ":"
        << (db->has_entity(c.entity) ? db->entity(c.entity).name : "<gone>");
  }
  return out.str();
}

}  // namespace murphy::service
