#include "src/stats/correlation.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "src/stats/matrix.h"
#include "src/stats/summary.h"

namespace murphy::stats {
namespace {

// Midrank computation into a caller-provided buffer. `order` is scratch for
// the argsort; both buffers are resized as needed so repeated calls on a
// thread reuse the same allocations.
void ranks_into(std::span<const double> x, std::vector<std::size_t>& order,
                std::vector<double>& r) {
  order.resize(x.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return x[a] < x[b]; });
  r.resize(x.size());
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && x[order[j + 1]] == x[order[i]]) ++j;
    const double avg_rank =
        (static_cast<double>(i) + static_cast<double>(j)) / 2.0;
    for (std::size_t k = i; k <= j; ++k) r[order[k]] = avg_rank;
    i = j + 1;
  }
}

}  // namespace

std::vector<double> midranks(std::span<const double> x) {
  thread_local std::vector<std::size_t> order;
  std::vector<double> r;
  ranks_into(x, order, r);
  return r;
}

double pearson(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx < 1e-15 || syy < 1e-15) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double pearson_centered(std::span<const double> cx, double sxx,
                        std::span<const double> cy, double syy) {
  assert(cx.size() == cy.size());
  if (cx.size() < 2) return 0.0;
  if (sxx < 1e-15 || syy < 1e-15) return 0.0;
  // Summing cx[i]*cy[i] in index order performs the exact add sequence the
  // fused loop in pearson() performs for its sxy accumulator, so this is
  // bit-identical to pearson() on the raw columns (the three accumulators
  // there are independent).
  const double sxy = dot_kernel(cx.data(), cy.data(), cx.size());
  return sxy / std::sqrt(sxx * syy);
}

double spearman(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  if (x.size() < 2) return 0.0;
  thread_local std::vector<std::size_t> order;
  thread_local std::vector<double> rx, ry;
  ranks_into(x, order, rx);
  ranks_into(y, order, ry);
  return pearson(rx, ry);
}

double abnormality_correlation(std::span<const double> x,
                               std::span<const double> y) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  const double mx = mean(x), sx = stddev(x);
  const double my = mean(y), sy = stddev(y);
  thread_local std::vector<double> ax, ay;
  ax.resize(n);
  ay.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    ax[i] = std::abs(zscore(x[i], mx, sx));
    ay[i] = std::abs(zscore(y[i], my, sy));
  }
  return pearson(ax, ay);
}

double lagged_pearson(std::span<const double> x, std::span<const double> y,
                      std::size_t lag) {
  assert(x.size() == y.size());
  if (x.size() <= lag + 1) return 0.0;
  const std::size_t n = x.size() - lag;
  return pearson(x.subspan(0, n), y.subspan(lag, n));
}

}  // namespace murphy::stats
