// Request tracing for the microservice simulator (Jaeger-like, §5.1.2).
//
// The paper's testbeds learn the service call graph from distributed traces.
// This module samples span trees for simulated requests — each span carries
// the service, its parent, and a duration consistent with the simulator's
// queueing state — and reconstructs the caller/callee graph from a trace
// corpus. The reconstruction is what the tracing-bug degradation of Table 2
// ("missing edge": an RPC loses its parent association) corrupts.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/time_axis.h"
#include "src/emulation/app_model.h"

namespace murphy::emulation {

struct Span {
  std::size_t span_id = 0;
  std::optional<std::size_t> parent_span;  // nullopt = root span
  ServiceIdx service = 0;
  double start_ms = 0.0;
  double duration_ms = 0.0;
};

struct Trace {
  std::size_t trace_id = 0;
  ClientIdx client = 0;
  TimeIndex slice = 0;  // collection interval the request fell into
  std::vector<Span> spans;

  [[nodiscard]] const Span& root() const { return spans.front(); }
  // End-to-end duration = root span duration.
  [[nodiscard]] double total_ms() const { return spans.front().duration_ms; }
};

struct TracingOptions {
  // Probability a request is sampled into the trace corpus (head sampling).
  double sample_rate = 0.02;
  // Per-span timing jitter.
  double noise = 0.05;
  std::uint64_t seed = 1;
};

// Samples traces for `requests` requests of client `client` at `slice`,
// using per-service base latencies scaled by `latency_multiplier[s]` (the
// simulator's queueing factor at that slice; pass 1.0s for an idle system).
[[nodiscard]] std::vector<Trace> sample_traces(
    const AppModel& app, ClientIdx client, TimeIndex slice,
    std::size_t requests, std::span<const double> latency_multiplier,
    const TracingOptions& opts, Rng& rng);

// A caller->callee edge observed in traces, with its observation count and
// mean fan-out per parent invocation.
struct ObservedCall {
  ServiceIdx caller;
  ServiceIdx callee;
  std::size_t observations = 0;
  double mean_fanout = 0.0;
};

// Reconstructs the call graph from a trace corpus. Edges observed fewer than
// `min_observations` times are dropped (trace sampling means rare edges may
// be missed — the realistic flaw the robustness experiments poke at).
[[nodiscard]] std::vector<ObservedCall> call_graph_from_traces(
    std::span<const Trace> traces, std::size_t num_services,
    std::size_t min_observations = 1);

}  // namespace murphy::emulation
