// DiagnosisService — the long-running concurrent diagnosis front end
// (DESIGN.md §9).
//
// Wraps one TelemetryStream with a bounded priority queue and a worker
// pool. Requests are admitted or rejected synchronously at submit() —
// rejection is always the explicit kRejectedQueueFull status, never a
// silent drop — and completed on a std::future. Each admitted request
// carries a deadline; expiry is enforced twice: a request already past its
// deadline at dequeue is answered kDeadlineExceeded without running, and a
// running diagnosis polls the deadline at phase boundaries through the
// engine's cooperative-cancellation hook (MurphyOptions::cancel).
//
// Determinism contract: a completed (kOk) response is a pure function of
// (request, db version, service options) — bitwise identical at any worker
// count, queue depth or arrival order. The pieces: every diagnosis runs
// with the same configured seed; workers hold the stream's shared lock for
// the whole run so the db version cannot move mid-diagnosis; and the shared
// training caches yield bitwise-identical factors by construction (see
// FactorCache / WindowStats). Cancellation cannot break this — it only
// abandons phases, never alters a completed one.
//
// Cache invalidation: the caches run in epoch-keyed mode
// (FactorTrainingOptions::epoch_keys) with a generation fingerprint over
// MonitoringDb::uid() + structural_data_version() + training options. A
// streaming append bumps only the touched series' epochs, so the generation
// survives and unrelated entries keep hitting; structural changes (new
// entities/associations, axis swap, erasure) change the fingerprint and
// reset everything. Stale epoch-keyed entries are never looked up again, so
// maintain() bounds the maps by pruning under the stream's exclusive lock —
// the one point where no diagnosis can hold a cache reference.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/factor_cache.h"
#include "src/core/murphy.h"
#include "src/service/telemetry_stream.h"
#include "src/stats/window_stats.h"

namespace murphy::service {

enum class RequestStatus : std::uint8_t {
  kOk = 0,
  // Admission control: the queue was at capacity at submit(). The request
  // never entered the system.
  kRejectedQueueFull,
  // The deadline passed before the diagnosis completed (possibly before it
  // started). The partial result is discarded.
  kDeadlineExceeded,
  // submit() after stop() began.
  kShuttingDown,
  // The symptom references an unknown entity or metric (checked at
  // execution time against the db version the diagnosis would have run at).
  kInvalidRequest,
  // The engine threw (defensive; the chaos harness aims for this never to
  // happen). The exception is swallowed so the future always resolves.
  kInternalError,
};

[[nodiscard]] std::string_view to_string(RequestStatus s);

struct ServiceResponse;

struct ServiceRequest {
  EntityId symptom_entity;
  std::string symptom_metric;
  TimeIndex now = 0;
  TimeIndex train_begin = 0;
  TimeIndex train_end = 0;
  std::size_t max_hops = 4;
  // Larger runs sooner. Ties run in submission order.
  int priority = 0;
  // Absolute deadline; max() = none. Checked at dequeue and at every
  // diagnosis phase boundary.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  // Optional completion hook, invoked with the final response immediately
  // before the future resolves — on the worker thread that finished the
  // request, or on the submitting thread for synchronous rejections
  // (kRejectedQueueFull / kShuttingDown). Runs with no service lock held;
  // it may take the stream's shared lock but must not wait on this
  // request's future and must not throw. The socket front end uses this to
  // deliver pipelined completions out of order; future-only callers leave
  // it empty.
  std::function<void(const ServiceResponse&)> on_complete;
};

struct ServiceResponse {
  std::uint64_t request_id = 0;
  RequestStatus status = RequestStatus::kOk;
  // Filled for kOk only.
  core::DiagnosisResult result;
  // MonitoringDb::data_version() the diagnosis ran at (0 when it never
  // ran). Re-running the same request at the same version reproduces
  // `result` bitwise.
  std::uint64_t db_version = 0;
  double queue_ms = 0.0;  // admit -> dequeue
  double run_ms = 0.0;    // dequeue -> response
};

struct DiagnosisServiceOptions {
  // Engine configuration shared by every request (seed included — the
  // determinism contract is per (request, db version, options)).
  core::MurphyOptions murphy;
  // Concurrent diagnoses. 0 is legal: requests then run inline inside
  // submit() (useful for tests and the serial re-execution harness).
  std::size_t num_workers = 2;
  // Admission bound on QUEUED requests (running ones do not count).
  std::size_t max_queue = 64;
  // maintain() prunes each training cache down whenever it exceeds this.
  std::size_t cache_max_entries = 8192;
};

class DiagnosisService {
 public:
  // The stream must outlive the service.
  DiagnosisService(TelemetryStream& stream, DiagnosisServiceOptions opts);
  // Implies stop().
  ~DiagnosisService();
  DiagnosisService(const DiagnosisService&) = delete;
  DiagnosisService& operator=(const DiagnosisService&) = delete;

  // Admission + scheduling. Returns a future that is always eventually
  // fulfilled: kRejectedQueueFull / kShuttingDown resolve before submit()
  // returns, everything admitted resolves when a worker finishes with it.
  [[nodiscard]] std::future<ServiceResponse> submit(ServiceRequest req);

  // Completes every admitted request (running and queued), then stops
  // accepting. Idempotent. The destructor calls it; unlike ThreadPool's
  // destructor-abandonment, a service stop() never drops admitted work —
  // every future resolves.
  void stop();

  // Cache size bound: prunes either training cache that exceeds
  // cache_max_entries, under the stream's exclusive lock (no diagnosis can
  // hold a cache reference there). Call after ingest batches; murphyd does.
  void maintain();

  // Queued (not yet running) requests, for tests and the STATS verb.
  [[nodiscard]] std::size_t queue_depth() const;

 private:
  struct Pending {
    ServiceRequest req;
    std::uint64_t id = 0;
    std::chrono::steady_clock::time_point admitted;
    // promise travels via shared_ptr: std::priority_queue only exposes a
    // const top(), so entries must be copyable out.
    std::shared_ptr<std::promise<ServiceResponse>> promise;
  };
  struct PendingOrder {
    // std::priority_queue surfaces the LARGEST element: higher priority
    // wins, then the smaller (earlier) id. Deterministic for any arrival
    // interleaving of a fixed request set.
    bool operator()(const Pending& a, const Pending& b) const {
      if (a.req.priority != b.req.priority)
        return a.req.priority < b.req.priority;
      return a.id > b.id;
    }
  };

  void run_one();
  ServiceResponse execute(const Pending& p);

  TelemetryStream& stream_;
  DiagnosisServiceOptions opts_;
  std::unique_ptr<ThreadPool> pool_;

  mutable std::mutex queue_mu_;
  std::priority_queue<Pending, std::vector<Pending>, PendingOrder> queue_;
  std::uint64_t next_id_ = 0;
  bool stopping_ = false;

  // Shared across workers; epoch-keyed (see file comment).
  stats::WindowStats window_stats_;
  core::FactorCache factor_cache_;
};

}  // namespace murphy::service
