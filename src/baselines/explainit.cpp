#include "src/baselines/explainit.h"

#include <algorithm>
#include <cmath>

#include "src/core/anomaly.h"
#include "src/core/factor_model.h"
#include "src/stats/correlation.h"

namespace murphy::baselines {

ExplainIt::ExplainIt(ExplainItOptions opts) : opts_(opts) {}

core::DiagnosisResult ExplainIt::diagnose(
    const core::DiagnosisRequest& request) {
  core::DiagnosisResult result;
  obs::Span diag_span(opts_.obs.tracer, "explainit_diagnose");
  if (diag_span.enabled()) diag_span.arg("symptom_metric", request.symptom_metric);
  const telemetry::MonitoringDb& db = *request.db;

  const std::vector<EntityId> seeds{request.symptom_entity};
  const auto graph =
      graph::RelationshipGraph::build(db, seeds, request.max_hops);
  const auto symptom_node = graph.index_of(request.symptom_entity);
  if (!symptom_node) return result;
  const core::MetricSpace space(db, graph);
  const auto kind = db.catalog().find(request.symptom_metric);
  if (!kind.valid()) return result;

  // Correlation window: trailing part of the training range.
  const TimeIndex end = request.train_end;
  const TimeIndex begin =
      request.train_begin +
      static_cast<TimeIndex>(static_cast<double>(end - request.train_begin) *
                             (1.0 - opts_.window_fraction));
  const auto symptom_series =
      space.history(db, *space.find(request.symptom_entity, kind), begin, end);

  // Candidate set: Murphy's pruned space when enabled, else every node.
  std::vector<graph::NodeIndex> candidates;
  if (opts_.use_pruned_search_space) {
    const core::FactorTrainingOptions topts;
    const core::FactorSet factors(db, graph, space, request.train_begin,
                                  request.train_end, topts);
    const auto state = space.snapshot(db, request.now);
    core::CandidateSearchOptions sopts;
    candidates = core::candidate_search(db, graph, space, factors, state,
                                        *symptom_node, sopts);
  } else {
    candidates.resize(graph.node_count());
    for (graph::NodeIndex n = 0; n < graph.node_count(); ++n)
      candidates[n] = n;
  }

  std::vector<core::RankedRootCause> ranked;
  for (const graph::NodeIndex n : candidates) {
    double best = 0.0;
    for (const core::VarIndex v : space.vars_of(n)) {
      const auto& var = space.var(v);
      // The symptom entity itself is a legal answer (self-caused problems),
      // scored by its OTHER metrics' correlation with the symptom metric.
      if (var.entity == request.symptom_entity && var.kind == kind) continue;
      const auto series = space.history(db, v, begin, end);
      best = std::max(best, std::abs(stats::pearson(series, symptom_series)));
    }
    if (best >= opts_.min_correlation)
      ranked.push_back(core::RankedRootCause{graph.entity_of(n), best});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const core::RankedRootCause& a, const core::RankedRootCause& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.entity < b.entity;
            });
  result.causes = std::move(ranked);
  if (opts_.obs.metrics != nullptr) {
    opts_.obs.metrics->counter("explainit.candidates_scored")
        ->add(candidates.size());
    opts_.obs.metrics->counter("explainit.causes_reported")
        ->add(result.causes.size());
  }
  return result;
}

}  // namespace murphy::baselines
