#include "src/stats/predictor.h"

#include "src/stats/gmm.h"
#include "src/stats/mlp.h"
#include "src/stats/ridge.h"
#include "src/stats/svr.h"

namespace murphy::stats {

std::string_view model_kind_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::kRidge: return "ridge";
    case ModelKind::kGmm: return "gmm";
    case ModelKind::kSvr: return "svm";
    case ModelKind::kMlp: return "neural_net";
  }
  return "unknown";
}

std::unique_ptr<Predictor> make_predictor(ModelKind kind,
                                          const PredictorOptions& opts) {
  switch (kind) {
    case ModelKind::kRidge:
      return std::make_unique<RidgeRegression>(opts.l2);
    case ModelKind::kGmm:
      return std::make_unique<GmmRegressor>(opts.gmm_components, opts.seed);
    case ModelKind::kSvr:
      return std::make_unique<LinearSvr>(opts.l2, opts.svr_epsilon,
                                         opts.svr_epochs, opts.seed,
                                         opts.svr_rff_features);
    case ModelKind::kMlp:
      return std::make_unique<MlpRegressor>(
          opts.mlp_hidden_layers, opts.mlp_hidden_width, opts.mlp_epochs,
          opts.mlp_learning_rate, opts.seed);
  }
  return nullptr;
}

}  // namespace murphy::stats
