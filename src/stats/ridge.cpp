#include "src/stats/ridge.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/obs/metrics.h"
#include "src/stats/summary.h"

namespace murphy::stats {

RidgeRegression::RidgeRegression(double l2) : l2_(l2) { assert(l2 >= 0.0); }

void RidgeRegression::fit(const Matrix& x, const Vector& y) {
  fit_weighted(x, y, Vector(x.rows(), 1.0));
}

void RidgeRegression::fit_weighted(const Matrix& x, const Vector& y,
                                   const Vector& weights) {
  // Kernel-boundary guard (DESIGN.md §8): a NaN/Inf design or target cell
  // would propagate through the Gram matrix and poison every coefficient.
  // Non-finite cells degrade to 0.0 (the engine's missing-value fallback,
  // matching TimeSeries::window) in a local copy; finite inputs take the
  // fast path below untouched, so clean fits are bit-identical.
  bool finite = true;
  for (std::size_t i = 0; i < x.rows() && finite; ++i) {
    const double* row = x.row(i);
    for (std::size_t j = 0; j < x.cols(); ++j) {
      if (!std::isfinite(row[j])) {
        finite = false;
        break;
      }
    }
    if (!std::isfinite(y[i])) finite = false;
  }
  if (!finite) {
    Matrix xc = x;
    Vector yc = y;
    std::size_t cells = 0;
    for (std::size_t i = 0; i < xc.rows(); ++i) {
      for (std::size_t j = 0; j < xc.cols(); ++j) {
        double& v = xc.at(i, j);
        if (!std::isfinite(v)) {
          v = 0.0;
          ++cells;
        }
      }
      if (!std::isfinite(yc[i])) {
        yc[i] = 0.0;
        ++cells;
      }
    }
#ifndef MURPHY_OBS_DISABLED
    obs::global_metrics().counter("train.nonfinite_cells")->add(cells);
#endif
    fit_weighted(xc, yc, weights);
    return;
  }

  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
#ifndef MURPHY_OBS_DISABLED
  // Hot-path accounting in the process-global registry; the instrument
  // pointers are resolved once, updates are single relaxed atomics.
  static obs::Counter* const c_fits =
      obs::global_metrics().counter("stats.ridge_fits");
  static obs::Counter* const c_cells =
      obs::global_metrics().counter("stats.ridge_cells");
  c_fits->add(1);
  c_cells->add(static_cast<std::uint64_t>(n) * p);
#endif
  assert(y.size() == n && weights.size() == n);
  assert(n >= 1);

  double w_total = 0.0;
  for (const double w : weights) {
    assert(w >= 0.0);
    w_total += w;
  }
  if (w_total <= 0.0) w_total = 1.0;

  // Weighted standardization, accumulated row-major so each design row is
  // streamed once per pass instead of once per column. The per-column
  // accumulators still receive their adds in row order, so the results are
  // bit-identical to the column-at-a-time formulation.
  feat_mean_.assign(p, 0.0);
  feat_scale_.assign(p, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double wi = weights[i];
    const double* row = x.row(i);
    for (std::size_t j = 0; j < p; ++j) feat_mean_[j] += wi * row[j];
  }
  for (std::size_t j = 0; j < p; ++j) feat_mean_[j] /= w_total;
  Vector var(p, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double wi = weights[i];
    const double* row = x.row(i);
    for (std::size_t j = 0; j < p; ++j) {
      const double d = row[j] - feat_mean_[j];
      var[j] += wi * d * d;
    }
  }
  std::size_t degenerate_cols = 0;
  for (std::size_t j = 0; j < p; ++j) {
    const double sd = std::sqrt(var[j] / w_total);
    if (sd > 1e-12) {
      feat_scale_[j] = sd;
    } else {
      feat_scale_[j] = 1.0;  // constant column -> weight 0
      ++degenerate_cols;
    }
  }
#ifndef MURPHY_OBS_DISABLED
  if (degenerate_cols > 0) {
    static obs::Counter* const c_degenerate =
        obs::global_metrics().counter("train.degenerate_columns");
    c_degenerate->add(degenerate_cols);
  }
#else
  (void)degenerate_cols;
#endif
  {
    double m = 0.0;
    for (std::size_t i = 0; i < n; ++i) m += weights[i] * y[i];
    y_mean_ = m / w_total;
  }

  // Row-scale the standardized design by sqrt(w): the normal equations then
  // solve the weighted least-squares problem.
  Matrix xs(n, p);
  Vector yc(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double sw = std::sqrt(weights[i]);
    for (std::size_t j = 0; j < p; ++j)
      xs.at(i, j) = sw * (x.at(i, j) - feat_mean_[j]) / feat_scale_[j];
    yc[i] = sw * (y[i] - y_mean_);
  }

  Matrix a = xs.gram();
  // Scale-invariant regularization: lambda grows with the effective sample
  // mass so the model behaves consistently across training lengths.
  const double lambda = l2_ * std::max(1.0, w_total) / 256.0;
  for (std::size_t j = 0; j < p; ++j) a.at(j, j) += lambda + 1e-9;

  const Vector b = xs.transpose_times(yc);
  auto solved = solve_spd(a, b);
  // The diagonal loading makes the system SPD in all practical cases; fall
  // back to the mean-only model if numerics still fail — including a solve
  // that "succeeds" with non-finite coefficients (possible when the Gram
  // matrix overflowed on extreme-scale columns).
  if (solved &&
      std::any_of(solved->begin(), solved->end(),
                  [](double w) { return !std::isfinite(w); }))
    solved.reset();
  w_ = solved ? std::move(*solved) : Vector(p, 0.0);

  OnlineStats resid;
  for (std::size_t i = 0; i < n; ++i) {
    if (weights[i] <= 0.0) continue;
    double pred = y_mean_;
    for (std::size_t j = 0; j < p; ++j)
      pred += w_[j] * (x.at(i, j) - feat_mean_[j]) / feat_scale_[j];
    resid.add(y[i] - pred);
  }
  sigma_ = resid.count() >= 2 ? resid.stddev() : 0.0;
  fitted_ = true;
}

double RidgeRegression::predict(std::span<const double> x) const {
  assert(fitted_);
  assert(x.size() == w_.size());
  double out = y_mean_;
  for (std::size_t j = 0; j < x.size(); ++j)
    out += w_[j] * (x[j] - feat_mean_[j]) / feat_scale_[j];
  return out;
}

}  // namespace murphy::stats
