file(REMOVE_RECURSE
  "CMakeFiles/whatif_reasoning.dir/whatif_reasoning.cpp.o"
  "CMakeFiles/whatif_reasoning.dir/whatif_reasoning.cpp.o.d"
  "whatif_reasoning"
  "whatif_reasoning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_reasoning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
