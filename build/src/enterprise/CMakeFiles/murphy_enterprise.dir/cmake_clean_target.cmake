file(REMOVE_RECURSE
  "libmurphy_enterprise.a"
)
