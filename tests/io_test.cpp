// Tests for the dataset I/O (CSV export/import round-trip, error reporting)
// and the ASCII chart renderer used by the figure benches.
#include <sstream>

#include <gtest/gtest.h>

#include "src/eval/ascii_chart.h"
#include "src/telemetry/csv_export.h"
#include "src/telemetry/csv_import.h"
#include "src/telemetry/metric_catalog.h"

namespace murphy {
namespace {

using telemetry::EntityType;
using telemetry::MonitoringDb;
using telemetry::RelationKind;

MonitoringDb sample_db() {
  MonitoringDb db;
  const auto app = db.define_app("shop");
  const auto vm = db.add_entity(EntityType::kVm, "vm-1", app);
  const auto host = db.add_entity(EntityType::kHost, "host-1");
  const auto flow = db.add_entity(EntityType::kFlow, "flow, with comma", app);
  db.add_association(vm, host, RelationKind::kVmOnHost);
  db.add_association(flow, vm, RelationKind::kFlowEndpoint, /*directed=*/true);
  db.metrics().set_axis(TimeAxis(0.0, 30.0, 3));
  const auto cpu = db.catalog().intern("cpu_util");
  const auto thr = db.catalog().intern("throughput");
  telemetry::TimeSeries cpu_ts({10.0, 20.5, 30.25});
  cpu_ts.invalidate(2);
  db.metrics().put(vm, cpu, cpu_ts);
  db.metrics().put(flow, thr, {1.0, 2.0, 3.0});
  return db;
}

TEST(CsvRoundTrip, PreservesEverything) {
  const auto original = sample_db();
  std::stringstream entities, assocs, metrics;
  telemetry::export_entities_csv(original, entities);
  telemetry::export_associations_csv(original, assocs);
  telemetry::export_metrics_csv(original, metrics);

  telemetry::ImportError error;
  const auto imported =
      telemetry::import_csv(entities, assocs, metrics, 30.0, &error);
  ASSERT_TRUE(imported.has_value()) << error.message;
  const auto& db = imported->db;

  EXPECT_EQ(imported->entities, 3u);
  EXPECT_EQ(imported->associations, 2u);
  EXPECT_EQ(imported->series, 2u);

  const auto vm = db.find_entity("vm-1");
  const auto flow = db.find_entity("flow, with comma");
  ASSERT_TRUE(vm.valid());
  ASSERT_TRUE(flow.valid());
  EXPECT_EQ(db.entity(vm).type, EntityType::kVm);
  EXPECT_EQ(db.app(db.entity(vm).app).name, "shop");

  // Associations: vm<->host undirected, flow->vm directed preserved.
  bool saw_directed = false;
  for (std::size_t i = 0; i < db.association_count(); ++i) {
    const auto& a = db.association(i);
    if (a.kind == RelationKind::kFlowEndpoint) {
      EXPECT_TRUE(a.directed);
      saw_directed = true;
    }
  }
  EXPECT_TRUE(saw_directed);

  // Metrics: values and validity mask.
  const auto cpu = db.catalog().find("cpu_util");
  ASSERT_TRUE(cpu.valid());
  const auto* ts = db.metrics().find(vm, cpu);
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(ts->size(), 3u);
  EXPECT_DOUBLE_EQ(ts->value(1), 20.5);
  EXPECT_TRUE(ts->is_valid(1));
  EXPECT_FALSE(ts->is_valid(2));
  EXPECT_DOUBLE_EQ(db.metrics().axis().interval(), 30.0);
}

TEST(CsvImport, ReportsMalformedRowsWithLineNumbers) {
  std::stringstream entities("entity_id,type,name,app\n0,vm,ok,\nbad-row\n");
  std::stringstream assocs("entity_a,entity_b,kind,directed\n");
  std::stringstream metrics("entity_id,metric,slice,value,valid\n");
  telemetry::ImportError error;
  const auto result =
      telemetry::import_csv(entities, assocs, metrics, 1.0, &error);
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(error.line, 3u);
  EXPECT_NE(error.message.find("entities"), std::string::npos);
}

TEST(CsvImport, RejectsUnknownEntityReferences) {
  std::stringstream entities("entity_id,type,name,app\n0,vm,a,\n");
  std::stringstream assocs(
      "entity_a,entity_b,kind,directed\n0,99,generic,0\n");
  std::stringstream metrics("entity_id,metric,slice,value,valid\n");
  telemetry::ImportError error;
  EXPECT_FALSE(
      telemetry::import_csv(entities, assocs, metrics, 1.0, &error)
          .has_value());
  EXPECT_NE(error.message.find("unknown entity"), std::string::npos);
}

TEST(CsvImport, FileRoundTripThroughDisk) {
  const auto original = sample_db();
  ASSERT_TRUE(telemetry::export_csv(original, "/tmp/murphy_roundtrip"));
  telemetry::ImportError error;
  const auto imported =
      telemetry::import_csv_files("/tmp/murphy_roundtrip", 30.0, &error);
  ASSERT_TRUE(imported.has_value()) << error.message;
  EXPECT_EQ(imported->entities, 3u);
}

TEST(CsvImport, MissingFilesReportedGracefully) {
  telemetry::ImportError error;
  EXPECT_FALSE(telemetry::import_csv_files("/tmp/does_not_exist_prefix", 1.0,
                                           &error)
                   .has_value());
  EXPECT_FALSE(error.message.empty());
}

// ---------- ascii charts --------------------------------------------------------

TEST(AsciiChart, LineChartMarksExtremes) {
  std::vector<double> ys{0.0, 1.0, 2.0, 3.0, 10.0, 3.0, 2.0};
  eval::ChartOptions opts;
  opts.width = 20;
  opts.height = 6;
  const auto chart = eval::line_chart(ys, opts);
  // Axis labels carry min and max.
  EXPECT_NE(chart.find("10.0"), std::string::npos);
  EXPECT_NE(chart.find("0.0"), std::string::npos);
  EXPECT_NE(chart.find('*'), std::string::npos);
  // Height rows plus the x-axis line.
  EXPECT_GE(std::count(chart.begin(), chart.end(), '\n'), 7);
}

TEST(AsciiChart, MultiSeriesUsesDistinctGlyphsAndLegend) {
  std::vector<eval::Series> series{
      {"murphy", {1.0, 2.0, 3.0}},
      {"sage", {3.0, 2.0, 1.0}},
  };
  const auto chart = eval::multi_line_chart(series);
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find('o'), std::string::npos);
  EXPECT_NE(chart.find("*=murphy"), std::string::npos);
  EXPECT_NE(chart.find("o=sage"), std::string::npos);
}

TEST(AsciiChart, CdfIsMonotoneAlongColumns) {
  // For a single series, scanning columns left to right the plotted row
  // (cumulative fraction) must never decrease.
  std::vector<eval::Series> series{
      {"err", {5.0, 1.0, 3.0, 2.0, 4.0, 2.5, 0.5, 3.5}}};
  eval::ChartOptions opts;
  opts.width = 24;
  opts.height = 8;
  const auto chart = eval::cdf_chart(series, opts);
  EXPECT_NE(chart.find("x-range"), std::string::npos);

  // Parse the canvas rows between the axis label columns.
  std::vector<std::string> rows;
  std::istringstream in(chart);
  std::string line;
  while (std::getline(in, line))
    if (line.size() > 11 && line[10] == '|') rows.push_back(line.substr(11));
  ASSERT_EQ(rows.size(), 8u);
  int last_best = 8;  // row index of the highest mark so far (0 = top)
  for (std::size_t col = 0; col < 24; ++col) {
    for (int r = 0; r < 8; ++r) {
      if (rows[r].size() > col && rows[r][col] == '*') {
        EXPECT_LE(r, last_best) << "CDF went down at column " << col;
        last_best = r;
        break;
      }
    }
  }
}

TEST(AsciiChart, ConstantSeriesDoesNotDivideByZero) {
  std::vector<double> ys(10, 5.0);
  const auto chart = eval::line_chart(ys);
  EXPECT_NE(chart.find('*'), std::string::npos);
}

TEST(AsciiChart, EmptySeriesRendersAxesOnly) {
  const auto chart = eval::line_chart({});
  EXPECT_NE(chart.find('+'), std::string::npos);
}

}  // namespace
}  // namespace murphy
