#include "src/telemetry/metric_catalog.h"

#include <cassert>

namespace murphy::telemetry {

MetricKindId MetricCatalog::intern(std::string_view name) {
  if (auto it = index_.find(std::string(name)); it != index_.end())
    return it->second;
  const MetricKindId id(static_cast<std::uint32_t>(names_.size()));
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

MetricKindId MetricCatalog::find(std::string_view name) const {
  if (auto it = index_.find(std::string(name)); it != index_.end())
    return it->second;
  return MetricKindId::invalid();
}

std::string_view MetricCatalog::name(MetricKindId id) const {
  assert(id.valid() && id.value() < names_.size());
  return names_[id.value()];
}

}  // namespace murphy::telemetry
