// Structured diagnosis audit trail.
//
// Murphy's output is a ranked list; its *defense* is the per-candidate
// evidence behind every rank. The audit trail captures that evidence — one
// record per evaluated candidate with its anomaly-score components, the
// counterfactual verdict (p-value, factual vs counterfactual symptom means)
// and its path through the relationship graph — serialized as JSONL so a
// ranking can be replayed, diffed and explained long after the run. Every
// field is a deterministic function of the diagnosis inputs, so audit files
// are byte-identical across runs and thread counts.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/ids.h"

namespace murphy::obs {

// The evidence for one candidate root cause.
struct CandidateAudit {
  EntityId entity;
  std::string entity_name;
  std::string driver_metric;   // the candidate's most anomalous metric
  double anomaly_z = 0.0;      // robust z of the driver metric
  double rank_score = 0.0;     // z scaled by relative excursion (ordering key)
  bool self_symptom = false;   // candidate == symptom entity
  bool evaluated = false;      // counterfactual sampler actually ran
  bool fast_path = false;      // vectorized fast-inference kernel ran it
  bool accepted = false;       // made the ranked list
  double p_value = 1.0;        // one-sided Welch t-test
  double mean_factual = 0.0;
  double mean_counterfactual = 0.0;
  // mean_counterfactual - mean_factual: how far nudging the candidate toward
  // normal moved the symptom metric.
  double counterfactual_delta = 0.0;
  std::uint64_t path_len = 0;  // resampled shortest-path-subgraph size
  std::uint64_t rank = 0;      // 1-based position in the result, 0 = absent
  // Explanation path root -> symptom (entity names), accepted candidates
  // only.
  std::vector<std::string> path;
};

// One full diagnosis: header context plus all candidate records, sorted by
// entity id (a stable order independent of evaluation scheduling).
struct DiagnosisAudit {
  std::string scheme;
  std::string symptom_entity;
  std::string symptom_metric;
  std::uint64_t now = 0;
  std::uint64_t graph_nodes = 0;
  std::uint64_t variables = 0;
  // Watchdog linkage: the incident this diagnosis was auto-enqueued for
  // (DESIGN.md §10). 0 = not incident-driven (the request-driven paths never
  // set it). The watchdog stamps this after the run completes, so one
  // incident's lifecycle journal and its per-candidate evidence join on id.
  std::uint64_t incident_id = 0;
  std::vector<CandidateAudit> candidates;

  [[nodiscard]] bool empty() const {
    return scheme.empty() && candidates.empty();
  }
};

// JSONL rendering: one {"type":"diagnosis",...} header line followed by one
// {"type":"candidate",...} line per record. Deterministic (numbers printed
// with round-trip precision, fixed key order).
[[nodiscard]] std::string to_jsonl(const DiagnosisAudit& audit);

// Parses to_jsonl output back (used by tests and offline tooling). Expects
// exactly one header line; candidate lines follow in file order.
[[nodiscard]] bool parse_jsonl(std::string_view text, DiagnosisAudit& out,
                               std::string* error = nullptr);

// ---------------------------------------------------------------------------
// Incident lifecycle journal (the always-on watchdog, DESIGN.md §10).
//
// Every incident state transition is one record; the journal is the
// append-only JSONL file murphyd writes alongside the per-candidate
// diagnosis audit, joined on incident_id. Every field is a deterministic
// function of the replayed telemetry (slice indices, never wall clocks), so
// the journal is byte-identical across ingest thread counts and service
// worker counts — the watchdog determinism harness diffs it directly.

struct IncidentEvent {
  std::uint64_t incident_id = 0;
  // "open" | "attach" | "enqueue" | "refire" | "diagnosed" |
  // "diagnosis_failed" | "resolve"
  std::string event;
  std::uint64_t slice = 0;  // axis slice the transition was observed at
  std::string entity;       // primary symptom entity (attach: the new member)
  std::string metric;       // driver metric of the firing series
  double severity = 0.0;    // max streaming |z| over the incident's members
  std::int64_t priority = 0;   // enqueue/refire: queue priority used
  std::uint64_t refires = 0;   // escalation count so far
  std::string state;           // incident state AFTER the transition
  // diagnosed: top-ranked root-cause entity names (best first).
  std::vector<std::string> causes;
};

// One JSON object per event, in order; deterministic rendering (fixed key
// order, round-trip number precision).
[[nodiscard]] std::string to_jsonl(std::span<const IncidentEvent> events);
[[nodiscard]] std::string to_json(const IncidentEvent& event);

// Parses to_jsonl output back; appends to `out` in file order.
[[nodiscard]] bool parse_incident_jsonl(std::string_view text,
                                        std::vector<IncidentEvent>& out,
                                        std::string* error = nullptr);

}  // namespace murphy::obs
