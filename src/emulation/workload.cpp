#include "src/emulation/workload.h"

#include <algorithm>
#include <cmath>

namespace murphy::emulation {

std::vector<double> steady_load(std::size_t slices, double rps, double jitter,
                                Rng& rng) {
  std::vector<double> out(slices);
  for (auto& v : out) v = std::max(0.0, rps * (1.0 + rng.normal(0.0, jitter)));
  return out;
}

std::vector<double> step_load(std::size_t slices, double base_rps,
                              double high_rps, TimeIndex ramp_at,
                              std::size_t duration, double jitter, Rng& rng) {
  std::vector<double> out(slices);
  for (std::size_t t = 0; t < slices; ++t) {
    const bool high = t >= ramp_at && t < ramp_at + duration;
    const double rps = high ? high_rps : base_rps;
    out[t] = std::max(0.0, rps * (1.0 + rng.normal(0.0, jitter)));
  }
  return out;
}

void add_burst(std::vector<double>& schedule, TimeIndex at,
               std::size_t duration, double factor) {
  const std::size_t end = std::min(schedule.size(), at + duration);
  for (std::size_t t = at; t < end; ++t) schedule[t] *= factor;
}

std::vector<double> diurnal_load(std::size_t slices, double rps,
                                 double amplitude, std::size_t period,
                                 double jitter, Rng& rng) {
  std::vector<double> out(slices);
  const double two_pi = 2.0 * 3.14159265358979323846;
  for (std::size_t t = 0; t < slices; ++t) {
    const double phase =
        two_pi * static_cast<double>(t) / static_cast<double>(period);
    const double mod = 1.0 + amplitude * std::sin(phase);
    out[t] = std::max(0.0, rps * mod * (1.0 + rng.normal(0.0, jitter)));
  }
  return out;
}

}  // namespace murphy::emulation
