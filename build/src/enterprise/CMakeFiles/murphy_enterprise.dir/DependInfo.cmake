
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/enterprise/dynamics.cpp" "src/enterprise/CMakeFiles/murphy_enterprise.dir/dynamics.cpp.o" "gcc" "src/enterprise/CMakeFiles/murphy_enterprise.dir/dynamics.cpp.o.d"
  "/root/repo/src/enterprise/incidents.cpp" "src/enterprise/CMakeFiles/murphy_enterprise.dir/incidents.cpp.o" "gcc" "src/enterprise/CMakeFiles/murphy_enterprise.dir/incidents.cpp.o.d"
  "/root/repo/src/enterprise/metrics_dataset.cpp" "src/enterprise/CMakeFiles/murphy_enterprise.dir/metrics_dataset.cpp.o" "gcc" "src/enterprise/CMakeFiles/murphy_enterprise.dir/metrics_dataset.cpp.o.d"
  "/root/repo/src/enterprise/topology.cpp" "src/enterprise/CMakeFiles/murphy_enterprise.dir/topology.cpp.o" "gcc" "src/enterprise/CMakeFiles/murphy_enterprise.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/murphy_common.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/murphy_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
