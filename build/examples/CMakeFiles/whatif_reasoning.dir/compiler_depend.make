# Empty compiler generated dependencies file for whatif_reasoning.
# This may be replaced when dependencies are built.
