#include "src/enterprise/incidents.h"

#include <cassert>

#include "src/telemetry/metric_catalog.h"

namespace murphy::enterprise {
namespace {

namespace mk = telemetry::metrics;

// Shared context while scripting one incident.
struct Builder {
  EnterpriseIncident incident;
  Rng rng;
  TimeIndex t0;  // incident window start
  TimeIndex t1;  // incident window end
  std::vector<Perturbation> perturbations;

  Topology& topo() { return incident.topo; }

  // Adds a perturbation over the incident window and remembers the entity
  // it touched for the `injected` diagnostics list.
  void perturb(PerturbationKind kind, std::size_t target, double magnitude,
               EntityId touched) {
    perturbations.push_back(Perturbation{kind, target, t0, t1, magnitude});
    incident.injected.push_back(touched);
  }

  // Background noise incidents elsewhere in the environment so the trace
  // isn't suspiciously clean: short demand bumps on unrelated apps earlier
  // in the week, and — crucially — some *concurrent* with the incident
  // window. Production incidents never happen against a quiet backdrop;
  // concurrent-but-unrelated activity is exactly what correlation-based
  // schemes mistake for root causes.
  void add_background(std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t app = rng.below(topo().apps.size());
      const TimeIndex at = rng.below(t0 > 30 ? t0 - 20 : 1);
      perturbations.push_back(Perturbation{PerturbationKind::kAppDemandSurge,
                                           app, at, at + 6 + rng.below(10),
                                           1.5 + 0.5 * rng.uniform()});
    }
    // Concurrent confounders: a couple of unrelated apps surge (or an
    // unrelated VM runs hot) during the incident itself.
    const std::size_t concurrent = 1 + count / 2;
    for (std::size_t i = 0; i < concurrent; ++i) {
      if (rng.chance(0.5)) {
        perturbations.push_back(
            Perturbation{PerturbationKind::kAppDemandSurge,
                         rng.below(topo().apps.size()), t0, t1,
                         1.8 + rng.uniform()});
      } else {
        const std::size_t vm = rng.below(topo().vms.size());
        perturbations.push_back(Perturbation{PerturbationKind::kVmCpuSpike,
                                             vm, t0, t1,
                                             30.0 + 30.0 * rng.uniform()});
        incident.injected.push_back(topo().vms[vm]);
      }
    }
  }
};

Builder start(int number, std::string description,
              const IncidentDatasetOptions& opts, bool calibration = false) {
  Builder b{EnterpriseIncident{}, Rng(opts.seed + 7919u * number), 0, 0, {}};
  b.incident.number = number;
  b.incident.description = std::move(description);
  b.incident.calibration = calibration;

  TopologyOptions topt = opts.topology;
  topt.seed = opts.seed + 104729u * number;
  b.incident.topo = generate_topology(topt);

  // Incident occupies the final stretch of the one-week window, so online
  // training sees a few in-incident points (§4.2).
  const std::size_t slices = opts.dynamics.slices;
  b.t0 = slices - slices / 12;  // last ~8% of the trace
  b.t1 = slices;
  b.incident.incident_start = b.t0;
  b.incident.incident_end = b.t1;
  return b;
}

EnterpriseIncident finish(Builder&& b, const IncidentDatasetOptions& opts) {
  DynamicsOptions dopt = opts.dynamics;
  dopt.seed = opts.seed + 31u * b.incident.number;
  generate_dynamics(b.incident.topo, b.perturbations, dopt);
  assert(b.incident.symptom_entity.valid());
  assert(!b.incident.ground_truth.empty());
  return std::move(b.incident);
}

// Convenience pickers on the first app (the "affected application").
struct AppPick {
  AppId app;
  std::vector<std::size_t> web, mid, db;
};

AppPick pick_app(Topology& topo, std::size_t app_index = 0) {
  AppPick p;
  p.app = topo.apps[app_index];
  const auto& tier = topo.app_tiers[app_index];
  p.web = tier.web;
  p.mid = tier.app;
  p.db = tier.db;
  return p;
}

// Finds a flow inside the app, preferring one that ends at `dst_vm`.
std::size_t flow_to(const Topology& topo, std::size_t dst_vm) {
  for (std::size_t f = 0; f < topo.flows.size(); ++f)
    if (topo.flows[f].dst_vm == dst_vm) return f;
  for (std::size_t f = 0; f < topo.flows.size(); ++f)
    if (topo.flows[f].src_vm == dst_vm) return f;
  return 0;
}

}  // namespace

EnterpriseIncident make_incident(int number,
                                 const IncidentDatasetOptions& opts) {
  switch (number) {
    case 1: {
      // Two app nodes crashed due to a plugin: two mid-tier VMs go down;
      // symptom is the web tier losing its backends (net rx collapse). A
      // demand surge elsewhere provides correlated red herrings.
      Builder b = start(1, "Two app nodes crashed due to a plugin", opts);
      auto pick = pick_app(b.topo());
      const std::size_t vm1 = pick.mid[0];
      const std::size_t vm2 = pick.mid[pick.mid.size() > 1 ? 1 : 0];
      b.perturb(PerturbationKind::kVmCrash, vm1, 1.0, b.topo().vms[vm1]);
      if (vm2 != vm1)
        b.perturb(PerturbationKind::kVmCrash, vm2, 1.0, b.topo().vms[vm2]);
      b.add_background(3);
      b.incident.symptom_entity = b.topo().vms[pick.web[0]];
      b.incident.symptom_metric = std::string(mk::kNetRx);
      b.incident.ground_truth = {b.topo().vms[vm1], b.topo().vms[vm2]};
      return finish(std::move(b), opts);
    }
    case 2: {
      // The Fig. 1 crawler incident: a heavy-hitter flow into the web tier
      // drives surging backend flows and high CPU on a backend VM.
      // Calibration incident (ground truth fully validated with operators).
      Builder b = start(2, "App returning a 502 error", opts,
                        /*calibration=*/true);
      auto pick = pick_app(b.topo());
      const Topology& topo = b.topo();
      // Trace the actual two-hop chain: a web->mid flow (the crawler's
      // traffic into the frontend tier) followed by a mid->backend flow, so
      // the surge demonstrably propagates to the symptom VM.
      const std::size_t frontend = pick.web[0];
      std::size_t crawler_flow = SIZE_MAX, backend = SIZE_MAX;
      for (std::size_t f1 = 0; f1 < topo.flows.size(); ++f1) {
        if (topo.flows[f1].src_vm != frontend) continue;
        const std::size_t mid = topo.flows[f1].dst_vm;
        for (std::size_t f2 = 0; f2 < topo.flows.size(); ++f2) {
          if (topo.flows[f2].src_vm == mid &&
              topo.flows[f2].dst_vm != frontend) {
            crawler_flow = f1;
            backend = topo.flows[f2].dst_vm;
            break;
          }
        }
        if (crawler_flow != SIZE_MAX) break;
      }
      if (crawler_flow == SIZE_MAX) {  // degenerate topology fallback
        crawler_flow = flow_to(topo, frontend);
        backend = topo.flows[crawler_flow].dst_vm;
      }
      b.perturb(PerturbationKind::kFlowSurge, crawler_flow, 30.0,
                b.topo().flows[crawler_flow].id);
      b.incident.symptom_entity = b.topo().vms[backend];
      b.incident.symptom_metric = std::string(mk::kCpuUtil);
      b.incident.ground_truth = {b.topo().flows[crawler_flow].id};
      return finish(std::move(b), opts);
    }
    case 3: {
      // App unavailable: the backing datastore filled up; db VM can no
      // longer write, web tier throughput collapses.
      Builder b = start(3, "App unavailable", opts);
      auto pick = pick_app(b.topo());
      const std::size_t dbvm = pick.db[0];
      const std::size_t ds = b.topo().vm_datastore[dbvm];
      b.perturb(PerturbationKind::kDatastoreFill, ds, 99.0,
                b.topo().datastores[ds]);
      b.perturb(PerturbationKind::kVmCpuSpike, dbvm, 55.0,
                b.topo().vms[dbvm]);  // IO-wait burning CPU
      b.add_background(4);
      b.incident.symptom_entity = b.topo().vms[pick.web[0]];
      b.incident.symptom_metric = std::string(mk::kNetRx);
      b.incident.ground_truth = {b.topo().datastores[ds]};
      return finish(std::move(b), opts);
    }
    case 4: {
      // App slow / timeouts: congested ToR port on the db host's uplink
      // inflates flow RTTs.
      Builder b = start(4, "App slow, experiencing timeouts", opts);
      auto pick = pick_app(b.topo());
      const std::size_t dbvm = pick.db[0];
      const std::size_t port = b.topo().host_tor_port[b.topo().vm_host[dbvm]];
      b.perturb(PerturbationKind::kPortCongestion, port, 900.0,
                b.topo().switch_ports[port]);
      b.add_background(2);
      const std::size_t f = flow_to(b.topo(), dbvm);
      b.incident.symptom_entity = b.topo().flows[f].id;
      b.incident.symptom_metric = std::string(mk::kRtt);
      b.incident.ground_truth = {b.topo().switch_ports[port]};
      return finish(std::move(b), opts);
    }
    case 5: {
      // App unavailable: sole web VM crashed.
      Builder b = start(5, "App unavailable", opts);
      auto pick = pick_app(b.topo());
      const std::size_t vm = pick.web[0];
      b.perturb(PerturbationKind::kVmCrash, vm, 1.0, b.topo().vms[vm]);
      b.add_background(3);
      const std::size_t f = flow_to(b.topo(), vm);
      b.incident.symptom_entity = b.topo().flows[f].id;
      b.incident.symptom_metric = std::string(mk::kThroughput);
      b.incident.ground_truth = {b.topo().vms[vm]};
      return finish(std::move(b), opts);
    }
    case 6: {
      // App redirecting to a maintenance page: a deployment VM hammering
      // the db tier during an (unannounced) upgrade.
      Builder b = start(6, "App redirecting to a maintenance page", opts);
      auto pick = pick_app(b.topo());
      const std::size_t deployer = pick.mid.back();
      b.perturb(PerturbationKind::kVmCpuSpike, deployer, 70.0,
                b.topo().vms[deployer]);
      // The (unannounced) upgrade leaves a trail in the config-event log,
      // which Murphy surfaces alongside the metric-driven diagnosis.
      b.topo().db.config_events().record(telemetry::ConfigEvent{
          telemetry::ConfigEventKind::kConfigPushed,
          b.topo().vms[deployer], b.t0, "maintenance-mode rollout"});
      const std::size_t f = flow_to(b.topo(), deployer);
      b.perturb(PerturbationKind::kFlowSurge, f, 6.0, b.topo().flows[f].id);
      b.add_background(3);
      b.incident.symptom_entity = b.topo().vms[pick.web[0]];
      b.incident.symptom_metric = std::string(mk::kNetRx);
      b.incident.ground_truth = {b.topo().vms[deployer]};
      return finish(std::move(b), opts);
    }
    case 7: {
      // Heap memory issue with a node: memory leak on one VM.
      Builder b = start(7, "Heap memory issue with a node", opts);
      auto pick = pick_app(b.topo());
      const std::size_t vm = pick.mid[0];
      b.perturb(PerturbationKind::kVmMemLeak, vm, 60.0, b.topo().vms[vm]);
      b.add_background(2);
      b.incident.symptom_entity = b.topo().vms[vm];
      b.incident.symptom_metric = std::string(mk::kMemUtil);
      b.incident.ground_truth = {b.topo().vms[vm]};
      return finish(std::move(b), opts);
    }
    case 8: {
      // App performance degradation: noisy-neighbor VM of *another* app on
      // the same host saturates the host CPU. Red herrings abound because
      // every co-located VM's metrics move.
      Builder b = start(8, "App performance degradation", opts);
      auto pick = pick_app(b.topo());
      const std::size_t victim = pick.mid[0];
      const std::size_t host = b.topo().vm_host[victim];
      // Find a VM of a different app on the same host; fall back to any VM
      // on the host.
      std::size_t neighbor = victim;
      for (std::size_t v = 0; v < b.topo().vms.size(); ++v) {
        if (b.topo().vm_host[v] == host && b.topo().vm_app[v] != pick.app) {
          neighbor = v;
          break;
        }
      }
      if (neighbor == victim) {
        b.perturb(PerturbationKind::kHostOverload, host, 70.0,
                  b.topo().hosts[host]);
        b.incident.ground_truth = {b.topo().hosts[host]};
      } else {
        b.perturb(PerturbationKind::kVmCpuSpike, neighbor, 85.0,
                  b.topo().vms[neighbor]);
        b.incident.ground_truth = {b.topo().vms[neighbor]};
      }
      b.add_background(5);
      b.incident.symptom_entity = b.topo().vms[victim];
      b.incident.symptom_metric = std::string(mk::kCpuUtil);
      return finish(std::move(b), opts);
    }
    case 9: {
      // App failing with 503: stuck process saturating the web VM itself.
      Builder b = start(9, "App failing with 503 error", opts);
      auto pick = pick_app(b.topo());
      const std::size_t vm = pick.web[0];
      b.perturb(PerturbationKind::kVmCpuSpike, vm, 80.0, b.topo().vms[vm]);
      b.add_background(2);
      b.incident.symptom_entity = b.topo().vms[vm];
      b.incident.symptom_metric = std::string(mk::kCpuUtil);
      b.incident.ground_truth = {b.topo().vms[vm]};
      return finish(std::move(b), opts);
    }
    case 10: {
      // Health checks failing on 2 nodes: heavy flows hammer both nodes.
      // Operators resolved it by rebooting the nodes, so the operator
      // ground truth is the two VMs — the flows Murphy (correctly) flags
      // count as false positives under this ground truth (§6.2).
      Builder b = start(10, "Health check failing on 2 nodes", opts);
      auto pick = pick_app(b.topo());
      const std::size_t vm1 = pick.mid[0];
      const std::size_t vm2 =
          pick.mid.size() > 1 ? pick.mid[1] : pick.db[0];
      const std::size_t f1 = flow_to(b.topo(), vm1);
      const std::size_t f2 = flow_to(b.topo(), vm2);
      b.perturb(PerturbationKind::kFlowSurge, f1, 9.0,
                b.topo().flows[f1].id);
      if (f2 != f1)
        b.perturb(PerturbationKind::kFlowSurge, f2, 9.0,
                  b.topo().flows[f2].id);
      b.add_background(3);
      b.incident.symptom_entity = b.topo().vms[vm1];
      b.incident.symptom_metric = std::string(mk::kCpuUtil);
      b.incident.ground_truth = {b.topo().vms[vm1], b.topo().vms[vm2]};
      return finish(std::move(b), opts);
    }
    case 11: {
      // Maintenance-page redirect again, different app: overloaded shared
      // host this time.
      Builder b = start(11, "App redirecting to a maintenance page", opts);
      auto pick = pick_app(b.topo(), 1);
      const std::size_t vm = pick.web[0];
      const std::size_t host = b.topo().vm_host[vm];
      b.perturb(PerturbationKind::kHostOverload, host, 60.0,
                b.topo().hosts[host]);
      b.topo().db.config_events().record(telemetry::ConfigEvent{
          telemetry::ConfigEventKind::kVmMigrated, b.topo().vms[vm],
          b.t0 > 2 ? b.t0 - 2 : 0, "DRS rebalance onto contended host"});
      b.add_background(4);
      b.incident.symptom_entity = b.topo().vms[vm];
      b.incident.symptom_metric = std::string(mk::kCpuUtil);
      b.incident.ground_truth = {b.topo().hosts[host]};
      return finish(std::move(b), opts);
    }
    case 12: {
      // Slowness loading data: another app's surge overloads a shared db
      // backend through a cross-app flow. Many correlated entities.
      Builder b = start(12, "Slowness in loading data", opts);
      // Find a cross-app flow; its destination app is the victim.
      std::size_t xflow = SIZE_MAX;
      for (std::size_t f = 0; f < b.topo().flows.size(); ++f) {
        const auto& fl = b.topo().flows[f];
        if (b.topo().vm_app[fl.src_vm] != b.topo().vm_app[fl.dst_vm]) {
          xflow = f;
          break;
        }
      }
      if (xflow == SIZE_MAX) xflow = 0;  // degenerate topologies
      const auto& fl = b.topo().flows[xflow];
      const std::size_t src_app_idx = b.topo().vm_app[fl.src_vm].value();
      b.perturb(PerturbationKind::kAppDemandSurge, src_app_idx, 5.0,
                b.topo().flows[xflow].id);
      b.perturb(PerturbationKind::kFlowSurge, xflow, 8.0,
                b.topo().flows[xflow].id);
      b.add_background(5);
      b.incident.symptom_entity = b.topo().vms[fl.dst_vm];
      b.incident.symptom_metric = std::string(mk::kCpuUtil);
      b.incident.ground_truth = {b.topo().flows[xflow].id};
      return finish(std::move(b), opts);
    }
    case 13: {
      // Performance alert about a node exceeding thresholds: the simplest
      // incident — one VM's CPU crosses the alert threshold. Calibration
      // incident.
      Builder b = start(13, "Performance alert: node exceeding thresholds",
                        opts, /*calibration=*/true);
      auto pick = pick_app(b.topo());
      const std::size_t vm = pick.db.back();
      b.perturb(PerturbationKind::kVmCpuSpike, vm, 65.0, b.topo().vms[vm]);
      b.incident.symptom_entity = b.topo().vms[vm];
      b.incident.symptom_metric = std::string(mk::kCpuUtil);
      b.incident.ground_truth = {b.topo().vms[vm]};
      return finish(std::move(b), opts);
    }
    default:
      assert(false && "incident number must be 1..13");
      return EnterpriseIncident{};
  }
}

std::vector<EnterpriseIncident> make_incident_dataset(
    const IncidentDatasetOptions& opts) {
  std::vector<EnterpriseIncident> out;
  out.reserve(13);
  for (int n = 1; n <= 13; ++n) out.push_back(make_incident(n, opts));
  return out;
}

}  // namespace murphy::enterprise
