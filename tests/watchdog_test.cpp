// The always-on watchdog (DESIGN.md §10): streaming detection, debounced
// triggering, incident lifecycle, and the determinism contract — the
// incident journal is bitwise identical at any ingest thread count and any
// service worker count. The soak here (determinism matrix) is the ASan/TSan
// target in CI.
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <map>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/obs/audit.h"
#include "src/obs/metrics.h"
#include "src/service/diagnosis_service.h"
#include "src/service/feed.h"
#include "src/service/telemetry_stream.h"
#include "src/watchdog/watchdog.h"

namespace murphy::watchdog {
namespace {

using telemetry::EntityType;
using telemetry::MonitoringDb;
using telemetry::RelationKind;

// Chain A -> B -> C -> D with a cpu surge at A (propagating downstream) over
// [surge_begin, surge_end) — the service_test environment with a
// controllable fault window so lifecycle phases (open -> diagnose ->
// resolve) all happen inside the replayed region.
struct ChainEnv {
  MonitoringDb db;
  EntityId a, b, c, d;
  MetricKindId load;
};

ChainEnv make_chain_env(std::size_t slices, std::size_t surge_begin,
                        std::size_t surge_end) {
  ChainEnv e;
  e.a = e.db.add_entity(EntityType::kVm, "A");
  e.b = e.db.add_entity(EntityType::kVm, "B");
  e.c = e.db.add_entity(EntityType::kVm, "C");
  e.d = e.db.add_entity(EntityType::kVm, "D");
  e.db.add_association(e.a, e.b, RelationKind::kGeneric);
  e.db.add_association(e.b, e.c, RelationKind::kGeneric);
  e.db.add_association(e.c, e.d, RelationKind::kGeneric);
  e.load = e.db.catalog().intern("cpu_util");
  e.db.metrics().set_axis(TimeAxis(0.0, 10.0, slices));
  Rng rng(11);
  std::vector<double> va(slices), vb(slices), vc(slices), vd(slices);
  for (std::size_t t = 0; t < slices; ++t) {
    const double surge = t >= surge_begin && t < surge_end ? 14.0 : 0.0;
    va[t] = 6.0 + 2.0 * std::sin(0.07 * t) + rng.normal(0.0, 0.3) + surge;
    vb[t] = 1.6 * va[t] + rng.normal(0.0, 0.3);
    vc[t] = 1.2 * vb[t] + rng.normal(0.0, 0.4);
    vd[t] = 1.1 * vc[t] + rng.normal(0.0, 0.4);
  }
  e.db.metrics().put(e.a, e.load, va);
  e.db.metrics().put(e.b, e.load, vb);
  e.db.metrics().put(e.c, e.load, vc);
  e.db.metrics().put(e.d, e.load, vd);
  return e;
}

service::DiagnosisServiceOptions fast_service_opts(std::size_t workers) {
  service::DiagnosisServiceOptions sopts;
  sopts.num_workers = workers;
  sopts.murphy.sampler.num_samples = 20;
  sopts.murphy.num_threads = 1;
  sopts.murphy.seed = 7;
  return sopts;
}

struct RunResult {
  std::string journal;
  std::string incidents_json;
  std::vector<Incident> incidents;
};

// Replays the feed one slice per scan, splitting each slice's cell batch
// across `ingest_threads` concurrent appenders (the observer notifications
// then arrive in a nondeterministic order — what the determinism contract
// must absorb).
RunResult run_watchdog(const ChainEnv& env, TimeIndex split,
                       std::size_t ingest_threads, std::size_t workers,
                       WatchdogOptions wopts = {},
                       bool collect_audit = false,
                       std::string* audit_jsonl = nullptr) {
  service::ReplayFeed feed = service::make_replay_feed(env.db, split);
  service::TelemetryStream stream(std::move(feed.warm));
  service::DiagnosisServiceOptions sopts = fast_service_opts(workers);
  sopts.murphy.obs.collect_audit = collect_audit;
  service::DiagnosisService svc(stream, sopts);
  Watchdog wd(stream, svc, std::move(wopts));
  wd.attach();

  for (std::size_t i = 0; i < feed.batches.size(); ++i) {
    stream.extend_axis(1);
    const std::vector<service::TelemetryCell>& batch = feed.batches[i];
    if (ingest_threads <= 1) {
      stream.append(batch);
    } else {
      std::vector<std::thread> threads;
      const std::size_t chunk =
          (batch.size() + ingest_threads - 1) / ingest_threads;
      for (std::size_t k = 0; k < ingest_threads; ++k) {
        const std::size_t lo = std::min(k * chunk, batch.size());
        const std::size_t hi = std::min(lo + chunk, batch.size());
        if (lo == hi) continue;
        threads.emplace_back([&stream, &batch, lo, hi] {
          stream.append(std::span<const service::TelemetryCell>(
              batch.data() + lo, hi - lo));
        });
      }
      for (std::thread& t : threads) t.join();
    }
    wd.scan();
  }
  wd.drain();
  wd.detach();

  RunResult r;
  r.journal = wd.journal_jsonl();
  r.incidents_json = to_json(wd.incidents());
  r.incidents = wd.incidents();
  if (audit_jsonl != nullptr) *audit_jsonl = wd.audit_jsonl();
  svc.stop();
  return r;
}

// --- determinism -----------------------------------------------------------

TEST(WatchdogDeterminism, JournalBitwiseStableAcrossThreadAndWorkerCounts) {
  const ChainEnv env = make_chain_env(160, 120, 160);
  const RunResult ref = run_watchdog(env, 100, 1, 0);
  ASSERT_FALSE(ref.journal.empty());
  ASSERT_FALSE(ref.incidents.empty());
  for (const std::size_t ingest_threads : {2UL, 8UL}) {
    for (const std::size_t workers : {0UL, 1UL, 3UL}) {
      const RunResult got = run_watchdog(env, 100, ingest_threads, workers);
      EXPECT_EQ(ref.journal, got.journal)
          << "ingest_threads=" << ingest_threads << " workers=" << workers;
      EXPECT_EQ(ref.incidents_json, got.incidents_json)
          << "ingest_threads=" << ingest_threads << " workers=" << workers;
    }
  }
}

// --- lifecycle properties --------------------------------------------------

TEST(WatchdogLifecycle, SingleFaultYieldsOneDiagnosedIncident) {
  const ChainEnv env = make_chain_env(160, 120, 160);
  WatchdogOptions wopts;
  wopts.z_open = 4.5;  // the chain's tail dilutes z below the default 6
  wopts.z_clear = 2.0;
  const RunResult r = run_watchdog(env, 100, 1, 2, wopts);
  // One fault lighting up the whole chain must coalesce into ONE incident:
  // the co-onset group window attaches the rest of the chain to the first
  // firing entity's incident.
  ASSERT_EQ(r.incidents.size(), 1u);
  const Incident& inc = r.incidents[0];
  EXPECT_EQ(inc.state, IncidentState::kDiagnosed);
  EXPECT_TRUE(inc.diagnosis_ok);
  EXPECT_FALSE(inc.top_causes.empty());
  EXPECT_EQ(inc.members.size(), 4u);
  EXPECT_GT(inc.priority, 0);
  EXPECT_TRUE(std::isfinite(inc.severity));
  // The surge starts at slice 120; detection cannot precede it.
  EXPECT_GE(inc.opened_at, 120u);
  // The fault origin (A, the surge source) must be surfaced: either the
  // watchdog picked it as the primary symptom, or the diagnosis ranked it
  // top-3. (When the symptom IS the origin, the engine's counterfactual
  // ranking favors downstream victims — the primary entity covers it.)
  bool found_a = inc.entity_name == "A";
  for (const std::string& cause : inc.top_causes) found_a |= cause == "A";
  EXPECT_TRUE(found_a) << "fault origin surfaced nowhere: "
                       << to_json(inc);
}

TEST(WatchdogLifecycle, EveryIncidentEndsDiagnosedOrResolved) {
  const ChainEnv env = make_chain_env(200, 110, 135);
  const RunResult r = run_watchdog(env, 100, 1, 1);
  ASSERT_FALSE(r.incidents.empty());
  for (const Incident& inc : r.incidents) {
    EXPECT_TRUE(inc.state == IncidentState::kDiagnosed ||
                inc.state == IncidentState::kResolved)
        << "incident " << inc.id << " stuck in "
        << std::string(to_string(inc.state));
    EXPECT_TRUE(std::isfinite(inc.severity));
  }
}

TEST(WatchdogLifecycle, SymptomClearanceAutoResolves) {
  // Surge over [110, 135), then 65 clean slices: the incident must resolve
  // (hysteresis clear -> resolve_streak quiet scans) before the feed ends.
  const ChainEnv env = make_chain_env(200, 110, 135);
  const RunResult r = run_watchdog(env, 100, 1, 1);
  ASSERT_EQ(r.incidents.size(), 1u);
  const Incident& inc = r.incidents[0];
  EXPECT_EQ(inc.state, IncidentState::kResolved);
  EXPECT_GT(inc.resolved_at, inc.opened_at);
  // Resolution must land after the fault window ended.
  EXPECT_GE(inc.resolved_at, 135u);
  // It was diagnosed before it resolved.
  EXPECT_TRUE(inc.diagnosis_ok);
}

TEST(WatchdogLifecycle, JournalTransitionsAreWellFormed) {
  const ChainEnv env = make_chain_env(200, 110, 135);
  const RunResult r = run_watchdog(env, 100, 1, 1);
  std::vector<obs::IncidentEvent> events;
  std::string error;
  ASSERT_TRUE(obs::parse_incident_jsonl(r.journal, events, &error)) << error;
  ASSERT_FALSE(events.empty());
  // Per incident: exactly one "open", it comes first; "diagnosed" only after
  // an "enqueue"; nothing after "resolve"; slices are monotone.
  std::map<std::uint64_t, std::vector<const obs::IncidentEvent*>> by_id;
  for (const obs::IncidentEvent& ev : events)
    by_id[ev.incident_id].push_back(&ev);
  for (const auto& [id, evs] : by_id) {
    EXPECT_EQ(evs.front()->event, "open") << "incident " << id;
    std::size_t opens = 0;
    std::size_t enqueues = 0;
    std::uint64_t prev_slice = 0;
    for (std::size_t i = 0; i < evs.size(); ++i) {
      const obs::IncidentEvent& ev = *evs[i];
      EXPECT_GE(ev.slice, prev_slice) << "incident " << id;
      prev_slice = ev.slice;
      EXPECT_TRUE(std::isfinite(ev.severity));
      if (ev.event == "open") ++opens;
      if (ev.event == "enqueue") ++enqueues;
      if (ev.event == "diagnosed") EXPECT_GT(enqueues, 0u);
      if (i + 1 < evs.size()) EXPECT_NE(ev.event, "resolve");
    }
    EXPECT_EQ(opens, 1u) << "incident " << id;
  }
}

// --- audit linkage ---------------------------------------------------------

TEST(WatchdogAudit, DiagnosisAuditsCarryIncidentId) {
  const ChainEnv env = make_chain_env(160, 120, 160);
  std::string audit_jsonl;
  const RunResult r = run_watchdog(env, 100, 1, 1, {}, /*collect_audit=*/true,
                                   &audit_jsonl);
  ASSERT_EQ(r.incidents.size(), 1u);
  ASSERT_FALSE(audit_jsonl.empty());
  obs::DiagnosisAudit audit;
  std::string error;
  ASSERT_TRUE(obs::parse_jsonl(audit_jsonl, audit, &error)) << error;
  EXPECT_EQ(audit.incident_id, r.incidents[0].id);
  EXPECT_FALSE(audit.candidates.empty());
}

// --- chaos: corrupted telemetry cannot open phantom incidents --------------

TEST(WatchdogChaos, NonFiniteAndConstantStreamsOpenNothing) {
  // Two pathological entities: X streams a constant column, Y streams NaN/
  // +-Inf garbage. Neither may ever open an incident — non-finite cells are
  // sanitized to missing at ingest and skipped by the detector, and the
  // sigma floor keeps a constant baseline from manufacturing z out of
  // nothing.
  MonitoringDb db;
  const EntityId x = db.add_entity(EntityType::kVm, "X");
  const EntityId y = db.add_entity(EntityType::kVm, "Y");
  db.add_association(x, y, RelationKind::kGeneric);
  const MetricKindId load = db.catalog().intern("cpu_util");
  const std::size_t slices = 120;
  db.metrics().set_axis(TimeAxis(0.0, 10.0, slices));
  std::vector<double> vx(slices, 42.0);
  std::vector<double> vy(slices, 1.0);
  db.metrics().put(x, load, vx);
  db.metrics().put(y, load, vy);

  service::ReplayFeed feed = service::make_replay_feed(db, 60);
  service::TelemetryStream stream(std::move(feed.warm));
  service::DiagnosisService svc(stream, fast_service_opts(1));
  Watchdog wd(stream, svc, {});
  wd.attach();
  Rng rng(3);
  for (std::size_t i = 0; i < feed.batches.size(); ++i) {
    stream.extend_axis(1);
    std::vector<service::TelemetryCell> batch = feed.batches[i];
    for (service::TelemetryCell& c : batch) {
      if (c.entity == y) {
        // Corrupt Y wholesale: NaN / +-Inf, occasionally a huge-but-finite
        // sentinel dropped to NaN by the next pass.
        const double roll = rng.uniform();
        c.value = roll < 0.4   ? std::numeric_limits<double>::quiet_NaN()
                  : roll < 0.7 ? std::numeric_limits<double>::infinity()
                               : -std::numeric_limits<double>::infinity();
      }
    }
    stream.append(batch);
    wd.scan();
  }
  wd.drain();
  wd.detach();
  EXPECT_TRUE(wd.incidents().empty())
      << "phantom incident from corrupted telemetry: "
      << to_json(wd.incidents());
  EXPECT_TRUE(wd.journal().empty());
  svc.stop();
}

TEST(WatchdogChaos, CorruptionDoesNotPoisonRealDetection) {
  // NaN-bomb one series of the chain while the real surge runs: the
  // incident still opens, and every severity in the journal stays finite.
  const ChainEnv env = make_chain_env(160, 120, 160);
  service::ReplayFeed feed = service::make_replay_feed(env.db, 100);
  service::TelemetryStream stream(std::move(feed.warm));
  service::DiagnosisService svc(stream, fast_service_opts(1));
  Watchdog wd(stream, svc, {});
  wd.attach();
  for (std::size_t i = 0; i < feed.batches.size(); ++i) {
    stream.extend_axis(1);
    std::vector<service::TelemetryCell> batch = feed.batches[i];
    for (service::TelemetryCell& c : batch)
      if (c.entity == env.c && i % 3 == 0)
        c.value = std::numeric_limits<double>::quiet_NaN();
    stream.append(batch);
    wd.scan();
  }
  wd.drain();
  wd.detach();
  ASSERT_FALSE(wd.incidents().empty());
  for (const obs::IncidentEvent& ev : wd.journal())
    EXPECT_TRUE(std::isfinite(ev.severity)) << obs::to_json(ev);
  for (const Incident& inc : wd.incidents())
    EXPECT_TRUE(std::isfinite(inc.severity));
  svc.stop();
}

// --- observer hook + counters ----------------------------------------------

TEST(WatchdogHook, CommitObserverReportsTouchedSeriesWithEpochs) {
  ChainEnv env = make_chain_env(40, 40, 40);  // no surge
  service::TelemetryStream stream(std::move(env.db));
  std::vector<service::SeriesTouch> seen;
  stream.set_commit_observer(
      [&seen](std::span<const service::SeriesTouch> touches) {
        seen.assign(touches.begin(), touches.end());
      });
  const obs::Counter* cells = obs::global_metrics().counter("ingest.cells");
  const std::uint64_t before = cells->value();
  const std::vector<service::TelemetryCell> batch = {
      {env.a, env.load, 5, 1.0},
      {env.a, env.load, 6, 2.0},  // same series: must dedup to one touch
      {env.b, env.load, 5, 3.0},
  };
  ASSERT_EQ(stream.append(batch), 3u);
  EXPECT_EQ(cells->value() - before, 3u);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].ref, (MetricRef{env.a, env.load}));
  EXPECT_EQ(seen[1].ref, (MetricRef{env.b, env.load}));
  {
    const auto db = stream.read();
    EXPECT_EQ(seen[0].epoch, db->metrics().series_epoch(env.a, env.load));
    EXPECT_EQ(seen[1].epoch, db->metrics().series_epoch(env.b, env.load));
  }
  // Detach: further appends must not notify.
  stream.set_commit_observer(nullptr);
  seen.clear();
  ASSERT_EQ(stream.append(batch), 3u);
  EXPECT_TRUE(seen.empty());
}

TEST(WatchdogHook, CountersTrackScansAndTriggers) {
  const ChainEnv env = make_chain_env(160, 120, 160);
  service::ReplayFeed feed = service::make_replay_feed(env.db, 100);
  service::TelemetryStream stream(std::move(feed.warm));
  service::DiagnosisService svc(stream, fast_service_opts(0));
  obs::MetricsRegistry& m = obs::global_metrics();
  const std::uint64_t scans0 = m.counter("watchdog.scans")->value();
  const std::uint64_t opened0 = m.counter("watchdog.incidents_opened")->value();
  Watchdog wd(stream, svc, {}, &m);
  wd.attach();
  for (std::size_t i = 0; i < feed.batches.size(); ++i) {
    service::replay_slice(stream, feed, i);
    wd.scan();
  }
  wd.drain();
  wd.detach();
  EXPECT_GE(m.counter("watchdog.scans")->value() - scans0,
            feed.batches.size());
  EXPECT_EQ(m.counter("watchdog.incidents_opened")->value() - opened0, 1u);
  svc.stop();
}

}  // namespace
}  // namespace murphy::watchdog
