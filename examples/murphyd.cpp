// murphyd — the diagnosis engine as a long-running service (DESIGN.md §9),
// on the wire (DESIGN.md §12).
//
// Demonstrates the src/service stack end to end: a TelemetryStream fed by a
// replayed telemetry feed (CSV import or the built-in interference
// scenario), a DiagnosisService answering requests concurrently with
// ingestion, and snapshot save/restore for warm restarts. Commands arrive
// as newline-framed lines — on stdin, and/or on a TCP / unix-domain socket
// (--listen / --unix) served by an epoll event loop — one response line
// (OK .../ERR ...) per command:
//
//   DIAGNOSE <entity> <metric> [max_hops] [deadline_ms]
//   INGEST <entity> <metric> <slice> <value>
//   REPLAY [n]            replay the next n feed slices into the stream
//   EXTEND [n]            grow the time axis by n empty slices
//   SNAPSHOT <path>       save a consistent snapshot (diagnoses keep running)
//   STATS                 one-line summary + the full metrics-registry JSON
//   MARKERS               one-line JSON array of T2-style fleet markers
//                         (snapshot-diff since the previous MARKERS/export)
//   INCIDENTS             one-line JSON array of watchdog incidents
//   QUIT
//
// Any command may carry a '#tag' prefix; its response is prefixed with the
// same tag. Over a socket, DIAGNOSE is pipelined: responses are delivered
// when the diagnosis completes, possibly out of order — tag your requests.
// Over stdin the protocol stays strictly request/response (and bytewise
// what it always was). Per-connection in-flight and buffer limits reject
// excess load with explicit ERR lines (see net_server.h); QUIT over a
// socket closes that connection, QUIT/EOF on stdin drains and stops the
// daemon.
//
// With --watchdog the stream's commit observer feeds the always-on watchdog
// (DESIGN.md §10): every replayed slice is scanned, sustained anomalies
// auto-enqueue prioritized diagnoses, and incident lifecycle transitions are
// journaled to stderr as they happen. --marker-every N exports fleet markers
// to stderr every N replayed slices through the same aggregator MARKERS uses.
//
// Usage:
//   murphyd                               # built-in microservice scenario
//   murphyd --csv PREFIX --interval 10    # csv_export dataset
//   murphyd --snapshot FILE               # resume from a snapshot
//   common: --split F (warm fraction, default 0.75) --workers N --queue N
//           --replay-ms M (auto-replay one slice every M ms)
//           --listen PORT (TCP on 127.0.0.1; 0 = ephemeral, port on stderr)
//           --unix PATH (unix-domain listener)
//           --net-inflight N --net-max-conns N (per-connection/server caps)
//           --watchdog --marker-every N --audit-out FILE
//           --fast-inference (vectorized counterfactual kernel, DESIGN.md §11)
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "src/emulation/scenarios.h"
#include "src/obs/markers.h"
#include "src/obs/metrics.h"
#include "src/service/diagnosis_service.h"
#include "src/service/feed.h"
#include "src/service/net_server.h"
#include "src/service/protocol.h"
#include "src/service/telemetry_stream.h"
#include "src/telemetry/csv_import.h"
#include "src/telemetry/snapshot.h"
#include "src/watchdog/watchdog.h"

using namespace murphy;

namespace {

struct Args {
  std::string csv_prefix;
  double interval = 10.0;
  std::string snapshot;
  double split = 0.75;
  std::size_t workers = 2;
  std::size_t queue = 64;
  long replay_ms = 0;  // 0 = manual REPLAY only
  int listen_port = -1;        // -1 = no TCP listener
  std::string unix_path;       // empty = no unix listener
  std::size_t net_inflight = 32;
  std::size_t net_max_conns = 64;
  bool watchdog = false;
  bool fast_inference = false;
  std::size_t marker_every = 0;  // 0 = MARKERS verb only
  std::string audit_out;         // incident-linked diagnosis audits (JSONL)
};

[[noreturn]] void usage_error(const std::string& flag, const std::string& why) {
  std::fprintf(stderr, "murphyd: bad value for %s: %s\n", flag.c_str(),
               why.c_str());
  std::exit(2);
}

// Strict CLI numerics via the protocol's parsers: std::stod/std::stoul
// would throw uncaught on garbage (and stoul happily wraps negatives).
double double_arg(const std::string& flag, const std::string& value) {
  const auto v = service::parse_double(value);
  if (!v.has_value()) usage_error(flag, "'" + value + "' is not a number");
  return *v;
}

std::size_t count_arg(const std::string& flag, const std::string& value) {
  const auto v = service::parse_count(value);
  if (!v.has_value())
    usage_error(flag, "'" + value + "' is not a non-negative integer");
  return static_cast<std::size_t>(*v);
}

std::atomic<bool> g_signalled{false};

void on_signal(int) { g_signalled.store(true); }

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--csv") {
      a.csv_prefix = next();
    } else if (flag == "--interval") {
      a.interval = double_arg(flag, next());
      if (a.interval <= 0.0) usage_error(flag, "must be > 0");
    } else if (flag == "--snapshot") {
      a.snapshot = next();
    } else if (flag == "--split") {
      // An out-of-range fraction would cast to a bogus TimeIndex split
      // (e.g. 1.5 * slices overflows past the axis); reject it here.
      a.split = double_arg(flag, next());
      if (a.split < 0.0 || a.split > 1.0)
        usage_error(flag, "warm fraction must be within [0,1]");
    } else if (flag == "--workers") {
      a.workers = count_arg(flag, next());
    } else if (flag == "--queue") {
      a.queue = count_arg(flag, next());
    } else if (flag == "--replay-ms") {
      a.replay_ms = static_cast<long>(count_arg(flag, next()));
    } else if (flag == "--listen") {
      const std::size_t port = count_arg(flag, next());
      if (port > 65535) usage_error(flag, "port must be within [0,65535]");
      a.listen_port = static_cast<int>(port);
    } else if (flag == "--unix") {
      a.unix_path = next();
    } else if (flag == "--net-inflight") {
      a.net_inflight = count_arg(flag, next());
      if (a.net_inflight == 0) usage_error(flag, "must be >= 1");
    } else if (flag == "--net-max-conns") {
      a.net_max_conns = count_arg(flag, next());
      if (a.net_max_conns == 0) usage_error(flag, "must be >= 1");
    } else if (flag == "--watchdog") {
      a.watchdog = true;
    } else if (flag == "--fast-inference") {
      a.fast_inference = true;
    } else if (flag == "--marker-every") {
      a.marker_every = count_arg(flag, next());
    } else if (flag == "--audit-out") {
      a.audit_out = next();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      std::exit(2);
    }
  }
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);

  // --- source db: snapshot, CSV dataset, or the built-in scenario ----------
  telemetry::MonitoringDb source;
  if (!args.snapshot.empty()) {
    telemetry::SnapshotError err;
    auto loaded = telemetry::load_snapshot_file(args.snapshot, &err);
    if (!loaded.has_value()) {
      std::fprintf(stderr, "snapshot load failed: %s\n", err.message.c_str());
      return 1;
    }
    source = std::move(*loaded);
  } else if (!args.csv_prefix.empty()) {
    telemetry::ImportError err;
    auto imported =
        telemetry::import_csv_files(args.csv_prefix, args.interval, &err);
    if (!imported.has_value()) {
      std::fprintf(stderr, "csv import failed (line %zu): %s\n", err.line,
                   err.message.c_str());
      return 1;
    }
    source = std::move(imported->db);
  } else {
    emulation::InterferenceOptions sopts;
    source = std::move(make_interference_case(sopts).db);
  }

  // --- split into warm prefix + replayable tail -----------------------------
  const std::size_t total = source.metrics().axis().size();
  const auto split =
      static_cast<TimeIndex>(args.split * static_cast<double>(total));
  service::ReplayFeed feed = service::make_replay_feed(source, split);
  service::TelemetryStream stream(std::move(feed.warm));

  service::DiagnosisServiceOptions sopts;
  sopts.num_workers = args.workers;
  sopts.max_queue = args.queue;
  sopts.murphy.num_threads = 1;  // concurrency comes from the worker pool
  // Vectorized counterfactual inference (statistical-equivalence contract;
  // audits and the infer.fast_path counter record the mode per verdict).
  sopts.murphy.fast_inference = args.fast_inference;
  sopts.murphy.obs.metrics = &obs::global_metrics();
  sopts.murphy.obs.collect_audit = !args.audit_out.empty();
  service::DiagnosisService svc(stream, sopts);

  // --- always-on watchdog + fleet-marker export -----------------------------
  watchdog::WatchdogOptions wopts;
  wopts.on_event = [](const obs::IncidentEvent& ev) {
    std::fprintf(stderr, "murphyd incident %s\n", obs::to_json(ev).c_str());
  };
  watchdog::Watchdog wd(stream, svc, std::move(wopts), &obs::global_metrics());
  if (args.watchdog) wd.attach();

  // One aggregator serves both the MARKERS verb and --marker-every exports;
  // each collect() reports the interval since the previous one.
  obs::MarkerAggregator markers;
  std::mutex marker_mu;
  auto export_markers = [&](double interval_sec) {
    std::lock_guard<std::mutex> lock(marker_mu);
    return markers.collect(obs::global_metrics().snapshot(), interval_sec);
  };

  std::atomic<std::size_t> replayed{0};
  std::atomic<bool> quitting{false};

  // One mutex serializes replay (REPLAY verbs — from stdin AND sockets —
  // vs the auto-replay thread); the stream itself is what makes replay safe
  // against diagnoses. The watchdog scan rides here too — one scan per
  // replayed slice, which is the scan schedule the determinism contract is
  // stated against.
  std::mutex replay_mu;
  auto replay_n = [&](std::size_t n) {
    std::lock_guard<std::mutex> lock(replay_mu);
    std::size_t cells = 0;
    while (n-- > 0 && replayed.load() < feed.batches.size()) {
      cells += service::replay_slice(stream, feed, replayed.load());
      replayed.fetch_add(1);
      if (args.watchdog) wd.scan();
      if (args.marker_every > 0 && replayed.load() % args.marker_every == 0) {
        for (const obs::Marker& m :
             export_markers(static_cast<double>(args.marker_every)))
          std::fprintf(stderr, "murphyd marker %s %s\n", m.name.c_str(),
                       obs::marker_payload_json(m).c_str());
      }
    }
    svc.maintain();
    return cells;
  };

  std::thread auto_replay;
  if (args.replay_ms > 0) {
    auto_replay = std::thread([&] {
      while (!quitting.load() && replayed.load() < feed.batches.size()) {
        replay_n(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(args.replay_ms));
      }
    });
  }

  // --- shared verb dispatch + socket front end ------------------------------
  service::ProtocolHooks hooks;
  hooks.replay_n = replay_n;
  hooks.replayed = [&] { return replayed.load(); };
  hooks.export_markers = export_markers;
  hooks.incidents_json = [&] {
    // Serialized against scan() (the replay mutex) — incidents_ is
    // scanner-side state.
    std::lock_guard<std::mutex> lock(replay_mu);
    return watchdog::to_json(wd.incidents());
  };
  hooks.metrics = &obs::global_metrics();
  service::Protocol proto(stream, svc, std::move(hooks));

  service::NetServer net(proto, [&] {
    service::NetServerOptions nopts;
    nopts.tcp_port = args.listen_port;
    nopts.unix_path = args.unix_path;
    nopts.max_inflight_per_conn = args.net_inflight;
    nopts.max_connections = args.net_max_conns;
    return nopts;
  }());
  const bool net_enabled = args.listen_port >= 0 || !args.unix_path.empty();
  if (net_enabled) {
    std::string err;
    if (!net.start(&err)) {
      std::fprintf(stderr, "murphyd: socket front end failed: %s\n",
                   err.c_str());
      return 1;
    }
    if (args.listen_port >= 0)
      std::fprintf(stderr, "murphyd: listening on 127.0.0.1:%d\n",
                   net.tcp_port());
    if (!args.unix_path.empty())
      std::fprintf(stderr, "murphyd: listening on unix:%s\n",
                   args.unix_path.c_str());
  }

  std::fprintf(stderr,
               "murphyd: %zu entities, %zu warm slices, %zu feed slices, %zu "
               "workers\n",
               stream.read()->entity_count(), split, feed.batches.size(),
               args.workers);

  // --- stdin command loop ---------------------------------------------------
  // Blocking dispatch: responses come back in command order, byte-identical
  // to the pre-socket protocol. Sockets get the pipelined path.
  std::string line;
  bool stdin_quit = false;
  while (std::getline(std::cin, line)) {
    std::string out;
    const auto kind = proto.dispatch(
        line, [&](std::string s) { out = std::move(s); },
        /*deliver_async=*/false);
    if (kind == service::Protocol::DispatchKind::kNone) continue;
    std::printf("%s\n", out.c_str());
    std::fflush(stdout);
    if (kind == service::Protocol::DispatchKind::kQuit) {
      stdin_quit = true;
      break;
    }
  }

  // A socket-only deployment closes stdin at launch; keep serving until a
  // signal asks for the drain (stdin QUIT still stops the daemon directly).
  if (net_enabled && !stdin_quit) {
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::fprintf(stderr,
                 "murphyd: stdin closed; serving sockets until "
                 "SIGINT/SIGTERM\n");
    while (!g_signalled.load())
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  quitting.store(true);
  if (auto_replay.joinable()) auto_replay.join();
  // Graceful drain: stop accepting socket traffic, settle every in-flight
  // diagnosis, flush and close — before the watchdog and service wind down.
  net.shutdown();
  if (args.watchdog) {
    // Settle the lifecycle (every incident diagnosed or resolved) before
    // the service stops accepting the watchdog's re-enqueues.
    std::lock_guard<std::mutex> lock(replay_mu);
    wd.drain();
    wd.detach();
    if (!args.audit_out.empty()) {
      std::ofstream out(args.audit_out);
      out << wd.audit_jsonl();
      std::fprintf(stderr, "murphyd: wrote %zu incident audits to %s\n",
                   wd.incidents().size(), args.audit_out.c_str());
    }
  }
  svc.stop();
  return 0;
}
