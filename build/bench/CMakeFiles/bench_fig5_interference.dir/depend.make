# Empty dependencies file for bench_fig5_interference.
# This may be replaced when dependencies are built.
