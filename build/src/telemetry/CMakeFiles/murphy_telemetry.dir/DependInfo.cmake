
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/config_events.cpp" "src/telemetry/CMakeFiles/murphy_telemetry.dir/config_events.cpp.o" "gcc" "src/telemetry/CMakeFiles/murphy_telemetry.dir/config_events.cpp.o.d"
  "/root/repo/src/telemetry/csv_export.cpp" "src/telemetry/CMakeFiles/murphy_telemetry.dir/csv_export.cpp.o" "gcc" "src/telemetry/CMakeFiles/murphy_telemetry.dir/csv_export.cpp.o.d"
  "/root/repo/src/telemetry/csv_import.cpp" "src/telemetry/CMakeFiles/murphy_telemetry.dir/csv_import.cpp.o" "gcc" "src/telemetry/CMakeFiles/murphy_telemetry.dir/csv_import.cpp.o.d"
  "/root/repo/src/telemetry/entity.cpp" "src/telemetry/CMakeFiles/murphy_telemetry.dir/entity.cpp.o" "gcc" "src/telemetry/CMakeFiles/murphy_telemetry.dir/entity.cpp.o.d"
  "/root/repo/src/telemetry/metric_catalog.cpp" "src/telemetry/CMakeFiles/murphy_telemetry.dir/metric_catalog.cpp.o" "gcc" "src/telemetry/CMakeFiles/murphy_telemetry.dir/metric_catalog.cpp.o.d"
  "/root/repo/src/telemetry/metric_store.cpp" "src/telemetry/CMakeFiles/murphy_telemetry.dir/metric_store.cpp.o" "gcc" "src/telemetry/CMakeFiles/murphy_telemetry.dir/metric_store.cpp.o.d"
  "/root/repo/src/telemetry/monitoring_db.cpp" "src/telemetry/CMakeFiles/murphy_telemetry.dir/monitoring_db.cpp.o" "gcc" "src/telemetry/CMakeFiles/murphy_telemetry.dir/monitoring_db.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/murphy_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
