# Empty dependencies file for telemetry_graph_test.
# This may be replaced when dependencies are built.
