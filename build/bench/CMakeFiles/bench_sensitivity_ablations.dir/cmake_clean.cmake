file(REMOVE_RECURSE
  "CMakeFiles/bench_sensitivity_ablations.dir/bench_sensitivity_ablations.cpp.o"
  "CMakeFiles/bench_sensitivity_ablations.dir/bench_sensitivity_ablations.cpp.o.d"
  "bench_sensitivity_ablations"
  "bench_sensitivity_ablations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sensitivity_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
