#include "src/core/symptom_finder.h"

#include <algorithm>
#include <cmath>

#include "src/stats/summary.h"

namespace murphy::core {

std::vector<Symptom> find_symptoms(const telemetry::MonitoringDb& db,
                                   AppId app, TimeIndex now,
                                   const SymptomFinderOptions& opts) {
  return find_symptoms(db, db.app(app).members, now, opts);
}

std::vector<Symptom> find_symptoms(const telemetry::MonitoringDb& db,
                                   std::span<const EntityId> entities,
                                   TimeIndex now,
                                   const SymptomFinderOptions& opts) {
  std::vector<Symptom> out;
  std::size_t scanned = 0;
  for (const EntityId entity : entities) {
    if (!db.has_entity(entity)) continue;
    for (const MetricKindId kind : db.metrics().kinds_of(entity)) {
      ++scanned;
      const auto* ts = db.metrics().find(entity, kind);
      if (ts == nullptr || now >= ts->size()) continue;
      const double value = ts->value_or(now, 0.0);

      const auto history = ts->window(opts.history_begin, now + 1, 0.0);
      const double center = stats::median(history);
      const double sigma = stats::mad_sigma(history);
      const double z = std::abs(stats::zscore(value, center, sigma, 1e-3));

      const auto name = db.catalog().name(kind);
      // A symptom is a metric that is BOTH beyond the operator's alert
      // threshold AND unusual for this entity, or one that is wildly
      // unusual regardless of thresholds (covers collapses). A steadily
      // busy metric (e.g. a db VM always receiving 30 MB/s) is not a
      // symptom even though it crosses the static threshold.
      const bool above = opts.thresholds.is_above(name, value);
      if (!(above && z >= 2.0) && z < opts.z_min) continue;

      Symptom s;
      s.entity = entity;
      s.metric = std::string(name);
      s.value = value;
      s.severity = z;
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(), [](const Symptom& a, const Symptom& b) {
    if (a.severity != b.severity) return a.severity > b.severity;
    if (a.entity != b.entity) return a.entity < b.entity;
    return a.metric < b.metric;
  });
  if (out.size() > opts.max_symptoms) out.resize(opts.max_symptoms);
  if (opts.metrics != nullptr) {
    opts.metrics->counter("finder.metrics_scanned")->add(scanned);
    opts.metrics->counter("finder.symptoms_found")->add(out.size());
  }
  return out;
}

}  // namespace murphy::core
