# Empty compiler generated dependencies file for diagnose_csv.
# This may be replaced when dependencies are built.
