// Cross-module integration tests: the whole pipeline (simulate -> monitor ->
// diagnose -> score) under varied conditions, degradation + diagnosis
// interplay, scheme-comparison invariants, and end-to-end determinism of the
// evaluation harness.
#include <gtest/gtest.h>

#include "src/baselines/explainit.h"
#include "src/baselines/netmedic.h"
#include "src/baselines/sage.h"
#include "src/core/murphy.h"
#include "src/emulation/scenarios.h"
#include "src/enterprise/incidents.h"
#include "src/eval/degradation.h"
#include "src/eval/metrics.h"
#include "src/eval/runner.h"

namespace murphy {
namespace {

core::MurphyDiagnoser fast_murphy(std::uint64_t seed = 1) {
  core::MurphyOptions opts;
  opts.sampler.num_samples = 120;
  opts.seed = seed;
  return core::MurphyDiagnoser(opts);
}

class ContentionPipeline : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ContentionPipeline, MurphyBeatsChanceAcrossSeeds) {
  emulation::ContentionOptions opts;
  opts.app = emulation::ContentionOptions::App::kHotelReservation;
  opts.seed = GetParam();
  opts.slices = 240;
  opts.prior_incidents = 2;
  const auto c = emulation::make_contention_case(opts);
  auto murphy = fast_murphy(GetParam());
  const auto outcome = eval::run_case(murphy, c);
  // Not every seed must hit strictly (the paper reports 83%), but the
  // relaxed criterion (faulted container or its services) should hold.
  EXPECT_TRUE(outcome.relaxed_hit(5))
      << "seed " << GetParam() << " rank " << outcome.rank;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContentionPipeline,
                         ::testing::Values(101u, 202u, 303u, 404u));

TEST(InterferencePipeline, AllSchemesRunOnTheSameCase) {
  emulation::InterferenceOptions opts;
  opts.slices = 300;
  opts.ramp_at = 220;
  opts.seed = 5;
  const auto c = emulation::make_interference_case(opts);
  const auto request = eval::request_for(c);

  auto murphy = fast_murphy();
  baselines::Sage sage;
  baselines::NetMedic netmedic;
  baselines::ExplainIt explainit;

  const auto rm = murphy.diagnose(request);
  const auto rs = sage.diagnose(request);
  const auto rn = netmedic.diagnose(request);
  const auto re = explainit.diagnose(request);

  // Murphy finds the aggressor; Sage structurally cannot (cyclic input).
  EXPECT_GE(rm.rank_of(c.root_cause), 1u);
  EXPECT_EQ(rs.rank_of(c.root_cause), 0u);
  // Every scheme returns well-formed rankings (descending scores).
  for (const auto* r : {&rm, &rn, &re})
    for (std::size_t i = 1; i < r->causes.size(); ++i)
      EXPECT_LE(r->causes[i].score, r->causes[i - 1].score);
  // Murphy's explanations align 1:1 with its causes.
  EXPECT_EQ(rm.causes.size(), rm.explanations.size());
}

TEST(DegradationPipeline, MurphySurvivesEveryDegradationKind) {
  for (const auto d :
       {eval::Degradation::kMissingValues, eval::Degradation::kMissingEdge,
        eval::Degradation::kMissingEntity, eval::Degradation::kMissingMetric}) {
    emulation::ContentionOptions opts;
    opts.app = emulation::ContentionOptions::App::kHotelReservation;
    opts.seed = 77;
    opts.slices = 240;
    auto c = emulation::make_contention_case(opts);
    Rng rng(7);
    eval::apply_degradation(c, d, rng);
    auto murphy = fast_murphy();
    const auto outcome = eval::run_case(murphy, c);
    // The pipeline must produce a finite, scoreable result.
    EXPECT_GE(outcome.output_size, 0u);
  }
}

TEST(DegradationPipeline, MissingValuesBarelyHurtsMurphy) {
  // §6.4's headline for Murphy: deleting pre-incident history has minimal
  // effect because the in-incident data is still present.
  emulation::ContentionOptions opts;
  opts.app = emulation::ContentionOptions::App::kHotelReservation;
  opts.seed = 31;
  opts.slices = 240;

  auto murphy = fast_murphy();
  const auto clean = emulation::make_contention_case(opts);
  const auto clean_outcome = eval::run_case(murphy, clean);

  auto degraded = emulation::make_contention_case(opts);
  Rng rng(9);
  eval::apply_degradation(degraded, eval::Degradation::kMissingValues, rng);
  const auto degraded_outcome = eval::run_case(murphy, degraded);

  if (clean_outcome.hit(5)) {
    EXPECT_TRUE(degraded_outcome.relaxed_hit(5));
  }
}

TEST(EnterprisePipeline, SelfCausedIncidentDiagnosesItself) {
  // Incident 9 (stuck process on the symptomatic VM): the symptom entity is
  // the root cause; Murphy must include it despite the counterfactual being
  // inapplicable to self-pairs.
  enterprise::IncidentDatasetOptions opts;
  opts.topology.num_apps = 5;
  opts.topology.hosts = 8;
  opts.topology.tors = 2;
  opts.topology.ports_per_tor = 6;
  opts.dynamics.slices = 120;
  const auto inc = enterprise::make_incident(9, opts);
  ASSERT_EQ(inc.ground_truth[0], inc.symptom_entity);
  auto murphy = fast_murphy();
  const auto result = murphy.diagnose(eval::request_for(inc));
  EXPECT_GE(result.rank_of(inc.symptom_entity), 1u);
}

TEST(EnterprisePipeline, CrashIncidentUsesLowSideAnomaly) {
  // Incident 5 (web VM crash): the signal is metrics COLLAPSING, not
  // spiking; the candidate search's z-criterion must still find it.
  enterprise::IncidentDatasetOptions opts;
  opts.topology.num_apps = 5;
  opts.topology.hosts = 8;
  opts.topology.tors = 2;
  opts.topology.ports_per_tor = 6;
  opts.dynamics.slices = 120;
  const auto inc = enterprise::make_incident(5, opts);
  auto murphy = fast_murphy();
  const auto result = murphy.diagnose(eval::request_for(inc));
  EXPECT_GE(result.rank_of(inc.ground_truth[0]), 1u);
}

TEST(CalibrationPipeline, ScoreFloorKeepsCalibrationTruths) {
  enterprise::IncidentDatasetOptions opts;
  opts.topology.num_apps = 5;
  opts.topology.hosts = 8;
  opts.topology.tors = 2;
  opts.topology.ports_per_tor = 6;
  opts.dynamics.slices = 120;
  const auto inc2 = enterprise::make_incident(2, opts);
  const auto inc13 = enterprise::make_incident(13, opts);
  auto murphy = fast_murphy();
  const std::vector<const enterprise::EnterpriseIncident*> calib{&inc2,
                                                                 &inc13};
  const double floor = eval::calibrate_score_floor(murphy, calib);
  for (const auto* inc : calib) {
    const auto result = eval::filtered_by_score(
        murphy.diagnose(eval::request_for(*inc)), floor);
    EXPECT_GE(result.rank_of(inc->ground_truth[0]), 1u)
        << "incident " << inc->number;
  }
}

TEST(CalibrationPipeline, MissingTruthYieldsZeroFloor) {
  // A scheme that never produces the truth cannot be calibrated to recall 1;
  // the floor must fall back to keep-everything.
  enterprise::IncidentDatasetOptions opts;
  opts.topology.num_apps = 4;
  opts.topology.hosts = 6;
  opts.topology.tors = 2;
  opts.topology.ports_per_tor = 4;
  opts.dynamics.slices = 96;
  const auto inc = enterprise::make_incident(2, opts);
  baselines::Sage sage;  // produces nothing in the enterprise environment
  const std::vector<const enterprise::EnterpriseIncident*> calib{&inc};
  EXPECT_DOUBLE_EQ(eval::calibrate_score_floor(sage, calib), 0.0);
}

TEST(DiagnosisRequestDefaults, RequestForUsesOnlineWindow) {
  emulation::ContentionOptions opts;
  opts.seed = 1;
  opts.slices = 240;
  const auto c = emulation::make_contention_case(opts);
  const auto req = eval::request_for(c);
  EXPECT_EQ(req.train_begin, 0u);
  EXPECT_EQ(req.train_end, c.incident_end);
  EXPECT_EQ(req.now, c.incident_end - 1);
  EXPECT_EQ(req.db, &c.db);
}

}  // namespace
}  // namespace murphy
