// Telemetry chaos injection — the adversarial counterpart of DESIGN.md §8.
//
// Real monitoring pipelines hand Murphy defective inputs: collectors emit
// NaN/Inf payloads, clocks skew timestamps out of order, agents restart and
// duplicate scrapes, discovery races record edges to entities that were
// never (or are no longer) present. The engine defines semantics for every
// one of those defects; this harness exists to *exercise* them. It takes a
// healthy MonitoringDb and corrupts it with a seeded, configurable fault
// mix, so a property test can assert the engine's invariants — never
// crashes, never emits a non-finite score — over thousands of randomized
// corruption patterns (tests/chaos_test.cpp).
//
// Determinism: every fault draw derives from (opts.seed, series key) alone,
// never from iteration order of a hash map or from addresses, so a given
// (db, options) pair corrupts identically on every run and platform — a
// failing chaos ticket is reproducible from its seed.
//
// Value faults are written through MetricStore::find_mutable(), i.e. they
// BYPASS the put() ingest sanitizer on purpose: that is the only way to get
// raw non-finite payloads into stored series, which is exactly what the
// read-path guards (value_or, window consumers, kernel boundaries) must
// survive. Set ChaosOptions::reingest to additionally round-trip each
// corrupted series through put(), exercising the ingest path instead.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "src/common/ids.h"
#include "src/telemetry/monitoring_db.h"

namespace murphy::eval {

// Fault mix. Per-series probabilities are independent Bernoulli draws from
// the series' own derived RNG stream; structural counts are absolute.
struct ChaosOptions {
  std::uint64_t seed = 1;

  // --- value faults (per series) -------------------------------------------
  double p_nan_slice = 0.10;        // poison one random slice with quiet NaN
  double p_inf_slice = 0.08;        // poison one random slice with +/-Inf
  double p_denormal_slice = 0.05;   // one slice -> subnormal min (tiny scale)
  double p_constant_column = 0.05;  // whole series -> one constant value
  double p_near_constant_column = 0.05;  // constant + ~1-ulp jitter
  double p_huge_scale_column = 0.03;     // rescale series by 1e9 (overflow
                                         // pressure on Gram/sxx products)
  double p_drop_history = 0.05;     // invalidate everything before a point
  double p_duplicate_run = 0.05;    // smear one value over a run of slices
                                    // (what duplicated timestamps collapse to)
  double p_swap_slices = 0.05;      // swap two slices (out-of-order arrival)

  // --- structural faults (absolute counts) ---------------------------------
  std::size_t self_loops = 2;       // self-loop edges offered to ingest
  std::size_t orphan_edges = 2;     // edges to absent entities offered
  std::size_t strip_entities = 1;   // entities stripped of ALL their metrics

  // Round-trip every corrupted series through MetricStore::put() so the
  // ingest sanitizer (not the read path) absorbs the non-finite payloads.
  bool reingest = false;
};

// Tally of the faults actually injected (draws that fired).
struct ChaosReport {
  std::size_t nan_slices = 0;
  std::size_t inf_slices = 0;
  std::size_t denormal_slices = 0;
  std::size_t constant_columns = 0;
  std::size_t near_constant_columns = 0;
  std::size_t huge_scale_columns = 0;
  std::size_t dropped_histories = 0;
  std::size_t duplicate_runs = 0;
  std::size_t swapped_slices = 0;
  std::size_t self_loops_offered = 0;
  std::size_t orphan_edges_offered = 0;
  std::size_t stripped_entities = 0;

  [[nodiscard]] std::size_t total() const {
    return nan_slices + inf_slices + denormal_slices + constant_columns +
           near_constant_columns + huge_scale_columns + dropped_histories +
           duplicate_runs + swapped_slices + self_loops_offered +
           orphan_edges_offered + stripped_entities;
  }
};

// Corrupts `db` in place with the fault mix of `opts`. Series listed in
// `protect` are never touched by value faults (a test typically protects
// the symptom metric so the ticket stays diagnosable); structural faults
// never remove a protected series' entity. Returns the injected tally.
ChaosReport apply_chaos(telemetry::MonitoringDb& db, const ChaosOptions& opts,
                        std::span<const MetricRef> protect = {});

}  // namespace murphy::eval
