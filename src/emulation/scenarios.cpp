#include "src/emulation/scenarios.h"

#include <algorithm>
#include <cassert>

#include "src/emulation/workload.h"
#include "src/telemetry/metric_catalog.h"

namespace murphy::emulation {
namespace {

// Services on both clients' call trees — the "common services" of Fig. 5a.
std::vector<ServiceIdx> common_services(const AppModel& app, ServiceIdx a,
                                        ServiceIdx b) {
  const auto ta = app.call_tree(a);
  const auto tb = app.call_tree(b);
  std::vector<ServiceIdx> out;
  for (const ServiceIdx s : ta)
    if (std::find(tb.begin(), tb.end(), s) != tb.end()) out.push_back(s);
  return out;
}

}  // namespace

DiagnosisCase make_interference_case(const InterferenceOptions& opts) {
  AppModel app = make_hotel_reservation();
  Rng rng(opts.seed);

  // Client A (aggressor) drives the search endpoint; client B (victim) the
  // recommendation endpoint. Their call trees share the profile and rate
  // backends (Fig. 5a's "common services"). Those backends run with tight
  // CPU limits so the aggressor's ramp saturates them.
  const ServiceIdx svc1 = app.find_service("search");
  const ServiceIdx svc2 = app.find_service("recommendation");
  app.containers[app.services[app.find_service("profile")].container]
      .cpu_limit_cores = 1.0;
  app.containers[app.services[app.find_service("rate")].container]
      .cpu_limit_cores = 1.0;

  ClientSpec a;
  a.name = "client-A";
  a.entry_service = svc1;
  a.rps_schedule = step_load(opts.slices, opts.aggressor_base_rps,
                             opts.aggressor_high_rps, opts.ramp_at,
                             opts.slices - opts.ramp_at, 0.05, rng);
  ClientSpec b;
  b.name = "client-B";
  b.entry_service = svc2;
  b.rps_schedule = steady_load(opts.slices, opts.victim_rps, 0.05, rng);
  app.clients.push_back(a);
  app.clients.push_back(b);

  // Background traffic: independent clients with fluctuating load, so the
  // environment has several variance sources (as any real deployment does)
  // rather than a single clean driver. The heavier background clients drive
  // endpoints off the shared profile/rate path; a light one touches the
  // frontend for cross-correlation noise without saturating anything.
  struct Background {
    const char* endpoint;
    double lo, hi;
  };
  const Background bg_specs[] = {{"reservation", 10.0, 25.0},
                                 {"user", 10.0, 25.0},
                                 {"frontend", 3.0, 8.0}};
  for (std::size_t i = 0; i < 3; ++i) {
    ClientSpec bg;
    bg.name = std::string("client-bg") + std::to_string(i);
    bg.entry_service = app.find_service(bg_specs[i].endpoint);
    bg.rps_schedule = diurnal_load(
        opts.slices, rng.uniform(bg_specs[i].lo, bg_specs[i].hi), 0.4,
        60 + rng.below(80), 0.15, rng);
    // A few bursts that are *not* the incident.
    for (int burst = 0; burst < 3; ++burst)
      add_burst(bg.rps_schedule, rng.below(opts.slices * 3 / 4),
                6 + rng.below(12), 1.5 + 0.5 * rng.uniform());
    app.clients.push_back(bg);
  }

  SimOptions sim;
  sim.slices = opts.slices;
  sim.seed = rng();
  sim.bidirectional_call_edges = opts.bidirectional_call_edges;
  SimResult res = simulate(app, {}, sim);

  DiagnosisCase c;
  c.name = "interference-hotel";
  c.entities = res.entities;
  c.symptom_entity = res.entities.clients[1];  // client B
  c.symptom_metric = std::string(telemetry::metrics::kLatency);
  c.root_cause = res.entities.clients[0];      // client A's high RPS load
  c.all_roots.push_back(c.root_cause);
  c.incident_start = opts.ramp_at;
  c.incident_end = opts.slices;

  // Relaxed set: root cause, the aggressor's entry service, and the common
  // services/containers shared by both call trees.
  c.relaxed_set.push_back(c.root_cause);
  c.relaxed_set.push_back(res.entities.services[svc1]);
  for (const ServiceIdx s : common_services(app, svc1, svc2)) {
    c.relaxed_set.push_back(res.entities.services[s]);
    c.relaxed_set.push_back(
        res.entities.containers[app.services[s].container]);
  }
  c.db = std::move(res.db);
  return c;
}

std::vector<InterferenceOptions> interference_sweep(std::size_t variants,
                                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<InterferenceOptions> out;
  out.reserve(variants);
  for (std::size_t i = 0; i < variants; ++i) {
    InterferenceOptions o;
    o.seed = rng();
    o.victim_rps = rng.uniform(10.0, 30.0);
    o.aggressor_base_rps = rng.uniform(10.0, 30.0);
    // Sweep the aggressor intensity; always enough to overwhelm the shared
    // backends (the paper varies the RPS load across its 32 variants).
    o.aggressor_high_rps = rng.uniform(180.0, 400.0);
    out.push_back(o);
  }
  return out;
}

DiagnosisCase make_contention_case(const ContentionOptions& opts) {
  AppModel app = opts.app == ContentionOptions::App::kHotelReservation
                     ? make_hotel_reservation()
                     : make_social_network();
  Rng rng(opts.seed);

  // Background clients on the main read/write endpoints.
  const ServiceIdx entry0 = 0;  // frontend / nginx-web
  ClientSpec main_client;
  main_client.name = "client-main";
  main_client.entry_service = entry0;
  main_client.rps_schedule = steady_load(opts.slices, 40.0, 0.05, rng);
  app.clients.push_back(main_client);

  // Pick the faulted container among containers that actually host services
  // (stressing an idle sidecar produces no symptom).
  std::vector<ContainerIdx> candidates;
  for (const ServiceSpec& s : app.services) {
    if (std::find(candidates.begin(), candidates.end(), s.container) ==
        candidates.end())
      candidates.push_back(s.container);
  }
  const ContainerIdx target =
      opts.target_container < app.containers.size()
          ? opts.target_container
          : candidates[rng.below(candidates.size())];

  std::vector<Fault> faults;
  // Main incident in the last quarter of the trace.
  Fault main_fault;
  main_fault.kind = opts.fault;
  main_fault.target = target;
  main_fault.start = opts.slices * 3 / 4;
  main_fault.duration =
      std::min(opts.duration_slices, opts.slices - main_fault.start);
  main_fault.intensity = opts.intensity;
  faults.push_back(main_fault);

  // Prior short-lived incidents on random containers earlier in the trace
  // (the "prior incidents" of Fig. 6a).
  for (std::size_t i = 0; i < opts.prior_incidents; ++i) {
    Fault prior;
    prior.kind = static_cast<FaultKind>(rng.below(3));
    prior.target = candidates[rng.below(candidates.size())];
    const std::size_t span = main_fault.start > 40 ? main_fault.start - 40 : 1;
    // Short-lived (1-3 min) warm-up faults: long enough to leave a mark in
    // the training window, short enough that the window stays mostly normal
    // even with the paper's maximum of 14 prior incidents.
    prior.start = 10 + rng.below(span);
    prior.duration = 6 + rng.below(12);
    prior.intensity = rng.uniform(0.5, 1.0);
    faults.push_back(prior);
  }

  SimOptions sim;
  sim.slices = opts.slices;
  sim.seed = rng();
  sim.bidirectional_call_edges = opts.bidirectional_call_edges;
  SimResult res = simulate(app, faults, sim);

  DiagnosisCase c;
  c.name = std::string("contention-") + app.name + "-" +
           std::string(fault_kind_name(opts.fault));
  c.entities = res.entities;
  c.symptom_entity = res.entities.clients[0];
  c.symptom_metric = std::string(telemetry::metrics::kLatency);
  c.root_cause = res.entities.containers[target];
  c.all_roots.push_back(c.root_cause);
  c.relaxed_set.push_back(c.root_cause);
  // The service(s) on the faulted container are acceptable near-misses.
  for (std::size_t s = 0; s < app.services.size(); ++s)
    if (app.services[s].container == target)
      c.relaxed_set.push_back(res.entities.services[s]);
  c.incident_start = main_fault.start;
  c.incident_end = main_fault.start + main_fault.duration;
  c.db = std::move(res.db);
  return c;
}

std::vector<ContentionOptions> contention_sweep(ContentionOptions::App app,
                                                std::size_t count,
                                                std::size_t prior_incidents,
                                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ContentionOptions> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ContentionOptions o;
    o.app = app;
    o.fault = static_cast<FaultKind>(rng.below(3));
    // stress-ng pushes the container into saturation (rho >= 1), which is
    // what makes the Fig. 6a latency spike as dramatic as the paper's.
    o.intensity = rng.uniform(0.9, 1.4);
    o.duration_slices = 30 + rng.below(31);  // 5-10 min at 10 s
    o.prior_incidents = prior_incidents;
    o.slices = 240 + rng.below(300);  // 40-90 min traces
    o.seed = rng();
    out.push_back(o);
  }
  return out;
}

}  // namespace murphy::emulation
