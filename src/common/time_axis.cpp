#include "src/common/time_axis.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace murphy {

TimeAxis::TimeAxis(double start_epoch_seconds, double interval_seconds,
                   std::size_t num_slices)
    : start_(start_epoch_seconds),
      interval_(interval_seconds),
      num_slices_(num_slices) {
  assert(interval_seconds > 0.0);
}

double TimeAxis::time_of(TimeIndex i) const {
  assert(i < num_slices_ || num_slices_ == 0);
  return start_ + static_cast<double>(i) * interval_;
}

TimeIndex TimeAxis::index_of(double epoch_seconds) const {
  if (num_slices_ == 0) return 0;
  const double raw = std::floor((epoch_seconds - start_) / interval_);
  const auto clamped =
      std::clamp(raw, 0.0, static_cast<double>(num_slices_ - 1));
  return static_cast<TimeIndex>(clamped);
}

TimeAxis TimeAxis::slice(TimeIndex from, TimeIndex to) const {
  assert(from <= to && to <= num_slices_);
  return TimeAxis(time_of(0) + static_cast<double>(from) * interval_,
                  interval_, to - from);
}

}  // namespace murphy
