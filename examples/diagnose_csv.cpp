// Offline diagnosis from a captured dataset — a small CLI.
//
//   diagnose_csv <path-prefix> <symptom-entity> <symptom-metric>
//                [interval-seconds]
//
// Loads the three CSV files written by telemetry::export_csv (or any
// external dataset in the same schema), runs Murphy on the given symptom at
// the last slice, and prints the ranked root causes with explanations.
// Without arguments it demonstrates the full round trip: simulate an
// incident, export it, re-import it, diagnose offline.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core/murphy.h"
#include "src/emulation/scenarios.h"
#include "src/telemetry/csv_export.h"
#include "src/telemetry/csv_import.h"

using namespace murphy;

namespace {

int diagnose(const telemetry::MonitoringDb& db, EntityId symptom,
             const std::string& metric) {
  const TimeIndex last = db.metrics().axis().size() - 1;
  core::MurphyOptions mopts;
  mopts.sampler.num_samples = 300;
  core::MurphyDiagnoser murphy(mopts);
  core::DiagnosisRequest request;
  request.db = &db;
  request.symptom_entity = symptom;
  request.symptom_metric = metric;
  request.now = last;
  request.train_begin = 0;
  request.train_end = last + 1;
  const auto result = murphy.diagnose(request);

  std::printf("symptom: %s of '%s' at slice %zu\n", metric.c_str(),
              db.entity(symptom).name.c_str(), last);
  std::printf("ranked root causes (%zu):\n", result.causes.size());
  for (std::size_t i = 0; i < result.causes.size() && i < 10; ++i) {
    std::printf("  %2zu. %-32s score %.1f\n", i + 1,
                db.entity(result.causes[i].entity).name.c_str(),
                result.causes[i].score);
    if (i < result.explanations.size())
      std::printf("      %s\n", result.explanations[i].c_str());
  }
  for (const auto& change : result.recent_config_changes)
    std::printf("recent config change: %s on '%s' (%s)\n",
                std::string(telemetry::config_event_kind_name(change.kind))
                    .c_str(),
                db.entity(change.entity).name.c_str(), change.detail.c_str());
  return result.causes.empty() ? 1 : 0;
}

int demo_round_trip() {
  std::printf("no dataset given; demonstrating the capture -> export -> "
              "import -> diagnose round trip.\n\n");
  emulation::InterferenceOptions opts;
  opts.slices = 300;
  opts.ramp_at = 220;
  opts.seed = 12;
  const auto c = emulation::make_interference_case(opts);

  const std::string prefix = "/tmp/murphy_demo_capture";
  if (!telemetry::export_csv(c.db, prefix)) {
    std::fprintf(stderr, "export failed\n");
    return 1;
  }
  std::printf("captured the incident to %s_{entities,associations,"
              "metrics}.csv\n", prefix.c_str());

  telemetry::ImportError error;
  const auto imported = telemetry::import_csv_files(prefix, 10.0, &error);
  if (!imported) {
    std::fprintf(stderr, "import failed: %s (line %zu)\n",
                 error.message.c_str(), error.line);
    return 1;
  }
  std::printf("re-imported %zu entities / %zu associations / %zu series\n\n",
              imported->entities, imported->associations, imported->series);

  const auto symptom =
      imported->db.find_entity(c.db.entity(c.symptom_entity).name);
  return diagnose(imported->db, symptom, c.symptom_metric);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) return demo_round_trip();

  const std::string prefix = argv[1];
  const std::string entity_name = argv[2];
  const std::string metric = argv[3];
  const double interval = argc > 4 ? std::atof(argv[4]) : 60.0;

  telemetry::ImportError error;
  const auto imported =
      telemetry::import_csv_files(prefix, interval, &error);
  if (!imported) {
    std::fprintf(stderr, "import failed: %s (line %zu)\n",
                 error.message.c_str(), error.line);
    return 2;
  }
  const auto symptom = imported->db.find_entity(entity_name);
  if (!symptom.valid()) {
    std::fprintf(stderr, "unknown entity '%s'\n", entity_name.c_str());
    return 2;
  }
  return diagnose(imported->db, symptom, metric);
}
