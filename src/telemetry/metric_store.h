// Time-series storage for entity metrics.
//
// All series share one TimeAxis (the monitoring platform's collection grid).
// Values may be missing — a newly spawned entity has no history, and the
// robustness experiments (Table 2) deliberately delete values — so each
// series carries a validity mask alongside its values.
//
// Telemetry-defect semantics (DESIGN.md §8): real collectors emit NaN/Inf
// payloads, and a single non-finite slice would otherwise poison every
// moment, factor and ranking downstream. The store therefore defines
// non-finite values as MISSING:
//  * MetricStore::put() sanitizes at ingest — non-finite slices are marked
//    invalid (counter `ingest.nonfinite_dropped`), the stored payload is
//    untouched;
//  * TimeSeries::value_or() / window() treat a stored non-finite value as
//    missing even when its validity bit is set (counter
//    `ingest.nonfinite_reads`), covering raw writes through set() /
//    find_mutable() that bypass ingest;
//  * the raw accessors value() / values() still expose the stored payload
//    (the exporter round-trips it; the importer re-drops it).
// Finite data is returned bit-for-bit unchanged on every path.
#pragma once

#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/common/time_axis.h"

namespace murphy::telemetry {

// One metric's samples on the store's axis, with per-slice validity.
class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::vector<double> values);
  TimeSeries(std::vector<double> values, std::vector<bool> valid);

  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] double value(TimeIndex t) const { return values_[t]; }
  [[nodiscard]] bool is_valid(TimeIndex t) const { return valid_[t]; }
  // Value at t, or `fallback` when the slice is missing. The paper uses a
  // default (e.g. 0% CPU) as placeholder for missing history (§4.2).
  // Non-finite stored values count as missing (see header comment).
  [[nodiscard]] double value_or(TimeIndex t, double fallback) const;

  [[nodiscard]] std::span<const double> values() const { return values_; }

  void set(TimeIndex t, double v);
  void invalidate(TimeIndex t);
  // Marks every valid-but-non-finite slice invalid; returns how many were
  // dropped. put() applies this to everything it ingests.
  std::size_t sanitize();
  // Drop history before `t` (keeps values from t onward). Used by the
  // "missing values" degradation, which removes history but keeps the
  // incident window.
  void invalidate_before(TimeIndex t);

  // Values restricted to [from, to) with missing slices replaced by
  // `fallback`; the shape the trainers consume. Total: an inverted window
  // (to < from) is empty, slices beyond the axis read as `fallback`.
  [[nodiscard]] std::vector<double> window(TimeIndex from, TimeIndex to,
                                           double fallback = 0.0) const;

 private:
  std::vector<double> values_;
  std::vector<bool> valid_;
};

class MetricStore {
 public:
  MetricStore() = default;
  explicit MetricStore(TimeAxis axis) : axis_(axis) {}

  [[nodiscard]] const TimeAxis& axis() const { return axis_; }
  void set_axis(TimeAxis axis) {
    axis_ = axis;
    ++version_;
  }

  // Monotonic data version: bumped by every mutation path, including
  // find_mutable() (conservatively — the caller may write through the
  // pointer). Caches keyed on (window, version) use this to detect staleness
  // without diffing series.
  [[nodiscard]] std::uint64_t version() const { return version_; }

  // Replaces any existing series for (entity, kind). `values.size()` must
  // equal axis().size(). Ingest sanitizes: non-finite slices are marked
  // missing (counter `ingest.nonfinite_dropped`).
  void put(EntityId entity, MetricKindId kind, std::vector<double> values);
  void put(EntityId entity, MetricKindId kind, TimeSeries series);

  [[nodiscard]] const TimeSeries* find(EntityId entity,
                                       MetricKindId kind) const;
  [[nodiscard]] TimeSeries* find_mutable(EntityId entity, MetricKindId kind);

  // Metric kinds recorded for this entity, in insertion order.
  [[nodiscard]] std::vector<MetricKindId> kinds_of(EntityId entity) const;

  // Removes one metric (Table 2 "missing metric" degradation).
  void erase(EntityId entity, MetricKindId kind);
  // Removes all series of an entity (Table 2 "missing entity").
  void erase_entity(EntityId entity);

  [[nodiscard]] std::size_t series_count() const { return series_.size(); }

 private:
  TimeAxis axis_;
  std::uint64_t version_ = 0;
  std::unordered_map<MetricRef, TimeSeries> series_;
  std::unordered_map<EntityId, std::vector<MetricKindId>> kinds_;
};

}  // namespace murphy::telemetry
