#include "src/telemetry/metric_store.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/obs/metrics.h"

namespace murphy::telemetry {
namespace {

// Ingest/read-side defect counters (DESIGN.md §8). Resolved once; updates
// are single relaxed atomics and only happen on the defect path.
void count_defect(const char* name, std::uint64_t n) {
#ifndef MURPHY_OBS_DISABLED
  if (n == 0) return;
  obs::global_metrics().counter(name)->add(n);
#else
  (void)name;
  (void)n;
#endif
}

}  // namespace

TimeSeries::TimeSeries(std::vector<double> values)
    : values_(std::move(values)), valid_(values_.size(), true) {}

TimeSeries::TimeSeries(std::vector<double> values, std::vector<bool> valid)
    : values_(std::move(values)), valid_(std::move(valid)) {
  assert(values_.size() == valid_.size());
}

double TimeSeries::value_or(TimeIndex t, double fallback) const {
  if (t >= values_.size() || !valid_[t]) return fallback;
  const double v = values_[t];
  if (!std::isfinite(v)) {
    // Raw writes (set / find_mutable) can store non-finite payloads past the
    // ingest sanitizer; the read path defines them as missing so a poisoned
    // slice degrades to the documented fallback instead of NaN-ing every
    // moment downstream.
    count_defect("ingest.nonfinite_reads", 1);
    return fallback;
  }
  return v;
}

void TimeSeries::set(TimeIndex t, double v) {
  assert(t < values_.size());
  values_[t] = v;
  valid_[t] = true;
}

void TimeSeries::invalidate(TimeIndex t) {
  assert(t < values_.size());
  valid_[t] = false;
}

std::size_t TimeSeries::sanitize() {
  std::size_t dropped = 0;
  for (TimeIndex t = 0; t < values_.size(); ++t) {
    if (valid_[t] && !std::isfinite(values_[t])) {
      valid_[t] = false;
      ++dropped;
    }
  }
  return dropped;
}

void TimeSeries::invalidate_before(TimeIndex t) {
  const TimeIndex end = std::min(t, values_.size());
  for (TimeIndex i = 0; i < end; ++i) valid_[i] = false;
}

std::vector<double> TimeSeries::window(TimeIndex from, TimeIndex to,
                                       double fallback) const {
  // Total on any (from, to): an inverted window is empty (the unsigned
  // to - from below would otherwise reserve ~2^64 slices), and slices beyond
  // the axis read as missing through value_or's bounds check.
  if (to < from) return {};
  std::vector<double> out;
  out.reserve(to - from);
  for (TimeIndex t = from; t < to; ++t) out.push_back(value_or(t, fallback));
  return out;
}

void MetricStore::put(EntityId entity, MetricKindId kind,
                      std::vector<double> values) {
  put(entity, kind, TimeSeries(std::move(values)));
}

void MetricStore::put(EntityId entity, MetricKindId kind, TimeSeries series) {
  assert(series.size() == axis_.size());
  count_defect("ingest.nonfinite_dropped", series.sanitize());
  ++version_;
  const MetricRef ref{entity, kind};
  const bool fresh = series_.find(ref) == series_.end();
  series_.insert_or_assign(ref, std::move(series));
  if (fresh) kinds_[entity].push_back(kind);
}

const TimeSeries* MetricStore::find(EntityId entity, MetricKindId kind) const {
  const auto it = series_.find(MetricRef{entity, kind});
  return it == series_.end() ? nullptr : &it->second;
}

TimeSeries* MetricStore::find_mutable(EntityId entity, MetricKindId kind) {
  const auto it = series_.find(MetricRef{entity, kind});
  if (it == series_.end()) return nullptr;
  ++version_;  // the caller may write through the pointer
  return &it->second;
}

std::vector<MetricKindId> MetricStore::kinds_of(EntityId entity) const {
  const auto it = kinds_.find(entity);
  return it == kinds_.end() ? std::vector<MetricKindId>{} : it->second;
}

void MetricStore::erase(EntityId entity, MetricKindId kind) {
  ++version_;
  series_.erase(MetricRef{entity, kind});
  if (auto it = kinds_.find(entity); it != kinds_.end()) {
    auto& v = it->second;
    v.erase(std::remove(v.begin(), v.end(), kind), v.end());
  }
}

void MetricStore::erase_entity(EntityId entity) {
  ++version_;
  for (const MetricKindId kind : kinds_of(entity))
    series_.erase(MetricRef{entity, kind});
  kinds_.erase(entity);
}

}  // namespace murphy::telemetry
