// Structured diagnosis audit trail.
//
// Murphy's output is a ranked list; its *defense* is the per-candidate
// evidence behind every rank. The audit trail captures that evidence — one
// record per evaluated candidate with its anomaly-score components, the
// counterfactual verdict (p-value, factual vs counterfactual symptom means)
// and its path through the relationship graph — serialized as JSONL so a
// ranking can be replayed, diffed and explained long after the run. Every
// field is a deterministic function of the diagnosis inputs, so audit files
// are byte-identical across runs and thread counts.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/ids.h"

namespace murphy::obs {

// The evidence for one candidate root cause.
struct CandidateAudit {
  EntityId entity;
  std::string entity_name;
  std::string driver_metric;   // the candidate's most anomalous metric
  double anomaly_z = 0.0;      // robust z of the driver metric
  double rank_score = 0.0;     // z scaled by relative excursion (ordering key)
  bool self_symptom = false;   // candidate == symptom entity
  bool evaluated = false;      // counterfactual sampler actually ran
  bool accepted = false;       // made the ranked list
  double p_value = 1.0;        // one-sided Welch t-test
  double mean_factual = 0.0;
  double mean_counterfactual = 0.0;
  // mean_counterfactual - mean_factual: how far nudging the candidate toward
  // normal moved the symptom metric.
  double counterfactual_delta = 0.0;
  std::uint64_t path_len = 0;  // resampled shortest-path-subgraph size
  std::uint64_t rank = 0;      // 1-based position in the result, 0 = absent
  // Explanation path root -> symptom (entity names), accepted candidates
  // only.
  std::vector<std::string> path;
};

// One full diagnosis: header context plus all candidate records, sorted by
// entity id (a stable order independent of evaluation scheduling).
struct DiagnosisAudit {
  std::string scheme;
  std::string symptom_entity;
  std::string symptom_metric;
  std::uint64_t now = 0;
  std::uint64_t graph_nodes = 0;
  std::uint64_t variables = 0;
  std::vector<CandidateAudit> candidates;

  [[nodiscard]] bool empty() const {
    return scheme.empty() && candidates.empty();
  }
};

// JSONL rendering: one {"type":"diagnosis",...} header line followed by one
// {"type":"candidate",...} line per record. Deterministic (numbers printed
// with round-trip precision, fixed key order).
[[nodiscard]] std::string to_jsonl(const DiagnosisAudit& audit);

// Parses to_jsonl output back (used by tests and offline tooling). Expects
// exactly one header line; candidate lines follow in file order.
[[nodiscard]] bool parse_jsonl(std::string_view text, DiagnosisAudit& out,
                               std::string* error = nullptr);

}  // namespace murphy::obs
