#include "src/eval/degradation.h"

#include <vector>

namespace murphy::eval {

std::string_view degradation_name(Degradation d) {
  switch (d) {
    case Degradation::kNone: return "unchanged";
    case Degradation::kMissingValues: return "missing_values";
    case Degradation::kMissingEdge: return "missing_edge";
    case Degradation::kMissingEntity: return "missing_entity";
    case Degradation::kMissingMetric: return "missing_metric";
  }
  return "unknown";
}

void apply_degradation(emulation::DiagnosisCase& c, Degradation d, Rng& rng) {
  telemetry::MonitoringDb& db = c.db;
  switch (d) {
    case Degradation::kNone:
      return;

    case Degradation::kMissingValues: {
      // 25% of entities lose history before the incident.
      for (const EntityId e : db.all_entities()) {
        if (!rng.chance(0.25)) continue;
        for (const MetricKindId kind : db.metrics().kinds_of(e)) {
          auto* ts = db.metrics().find_mutable(e, kind);
          if (ts) ts->invalidate_before(c.incident_start);
        }
      }
      return;
    }

    case Degradation::kMissingEdge: {
      // Remove one randomly chosen caller->callee association.
      std::vector<std::size_t> rpc_edges;
      for (std::size_t i = 0; i < db.association_count(); ++i)
        if (db.association(i).kind ==
            telemetry::RelationKind::kCallerCallee)
          rpc_edges.push_back(i);
      if (!rpc_edges.empty())
        db.remove_association(rpc_edges[rng.below(rpc_edges.size())]);
      return;
    }

    case Degradation::kMissingEntity: {
      // Remove a random entity that is neither the symptom, the root cause,
      // nor in the relaxed acceptance set.
      std::vector<EntityId> removable;
      for (const EntityId e : db.all_entities()) {
        if (e == c.symptom_entity || e == c.root_cause) continue;
        bool relaxed = false;
        for (const EntityId r : c.relaxed_set) relaxed |= (r == e);
        if (!relaxed) removable.push_back(e);
      }
      if (!removable.empty())
        db.remove_entity(removable[rng.below(removable.size())]);
      return;
    }

    case Degradation::kMissingMetric: {
      // Remove one metric (not the symptom metric, if the root cause IS the
      // symptom entity) of the root-cause entity.
      const auto kinds = db.metrics().kinds_of(c.root_cause);
      if (kinds.empty()) return;
      const auto symptom_kind = db.catalog().find(c.symptom_metric);
      std::vector<MetricKindId> eligible;
      for (const MetricKindId k : kinds)
        if (!(c.root_cause == c.symptom_entity && k == symptom_kind))
          eligible.push_back(k);
      if (!eligible.empty())
        db.metrics().erase(c.root_cause,
                           eligible[rng.below(eligible.size())]);
      return;
    }
  }
}

}  // namespace murphy::eval
