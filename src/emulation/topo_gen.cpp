#include "src/emulation/topo_gen.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <string>

#include "src/emulation/workload.h"
#include "src/telemetry/metric_catalog.h"

namespace murphy::emulation {
namespace {

constexpr std::size_t kSharedApp = SIZE_MAX;

std::string_view tier_prefix(ServiceTier t) {
  switch (t) {
    case ServiceTier::kGateway: return "gw";
    case ServiceTier::kMid: return "svc";
    case ServiceTier::kDatastore: return "db";
    case ServiceTier::kSharedInfra: return "infra";
  }
  return "svc";
}

// Geometric out-degree in [1, cap]: P(d = k) ~ continue^(k-1).
std::size_t draw_fanout(Rng& rng, double cont, std::size_t cap) {
  std::size_t d = 1;
  while (d < cap && rng.chance(cont)) ++d;
  return d;
}

// Preferential-attachment pick: candidate weight = in_degree + 1, so shared
// backends accumulate callers the way real ones do. Deterministic given the
// rng stream and the candidate order.
ServiceIdx pick_preferential(Rng& rng, const std::vector<ServiceIdx>& pool,
                             const std::vector<std::size_t>& in_degree) {
  assert(!pool.empty());
  std::size_t total = 0;
  for (const ServiceIdx s : pool) total += in_degree[s] + 1;
  std::size_t roll = rng.below(total);
  for (const ServiceIdx s : pool) {
    const std::size_t w = in_degree[s] + 1;
    if (roll < w) return s;
    roll -= w;
  }
  return pool.back();
}

struct ServicePlan {
  ServiceTier tier;
  std::size_t app;    // kSharedApp for the infra tier
  std::size_t layer;  // global layer index; edges go strictly forward
};

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
}

void fnv_str(std::uint64_t& h, const std::string& s) {
  fnv_bytes(h, s.data(), s.size());
  const char sep = '\0';
  fnv_bytes(h, &sep, 1);
}

void fnv_u64(std::uint64_t& h, std::uint64_t v) { fnv_bytes(h, &v, 8); }

void fnv_f64(std::uint64_t& h, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  fnv_u64(h, bits);
}

}  // namespace

GeneratedTopology generate_topology(const TopoGenOptions& opts) {
  GeneratedTopology topo;
  topo.opts = opts;
  AppModel& app = topo.app;
  Rng rng(opts.seed);

  const std::size_t apps = std::max<std::size_t>(opts.applications, 1);
  // Tier sizing. Clamps guarantee >= 1 gateway + 1 mid + 1 datastore per
  // application even for tiny `services` values.
  const std::size_t min_services = apps * 3 + 1;
  const std::size_t total = std::max(opts.services, min_services);
  std::size_t n_infra = std::max<std::size_t>(
      static_cast<std::size_t>(std::lround(
          static_cast<double>(total) * opts.shared_infra_fraction)),
      1);
  std::size_t n_data = std::max<std::size_t>(
      static_cast<std::size_t>(
          std::lround(static_cast<double>(total) * opts.datastore_fraction)),
      apps);
  if (n_infra + n_data + 2 * apps > total)
    n_data = total > n_infra + 2 * apps ? total - n_infra - 2 * apps : apps;
  const std::size_t n_gateway = apps;  // one entry per application
  const std::size_t n_mid = total - n_gateway - n_data - n_infra;
  const std::size_t mid_layers = std::max<std::size_t>(
      std::min(opts.mid_layers, n_mid / apps == 0 ? 1 : n_mid / apps), 1);

  // Layer plan: layer 0 = gateways, layers 1..mid_layers = mids,
  // mid_layers+1 = datastores, mid_layers+2 = shared infra. Every edge goes
  // from a strictly smaller layer to a strictly larger one => DAG, no
  // self-loops, by construction.
  app.name = "enterprise-" + std::to_string(total) + "s" +
             std::to_string(apps) + "a-" + std::to_string(opts.seed);
  std::vector<ServicePlan> plan;
  plan.reserve(total);
  for (std::size_t a = 0; a < apps; ++a)
    plan.push_back({ServiceTier::kGateway, a, 0});
  // Mid services round-robin across applications, spread over layers as
  // evenly as the count allows (earlier layers get the remainder).
  for (std::size_t i = 0; i < n_mid; ++i) {
    const std::size_t a = i % apps;
    const std::size_t layer = 1 + (i / apps) % mid_layers;
    plan.push_back({ServiceTier::kMid, a, layer});
  }
  for (std::size_t i = 0; i < n_data; ++i)
    plan.push_back({ServiceTier::kDatastore, i % apps, mid_layers + 1});
  for (std::size_t i = 0; i < n_infra; ++i)
    plan.push_back({ServiceTier::kSharedInfra, kSharedApp, mid_layers + 2});

  // Nodes: services interleave across them round-robin, so one node hosts
  // containers of several applications — the shared-hardware coupling the
  // enterprise setting needs.
  const std::size_t per_node = std::max<std::size_t>(opts.services_per_node, 1);
  const std::size_t n_nodes = (total + per_node - 1) / per_node;
  for (std::size_t n = 0; n < n_nodes; ++n)
    app.nodes.push_back(NodeSpec{"node-" + std::to_string(n),
                                 opts.node_cores});

  // Services + one container each. Per-tier cost/latency profiles with a
  // little per-service jitter; every draw comes from `rng` in plan order.
  std::vector<std::size_t> tier_counter(4, 0);
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const ServicePlan& p = plan[i];
    const std::size_t tier_i = tier_counter[static_cast<std::size_t>(p.tier)]++;
    std::string name =
        p.app == kSharedApp ? std::string("shared") : "app" + std::to_string(p.app);
    name += ".";
    name += tier_prefix(p.tier);
    name += std::to_string(tier_i);

    ContainerSpec c;
    c.name = name + "-ctr";
    c.node = i % n_nodes;
    c.cpu_limit_cores = p.tier == ServiceTier::kDatastore
                            ? rng.uniform(1.5, 2.5)
                            : rng.uniform(0.8, 1.6);
    app.containers.push_back(c);

    ServiceSpec s;
    s.name = std::move(name);
    switch (p.tier) {
      case ServiceTier::kGateway:
        s.base_latency_ms = rng.uniform(0.8, 1.5);
        s.cpu_cost_per_req = rng.uniform(0.001, 0.002);
        break;
      case ServiceTier::kMid:
        s.base_latency_ms = rng.uniform(1.0, 3.0);
        s.cpu_cost_per_req = rng.uniform(0.002, 0.005);
        break;
      case ServiceTier::kDatastore:
        s.base_latency_ms = rng.uniform(1.5, 4.0);
        s.cpu_cost_per_req = rng.uniform(0.003, 0.006);
        break;
      case ServiceTier::kSharedInfra:
        s.base_latency_ms = rng.uniform(0.3, 1.0);
        s.cpu_cost_per_req = rng.uniform(0.001, 0.003);
        break;
    }
    s.container = app.containers.size() - 1;
    app.services.push_back(s);
    topo.tier.push_back(p.tier);
    topo.app_of.push_back(p.app);
    if (p.tier == ServiceTier::kGateway)
      topo.gateways.push_back(app.services.size() - 1);
  }

  // Edges. For each service, the callable pool is every service of a
  // strictly LATER layer within the same application, plus datastores of
  // the same application and the shared infra tier. Fan-out is geometric;
  // callees picked preferentially by current in-degree.
  std::vector<std::size_t> in_degree(total, 0);
  auto add_edge = [&](ServiceIdx a, ServiceIdx b, double fanout) {
    app.call_edges.push_back(CallEdge{a, b, fanout});
    ++in_degree[b];
  };

  for (ServiceIdx s = 0; s < plan.size(); ++s) {
    if (plan[s].tier == ServiceTier::kDatastore) {
      // Datastores only reach shared infra, and only sometimes (backup
      // agents, config watchers).
      if (n_infra > 0 && rng.chance(0.3)) {
        std::vector<ServiceIdx> pool;
        for (ServiceIdx t = 0; t < plan.size(); ++t)
          if (plan[t].tier == ServiceTier::kSharedInfra) pool.push_back(t);
        add_edge(s, pick_preferential(rng, pool, in_degree),
                 rng.uniform(0.1, 0.4));
      }
      continue;
    }
    if (plan[s].tier == ServiceTier::kSharedInfra) continue;  // leaf tier

    std::vector<ServiceIdx> pool;
    for (ServiceIdx t = 0; t < plan.size(); ++t) {
      if (plan[t].layer <= plan[s].layer) continue;
      const bool same_app = plan[t].app == plan[s].app;
      const bool shared = plan[t].app == kSharedApp;
      if (same_app || shared) pool.push_back(t);
    }
    if (pool.empty()) continue;
    const std::size_t cap = plan[s].tier == ServiceTier::kGateway
                                ? std::max<std::size_t>(opts.max_fanout, 2)
                                : opts.max_fanout;
    std::size_t fanout = plan[s].tier == ServiceTier::kGateway
                             ? std::max<std::size_t>(
                                   draw_fanout(rng, 0.75, cap), 2)
                             : draw_fanout(rng, opts.fanout_continue, cap);
    fanout = std::min(fanout, pool.size());
    std::vector<ServiceIdx> picked;
    for (std::size_t k = 0; k < fanout; ++k) {
      ServiceIdx t = pick_preferential(rng, pool, in_degree);
      if (std::find(picked.begin(), picked.end(), t) != picked.end())
        continue;  // duplicate draw: fewer edges, never a multi-edge
      picked.push_back(t);
      add_edge(s, t, rng.chance(0.3) ? rng.uniform(0.2, 0.9) : 1.0);
    }
  }

  // Connectivity repair: every non-gateway needs at least one caller from
  // an earlier layer of its own application (gateway for layer-1, any
  // earlier same-app service otherwise; shared infra accepts any app).
  // Deterministic: services scanned in index order, caller drawn from rng.
  for (ServiceIdx s = 0; s < plan.size(); ++s) {
    if (plan[s].tier == ServiceTier::kGateway || in_degree[s] > 0) continue;
    std::vector<ServiceIdx> callers;
    for (ServiceIdx t = 0; t < plan.size(); ++t) {
      if (plan[t].layer >= plan[s].layer) continue;
      if (plan[t].tier == ServiceTier::kDatastore) continue;
      const bool same_app =
          plan[s].app == kSharedApp || plan[t].app == plan[s].app;
      if (same_app) callers.push_back(t);
    }
    assert(!callers.empty() && "layer 0 gateways always precede");
    add_edge(callers[rng.below(callers.size())], s, rng.uniform(0.3, 1.0));
  }

  // Reachability repair: preferential attachment plus the in-degree pass
  // guarantees callers, but a subtree hanging off an unreachable mid chain
  // is still possible in principle; walk from the gateways and wire any
  // unreached service to a reached earlier-layer one.
  std::vector<bool> reached(total, false);
  auto mark = [&](ServiceIdx g) {
    for (const ServiceIdx s : app.call_tree(g)) reached[s] = true;
  };
  for (const ServiceIdx g : topo.gateways) mark(g);
  for (ServiceIdx s = 0; s < plan.size(); ++s) {
    if (reached[s]) continue;
    std::vector<ServiceIdx> callers;
    for (ServiceIdx t = 0; t < plan.size(); ++t)
      if (reached[t] && plan[t].layer < plan[s].layer &&
          plan[t].tier != ServiceTier::kDatastore)
        callers.push_back(t);
    assert(!callers.empty());
    const ServiceIdx caller = callers[rng.below(callers.size())];
    add_edge(caller, s, rng.uniform(0.3, 1.0));
    mark(s);
    reached[s] = true;
  }

  return topo;
}

std::uint64_t topology_digest(const AppModel& app) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  fnv_str(h, app.name);
  fnv_u64(h, app.services.size());
  for (const ServiceSpec& s : app.services) {
    fnv_str(h, s.name);
    fnv_f64(h, s.base_latency_ms);
    fnv_f64(h, s.cpu_cost_per_req);
    fnv_f64(h, s.mem_base);
    fnv_f64(h, s.mem_per_rps);
    fnv_u64(h, s.container);
  }
  fnv_u64(h, app.call_edges.size());
  for (const CallEdge& e : app.call_edges) {
    fnv_u64(h, e.caller);
    fnv_u64(h, e.callee);
    fnv_f64(h, e.calls_per_request);
  }
  fnv_u64(h, app.containers.size());
  for (const ContainerSpec& c : app.containers) {
    fnv_str(h, c.name);
    fnv_u64(h, c.node);
    fnv_f64(h, c.cpu_limit_cores);
  }
  fnv_u64(h, app.nodes.size());
  for (const NodeSpec& n : app.nodes) {
    fnv_str(h, n.name);
    fnv_f64(h, n.cpu_cores);
  }
  fnv_u64(h, app.clients.size());
  for (const ClientSpec& c : app.clients) {
    fnv_str(h, c.name);
    fnv_u64(h, c.entry_service);
    fnv_u64(h, c.rps_schedule.size());
    for (const double v : c.rps_schedule) fnv_f64(h, v);
  }
  return h;
}

DiagnosisCase make_topology_case(const GeneratedTopology& topo,
                                 const TopologyCaseOptions& opts) {
  AppModel app = topo.app;  // local copy: clients + schedules are per-case
  Rng rng(opts.seed);

  // One open-loop client per gateway; diurnal-ish load with jitter so the
  // environment carries several variance sources.
  for (std::size_t g = 0; g < topo.gateways.size(); ++g) {
    ClientSpec cl;
    cl.name = "client-app" + std::to_string(g);
    cl.entry_service = topo.gateways[g];
    cl.rps_schedule =
        diurnal_load(opts.slices, opts.gateway_rps * rng.uniform(0.8, 1.2),
                     0.3, 80 + rng.below(60), 0.1, rng);
    app.clients.push_back(cl);
  }

  // Root candidates: mid and datastore containers (a faulted gateway makes
  // the symptom trivially adjacent; infra roots stay possible through
  // cascades but are rarely the stress target in the literature's sweeps).
  std::vector<ContainerIdx> candidates;
  for (ServiceIdx s = 0; s < app.services.size(); ++s)
    if (topo.tier[s] == ServiceTier::kMid ||
        topo.tier[s] == ServiceTier::kDatastore)
      candidates.push_back(app.services[s].container);
  assert(!candidates.empty());

  IncidentOptions iopts;
  iopts.kind = opts.fault;
  iopts.seed = rng();
  iopts.start = opts.slices * 2 / 3;
  iopts.duration = std::min(opts.incident_duration,
                            opts.slices - iopts.start);
  iopts.intensity = opts.intensity;
  iopts.num_roots = opts.num_roots;
  IncidentPlan plan = plan_incident(app, candidates, iopts);
  apply_amplifications(app, plan.amplifications);

  SimOptions sim;
  sim.slices = opts.slices;
  sim.noise = opts.noise;
  sim.seed = rng();
  sim.bidirectional_call_edges = topo.opts.bidirectional_call_edges;
  SimResult res = simulate(app, plan.faults, sim);

  DiagnosisCase c;
  c.name = std::string("topo-") + app.name + "-" +
           std::string(incident_kind_name(opts.fault));
  c.entities = res.entities;

  // Symptom: the client whose call tree reaches the first root container —
  // the user actually hurt by the incident. Fallback (possible only for
  // infra-tier cascade roots): the client with the largest relative latency
  // degradation inside the incident window.
  ClientIdx symptom_client = app.clients.size();
  for (ClientIdx cl = 0; cl < app.clients.size(); ++cl) {
    for (const ServiceIdx s : app.call_tree(app.clients[cl].entry_service)) {
      if (app.services[s].container == plan.root_containers.front()) {
        symptom_client = cl;
        break;
      }
    }
    if (symptom_client < app.clients.size()) break;
  }
  if (symptom_client == app.clients.size()) {
    double worst = -1.0;
    for (ClientIdx cl = 0; cl < app.clients.size(); ++cl) {
      double before = 0.0, during = 0.0;
      std::size_t nb = 0, nd = 0;
      for (TimeIndex t = 0; t < opts.slices; ++t) {
        if (t < plan.start) {
          before += res.client_latency[cl][t];
          ++nb;
        } else if (t < plan.end) {
          during += res.client_latency[cl][t];
          ++nd;
        }
      }
      const double ratio =
          nb > 0 && nd > 0 && before > 0.0
              ? (during / static_cast<double>(nd)) /
                    (before / static_cast<double>(nb))
              : 0.0;
      if (ratio > worst) {
        worst = ratio;
        symptom_client = cl;
      }
    }
  }
  c.symptom_entity = res.entities.clients[symptom_client];
  c.symptom_metric = std::string(telemetry::metrics::kLatency);

  // Ground truth per the plan: every root container. Relaxed set adds the
  // services hosted on root containers plus cascade secondaries (effects an
  // operator would accept as near-misses, never as the answer).
  for (const ContainerIdx root : plan.root_containers)
    c.all_roots.push_back(res.entities.containers[root]);
  c.root_cause = c.all_roots.front();
  c.relaxed_set = c.all_roots;
  for (ServiceIdx s = 0; s < app.services.size(); ++s) {
    const ContainerIdx ctr = app.services[s].container;
    const bool on_root =
        std::find(plan.root_containers.begin(), plan.root_containers.end(),
                  ctr) != plan.root_containers.end();
    if (on_root) c.relaxed_set.push_back(res.entities.services[s]);
  }
  for (const ContainerIdx sec : plan.secondary_containers)
    c.relaxed_set.push_back(res.entities.containers[sec]);

  c.incident_start = plan.start;
  c.incident_end = plan.end;
  // Hop budget to cover the deepest dependency chain the symptom can see:
  // client -> gateway -> mid_layers services -> datastore -> container, plus
  // one hop of slack for node/amplification detours.
  c.max_hops = topo.opts.mid_layers + 5;
  c.db = std::move(res.db);
  return c;
}

}  // namespace murphy::emulation
