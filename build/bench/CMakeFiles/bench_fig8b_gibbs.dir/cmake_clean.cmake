file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8b_gibbs.dir/bench_fig8b_gibbs.cpp.o"
  "CMakeFiles/bench_fig8b_gibbs.dir/bench_fig8b_gibbs.cpp.o.d"
  "bench_fig8b_gibbs"
  "bench_fig8b_gibbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8b_gibbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
