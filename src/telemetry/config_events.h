// Configuration-change events.
//
// §4.2 ("Edge cases"): newly spawned or reconfigured entities often have no
// usable history, so alongside the metric-driven diagnosis Murphy presents
// the operator with recent configuration changes (VM spawned, VM migrated,
// resources resized, app redeployed). This is the minimal event log the
// monitoring platforms of §2.1 expose for that purpose.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/common/ids.h"
#include "src/common/time_axis.h"

namespace murphy::telemetry {

enum class ConfigEventKind {
  kEntitySpawned,
  kEntityDecommissioned,
  kVmMigrated,
  kResourcesResized,
  kAppRedeployed,
  kConfigPushed,
};

[[nodiscard]] std::string_view config_event_kind_name(ConfigEventKind k);

struct ConfigEvent {
  ConfigEventKind kind = ConfigEventKind::kConfigPushed;
  EntityId entity;
  TimeIndex at = 0;
  std::string detail;  // free-form, e.g. "vCPU 4 -> 8"
};

class ConfigEventLog {
 public:
  void record(ConfigEvent event);

  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] const ConfigEvent& event(std::size_t i) const {
    return events_[i];
  }

  // Events in [from, to), newest first.
  [[nodiscard]] std::vector<ConfigEvent> in_window(TimeIndex from,
                                                   TimeIndex to) const;
  // Events touching one entity, newest first.
  [[nodiscard]] std::vector<ConfigEvent> for_entity(EntityId entity) const;

 private:
  std::vector<ConfigEvent> events_;
};

}  // namespace murphy::telemetry
