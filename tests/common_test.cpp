// Tests for the common substrate: strong identifiers, string helpers, RNG
// distribution edge behaviour not covered by the stats suite, and the
// ThreadPool task mode (submit/drain) the diagnosis service runs on.
#include <atomic>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <unordered_set>

#include <gtest/gtest.h>

#include "src/common/ids.h"
#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/common/thread_pool.h"
#include "src/common/time_axis.h"
#include "src/stats/summary.h"

namespace murphy {
namespace {

TEST(StrongId, DefaultIsInvalid) {
  EntityId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, EntityId::invalid());
  EXPECT_TRUE(EntityId(0).valid());
}

TEST(StrongId, DistinctTagTypesDoNotMix) {
  // Compile-time property: EntityId and AppId are different types. The
  // runtime check below just exercises equality/ordering.
  EXPECT_EQ(EntityId(3), EntityId(3));
  EXPECT_NE(EntityId(3), EntityId(4));
  EXPECT_LT(EntityId(3), EntityId(4));
}

TEST(StrongId, HashableInUnorderedContainers) {
  std::unordered_set<EntityId> set;
  set.insert(EntityId(1));
  set.insert(EntityId(2));
  set.insert(EntityId(1));
  EXPECT_EQ(set.size(), 2u);
}

TEST(MetricRefTest, PacksEntityAndKind) {
  const MetricRef a{EntityId(1), MetricKindId(2)};
  const MetricRef b{EntityId(1), MetricKindId(2)};
  const MetricRef c{EntityId(2), MetricKindId(1)};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(std::hash<MetricRef>{}(a), std::hash<MetricRef>{}(c));
}

TEST(Strings, JoinAndPad) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"solo"}, "-"), "solo");
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_right("abcdef", 3), "abc");
  EXPECT_EQ(pad_left("7", 3), "  7");
  EXPECT_EQ(pad_left("1234", 2), "12");
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(format_double(0.8617, 2), "0.86");
  EXPECT_EQ(format_double(3.0, 0), "3");
  EXPECT_EQ(format_double(-1.5, 1), "-1.5");
  EXPECT_EQ(format_double(std::nan(""), 2), "nan");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("flow-app0", "flow-"));
  EXPECT_FALSE(starts_with("app0-flow", "flow-"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_FALSE(starts_with("", "x"));
}

TEST(RngDistributions, ExponentialMeanMatchesRate) {
  Rng rng(17);
  stats::OnlineStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.exponential(2.0));
  EXPECT_NEAR(s.mean(), 0.5, 0.02);
  EXPECT_GE(s.min(), 0.0);
}

TEST(RngDistributions, ChanceFrequencyMatchesP) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
  // Degenerate probabilities.
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(RngDistributions, BelowCoversFullRangeWithoutBias) {
  Rng rng(23);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.below(5)];
  for (const int c : counts) {
    EXPECT_GT(c, 9200);
    EXPECT_LT(c, 10800);
  }
}

TEST(RngDistributions, BelowOneAlwaysZero) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(TimeAxisExtra, EmptyAxisBehaviour) {
  TimeAxis axis;
  EXPECT_TRUE(axis.empty());
  EXPECT_EQ(axis.index_of(123.0), 0u);
}

TEST(TimeAxisExtra, EqualityIncludesAllFields) {
  EXPECT_EQ(TimeAxis(0.0, 10.0, 5), TimeAxis(0.0, 10.0, 5));
  EXPECT_NE(TimeAxis(0.0, 10.0, 5), TimeAxis(0.0, 10.0, 6));
  EXPECT_NE(TimeAxis(0.0, 10.0, 5), TimeAxis(1.0, 10.0, 5));
}

TEST(ThreadPoolTasks, DrainCompletesEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 500; ++i)
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  pool.drain();
  EXPECT_EQ(done.load(), 500);
  // drain() on a quiescent pool returns immediately.
  pool.drain();
  EXPECT_EQ(done.load(), 500);
}

TEST(ThreadPoolTasks, ZeroWorkerPoolRunsTasksInline) {
  ThreadPool pool(0);
  int done = 0;
  pool.submit([&done] { ++done; });
  EXPECT_EQ(done, 1);  // completed before submit() returned
  pool.drain();
  EXPECT_EQ(done, 1);
}

TEST(ThreadPoolTasks, DrainRethrowsFirstTaskExceptionThenClears) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  pool.submit([] { throw std::runtime_error("task boom"); });
  for (int i = 0; i < 50; ++i)
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_THROW(pool.drain(), std::runtime_error);
  EXPECT_EQ(done.load(), 50);  // the failure did not abandon later tasks
  pool.drain();                // error was consumed by the first drain
}

TEST(ThreadPoolTasks, DestructorAbandonsQueuedButFinishesInFlight) {
  std::atomic<int> started{0};
  std::atomic<int> finished{0};
  std::atomic<bool> release{false};
  {
    ThreadPool pool(1);
    // First task occupies the lone worker until released; the rest queue up
    // behind it and are abandoned when the pool is destroyed.
    pool.submit([&] {
      started.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
      finished.fetch_add(1);
    });
    for (int i = 0; i < 20; ++i)
      pool.submit([&] {
        started.fetch_add(1);
        finished.fetch_add(1);
      });
    while (started.load() == 0) std::this_thread::yield();
    release.store(true);
    // Destructor runs here: joins the worker, so the in-flight task always
    // completes; whatever is still queued is dropped unexecuted.
  }
  EXPECT_GE(finished.load(), 1);
  EXPECT_EQ(finished.load(), started.load());  // nothing half-run
  EXPECT_LE(finished.load(), 21);
}

TEST(ThreadPoolTasks, TasksCoexistWithParallelForBatches) {
  ThreadPool pool(3);
  std::atomic<int> task_done{0};
  std::atomic<int> iter_done{0};
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 8; ++i)
      pool.submit([&] { task_done.fetch_add(1, std::memory_order_relaxed); });
    pool.parallel_for(
        64, [&](std::size_t) { iter_done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.drain();
  EXPECT_EQ(task_done.load(), 80);
  EXPECT_EQ(iter_done.load(), 640);
}

}  // namespace
}  // namespace murphy
