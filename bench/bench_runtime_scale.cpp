// §6.7 — runtime and scale: google-benchmark measurements of Murphy's two
// cost components (online training, counterfactual inference) against the
// paper's complexity model O((N+M)T + (N+M)W), plus end-to-end diagnosis at
// growing relationship-graph sizes.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/core/factor_model.h"
#include "src/core/metric_space.h"
#include "src/core/murphy.h"
#include "src/core/sampler.h"
#include "src/enterprise/dynamics.h"
#include "src/enterprise/topology.h"
#include "src/eval/runner.h"

using namespace murphy;

namespace {

// Builds an enterprise environment whose relationship graph (4 hops from a
// symptom VM) has on the order of `apps * 60` entities.
enterprise::Topology make_env(std::size_t apps, std::size_t slices) {
  enterprise::TopologyOptions topt;
  topt.num_apps = apps;
  topt.hosts = std::max<std::size_t>(4, apps);
  topt.tors = 2;
  topt.ports_per_tor = 8;
  topt.datastores = 3;
  topt.seed = 5;
  auto topo = enterprise::generate_topology(topt);
  enterprise::DynamicsOptions dopt;
  dopt.slices = slices;
  dopt.seed = 6;
  enterprise::generate_dynamics(topo, {}, dopt);
  return topo;
}

void BM_OnlineTraining(benchmark::State& state) {
  const std::size_t apps = static_cast<std::size_t>(state.range(0));
  const std::size_t slices = static_cast<std::size_t>(state.range(1));
  const std::size_t threads = static_cast<std::size_t>(state.range(2));
  const auto topo = make_env(apps, slices);
  const std::vector<EntityId> seeds{topo.vms[0]};
  const auto graph = graph::RelationshipGraph::build(topo.db, seeds, 4);
  const core::MetricSpace space(topo.db, graph);
  for (auto _ : state) {
    core::FactorTrainingOptions opts;
    opts.num_threads = threads;
    const core::FactorSet factors(topo.db, graph, space, 0, slices, opts);
    benchmark::DoNotOptimize(&factors);
  }
  state.counters["entities"] = static_cast<double>(graph.node_count());
  state.counters["vars"] = static_cast<double>(space.size());
  state.counters["T"] = static_cast<double>(slices);
  state.counters["threads"] = static_cast<double>(threads);
}

void BM_CounterfactualEvaluation(benchmark::State& state) {
  const std::size_t rounds = static_cast<std::size_t>(state.range(0));
  const auto topo = make_env(6, 168);
  const std::vector<EntityId> seeds{topo.vms[0]};
  const auto graph = graph::RelationshipGraph::build(topo.db, seeds, 4);
  const core::MetricSpace space(topo.db, graph);
  core::FactorTrainingOptions topts;
  const core::FactorSet factors(topo.db, graph, space, 0, 168, topts);
  const auto state_vec = space.snapshot(topo.db, 167);

  // Candidate: the in-graph flow farthest from the symptom VM that still
  // reaches it (so the sampler resamples a real multi-hop subgraph).
  const auto sym = *graph.index_of(topo.vms[0]);
  const auto dist_to_sym = graph.distances_to(sym);
  graph::NodeIndex cand = sym;
  std::size_t best = 0;
  for (graph::NodeIndex n = 0; n < graph.node_count(); ++n) {
    if (topo.db.entity(graph.entity_of(n)).type !=
        telemetry::EntityType::kFlow)
      continue;
    if (dist_to_sym[n] == graph::kUnreachable) continue;
    if (dist_to_sym[n] > best) {
      best = dist_to_sym[n];
      cand = n;
    }
  }
  const auto sym_var = space.vars_of(sym)[0];
  const auto cand_var = space.vars_of(cand)[0];

  core::SamplerOptions sopts;
  sopts.gibbs_rounds = rounds;
  sopts.num_samples = 100;
  core::CounterfactualSampler sampler(graph, space, factors, sopts);
  for (auto _ : state) {
    auto verdict = sampler.evaluate(cand, cand_var, sym, sym_var, state_vec,
                                    true);
    benchmark::DoNotOptimize(verdict);
  }
  state.counters["W"] = static_cast<double>(rounds);
  state.counters["entities"] = static_cast<double>(graph.node_count());
}

void BM_EndToEndDiagnosis(benchmark::State& state) {
  const std::size_t apps = static_cast<std::size_t>(state.range(0));
  const std::size_t threads = static_cast<std::size_t>(state.range(1));
  const auto topo = make_env(apps, 168);
  core::MurphyOptions mopts;
  mopts.sampler.num_samples = 100;
  mopts.num_threads = threads;
  core::MurphyDiagnoser murphy(mopts);
  core::DiagnosisRequest req;
  req.db = &topo.db;
  req.symptom_entity = topo.vms[0];
  req.symptom_metric = "cpu_util";
  req.now = 167;
  req.train_begin = 0;
  req.train_end = 168;
  double train_ms = 0.0, infer_ms = 0.0;
  std::size_t iters = 0;
  for (auto _ : state) {
    auto result = murphy.diagnose(req);
    benchmark::DoNotOptimize(result);
    train_ms += result.timings.training_ms;
    infer_ms += result.timings.inference_ms;
    ++iters;
  }
  state.counters["db_entities"] = static_cast<double>(topo.entity_count());
  state.counters["threads"] = static_cast<double>(threads);
  if (iters > 0) {
    state.counters["train_ms"] = train_ms / static_cast<double>(iters);
    state.counters["infer_ms"] = infer_ms / static_cast<double>(iters);
  }
}

// Observability overhead on the same end-to-end diagnosis. Modes:
//   0 = null sink: no tracer/metrics attached (spans still read the clock
//       for PhaseTimings but record nothing);
//   1 = metrics only;
//   2 = fully enabled: tracer + metrics + per-candidate audit records.
// The compiled-out point needs a -DMURPHY_OBS_COMPILED_OUT=ON build of this
// same binary; mode 0 of that build is the "compiled out" row.
void BM_TracingOverhead(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const auto topo = make_env(6, 168);
  obs::Tracer tracer;
  obs::MetricsRegistry registry;
  core::MurphyOptions mopts;
  mopts.sampler.num_samples = 100;
  mopts.num_threads = 1;
  if (mode >= 1) mopts.obs.metrics = &registry;
  if (mode >= 2) {
    mopts.obs.tracer = &tracer;
    mopts.obs.collect_audit = true;
  }
  core::MurphyDiagnoser murphy(mopts);
  core::DiagnosisRequest req;
  req.db = &topo.db;
  req.symptom_entity = topo.vms[0];
  req.symptom_metric = "cpu_util";
  req.now = 167;
  req.train_begin = 0;
  req.train_end = 168;
  std::size_t spans = 0;
  for (auto _ : state) {
    auto result = murphy.diagnose(req);
    benchmark::DoNotOptimize(result);
    state.PauseTiming();
    spans = tracer.events().size();
    tracer.clear();
    registry.reset();
    state.ResumeTiming();
  }
  state.counters["mode"] = static_cast<double>(mode);
  state.counters["spans_per_run"] = static_cast<double>(spans);
}

}  // namespace

// Training cost ~ (N+M) * T: sweep graph size, history length, and threads
// (the speedup column; thread count 0 = one per hardware core).
BENCHMARK(BM_OnlineTraining)
    ->Args({2, 168, 1})
    ->Args({6, 168, 1})
    ->Args({12, 168, 1})
    ->Args({6, 84, 1})
    ->Args({6, 336, 1})
    ->Args({12, 168, 2})
    ->Args({12, 168, 4})
    ->Args({12, 168, 0})
    ->Unit(benchmark::kMillisecond);

// Inference cost ~ (N+M) * W: sweep Gibbs rounds.
BENCHMARK(BM_CounterfactualEvaluation)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// End to end at growing scale; at the largest scale point, sweep threads to
// measure the parallel-engine speedup over the serial (1-thread) path.
BENCHMARK(BM_EndToEndDiagnosis)
    ->Args({2, 1})
    ->Args({6, 1})
    ->Args({12, 1})
    ->Args({12, 2})
    ->Args({12, 4})
    ->Args({12, 0})
    ->Unit(benchmark::kMillisecond);

// Observability overhead sweep (EXPERIMENTS.md records the measured rows).
BENCHMARK(BM_TracingOverhead)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

namespace {

// Mirrors each run's adjusted real time into the global metrics registry so
// write_bench_json emits a self-contained, provenance-stamped baseline —
// BENCH_runtime_scale.json carries the timings, not just engine counters.
class MetricsMirrorReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      obs::global_metrics()
          .gauge("bench." + run.benchmark_name() + "_ms")
          ->set(run.GetAdjustedRealTime());
    }
  }
};

}  // namespace

// BENCHMARK_MAIN(), plus the machine-readable metrics dump every other
// bench binary emits (satellite: BENCH_<name>.json).
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  MetricsMirrorReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  // Environments are built per-benchmark by make_env(apps, slices); stamp
  // the family's largest point so the snapshot records what "apps=12"
  // means physically (hosts = max(4, apps), topology seed 5).
  murphy::bench::stamp_workload(
      {"enterprise-make_env", 12, 12, /*topology seed=*/5, ""});
  murphy::bench::write_bench_json("runtime_scale");
  return 0;
}
