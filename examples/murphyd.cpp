// murphyd — the diagnosis engine as a long-running service (DESIGN.md §9).
//
// Demonstrates the src/service stack end to end: a TelemetryStream fed by a
// replayed telemetry feed (CSV import or the built-in interference
// scenario), a DiagnosisService answering requests concurrently with
// ingestion, and snapshot save/restore for warm restarts. Commands arrive
// as lines on stdin, one response line (OK .../ERR ...) per command:
//
//   DIAGNOSE <entity> <metric> [max_hops] [deadline_ms]
//   INGEST <entity> <metric> <slice> <value>
//   REPLAY <n>            replay the next n feed slices into the stream
//   EXTEND <n>            grow the time axis by n empty slices
//   SNAPSHOT <path>       save a consistent snapshot (diagnoses keep running)
//   STATS                 one-line summary + the full metrics-registry JSON
//   MARKERS               one-line JSON array of T2-style fleet markers
//                         (snapshot-diff since the previous MARKERS/export)
//   INCIDENTS             one-line JSON array of watchdog incidents
//   QUIT
//
// With --watchdog the stream's commit observer feeds the always-on watchdog
// (DESIGN.md §10): every replayed slice is scanned, sustained anomalies
// auto-enqueue prioritized diagnoses, and incident lifecycle transitions are
// journaled to stderr as they happen. --marker-every N exports fleet markers
// to stderr every N replayed slices through the same aggregator MARKERS uses.
//
// Usage:
//   murphyd                               # built-in microservice scenario
//   murphyd --csv PREFIX --interval 10    # csv_export dataset
//   murphyd --snapshot FILE               # resume from a snapshot
//   common: --split F (warm fraction, default 0.75) --workers N --queue N
//           --replay-ms M (auto-replay one slice every M ms)
//           --watchdog --marker-every N --audit-out FILE
//           --fast-inference (vectorized counterfactual kernel, DESIGN.md §11)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include <fstream>

#include "src/emulation/scenarios.h"
#include "src/obs/markers.h"
#include "src/obs/metrics.h"
#include "src/service/diagnosis_service.h"
#include "src/service/feed.h"
#include "src/service/telemetry_stream.h"
#include "src/telemetry/csv_import.h"
#include "src/telemetry/snapshot.h"
#include "src/watchdog/watchdog.h"

using namespace murphy;

namespace {

struct Args {
  std::string csv_prefix;
  double interval = 10.0;
  std::string snapshot;
  double split = 0.75;
  std::size_t workers = 2;
  std::size_t queue = 64;
  long replay_ms = 0;  // 0 = manual REPLAY only
  bool watchdog = false;
  bool fast_inference = false;
  std::size_t marker_every = 0;  // 0 = MARKERS verb only
  std::string audit_out;         // incident-linked diagnosis audits (JSONL)
};

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--csv") {
      a.csv_prefix = next();
    } else if (flag == "--interval") {
      a.interval = std::stod(next());
    } else if (flag == "--snapshot") {
      a.snapshot = next();
    } else if (flag == "--split") {
      a.split = std::stod(next());
    } else if (flag == "--workers") {
      a.workers = static_cast<std::size_t>(std::stoul(next()));
    } else if (flag == "--queue") {
      a.queue = static_cast<std::size_t>(std::stoul(next()));
    } else if (flag == "--replay-ms") {
      a.replay_ms = std::stol(next());
    } else if (flag == "--watchdog") {
      a.watchdog = true;
    } else if (flag == "--fast-inference") {
      a.fast_inference = true;
    } else if (flag == "--marker-every") {
      a.marker_every = static_cast<std::size_t>(std::stoul(next()));
    } else if (flag == "--audit-out") {
      a.audit_out = next();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      std::exit(2);
    }
  }
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);

  // --- source db: snapshot, CSV dataset, or the built-in scenario ----------
  telemetry::MonitoringDb source;
  if (!args.snapshot.empty()) {
    telemetry::SnapshotError err;
    auto loaded = telemetry::load_snapshot_file(args.snapshot, &err);
    if (!loaded.has_value()) {
      std::fprintf(stderr, "snapshot load failed: %s\n", err.message.c_str());
      return 1;
    }
    source = std::move(*loaded);
  } else if (!args.csv_prefix.empty()) {
    telemetry::ImportError err;
    auto imported =
        telemetry::import_csv_files(args.csv_prefix, args.interval, &err);
    if (!imported.has_value()) {
      std::fprintf(stderr, "csv import failed (line %zu): %s\n", err.line,
                   err.message.c_str());
      return 1;
    }
    source = std::move(imported->db);
  } else {
    emulation::InterferenceOptions sopts;
    source = std::move(make_interference_case(sopts).db);
  }

  // --- split into warm prefix + replayable tail -----------------------------
  const std::size_t total = source.metrics().axis().size();
  const auto split =
      static_cast<TimeIndex>(args.split * static_cast<double>(total));
  service::ReplayFeed feed = service::make_replay_feed(source, split);
  service::TelemetryStream stream(std::move(feed.warm));

  service::DiagnosisServiceOptions sopts;
  sopts.num_workers = args.workers;
  sopts.max_queue = args.queue;
  sopts.murphy.num_threads = 1;  // concurrency comes from the worker pool
  // Vectorized counterfactual inference (statistical-equivalence contract;
  // audits and the infer.fast_path counter record the mode per verdict).
  sopts.murphy.fast_inference = args.fast_inference;
  sopts.murphy.obs.metrics = &obs::global_metrics();
  sopts.murphy.obs.collect_audit = !args.audit_out.empty();
  service::DiagnosisService svc(stream, sopts);

  // --- always-on watchdog + fleet-marker export -----------------------------
  watchdog::WatchdogOptions wopts;
  wopts.on_event = [](const obs::IncidentEvent& ev) {
    std::fprintf(stderr, "murphyd incident %s\n", obs::to_json(ev).c_str());
  };
  watchdog::Watchdog wd(stream, svc, std::move(wopts), &obs::global_metrics());
  if (args.watchdog) wd.attach();

  // One aggregator serves both the MARKERS verb and --marker-every exports;
  // each collect() reports the interval since the previous one.
  obs::MarkerAggregator markers;
  std::mutex marker_mu;
  auto export_markers = [&](double interval_sec) {
    std::lock_guard<std::mutex> lock(marker_mu);
    return markers.collect(obs::global_metrics().snapshot(), interval_sec);
  };

  std::atomic<std::size_t> replayed{0};
  std::atomic<bool> quitting{false};

  // One mutex serializes replay (REPLAY verb vs the auto-replay thread);
  // the stream itself is what makes replay safe against diagnoses. The
  // watchdog scan rides here too — one scan per replayed slice, which is
  // the scan schedule the determinism contract is stated against.
  std::mutex replay_mu;
  auto replay_n = [&](std::size_t n) {
    std::lock_guard<std::mutex> lock(replay_mu);
    std::size_t cells = 0;
    while (n-- > 0 && replayed.load() < feed.batches.size()) {
      cells += service::replay_slice(stream, feed, replayed.load());
      replayed.fetch_add(1);
      if (args.watchdog) wd.scan();
      if (args.marker_every > 0 && replayed.load() % args.marker_every == 0) {
        for (const obs::Marker& m :
             export_markers(static_cast<double>(args.marker_every)))
          std::fprintf(stderr, "murphyd marker %s %s\n", m.name.c_str(),
                       obs::marker_payload_json(m).c_str());
      }
    }
    svc.maintain();
    return cells;
  };

  std::thread auto_replay;
  if (args.replay_ms > 0) {
    auto_replay = std::thread([&] {
      while (!quitting.load() && replayed.load() < feed.batches.size()) {
        replay_n(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(args.replay_ms));
      }
    });
  }

  std::fprintf(stderr,
               "murphyd: %zu entities, %zu warm slices, %zu feed slices, %zu "
               "workers\n",
               stream.read()->entity_count(), split, feed.batches.size(),
               args.workers);

  // --- command loop ---------------------------------------------------------
  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string verb;
    in >> verb;
    if (verb.empty()) continue;

    if (verb == "QUIT") {
      std::printf("OK bye\n");
      break;
    } else if (verb == "STATS") {
      const obs::MetricsRegistry& m = obs::global_metrics();
      const obs::Histogram* h = m.find_histogram("service.total_ms");
      const auto cnt = [&](const char* name) {
        const obs::Counter* c = m.find_counter(name);
        return c == nullptr ? 0ULL : c->value();
      };
      // Summary fields first, then the FULL registry snapshot: every
      // instrument any subsystem ever registered, not the handful this
      // printf knew about (scripts/metrics_diff.py consumes the JSON).
      std::printf(
          "OK slices=%zu version=%llu queue=%zu replayed=%zu completed=%llu "
          "rejected=%llu deadline_exceeded=%llu p50_ms=%.1f p99_ms=%.1f "
          "metrics=%s\n",
          stream.slice_count(),
          static_cast<unsigned long long>(stream.data_version()),
          svc.queue_depth(), replayed.load(),
          static_cast<unsigned long long>(cnt("service.completed")),
          static_cast<unsigned long long>(cnt("service.rejected")),
          static_cast<unsigned long long>(cnt("service.deadline_exceeded")),
          h == nullptr ? 0.0 : h->quantile(0.5),
          h == nullptr ? 0.0 : h->quantile(0.99), m.to_json().c_str());
    } else if (verb == "MARKERS") {
      std::string out = "[";
      bool first = true;
      for (const obs::Marker& mk : export_markers(0.0)) {
        if (!first) out += ",";
        first = false;
        out += "{\"name\":\"" + mk.name +
               "\",\"payload\":" + obs::marker_payload_json(mk) + "}";
      }
      out += "]";
      std::printf("OK %s\n", out.c_str());
    } else if (verb == "INCIDENTS") {
      // Serialized against scan() (the replay mutex) — incidents_ is
      // scanner-side state.
      std::lock_guard<std::mutex> lock(replay_mu);
      std::printf("OK %s\n", watchdog::to_json(wd.incidents()).c_str());
    } else if (verb == "REPLAY") {
      std::size_t n = 1;
      in >> n;
      const std::size_t cells = replay_n(n);
      std::printf("OK replayed_to=%zu cells=%zu\n", replayed.load(), cells);
    } else if (verb == "EXTEND") {
      std::size_t n = 1;
      in >> n;
      stream.extend_axis(n);
      std::printf("OK slices=%zu\n", stream.slice_count());
    } else if (verb == "INGEST") {
      std::string entity, metric;
      TimeIndex t = 0;
      double value = 0.0;
      if (!(in >> entity >> metric >> t >> value)) {
        std::printf("ERR usage: INGEST <entity> <metric> <slice> <value>\n");
        continue;
      }
      const EntityId id = stream.read()->find_entity(entity);
      if (!id.valid()) {
        std::printf("ERR unknown entity %s\n", entity.c_str());
        continue;
      }
      std::printf(stream.append_cell(id, metric, t, value)
                      ? "OK\n"
                      : "ERR cell dropped (slice out of axis?)\n");
    } else if (verb == "SNAPSHOT") {
      std::string path;
      if (!(in >> path)) {
        std::printf("ERR usage: SNAPSHOT <path>\n");
        continue;
      }
      std::printf(stream.save_snapshot(path) ? "OK %s\n" : "ERR write %s\n",
                  path.c_str());
    } else if (verb == "DIAGNOSE") {
      std::string entity, metric;
      if (!(in >> entity >> metric)) {
        std::printf(
            "ERR usage: DIAGNOSE <entity> <metric> [hops] [deadline_ms]\n");
        continue;
      }
      service::ServiceRequest req;
      req.max_hops = 4;
      long deadline_ms = 0;
      in >> req.max_hops >> deadline_ms;
      {
        const auto db = stream.read();
        req.symptom_entity = db->find_entity(entity);
        const std::size_t slices = db->metrics().axis().size();
        if (slices == 0) {
          std::printf("ERR empty axis\n");
          continue;
        }
        req.now = slices - 1;
        req.train_begin = 0;
        req.train_end = slices;  // online training includes `now`
      }
      if (!req.symptom_entity.valid()) {
        std::printf("ERR unknown entity %s\n", entity.c_str());
        continue;
      }
      req.symptom_metric = metric;
      if (deadline_ms > 0)
        req.deadline = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(deadline_ms);
      auto fut = svc.submit(std::move(req));
      const service::ServiceResponse resp = fut.get();
      if (resp.status != service::RequestStatus::kOk) {
        std::printf("ERR %s (queue %.1fms run %.1fms)\n",
                    std::string(to_string(resp.status)).c_str(), resp.queue_ms,
                    resp.run_ms);
        continue;
      }
      std::ostringstream out;
      out << "OK id=" << resp.request_id << " version=" << resp.db_version
          << " run_ms=" << resp.run_ms;
      const auto db = stream.read();
      const std::size_t top =
          std::min<std::size_t>(resp.result.causes.size(), 5);
      for (std::size_t i = 0; i < top; ++i) {
        const auto& c = resp.result.causes[i];
        out << " " << (i + 1) << ":"
            << (db->has_entity(c.entity) ? db->entity(c.entity).name
                                         : "<gone>");
      }
      std::printf("%s\n", out.str().c_str());
    } else {
      std::printf("ERR unknown verb %s\n", verb.c_str());
    }
    std::fflush(stdout);
  }

  quitting.store(true);
  if (auto_replay.joinable()) auto_replay.join();
  if (args.watchdog) {
    // Settle the lifecycle (every incident diagnosed or resolved) before
    // the service stops accepting the watchdog's re-enqueues.
    std::lock_guard<std::mutex> lock(replay_mu);
    wd.drain();
    wd.detach();
    if (!args.audit_out.empty()) {
      std::ofstream out(args.audit_out);
      out << wd.audit_jsonl();
      std::fprintf(stderr, "murphyd: wrote %zu incident audits to %s\n",
                   wd.incidents().size(), args.audit_out.c_str());
    }
  }
  svc.stop();
  return 0;
}
