#include "src/core/murphy.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <unordered_map>

#include "src/common/thread_pool.h"
#include "src/core/explain.h"

namespace murphy::core {

namespace {

// Phase wall-clock goes into both PhaseTimings (always) and, when a metrics
// registry is attached, a per-phase histogram — so bench snapshots carry the
// timing distribution without separate plumbing.
void record_phase_ms(obs::MetricsRegistry* metrics, const char* phase,
                     double ms) {
  if (metrics == nullptr) return;
  metrics
      ->histogram(std::string("phase.") + phase + "_ms",
                  {0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0,
                   3000.0, 10000.0})
      ->observe(ms);
}

}  // namespace

TimeIndex recent_config_window_begin(TimeIndex train_begin,
                                     TimeIndex train_end, TimeIndex now) {
  const TimeIndex span = train_end > train_begin ? train_end - train_begin : 0;
  // ~10% of the training range, but never an empty window: with a short
  // range (span < 10) the old `span / 10` arithmetic degenerated to a
  // zero-length window that silently dropped every change before `now`.
  const TimeIndex window = std::max<TimeIndex>(1, span / 10);
  return now > window ? now - window : 0;  // clamp, TimeIndex is unsigned
}

MurphyDiagnoser::MurphyDiagnoser(MurphyOptions opts) : opts_(opts) {}

DiagnosisResult MurphyDiagnoser::diagnose(const DiagnosisRequest& request) {
  assert(request.db != nullptr);
  const telemetry::MonitoringDb& db = *request.db;
  const obs::ObsHooks& hooks = opts_.obs;
  DiagnosisResult result;

  obs::Span diag_span(hooks.tracer, "diagnose");
  if (diag_span.enabled()) {
    diag_span.arg("symptom_metric", request.symptom_metric);
    diag_span.arg("now", static_cast<std::uint64_t>(request.now));
  }
  if (hooks.metrics != nullptr) hooks.metrics->counter("diagnose.calls")->add(1);

  // Deadline enforcement polls only at phase boundaries: a phase always runs
  // to completion, so a completed diagnosis is bit-identical with or without
  // the hook, and a cancelled one is flagged rather than silently empty.
  const auto cancelled_at_checkpoint = [&]() -> bool {
    if (!opts_.cancel || !opts_.cancel()) return false;
    result.cancelled = true;
    if (hooks.metrics != nullptr)
      hooks.metrics->counter("diagnose.cancelled")->add(1);
    return true;
  };

  // 1. Relationship graph from the symptom entity.
  obs::Span graph_span(hooks.tracer, "graph_build");
  const std::vector<EntityId> seeds{request.symptom_entity};
  const auto graph = graph::RelationshipGraph::build(
      db, seeds, request.max_hops, opts_.max_graph_nodes);
  const auto symptom_node = graph.index_of(request.symptom_entity);
  if (!symptom_node) return result;

  const MetricSpace space(db, graph);
  const auto kind = db.catalog().find(request.symptom_metric);
  if (!kind.valid()) return result;
  const auto symptom_var = space.find(request.symptom_entity, kind);
  if (!symptom_var) return result;
  if (graph_span.enabled()) {
    graph_span.arg("nodes", static_cast<std::uint64_t>(graph.node_count()));
    graph_span.arg("vars", static_cast<std::uint64_t>(space.size()));
  }
  result.timings.graph_ms = graph_span.finish();
  record_phase_ms(hooks.metrics, "graph", result.timings.graph_ms);
  if (hooks.metrics != nullptr) {
    hooks.metrics->gauge("graph.nodes")
        ->set(static_cast<double>(graph.node_count()));
    hooks.metrics->gauge("graph.vars")->set(static_cast<double>(space.size()));
  }

  if (cancelled_at_checkpoint()) {
    result.timings.total_ms = diag_span.finish();
    return result;
  }

  // 2. Online training on [train_begin, train_end).
  obs::Span train_span(hooks.tracer, "train_factors");
  FactorTrainingOptions topts = opts_.training;
  topts.seed = opts_.seed;
  topts.num_threads = opts_.num_threads;
  topts.tracer = hooks.tracer;
  topts.metrics = hooks.metrics;
  topts.trace_parent = train_span.id();
  const FactorSet factors(db, graph, space, request.train_begin,
                          request.train_end, topts);
  result.timings.training_ms = train_span.finish();
  record_phase_ms(hooks.metrics, "training", result.timings.training_ms);

  if (cancelled_at_checkpoint()) {
    result.timings.total_ms = diag_span.finish();
    return result;
  }

  // 3. Candidate pruning.
  obs::Span search_span(hooks.tracer, "candidate_search");
  const auto state = space.snapshot(db, request.now);
  const bool symptom_high =
      state[*symptom_var] >=
      factors.conditional(*symptom_var).robust_center();

  CandidateSearchOptions sopts = opts_.search;
  sopts.thresholds = opts_.thresholds;
  const auto candidates = candidate_search(db, graph, space, factors, state,
                                           *symptom_node, sopts);
  if (search_span.enabled())
    search_span.arg("candidates", static_cast<std::uint64_t>(candidates.size()));
  result.timings.search_ms = search_span.finish();
  record_phase_ms(hooks.metrics, "search", result.timings.search_ms);

  if (cancelled_at_checkpoint()) {
    result.timings.total_ms = diag_span.finish();
    return result;
  }

  // 4. Counterfactual evaluation of each candidate. Candidates are
  // independent, so evaluate them in parallel; each gets its own RNG stream
  // derived from (seed, candidate), which makes the verdicts — and hence the
  // whole diagnosis — bitwise identical at every thread count.
  obs::Span infer_span(hooks.tracer, "counterfactual_inference");
  const std::uint64_t infer_span_id = infer_span.id();
  SamplerOptions smp = opts_.sampler;
  smp.seed = opts_.seed ^ 0x5EEDULL;
  smp.fast_inference = opts_.fast_inference;
  CounterfactualSampler sampler(graph, space, factors, smp);
  // One backward BFS from the symptom, shared by every candidate's
  // shortest-path-subgraph computation in the parallel loop below.
  sampler.prepare(*symptom_node);

  obs::Counter* c_evaluated = nullptr;
  obs::Counter* c_accepted = nullptr;
  obs::Counter* c_resamples = nullptr;
  obs::Counter* c_kernel_cells = nullptr;
  obs::Counter* c_fast = nullptr;
  obs::Counter* c_fast_fallback = nullptr;
  obs::Histogram* h_pvalue = nullptr;
  if (hooks.metrics != nullptr) {
    c_evaluated = hooks.metrics->counter("infer.candidates_evaluated");
    c_accepted = hooks.metrics->counter("infer.candidates_accepted");
    c_resamples = hooks.metrics->counter("infer.gibbs_node_resamples");
    c_kernel_cells = hooks.metrics->counter("infer.kernel_cells");
    // Mode provenance: which path produced the verdicts. fast_path counts
    // lane-batched evaluations; fast_fallback counts candidates that
    // requested fast mode but fell back to the scalar loop (non-flattened
    // conditionals on the resample path). Both stay 0 in scalar mode, so a
    // snapshot always records which mode it came from.
    if (opts_.fast_inference) {
      c_fast = hooks.metrics->counter("infer.fast_path");
      c_fast_fallback = hooks.metrics->counter("infer.fast_fallback");
    }
    h_pvalue = hooks.metrics->histogram(
        "infer.p_value", {0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0});
  }

  struct Accepted {
    graph::NodeIndex node;
    double anomaly;
  };
  std::vector<std::optional<Accepted>> verdicts(candidates.size());
  std::vector<obs::CandidateAudit> audits(
      hooks.collect_audit ? candidates.size() : 0);
  parallel_for(opts_.num_threads, candidates.size(), [&](std::size_t i) {
    const graph::NodeIndex cand = candidates[i];
    // Stable stream/parent ids keep the trace identical at any thread count.
    obs::Span cand_span(hooks.tracer, "evaluate_candidate", cand,
                        infer_span_id);
    const NodeAnomaly anomaly = node_anomaly(factors, space, cand, state);

    obs::CandidateAudit* aud =
        hooks.collect_audit ? &audits[i] : nullptr;
    if (aud != nullptr) {
      const EntityId entity = graph.entity_of(cand);
      aud->entity = entity;
      aud->entity_name = db.entity(entity).name;
      aud->driver_metric =
          std::string(db.catalog().name(space.var(anomaly.driver).kind));
      aud->anomaly_z = anomaly.score;
      aud->rank_score = anomaly.rank_score;
    }
    if (cand_span.enabled()) {
      cand_span.arg("entity", db.entity(graph.entity_of(cand)).name);
      cand_span.arg("anomaly_z", anomaly.score);
    }
    if (c_evaluated != nullptr) c_evaluated->add(1);

    if (cand == *symptom_node) {
      // The symptom entity itself is a root-cause candidate when its own
      // anomaly is strong (self-inflicted problems); counterfactualizing it
      // against itself is meaningless, so accept on anomaly alone.
      const bool self_accepted = anomaly.score > sopts.z_min;
      if (self_accepted) verdicts[i] = Accepted{cand, anomaly.rank_score};
      if (aud != nullptr) {
        aud->self_symptom = true;
        aud->accepted = self_accepted;
      }
      if (cand_span.enabled()) cand_span.arg("self_symptom", true);
      if (self_accepted && c_accepted != nullptr) c_accepted->add(1);
      return;
    }
    Rng rng(mix_seed(smp.seed, cand));
    const auto verdict =
        sampler.evaluate(cand, anomaly.driver, *symptom_node, *symptom_var,
                         state, symptom_high, rng);
    if (verdict.is_root_cause)
      verdicts[i] = Accepted{cand, anomaly.rank_score};

    if (aud != nullptr) {
      aud->evaluated = verdict.path_len > 0;
      aud->accepted = verdict.is_root_cause;
      aud->p_value = verdict.p_value;
      aud->mean_factual = verdict.mean_factual;
      aud->mean_counterfactual = verdict.mean_counterfactual;
      aud->counterfactual_delta =
          verdict.mean_counterfactual - verdict.mean_factual;
      aud->path_len = verdict.path_len;
      aud->fast_path = verdict.fast_path;
    }
    if (cand_span.enabled()) {
      cand_span.arg("p_value", verdict.p_value);
      cand_span.arg("accepted", verdict.is_root_cause);
    }
    if (c_resamples != nullptr) c_resamples->add(verdict.node_resamples);
    if (c_kernel_cells != nullptr) c_kernel_cells->add(verdict.kernel_cells);
    if (verdict.fast_path) {
      if (c_fast != nullptr) c_fast->add(1);
    } else if (c_fast_fallback != nullptr && verdict.path_len > 0) {
      c_fast_fallback->add(1);
    }
    if (h_pvalue != nullptr && verdict.path_len > 0)
      h_pvalue->observe(verdict.p_value);
    if (verdict.is_root_cause && c_accepted != nullptr) c_accepted->add(1);
  });
  std::vector<Accepted> accepted;
  for (const auto& v : verdicts)
    if (v) accepted.push_back(*v);
  result.timings.inference_ms = infer_span.finish();
  record_phase_ms(hooks.metrics, "inference", result.timings.inference_ms);

  if (cancelled_at_checkpoint()) {
    result.timings.total_ms = diag_span.finish();
    return result;
  }

  // 5. Rank by anomaly score (most anomalous first).
  std::sort(accepted.begin(), accepted.end(),
            [](const Accepted& a, const Accepted& b) {
              if (a.anomaly != b.anomaly) return a.anomaly > b.anomaly;
              return a.node < b.node;
            });

  // 6. Labels + explanation chains.
  obs::Span explain_span(hooks.tracer, "explain");
  std::vector<EntityLabel> labels(graph.node_count());
  parallel_for(opts_.num_threads, graph.node_count(), [&](std::size_t n) {
    labels[n] =
        label_node(db, space, factors, n, state, opts_.thresholds);
  });
  if (hooks.metrics != nullptr)
    hooks.metrics->counter("explain.nodes_labeled")->add(graph.node_count());

  // Audit lookup: candidate node -> its record, for rank and path fill-in.
  std::unordered_map<graph::NodeIndex, std::size_t> audit_of;
  if (hooks.collect_audit)
    for (std::size_t i = 0; i < candidates.size(); ++i)
      audit_of.emplace(candidates[i], i);

  for (const Accepted& a : accepted) {
    result.causes.push_back(
        RankedRootCause{graph.entity_of(a.node), a.anomaly});
    const auto path = explanation_path(graph, labels, a.node, *symptom_node);
    result.explanations.push_back(
        render_explanation(db, graph, labels, path));
    if (hooks.collect_audit) {
      obs::CandidateAudit& aud = audits[audit_of.at(a.node)];
      aud.rank = result.causes.size();  // 1-based: just pushed
      for (const graph::NodeIndex n : path)
        aud.path.push_back(db.entity(graph.entity_of(n)).name);
    }
  }
  result.timings.explain_ms = explain_span.finish();
  record_phase_ms(hooks.metrics, "explain", result.timings.explain_ms);

  // Surface configuration changes in the recent window (~10% of the
  // training range, i.e. the stretch that likely contains the incident).
  result.recent_config_changes = db.config_events().in_window(
      recent_config_window_begin(request.train_begin, request.train_end,
                                 request.now),
      request.now + 1);

  if (hooks.collect_audit) {
    result.audit.scheme = "murphy";
    result.audit.symptom_entity = db.entity(request.symptom_entity).name;
    result.audit.symptom_metric = request.symptom_metric;
    result.audit.now = request.now;
    result.audit.graph_nodes = graph.node_count();
    result.audit.variables = space.size();
    // Entity-id order: stable regardless of evaluation scheduling.
    std::sort(audits.begin(), audits.end(),
              [](const obs::CandidateAudit& a, const obs::CandidateAudit& b) {
                return a.entity < b.entity;
              });
    result.audit.candidates = std::move(audits);
  }

  if (diag_span.enabled())
    diag_span.arg("causes", static_cast<std::uint64_t>(result.causes.size()));
  result.timings.total_ms = diag_span.finish();
  record_phase_ms(hooks.metrics, "total", result.timings.total_ms);
  return result;
}

}  // namespace murphy::core
