#include "src/service/telemetry_stream.h"

#include <algorithm>

#include "src/obs/metrics.h"

namespace murphy::service {

TelemetryStream::TelemetryStream(telemetry::MonitoringDb db)
    : db_(std::move(db)) {}

TelemetryStream::ReadLock TelemetryStream::read() const {
  return ReadLock(mu_, &db_);
}

TelemetryStream::WriteLock TelemetryStream::write() {
  return WriteLock(mu_, &db_);
}

std::size_t TelemetryStream::append(std::span<const TelemetryCell> cells) {
  std::size_t written = 0;
  std::size_t unknown = 0;
  std::size_t out_of_axis = 0;
  std::vector<SeriesTouch> touches;
  CommitObserver observer;
  {
    std::unique_lock lock(mu_);
    const std::size_t slices = db_.metrics().axis().size();
    const bool observed = static_cast<bool>(observer_);
    if (observed) touches.reserve(cells.size());
    // Feed batches usually arrive grouped by series in ref order; sortedness
    // is tracked inline (the adjacency dedup is comparing refs anyway), so
    // the common case pays no extra pass below.
    bool refs_ascending = true;
    for (const TelemetryCell& c : cells) {
      if (!db_.has_entity(c.entity)) {
        ++unknown;
        continue;
      }
      if (c.t >= slices) {
        ++out_of_axis;
        continue;
      }
      std::uint64_t epoch = 0;
      db_.metrics().upsert_cell(c.entity, c.kind, c.t, c.value,
                                observed ? &epoch : nullptr);
      ++written;
      if (observed) {
        // The epoch is captured at the write itself; the adjacency check
        // dedups grouped batches (keeping the newest write's epoch) and the
        // sort/unique below catches stragglers.
        const MetricRef ref{c.entity, c.kind};
        if (!touches.empty() && touches.back().ref == ref) {
          touches.back().epoch = epoch;
        } else {
          if (!touches.empty() && ref < touches.back().ref)
            refs_ascending = false;
          touches.push_back({ref, epoch});
        }
      }
    }
    if (!touches.empty()) {
      if (!refs_ascending) {
        // Out-of-order batch: dedup keeping each series' newest epoch — sort
        // (ref asc, epoch desc) so unique-first wins. An ascending batch
        // needs neither pass: adjacency already deduped it (a non-adjacent
        // duplicate would have broken monotonicity).
        std::sort(touches.begin(), touches.end(),
                  [](const SeriesTouch& a, const SeriesTouch& b) {
                    if (!(a.ref == b.ref)) return a.ref < b.ref;
                    return a.epoch > b.epoch;
                  });
        touches.erase(
            std::unique(touches.begin(), touches.end(),
                        [](const SeriesTouch& a, const SeriesTouch& b) {
                          return a.ref == b.ref;
                        }),
            touches.end());
      }
      observer = observer_;
    }
  }
  // Defect counters outside the lock — they are process-global atomics.
  if (written > 0) obs::global_metrics().counter("ingest.cells")->add(written);
  if (unknown > 0)
    obs::global_metrics().counter("ingest.unknown_entity_dropped")
        ->add(unknown);
  if (out_of_axis > 0)
    obs::global_metrics().counter("ingest.out_of_axis_dropped")
        ->add(out_of_axis);
  // Post-commit notification, outside the lock so the observer may read the
  // stream (and so a slow observer never blocks readers or other writers).
  if (observer && !touches.empty()) observer(touches);
  return written;
}

void TelemetryStream::set_commit_observer(CommitObserver observer) {
  std::unique_lock lock(mu_);
  observer_ = std::move(observer);
}

bool TelemetryStream::append_cell(EntityId entity, std::string_view metric,
                                  TimeIndex t, double value) {
  MetricKindId kind;
  {
    std::unique_lock lock(mu_);
    kind = db_.catalog().intern(metric);
  }
  const TelemetryCell cell{entity, kind, t, value};
  return append(std::span<const TelemetryCell>(&cell, 1)) == 1;
}

void TelemetryStream::extend_axis(std::size_t extra_slices) {
  std::unique_lock lock(mu_);
  db_.metrics().extend_axis(extra_slices);
}

std::size_t TelemetryStream::slice_count() const {
  std::shared_lock lock(mu_);
  return db_.metrics().axis().size();
}

std::uint64_t TelemetryStream::data_version() const {
  std::shared_lock lock(mu_);
  return db_.data_version();
}

bool TelemetryStream::save_snapshot(const std::string& path) const {
  std::shared_lock lock(mu_);
  return telemetry::save_snapshot_file(db_, path);
}

bool TelemetryStream::restore_snapshot(const std::string& path,
                                       telemetry::SnapshotError* error) {
  // Parse outside the lock (the slow part), swap under it.
  auto loaded = telemetry::load_snapshot_file(path, error);
  if (!loaded.has_value()) return false;
  std::unique_lock lock(mu_);
  db_ = std::move(*loaded);
  return true;
}

}  // namespace murphy::service
