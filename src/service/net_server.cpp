#include "src/service/net_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace murphy::service {

namespace {

// epoll_event.data.u64 identities; connections count up from kFirstConnId.
constexpr std::uint64_t kTcpId = 1;
constexpr std::uint64_t kUnixId = 2;
constexpr std::uint64_t kWakeId = 3;
constexpr std::uint64_t kFirstConnId = 16;

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

[[nodiscard]] std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

// The '#tag' prefix is the protocol's business (protocol.h), but the
// connection-level rejection below bypasses dispatch, so it peels the tag
// itself to keep rejected lines correlatable.
[[nodiscard]] std::string_view peel_tag(std::string_view line) {
  const std::size_t start = line.find_first_not_of(" \t");
  if (start == std::string_view::npos || line[start] != '#') return {};
  const std::size_t end = line.find_first_of(" \t", start);
  const std::string_view tag = line.substr(
      start, (end == std::string_view::npos ? line.size() : end) - start);
  return tag.size() > 1 ? tag : std::string_view{};
}

}  // namespace

// Thread-safe handoff from completing workers (and immediate dispatches) to
// the loop thread. Held by shared_ptr from every in-flight sink closure, so
// a completion landing after a force-closed drain writes into refcounted
// memory, never into a dead server; the eventfd is retired under the same
// mutex the writers take.
struct NetServer::CompletionQueue {
  std::mutex mu;
  std::vector<std::pair<std::uint64_t, std::string>> items;
  int wake_fd = -1;  // guarded by mu; -1 once retired

  void push(std::uint64_t conn_id, std::string line) {
    std::lock_guard<std::mutex> lock(mu);
    items.emplace_back(conn_id, std::move(line));
    wake_locked();
  }
  void wake() {
    std::lock_guard<std::mutex> lock(mu);
    wake_locked();
  }
  void wake_locked() {
    if (wake_fd < 0) return;
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fd, &one, sizeof one);
  }
  // Returns the fd for the (single) owner to close; pushes after this are
  // queue-only.
  int retire_fd() {
    std::lock_guard<std::mutex> lock(mu);
    return std::exchange(wake_fd, -1);
  }
};

struct NetServer::Conn {
  int fd = -1;
  std::string inbuf;
  std::string outbuf;
  // Commands dispatched whose response has not reached the outbuf yet —
  // the in-flight window the per-connection limit bounds.
  std::size_t pending = 0;
  bool quitting = false;    // QUIT / EOF / framing error: no further reads
  bool in_process = false;  // re-entrancy guard for process_lines
};

class NetServer::Loop {
 public:
  explicit Loop(NetServer& s) : s_(s) {}

  void run() {
    epoll_event evs[64];
    for (;;) {
      if (s_.draining_.load(std::memory_order_acquire) && !drain_started_)
        begin_drain();
      if (drain_started_) {
        if (conns_.empty()) break;
        if (std::chrono::steady_clock::now() >= drain_deadline_) {
          force_close_all();
          break;
        }
      }
      const int timeout_ms = drain_started_ ? 50 : -1;
      const int n = ::epoll_wait(s_.epoll_fd_, evs, 64, timeout_ms);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;  // epoll itself failed; nothing sane left to do
      }
      for (int i = 0; i < n; ++i) {
        const std::uint64_t id = evs[i].data.u64;
        if (id == kWakeId) {
          std::uint64_t drainv = 0;
          while (::read(wake_fd_, &drainv, sizeof drainv) > 0) {
          }
        } else if (id == kTcpId) {
          accept_all(s_.tcp_listen_fd_);
        } else if (id == kUnixId) {
          accept_all(s_.unix_listen_fd_);
        } else {
          handle_conn_event(id, evs[i].events);
        }
      }
      deliver_completions();
    }
  }

  int wake_fd_ = -1;

 private:
  void begin_drain() {
    drain_started_ = true;
    drain_deadline_ = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(s_.opts_.drain_timeout_ms);
    close_listener(s_.tcp_listen_fd_);
    close_listener(s_.unix_listen_fd_);
    // Stop reading everywhere; anything a client pipelined but we have not
    // framed yet is dropped ("stop accepting"). Already-dispatched work
    // settles through the completion queue as usual.
    std::vector<std::uint64_t> settled;
    for (auto& [id, c] : conns_) {
      c.quitting = true;
      c.inbuf.clear();
      if (c.pending == 0 && c.outbuf.empty()) settled.push_back(id);
      else update_interest(id, c);
    }
    for (const std::uint64_t id : settled) close_conn(id);
  }

  void close_listener(int& fd) {
    if (fd < 0) return;
    ::epoll_ctl(s_.epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    fd = -1;
  }

  void force_close_all() {
    std::vector<std::uint64_t> ids;
    ids.reserve(conns_.size());
    for (const auto& [id, c] : conns_) ids.push_back(id);
    for (const std::uint64_t id : ids) close_conn(id);
  }

  void accept_all(int listen_fd) {
    if (listen_fd < 0) return;
    for (;;) {
      const int fd =
          ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) return;  // EAGAIN (or a transient error — retry on next event)
      if (conns_.size() >= s_.opts_.max_connections) {
        static constexpr char kFull[] = "ERR server full\n";
        (void)::send(fd, kFull, sizeof kFull - 1, MSG_NOSIGNAL);
        ::close(fd);
        continue;
      }
      const std::uint64_t id = next_id_++;
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u64 = id;
      if (::epoll_ctl(s_.epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
        ::close(fd);
        continue;
      }
      Conn c;
      c.fd = fd;
      conns_.emplace(id, std::move(c));
      s_.accepted_.fetch_add(1);
      s_.active_.store(conns_.size());
    }
  }

  void handle_conn_event(std::uint64_t id, std::uint32_t events) {
    auto it = conns_.find(id);
    if (it == conns_.end()) return;  // closed earlier this batch
    if ((events & (EPOLLERR | EPOLLHUP)) != 0 && it->second.outbuf.empty()) {
      close_conn(id);
      return;
    }
    if ((events & EPOLLIN) != 0) {
      if (!handle_readable(id)) return;
    }
    it = conns_.find(id);
    if (it != conns_.end() && (events & EPOLLOUT) != 0) try_flush(id);
  }

  // Reads until EAGAIN/EOF, frames and dispatches complete lines. Returns
  // false when the connection was closed.
  bool handle_readable(std::uint64_t id) {
    Conn& c = conns_.find(id)->second;
    if (c.quitting) return true;
    char buf[16384];
    bool eof = false;
    for (;;) {
      const ssize_t r = ::recv(c.fd, buf, sizeof buf, 0);
      if (r > 0) {
        c.inbuf.append(buf, static_cast<std::size_t>(r));
        continue;
      }
      if (r == 0) {
        eof = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close_conn(id);
      return false;
    }
    if (!process_lines(id)) return false;
    auto it = conns_.find(id);
    if (it == conns_.end()) return false;
    Conn& c2 = it->second;
    // An unterminated line past the cap is a framing loss: answer and close.
    if (!c2.quitting && c2.inbuf.size() > s_.opts_.max_line_bytes) {
      char msg[96];
      std::snprintf(msg, sizeof msg, "ERR line too long (limit %zu bytes)",
                    s_.opts_.max_line_bytes);
      c2.inbuf.clear();
      c2.quitting = true;
      append_out(id, msg);
      it = conns_.find(id);
      if (it == conns_.end()) return false;
    }
    if (eof) {
      // Half-close: the client is done sending but still reads; settle
      // outstanding responses, then close from our side.
      Conn& c3 = it->second;
      c3.quitting = true;
      if (c3.pending == 0 && c3.outbuf.empty()) {
        close_conn(id);
        return false;
      }
      update_interest(id, c3);
    }
    return conns_.count(id) != 0;
  }

  // Frames and handles every complete line in the inbuf, retiring each
  // line's immediate completions before the next line's in-flight check (so
  // synchronous verbs never eat into the DIAGNOSE window). Stops early when
  // the outbuf crosses the backpressure cap. Returns false when the
  // connection was closed.
  bool process_lines(std::uint64_t id) {
    auto it = conns_.find(id);
    if (it == conns_.end() || it->second.in_process) return it != conns_.end();
    it->second.in_process = true;
    for (;;) {
      it = conns_.find(id);
      if (it == conns_.end()) return false;
      Conn& c = it->second;
      if (c.quitting || c.outbuf.size() > s_.opts_.max_outbuf_bytes) break;
      const std::size_t nl = c.inbuf.find('\n');
      if (nl == std::string::npos) break;
      std::string line = c.inbuf.substr(0, nl);
      c.inbuf.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      handle_line(id, c, line);
      deliver_completions();
    }
    it = conns_.find(id);
    if (it == conns_.end()) return false;
    it->second.in_process = false;
    update_interest(id, it->second);
    return true;
  }

  // `c` stays valid across dispatch: only the loop thread mutates conns_,
  // and dispatch never re-enters the server except through the completion
  // queue.
  void handle_line(std::uint64_t id, Conn& c, const std::string& line) {
    if (c.pending >= s_.opts_.max_inflight_per_conn) {
      // Connection-level admission control, the analogue of the service
      // queue's kRejectedQueueFull: explicit ERR, never unbounded buffering.
      char msg[128];
      std::snprintf(msg, sizeof msg,
                    "ERR rejected_conn_inflight_full (in_flight %zu limit %zu)",
                    c.pending, s_.opts_.max_inflight_per_conn);
      const std::string_view tag = peel_tag(line);
      append_out(id, tag.empty() ? std::string(msg)
                                 : std::string(tag) + " " + msg);
      return;
    }
    ++c.pending;
    const auto cq = s_.cq_;
    const Protocol::DispatchKind kind = s_.proto_.dispatch(
        line,
        [cq, id](std::string resp) { cq->push(id, std::move(resp)); },
        /*deliver_async=*/true);
    if (kind == Protocol::DispatchKind::kNone) {
      --c.pending;  // blank line: no response will come
      return;
    }
    if (kind == Protocol::DispatchKind::kQuit) {
      // "OK bye" is already in the completion queue; flush it, then close.
      c.quitting = true;
      c.inbuf.clear();
    }
  }

  void deliver_completions() {
    std::vector<std::pair<std::uint64_t, std::string>> items;
    {
      std::lock_guard<std::mutex> lock(s_.cq_->mu);
      items.swap(s_.cq_->items);
    }
    for (auto& [id, line] : items) {
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;  // connection died first
      if (it->second.pending > 0) --it->second.pending;
      append_out(id, std::move(line));
    }
  }

  void append_out(std::uint64_t id, std::string line) {
    auto it = conns_.find(id);
    if (it == conns_.end()) return;
    it->second.outbuf += line;
    it->second.outbuf += '\n';
    try_flush(id);
  }

  // Writes as much of the outbuf as the socket takes; closes the connection
  // on write error or once a quitting/draining connection has settled.
  // Returns false when the connection was closed.
  bool try_flush(std::uint64_t id) {
    auto it = conns_.find(id);
    if (it == conns_.end()) return false;
    Conn& c = it->second;
    while (!c.outbuf.empty()) {
      const ssize_t w =
          ::send(c.fd, c.outbuf.data(), c.outbuf.size(), MSG_NOSIGNAL);
      if (w > 0) {
        c.outbuf.erase(0, static_cast<std::size_t>(w));
        continue;
      }
      if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (w < 0 && errno == EINTR) continue;
      close_conn(id);  // EPIPE/ECONNRESET and friends
      return false;
    }
    if (c.outbuf.empty() && c.pending == 0 && (c.quitting || drain_started_)) {
      close_conn(id);
      return false;
    }
    update_interest(id, c);
    // Backpressure release: the client drained below half the cap, so any
    // lines we parked in the inbuf get their turn.
    if (!c.in_process && !c.quitting && !c.inbuf.empty() &&
        c.outbuf.size() <= s_.opts_.max_outbuf_bytes / 2)
      return process_lines(id);
    return true;
  }

  void update_interest(std::uint64_t id, Conn& c) {
    std::uint32_t events = 0;
    if (!c.quitting && !drain_started_ &&
        c.outbuf.size() <= s_.opts_.max_outbuf_bytes)
      events |= EPOLLIN;
    if (!c.outbuf.empty()) events |= EPOLLOUT;
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = id;
    (void)::epoll_ctl(s_.epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev);
  }

  void close_conn(std::uint64_t id) {
    auto it = conns_.find(id);
    if (it == conns_.end()) return;
    (void)::epoll_ctl(s_.epoll_fd_, EPOLL_CTL_DEL, it->second.fd, nullptr);
    ::close(it->second.fd);
    conns_.erase(it);
    s_.active_.store(conns_.size());
  }

  NetServer& s_;
  std::unordered_map<std::uint64_t, Conn> conns_;
  std::uint64_t next_id_ = kFirstConnId;
  bool drain_started_ = false;
  std::chrono::steady_clock::time_point drain_deadline_;
};

NetServer::NetServer(Protocol& proto, NetServerOptions opts)
    : proto_(proto), opts_(std::move(opts)) {}

NetServer::~NetServer() { shutdown(); }

bool NetServer::start(std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    if (tcp_listen_fd_ >= 0) ::close(std::exchange(tcp_listen_fd_, -1));
    if (unix_listen_fd_ >= 0) ::close(std::exchange(unix_listen_fd_, -1));
    if (cq_) {
      const int fd = cq_->retire_fd();
      if (fd >= 0) ::close(fd);
      cq_.reset();
    }
    if (epoll_fd_ >= 0) ::close(std::exchange(epoll_fd_, -1));
    return false;
  };
  if (started_) return fail("already started");
  if (opts_.tcp_port < 0 && opts_.unix_path.empty())
    return fail("no listener configured (need tcp_port >= 0 or unix_path)");

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return fail(errno_message("epoll_create1"));

  const int wake = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake < 0) return fail(errno_message("eventfd"));
  cq_ = std::make_shared<CompletionQueue>();
  cq_->wake_fd = wake;
  epoll_event wev{};
  wev.events = EPOLLIN;
  wev.data.u64 = kWakeId;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake, &wev) != 0)
    return fail(errno_message("epoll_ctl(eventfd)"));

  if (opts_.tcp_port >= 0) {
    tcp_listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (tcp_listen_fd_ < 0) return fail(errno_message("socket(tcp)"));
    const int one = 1;
    (void)::setsockopt(tcp_listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                       sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(opts_.tcp_port));
    if (::bind(tcp_listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0)
      return fail(errno_message("bind(tcp)"));
    if (::listen(tcp_listen_fd_, 128) != 0)
      return fail(errno_message("listen(tcp)"));
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(tcp_listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) != 0)
      return fail(errno_message("getsockname(tcp)"));
    bound_tcp_port_ = static_cast<int>(ntohs(bound.sin_port));
    if (!set_nonblocking(tcp_listen_fd_))
      return fail(errno_message("fcntl(tcp)"));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kTcpId;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, tcp_listen_fd_, &ev) != 0)
      return fail(errno_message("epoll_ctl(tcp)"));
  }

  if (!opts_.unix_path.empty()) {
    sockaddr_un addr{};
    if (opts_.unix_path.size() >= sizeof addr.sun_path)
      return fail("unix path too long");
    unix_listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (unix_listen_fd_ < 0) return fail(errno_message("socket(unix)"));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, opts_.unix_path.c_str(),
                opts_.unix_path.size() + 1);
    (void)::unlink(opts_.unix_path.c_str());
    if (::bind(unix_listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0)
      return fail(errno_message("bind(unix)"));
    if (::listen(unix_listen_fd_, 128) != 0)
      return fail(errno_message("listen(unix)"));
    if (!set_nonblocking(unix_listen_fd_))
      return fail(errno_message("fcntl(unix)"));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kUnixId;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, unix_listen_fd_, &ev) != 0)
      return fail(errno_message("epoll_ctl(unix)"));
  }

  draining_.store(false);
  loop_thread_ = std::thread([this, wake] {
    Loop loop(*this);
    loop.wake_fd_ = wake;
    loop.run();
  });
  started_ = true;
  return true;
}

void NetServer::shutdown() {
  if (started_) {
    draining_.store(true, std::memory_order_release);
    cq_->wake();
    loop_thread_.join();
    started_ = false;
  }
  // The loop closes the listeners in begin_drain(); these only fire when it
  // exited abnormally (epoll failure) before draining.
  if (tcp_listen_fd_ >= 0) ::close(std::exchange(tcp_listen_fd_, -1));
  if (unix_listen_fd_ >= 0) ::close(std::exchange(unix_listen_fd_, -1));
  if (cq_) {
    // Retired under the queue mutex: a completion racing in right now
    // still lands in the (refcounted) queue, it just stops waking anyone.
    const int fd = cq_->retire_fd();
    if (fd >= 0) ::close(fd);
  }
  if (epoll_fd_ >= 0) ::close(std::exchange(epoll_fd_, -1));
  if (!opts_.unix_path.empty()) (void)::unlink(opts_.unix_path.c_str());
}

}  // namespace murphy::service
