#!/usr/bin/env python3
"""End-to-end murphyd protocol transcripts over stdio and a unix socket.

Drives the real daemon binary (argv[1]) through scripted transcripts and
checks every response line against an expectation, covering the protocol
contract that tests/protocol_test.cpp pins at the library level:

  * stdio: clean-transcript responses for every verb, the REPLAY/EXTEND
    strict-count fixes, and the DIAGNOSE max_hops-default regression
    (hop-less == explicit 4, != explicit 0);
  * unix socket: tagged pipelined commands, an out-of-order completion,
    QUIT closing the connection;
  * CLI hardening: malformed --split/--workers/--listen values exit 2.

Usage: protocol_transcript_test.py path/to/murphyd
Exit code 0 = all checks passed, 1 = a transcript diverged.
"""

import re
import socket
import subprocess
import sys
import tempfile
import os
import time

FAILURES = []


def check(name, cond, detail=""):
    status = "ok" if cond else "FAIL"
    print(f"[{status}] {name}" + (f": {detail}" if detail and not cond else ""))
    if not cond:
        FAILURES.append(name)


def run_stdio(binary, commands, extra_args=()):
    """Feeds commands over stdin, returns the stdout response lines."""
    proc = subprocess.run(
        [binary, "--workers", "1", *extra_args],
        input="".join(c + "\n" for c in commands),
        capture_output=True,
        text=True,
        timeout=120,
    )
    check("stdio exit code", proc.returncode == 0,
          f"rc={proc.returncode} stderr={proc.stderr[-400:]}")
    return proc.stdout.splitlines()


def cause_suffix(resp):
    """The ranked-cause tail of a DIAGNOSE response (after run_ms noise)."""
    m = re.search(r"( 1:.*)$", resp)
    return m.group(1) if m else ""


def stdio_transcript(binary):
    commands = [
        "STATS",
        "REPLAY",            # strict-count fix: defaults to 1, not 0
        "REPLAY 2",
        "REPLAY xyz",        # rejected, not silently 0
        "EXTEND bogus",
        "EXTEND 9999999999",
        "DIAGNOSE",
        "DIAGNOSE nosuch cpu_util",
        "DIAGNOSE client-B latency_ms junk",
        "#t7 EXTEND",        # tag prefixes the response
        "QUIT",
    ]
    expect = [
        r"^OK slices=\d+ version=\d+ queue=0 replayed=0 .*metrics=\{",
        r"^OK replayed_to=1 cells=\d+$",
        r"^OK replayed_to=3 cells=\d+$",
        r"^ERR bad count 'xyz' \(usage: REPLAY \[n\]\)$",
        r"^ERR bad count 'bogus' \(usage: EXTEND \[n\]\)$",
        r"^ERR count too large \(max 1048576\)$",
        r"^ERR usage: DIAGNOSE <entity> <metric> \[hops\] \[deadline_ms\]$",
        r"^ERR unknown entity nosuch$",
        r"^ERR bad max_hops 'junk' \(usage: DIAGNOSE",
        r"^#t7 OK slices=\d+$",
        r"^OK bye$",
    ]
    lines = run_stdio(binary, commands)
    check("stdio response count", len(lines) == len(expect),
          f"got {len(lines)} lines, want {len(expect)}: {lines}")
    for cmd, pat, line in zip(commands, expect, lines):
        check(f"stdio {cmd!r}", re.match(pat, line) is not None,
              f"{line!r} !~ {pat!r}")


def stdio_max_hops_regression(binary):
    # The headline bugfix, end to end: a hop-less DIAGNOSE must search with
    # the documented default of 4 hops (pre-PR the failed extraction wrote
    # 0, so it could never leave the symptom entity).
    lines = run_stdio(binary, [
        "REPLAY 40",
        "DIAGNOSE client-B latency_ms",
        "DIAGNOSE client-B latency_ms 4",
        "DIAGNOSE client-B latency_ms 0",
        "QUIT",
    ])
    check("max_hops transcript shape", len(lines) == 5, repr(lines))
    bare, four, zero = (cause_suffix(l) for l in lines[1:4])
    check("hop-less DIAGNOSE returns causes", bare != "", repr(lines[1]))
    check("hop-less == explicit 4 hops", bare == four,
          f"{bare!r} != {four!r}")
    check("hop-less != explicit 0 hops", bare != zero,
          f"both {bare!r} — default still clobbered to 0?")


def read_line(sock_file):
    line = sock_file.readline()
    return line.decode().rstrip("\n") if line else "<eof>"


def socket_transcript(binary):
    path = os.path.join(tempfile.mkdtemp(prefix="murphyd_pt_"), "d.sock")
    proc = subprocess.Popen(
        [binary, "--workers", "1", "--unix", path],
        stdin=subprocess.PIPE,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )
    try:
        # stdin stays open (daemon also serves stdio); wait for the socket.
        deadline = time.time() + 30
        while not os.path.exists(path) and time.time() < deadline:
            time.sleep(0.05)
        check("unix socket appears", os.path.exists(path))

        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
            s.settimeout(60)
            s.connect(path)
            f = s.makefile("rb")
            # Pipelined single write: tags correlate the responses.
            s.sendall(b"#a REPLAY 1\n#b DIAGNOSE client-B latency_ms\n"
                      b"#c EXTEND\nFOO\n")
            line_a = read_line(f)
            check("sock #a",
                  re.match(r"^#a OK replayed_to=1 cells=\d+$", line_a)
                  is not None, repr(line_a))
            got = [read_line(f) for _ in range(3)]
            # #c (immediate) legitimately overtakes #b (worker-scheduled):
            # accept any order but require exactly these three responses.
            check("sock #b completes",
                  any(re.match(r"^#b OK id=\d+ version=\d+ run_ms=", g)
                      for g in got), repr(got))
            check("sock #c", any(re.match(r"^#c OK slices=\d+$", g)
                                 for g in got), repr(got))
            check("sock FOO", "ERR unknown verb FOO" in got, repr(got))
            s.sendall(b"QUIT\n")
            check("sock QUIT", read_line(f) == "OK bye")
            check("sock closed after QUIT", read_line(f) == "<eof>")
    finally:
        proc.stdin.close()  # EOF on stdin
        try:
            proc.wait(timeout=5)
        except subprocess.TimeoutExpired:
            proc.terminate()
            proc.wait(timeout=10)


def cli_hardening(binary):
    # stod/stoul used to throw uncaught (terminate, rc 134); out-of-range
    # --split used to truncate the replay split silently. All exit 2 now.
    bad = [
        ["--split", "1.5"],
        ["--split", "abc"],
        ["--split", "-0.1"],
        ["--workers", "-1"],
        ["--workers", "two"],
        ["--listen", "99999"],
        ["--interval", "0"],
        ["--net-inflight", "0"],
        ["--frobnicate"],
    ]
    for args in bad:
        proc = subprocess.run(
            [binary, *args], input="", capture_output=True, text=True,
            timeout=60)
        check(f"cli {' '.join(args)} exits 2", proc.returncode == 2,
              f"rc={proc.returncode} stderr={proc.stderr[-200:]}")


def main():
    if len(sys.argv) != 2:
        print("usage: protocol_transcript_test.py path/to/murphyd")
        return 2
    binary = sys.argv[1]
    stdio_transcript(binary)
    stdio_max_hops_regression(binary)
    socket_transcript(binary)
    cli_hardening(binary)
    if FAILURES:
        print(f"\n{len(FAILURES)} check(s) failed: {FAILURES}")
        return 1
    print("\nall protocol transcript checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
