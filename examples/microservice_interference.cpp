// Microservice interference scenario (§6.1) with all four schemes.
//
// Reproduces the Fig. 5a setup: aggressor client A overwhelms downstream
// services shared with victim client B, and we diagnose client B's latency
// with Murphy, Sage, NetMedic and ExplainIt side by side — illustrating why
// Sage's call-tree-scoped model structurally cannot name the aggressor.
#include <cstdio>

#include "src/baselines/explainit.h"
#include "src/baselines/netmedic.h"
#include "src/baselines/sage.h"
#include "src/core/murphy.h"
#include "src/emulation/scenarios.h"
#include "src/eval/runner.h"
#include "src/stats/summary.h"

using namespace murphy;

int main() {
  emulation::InterferenceOptions opts;
  opts.slices = 420;
  opts.ramp_at = 300;
  opts.seed = 17;
  std::printf("simulating hotel-reservation with aggressor/victim clients...\n");
  const auto c = emulation::make_interference_case(opts);

  const auto* lat = c.db.metrics().find(
      c.symptom_entity, c.db.catalog().find(telemetry::metrics::kLatency));
  const double before = stats::mean(lat->window(0, opts.ramp_at));
  const double during = stats::mean(lat->window(opts.ramp_at, opts.slices));
  std::printf("victim latency: %.1f ms before ramp, %.1f ms during (%.1fx)\n\n",
              before, during, during / before);

  core::MurphyOptions mopts;
  mopts.sampler.num_samples = 300;
  core::MurphyDiagnoser murphy(mopts);
  baselines::Sage sage;
  baselines::NetMedic netmedic;
  baselines::ExplainIt explainit;
  core::Diagnoser* schemes[] = {&murphy, &sage, &netmedic, &explainit};

  const auto request = eval::request_for(c);
  std::printf("true root cause: '%s' (the aggressor's request load)\n\n",
              c.db.entity(c.root_cause).name.c_str());
  for (auto* scheme : schemes) {
    const auto result = scheme->diagnose(request);
    const auto rank = result.rank_of(c.root_cause);
    std::printf("%-10s -> %2zu candidates, true root cause rank: ",
                std::string(scheme->name()).c_str(), result.causes.size());
    if (rank == 0)
      std::printf("NOT PRODUCED%s\n",
                  scheme == &sage ? " (outside its call-tree model)" : "");
    else
      std::printf("#%zu\n", rank);
    for (std::size_t i = 0; i < result.causes.size() && i < 3; ++i)
      std::printf("             %zu. %s\n", i + 1,
                  c.db.entity(result.causes[i].entity).name.c_str());
  }

  std::printf("\nMurphy's explanation for its top candidate:\n  %s\n",
              murphy.diagnose(request).explanations.empty()
                  ? "(none)"
                  : murphy.diagnose(request).explanations[0].c_str());
  return 0;
}
