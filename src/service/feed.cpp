#include "src/service/feed.h"

#include <algorithm>
#include <utility>

namespace murphy::service {

ReplayFeed make_replay_feed(const telemetry::MonitoringDb& db,
                            TimeIndex split) {
  const telemetry::MetricStore& store = db.metrics();
  const TimeAxis& axis = store.axis();
  split = std::min<TimeIndex>(split, axis.size());

  ReplayFeed feed;
  feed.split = split;

  // Apps first so entities can be added with their membership.
  for (std::size_t i = 0; i < db.app_count(); ++i)
    feed.warm.define_app(db.app(AppId(static_cast<std::uint32_t>(i))).name);

  // Entity slots in id order; absent slots are reproduced (add + remove) so
  // every surviving id matches the source db's.
  for (std::size_t i = 0; i < db.entity_count(); ++i) {
    const EntityId id(static_cast<std::uint32_t>(i));
    if (!db.has_entity(id)) {
      const EntityId placeholder = feed.warm.add_entity(
          telemetry::EntityType::kVm, "__absent_" + std::to_string(i));
      feed.warm.remove_entity(placeholder);
      continue;
    }
    const telemetry::EntityInfo& info = db.entity(id);
    feed.warm.add_entity(info.type, info.name, info.app);
  }

  for (std::size_t i = 0; i < db.association_count(); ++i) {
    const telemetry::Association& a = db.association(i);
    feed.warm.add_association(a.a, a.b, a.kind, a.directed);
  }

  // Catalog in id order, so MetricKindId values carry over.
  for (std::size_t k = 0; k < db.catalog().size(); ++k)
    feed.warm.catalog().intern(
        db.catalog().name(MetricKindId(static_cast<std::uint32_t>(k))));

  for (std::size_t e = 0; e < db.config_events().size(); ++e)
    feed.warm.config_events().record(db.config_events().event(e));

  feed.warm.metrics().set_axis(axis.slice(0, split));
  feed.batches.resize(axis.size() - split);

  for (std::size_t i = 0; i < db.entity_count(); ++i) {
    const EntityId id(static_cast<std::uint32_t>(i));
    if (!db.has_entity(id)) continue;
    for (const MetricKindId kind : store.kinds_of(id)) {
      const telemetry::TimeSeries* series = store.find(id, kind);
      if (series == nullptr) continue;
      // Warm history: values AND validity truncated at the split, so
      // missing slices stay missing (put(TimeSeries) skips the non-finite
      // sanitizer's counter noise a NaN round-trip would add).
      std::vector<double> values(split);
      std::vector<bool> valid(split);
      for (TimeIndex t = 0; t < split; ++t) {
        values[t] = series->value(t);
        valid[t] = series->is_valid(t);
      }
      feed.warm.metrics().put(
          id, kind, telemetry::TimeSeries(std::move(values), std::move(valid)));
      for (TimeIndex t = split; t < series->size(); ++t)
        if (series->is_valid(t))
          feed.batches[t - split].push_back(
              TelemetryCell{id, kind, t, series->value(t)});
    }
  }
  return feed;
}

std::size_t replay_slice(TelemetryStream& stream, const ReplayFeed& feed,
                         std::size_t i) {
  stream.extend_axis(1);
  return stream.append(feed.batches[i]);
}

}  // namespace murphy::service
