file(REMOVE_RECURSE
  "CMakeFiles/enterprise_test.dir/enterprise_test.cpp.o"
  "CMakeFiles/enterprise_test.dir/enterprise_test.cpp.o.d"
  "enterprise_test"
  "enterprise_test.pdb"
  "enterprise_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enterprise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
