#include "src/emulation/tracing.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace murphy::emulation {
namespace {

// Recursively emits spans for one request arriving at `service`, returning
// the emitted span's duration. Fan-out < 1 is interpreted as a Bernoulli
// call probability, > 1 as floor + Bernoulli remainder.
double emit_spans(const AppModel& app, ServiceIdx service, double start_ms,
                  std::span<const double> latency_multiplier,
                  const TracingOptions& opts, Rng& rng, Trace& trace,
                  std::optional<std::size_t> parent) {
  const std::size_t span_id = trace.spans.size();
  trace.spans.push_back(Span{span_id, parent, service, start_ms, 0.0});

  const double own = app.services[service].base_latency_ms *
                     latency_multiplier[service] *
                     (1.0 + std::abs(rng.normal(0.0, opts.noise)));
  double child_total = 0.0;
  double cursor = start_ms + own * 0.3;  // children begin mid-processing
  for (const CallEdge& edge : app.call_edges) {
    if (edge.caller != service) continue;
    std::size_t calls = static_cast<std::size_t>(edge.calls_per_request);
    const double frac = edge.calls_per_request - static_cast<double>(calls);
    if (rng.chance(frac)) ++calls;
    for (std::size_t k = 0; k < calls; ++k) {
      const double child = emit_spans(app, edge.callee, cursor,
                                      latency_multiplier, opts, rng, trace,
                                      span_id);
      child_total += child;
      cursor += child;
    }
  }
  const double total = own + child_total;
  trace.spans[span_id].duration_ms = total;
  return total;
}

}  // namespace

std::vector<Trace> sample_traces(const AppModel& app, ClientIdx client,
                                 TimeIndex slice, std::size_t requests,
                                 std::span<const double> latency_multiplier,
                                 const TracingOptions& opts, Rng& rng) {
  assert(client < app.clients.size());
  assert(latency_multiplier.size() == app.services.size());
  std::vector<Trace> out;
  const ServiceIdx entry = app.clients[client].entry_service;
  for (std::size_t r = 0; r < requests; ++r) {
    if (!rng.chance(opts.sample_rate)) continue;
    Trace trace;
    trace.trace_id = (static_cast<std::size_t>(slice) << 24) ^ out.size();
    trace.client = client;
    trace.slice = slice;
    emit_spans(app, entry, 0.0, latency_multiplier, opts, rng, trace,
               std::nullopt);
    out.push_back(std::move(trace));
  }
  return out;
}

std::vector<ObservedCall> call_graph_from_traces(std::span<const Trace> traces,
                                                 std::size_t num_services,
                                                 std::size_t min_observations) {
  // (caller, callee) -> {edge observations, parent invocations}.
  struct Tally {
    std::size_t calls = 0;
    std::size_t parents = 0;
  };
  std::unordered_map<std::uint64_t, Tally> tallies;
  std::vector<std::size_t> parent_invocations(num_services, 0);
  const auto key = [](ServiceIdx a, ServiceIdx b) {
    return (static_cast<std::uint64_t>(a) << 32) | static_cast<std::uint32_t>(b);
  };

  for (const Trace& trace : traces) {
    for (const Span& span : trace.spans) {
      assert(span.service < num_services);
      parent_invocations[span.service] += 1;
      if (!span.parent_span) continue;
      const Span& parent = trace.spans[*span.parent_span];
      tallies[key(parent.service, span.service)].calls += 1;
    }
  }

  std::vector<ObservedCall> out;
  for (const auto& [k, tally] : tallies) {
    if (tally.calls < min_observations) continue;
    ObservedCall call;
    call.caller = static_cast<ServiceIdx>(k >> 32);
    call.callee = static_cast<ServiceIdx>(k & 0xFFFFFFFF);
    call.observations = tally.calls;
    const std::size_t invocations = parent_invocations[call.caller];
    call.mean_fanout = invocations > 0 ? static_cast<double>(tally.calls) /
                                             static_cast<double>(invocations)
                                       : 0.0;
    out.push_back(call);
  }
  std::sort(out.begin(), out.end(),
            [](const ObservedCall& a, const ObservedCall& b) {
              if (a.caller != b.caller) return a.caller < b.caller;
              return a.callee < b.callee;
            });
  return out;
}

}  // namespace murphy::emulation
