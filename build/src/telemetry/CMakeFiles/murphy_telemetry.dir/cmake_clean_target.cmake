file(REMOVE_RECURSE
  "libmurphy_telemetry.a"
)
