#include "src/eval/metrics.h"

#include <algorithm>

namespace murphy::eval {

CaseOutcome score_result(const core::DiagnosisResult& result,
                         std::span<const EntityId> ground_truth,
                         std::span<const EntityId> relaxed) {
  CaseOutcome out;
  out.output_size = result.causes.size();

  auto best_rank = [&](std::span<const EntityId> truths) -> std::size_t {
    std::size_t best = 0;
    for (const EntityId t : truths) {
      const std::size_t r = result.rank_of(t);
      if (r != 0 && (best == 0 || r < best)) best = r;
    }
    return best;
  };
  out.rank = best_rank(ground_truth);
  out.relaxed_rank = relaxed.empty() ? out.rank : best_rank(relaxed);

  for (const auto& cause : result.causes) {
    const bool is_truth =
        std::find(ground_truth.begin(), ground_truth.end(), cause.entity) !=
        ground_truth.end();
    if (!is_truth) ++out.false_positives;
  }
  return out;
}

void Accuracy::add(const CaseOutcome& outcome) { outcomes_.push_back(outcome); }

double Accuracy::top_k(std::size_t k) const {
  if (outcomes_.empty()) return 0.0;
  std::size_t hits = 0;
  for (const auto& o : outcomes_) hits += o.hit(k) ? 1 : 0;
  return static_cast<double>(hits) / static_cast<double>(outcomes_.size());
}

double Accuracy::relaxed_top_k(std::size_t k) const {
  if (outcomes_.empty()) return 0.0;
  std::size_t hits = 0;
  for (const auto& o : outcomes_) hits += o.relaxed_hit(k) ? 1 : 0;
  return static_cast<double>(hits) / static_cast<double>(outcomes_.size());
}

double Accuracy::mean_precision() const {
  if (outcomes_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& o : outcomes_) s += o.precision();
  return s / static_cast<double>(outcomes_.size());
}

double Accuracy::mean_relaxed_precision() const {
  if (outcomes_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& o : outcomes_) s += o.relaxed_precision();
  return s / static_cast<double>(outcomes_.size());
}

double Accuracy::mean_false_positives() const {
  if (outcomes_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& o : outcomes_)
    s += static_cast<double>(o.false_positives);
  return s / static_cast<double>(outcomes_.size());
}

std::size_t Accuracy::total_false_positives() const {
  std::size_t s = 0;
  for (const auto& o : outcomes_) s += o.false_positives;
  return s;
}

}  // namespace murphy::eval
