
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/correlation.cpp" "src/stats/CMakeFiles/murphy_stats.dir/correlation.cpp.o" "gcc" "src/stats/CMakeFiles/murphy_stats.dir/correlation.cpp.o.d"
  "/root/repo/src/stats/gmm.cpp" "src/stats/CMakeFiles/murphy_stats.dir/gmm.cpp.o" "gcc" "src/stats/CMakeFiles/murphy_stats.dir/gmm.cpp.o.d"
  "/root/repo/src/stats/matrix.cpp" "src/stats/CMakeFiles/murphy_stats.dir/matrix.cpp.o" "gcc" "src/stats/CMakeFiles/murphy_stats.dir/matrix.cpp.o.d"
  "/root/repo/src/stats/mlp.cpp" "src/stats/CMakeFiles/murphy_stats.dir/mlp.cpp.o" "gcc" "src/stats/CMakeFiles/murphy_stats.dir/mlp.cpp.o.d"
  "/root/repo/src/stats/predictor.cpp" "src/stats/CMakeFiles/murphy_stats.dir/predictor.cpp.o" "gcc" "src/stats/CMakeFiles/murphy_stats.dir/predictor.cpp.o.d"
  "/root/repo/src/stats/ridge.cpp" "src/stats/CMakeFiles/murphy_stats.dir/ridge.cpp.o" "gcc" "src/stats/CMakeFiles/murphy_stats.dir/ridge.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/stats/CMakeFiles/murphy_stats.dir/summary.cpp.o" "gcc" "src/stats/CMakeFiles/murphy_stats.dir/summary.cpp.o.d"
  "/root/repo/src/stats/svr.cpp" "src/stats/CMakeFiles/murphy_stats.dir/svr.cpp.o" "gcc" "src/stats/CMakeFiles/murphy_stats.dir/svr.cpp.o.d"
  "/root/repo/src/stats/ttest.cpp" "src/stats/CMakeFiles/murphy_stats.dir/ttest.cpp.o" "gcc" "src/stats/CMakeFiles/murphy_stats.dir/ttest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/murphy_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
