#include "src/core/sampler.h"

#include <algorithm>
#include <cassert>

#include "src/stats/ttest.h"
#include "src/stats/summary.h"

namespace murphy::core {

CounterfactualSampler::CounterfactualSampler(
    const graph::RelationshipGraph& graph, const MetricSpace& space,
    const FactorSet& factors, SamplerOptions opts)
    : graph_(graph),
      space_(space),
      factors_(factors),
      opts_(opts),
      rng_(opts.seed) {}

double CounterfactualSampler::resample_path(
    std::span<const graph::NodeIndex> path, VarIndex d_var,
    std::vector<double>& state, Rng& rng, std::size_t gibbs_rounds) const {
  for (std::size_t round = 0; round < gibbs_rounds; ++round) {
    for (std::size_t i = 1; i < path.size(); ++i)  // skip pinned candidate
      factors_.resample_node(path[i], space_, state, rng);
  }
  return state[d_var];
}

CounterfactualVerdict CounterfactualSampler::evaluate(
    graph::NodeIndex a, VarIndex a_var, graph::NodeIndex d, VarIndex d_var,
    std::span<const double> state, bool symptom_high) {
  return evaluate(a, a_var, d, d_var, state, symptom_high, rng_);
}

CounterfactualVerdict CounterfactualSampler::evaluate(
    graph::NodeIndex a, VarIndex a_var, graph::NodeIndex d, VarIndex d_var,
    std::span<const double> state, bool symptom_high, Rng& rng) const {
  CounterfactualVerdict verdict;
  if (a == d) return verdict;

  const auto path = graph_.shortest_path_subgraph(a, d, opts_.path_slack);
  if (path.empty()) return verdict;  // A cannot influence D
  verdict.path_len = path.size();
  verdict.node_resamples =
      2 * opts_.num_samples * opts_.gibbs_rounds * (path.size() - 1);

  const MetricConditional& a_cond = factors_.conditional(a_var);
  const double a_now = state[a_var];
  // Counterfactual: push A's driver metric 2 sigma toward its historical
  // normal (lower when it's abnormally high, higher when abnormally low).
  // Direction comes from the robust center; the magnitude uses the classic
  // stddev of the window, which (incident included) reflects the scale of
  // recent excursions (§4.2 step 1).
  const double sigma = std::max(a_cond.hist_sigma(), 1e-6);
  const double direction = a_now >= a_cond.robust_center() ? -1.0 : 1.0;
  const double a_cf =
      a_now + direction * opts_.counterfactual_sigmas * sigma;

  std::vector<double> d1, d2;
  d1.reserve(opts_.num_samples);
  d2.reserve(opts_.num_samples);
  std::vector<double> work(state.size());

  for (std::size_t s = 0; s < opts_.num_samples; ++s) {
    // Counterfactual start.
    std::copy(state.begin(), state.end(), work.begin());
    work[a_var] = a_cf;
    d1.push_back(
        resample_path(path, d_var, work, rng, opts_.gibbs_rounds));
    // Factual start (same resampling so distributions are comparable).
    std::copy(state.begin(), state.end(), work.begin());
    work[a_var] = a_now;
    d2.push_back(
        resample_path(path, d_var, work, rng, opts_.gibbs_rounds));
  }

  const auto t = stats::welch_t_test(d1, d2);
  // Symptom abnormally high: root cause iff counterfactual lowers D
  // (d1 << d2, small p_less). Abnormally low: iff it raises D.
  verdict.p_value = symptom_high ? t.p_less : 1.0 - t.p_less;
  verdict.is_root_cause = verdict.p_value < opts_.significance;
  verdict.mean_counterfactual = stats::mean(d1);
  verdict.mean_factual = stats::mean(d2);
  return verdict;
}

}  // namespace murphy::core
