// Fault injection for the microservice simulator.
//
// Two families, mirroring §5.1.2:
//  * resource contention — stress-ng-style CPU / memory / disk pressure on a
//    chosen container for a bounded window;
//  * performance interference — an aggressive client ramping its request
//    rate, overwhelming downstream services shared with a victim client.
// Interference is expressed through client RPS schedules (see workload.h);
// this header covers the container-local resource faults.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "src/common/time_axis.h"
#include "src/emulation/app_model.h"

namespace murphy::emulation {

enum class FaultKind { kCpuStress, kMemStress, kDiskStress };

[[nodiscard]] std::string_view fault_kind_name(FaultKind k);

struct Fault {
  FaultKind kind = FaultKind::kCpuStress;
  ContainerIdx target = 0;
  TimeIndex start = 0;
  TimeIndex duration = 30;  // slices (10 s each -> 5 min default)
  // Fraction of the container's CPU limit consumed (CPU stress), or fraction
  // of memory filled (mem), or MB/s of disk traffic injected (disk).
  double intensity = 0.6;

  [[nodiscard]] bool active_at(TimeIndex t) const {
    return t >= start && t < start + duration;
  }
};

// The contention a set of faults exerts on one container at time t.
struct ContainerPressure {
  double cpu_cores = 0.0;   // extra cores consumed
  double mem_fraction = 0.0;
  double disk_mbps = 0.0;
};

[[nodiscard]] ContainerPressure pressure_at(const std::vector<Fault>& faults,
                                            ContainerIdx container,
                                            double cpu_limit_cores,
                                            TimeIndex t);

}  // namespace murphy::emulation
