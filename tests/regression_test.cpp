// Regression and edge-case tests distilled from bugs found while building
// this reproduction: directed-influence orientation, calibration filtering
// alignment, metric-space snapshots of missing data, simulator saturation
// behaviour, and ranking-score scale effects.
#include <cmath>

#include <gtest/gtest.h>

#include "src/core/anomaly.h"
#include "src/core/murphy.h"
#include "src/emulation/simulator.h"
#include "src/emulation/workload.h"
#include "src/eval/runner.h"
#include "src/graph/relationship_graph.h"
#include "src/stats/summary.h"
#include "src/telemetry/metric_catalog.h"

namespace murphy {
namespace {

using telemetry::EntityType;
using telemetry::MonitoringDb;
using telemetry::RelationKind;

// Bug: caller->callee edges were originally stored in call direction, so in
// the DAG environment no directed path existed from a faulted backend to the
// client symptom and every counterfactual returned "unreachable". The fix
// defines directed associations as influence order. This test pins that down.
TEST(Regression, DagEnvironmentHasFaultToSymptomPaths) {
  emulation::AppModel app = emulation::make_hotel_reservation();
  emulation::ClientSpec c;
  c.name = "client";
  c.entry_service = app.find_service("frontend");
  Rng rng(1);
  c.rps_schedule = emulation::steady_load(30, 20.0, 0.02, rng);
  app.clients.push_back(c);
  emulation::SimOptions opts;
  opts.slices = 30;
  opts.bidirectional_call_edges = false;
  const auto sim = emulation::simulate(app, {}, opts);

  const std::vector<EntityId> seeds{sim.entities.clients[0]};
  const auto g = graph::RelationshipGraph::build(sim.db, seeds, 6);
  const auto client = g.index_of(sim.entities.clients[0]);
  ASSERT_TRUE(client.has_value());
  // Every service container must reach the client through directed edges.
  for (const auto ctr : sim.entities.containers) {
    const auto n = g.index_of(ctr);
    if (!n) continue;  // outside 6 hops (shouldn't happen here)
    const auto path = g.shortest_path_subgraph(*n, *client);
    EXPECT_FALSE(path.empty())
        << sim.db.entity(ctr).name << " cannot influence the client";
  }
}

// Bug: filtered_by_score dropped causes but left explanations unaligned.
TEST(Regression, FilteredResultKeepsExplanationsAligned) {
  core::DiagnosisResult r;
  for (int i = 0; i < 4; ++i) {
    r.causes.push_back(core::RankedRootCause{EntityId(i), 10.0 - i});
    r.explanations.push_back("explains " + std::to_string(i));
  }
  const auto filtered = eval::filtered_by_score(std::move(r), 8.5);
  ASSERT_EQ(filtered.causes.size(), 2u);
  ASSERT_EQ(filtered.explanations.size(), 2u);
  EXPECT_EQ(filtered.explanations[0], "explains 0");
  EXPECT_EQ(filtered.explanations[1], "explains 1");
}

// Bug: MAD floored by 0.1*stddev destroyed robustness under >10%
// contamination; counterfactual magnitudes then collapsed. Pin both flavors.
TEST(Regression, RobustAndClassicSigmaServeDifferentRoles) {
  MonitoringDb db;
  const auto a = db.add_entity(EntityType::kVm, "a");
  const auto b = db.add_entity(EntityType::kVm, "b");
  db.add_association(a, b, RelationKind::kGeneric);
  const auto load = db.catalog().intern("cpu_util");
  db.metrics().set_axis(TimeAxis(0.0, 10.0, 100));
  Rng rng(3);
  std::vector<double> va(100), vb(100);
  for (std::size_t t = 0; t < 100; ++t) {
    va[t] = 10.0 + rng.normal(0.0, 0.5) + (t >= 75 ? 50.0 : 0.0);  // 25% hot
    vb[t] = va[t] + rng.normal(0.0, 0.5);
  }
  db.metrics().put(a, load, va);
  db.metrics().put(b, load, vb);
  const std::vector<EntityId> seeds{a};
  const auto g = graph::RelationshipGraph::build(db, seeds, 2);
  const core::MetricSpace space(db, g);
  const core::FactorTrainingOptions topts;
  const core::FactorSet factors(db, g, space, 0, 100, topts);
  const auto& cond = factors.conditional(*space.find(a, load));
  // Robust sigma ignores the incident quarter; classic sigma absorbs it.
  EXPECT_LT(cond.robust_sigma(), 3.0);
  EXPECT_GT(cond.hist_sigma(), 15.0);
  // Anomaly (robust) is strong at the incident slice.
  const auto state = space.snapshot(db, 99);
  EXPECT_GT(core::variable_anomaly(factors, *space.find(a, load), state[*space.find(a, load)]),
            10.0);
}

// Bug: queueing factor was unbounded near rho=1 and produced inf latencies.
TEST(Regression, SaturatedServiceLatencyStaysFinite) {
  emulation::AppModel app = emulation::make_hotel_reservation();
  emulation::ClientSpec c;
  c.name = "client";
  c.entry_service = app.find_service("frontend");
  Rng rng(4);
  c.rps_schedule = emulation::steady_load(20, 5000.0, 0.02, rng);  // absurd
  app.clients.push_back(c);
  emulation::SimOptions opts;
  opts.slices = 20;
  const auto sim = emulation::simulate(app, {}, opts);
  for (const auto& series : sim.client_latency)
    for (const double v : series) {
      EXPECT_TRUE(std::isfinite(v));
      EXPECT_GT(v, 0.0);
    }
}

// Bug: node_anomaly's rank_score originally used raw z only, so a tiny-MAD
// metric (0.6 MB/s disk) outranked a 14x request-rate surge.
TEST(Regression, RankScoreWeighsRelativeExcursion) {
  MonitoringDb db;
  const auto small = db.add_entity(EntityType::kVm, "small-metric");
  const auto big = db.add_entity(EntityType::kVm, "big-surge");
  db.add_association(small, big, RelationKind::kGeneric);
  const auto m = db.catalog().intern("request_rate");
  db.metrics().set_axis(TimeAxis(0.0, 10.0, 100));
  Rng rng(5);
  std::vector<double> vs(100), vb(100);
  for (std::size_t t = 0; t < 100; ++t) {
    // small: mean 100, sigma ~0.5, now at 104 -> z = 8 but ratio tiny.
    vs[t] = 100.0 + rng.normal(0.0, 0.5);
    // big: mean 20, sigma ~3, now at 280 -> z ~ 80+, ratio 13.
    vb[t] = 20.0 + rng.normal(0.0, 3.0);
  }
  vs[99] = 104.0;
  vb[99] = 280.0;
  db.metrics().put(small, m, vs);
  db.metrics().put(big, m, vb);
  const std::vector<EntityId> seeds{small};
  const auto g = graph::RelationshipGraph::build(db, seeds, 2);
  const core::MetricSpace space(db, g);
  const core::FactorTrainingOptions topts;
  const core::FactorSet factors(db, g, space, 0, 100, topts);
  const auto state = space.snapshot(db, 99);
  const auto a_small =
      core::node_anomaly(factors, space, *g.index_of(small), state);
  const auto a_big = core::node_anomaly(factors, space, *g.index_of(big), state);
  EXPECT_GT(a_big.rank_score, a_small.rank_score * 2.0);
}

// Bug: MonitoringDb::remove_association left the per-entity index stale.
TEST(Regression, AssociationIndexRebuiltAfterRemoval) {
  MonitoringDb db;
  const auto a = db.add_entity(EntityType::kVm, "a");
  const auto b = db.add_entity(EntityType::kVm, "b");
  const auto c = db.add_entity(EntityType::kVm, "c");
  db.add_association(a, b, RelationKind::kGeneric);
  db.add_association(b, c, RelationKind::kGeneric);
  db.remove_association(0);
  // The index for b must only reference the surviving association.
  const auto indices = db.association_indices(b);
  ASSERT_EQ(indices.size(), 1u);
  const auto& assoc = db.association(indices[0]);
  EXPECT_TRUE((assoc.a == b && assoc.b == c) ||
              (assoc.a == c && assoc.b == b));
}

// Snapshot of entities with no metric series must read as the placeholder
// default, not garbage (§4.2 edge case: newly spawned entity).
TEST(Regression, SnapshotOfMetriclessEntityIsZero) {
  MonitoringDb db;
  const auto a = db.add_entity(EntityType::kVm, "has-metrics");
  const auto b = db.add_entity(EntityType::kVm, "fresh-spawn");
  db.add_association(a, b, RelationKind::kGeneric);
  const auto m = db.catalog().intern("cpu_util");
  db.metrics().set_axis(TimeAxis(0.0, 10.0, 5));
  db.metrics().put(a, m, {1.0, 2.0, 3.0, 4.0, 5.0});
  const std::vector<EntityId> seeds{a};
  const auto g = graph::RelationshipGraph::build(db, seeds, 2);
  const core::MetricSpace space(db, g);
  // b has no series at all: it contributes no variables.
  EXPECT_TRUE(space.vars_of(*g.index_of(b)).empty());
  const auto state = space.snapshot(db, 4);
  EXPECT_EQ(state.size(), 1u);
  EXPECT_DOUBLE_EQ(state[0], 5.0);
}

// The t-test direction flips for abnormally-LOW symptoms (§4.2): pushing the
// cause toward normal must RAISE the symptom for root-cause-hood.
TEST(Regression, LowSideSymptomUsesReversedTest) {
  MonitoringDb db;
  const auto a = db.add_entity(EntityType::kVm, "a");
  const auto b = db.add_entity(EntityType::kVm, "b");
  db.add_association(a, b, RelationKind::kGeneric);
  const auto m = db.catalog().intern("net_rx_rate");
  db.metrics().set_axis(TimeAxis(0.0, 10.0, 120));
  Rng rng(6);
  std::vector<double> va(120), vb(120);
  for (std::size_t t = 0; t < 120; ++t) {
    va[t] = 30.0 + rng.normal(0.0, 1.0) - (t >= 110 ? 28.0 : 0.0);  // collapse
    vb[t] = 0.9 * va[t] + rng.normal(0.0, 1.0);
  }
  db.metrics().put(a, m, va);
  db.metrics().put(b, m, vb);
  core::MurphyOptions mopts;
  mopts.sampler.num_samples = 120;
  core::MurphyDiagnoser murphy(mopts);
  core::DiagnosisRequest req;
  req.db = &db;
  req.symptom_entity = b;
  req.symptom_metric = "net_rx_rate";
  req.now = 119;
  req.train_begin = 0;
  req.train_end = 120;
  const auto result = murphy.diagnose(req);
  EXPECT_GE(result.rank_of(a), 1u);
}

}  // namespace
}  // namespace murphy
