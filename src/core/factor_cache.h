// Cross-symptom factor cache.
//
// A batch diagnosis runs one full FactorSet training per symptom, but the
// symptoms of one incident overwhelmingly share their relationship-graph
// neighborhoods: the same (entity, metric) conditional, fit on the same
// window against the same in-neighbor candidate set, is re-trained once per
// symptom. This cache trains each such factor exactly once and shares the
// fitted model across symptoms.
//
// Why sharing is bitwise safe: a ridge factor is a pure function of
//   (target history, candidate feature histories in selection order,
//    training options),
// none of which depend on the graph's node numbering. Feature selection is
// graph-invariant too — candidates are scored by |pearson| (a pure function
// of the two histories) and ties break on (entity, kind), not VarIndex (see
// FactorSet). The cache key is (entity, kind, hash of the sorted in-neighbor
// entity set): equal keys imply an identical candidate set, hence an
// identical scored list, selection, fit, residual and historical moments.
// Ridge's closed-form fit ignores the per-target RNG seed; stochastic model
// families (MLP/SVR/GMM) seed by VarIndex and are therefore NOT cacheable —
// FactorSet bypasses the cache for them.
//
// Validity is a generation fingerprint derived from (train window,
// MonitoringDb::data_version(), MonitoringDb::uid() — a process-unique id,
// immune to the address recycling that made the old &db fingerprint an ABA
// hazard — and the training-option fingerprint); reset() drops every entry
// when it changes. Entries build exactly once across threads
// (shared-mutex map + per-entry once_flag), so the parallel per-symptom loop
// of BatchDiagnoser needs no external locking.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/stats/predictor.h"

namespace murphy::core {

// One trained factor in graph-independent form: features are (entity, kind)
// refs, not VarIndex, so any graph containing the entities can rebind it.
struct CachedFactor {
  std::vector<MetricRef> features;  // selection order
  std::shared_ptr<const stats::Predictor> model;  // null when no features
  double hist_mean = 0.0;
  double hist_sigma = 0.0;
  double robust_center = 0.0;
  double robust_sigma = 0.0;
  double training_mase = 0.0;
  std::size_t considered = 0;  // candidates scored before top-B pruning
};

// 64-bit hash chaining for cache keys/fingerprints (splitmix64 finalizer —
// not cryptographic, just well-mixed).
[[nodiscard]] std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v);

class FactorCache {
 public:
  using Trainer = std::function<CachedFactor()>;

  // Drops all entries unless `fingerprint` matches the current generation.
  void reset(std::uint64_t fingerprint);
  [[nodiscard]] std::uint64_t fingerprint() const { return fingerprint_; }

  // Returns the factor for `key`, invoking `trainer` exactly once per
  // generation across all threads. `trained` (optional) reports whether THIS
  // call did the training (a miss).
  const CachedFactor& get_or_train(std::uint64_t key, const Trainer& trainer,
                                   bool* trained = nullptr);

  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  [[nodiscard]] std::size_t size() const;

  // Drops every entry (keeping the fingerprint) when the map holds more than
  // `max_entries` — the size bound for epoch-keyed callers, whose stale
  // entries are retired by key change rather than generation reset. Only
  // safe when no CachedFactor reference from this cache is live (the service
  // prunes under its exclusive db lock).
  void prune(std::size_t max_entries);

 private:
  struct Entry {
    std::once_flag once;
    CachedFactor factor;
  };

  mutable std::shared_mutex mu_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Entry>> entries_;
  std::uint64_t fingerprint_ = 0;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace murphy::core
