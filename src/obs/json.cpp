#include "src/obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace murphy::obs {

void json_append_escaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string json_number(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string json_number(std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  return buf;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const char* what) {
    if (error.empty())
      error = std::string(what) + " at offset " + std::to_string(pos);
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])))
      ++pos;
  }

  bool consume(char c) {
    skip_ws();
    if (pos >= text.size() || text[pos] != c) return false;
    ++pos;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected string");
    out.clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos >= text.size()) return fail("bad escape");
        const char e = text[pos++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            if (pos + 4 > text.size()) return fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u digit");
            }
            // Only BMP escapes below 0x80 are emitted by our writer; encode
            // anything else as UTF-8 without surrogate handling.
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return fail("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return fail("unterminated string");
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      out.kind = JsonValue::Kind::kObject;
      skip_ws();
      if (consume('}')) return true;
      for (;;) {
        std::string key;
        if (!parse_string(key)) return false;
        if (!consume(':')) return fail("expected ':'");
        JsonValue v;
        if (!parse_value(v)) return false;
        out.object.emplace(std::move(key), std::move(v));
        if (consume(',')) continue;
        if (consume('}')) return true;
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos;
      out.kind = JsonValue::Kind::kArray;
      skip_ws();
      if (consume(']')) return true;
      for (;;) {
        JsonValue v;
        if (!parse_value(v)) return false;
        out.array.push_back(std::move(v));
        if (consume(',')) continue;
        if (consume(']')) return true;
        return fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.string);
    }
    if (text.compare(pos, 4, "true") == 0) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      pos += 4;
      return true;
    }
    if (text.compare(pos, 5, "false") == 0) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = false;
      pos += 5;
      return true;
    }
    if (text.compare(pos, 4, "null") == 0) {
      out.kind = JsonValue::Kind::kNull;
      pos += 4;
      return true;
    }
    // Number.
    const std::size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '-' || text[pos] == '+'))
      ++pos;
    if (pos == start) return fail("unexpected character");
    out.kind = JsonValue::Kind::kNumber;
    out.number = std::strtod(std::string(text.substr(start, pos - start)).c_str(),
                             nullptr);
    return true;
  }
};

}  // namespace

bool json_parse(std::string_view text, JsonValue& out, std::string* error) {
  Parser p{text, 0, {}};
  if (!p.parse_value(out)) {
    if (error != nullptr) *error = p.error;
    return false;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (error != nullptr) *error = "trailing garbage";
    return false;
  }
  return true;
}

}  // namespace murphy::obs
