#include "src/stats/correlation.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "src/stats/matrix.h"
#include "src/stats/summary.h"

namespace murphy::stats {
namespace {

// Midrank computation into a caller-provided buffer. `order` is scratch for
// the argsort; both buffers are resized as needed so repeated calls on a
// thread reuse the same allocations.
void ranks_into(std::span<const double> x, std::vector<std::size_t>& order,
                std::vector<double>& r) {
  // NaN breaks operator< strict weak ordering, which makes std::sort UB.
  // Rank a sanitized copy instead (non-finite -> 0.0, the engine-wide
  // missing-value fallback, DESIGN.md §8); finite input takes the fast path
  // untouched.
  thread_local std::vector<double> clean;
  if (std::any_of(x.begin(), x.end(),
                  [](double v) { return !std::isfinite(v); })) {
    clean.assign(x.begin(), x.end());
    for (double& v : clean)
      if (!std::isfinite(v)) v = 0.0;
    x = clean;
  }
  order.resize(x.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return x[a] < x[b]; });
  r.resize(x.size());
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && x[order[j + 1]] == x[order[i]]) ++j;
    const double avg_rank =
        (static_cast<double>(i) + static_cast<double>(j)) / 2.0;
    for (std::size_t k = i; k <= j; ++k) r[order[k]] = avg_rank;
    i = j + 1;
  }
}

// Shared constancy test of pearson()/pearson_centered(): sxx at most
// kCorrelationRelTol^2 of the column's total sum of squares. The mean square
// is reconstructed as mean^2 + sxx/n, so both entry points decide from the
// exact same inputs and stay bit-identical. The negated `!(>)` form also
// routes NaN/Inf moments (from a poisoned column) into the defined 0 result.
bool column_degenerate(double sxx, double n, double mx) {
  const double mean_sq = mx * mx + sxx / n;
  return !(sxx > n * mean_sq * kCorrelationRelTol * kCorrelationRelTol);
}

}  // namespace

std::vector<double> midranks(std::span<const double> x) {
  thread_local std::vector<std::size_t> order;
  std::vector<double> r;
  ranks_into(x, order, r);
  return r;
}

double pearson(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  const double n_d = static_cast<double>(n);
  if (column_degenerate(sxx, n_d, mx) || column_degenerate(syy, n_d, my))
    return 0.0;
  const double r = sxy / std::sqrt(sxx * syy);
  return std::isfinite(r) ? r : 0.0;  // overflowed sxx*syy -> defined 0
}

double pearson_centered(std::span<const double> cx, double sxx, double mx,
                        std::span<const double> cy, double syy, double my) {
  assert(cx.size() == cy.size());
  if (cx.size() < 2) return 0.0;
  const double n_d = static_cast<double>(cx.size());
  if (column_degenerate(sxx, n_d, mx) || column_degenerate(syy, n_d, my))
    return 0.0;
  // Summing cx[i]*cy[i] in index order performs the exact add sequence the
  // fused loop in pearson() performs for its sxy accumulator, so this is
  // bit-identical to pearson() on the raw columns (the three accumulators
  // there are independent).
  const double sxy = dot_kernel(cx.data(), cy.data(), cx.size());
  const double r = sxy / std::sqrt(sxx * syy);
  return std::isfinite(r) ? r : 0.0;
}

double spearman(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  if (x.size() < 2) return 0.0;
  thread_local std::vector<std::size_t> order;
  thread_local std::vector<double> rx, ry;
  ranks_into(x, order, rx);
  ranks_into(y, order, ry);
  return pearson(rx, ry);
}

double abnormality_correlation(std::span<const double> x,
                               std::span<const double> y) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  const double mx = mean(x), sx = stddev(x);
  const double my = mean(y), sy = stddev(y);
  thread_local std::vector<double> ax, ay;
  ax.resize(n);
  ay.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    ax[i] = std::abs(zscore(x[i], mx, sx));
    ay[i] = std::abs(zscore(y[i], my, sy));
  }
  return pearson(ax, ay);
}

double lagged_pearson(std::span<const double> x, std::span<const double> y,
                      std::size_t lag) {
  assert(x.size() == y.size());
  if (x.size() <= lag + 1) return 0.0;
  const std::size_t n = x.size() - lag;
  return pearson(x.subspan(0, n), y.subspan(lag, n));
}

}  // namespace murphy::stats
