// Failure-scenario builders for the microservice environments (§5.1.2).
//
// Each builder runs the simulator with a scripted fault and packages the
// result as a DiagnosisCase: the populated MonitoringDb, the problematic
// symptom handed to the diagnosis schemes, the ground-truth root cause, and
// the incident window. The two families match the paper:
//
//  * performance interference (Fig. 5): aggressor client A ramps its request
//    rate to an endpoint whose call tree shares downstream services with
//    victim client B's endpoint; symptom = B's latency, root cause = A.
//  * resource contention (Fig. 6): a stress-ng-style CPU/mem/disk fault on a
//    randomly chosen container, with up to `prior_incidents` short-lived
//    warm-up faults earlier in the trace; symptom = client latency, root
//    cause = the faulted container.
#pragma once

#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/emulation/simulator.h"

namespace murphy::emulation {

struct DiagnosisCase {
  std::string name;
  telemetry::MonitoringDb db;
  SimEntities entities;

  // Problematic symptom (M_o, E_o) given to every scheme.
  EntityId symptom_entity;
  std::string symptom_metric;

  // Operator ground truth. Incidents may have SEVERAL independent roots
  // (correlated faults, see faults.h); `all_roots` lists every one and
  // `root_cause` stays the first for single-root consumers. Builders always
  // fill both.
  EntityId root_cause;
  std::vector<EntityId> all_roots;
  // Entities accepted by the "relaxed" criteria of §6.1 (common services /
  // common containers on the interference path), root cause included.
  std::vector<EntityId> relaxed_set;

  // Incident timing (slice indices).
  TimeIndex incident_start = 0;
  TimeIndex incident_end = 0;

  // Dependency-walk hop budget for the diagnosis request. The two hand-built
  // apps fit the engine default; generated tiered topologies are deeper
  // (client -> gateway -> k mid layers -> datastore -> container) and set
  // this from their layer depth so the true root is inside the neighborhood.
  std::size_t max_hops = 4;
};

struct InterferenceOptions {
  double victim_rps = 20.0;
  double aggressor_base_rps = 20.0;
  double aggressor_high_rps = 300.0;
  std::size_t slices = 420;
  TimeIndex ramp_at = 300;
  std::uint64_t seed = 1;
  bool bidirectional_call_edges = true;
};

// Hotel-reservation interference: client A drives the "search" endpoint,
// client B the "recommendation" endpoint; they share profile/geo/rate
// backends through the frontend.
[[nodiscard]] DiagnosisCase make_interference_case(
    const InterferenceOptions& opts);

// The 32-variant sweep of §6.1 (aggressor intensity varies per variant).
[[nodiscard]] std::vector<InterferenceOptions> interference_sweep(
    std::size_t variants, std::uint64_t seed);

struct ContentionOptions {
  enum class App { kHotelReservation, kSocialNetwork };
  App app = App::kSocialNetwork;
  FaultKind fault = FaultKind::kCpuStress;
  // Chosen container; when >= #containers it is picked pseudo-randomly.
  std::size_t target_container = SIZE_MAX;
  double intensity = 1.2;
  std::size_t duration_slices = 45;   // 5-10 min range in the paper
  std::size_t prior_incidents = 4;
  std::size_t slices = 360;           // 30-90 min workload
  std::uint64_t seed = 1;
  bool bidirectional_call_edges = false;  // §6.3 runs the acyclic setup
};

[[nodiscard]] DiagnosisCase make_contention_case(const ContentionOptions& opts);

// Random sweep across fault kinds / intensities / locations, as in §5.1.2
// ("more than 200 such fault scenarios across both setups").
[[nodiscard]] std::vector<ContentionOptions> contention_sweep(
    ContentionOptions::App app, std::size_t count, std::size_t prior_incidents,
    std::uint64_t seed);

}  // namespace murphy::emulation
