#include "src/core/metric_space.h"

namespace murphy::core {

MetricSpace::MetricSpace(const telemetry::MonitoringDb& db,
                         const graph::RelationshipGraph& graph) {
  node_vars_.resize(graph.node_count());
  for (graph::NodeIndex n = 0; n < graph.node_count(); ++n) {
    const EntityId entity = graph.entity_of(n);
    for (const MetricKindId kind : db.metrics().kinds_of(entity)) {
      const VarIndex v = vars_.size();
      vars_.push_back(Var{n, entity, kind});
      node_vars_[n].push_back(v);
      index_.emplace(MetricRef{entity, kind}, v);
    }
  }
}

std::optional<VarIndex> MetricSpace::find(EntityId entity,
                                          MetricKindId kind) const {
  const auto it = index_.find(MetricRef{entity, kind});
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::vector<double> MetricSpace::snapshot(const telemetry::MonitoringDb& db,
                                          TimeIndex t) const {
  std::vector<double> out(vars_.size(), 0.0);
  for (VarIndex v = 0; v < vars_.size(); ++v) {
    const auto* ts = db.metrics().find(vars_[v].entity, vars_[v].kind);
    if (ts != nullptr) out[v] = ts->value_or(t, 0.0);
  }
  return out;
}

std::vector<double> MetricSpace::history(const telemetry::MonitoringDb& db,
                                         VarIndex v, TimeIndex from,
                                         TimeIndex to) const {
  // An inverted window (to < from) is a telemetry defect, not a caller bug:
  // unsigned subtraction below would request ~2^64 slices. Treat it as empty.
  if (to < from) return {};
  const auto* ts = db.metrics().find(vars_[v].entity, vars_[v].kind);
  if (ts == nullptr) return std::vector<double>(to - from, 0.0);
  return ts->window(from, to, 0.0);
}

}  // namespace murphy::core
