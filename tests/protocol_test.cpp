// The murphyd wire protocol (DESIGN.md §12): the shared Protocol verb
// dispatch over both delivery modes, the parser regressions it fixed
// (optional-operand clobbering, silent zero counts), and the socket front
// end — pipelined out-of-order completions, per-connection admission
// control, backpressure and graceful drain — over unix-domain AND TCP
// transports.
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <netinet/in.h>
#include <arpa/inet.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/service/diagnosis_service.h"
#include "src/service/feed.h"
#include "src/service/net_server.h"
#include "src/service/protocol.h"
#include "src/service/telemetry_stream.h"

namespace murphy::service {
namespace {

using telemetry::EntityType;
using telemetry::MonitoringDb;
using telemetry::RelationKind;

// Chain A -> B -> C -> D with a surge at A near the end (the service_test
// environment): one diagnosis costs ~1 ms, several candidates rank.
MonitoringDb make_chain_db(std::size_t slices) {
  MonitoringDb db;
  const EntityId a = db.add_entity(EntityType::kVm, "A");
  const EntityId b = db.add_entity(EntityType::kVm, "B");
  const EntityId c = db.add_entity(EntityType::kVm, "C");
  const EntityId d = db.add_entity(EntityType::kVm, "D");
  db.add_association(a, b, RelationKind::kGeneric);
  db.add_association(b, c, RelationKind::kGeneric);
  db.add_association(c, d, RelationKind::kGeneric);
  const MetricKindId load = db.catalog().intern("cpu_util");
  db.metrics().set_axis(TimeAxis(0.0, 10.0, slices));
  Rng rng(11);
  std::vector<double> va(slices), vb(slices), vc(slices), vd(slices);
  for (std::size_t t = 0; t < slices; ++t) {
    const double surge = t + 20 >= slices ? 14.0 : 0.0;
    va[t] = 6.0 + 2.0 * std::sin(0.07 * t) + rng.normal(0.0, 0.3) + surge;
    vb[t] = 1.6 * va[t] + rng.normal(0.0, 0.3);
    vc[t] = 1.2 * vb[t] + rng.normal(0.0, 0.4);
    vd[t] = 1.1 * vc[t] + rng.normal(0.0, 0.4);
  }
  db.metrics().put(a, load, va);
  db.metrics().put(b, load, vb);
  db.metrics().put(c, load, vc);
  db.metrics().put(d, load, vd);
  return db;
}

// A murphyd-shaped runtime: stream + service + replay feed + protocol,
// minus the daemon. REPLAY/STATS hooks mirror examples/murphyd.cpp.
struct ProtoEnv {
  ReplayFeed feed;
  std::unique_ptr<TelemetryStream> stream;
  std::unique_ptr<DiagnosisService> svc;
  std::unique_ptr<Protocol> proto;
  std::atomic<std::size_t> replayed{0};
  std::mutex replay_mu;
};

std::unique_ptr<ProtoEnv> make_proto_env(std::size_t slices,
                                         std::size_t workers,
                                         std::size_t num_samples = 20) {
  auto env = std::make_unique<ProtoEnv>();
  env->feed = make_replay_feed(make_chain_db(slices),
                               static_cast<TimeIndex>(slices - 20));
  env->stream = std::make_unique<TelemetryStream>(std::move(env->feed.warm));
  DiagnosisServiceOptions sopts;
  sopts.num_workers = workers;
  sopts.max_queue = 256;
  sopts.murphy.num_threads = 1;
  sopts.murphy.sampler.num_samples = num_samples;
  sopts.murphy.seed = 7;
  env->svc = std::make_unique<DiagnosisService>(*env->stream, sopts);
  ProtocolHooks hooks;
  ProtoEnv* e = env.get();
  hooks.replay_n = [e](std::size_t n) {
    std::lock_guard<std::mutex> lock(e->replay_mu);
    std::size_t cells = 0;
    while (n-- > 0 && e->replayed.load() < e->feed.batches.size())
      cells += replay_slice(*e->stream, e->feed, e->replayed.fetch_add(1));
    return cells;
  };
  hooks.replayed = [e] { return e->replayed.load(); };
  env->proto = std::make_unique<Protocol>(*env->stream, *env->svc,
                                          std::move(hooks));
  return env;
}

// Blocking dispatch, murphyd's stdio mode: one line in, one response out.
std::string stdio_dispatch(ProtoEnv& env, const std::string& line) {
  std::string out = "<no response>";
  env.proto->dispatch(
      line, [&](std::string s) { out = std::move(s); },
      /*deliver_async=*/false);
  return out;
}

// The ranked-cause suffix of a DIAGNOSE response (" 1:A 2:B ..."), i.e.
// everything after the per-run run_ms noise.
std::string cause_suffix(const std::string& resp) {
  const std::size_t pos = resp.find(" 1:");
  return pos == std::string::npos ? "" : resp.substr(pos);
}

// ---------------------------------------------------------------------------
// Parser regressions (stdio mode)

TEST(ProtocolParse, ReplayWithoutCountReplaysOneSlice) {
  auto env = make_proto_env(160, 1);
  // Pre-PR: the failed `in >> n` extraction zeroed the default and printed
  // OK having replayed nothing.
  EXPECT_EQ(stdio_dispatch(*env, "REPLAY"), "OK replayed_to=1 cells=4");
  EXPECT_EQ(stdio_dispatch(*env, "REPLAY 2"), "OK replayed_to=3 cells=8");
}

TEST(ProtocolParse, ReplayRejectsGarbageCounts) {
  auto env = make_proto_env(160, 1);
  EXPECT_EQ(stdio_dispatch(*env, "REPLAY xyz"),
            "ERR bad count 'xyz' (usage: REPLAY [n])");
  EXPECT_EQ(stdio_dispatch(*env, "REPLAY 2 junk"),
            "ERR trailing garbage 'junk' (usage: REPLAY [n])");
  EXPECT_EQ(stdio_dispatch(*env, "REPLAY -1"),
            "ERR bad count '-1' (usage: REPLAY [n])");
  // Nothing replayed by any of the rejected commands.
  EXPECT_EQ(env->replayed.load(), 0u);
}

TEST(ProtocolParse, ExtendDefaultsValidatesAndCaps) {
  auto env = make_proto_env(160, 1);
  const std::size_t before = env->stream->slice_count();
  EXPECT_EQ(stdio_dispatch(*env, "EXTEND"),
            "OK slices=" + std::to_string(before + 1));
  EXPECT_EQ(stdio_dispatch(*env, "EXTEND abc"),
            "ERR bad count 'abc' (usage: EXTEND [n])");
  EXPECT_EQ(stdio_dispatch(*env, "EXTEND 9999999999"),
            "ERR count too large (max 1048576)");
  EXPECT_EQ(env->stream->slice_count(), before + 1);
}

TEST(ProtocolParse, DiagnoseWithoutHopsUsesDocumentedDefault) {
  auto env = make_proto_env(160, 1);
  // Bring the surge (last 20 slices of the feed) into the stream, the way
  // murphyd replays before diagnosing.
  stdio_dispatch(*env, "REPLAY 20");
  // Pre-PR, `in >> req.max_hops` wrote 0 over the preset 4 whenever the
  // operand was absent, so a hop-less request searched nothing beyond the
  // symptom. Fixed: bare == explicit 4, and both differ from explicit 0.
  const std::string bare_resp = stdio_dispatch(*env, "DIAGNOSE D cpu_util");
  const std::string bare = cause_suffix(bare_resp);
  const std::string four =
      cause_suffix(stdio_dispatch(*env, "DIAGNOSE D cpu_util 4"));
  const std::string zero =
      cause_suffix(stdio_dispatch(*env, "DIAGNOSE D cpu_util 0"));
  ASSERT_FALSE(bare.empty()) << bare_resp;
  EXPECT_EQ(bare, four);
  EXPECT_NE(bare, zero);
  // With hops=0 the search cannot leave the symptom entity.
  EXPECT_EQ(zero, " 1:D");
}

TEST(ProtocolParse, DiagnoseRejectsGarbageOperands) {
  auto env = make_proto_env(160, 1);
  EXPECT_EQ(stdio_dispatch(*env, "DIAGNOSE D cpu_util xyz"),
            "ERR bad max_hops 'xyz' (usage: DIAGNOSE <entity> <metric> "
            "[hops] [deadline_ms])");
  EXPECT_EQ(stdio_dispatch(*env, "DIAGNOSE D cpu_util 4 5s"),
            "ERR bad deadline_ms '5s' (usage: DIAGNOSE <entity> <metric> "
            "[hops] [deadline_ms])");
  EXPECT_EQ(stdio_dispatch(*env, "DIAGNOSE D cpu_util 4 100 extra"),
            "ERR trailing garbage 'extra' (usage: DIAGNOSE <entity> "
            "<metric> [hops] [deadline_ms])");
}

TEST(ProtocolParse, SharedVerbResponsesMatchPrePrBytes) {
  // The stdio protocol's clean-transcript byte contract: exact response
  // strings for the deterministic shared verbs.
  auto env = make_proto_env(160, 1);
  EXPECT_EQ(stdio_dispatch(*env, "FOO"), "ERR unknown verb FOO");
  EXPECT_EQ(stdio_dispatch(*env, "DIAGNOSE"),
            "ERR usage: DIAGNOSE <entity> <metric> [hops] [deadline_ms]");
  EXPECT_EQ(stdio_dispatch(*env, "DIAGNOSE nosuch cpu_util"),
            "ERR unknown entity nosuch");
  EXPECT_EQ(stdio_dispatch(*env, "INGEST"),
            "ERR usage: INGEST <entity> <metric> <slice> <value>");
  EXPECT_EQ(stdio_dispatch(*env, "INGEST nosuch cpu_util 0 1.0"),
            "ERR unknown entity nosuch");
  EXPECT_EQ(stdio_dispatch(*env, "INGEST A cpu_util 0 1.0"), "OK");
  EXPECT_EQ(stdio_dispatch(*env, "INGEST A cpu_util 999999 1.0"),
            "ERR cell dropped (slice out of axis?)");
  EXPECT_EQ(stdio_dispatch(*env, "SNAPSHOT"), "ERR usage: SNAPSHOT <path>");
  EXPECT_EQ(stdio_dispatch(*env, "SNAPSHOT /no/such/dir/x.snap"),
            "ERR write /no/such/dir/x.snap");
  EXPECT_EQ(stdio_dispatch(*env, "QUIT"), "OK bye");
  std::string stats = stdio_dispatch(*env, "STATS");
  EXPECT_EQ(stats.substr(0, 10), "OK slices=");
  EXPECT_NE(stats.find(" metrics={"), std::string::npos);
}

TEST(ProtocolParse, TagPrefixesEveryResponse) {
  auto env = make_proto_env(160, 1);
  EXPECT_EQ(stdio_dispatch(*env, "#7 REPLAY"),
            "#7 OK replayed_to=1 cells=4");
  EXPECT_EQ(stdio_dispatch(*env, "#x DIAGNOSE nosuch m"),
            "#x ERR unknown entity nosuch");
  EXPECT_EQ(stdio_dispatch(*env, "#lone"), "#lone ERR empty command");
  // '#' alone is not a tag.
  EXPECT_EQ(stdio_dispatch(*env, "# REPLAY"), "ERR unknown verb #");
}

TEST(ProtocolParse, StrictNumericHelpers) {
  EXPECT_EQ(parse_count("0"), 0u);
  EXPECT_EQ(parse_count("42"), 42u);
  EXPECT_FALSE(parse_count("").has_value());
  EXPECT_FALSE(parse_count("-1").has_value());
  EXPECT_FALSE(parse_count("+1").has_value());
  EXPECT_FALSE(parse_count("1.5").has_value());
  EXPECT_FALSE(parse_count("7x").has_value());
  EXPECT_FALSE(parse_count("0x10").has_value());
  EXPECT_DOUBLE_EQ(*parse_double("0.75"), 0.75);
  EXPECT_DOUBLE_EQ(*parse_double("1e-3"), 1e-3);
  EXPECT_DOUBLE_EQ(*parse_double("-2.5"), -2.5);
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("abc").has_value());
  EXPECT_FALSE(parse_double("1.5x").has_value());
  EXPECT_FALSE(parse_double("inf").has_value());
  EXPECT_FALSE(parse_double("nan").has_value());
  EXPECT_FALSE(parse_double(" 1").has_value());
}

// ---------------------------------------------------------------------------
// Socket front end

// Minimal blocking line client over an already-connected fd.
class LineClient {
 public:
  explicit LineClient(int fd) : fd_(fd) {}
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  void send_all(const std::string& data) const {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t w =
          ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      ASSERT_GT(w, 0) << "send failed: " << std::strerror(errno);
      off += static_cast<std::size_t>(w);
    }
  }

  // Next full line (without '\n'), or "<eof>" / "<timeout>".
  std::string read_line(int timeout_ms = 20000) {
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return line;
      }
      pollfd pfd{fd_, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, timeout_ms);
      if (pr <= 0) return "<timeout>";
      char tmp[4096];
      const ssize_t r = ::recv(fd_, tmp, sizeof tmp, 0);
      if (r <= 0) return "<eof>";
      buf_.append(tmp, static_cast<std::size_t>(r));
    }
  }

  // True when the peer closed (EOF) with no stray bytes left.
  bool at_eof(int timeout_ms = 20000) {
    return read_line(timeout_ms) == "<eof>" && buf_.empty();
  }

 private:
  int fd_;
  std::string buf_;
};

std::string test_unix_path(const char* name) {
  return "/tmp/murphy_proto_" + std::to_string(::getpid()) + "_" + name +
         ".sock";
}

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

TEST(NetServerTest, ImmediateVerbsAnswerInOrderOnBothTransports) {
  auto env = make_proto_env(160, 2);
  NetServerOptions nopts;
  nopts.unix_path = test_unix_path("both");
  nopts.tcp_port = 0;  // ephemeral
  NetServer server(*env->proto, nopts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;
  ASSERT_GT(server.tcp_port(), 0);

  {
    const int fd = connect_unix(nopts.unix_path);
    ASSERT_GE(fd, 0);
    LineClient c(fd);
    c.send_all("#a REPLAY 1\n#b EXTEND\nFOO\n");
    EXPECT_EQ(c.read_line(), "#a OK replayed_to=1 cells=4");
    EXPECT_EQ(c.read_line().substr(0, 13), "#b OK slices=");
    EXPECT_EQ(c.read_line(), "ERR unknown verb FOO");
  }
  {
    const int fd = connect_tcp(server.tcp_port());
    ASSERT_GE(fd, 0);
    LineClient c(fd);
    c.send_all("#t DIAGNOSE D cpu_util\nQUIT\n");
    // DIAGNOSE pipelines past QUIT's immediate answer; collect both.
    std::vector<std::string> lines{c.read_line(), c.read_line()};
    const bool quit_first = lines[0] == "OK bye";
    EXPECT_EQ(quit_first ? lines[0] : lines[1], "OK bye");
    const std::string& diag = quit_first ? lines[1] : lines[0];
    EXPECT_EQ(diag.substr(0, 9), "#t OK id=");
    EXPECT_NE(cause_suffix(diag), "");
    EXPECT_TRUE(c.at_eof());
  }
  EXPECT_EQ(server.accepted_connections(), 2u);
  server.shutdown();
}

TEST(NetServerTest, PipelinedDiagnosesCompleteOutOfOrder) {
  auto env = make_proto_env(600, 1, /*num_samples=*/300);
  NetServerOptions nopts;
  nopts.unix_path = test_unix_path("ooo");
  NetServer server(*env->proto, nopts);
  ASSERT_TRUE(server.start());

  // Occupy the single worker so the pipelined DIAGNOSE below must queue —
  // its completion deterministically lands after the immediate STATS.
  ServiceRequest plug;
  {
    const auto db = env->stream->read();
    plug.symptom_entity = db->find_entity("D");
    plug.symptom_metric = "cpu_util";
    plug.now = db->metrics().axis().size() - 1;
    plug.train_begin = 0;
    plug.train_end = db->metrics().axis().size();
  }
  auto plug_fut = env->svc->submit(plug);
  while (env->svc->queue_depth() > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  const int fd = connect_unix(nopts.unix_path);
  ASSERT_GE(fd, 0);
  LineClient c(fd);
  // One write, two commands: the DIAGNOSE needs the (busy) worker, the
  // STATS answers from the loop thread — its response arrives FIRST, which
  // the blocking stdio loop could never do.
  c.send_all("#slow DIAGNOSE D cpu_util\n#fast STATS\n");
  const std::string first = c.read_line();
  EXPECT_EQ(first.substr(0, 16), "#fast OK slices=");
  plug_fut.get();
  const std::string second = c.read_line();
  EXPECT_EQ(second.substr(0, 12), "#slow OK id=");
  server.shutdown();
}

TEST(NetServerTest, PerConnectionInflightLimitRejects) {
  auto env = make_proto_env(600, 1, /*num_samples=*/300);
  NetServerOptions nopts;
  nopts.unix_path = test_unix_path("limit");
  nopts.max_inflight_per_conn = 2;
  NetServer server(*env->proto, nopts);
  ASSERT_TRUE(server.start());

  // Plug the single worker so the pipelined DIAGNOSEs below cannot start,
  // making the in-flight window deterministic.
  ServiceRequest plug;
  {
    const auto db = env->stream->read();
    plug.symptom_entity = db->find_entity("D");
    plug.symptom_metric = "cpu_util";
    plug.now = db->metrics().axis().size() - 1;
    plug.train_begin = 0;
    plug.train_end = db->metrics().axis().size();
  }
  auto plug_fut = env->svc->submit(plug);
  // Wait until the worker popped it (queue empty = running).
  while (env->svc->queue_depth() > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  const int fd = connect_unix(nopts.unix_path);
  ASSERT_GE(fd, 0);
  LineClient c(fd);
  c.send_all(
      "#1 DIAGNOSE D cpu_util\n#2 DIAGNOSE D cpu_util\n"
      "#3 DIAGNOSE D cpu_util\n#4 DIAGNOSE D cpu_util\n"
      "#5 DIAGNOSE D cpu_util\n");
  // #1/#2 occupy the window; #3..#5 are rejected with the explicit
  // kRejectedQueueFull-style line, in order, before anything completes.
  for (const char* tag : {"#3", "#4", "#5"}) {
    EXPECT_EQ(c.read_line(),
              std::string(tag) +
                  " ERR rejected_conn_inflight_full (in_flight 2 limit 2)");
  }
  // Once the plug finishes, the two admitted requests complete fine.
  plug_fut.get();
  std::vector<std::string> done{c.read_line(), c.read_line()};
  for (const std::string& resp : done) {
    EXPECT_TRUE(resp.substr(0, 2) == "#1" || resp.substr(0, 2) == "#2")
        << resp;
    EXPECT_NE(resp.find(" OK id="), std::string::npos) << resp;
  }
  server.shutdown();
}

TEST(NetServerTest, GracefulDrainSettlesInflightDiagnoses) {
  auto env = make_proto_env(400, 2, /*num_samples=*/100);
  NetServerOptions nopts;
  nopts.unix_path = test_unix_path("drain");
  NetServer server(*env->proto, nopts);
  ASSERT_TRUE(server.start());

  const int fd = connect_unix(nopts.unix_path);
  ASSERT_GE(fd, 0);
  LineClient c(fd);
  c.send_all(
      "#a DIAGNOSE D cpu_util\n#b DIAGNOSE C cpu_util\n"
      "#c DIAGNOSE B cpu_util\n");
  // Give the loop thread time to frame and dispatch all three, then drain:
  // stop accepting, settle the in-flight diagnoses, flush, close.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  server.shutdown();
  std::vector<std::string> got;
  for (int i = 0; i < 3; ++i) got.push_back(c.read_line());
  for (const std::string& resp : got)
    EXPECT_NE(resp.find(" OK id="), std::string::npos) << resp;
  EXPECT_TRUE(c.at_eof());
}

TEST(NetServerTest, QuitClosesOnlyThatConnection) {
  auto env = make_proto_env(160, 1);
  NetServerOptions nopts;
  nopts.unix_path = test_unix_path("quit");
  NetServer server(*env->proto, nopts);
  ASSERT_TRUE(server.start());

  const int fd1 = connect_unix(nopts.unix_path);
  const int fd2 = connect_unix(nopts.unix_path);
  ASSERT_GE(fd1, 0);
  ASSERT_GE(fd2, 0);
  LineClient c1(fd1), c2(fd2);
  c1.send_all("QUIT\n");
  EXPECT_EQ(c1.read_line(), "OK bye");
  EXPECT_TRUE(c1.at_eof());
  c2.send_all("#x EXTEND\n");
  EXPECT_EQ(c2.read_line().substr(0, 13), "#x OK slices=");
  server.shutdown();
}

TEST(NetServerTest, OversizedLineAnswersAndCloses) {
  auto env = make_proto_env(160, 1);
  NetServerOptions nopts;
  nopts.unix_path = test_unix_path("long");
  nopts.max_line_bytes = 256;
  NetServer server(*env->proto, nopts);
  ASSERT_TRUE(server.start());

  const int fd = connect_unix(nopts.unix_path);
  ASSERT_GE(fd, 0);
  LineClient c(fd);
  c.send_all(std::string(1024, 'A'));  // no newline: framing is lost
  EXPECT_EQ(c.read_line(), "ERR line too long (limit 256 bytes)");
  EXPECT_TRUE(c.at_eof());
  server.shutdown();
}

TEST(NetServerTest, ConnectionCapAnswersServerFull) {
  auto env = make_proto_env(160, 1);
  NetServerOptions nopts;
  nopts.unix_path = test_unix_path("full");
  nopts.max_connections = 1;
  NetServer server(*env->proto, nopts);
  ASSERT_TRUE(server.start());

  const int fd1 = connect_unix(nopts.unix_path);
  ASSERT_GE(fd1, 0);
  LineClient c1(fd1);
  c1.send_all("EXTEND\n");  // ensure conn 1 is registered before conn 2
  EXPECT_EQ(c1.read_line().substr(0, 10), "OK slices=");
  const int fd2 = connect_unix(nopts.unix_path);
  ASSERT_GE(fd2, 0);
  LineClient c2(fd2);
  EXPECT_EQ(c2.read_line(), "ERR server full");
  EXPECT_TRUE(c2.at_eof());
  server.shutdown();
}

TEST(NetServerTest, ManyConnectionsPipelinedSoak) {
  // N connections x pipelined requests through a 2-worker service: every
  // command gets exactly one tagged response, none lost, none duplicated.
  auto env = make_proto_env(200, 2);
  NetServerOptions nopts;
  nopts.unix_path = test_unix_path("soak");
  NetServer server(*env->proto, nopts);
  ASSERT_TRUE(server.start());

  constexpr int kConns = 4;
  constexpr int kReqs = 6;
  std::vector<std::thread> clients;
  std::atomic<int> ok{0};
  for (int ci = 0; ci < kConns; ++ci) {
    clients.emplace_back([&, ci] {
      const int fd = connect_unix(nopts.unix_path);
      ASSERT_GE(fd, 0);
      LineClient c(fd);
      std::string batch;
      for (int r = 0; r < kReqs; ++r)
        batch += "#c" + std::to_string(ci) + "r" + std::to_string(r) +
                 " DIAGNOSE D cpu_util\n";
      c.send_all(batch);
      std::set<std::string> tags;
      for (int r = 0; r < kReqs; ++r) {
        const std::string resp = c.read_line();
        const std::size_t sp = resp.find(' ');
        ASSERT_NE(sp, std::string::npos) << resp;
        tags.insert(resp.substr(0, sp));
        EXPECT_NE(resp.find(" OK id="), std::string::npos) << resp;
        ++ok;
      }
      EXPECT_EQ(tags.size(), static_cast<std::size_t>(kReqs));
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), kConns * kReqs);
  server.shutdown();
}

}  // namespace
}  // namespace murphy::service
