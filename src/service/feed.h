// Replayable telemetry feed: splits a fully populated MonitoringDb into a
// warm prefix and a per-slice cell stream.
//
// The batch pipeline's generators (the microservice simulator, the
// enterprise dataset) produce complete dbs; the service wants the same
// scenarios as STREAMS — structure plus some history up front, then cells
// arriving slice by slice while diagnoses run. make_replay_feed() does that
// split: `warm` is a standalone db with identical entity/app/association/
// catalog ids (so symptom handles and cells carry over unchanged), the axis
// truncated to `split` slices and the metric history before the split;
// `batches[i]` holds every valid cell of slice split + i. Replaying is
// extend_axis(1) + append(batches[i]) per slice — exactly the murphyd
// ingest loop, and what the soak test and throughput bench drive.
#pragma once

#include <vector>

#include "src/common/time_axis.h"
#include "src/service/telemetry_stream.h"
#include "src/telemetry/monitoring_db.h"

namespace murphy::service {

struct ReplayFeed {
  telemetry::MonitoringDb warm;
  // batches[i] = valid cells of slice split + i, in (entity, kind) series
  // order. Cell time indices are full-axis (replay after extending the axis
  // past them).
  std::vector<std::vector<TelemetryCell>> batches;
  TimeIndex split = 0;
};

// `split` is clamped to the source axis length. Entity ids in `warm` equal
// the source's (absent slots are reproduced as absent), metric kind ids
// match, config events are copied wholesale.
[[nodiscard]] ReplayFeed make_replay_feed(const telemetry::MonitoringDb& db,
                                          TimeIndex split);

// Replays one slice: grows the stream's axis by one and appends batch `i`.
// Returns the number of cells written.
std::size_t replay_slice(TelemetryStream& stream, const ReplayFeed& feed,
                         std::size_t i);

}  // namespace murphy::service
