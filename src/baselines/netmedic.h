// NetMedic-style baseline (Kandula et al., SIGCOMM '09, as re-implemented
// for the paper's comparisons — the original code is not public).
//
// NetMedic ranks candidates over a dependency graph with fixed heuristics:
//  * per-entity abnormality from historical metric statistics;
//  * edge weights from the co-movement of neighbor metrics in history,
//    dampened when the source currently looks normal;
//  * path score = geometric mean of edge weights along the best path from
//    candidate to the affected entity;
//  * final score = path score * global impact (how much of the graph the
//    candidate plausibly affects).
// The paper finds these fixed heuristics brittle; this implementation keeps
// their structure faithfully so the comparison is meaningful.
#pragma once

#include "src/core/diagnosis.h"
#include "src/obs/hooks.h"

namespace murphy::baselines {

struct NetMedicOptions {
  // Minimum score for a candidate to be reported; calibration knob (§6.2).
  double min_score = 0.05;
  // Abnormality saturation: z-scores are squashed by z / (z + this).
  double abnormality_scale = 2.0;
  bool use_pruned_search_space = true;
  // Edge-weight computation. True = the original NetMedic mechanism: find
  // history windows where the source's state resembles its current state
  // and score how closely the destination tracked its own current state in
  // those windows. False = a cheaper co-abnormality correlation.
  bool use_state_similarity = true;
  // Number of most-similar historical slices considered per edge.
  std::size_t similar_slices = 10;
  // Optional observability hooks: a span per diagnosis plus candidate
  // counters, comparable with Murphy's own instrumentation.
  obs::ObsHooks obs;
};

class NetMedic final : public core::Diagnoser {
 public:
  explicit NetMedic(NetMedicOptions opts = {});

  [[nodiscard]] core::DiagnosisResult diagnose(
      const core::DiagnosisRequest& request) override;
  [[nodiscard]] std::string_view name() const override { return "netmedic"; }

  NetMedicOptions& mutable_options() { return opts_; }

 private:
  NetMedicOptions opts_;
};

}  // namespace murphy::baselines
