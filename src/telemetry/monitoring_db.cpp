#include "src/telemetry/monitoring_db.h"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "src/obs/metrics.h"

namespace murphy::telemetry {

std::uint64_t DbUid::next() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

EntityId MonitoringDb::add_entity(EntityType type, std::string name,
                                  AppId app) {
  ++structural_version_;
  const EntityId id(static_cast<std::uint32_t>(entities_.size()));
  name_index_.emplace(name, id);
  entities_.push_back(EntityInfo{id, type, std::move(name), app});
  present_.push_back(true);
  if (app.valid()) add_to_app(app, id);
  return id;
}

void MonitoringDb::add_association(EntityId a, EntityId b, RelationKind kind,
                                   bool directed) {
  // Defined semantics for malformed edges (DESIGN.md §8): drop and count
  // instead of storing an edge no consumer can interpret. Nothing changes
  // for well-formed input, so no version bump on the drop paths.
  if (a == b) {
#ifndef MURPHY_OBS_DISABLED
    obs::global_metrics().counter("ingest.selfloop_edges_dropped")->add(1);
#endif
    return;
  }
  if (!has_entity(a) || !has_entity(b)) {
#ifndef MURPHY_OBS_DISABLED
    obs::global_metrics().counter("ingest.orphan_edges_dropped")->add(1);
#endif
    return;
  }
  ++structural_version_;
  const std::size_t index = associations_.size();
  associations_.push_back(Association{a, b, kind, directed});
  assoc_index_[a].push_back(index);
  assoc_index_[b].push_back(index);
}

AppId MonitoringDb::define_app(std::string name) {
  const AppId id(static_cast<std::uint32_t>(apps_.size()));
  app_index_.emplace(name, id);
  apps_.push_back(AppInfo{id, std::move(name), {}});
  return id;
}

void MonitoringDb::add_to_app(AppId app, EntityId entity) {
  assert(app.valid() && app.value() < apps_.size());
  ++structural_version_;
  apps_[app.value()].members.push_back(entity);
  entities_[entity.value()].app = app;
}

const EntityInfo& MonitoringDb::entity(EntityId id) const {
  assert(id.valid() && id.value() < entities_.size());
  return entities_[id.value()];
}

bool MonitoringDb::has_entity(EntityId id) const {
  return id.valid() && id.value() < entities_.size() && present_[id.value()];
}

std::vector<EntityId> MonitoringDb::all_entities() const {
  std::vector<EntityId> out;
  out.reserve(entities_.size());
  for (const auto& e : entities_)
    if (present_[e.id.value()]) out.push_back(e.id);
  return out;
}

EntityId MonitoringDb::find_entity(std::string_view name) const {
  const auto it = name_index_.find(std::string(name));
  if (it == name_index_.end() || !present_[it->second.value()])
    return EntityId::invalid();
  return it->second;
}

std::span<const std::size_t> MonitoringDb::association_indices(
    EntityId id) const {
  static const std::vector<std::size_t> kEmpty;
  const auto it = assoc_index_.find(id);
  return it == assoc_index_.end() ? std::span<const std::size_t>(kEmpty)
                                  : std::span<const std::size_t>(it->second);
}

const Association& MonitoringDb::association(std::size_t index) const {
  assert(index < associations_.size());
  return associations_[index];
}

std::vector<EntityId> MonitoringDb::neighbors(EntityId id) const {
  std::vector<EntityId> out;
  for (const std::size_t idx : association_indices(id)) {
    const Association& assoc = associations_[idx];
    const EntityId other = assoc.a == id ? assoc.b : assoc.a;
    if (!present_[other.value()]) continue;
    if (std::find(out.begin(), out.end(), other) == out.end())
      out.push_back(other);
  }
  return out;
}

const AppInfo& MonitoringDb::app(AppId id) const {
  assert(id.valid() && id.value() < apps_.size());
  return apps_[id.value()];
}

AppId MonitoringDb::find_app(std::string_view name) const {
  const auto it = app_index_.find(std::string(name));
  return it == app_index_.end() ? AppId::invalid() : it->second;
}

void MonitoringDb::remove_association(std::size_t index) {
  assert(index < associations_.size());
  ++structural_version_;
  associations_.erase(associations_.begin() +
                      static_cast<std::ptrdiff_t>(index));
  rebuild_assoc_index();
}

void MonitoringDb::remove_entity(EntityId id) {
  assert(has_entity(id));
  ++structural_version_;
  present_[id.value()] = false;
  associations_.erase(
      std::remove_if(associations_.begin(), associations_.end(),
                     [id](const Association& a) {
                       return a.a == id || a.b == id;
                     }),
      associations_.end());
  rebuild_assoc_index();
  metrics_.erase_entity(id);
  for (auto& app : apps_) {
    auto& m = app.members;
    m.erase(std::remove(m.begin(), m.end(), id), m.end());
  }
}

void MonitoringDb::rebuild_assoc_index() {
  assoc_index_.clear();
  for (std::size_t i = 0; i < associations_.size(); ++i) {
    assoc_index_[associations_[i].a].push_back(i);
    assoc_index_[associations_[i].b].push_back(i);
  }
}

}  // namespace murphy::telemetry
