// Discrete time axis shared by simulators and the metric store.
//
// All telemetry in this system is sampled on a uniform grid: the monitoring
// platform of the paper collects metrics in fixed intervals (minutes in the
// enterprise, 10 s in the microservice testbeds). A TimeAxis describes such a
// grid; indices into it ("time slices") are the only notion of time the
// learning code ever sees.
#pragma once

#include <cstddef>
#include <cstdint>

namespace murphy {

// Index of one time slice on a TimeAxis.
using TimeIndex = std::size_t;

class TimeAxis {
 public:
  TimeAxis() = default;
  // `interval_seconds` > 0, `num_slices` may be 0 for an empty axis.
  TimeAxis(double start_epoch_seconds, double interval_seconds,
           std::size_t num_slices);

  [[nodiscard]] double start() const { return start_; }
  [[nodiscard]] double interval() const { return interval_; }
  [[nodiscard]] std::size_t size() const { return num_slices_; }
  [[nodiscard]] bool empty() const { return num_slices_ == 0; }

  // Wall-clock seconds of slice i (beginning of the interval).
  [[nodiscard]] double time_of(TimeIndex i) const;
  // Slice containing the given wall-clock time, clamped to [0, size-1].
  [[nodiscard]] TimeIndex index_of(double epoch_seconds) const;

  // A sub-axis covering slices [from, to).
  [[nodiscard]] TimeAxis slice(TimeIndex from, TimeIndex to) const;

  friend bool operator==(const TimeAxis&, const TimeAxis&) = default;

 private:
  double start_ = 0.0;
  double interval_ = 1.0;
  std::size_t num_slices_ = 0;
};

}  // namespace murphy
