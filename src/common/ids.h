// Strong identifier types shared across the Murphy libraries.
//
// Entities, metrics and applications are referred to by small integer handles
// everywhere in the system. Wrapping them in distinct types prevents the
// classic bug of passing an entity index where a metric index is expected,
// at zero runtime cost.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace murphy {

// CRTP-less strong alias over an integral handle. `Tag` makes instantiations
// distinct types; the underlying value is accessible for container indexing.
template <typename Tag>
class StrongId {
 public:
  using value_type = std::uint32_t;

  constexpr StrongId() = default;
  constexpr explicit StrongId(value_type v) : value_(v) {}

  [[nodiscard]] constexpr value_type value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  [[nodiscard]] static constexpr StrongId invalid() { return StrongId{}; }

  friend constexpr bool operator==(StrongId a, StrongId b) = default;
  friend constexpr auto operator<=>(StrongId a, StrongId b) = default;

 private:
  static constexpr value_type kInvalid =
      std::numeric_limits<value_type>::max();
  value_type value_ = kInvalid;
};

struct EntityTag {};
struct AppTag {};
struct MetricTag {};

// Handle of one entity (VM, host, flow, container, service, ...).
using EntityId = StrongId<EntityTag>;
// Handle of one application (a tagged group of entities).
using AppId = StrongId<AppTag>;
// Index of a metric *kind* (e.g. "cpu_util") in the metric catalog.
using MetricKindId = StrongId<MetricTag>;

// A fully-qualified metric variable: one metric kind of one entity. This is
// the unit the MRF reasons over ("the CPU utilization of VM 17").
struct MetricRef {
  EntityId entity;
  MetricKindId kind;

  friend constexpr bool operator==(const MetricRef&, const MetricRef&) =
      default;
  friend constexpr auto operator<=>(const MetricRef&, const MetricRef&) =
      default;
};

}  // namespace murphy

template <typename Tag>
struct std::hash<murphy::StrongId<Tag>> {
  std::size_t operator()(murphy::StrongId<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};

template <>
struct std::hash<murphy::MetricRef> {
  std::size_t operator()(const murphy::MetricRef& m) const noexcept {
    const std::uint64_t packed =
        (static_cast<std::uint64_t>(m.entity.value()) << 32) | m.kind.value();
    return std::hash<std::uint64_t>{}(packed);
  }
};
