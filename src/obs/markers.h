// Fleet telemetry markers: periodic aggregated exports of the metrics
// registry, modeled on the App Gateway T2 scheme (SNIPPETS.md).
//
// A fleet monitor cannot scrape a process-internal registry; what it gets is
// a periodic stream of *markers* — one named datum per reporting interval
// with a standardized payload {sum, count, unit, reporting_interval_sec}.
// MarkerAggregator produces that stream by diffing consecutive registry
// snapshots: counters and histograms report the DELTA over the interval
// (what happened since the last export), gauges report the current value
// (point-in-time state). murphyd dogfoods this — the diagnosis engine's own
// obs registry is exported through the same aggregation path an application
// fleet would use, so "is the watchdog keeping up" is answerable from the
// marker stream alone (DESIGN.md §10).
//
// Marker names follow the T2 convention `<Prefix><CamelCasedInstrument>_split`
// (e.g. `service.total_ms` -> `MurphydServiceTotalMs_split`): one marker per
// statistic, machine-generated from the registry name so new instruments
// export without registration ceremony.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/metrics.h"

namespace murphy::obs {

// One aggregated datum of one reporting interval.
struct Marker {
  std::string name;  // e.g. "MurphydServiceCompletedTotal_split"
  double sum = 0.0;  // delta (counters/histograms) or current value (gauges)
  std::uint64_t count = 1;  // samples aggregated into `sum` (histogram delta)
  std::string unit;         // "count" | "ms"
  double interval_sec = 0.0;
};

// `AppGw`-style camel-cased marker name: prefix + instrument name with
// [._-] separators removed and each segment capitalized, plus "_split".
[[nodiscard]] std::string marker_name(std::string_view prefix,
                                      std::string_view instrument);

// The standardized payload: {"sum":..,"count":..,"unit":..,
// "reporting_interval_sec":..}, rendered deterministically.
[[nodiscard]] std::string marker_payload_json(const Marker& m);

// Snapshot-diff aggregator. Stateful: the first collect() reports deltas
// against zero (process start), each later collect() against the previous
// one. Not thread-safe; murphyd drives it from the replay/export loop.
class MarkerAggregator {
 public:
  explicit MarkerAggregator(std::string prefix = "Murphyd");

  // Diffs `snap` against the previous collect and returns the interval's
  // markers, sorted by instrument name:
  //  * counters: sum = value delta, count = 1; zero-delta counters are
  //    skipped (T2 reports activity, not the absence of it). A counter that
  //    shrank (registry reset) reports its current value.
  //  * gauges: always emitted; sum = current value, count = 1.
  //  * histograms: sum = sum delta, count = observation-count delta; skipped
  //    when no new observations arrived.
  // Units are inferred from the instrument name ("..._ms"/"....ms" -> "ms",
  // everything else "count").
  [[nodiscard]] std::vector<Marker> collect(
      const MetricsRegistry::Snapshot& snap, double interval_sec);

 private:
  struct Prev {
    double value = 0.0;
    double sum = 0.0;
  };
  std::string prefix_;
  std::map<std::string, Prev> prev_;
};

}  // namespace murphy::obs
