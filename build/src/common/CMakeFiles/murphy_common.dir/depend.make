# Empty dependencies file for murphy_common.
# This may be replaced when dependencies are built.
