// Table 2 — robustness to degraded/incomplete monitoring data (§6.4).
//
// Uses the acyclic contention setup (so Sage can run) and measures recall@5
// under four corruption modes: missing values / edge / entity / metric, plus
// the unchanged input, for all four schemes.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/strings.h"
#include "src/emulation/scenarios.h"
#include "src/eval/degradation.h"
#include "src/eval/metrics.h"
#include "src/eval/runner.h"
#include "src/eval/tables.h"

using namespace murphy;

int main() {
  bench::print_header(
      "Table 2: recall@5 with degraded/incomplete data (acyclic contention)",
      "aggregate over degradations — Murphy 0.80 (6% loss), Sage 0.70 (10%), "
      "NetMedic 0.18, ExplainIt ~0; missing values barely hurt Murphy, hurt "
      "Sage (data-hungry neural nets)");

  const std::size_t scenarios = bench::scaled(6, 40);
  const auto sweep = emulation::contention_sweep(
      emulation::ContentionOptions::App::kHotelReservation, scenarios,
      /*prior_incidents=*/4, 101);

  const eval::Degradation degradations[] = {
      eval::Degradation::kMissingValues, eval::Degradation::kMissingEdge,
      eval::Degradation::kMissingEntity, eval::Degradation::kMissingMetric,
      eval::Degradation::kNone};

  auto schemes = bench::make_schemes(13);
  struct Row {
    core::Diagnoser* scheme;
    std::vector<eval::Accuracy> acc;  // parallel to `degradations`
  };
  std::vector<Row> rows;
  for (auto* s : schemes.all())
    rows.push_back(Row{s, std::vector<eval::Accuracy>(5)});

  std::size_t i = 0;
  for (const auto& opts : sweep) {
    for (std::size_t d = 0; d < 5; ++d) {
      auto c = emulation::make_contention_case(opts);
      if (i == 0 && d == 0)
        bench::stamp_workload({"hotel-reservation",
                               c.entities.services.size(),
                               c.entities.nodes.size(), /*sweep seed=*/101,
                               "contention,missing-values,missing-edge,"
                               "missing-entity,missing-metric"});
      Rng rng(opts.seed ^ (0x9E37 * (d + 1)));
      eval::apply_degradation(c, degradations[d], rng);
      for (auto& row : rows) row.acc[d].add(eval::run_case(*row.scheme, c));
    }
    std::fprintf(stderr, "  scenario %zu/%zu done (all degradations)\n", ++i,
                 sweep.size());
  }

  eval::Table table({"scheme", "missing values", "missing edge",
                     "missing entity", "missing metric", "aggregate(1-4)",
                     "unchanged"});
  for (auto& row : rows) {
    double agg = 0.0;
    for (std::size_t d = 0; d < 4; ++d) agg += row.acc[d].top_k(5);
    table.add_row({std::string(row.scheme->name()),
                   format_double(row.acc[0].top_k(5), 2),
                   format_double(row.acc[1].top_k(5), 2),
                   format_double(row.acc[2].top_k(5), 2),
                   format_double(row.acc[3].top_k(5), 2),
                   format_double(agg / 4.0, 2),
                   format_double(row.acc[4].top_k(5), 2)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: murphy and sage fairly robust with murphy "
              "ahead; 'missing values' hurts sage more than murphy; "
              "netmedic/explainit far below both\n");
  murphy::bench::write_bench_json("table2_robustness");
  return 0;
}
