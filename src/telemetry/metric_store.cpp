#include "src/telemetry/metric_store.h"

#include <algorithm>
#include <cassert>

namespace murphy::telemetry {

TimeSeries::TimeSeries(std::vector<double> values)
    : values_(std::move(values)), valid_(values_.size(), true) {}

TimeSeries::TimeSeries(std::vector<double> values, std::vector<bool> valid)
    : values_(std::move(values)), valid_(std::move(valid)) {
  assert(values_.size() == valid_.size());
}

double TimeSeries::value_or(TimeIndex t, double fallback) const {
  if (t >= values_.size() || !valid_[t]) return fallback;
  return values_[t];
}

void TimeSeries::set(TimeIndex t, double v) {
  assert(t < values_.size());
  values_[t] = v;
  valid_[t] = true;
}

void TimeSeries::invalidate(TimeIndex t) {
  assert(t < values_.size());
  valid_[t] = false;
}

void TimeSeries::invalidate_before(TimeIndex t) {
  const TimeIndex end = std::min(t, values_.size());
  for (TimeIndex i = 0; i < end; ++i) valid_[i] = false;
}

std::vector<double> TimeSeries::window(TimeIndex from, TimeIndex to,
                                       double fallback) const {
  assert(from <= to && to <= values_.size());
  std::vector<double> out;
  out.reserve(to - from);
  for (TimeIndex t = from; t < to; ++t) out.push_back(value_or(t, fallback));
  return out;
}

void MetricStore::put(EntityId entity, MetricKindId kind,
                      std::vector<double> values) {
  put(entity, kind, TimeSeries(std::move(values)));
}

void MetricStore::put(EntityId entity, MetricKindId kind, TimeSeries series) {
  assert(series.size() == axis_.size());
  ++version_;
  const MetricRef ref{entity, kind};
  const bool fresh = series_.find(ref) == series_.end();
  series_.insert_or_assign(ref, std::move(series));
  if (fresh) kinds_[entity].push_back(kind);
}

const TimeSeries* MetricStore::find(EntityId entity, MetricKindId kind) const {
  const auto it = series_.find(MetricRef{entity, kind});
  return it == series_.end() ? nullptr : &it->second;
}

TimeSeries* MetricStore::find_mutable(EntityId entity, MetricKindId kind) {
  const auto it = series_.find(MetricRef{entity, kind});
  if (it == series_.end()) return nullptr;
  ++version_;  // the caller may write through the pointer
  return &it->second;
}

std::vector<MetricKindId> MetricStore::kinds_of(EntityId entity) const {
  const auto it = kinds_.find(entity);
  return it == kinds_.end() ? std::vector<MetricKindId>{} : it->second;
}

void MetricStore::erase(EntityId entity, MetricKindId kind) {
  ++version_;
  series_.erase(MetricRef{entity, kind});
  if (auto it = kinds_.find(entity); it != kinds_.end()) {
    auto& v = it->second;
    v.erase(std::remove(v.begin(), v.end(), kind), v.end());
  }
}

void MetricStore::erase_entity(EntityId entity) {
  ++version_;
  for (const MetricKindId kind : kinds_of(entity))
    series_.erase(MetricRef{entity, kind});
  kinds_.erase(entity);
}

}  // namespace murphy::telemetry
