// Sage-style baseline (Gan et al., ASPLOS '21, behaviour-faithful
// re-implementation — the authors' CVAE/GNN implementation is not part of
// this repository).
//
// The behaviours the paper's comparisons rely on are preserved:
//  * Sage REQUIRES a causal dependency DAG (the microservice call graph with
//    known directions). Given only loose undirected associations it cannot
//    build its model and produces nothing (§6.2: "incapable of working in
//    this environment").
//  * Its model covers only the symptom's own dependency subtree (the
//    user-facing service and everything it transitively depends on). Root
//    causes outside that subtree are structurally invisible (§6.1).
//  * Per-node generative models are learned from history; a counterfactual
//    replay sets a candidate's metrics to their historical normal and
//    re-predicts the subtree in dependency order, scoring the candidate by
//    how much of the symptom's deviation it explains.
//  * The per-node learner is a small neural network, which is noticeably
//    more data-hungry than ridge (this drives the Table 2 "missing values"
//    gap).
#pragma once

#include "src/core/diagnosis.h"
#include "src/obs/hooks.h"
#include "src/stats/predictor.h"

namespace murphy::baselines {

struct SageOptions {
  stats::ModelKind node_model = stats::ModelKind::kMlp;
  stats::PredictorOptions predictor;
  // A candidate qualifies when its counterfactual restores at least this
  // fraction of the symptom's deviation from normal.
  double restoration_threshold = 0.2;
  std::uint64_t seed = 7;
  // Optional observability hooks (span per diagnosis + candidate counters).
  obs::ObsHooks obs;
};

class Sage final : public core::Diagnoser {
 public:
  explicit Sage(SageOptions opts = {});

  [[nodiscard]] core::DiagnosisResult diagnose(
      const core::DiagnosisRequest& request) override;
  [[nodiscard]] std::string_view name() const override { return "sage"; }

  SageOptions& mutable_options() { return opts_; }

 private:
  SageOptions opts_;
};

}  // namespace murphy::baselines
