#include "src/stats/gmm.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "src/stats/summary.h"

namespace murphy::stats {
namespace {

constexpr double kMinVar = 1e-6;
constexpr double kLog2Pi = 1.8378770664093453;

double log_sum_exp(std::span<const double> xs) {
  const double m = *std::max_element(xs.begin(), xs.end());
  if (!std::isfinite(m)) return m;
  double s = 0.0;
  for (double x : xs) s += std::exp(x - m);
  return m + std::log(s);
}

}  // namespace

GmmRegressor::GmmRegressor(int components, std::uint64_t seed)
    : requested_components_(components), seed_(seed) {
  assert(components >= 1);
}

double GmmRegressor::log_density(const Component& c, std::span<const double> z,
                                 std::size_t dims) const {
  double lp = 0.0;
  for (std::size_t d = 0; d < dims; ++d) {
    const double var = std::max(c.var[d], kMinVar);
    const double diff = z[d] - c.mean[d];
    lp += -0.5 * (kLog2Pi + std::log(var) + diff * diff / var);
  }
  return lp;
}

void GmmRegressor::fit(const Matrix& x, const Vector& y) {
  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  assert(y.size() == n && n >= 1);
  dim_ = p + 1;

  // Standardize the joint space so EM isn't dominated by large-scale metrics.
  feat_mean_.assign(p, 0.0);
  feat_scale_.assign(p, 1.0);
  for (std::size_t j = 0; j < p; ++j) {
    OnlineStats s;
    for (std::size_t i = 0; i < n; ++i) s.add(x.at(i, j));
    feat_mean_[j] = s.mean();
    feat_scale_[j] = s.stddev() > 1e-12 ? s.stddev() : 1.0;
  }
  {
    OnlineStats s;
    for (double v : y) s.add(v);
    y_mean_ = s.mean();
    y_scale_ = s.stddev() > 1e-12 ? s.stddev() : 1.0;
  }

  Matrix z(n, dim_);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < p; ++j)
      z.at(i, j) = (x.at(i, j) - feat_mean_[j]) / feat_scale_[j];
    z.at(i, p) = (y[i] - y_mean_) / y_scale_;
  }

  const int k = std::min<int>(requested_components_,
                              static_cast<int>(std::max<std::size_t>(1, n / 8)));
  Rng rng(seed_);

  // Initialize means on random data points, unit variances, equal weights.
  comps_.assign(static_cast<std::size_t>(k), Component{});
  for (auto& c : comps_) {
    const std::size_t pick = static_cast<std::size_t>(rng.below(n));
    c.weight = 1.0 / k;
    c.mean.assign(z.row(pick), z.row(pick) + dim_);
    c.var.assign(dim_, 1.0);
  }

  std::vector<double> logp(comps_.size());
  Matrix resp(n, comps_.size());
  double prev_ll = -std::numeric_limits<double>::infinity();
  constexpr int kMaxIter = 60;
  for (int iter = 0; iter < kMaxIter; ++iter) {
    // E-step.
    double ll = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t c = 0; c < comps_.size(); ++c)
        logp[c] = std::log(std::max(comps_[c].weight, 1e-12)) +
                  log_density(comps_[c], {z.row(i), dim_}, dim_);
      const double lse = log_sum_exp(logp);
      ll += lse;
      for (std::size_t c = 0; c < comps_.size(); ++c)
        resp.at(i, c) = std::exp(logp[c] - lse);
    }
    // M-step.
    for (std::size_t c = 0; c < comps_.size(); ++c) {
      double nk = 0.0;
      for (std::size_t i = 0; i < n; ++i) nk += resp.at(i, c);
      nk = std::max(nk, 1e-9);
      comps_[c].weight = nk / static_cast<double>(n);
      for (std::size_t d = 0; d < dim_; ++d) {
        double m = 0.0;
        for (std::size_t i = 0; i < n; ++i) m += resp.at(i, c) * z.at(i, d);
        m /= nk;
        double v = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double diff = z.at(i, d) - m;
          v += resp.at(i, c) * diff * diff;
        }
        comps_[c].mean[d] = m;
        comps_[c].var[d] = std::max(v / nk, kMinVar);
      }
    }
    if (std::abs(ll - prev_ll) < 1e-6 * (1.0 + std::abs(ll))) break;
    prev_ll = ll;
  }

  // Residual sigma on training data (in original y units).
  OnlineStats resid;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> row(x.row(i), x.row(i) + p);
    fitted_ = true;  // predict() requires the flag
    resid.add(y[i] - predict(row));
  }
  sigma_ = resid.count() >= 2 ? resid.stddev() : 0.0;
  fitted_ = true;
}

double GmmRegressor::predict(std::span<const double> x) const {
  assert(fitted_);
  const std::size_t p = dim_ - 1;
  assert(x.size() == p);
  std::vector<double> zx(p);
  for (std::size_t j = 0; j < p; ++j)
    zx[j] = (x[j] - feat_mean_[j]) / feat_scale_[j];

  std::vector<double> logp(comps_.size());
  for (std::size_t c = 0; c < comps_.size(); ++c)
    logp[c] = std::log(std::max(comps_[c].weight, 1e-12)) +
              log_density(comps_[c], zx, p);
  const double lse = log_sum_exp(logp);
  // With diagonal covariance, the per-component conditional mean of y given x
  // is just the component's y-mean.
  double zy = 0.0;
  for (std::size_t c = 0; c < comps_.size(); ++c)
    zy += std::exp(logp[c] - lse) * comps_[c].mean[p];
  return y_mean_ + y_scale_ * zy;
}

}  // namespace murphy::stats
