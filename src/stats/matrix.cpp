#include "src/stats/matrix.h"

#include <cassert>
#include <cmath>

namespace murphy::stats {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Matrix::gram() const {
  Matrix g(cols_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* x = row(r);
    for (std::size_t i = 0; i < cols_; ++i) {
      const double xi = x[i];
      // Skipping zero rows short-circuits fully-downweighted (sqrt(w)=0)
      // rows and avoids perturbing signed zeros / non-finite columns.
      if (xi == 0.0) continue;
      axpy_kernel(cols_ - i, xi, x + i, g.row(i) + i);
    }
  }
  for (std::size_t i = 0; i < cols_; ++i)
    for (std::size_t j = 0; j < i; ++j) g.at(i, j) = g.at(j, i);
  return g;
}

Vector Matrix::transpose_times(const Vector& v) const {
  assert(v.size() == rows_);
  Vector out(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    axpy_kernel(cols_, v[r], row(r), out.data());
  }
  return out;
}

Vector Matrix::times(const Vector& v) const {
  assert(v.size() == cols_);
  Vector out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    out[r] = dot_kernel(row(r), v.data(), cols_);
  }
  return out;
}

bool cholesky(Matrix& a) {
  assert(a.rows() == a.cols());
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double d = a.at(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= a.at(j, k) * a.at(j, k);
    if (d <= 0.0 || !std::isfinite(d)) return false;
    const double ljj = std::sqrt(d);
    a.at(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a.at(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= a.at(i, k) * a.at(j, k);
      a.at(i, j) = s / ljj;
    }
    // Zero the strictly-upper triangle so the factor is clean.
    for (std::size_t c = j + 1; c < n; ++c) a.at(j, c) = 0.0;
  }
  return true;
}

Vector cholesky_solve(const Matrix& chol, const Vector& b) {
  const std::size_t n = chol.rows();
  assert(b.size() == n);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {  // forward: L y = b
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= chol.at(i, k) * y[k];
    y[i] = s / chol.at(i, i);
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {  // backward: L^T x = y
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= chol.at(k, ii) * x[k];
    x[ii] = s / chol.at(ii, ii);
  }
  return x;
}

std::optional<Vector> solve_spd(Matrix a, const Vector& b) {
  if (!cholesky(a)) return std::nullopt;
  return cholesky_solve(a, b);
}

double dot(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  return dot_kernel(a.data(), b.data(), a.size());
}

double dot_kernel(const double* a, const double* b, std::size_t n) {
  // Single accumulator fed in index order: the adds form the same dependency
  // chain as the naive loop, so the result is bit-identical; the unroll lets
  // the four multiplies issue in parallel ahead of the chain.
  double s = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double p0 = a[i] * b[i];
    const double p1 = a[i + 1] * b[i + 1];
    const double p2 = a[i + 2] * b[i + 2];
    const double p3 = a[i + 3] * b[i + 3];
    s += p0;
    s += p1;
    s += p2;
    s += p3;
  }
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

void axpy_kernel(std::size_t n, double a, const double* x, double* y) {
  // Each output slot accumulates independently; unrolling cannot reorder any
  // per-slot sequence.
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    y[i] += a * x[i];
    y[i + 1] += a * x[i + 1];
    y[i + 2] += a * x[i + 2];
    y[i + 3] += a * x[i + 3];
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

}  // namespace murphy::stats
