// Training-window column moment cache.
//
// Every correlation in Murphy's training hot path (feature scoring, the
// baselines' edge weighting) re-derives the same per-column statistics: the
// mean, the centered column, and its sum of squared deviations. WindowStats
// materializes them once per column per (window, data-version) generation,
// turning each pairwise pearson()/spearman()/abnormality_correlation() into
// a single cached-dot-product kernel (pearson_centered) instead of a
// three-pass rescan.
//
// Bit-identity contract: every cached quantity is computed with the exact
// accumulation order of the function it replaces —
//   mean     = stats::mean(values)            (index-order sum / n)
//   centered = values[i] - mean               (the dx of pearson())
//   sxx      = sum centered[i]^2, index order (pearson's sxx accumulator;
//              also variance()'s numerator, so sigma = sqrt(sxx / (n-1)))
// so kernels over cached columns reproduce the uncached results bitwise.
//
// Columns are keyed by an opaque 64-bit id chosen by the caller (the core
// layer packs (entity, kind); keys only need to be unique per variable).
// The cache is safe for concurrent get_or_build() calls: the map is guarded
// by a shared mutex and each column is built exactly once via a per-entry
// once_flag, so parallel batch diagnoses share one materialization.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

namespace murphy::stats {

// Fused moments of one training-window column.
struct ColumnMoments {
  std::vector<double> values;    // raw window values
  std::vector<double> centered;  // values[i] - mean
  double mean = 0.0;
  double sxx = 0.0;    // sum of squared deviations (pearson's accumulator)
  double sigma = 0.0;  // classic stddev, sqrt(sxx / (n-1)); 0 when n < 2

  // Lazy extras for the rank / abnormality kernels (built on demand, see
  // WindowStats::with_ranks / with_abnormality):
  // centered midranks + their mean and sum of squares — spearman(x, y) is
  // pearson(ranks(x), ranks(y)), so two rank columns make it one dot. The
  // means ride along because pearson_centered's scale-aware constancy test
  // needs them.
  std::vector<double> rank_centered;
  double rank_mean = 0.0;
  double rank_sxx = 0.0;
  // centered |z|-score column — abnormality_correlation(x, y) is
  // pearson(|z|(x), |z|(y)).
  std::vector<double> abn_centered;
  double abn_mean = 0.0;
  double abn_sxx = 0.0;
};

// Builds the eager (pearson) moments of one column. Non-finite values are a
// telemetry defect (DESIGN.md §8): they are replaced by 0.0 — the engine's
// missing-value fallback, matching TimeSeries::window() — before any moment
// is accumulated (counter `train.nonfinite_cells`), so one poisoned slice
// can no longer NaN a whole generation of cached moments. Finite columns
// are processed bit-identically to before.
[[nodiscard]] ColumnMoments build_column_moments(std::vector<double> values);

class WindowStats {
 public:
  using Loader = std::function<std::vector<double>()>;

  // Drops every cached column unless `fingerprint` matches the generation
  // the cache was built at. Callers derive the fingerprint from
  // (train_begin, train_end, MonitoringDb::data_version()); any window shift
  // or data mutation therefore starts a fresh generation.
  void reset(std::uint64_t fingerprint);
  [[nodiscard]] std::uint64_t fingerprint() const { return fingerprint_; }

  // Returns the moments for `key`, invoking `loader` to fetch the raw
  // column exactly once per generation (across all threads).
  const ColumnMoments& get_or_build(std::uint64_t key, const Loader& loader);

  // Same, but additionally guarantees the rank (spearman) or |z|-score
  // (abnormality) columns are populated.
  const ColumnMoments& with_ranks(std::uint64_t key, const Loader& loader);
  const ColumnMoments& with_abnormality(std::uint64_t key,
                                        const Loader& loader);

  // Lifetime hit/miss tallies (a miss builds the base column). Approximate
  // under concurrency only in the sense of being relaxed atomics; totals are
  // exact once the parallel region joins.
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;

  [[nodiscard]] std::size_t size() const;

  // Drops every entry (keeping the fingerprint) when the map holds more than
  // `max_entries`. Epoch-keyed callers (the diagnosis service) retire stale
  // entries by changing keys, so dead columns accumulate; this bounds them.
  // Dropping entries is always correct (just future misses), but the caller
  // must guarantee no ColumnMoments reference obtained from this cache is
  // still live — the service calls this only under its exclusive db lock,
  // when no diagnosis is in flight.
  void prune(std::size_t max_entries);

 private:
  struct Entry {
    std::once_flag base_once;
    std::once_flag rank_once;
    std::once_flag abn_once;
    ColumnMoments moments;
  };

  Entry& entry_for(std::uint64_t key);

  mutable std::shared_mutex mu_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Entry>> columns_;
  std::uint64_t fingerprint_ = 0;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace murphy::stats
