// Entity model of the monitoring substrate.
//
// Mirrors the entity/metric taxonomy of the enterprise observability platform
// described in §2.1 of the paper: VMs, hosts, containers, virtual and
// physical NICs, flows, switch interfaces, datastores — plus microservice
// entities (services, clients) for the DeathStarBench-style environments.
#pragma once

#include <string>
#include <string_view>

#include "src/common/ids.h"

namespace murphy::telemetry {

enum class EntityType {
  kVm,
  kHost,
  kContainer,
  kVirtualNic,
  kPhysicalNic,
  kFlow,
  kSwitch,
  kSwitchPort,
  kDatastore,
  kService,
  kClient,
  kNode,  // bare-metal / k8s worker node
};

[[nodiscard]] std::string_view entity_type_name(EntityType t);

// How two entities are associated in the monitoring metadata. These are the
// "loose neighborhood relationships" of §4.1 — they imply *potential*
// influence, not causal direction.
enum class RelationKind {
  kVmOnHost,          // VM <-> its physical host
  kVnicOfVm,          // virtual NIC <-> its VM
  kPnicOfHost,        // physical NIC <-> its host
  kFlowEndpoint,      // flow <-> source or destination VM/container
  kPortOfSwitch,      // switch interface <-> switch
  kHostUplink,        // host pNIC <-> ToR switch port
  kVmOnDatastore,     // VM <-> backing datastore
  kServiceOnContainer,  // microservice <-> container it runs in
  kContainerOnNode,   // container <-> node/host
  kCallerCallee,      // RPC caller -> callee (directed when known)
  kClientOfService,   // workload client <-> entry service
  kGeneric,
};

[[nodiscard]] std::string_view relation_kind_name(RelationKind k);

struct EntityInfo {
  EntityId id;
  EntityType type = EntityType::kVm;
  std::string name;
  AppId app;  // invalid when the entity belongs to no defined application
};

}  // namespace murphy::telemetry
