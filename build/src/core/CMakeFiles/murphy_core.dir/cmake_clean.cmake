file(REMOVE_RECURSE
  "CMakeFiles/murphy_core.dir/anomaly.cpp.o"
  "CMakeFiles/murphy_core.dir/anomaly.cpp.o.d"
  "CMakeFiles/murphy_core.dir/batch.cpp.o"
  "CMakeFiles/murphy_core.dir/batch.cpp.o.d"
  "CMakeFiles/murphy_core.dir/explain.cpp.o"
  "CMakeFiles/murphy_core.dir/explain.cpp.o.d"
  "CMakeFiles/murphy_core.dir/factor_model.cpp.o"
  "CMakeFiles/murphy_core.dir/factor_model.cpp.o.d"
  "CMakeFiles/murphy_core.dir/metric_space.cpp.o"
  "CMakeFiles/murphy_core.dir/metric_space.cpp.o.d"
  "CMakeFiles/murphy_core.dir/murphy.cpp.o"
  "CMakeFiles/murphy_core.dir/murphy.cpp.o.d"
  "CMakeFiles/murphy_core.dir/sampler.cpp.o"
  "CMakeFiles/murphy_core.dir/sampler.cpp.o.d"
  "CMakeFiles/murphy_core.dir/symptom_finder.cpp.o"
  "CMakeFiles/murphy_core.dir/symptom_finder.cpp.o.d"
  "CMakeFiles/murphy_core.dir/thresholds.cpp.o"
  "CMakeFiles/murphy_core.dir/thresholds.cpp.o.d"
  "libmurphy_core.a"
  "libmurphy_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/murphy_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
