// Fixed-width table rendering for the bench binaries, so every table/figure
// harness prints rows in the same shape the paper reports.
#pragma once

#include <string>
#include <vector>

namespace murphy::eval {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  // Renders with a header rule; column widths fit the longest cell.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace murphy::eval
