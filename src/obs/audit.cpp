#include "src/obs/audit.h"

#include "src/obs/json.h"

namespace murphy::obs {

namespace {

void append_kv(std::string& out, std::string_view key, std::string_view val) {
  json_append_escaped(out, key);
  out.push_back(':');
  json_append_escaped(out, val);
}

void append_kv(std::string& out, std::string_view key, double val) {
  json_append_escaped(out, key);
  out.push_back(':');
  out += json_number(val);
}

void append_kv(std::string& out, std::string_view key, std::uint64_t val) {
  json_append_escaped(out, key);
  out.push_back(':');
  out += json_number(val);
}

void append_kv(std::string& out, std::string_view key, bool val) {
  json_append_escaped(out, key);
  out.push_back(':');
  out += val ? "true" : "false";
}

double num_or(const JsonValue& obj, const char* key, double dflt) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->kind == JsonValue::Kind::kNumber ? v->number
                                                             : dflt;
}

std::string str_or(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->kind == JsonValue::Kind::kString ? v->string : "";
}

bool bool_or(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->kind == JsonValue::Kind::kBool && v->boolean;
}

}  // namespace

std::string to_jsonl(const DiagnosisAudit& audit) {
  std::string out;
  out += "{\"type\":\"diagnosis\",";
  append_kv(out, "scheme", audit.scheme);
  out.push_back(',');
  append_kv(out, "symptom_entity", audit.symptom_entity);
  out.push_back(',');
  append_kv(out, "symptom_metric", audit.symptom_metric);
  out.push_back(',');
  append_kv(out, "now", audit.now);
  out.push_back(',');
  append_kv(out, "graph_nodes", audit.graph_nodes);
  out.push_back(',');
  append_kv(out, "variables", audit.variables);
  out.push_back(',');
  append_kv(out, "incident_id", audit.incident_id);
  out.push_back(',');
  append_kv(out, "candidates", static_cast<std::uint64_t>(audit.candidates.size()));
  out += "}\n";

  for (const CandidateAudit& c : audit.candidates) {
    out += "{\"type\":\"candidate\",";
    append_kv(out, "entity", static_cast<std::uint64_t>(c.entity.value()));
    out.push_back(',');
    append_kv(out, "entity_name", c.entity_name);
    out.push_back(',');
    append_kv(out, "driver_metric", c.driver_metric);
    out.push_back(',');
    append_kv(out, "anomaly_z", c.anomaly_z);
    out.push_back(',');
    append_kv(out, "rank_score", c.rank_score);
    out.push_back(',');
    append_kv(out, "self_symptom", c.self_symptom);
    out.push_back(',');
    append_kv(out, "evaluated", c.evaluated);
    out.push_back(',');
    append_kv(out, "fast_path", c.fast_path);
    out.push_back(',');
    append_kv(out, "accepted", c.accepted);
    out.push_back(',');
    append_kv(out, "p_value", c.p_value);
    out.push_back(',');
    append_kv(out, "mean_factual", c.mean_factual);
    out.push_back(',');
    append_kv(out, "mean_counterfactual", c.mean_counterfactual);
    out.push_back(',');
    append_kv(out, "counterfactual_delta", c.counterfactual_delta);
    out.push_back(',');
    append_kv(out, "path_len", c.path_len);
    out.push_back(',');
    append_kv(out, "rank", c.rank);
    out.push_back(',');
    json_append_escaped(out, "path");
    out += ":[";
    for (std::size_t i = 0; i < c.path.size(); ++i) {
      if (i > 0) out.push_back(',');
      json_append_escaped(out, c.path[i]);
    }
    out += "]}\n";
  }
  return out;
}

bool parse_jsonl(std::string_view text, DiagnosisAudit& out,
                 std::string* error) {
  out = DiagnosisAudit{};
  bool seen_header = false;
  std::size_t pos = 0;
  std::size_t line_no = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;

    JsonValue v;
    std::string perr;
    if (!json_parse(line, v, &perr) || !v.is_object()) {
      if (error != nullptr)
        *error = "line " + std::to_string(line_no) + ": " + perr;
      return false;
    }
    const std::string type = str_or(v, "type");
    if (type == "diagnosis") {
      if (seen_header) {
        if (error != nullptr) *error = "duplicate diagnosis header";
        return false;
      }
      seen_header = true;
      out.scheme = str_or(v, "scheme");
      out.symptom_entity = str_or(v, "symptom_entity");
      out.symptom_metric = str_or(v, "symptom_metric");
      out.now = static_cast<std::uint64_t>(num_or(v, "now", 0));
      out.graph_nodes = static_cast<std::uint64_t>(num_or(v, "graph_nodes", 0));
      out.variables = static_cast<std::uint64_t>(num_or(v, "variables", 0));
      out.incident_id = static_cast<std::uint64_t>(num_or(v, "incident_id", 0));
    } else if (type == "candidate") {
      CandidateAudit c;
      c.entity = EntityId(static_cast<std::uint32_t>(num_or(v, "entity", 0)));
      c.entity_name = str_or(v, "entity_name");
      c.driver_metric = str_or(v, "driver_metric");
      c.anomaly_z = num_or(v, "anomaly_z", 0.0);
      c.rank_score = num_or(v, "rank_score", 0.0);
      c.self_symptom = bool_or(v, "self_symptom");
      c.evaluated = bool_or(v, "evaluated");
      c.fast_path = bool_or(v, "fast_path");
      c.accepted = bool_or(v, "accepted");
      c.p_value = num_or(v, "p_value", 1.0);
      c.mean_factual = num_or(v, "mean_factual", 0.0);
      c.mean_counterfactual = num_or(v, "mean_counterfactual", 0.0);
      c.counterfactual_delta = num_or(v, "counterfactual_delta", 0.0);
      c.path_len = static_cast<std::uint64_t>(num_or(v, "path_len", 0));
      c.rank = static_cast<std::uint64_t>(num_or(v, "rank", 0));
      if (const JsonValue* p = v.find("path"); p != nullptr && p->is_array())
        for (const JsonValue& e : p->array)
          if (e.kind == JsonValue::Kind::kString) c.path.push_back(e.string);
      out.candidates.push_back(std::move(c));
    } else {
      if (error != nullptr)
        *error = "line " + std::to_string(line_no) + ": unknown type";
      return false;
    }
  }
  if (!seen_header) {
    if (error != nullptr) *error = "missing diagnosis header";
    return false;
  }
  return true;
}

std::string to_json(const IncidentEvent& e) {
  std::string out;
  out += "{\"type\":\"incident\",";
  append_kv(out, "incident_id", e.incident_id);
  out.push_back(',');
  append_kv(out, "event", e.event);
  out.push_back(',');
  append_kv(out, "slice", e.slice);
  out.push_back(',');
  append_kv(out, "entity", e.entity);
  out.push_back(',');
  append_kv(out, "metric", e.metric);
  out.push_back(',');
  append_kv(out, "severity", e.severity);
  out.push_back(',');
  json_append_escaped(out, "priority");
  out.push_back(':');
  out += json_number(e.priority);
  out.push_back(',');
  append_kv(out, "refires", e.refires);
  out.push_back(',');
  append_kv(out, "state", e.state);
  out.push_back(',');
  json_append_escaped(out, "causes");
  out += ":[";
  for (std::size_t i = 0; i < e.causes.size(); ++i) {
    if (i > 0) out.push_back(',');
    json_append_escaped(out, e.causes[i]);
  }
  out += "]}";
  return out;
}

std::string to_jsonl(std::span<const IncidentEvent> events) {
  std::string out;
  for (const IncidentEvent& e : events) {
    out += to_json(e);
    out.push_back('\n');
  }
  return out;
}

bool parse_incident_jsonl(std::string_view text, std::vector<IncidentEvent>& out,
                          std::string* error) {
  std::size_t pos = 0;
  std::size_t line_no = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;

    JsonValue v;
    std::string perr;
    if (!json_parse(line, v, &perr) || !v.is_object()) {
      if (error != nullptr)
        *error = "line " + std::to_string(line_no) + ": " + perr;
      return false;
    }
    if (str_or(v, "type") != "incident") {
      if (error != nullptr)
        *error = "line " + std::to_string(line_no) + ": unknown type";
      return false;
    }
    IncidentEvent e;
    e.incident_id = static_cast<std::uint64_t>(num_or(v, "incident_id", 0));
    e.event = str_or(v, "event");
    e.slice = static_cast<std::uint64_t>(num_or(v, "slice", 0));
    e.entity = str_or(v, "entity");
    e.metric = str_or(v, "metric");
    e.severity = num_or(v, "severity", 0.0);
    e.priority = static_cast<std::int64_t>(num_or(v, "priority", 0));
    e.refires = static_cast<std::uint64_t>(num_or(v, "refires", 0));
    e.state = str_or(v, "state");
    if (const JsonValue* p = v.find("causes"); p != nullptr && p->is_array())
      for (const JsonValue& c : p->array)
        if (c.kind == JsonValue::Kind::kString) e.causes.push_back(c.string);
    out.push_back(std::move(e));
  }
  return true;
}

}  // namespace murphy::obs
