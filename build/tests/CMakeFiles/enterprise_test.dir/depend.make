# Empty dependencies file for enterprise_test.
# This may be replaced when dependencies are built.
