// MurphyDiagnoser — the end-to-end system of §4.
//
// diagnose() performs, in order:
//   1. relationship-graph construction from the symptom entity (§4.1);
//   2. online training of the MRF's per-entity conditionals on the request's
//      history window (§4.2 "Model training");
//   3. candidate pruning by threshold-guided BFS from the symptom;
//   4. counterfactual Gibbs-variant evaluation of every candidate (§4.2
//      "Inference algorithm") with a Welch t-test verdict;
//   5. ranking of accepted candidates by anomaly score;
//   6. explanation-chain generation via the label state machine (§4.3).
#pragma once

#include <functional>
#include <memory>

#include "src/core/anomaly.h"
#include "src/core/diagnosis.h"
#include "src/core/sampler.h"
#include "src/obs/hooks.h"

namespace murphy::core {

struct MurphyOptions {
  FactorTrainingOptions training;
  SamplerOptions sampler;
  CandidateSearchOptions search;
  Thresholds thresholds;
  // Maximum nodes in the relationship graph (§4.1's safety valve).
  std::size_t max_graph_nodes = 100000;
  std::uint64_t seed = 1;
  // Opt-in vectorized counterfactual inference (DESIGN.md §11): batches each
  // candidate's independent Gibbs chains into SIMD-width lanes over an SoA
  // state fed by the batched ziggurat generator. Off by default — the scalar
  // path remains the bitwise-determinism golden; the fast mode's contract is
  // statistical equivalence (same verdicts/rankings, t-test-indistinguishable
  // scores), validated by bench_fast_equivalence. Still deterministic for a
  // fixed (seed, options) at any thread count. Mirrored into
  // SamplerOptions::fast_inference at diagnose time.
  bool fast_inference = false;
  // Threads for the parallel phases (factor training, per-candidate
  // counterfactual evaluation, per-symptom batch diagnosis). 0 = one per
  // hardware core, 1 = the legacy serial path. The diagnosis output is
  // bitwise identical at every setting: each parallel work item draws from
  // its own RNG stream derived via mix_seed, never from a shared sequential
  // one. See DESIGN.md "Execution model".
  std::size_t num_threads = 0;
  // Observability sinks (DESIGN.md "Observability"): an optional span tracer
  // (flame-chart spans for every phase, per-factor fit and per-candidate
  // evaluation), an optional metrics registry (engine counters/histograms),
  // and the audit-trail switch that fills DiagnosisResult::audit. All null/
  // off by default — the null configuration adds only a handful of clock
  // reads per diagnosis.
  obs::ObsHooks obs;
  // Cooperative cancellation (the service's deadline enforcement, DESIGN.md
  // §9). When set, diagnose() polls it between phases; once it returns true
  // the remaining phases are abandoned and the result comes back with
  // `cancelled` set and no causes. Polling happens ONLY at phase boundaries,
  // so a completed diagnosis is bit-identical whether or not a hook was
  // attached — cancellation can stop work, never alter it.
  std::function<bool()> cancel;
};

// Start of the "recent" configuration-change window reported alongside a
// diagnosis: the last ~10% of the training range (at least one slice),
// ending at `now`, clamped at zero. Exposed for unit testing the underflow
// edge (now earlier than one window length).
[[nodiscard]] TimeIndex recent_config_window_begin(TimeIndex train_begin,
                                                   TimeIndex train_end,
                                                   TimeIndex now);

class MurphyDiagnoser final : public Diagnoser {
 public:
  explicit MurphyDiagnoser(MurphyOptions opts = {});

  [[nodiscard]] DiagnosisResult diagnose(
      const DiagnosisRequest& request) override;
  [[nodiscard]] std::string_view name() const override { return "murphy"; }

  [[nodiscard]] const MurphyOptions& options() const { return opts_; }
  MurphyOptions& mutable_options() { return opts_; }

 private:
  MurphyOptions opts_;
};

}  // namespace murphy::core
