#include "src/stats/svr.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "src/stats/summary.h"

namespace murphy::stats {

LinearSvr::LinearSvr(double l2, double epsilon, int epochs, std::uint64_t seed,
                     int rff_features)
    : l2_(l2),
      epsilon_(epsilon),
      epochs_(epochs),
      seed_(seed),
      rff_features_(rff_features) {
  assert(l2 > 0.0 && epsilon >= 0.0 && epochs >= 1 && rff_features >= 0);
}

Vector LinearSvr::transform(std::span<const double> x) const {
  const std::size_t p = feat_mean_.size();
  assert(x.size() == p);
  Vector zx(p);
  for (std::size_t j = 0; j < p; ++j)
    zx[j] = (x[j] - feat_mean_[j]) / feat_scale_[j];
  if (rff_features_ == 0) return zx;

  // z(x) = sqrt(2/D) * cos(omega . x + b): inner products approximate the
  // RBF kernel exp(-||x-x'||^2 / 2).
  const auto d = static_cast<std::size_t>(rff_features_);
  Vector out(d);
  const double scale = std::sqrt(2.0 / static_cast<double>(d));
  for (std::size_t k = 0; k < d; ++k) {
    double acc = rff_phase_[k];
    const double* omega = &rff_omega_[k * p];
    for (std::size_t j = 0; j < p; ++j) acc += omega[j] * zx[j];
    out[k] = scale * std::cos(acc);
  }
  return out;
}

void LinearSvr::fit(const Matrix& x, const Vector& y) {
  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  assert(y.size() == n && n >= 1);

  feat_mean_.assign(p, 0.0);
  feat_scale_.assign(p, 1.0);
  for (std::size_t j = 0; j < p; ++j) {
    OnlineStats s;
    for (std::size_t i = 0; i < n; ++i) s.add(x.at(i, j));
    feat_mean_[j] = s.mean();
    feat_scale_[j] = s.stddev() > 1e-12 ? s.stddev() : 1.0;
  }
  {
    OnlineStats s;
    for (double v : y) s.add(v);
    y_mean_ = s.mean();
    y_scale_ = s.stddev() > 1e-12 ? s.stddev() : 1.0;
  }

  Rng rng(seed_);
  if (rff_features_ > 0) {
    const auto d = static_cast<std::size_t>(rff_features_);
    rff_omega_.resize(d * p);
    rff_phase_.resize(d);
    // Bandwidth 1 in standardized space (gamma = 0.5).
    for (auto& w : rff_omega_) w = rng.normal();
    for (auto& b : rff_phase_) b = rng.uniform(0.0, 6.283185307179586);
  }

  // Pre-transform all rows once.
  std::vector<Vector> feats(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> row(x.row(i), x.row(i) + p);
    feats[i] = transform(row);
  }
  const std::size_t dim = feats.empty() ? 0 : feats[0].size();
  Vector ys(n);
  for (std::size_t i = 0; i < n; ++i) ys[i] = (y[i] - y_mean_) / y_scale_;

  w_.assign(dim, 0.0);
  bias_ = 0.0;
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});

  const double lambda = l2_ / static_cast<double>(n);
  std::size_t t = 0;
  for (int epoch = 0; epoch < epochs_; ++epoch) {
    for (std::size_t i = n; i-- > 1;)
      std::swap(order[i], order[rng.below(i + 1)]);
    for (std::size_t idx : order) {
      ++t;
      const double eta = 1.0 / (lambda * static_cast<double>(t) + 100.0);
      const Vector& xi = feats[idx];
      double pred = bias_;
      for (std::size_t j = 0; j < dim; ++j) pred += w_[j] * xi[j];
      const double err = pred - ys[idx];
      // Subgradient of the epsilon-insensitive loss.
      double g = 0.0;
      if (err > epsilon_) g = 1.0;
      else if (err < -epsilon_) g = -1.0;
      for (std::size_t j = 0; j < dim; ++j)
        w_[j] -= eta * (lambda * w_[j] + g * xi[j]);
      bias_ -= eta * g;
    }
  }

  OnlineStats resid;
  fitted_ = true;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> row(x.row(i), x.row(i) + p);
    resid.add(y[i] - predict(row));
  }
  sigma_ = resid.count() >= 2 ? resid.stddev() : 0.0;
}

double LinearSvr::predict(std::span<const double> x) const {
  assert(fitted_);
  const Vector f = transform(x);
  double pred = bias_;
  for (std::size_t j = 0; j < f.size(); ++j) pred += w_[j] * f[j];
  return y_mean_ + y_scale_ * pred;
}

}  // namespace murphy::stats
