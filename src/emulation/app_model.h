// Static description of a microservice application deployment.
//
// Mirrors the structure of the paper's DeathStarBench testbeds (§5.1.2):
// services with RPC call trees, each service running in a container, the
// containers placed on cluster nodes, and open-loop clients driving named
// API endpoints. The simulator consumes this description; the scenario
// builders construct the hotel-reservation and social-network instances.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace murphy::emulation {

// Indices into AppModel's vectors; local to one AppModel.
using ServiceIdx = std::size_t;
using ContainerIdx = std::size_t;
using NodeIdx = std::size_t;
using ClientIdx = std::size_t;

struct ServiceSpec {
  std::string name;
  // Service time per request at an idle server, in milliseconds.
  double base_latency_ms = 2.0;
  // CPU-seconds consumed per request (drives container utilization).
  double cpu_cost_per_req = 0.004;
  // Memory footprint: baseline fraction plus per-req/s increment.
  double mem_base = 0.20;
  double mem_per_rps = 0.0005;
  ContainerIdx container = 0;
};

// A directed RPC edge: each request arriving at `caller` issues
// `calls_per_request` requests to `callee` (fan-out may be fractional to
// model caching / conditional calls).
struct CallEdge {
  ServiceIdx caller;
  ServiceIdx callee;
  double calls_per_request = 1.0;
};

struct ContainerSpec {
  std::string name;
  NodeIdx node = 0;
  // CPU cores available to the container (its cgroup limit).
  double cpu_limit_cores = 2.0;
};

struct NodeSpec {
  std::string name;
  double cpu_cores = 4.0;
};

// An open-loop client (wrk2-style) driving one entry service.
struct ClientSpec {
  std::string name;
  ServiceIdx entry_service = 0;
  // Offered requests/second per time slice; sized to the scenario length by
  // the workload generator.
  std::vector<double> rps_schedule;
};

struct AppModel {
  std::string name;
  std::vector<ServiceSpec> services;
  std::vector<CallEdge> call_edges;
  std::vector<ContainerSpec> containers;
  std::vector<NodeSpec> nodes;
  std::vector<ClientSpec> clients;

  [[nodiscard]] ServiceIdx find_service(const std::string& name) const;
  // Total downstream request multiplier: how many requests one request to
  // `entry` induces on every service (entry included, = 1 plus indirect
  // fan-in). Follows call edges transitively.
  [[nodiscard]] std::vector<double> demand_vector(ServiceIdx entry) const;
  // Services reachable from `entry` through call edges (entry included).
  [[nodiscard]] std::vector<ServiceIdx> call_tree(ServiceIdx entry) const;
};

// The two DeathStarBench-like applications of §5.1.2.
//
// Hotel-reservation: 8 services on a 7-node cluster; 16 relationship-graph
// entities (8 services + 8 containers).
[[nodiscard]] AppModel make_hotel_reservation();
// Social-network: 24 services on a single Docker node; 57 entities
// (24 services + 32 containers + 1 node).
[[nodiscard]] AppModel make_social_network();

}  // namespace murphy::emulation
