// Correlation measures used for feature selection (Murphy's top-B neighbor
// metric choice), ExplainIt's ranking, and NetMedic's edge weights.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace murphy::stats {

// Pearson correlation coefficient in [-1, 1]; 0 when either side is constant.
[[nodiscard]] double pearson(std::span<const double> x,
                             std::span<const double> y);

// Pearson from precomputed centered columns (cx[i] = x[i] - mean(x)) and
// their sums of squared deviations. Bit-identical to pearson() on the raw
// columns; lets a window cache (stats::ColumnMoments) turn each pairwise
// correlation into a single dot product instead of a mean/variance rescan.
[[nodiscard]] double pearson_centered(std::span<const double> cx, double sxx,
                                      std::span<const double> cy, double syy);

// Midranks (average rank for ties) of x, as used by spearman(). Exposed so
// the window cache can precompute rank columns once per variable.
[[nodiscard]] std::vector<double> midranks(std::span<const double> x);

// Spearman rank correlation; robust to monotone nonlinearity.
[[nodiscard]] double spearman(std::span<const double> x,
                              std::span<const double> y);

// NetMedic-style abnormality correlation: correlation of |z-scores| of the
// two series relative to their own historical mean/stddev. Two metrics that
// become abnormal together score high even if their raw values anti-move.
[[nodiscard]] double abnormality_correlation(std::span<const double> x,
                                             std::span<const double> y);

// Cross-correlation at the given lag (y shifted `lag` slices later than x).
[[nodiscard]] double lagged_pearson(std::span<const double> x,
                                    std::span<const double> y, std::size_t lag);

}  // namespace murphy::stats
