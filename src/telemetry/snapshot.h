// Binary snapshot of a MonitoringDb — save/restore for the long-running
// diagnosis service (DESIGN.md §9).
//
// A restarted murphyd must resume warm instead of replaying its whole
// telemetry feed, so the full diagnosis substrate — axis, catalog, entities
// (including absent slots, so EntityIds stay stable), the relationship
// associations, apps, every metric series with its validity mask and write
// epoch, and the config-event log — round-trips through a single binary
// blob. Version counters ride along, so cache fingerprints and reported db
// epochs stay continuous across the restart.
//
// Format: a fixed header (magic, format version, payload size, FNV-1a 64
// checksum of the payload) followed by the payload. The loader validates
// all four header fields and bounds-checks every read, so a truncated or
// bit-flipped snapshot is rejected with a diagnostic — never a crash or a
// silently wrong database. Doubles are serialized by bit pattern: a restored
// db is bitwise identical to the saved one, and diagnoses over it reproduce
// the original rankings exactly.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "src/telemetry/monitoring_db.h"

namespace murphy::telemetry {

// Snapshot format version written by save_snapshot. Bumped on any payload
// layout change; the loader rejects versions it does not understand.
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

struct SnapshotError {
  std::string message;
};

// Serializes `db` to `out`. Returns false (stream state) on write failure.
bool save_snapshot(const MonitoringDb& db, std::ostream& out);

// Rebuilds a db from `in`. Returns nullopt and fills `error` when the
// header, checksum or payload is malformed.
[[nodiscard]] std::optional<MonitoringDb> load_snapshot(
    std::istream& in, SnapshotError* error = nullptr);

// File-based conveniences.
bool save_snapshot_file(const MonitoringDb& db, const std::string& path);
[[nodiscard]] std::optional<MonitoringDb> load_snapshot_file(
    const std::string& path, SnapshotError* error = nullptr);

}  // namespace murphy::telemetry
