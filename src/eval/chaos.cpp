#include "src/eval/chaos.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "src/common/rng.h"

namespace murphy::eval {
namespace {

bool is_protected(std::span<const MetricRef> protect, EntityId entity,
                  MetricKindId kind) {
  return std::any_of(protect.begin(), protect.end(), [&](const MetricRef& m) {
    return m.entity == entity && m.kind == kind;
  });
}

bool entity_protected(std::span<const MetricRef> protect, EntityId entity) {
  return std::any_of(protect.begin(), protect.end(),
                     [&](const MetricRef& m) { return m.entity == entity; });
}

// Applies the per-series value faults; returns through `report`. The series
// is addressed through find_mutable so raw payloads (including non-finite
// ones) land in storage exactly as a buggy collector would leave them.
void corrupt_series(telemetry::MonitoringDb& db, EntityId entity,
                    MetricKindId kind, const ChaosOptions& opts, Rng& rng,
                    ChaosReport& report) {
  telemetry::TimeSeries* ts = db.metrics().find_mutable(entity, kind);
  if (ts == nullptr || ts->size() == 0) return;
  const std::size_t n = ts->size();

  if (rng.chance(opts.p_nan_slice)) {
    ts->set(rng.below(n), std::numeric_limits<double>::quiet_NaN());
    ++report.nan_slices;
  }
  if (rng.chance(opts.p_inf_slice)) {
    const double inf = std::numeric_limits<double>::infinity();
    ts->set(rng.below(n), rng.chance(0.5) ? inf : -inf);
    ++report.inf_slices;
  }
  if (rng.chance(opts.p_denormal_slice)) {
    ts->set(rng.below(n), std::numeric_limits<double>::denorm_min());
    ++report.denormal_slices;
  }
  if (rng.chance(opts.p_constant_column)) {
    const double c = rng.uniform(0.0, 10.0);
    for (std::size_t t = 0; t < n; ++t) ts->set(t, c);
    ++report.constant_columns;
  }
  if (rng.chance(opts.p_near_constant_column)) {
    // A constant plus jitter on the order of one ulp: the regime the old
    // absolute variance epsilon misread as informative at large scales.
    const double c = rng.uniform(1.0, 2.0) * 1e9;
    for (std::size_t t = 0; t < n; ++t) {
      const double jitter =
          static_cast<double>(rng.below(3)) - 1.0;  // -1, 0, or +1
      ts->set(t, c * (1.0 + jitter * 2.220446049250313e-16));
    }
    ++report.near_constant_columns;
  }
  if (rng.chance(opts.p_huge_scale_column)) {
    for (std::size_t t = 0; t < n; ++t) ts->set(t, ts->value(t) * 1e9);
    ++report.huge_scale_columns;
  }
  if (rng.chance(opts.p_drop_history)) {
    ts->invalidate_before(rng.below(n));
    ++report.dropped_histories;
  }
  if (rng.chance(opts.p_duplicate_run)) {
    // What a run of duplicated timestamps collapses to after last-write-wins:
    // one value smeared across consecutive slices.
    const std::size_t start = rng.below(n);
    const std::size_t len = 1 + rng.below(4);
    const double v = ts->value(start);
    for (std::size_t t = start; t < std::min(n, start + len); ++t)
      ts->set(t, v);
    ++report.duplicate_runs;
  }
  if (rng.chance(opts.p_swap_slices)) {
    const std::size_t i = rng.below(n);
    const std::size_t j = rng.below(n);
    const double vi = ts->value(i);
    ts->set(i, ts->value(j));
    ts->set(j, vi);
    ++report.swapped_slices;
  }

  if (opts.reingest) {
    // Round-trip the corrupted payload through ingest: put() re-sanitizes,
    // so the non-finite slices above arrive as missing instead of stored.
    db.metrics().put(entity, kind, telemetry::TimeSeries(*ts));
  }
}

}  // namespace

ChaosReport apply_chaos(telemetry::MonitoringDb& db, const ChaosOptions& opts,
                        std::span<const MetricRef> protect) {
  ChaosReport report;

  // Value faults, in (entity id, kind insertion) order with one RNG stream
  // per series: the corruption a series receives depends only on
  // (seed, entity, kind), never on map iteration order.
  const std::vector<EntityId> entities = db.all_entities();
  for (const EntityId e : entities) {
    for (const MetricKindId k : db.metrics().kinds_of(e)) {
      if (is_protected(protect, e, k)) continue;
      const std::uint64_t key =
          (static_cast<std::uint64_t>(e.value()) << 32) | k.value();
      Rng rng(mix_seed(opts.seed, key));
      corrupt_series(db, e, k, opts, rng, report);
    }
  }

  // Structural faults draw from a dedicated stream so changing the value
  // fault mix doesn't reshuffle them.
  Rng srng(mix_seed(opts.seed, 0xC4A05u));

  if (!entities.empty()) {
    for (std::size_t i = 0; i < opts.self_loops; ++i) {
      const EntityId e = entities[srng.below(entities.size())];
      db.add_association(e, e, telemetry::RelationKind::kGeneric);
      ++report.self_loops_offered;
    }
    for (std::size_t i = 0; i < opts.orphan_edges; ++i) {
      const EntityId e = entities[srng.below(entities.size())];
      // An id beyond every slot ever allocated: never present.
      const EntityId ghost(
          static_cast<std::uint32_t>(db.entity_count() + 1000 + i));
      if (srng.chance(0.5)) {
        db.add_association(e, ghost, telemetry::RelationKind::kGeneric);
      } else {
        db.add_association(ghost, e, telemetry::RelationKind::kGeneric);
      }
      ++report.orphan_edges_offered;
    }
  }

  // Entities with zero metrics: strip every series from a few victims
  // (protected entities are exempt so the ticket stays diagnosable).
  std::vector<EntityId> victims;
  for (const EntityId e : entities) {
    if (entity_protected(protect, e)) continue;
    if (!db.metrics().kinds_of(e).empty()) victims.push_back(e);
  }
  for (std::size_t i = 0; i < opts.strip_entities && !victims.empty(); ++i) {
    const std::size_t pick = srng.below(victims.size());
    db.metrics().erase_entity(victims[pick]);
    victims.erase(victims.begin() + static_cast<std::ptrdiff_t>(pick));
    ++report.stripped_entities;
  }

  return report;
}

}  // namespace murphy::eval
