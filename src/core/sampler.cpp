#include "src/core/sampler.h"

#include <algorithm>
#include <cassert>

#include "src/stats/ttest.h"
#include "src/stats/summary.h"

namespace murphy::core {

CounterfactualSampler::CounterfactualSampler(
    const graph::RelationshipGraph& graph, const MetricSpace& space,
    const FactorSet& factors, SamplerOptions opts)
    : graph_(graph),
      space_(space),
      factors_(factors),
      opts_(opts),
      rng_(opts.seed) {}

void CounterfactualSampler::prepare(graph::NodeIndex dst) {
  dist_to_ = graph_.distances_to(dst);
  prepared_dst_ = dst;
}

double CounterfactualSampler::resample_path(
    std::span<const graph::NodeIndex> path, VarIndex d_var,
    std::vector<double>& state, Rng& rng, std::size_t gibbs_rounds) const {
  for (std::size_t round = 0; round < gibbs_rounds; ++round) {
    for (std::size_t i = 1; i < path.size(); ++i)  // skip pinned candidate
      factors_.resample_node(path[i], space_, state, rng);
  }
  return state[d_var];
}

CounterfactualVerdict CounterfactualSampler::evaluate(
    graph::NodeIndex a, VarIndex a_var, graph::NodeIndex d, VarIndex d_var,
    std::span<const double> state, bool symptom_high) {
  return evaluate(a, a_var, d, d_var, state, symptom_high, rng_);
}

CounterfactualVerdict CounterfactualSampler::evaluate(
    graph::NodeIndex a, VarIndex a_var, graph::NodeIndex d, VarIndex d_var,
    std::span<const double> state, bool symptom_high, Rng& rng) const {
  CounterfactualVerdict verdict;
  if (a == d) return verdict;

  // One backward BFS per diagnosis (prepare), one bounded forward BFS per
  // candidate; same path vector as the self-contained overload.
  const auto path =
      d == prepared_dst_
          ? graph_.shortest_path_subgraph(a, d, opts_.path_slack, dist_to_)
          : graph_.shortest_path_subgraph(a, d, opts_.path_slack);
  if (path.empty()) return verdict;  // A cannot influence D
  verdict.path_len = path.size();
  verdict.node_resamples =
      2 * opts_.num_samples * opts_.gibbs_rounds * (path.size() - 1);

  const MetricConditional& a_cond = factors_.conditional(a_var);
  const double a_now = state[a_var];
  // Counterfactual: push A's driver metric 2 sigma toward its historical
  // normal (lower when it's abnormally high, higher when abnormally low).
  // Direction comes from the robust center; the magnitude uses the classic
  // stddev of the window, which (incident included) reflects the scale of
  // recent excursions (§4.2 step 1).
  const double sigma = std::max(a_cond.hist_sigma(), 1e-6);
  const double direction = a_now >= a_cond.robust_center() ? -1.0 : 1.0;
  const double a_cf =
      a_now + direction * opts_.counterfactual_sigmas * sigma;

  // The inner loop below is the engine's hottest code (hundreds of millions
  // of variable draws per batch run). It is equivalent draw-for-draw to
  // resample_path() over a fresh copy of `state` per sample, but
  //  - the resampling order is flattened once into `order` (vars of
  //    path[1..], the candidate's own vars stay pinned),
  //  - conditionals are drawn through FactorSet::kernel_sample over the
  //    shared standardized z-state (see SampleKernel),
  //  - instead of re-copying the full state per sample, only the variables
  //    this path actually writes (`order` + a_var) are restored,
  // none of which changes a single draw or FP operation.
  thread_local std::vector<VarIndex> order;
  order.clear();
  for (std::size_t i = 1; i < path.size(); ++i)
    for (const VarIndex v : space_.vars_of(path[i])) order.push_back(v);

  const SampleKernel& kernel = factors_.kernel();
  std::size_t cells_per_round = 0;
  for (const VarIndex v : order) cells_per_round += kernel.vars[v].count;
  verdict.kernel_cells =
      2 * opts_.num_samples * opts_.gibbs_rounds * cells_per_round;

  const std::size_t n_vars = state.size();
  thread_local std::vector<double> work, cent, cent0, d1, d2;
  work.assign(state.begin(), state.end());
  cent.resize(n_vars);
  for (VarIndex v = 0; v < n_vars; ++v)
    cent[v] = factors_.center(v, state[v]);
  cent0.assign(cent.begin(), cent.end());
  const double a_cf_c = factors_.center(a_var, a_cf);

  d1.clear();
  d2.clear();
  d1.reserve(opts_.num_samples);
  d2.reserve(opts_.num_samples);

  const std::size_t rounds = opts_.gibbs_rounds;
  auto run_side = [&](double a_start, double a_start_c,
                      std::vector<double>& out) {
    work[a_var] = a_start;
    cent[a_var] = a_start_c;
    for (std::size_t round = 0; round < rounds; ++round) {
      for (const VarIndex v : order) {
        const double val = factors_.kernel_sample(v, work, cent, rng);
        work[v] = val;
        cent[v] = factors_.center(v, val);
      }
    }
    out.push_back(work[d_var]);
    for (const VarIndex v : order) {
      work[v] = state[v];
      cent[v] = cent0[v];
    }
    work[a_var] = state[a_var];
    cent[a_var] = cent0[a_var];
  };

  for (std::size_t s = 0; s < opts_.num_samples; ++s) {
    // Counterfactual start, then factual start (same resampling so the
    // distributions are comparable).
    run_side(a_cf, a_cf_c, d1);
    run_side(a_now, cent0[a_var], d2);
  }

  const auto t = stats::welch_t_test(d1, d2);
  // Symptom abnormally high: root cause iff counterfactual lowers D
  // (d1 << d2, small p_less). Abnormally low: iff it raises D.
  verdict.p_value = symptom_high ? t.p_less : 1.0 - t.p_less;
  verdict.is_root_cause = verdict.p_value < opts_.significance;
  verdict.mean_counterfactual = stats::mean(d1);
  verdict.mean_factual = stats::mean(d2);
  return verdict;
}

}  // namespace murphy::core
