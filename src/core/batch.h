// Multi-symptom diagnosis (§3 / Appendix A.1).
//
// A real ticket maps to several problematic symptoms; Murphy runs its
// inference separately per symptom and the operator wants one consolidated
// list. BatchDiagnosis runs the symptom finder over an affected application
// (or an explicit symptom list), diagnoses each symptom, and merges the
// per-symptom rankings: an entity implicated for several independent
// symptoms is a stronger suspect than one implicated once.
#pragma once

#include <memory>
#include <span>

#include "src/core/murphy.h"
#include "src/core/symptom_finder.h"

namespace murphy::core {

// Reciprocal-rank fusion of per-symptom rankings: entity score = sum over
// symptoms of 1/rank, counting only the top `per_symptom_top_k` causes of
// each symptom and excluding each symptom's own entity (it is an effect
// there). The result is sorted by score, ties broken by entity id, and is
// invariant under permutation of the (symptoms, per_symptom) pairs.
// `per_symptom` must parallel `symptoms`.
[[nodiscard]] std::vector<RankedRootCause> fuse_reciprocal_rank(
    std::span<const Symptom> symptoms,
    std::span<const DiagnosisResult> per_symptom,
    std::size_t per_symptom_top_k);

struct BatchOptions {
  MurphyOptions murphy;
  SymptomFinderOptions finder;
  // Per-symptom candidates below this rank do not contribute to the merge.
  std::size_t per_symptom_top_k = 10;
  // Cross-symptom training caches (window column moments + trained
  // factors). Symptoms of one incident share most of their graph
  // neighborhoods, so each shared factor trains once instead of once per
  // symptom. Purely a work-saving measure: per-symptom and merged results
  // are bitwise identical with the caches on or off. Caches invalidate
  // automatically when the training window, the db's data version, or the
  // training options change between calls.
  bool share_training = true;
};

struct BatchResult {
  std::vector<Symptom> symptoms;                // what was diagnosed
  std::vector<DiagnosisResult> per_symptom;     // parallel to `symptoms`
  // Merged ranking: score = sum over symptoms of 1/rank (reciprocal-rank
  // fusion), so breadth of implication beats a single high placement.
  std::vector<RankedRootCause> merged;
};

class BatchDiagnoser {
 public:
  explicit BatchDiagnoser(BatchOptions opts = {});

  // Finds symptoms of `app` at `now` and diagnoses each.
  [[nodiscard]] BatchResult diagnose_app(const telemetry::MonitoringDb& db,
                                         AppId app, TimeIndex now,
                                         TimeIndex train_begin,
                                         TimeIndex train_end);

  // Diagnoses an explicit symptom list. Symptoms are diagnosed in parallel
  // per opts.murphy.num_threads (each symptom is an independent inference);
  // because every diagnosis is deterministic regardless of thread count, the
  // batch result is too, and the inner per-candidate parallelism is disabled
  // while the outer per-symptom loop is parallel without changing output.
  [[nodiscard]] BatchResult diagnose_symptoms(
      const telemetry::MonitoringDb& db, std::vector<Symptom> symptoms,
      TimeIndex now, TimeIndex train_begin, TimeIndex train_end);

 private:
  BatchOptions opts_;
  // Persistent across calls: a repeat diagnosis over the same (db, window,
  // options) generation reuses every factor. See diagnose_symptoms for the
  // fingerprint that guards staleness.
  std::unique_ptr<stats::WindowStats> window_stats_;
  std::unique_ptr<FactorCache> factor_cache_;
};

}  // namespace murphy::core
