// Discrete-time microservice environment simulator.
//
// Advances an AppModel through 10-second slices (cadvisor/Jaeger collection
// granularity of §5.1.2), computing per-service request rates by propagating
// client load down the call graph, per-container CPU/memory/disk pressure
// (workload + injected faults), queueing-delay latencies with saturation,
// and node-level CPU contention that couples co-located containers — the
// mechanism behind both the resource-contention and performance-interference
// failure scenarios.
//
// The output is a fully populated telemetry::MonitoringDb: entities for
// clients, services, containers and nodes; loose associations between them;
// and one time series per (entity, metric).
#pragma once

#include <vector>

#include "src/common/rng.h"
#include "src/emulation/app_model.h"
#include "src/emulation/faults.h"
#include "src/telemetry/monitoring_db.h"

namespace murphy::emulation {

struct SimOptions {
  std::size_t slices = 360;          // 1 hour at 10 s
  double interval_seconds = 10.0;
  double noise = 0.03;               // multiplicative metric noise
  std::uint64_t seed = 1;
  // When true (default), caller/callee associations are stored undirected —
  // the §6.1 environment where the monitoring data carries no causal
  // direction and the relationship graph is cyclic. When false, call edges
  // are directed caller->callee, yielding the acyclic §6.3 environment that
  // Sage can model.
  bool bidirectional_call_edges = true;
};

// Handles of the simulated entities within the produced MonitoringDb.
struct SimEntities {
  std::vector<EntityId> services;    // parallel to AppModel::services
  std::vector<EntityId> containers;  // parallel to AppModel::containers
  std::vector<EntityId> nodes;       // parallel to AppModel::nodes
  std::vector<EntityId> clients;     // parallel to AppModel::clients
  AppId app;
};

struct SimResult {
  telemetry::MonitoringDb db;
  SimEntities entities;
  // Per-slice end-to-end latency observed by each client (ms); also stored
  // in the db, duplicated here for convenient assertions/plots.
  std::vector<std::vector<double>> client_latency;
  // Per-slice utilization of each container (0..~1.2, >1 = saturated).
  std::vector<std::vector<double>> container_util;
};

// Runs the simulation. Every client's rps_schedule must have exactly
// `opts.slices` entries.
[[nodiscard]] SimResult simulate(const AppModel& app,
                                 const std::vector<Fault>& faults,
                                 const SimOptions& opts);

}  // namespace murphy::emulation
