file(REMOVE_RECURSE
  "libmurphy_common.a"
)
