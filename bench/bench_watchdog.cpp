// Watchdog bench: always-on detection quality and steady-state overhead
// (DESIGN.md §10).
//
// Drives the full murphyd watchdog stack over generated battle-matrix
// topologies (kSingleContention, varying seeds): each case's trace is split
// before the incident window, the tail is replayed slice by slice with a
// watchdog scan per slice, and the incident journal is compared against the
// generator's ground truth. Reported numbers:
//
//  * detection latency p50/p99 — slices from incident onset to the first
//    incident open (slice-indexed, deterministic);
//  * trigger precision/recall — incidents that overlap the planned fault
//    window vs incidents opened at all, and faulted cases detected;
//  * diagnosis top-3 rate — cases where a ground-truth root container/
//    service lands in the auto-enqueued diagnosis' top 3;
//  * steady-state overhead — ingest throughput with the watchdog attached
//    vs detached over the same feed (wall-clock, nondeterministic).
//
// Quality numbers land in deterministic watchdog.* gauges (CI diffs them
// run-to-run with scripts/metrics_diff.py --prefix watchdog.); wall-clock
// numbers go to watchdog_wall.* and are ignored by the diff, mirroring the
// matrix.* / matrix_latency.* precedent.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/emulation/topo_gen.h"
#include "src/service/diagnosis_service.h"
#include "src/service/feed.h"
#include "src/service/telemetry_stream.h"
#include "src/watchdog/watchdog.h"

using namespace murphy;

namespace {

double exact_quantile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct CaseOutcome {
  bool detected = false;       // >=1 incident overlapping the fault window
  bool top3 = false;           // a ground-truth root in some diagnosis top-3
  double detect_slices = 0.0;  // onset -> first open (when detected)
  std::size_t incidents = 0;   // total opened
  std::size_t true_incidents = 0;  // opened inside the fault window (+slack)
};

CaseOutcome run_case(const emulation::DiagnosisCase& c) {
  service::ReplayFeed feed = service::make_replay_feed(
      c.db, c.incident_start > 20 ? c.incident_start - 20 : 1);
  service::TelemetryStream stream(std::move(feed.warm));
  service::DiagnosisServiceOptions sopts;
  sopts.num_workers = 2;
  sopts.murphy.num_threads = 1;
  sopts.murphy.sampler.num_samples = bench::full_scale() ? 500 : 150;
  sopts.murphy.seed = 7;
  service::DiagnosisService svc(stream, sopts);
  watchdog::Watchdog wd(stream, svc, {});
  wd.attach();
  for (std::size_t i = 0; i < feed.batches.size(); ++i) {
    service::replay_slice(stream, feed, i);
    wd.scan();
  }
  wd.drain();
  wd.detach();

  // Ground-truth root names (roots are entity ids in the case's db).
  std::vector<std::string> root_names;
  for (const EntityId root : c.all_roots)
    root_names.push_back(c.db.entity(root).name);

  CaseOutcome out;
  for (const watchdog::Incident& inc : wd.incidents()) {
    ++out.incidents;
    // An incident is a true trigger when it opens inside the fault window
    // (a little post-window slack covers hysteresis clearing lag).
    const bool in_window = inc.opened_at >= c.incident_start &&
                           inc.opened_at < c.incident_end + 10;
    if (in_window) {
      ++out.true_incidents;
      if (!out.detected) {
        out.detected = true;
        out.detect_slices =
            static_cast<double>(inc.opened_at - c.incident_start);
      }
    }
    for (const std::string& cause : inc.top_causes)
      for (const std::string& root : root_names)
        if (cause == root) out.top3 = true;
  }
  svc.stop();
  return out;
}

// Ingest throughput over the same feed with and without the watchdog
// attached — the steady-state cost of always-on detection, measured over
// murphyd's actual per-slice ingest loop (replay + cache maintain + scan).
// One warm slice runs outside the timer: the watchdog's first scan
// backfills every series' warm prefix, a one-time cost that a long-running
// daemon amortizes to nothing. Off/on rounds interleave so clock-speed
// drift during the probe hits both arms equally.
struct IngestProbe {
  double off_cells_per_s = 0.0;
  double on_cells_per_s = 0.0;
};

IngestProbe measure_ingest(const emulation::DiagnosisCase& c) {
  const std::size_t rounds = bench::scaled(5, 15);
  std::size_t cells[2] = {0, 0};
  double secs[2] = {0.0, 0.0};
  for (std::size_t r = 0; r < rounds; ++r) {
    for (int arm = 0; arm < 2; ++arm) {
      const bool with_wd = arm == 1;
      service::ReplayFeed feed = service::make_replay_feed(
          c.db, c.incident_start > 20 ? c.incident_start - 20 : 1);
      service::TelemetryStream stream(std::move(feed.warm));
      service::DiagnosisServiceOptions sopts;
      sopts.num_workers = 0;  // isolate ingest+scan cost from diagnosis cost
      sopts.murphy.num_threads = 1;
      service::DiagnosisService svc(stream, sopts);
      watchdog::WatchdogOptions wopts;
      wopts.z_open = 1e18;  // scoring runs, triggering suppressed: pure cost
      watchdog::Watchdog wd(stream, svc, wopts);
      if (with_wd) wd.attach();
      service::replay_slice(stream, feed, 0);
      svc.maintain();
      if (with_wd) wd.scan();  // absorbs the warm-prefix backfill
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t i = 1; i < feed.batches.size(); ++i) {
        cells[arm] += service::replay_slice(stream, feed, i);
        svc.maintain();
        if (with_wd) wd.scan();
      }
      secs[arm] +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      if (with_wd) wd.detach();
      svc.stop();
    }
  }
  IngestProbe out;
  if (secs[0] > 0.0)
    out.off_cells_per_s = static_cast<double>(cells[0]) / secs[0];
  if (secs[1] > 0.0)
    out.on_cells_per_s = static_cast<double>(cells[1]) / secs[1];
  return out;
}

}  // namespace

int main() {
  bench::print_header(
      "Always-on watchdog: detection quality and steady-state overhead",
      "engineering experiment (no paper figure) — the paper's engine is "
      "request-driven; this measures the PR 7 streaming trigger loop");

  const std::size_t cases = bench::scaled(6, 24);
  emulation::TopoGenOptions topts;
  topts.services = 40;
  topts.applications = 2;

  std::vector<double> detect;
  std::size_t detected = 0, top3 = 0, incidents = 0, true_incidents = 0;
  for (std::size_t i = 0; i < cases; ++i) {
    topts.seed = 100 + i;
    const emulation::GeneratedTopology topo = generate_topology(topts);
    emulation::TopologyCaseOptions copts;
    copts.fault = emulation::IncidentKind::kSingleContention;
    copts.seed = 1000 + i;
    const emulation::DiagnosisCase c = make_topology_case(topo, copts);
    const CaseOutcome out = run_case(c);
    detected += out.detected ? 1 : 0;
    top3 += out.top3 ? 1 : 0;
    incidents += out.incidents;
    true_incidents += out.true_incidents;
    if (out.detected) detect.push_back(out.detect_slices);
    std::printf("case %2zu: incidents=%zu true=%zu detected=%d top3=%d "
                "latency=%.0f slices\n",
                i, out.incidents, out.true_incidents, out.detected ? 1 : 0,
                out.top3 ? 1 : 0, out.detected ? out.detect_slices : -1.0);
  }
  bench::stamp_workload({"topo-gen-L40", topts.services, 0, topts.seed,
                         "single-contention,watchdog-replay"});

  std::sort(detect.begin(), detect.end());
  const double n = static_cast<double>(cases);
  const double recall = static_cast<double>(detected) / n;
  const double precision =
      incidents > 0
          ? static_cast<double>(true_incidents) / static_cast<double>(incidents)
          : 1.0;
  const double top3_rate = static_cast<double>(top3) / n;
  const double p50 = exact_quantile(detect, 0.50);
  const double p99 = exact_quantile(detect, 0.99);

  // Overhead probe on one representative case.
  topts.seed = 100;
  emulation::TopologyCaseOptions copts;
  copts.fault = emulation::IncidentKind::kSingleContention;
  copts.seed = 1000;
  const emulation::DiagnosisCase probe =
      make_topology_case(generate_topology(topts), copts);
  const IngestProbe ingest = measure_ingest(probe);
  const double off = ingest.off_cells_per_s;
  const double on = ingest.on_cells_per_s;
  const double overhead_pct = off > 0.0 ? 100.0 * (off - on) / off : 0.0;
  // Absolute watchdog cost per cell: the honest number for sizing. The
  // relative figure is against a baseline that does nothing but hash-insert
  // cells (~35 ns each); any real pipeline (parsing, network, validation)
  // dilutes the same absolute cost to a far smaller fraction.
  const double added_ns_per_cell =
      (off > 0.0 && on > 0.0) ? 1e9 * (1.0 / on - 1.0 / off) : 0.0;

  std::printf("\ntrigger recall    : %5.2f  (%zu/%zu cases)\n", recall,
              detected, cases);
  std::printf("trigger precision : %5.2f  (%zu/%zu incidents)\n", precision,
              true_incidents, incidents);
  std::printf("diagnosis top-3   : %5.2f\n", top3_rate);
  std::printf("detect latency p50: %5.1f slices   p99: %5.1f slices\n", p50,
              p99);
  std::printf("ingest throughput : %.0f cells/s off, %.0f cells/s on "
              "(%.1f%% overhead, %.1f ns/cell added)\n",
              off, on, overhead_pct, added_ns_per_cell);

  auto& m = obs::global_metrics();
  // Deterministic detection-quality gauges (CI diffs these run-to-run).
  m.gauge("watchdog.cases")->set(n);
  m.gauge("watchdog.recall")->set(recall);
  m.gauge("watchdog.precision")->set(precision);
  m.gauge("watchdog.top3_rate")->set(top3_rate);
  m.gauge("watchdog.detect_p50_slices")->set(p50);
  m.gauge("watchdog.detect_p99_slices")->set(p99);
  // Wall-clock: legitimately varies run to run.
  m.gauge("watchdog_wall.ingest_off_cells_per_s")->set(off);
  m.gauge("watchdog_wall.ingest_on_cells_per_s")->set(on);
  m.gauge("watchdog_wall.overhead_pct")->set(overhead_pct);
  m.gauge("watchdog_wall.added_ns_per_cell")->set(added_ns_per_cell);
  bench::write_bench_json("watchdog");
  return 0;
}
