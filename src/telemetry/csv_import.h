// CSV import — the inverse of csv_export.
//
// Rebuilds a MonitoringDb from the three files the exporter writes, so
// captured datasets (or externally produced ones in the same schema) can be
// diagnosed offline: export a production window, load it on a laptop, run
// Murphy. Entity ids are re-assigned densely on import; names are the stable
// key, and associations/metrics refer to entities by their exported id.
#pragma once

#include <istream>
#include <optional>
#include <string>

#include "src/telemetry/monitoring_db.h"

namespace murphy::telemetry {

struct ImportError {
  std::string message;
  std::size_t line = 0;  // 1-based line in the offending file
};

struct ImportResult {
  MonitoringDb db;
  std::size_t entities = 0;
  std::size_t associations = 0;
  std::size_t series = 0;
};

// Stream-based import. The metrics stream must use the long format written
// by export_metrics_csv; `interval_seconds` sets the rebuilt axis (the CSV
// stores slice indices, not wall-clock times). Returns nullopt and fills
// `error` on malformed input.
[[nodiscard]] std::optional<ImportResult> import_csv(
    std::istream& entities, std::istream& associations, std::istream& metrics,
    double interval_seconds, ImportError* error = nullptr);

// File-based convenience matching export_csv's path scheme.
[[nodiscard]] std::optional<ImportResult> import_csv_files(
    const std::string& path_prefix, double interval_seconds,
    ImportError* error = nullptr);

}  // namespace murphy::telemetry
