// Correlation measures used for feature selection (Murphy's top-B neighbor
// metric choice), ExplainIt's ranking, and NetMedic's edge weights.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace murphy::stats {

// A column counts as effectively constant when its standard deviation is at
// most kCorrelationRelTol times its RMS magnitude. The tolerance is RELATIVE
// to the column's own scale: an absolute epsilon (the old 1e-15 on the sum
// of squared deviations) misclassified legitimately tiny-scale metrics
// (values ~1e-9 with O(1) relative variation) as constant while letting
// huge-scale columns whose only variation is FP rounding noise (~1e-16
// relative) pass as informative. 1e-12 relative sits ~4 decades above
// double rounding noise and ~4 below any real signal.
inline constexpr double kCorrelationRelTol = 1e-12;

// Pearson correlation coefficient in [-1, 1]; 0 when either side is
// effectively constant (see kCorrelationRelTol) or contains non-finite
// values (a NaN/Inf slice yields the defined 0, never a NaN score).
[[nodiscard]] double pearson(std::span<const double> x,
                             std::span<const double> y);

// Pearson from precomputed centered columns (cx[i] = x[i] - mean(x)), their
// sums of squared deviations, and their means (mx/my carry the scale the
// relative constancy test needs — centered columns alone can't). Bit-
// identical to pearson() on the raw columns; lets a window cache
// (stats::ColumnMoments) turn each pairwise correlation into a single dot
// product instead of a mean/variance rescan.
[[nodiscard]] double pearson_centered(std::span<const double> cx, double sxx,
                                      double mx, std::span<const double> cy,
                                      double syy, double my);

// Midranks (average rank for ties) of x, as used by spearman(). Exposed so
// the window cache can precompute rank columns once per variable.
[[nodiscard]] std::vector<double> midranks(std::span<const double> x);

// Spearman rank correlation; robust to monotone nonlinearity.
[[nodiscard]] double spearman(std::span<const double> x,
                              std::span<const double> y);

// NetMedic-style abnormality correlation: correlation of |z-scores| of the
// two series relative to their own historical mean/stddev. Two metrics that
// become abnormal together score high even if their raw values anti-move.
[[nodiscard]] double abnormality_correlation(std::span<const double> x,
                                             std::span<const double> y);

// Cross-correlation at the given lag (y shifted `lag` slices later than x).
[[nodiscard]] double lagged_pearson(std::span<const double> x,
                                    std::span<const double> y, std::size_t lag);

}  // namespace murphy::stats
