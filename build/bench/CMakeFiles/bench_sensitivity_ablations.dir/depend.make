# Empty dependencies file for bench_sensitivity_ablations.
# This may be replaced when dependencies are built.
