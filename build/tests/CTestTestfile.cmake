# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/telemetry_graph_test[1]_include.cmake")
include("/root/repo/build/tests/emulation_test[1]_include.cmake")
include("/root/repo/build/tests/enterprise_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/features_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/regression_test[1]_include.cmake")
