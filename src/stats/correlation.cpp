#include "src/stats/correlation.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "src/stats/summary.h"

namespace murphy::stats {
namespace {

std::vector<double> ranks(std::span<const double> x) {
  std::vector<std::size_t> order(x.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return x[a] < x[b]; });
  std::vector<double> r(x.size());
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && x[order[j + 1]] == x[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0;
    for (std::size_t k = i; k <= j; ++k) r[order[k]] = avg_rank;
    i = j + 1;
  }
  return r;
}

}  // namespace

double pearson(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx < 1e-15 || syy < 1e-15) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double spearman(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  if (x.size() < 2) return 0.0;
  const auto rx = ranks(x);
  const auto ry = ranks(y);
  return pearson(rx, ry);
}

double abnormality_correlation(std::span<const double> x,
                               std::span<const double> y) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  const double mx = mean(x), sx = stddev(x);
  const double my = mean(y), sy = stddev(y);
  std::vector<double> ax(n), ay(n);
  for (std::size_t i = 0; i < n; ++i) {
    ax[i] = std::abs(zscore(x[i], mx, sx));
    ay[i] = std::abs(zscore(y[i], my, sy));
  }
  return pearson(ax, ay);
}

double lagged_pearson(std::span<const double> x, std::span<const double> y,
                      std::size_t lag) {
  assert(x.size() == y.size());
  if (x.size() <= lag + 1) return 0.0;
  const std::size_t n = x.size() - lag;
  return pearson(x.subspan(0, n), y.subspan(lag, n));
}

}  // namespace murphy::stats
