// Fault injection for the microservice simulator.
//
// Two layers:
//
//  * Fault — one container-local perturbation primitive, mirroring §5.1.2:
//    stress-ng-style CPU / memory / disk pressure on a chosen container for
//    a bounded window, optionally ramping up over `ramp_slices` (the
//    slow-burn shape real degradations — leaks, fragmenting heaps, filling
//    disks — take).
//  * IncidentPlan — a scripted *incident* composed of primitives plus its
//    operator-facing ground truth. Beyond the single-contention incidents
//    of the paper's evaluation, the planner produces the messier shapes the
//    RCA-benchmark literature sweeps ("How Far Are We?", PAPERS.md):
//    correlated multi-root incidents (every root is ground truth),
//    slow-burn degradations, retry storms (a browned-out backend plus
//    client-side load amplification), and cascading failures (only the
//    origin is ground truth; the induced secondaries are effects).
//
// Performance interference is expressed through client RPS schedules (see
// workload.h); the retry-storm plan bridges the two by emitting client
// amplification directives alongside its container fault.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "src/common/time_axis.h"
#include "src/emulation/app_model.h"

namespace murphy::emulation {

enum class FaultKind { kCpuStress, kMemStress, kDiskStress };

[[nodiscard]] std::string_view fault_kind_name(FaultKind k);

struct Fault {
  FaultKind kind = FaultKind::kCpuStress;
  ContainerIdx target = 0;
  TimeIndex start = 0;
  TimeIndex duration = 30;  // slices (10 s each -> 5 min default)
  // Fraction of the container's CPU limit consumed (CPU stress), or fraction
  // of memory filled (mem), or MB/s of disk traffic injected (disk).
  double intensity = 0.6;
  // Slow-burn support: the effective intensity ramps linearly from ~0 to
  // `intensity` over the first `ramp_slices` of the active window. 0 keeps
  // the historical step shape (full intensity from the first slice).
  std::size_t ramp_slices = 0;

  [[nodiscard]] bool active_at(TimeIndex t) const {
    return t >= start && t < start + duration;
  }
  // Effective intensity at slice t: 0 outside the window, the ramped
  // fraction inside it.
  [[nodiscard]] double intensity_at(TimeIndex t) const;
};

// The contention a set of faults exerts on one container at time t.
struct ContainerPressure {
  double cpu_cores = 0.0;   // extra cores consumed
  double mem_fraction = 0.0;
  double disk_mbps = 0.0;
};

[[nodiscard]] ContainerPressure pressure_at(const std::vector<Fault>& faults,
                                            ContainerIdx container,
                                            double cpu_limit_cores,
                                            TimeIndex t);

// ---------------------------------------------------------------------------
// Incident planning — composed fault shapes with ground-truth labels.

enum class IncidentKind : std::uint8_t {
  // One stress fault on one container (the paper's §6.3 shape).
  kSingleContention,
  // `num_roots` independent faults on distinct containers overlapping in
  // time. Ground truth labels EVERY root: an operator fixing only one of a
  // correlated pair has not resolved the incident.
  kCorrelatedMultiRoot,
  // One fault ramping over most of its window — no sharp onset for
  // change-point-style detectors to anchor on.
  kSlowBurn,
  // A backend brown-out whose clients amplify their offered load (retries),
  // spreading pressure across the whole call graph. Ground truth is the
  // browned-out container, not the (symptomatic) amplified clients.
  kRetryStorm,
  // An origin fault plus delayed, weaker induced faults on the containers
  // of upstream caller services (queue buildup propagating backwards).
  // Ground truth labels ONLY the origin; the secondaries are effects.
  kCascade,
};

[[nodiscard]] std::string_view incident_kind_name(IncidentKind k);

struct IncidentOptions {
  IncidentKind kind = IncidentKind::kSingleContention;
  std::uint64_t seed = 1;
  TimeIndex start = 180;
  std::size_t duration = 45;
  double intensity = 1.2;
  // kCorrelatedMultiRoot: number of independent simultaneous roots.
  std::size_t num_roots = 2;
  // kCascade: how many hops upstream the induced faults spread.
  std::size_t cascade_depth = 2;
  // kRetryStorm: multiplicative load factor on affected clients' schedules.
  double retry_amplification = 2.5;
};

// A client whose offered load must be multiplied by `factor` over
// [start, start + duration) before simulation — the retry traffic a
// browned-out backend provokes.
struct ClientAmplification {
  ClientIdx client = 0;
  TimeIndex start = 0;
  std::size_t duration = 0;
  double factor = 1.0;
};

struct IncidentPlan {
  IncidentKind kind = IncidentKind::kSingleContention;
  std::vector<Fault> faults;
  // Operator ground truth: the containers whose perturbation IS the
  // incident. Correlated incidents list every independent root; cascades
  // list only the origin.
  std::vector<ContainerIdx> root_containers;
  // Containers that receive induced (secondary) faults but are NOT ground
  // truth — cascade spread. Acceptable as relaxed near-misses only.
  std::vector<ContainerIdx> secondary_containers;
  // Load multipliers to apply to client schedules before simulating
  // (kRetryStorm; empty otherwise).
  std::vector<ClientAmplification> amplifications;
  // Incident window (union of the root faults' active windows).
  TimeIndex start = 0;
  TimeIndex end = 0;
};

// Plans one incident over `app`. `candidates` are the containers eligible
// as roots (typically the service-hosting containers); must be non-empty.
// Every draw derives from opts.seed alone, so a given (app, candidates,
// opts) plans identically on every run. `app.clients` must already be
// populated when planning a retry storm (the amplification set derives from
// the clients' call trees).
[[nodiscard]] IncidentPlan plan_incident(
    const AppModel& app, const std::vector<ContainerIdx>& candidates,
    const IncidentOptions& opts);

// Applies `amp` to the matching clients' rps_schedules in place.
void apply_amplifications(AppModel& app,
                          const std::vector<ClientAmplification>& amps);

}  // namespace murphy::emulation
