file(REMOVE_RECURSE
  "CMakeFiles/enterprise_incident.dir/enterprise_incident.cpp.o"
  "CMakeFiles/enterprise_incident.dir/enterprise_incident.cpp.o.d"
  "enterprise_incident"
  "enterprise_incident.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enterprise_incident.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
