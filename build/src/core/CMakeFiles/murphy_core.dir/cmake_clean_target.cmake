file(REMOVE_RECURSE
  "libmurphy_core.a"
)
