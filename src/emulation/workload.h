// Open-loop workload schedules (wrk2-style) for the microservice simulator.
//
// A schedule is simply the offered requests/second at each 10 s slice; these
// helpers build the shapes the paper's scenarios need: steady load with
// noise, a step ramp at a given time (the interference aggressor), and
// short-lived bursts (prior incidents).
#pragma once

#include <cstddef>
#include <vector>

#include "src/common/rng.h"
#include "src/common/time_axis.h"

namespace murphy::emulation {

// Steady `rps` with multiplicative Gaussian jitter of `jitter` (e.g. 0.05).
[[nodiscard]] std::vector<double> steady_load(std::size_t slices, double rps,
                                              double jitter, Rng& rng);

// Steady `base_rps` until `ramp_at`, then `high_rps` for `duration` slices,
// then back to base. The aggressor-client shape of Fig. 5b.
[[nodiscard]] std::vector<double> step_load(std::size_t slices,
                                            double base_rps, double high_rps,
                                            TimeIndex ramp_at,
                                            std::size_t duration, double jitter,
                                            Rng& rng);

// Adds a burst (multiplies by `factor`) over [at, at+duration) in place.
void add_burst(std::vector<double>& schedule, TimeIndex at,
               std::size_t duration, double factor);

// Slow diurnal-ish modulation used by longer traces: a sinusoid with the
// given relative amplitude and period (in slices).
[[nodiscard]] std::vector<double> diurnal_load(std::size_t slices, double rps,
                                               double amplitude,
                                               std::size_t period, double jitter,
                                               Rng& rng);

}  // namespace murphy::emulation
