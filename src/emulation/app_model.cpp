#include "src/emulation/app_model.h"

#include <cassert>
#include <deque>

namespace murphy::emulation {

ServiceIdx AppModel::find_service(const std::string& name) const {
  for (ServiceIdx i = 0; i < services.size(); ++i)
    if (services[i].name == name) return i;
  assert(false && "unknown service name");
  return 0;
}

std::vector<double> AppModel::demand_vector(ServiceIdx entry) const {
  // Relaxation over the call DAG: demand[callee] += demand[caller] * fanout.
  // Call graphs here are DAGs (fan-out trees with sharing), so a fixed-point
  // pass over edges in BFS order suffices; we iterate a few times to be safe
  // with any ordering.
  std::vector<double> demand(services.size(), 0.0);
  demand[entry] = 1.0;
  for (std::size_t iter = 0; iter < services.size(); ++iter) {
    bool changed = false;
    std::vector<double> next(services.size(), 0.0);
    next[entry] = 1.0;
    for (const CallEdge& e : call_edges)
      next[e.callee] += demand[e.caller] * e.calls_per_request;
    for (ServiceIdx s = 0; s < services.size(); ++s) {
      if (next[s] != demand[s]) changed = true;
    }
    demand = std::move(next);
    if (!changed) break;
  }
  return demand;
}

std::vector<ServiceIdx> AppModel::call_tree(ServiceIdx entry) const {
  std::vector<bool> seen(services.size(), false);
  std::deque<ServiceIdx> queue{entry};
  seen[entry] = true;
  std::vector<ServiceIdx> out;
  while (!queue.empty()) {
    const ServiceIdx cur = queue.front();
    queue.pop_front();
    out.push_back(cur);
    for (const CallEdge& e : call_edges) {
      if (e.caller == cur && !seen[e.callee]) {
        seen[e.callee] = true;
        queue.push_back(e.callee);
      }
    }
  }
  return out;
}

namespace {

// Appends a service together with its dedicated container.
ServiceIdx add_service(AppModel& app, std::string name, NodeIdx node,
                       double base_latency_ms, double cpu_cost,
                       double cpu_limit = 2.0) {
  ContainerSpec c;
  c.name = name + "-ctr";
  c.node = node;
  c.cpu_limit_cores = cpu_limit;
  app.containers.push_back(c);

  ServiceSpec s;
  s.name = std::move(name);
  s.base_latency_ms = base_latency_ms;
  s.cpu_cost_per_req = cpu_cost;
  s.container = app.containers.size() - 1;
  app.services.push_back(s);
  return app.services.size() - 1;
}

void call(AppModel& app, ServiceIdx a, ServiceIdx b, double fanout = 1.0) {
  app.call_edges.push_back(CallEdge{a, b, fanout});
}

}  // namespace

AppModel make_hotel_reservation() {
  // 8 services modeled on DeathStarBench hotel-reservation, spread over a
  // 7-node cluster (4-core nodes, matching §5.1.2).
  AppModel app;
  app.name = "hotel-reservation";
  for (int n = 0; n < 7; ++n)
    app.nodes.push_back(NodeSpec{"node-" + std::to_string(n), 4.0});

  const auto frontend = add_service(app, "frontend", 0, 1.5, 0.002);
  const auto search = add_service(app, "search", 1, 2.0, 0.004);
  const auto geo = add_service(app, "geo", 2, 1.2, 0.003);
  const auto rate = add_service(app, "rate", 3, 1.5, 0.003);
  const auto profile = add_service(app, "profile", 4, 1.8, 0.003);
  const auto recommend = add_service(app, "recommendation", 5, 2.2, 0.004);
  const auto reserve = add_service(app, "reservation", 6, 2.5, 0.005);
  const auto user = add_service(app, "user", 6, 1.0, 0.002);

  call(app, frontend, search);
  call(app, frontend, profile);
  call(app, frontend, recommend, 0.5);
  call(app, frontend, reserve, 0.3);
  call(app, frontend, user, 0.8);
  call(app, search, geo);
  call(app, search, rate);
  // search and recommendation share the profile/rate backends — the common
  // downstream services exercised by the §6.1 interference scenario.
  call(app, search, profile, 0.7);
  call(app, recommend, profile, 0.5);
  call(app, recommend, rate, 0.5);
  call(app, reserve, user, 0.5);
  return app;
}

AppModel make_social_network() {
  // 24 services modeled on DeathStarBench social-network, all containers on
  // one 8-core Docker host (§5.1.2); storage/cache backends get their own
  // containers so the entity census matches the paper's 57.
  AppModel app;
  app.name = "social-network";
  app.nodes.push_back(NodeSpec{"docker-host", 8.0});

  auto svc = [&](const char* name, double lat, double cost) {
    return add_service(app, name, 0, lat, cost, 1.0);
  };

  const auto nginx = svc("nginx-web", 0.8, 0.001);
  const auto compose = svc("compose-post", 2.0, 0.003);
  const auto home = svc("home-timeline", 1.5, 0.003);
  const auto user_tl = svc("user-timeline", 1.5, 0.003);
  const auto text = svc("text", 1.2, 0.002);
  const auto media = svc("media", 2.5, 0.004);
  const auto user_svc = svc("user", 1.0, 0.002);
  const auto unique_id = svc("unique-id", 0.5, 0.001);
  const auto url_shorten = svc("url-shorten", 0.8, 0.002);
  const auto user_mention = svc("user-mention", 0.9, 0.002);
  const auto post_storage = svc("post-storage", 1.8, 0.003);
  const auto social_graph = svc("social-graph", 1.4, 0.003);
  const auto write_home = svc("write-home-timeline", 1.6, 0.003);
  const auto read_post = svc("read-post", 1.2, 0.002);
  const auto mongo_post = svc("mongodb-post", 2.2, 0.004);
  const auto mongo_user = svc("mongodb-user", 2.0, 0.003);
  const auto mongo_social = svc("mongodb-social", 2.0, 0.003);
  const auto mongo_media = svc("mongodb-media", 2.4, 0.004);
  const auto redis_home = svc("redis-home", 0.4, 0.001);
  const auto redis_social = svc("redis-social", 0.4, 0.001);
  const auto memcached_post = svc("memcached-post", 0.3, 0.001);
  const auto memcached_user = svc("memcached-user", 0.3, 0.001);
  const auto media_frontend = svc("media-frontend", 1.0, 0.002);
  const auto auth = svc("auth", 0.9, 0.002);

  // compose-post path
  call(app, nginx, compose, 0.4);
  call(app, compose, unique_id);
  call(app, compose, text);
  call(app, compose, user_svc);
  call(app, compose, media, 0.3);
  call(app, compose, post_storage);
  call(app, compose, write_home);
  call(app, text, url_shorten, 0.5);
  call(app, text, user_mention, 0.5);
  call(app, write_home, social_graph);
  call(app, write_home, redis_home);
  call(app, post_storage, mongo_post);
  call(app, post_storage, memcached_post, 0.7);
  // read paths
  call(app, nginx, home, 0.4);
  call(app, nginx, user_tl, 0.2);
  call(app, home, redis_home);
  call(app, home, read_post, 0.8);
  call(app, user_tl, mongo_user, 0.5);
  call(app, user_tl, read_post, 0.8);
  call(app, read_post, post_storage);
  // auxiliary
  call(app, user_svc, mongo_user, 0.5);
  call(app, user_svc, memcached_user, 0.8);
  call(app, user_svc, auth, 0.5);
  call(app, social_graph, mongo_social, 0.5);
  call(app, social_graph, redis_social, 0.8);
  call(app, media, mongo_media, 0.6);
  call(app, media, media_frontend, 0.3);
  call(app, media_frontend, mongo_media, 0.5);

  // Extra infrastructure containers without service wrappers (jaeger agent,
  // media cache, ...) so the entity census matches the paper's 57 for this
  // app: 24 services + 32 containers + 1 node.
  for (const char* extra :
       {"jaeger-agent", "media-cache", "write-ahead-log", "cfg-store",
        "metrics-sidecar", "dns-sidecar", "log-shipper", "proxy-sidecar"}) {
    ContainerSpec c;
    c.name = extra;
    c.node = 0;
    c.cpu_limit_cores = 0.5;
    app.containers.push_back(c);
  }
  return app;
}

}  // namespace murphy::emulation
