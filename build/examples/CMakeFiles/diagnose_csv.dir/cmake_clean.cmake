file(REMOVE_RECURSE
  "CMakeFiles/diagnose_csv.dir/diagnose_csv.cpp.o"
  "CMakeFiles/diagnose_csv.dir/diagnose_csv.cpp.o.d"
  "diagnose_csv"
  "diagnose_csv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnose_csv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
