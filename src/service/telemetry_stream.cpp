#include "src/service/telemetry_stream.h"

#include "src/obs/metrics.h"

namespace murphy::service {

TelemetryStream::TelemetryStream(telemetry::MonitoringDb db)
    : db_(std::move(db)) {}

TelemetryStream::ReadLock TelemetryStream::read() const {
  return ReadLock(mu_, &db_);
}

TelemetryStream::WriteLock TelemetryStream::write() {
  return WriteLock(mu_, &db_);
}

std::size_t TelemetryStream::append(std::span<const TelemetryCell> cells) {
  std::size_t written = 0;
  std::size_t unknown = 0;
  std::size_t out_of_axis = 0;
  {
    std::unique_lock lock(mu_);
    const std::size_t slices = db_.metrics().axis().size();
    for (const TelemetryCell& c : cells) {
      if (!db_.has_entity(c.entity)) {
        ++unknown;
        continue;
      }
      if (c.t >= slices) {
        ++out_of_axis;
        continue;
      }
      db_.metrics().upsert_cell(c.entity, c.kind, c.t, c.value);
      ++written;
    }
  }
  // Defect counters outside the lock — they are process-global atomics.
  if (unknown > 0)
    obs::global_metrics().counter("ingest.unknown_entity_dropped")
        ->add(unknown);
  if (out_of_axis > 0)
    obs::global_metrics().counter("ingest.out_of_axis_dropped")
        ->add(out_of_axis);
  return written;
}

bool TelemetryStream::append_cell(EntityId entity, std::string_view metric,
                                  TimeIndex t, double value) {
  MetricKindId kind;
  {
    std::unique_lock lock(mu_);
    kind = db_.catalog().intern(metric);
  }
  const TelemetryCell cell{entity, kind, t, value};
  return append(std::span<const TelemetryCell>(&cell, 1)) == 1;
}

void TelemetryStream::extend_axis(std::size_t extra_slices) {
  std::unique_lock lock(mu_);
  db_.metrics().extend_axis(extra_slices);
}

std::size_t TelemetryStream::slice_count() const {
  std::shared_lock lock(mu_);
  return db_.metrics().axis().size();
}

std::uint64_t TelemetryStream::data_version() const {
  std::shared_lock lock(mu_);
  return db_.data_version();
}

bool TelemetryStream::save_snapshot(const std::string& path) const {
  std::shared_lock lock(mu_);
  return telemetry::save_snapshot_file(db_, path);
}

bool TelemetryStream::restore_snapshot(const std::string& path,
                                       telemetry::SnapshotError* error) {
  // Parse outside the lock (the slow part), swap under it.
  auto loaded = telemetry::load_snapshot_file(path, error);
  if (!loaded.has_value()) return false;
  std::unique_lock lock(mu_);
  db_ = std::move(*loaded);
  return true;
}

}  // namespace murphy::service
