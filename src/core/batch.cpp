#include "src/core/batch.h"

#include <algorithm>
#include <unordered_map>

namespace murphy::core {

BatchDiagnoser::BatchDiagnoser(BatchOptions opts) : opts_(opts) {}

BatchResult BatchDiagnoser::diagnose_app(const telemetry::MonitoringDb& db,
                                         AppId app, TimeIndex now,
                                         TimeIndex train_begin,
                                         TimeIndex train_end) {
  SymptomFinderOptions fopts = opts_.finder;
  fopts.history_begin = train_begin;
  return diagnose_symptoms(db, find_symptoms(db, app, now, fopts), now,
                           train_begin, train_end);
}

BatchResult BatchDiagnoser::diagnose_symptoms(
    const telemetry::MonitoringDb& db, std::vector<Symptom> symptoms,
    TimeIndex now, TimeIndex train_begin, TimeIndex train_end) {
  BatchResult result;
  result.symptoms = std::move(symptoms);

  MurphyDiagnoser murphy(opts_.murphy);
  std::unordered_map<EntityId, double> fused;
  for (const Symptom& symptom : result.symptoms) {
    DiagnosisRequest request;
    request.db = &db;
    request.symptom_entity = symptom.entity;
    request.symptom_metric = symptom.metric;
    request.now = now;
    request.train_begin = train_begin;
    request.train_end = train_end;
    auto diagnosis = murphy.diagnose(request);

    for (std::size_t r = 0;
         r < diagnosis.causes.size() && r < opts_.per_symptom_top_k; ++r) {
      // Reciprocal-rank fusion; the symptom entity itself is excluded from
      // the merge (it is an effect here, even if self-caused cases keep it
      // in the per-symptom list).
      if (diagnosis.causes[r].entity == symptom.entity) continue;
      fused[diagnosis.causes[r].entity] +=
          1.0 / static_cast<double>(r + 1);
    }
    result.per_symptom.push_back(std::move(diagnosis));
  }

  result.merged.reserve(fused.size());
  for (const auto& [entity, score] : fused)
    result.merged.push_back(RankedRootCause{entity, score});
  std::sort(result.merged.begin(), result.merged.end(),
            [](const RankedRootCause& a, const RankedRootCause& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.entity < b.entity;
            });
  return result;
}

}  // namespace murphy::core
