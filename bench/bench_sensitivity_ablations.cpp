// §6.8 sensitivity analysis + ablations of Murphy's design choices.
//
// Sweeps, on a fixed mix of interference and contention scenarios:
//  * B   — top-B neighbor-metric feature selection (paper: 5/10/20 within 3%)
//  * W   — Gibbs rounds during diagnosis (paper Fig. 8b: W=4 is the knee)
//  * samples — t-test sample count per side (paper uses 5000; fewer samples
//              trade power for runtime)
//  * alpha   — t-test significance
//  * slack   — resampled-subgraph slack (0 = strict shortest paths; this
//              repo's default 2 also resamples sibling entities)
//  * cf sigma — counterfactual magnitude in historical stddevs (paper: 2)
#include <cstdio>
#include <functional>

#include "bench/bench_util.h"
#include "src/common/strings.h"
#include "src/emulation/scenarios.h"
#include "src/eval/metrics.h"
#include "src/eval/runner.h"
#include "src/eval/tables.h"

using namespace murphy;

namespace {

struct CaseSet {
  std::vector<emulation::DiagnosisCase> cases;
};

CaseSet build_cases(std::size_t n_each) {
  CaseSet set;
  for (const auto& opts : emulation::interference_sweep(n_each, 41))
    set.cases.push_back(emulation::make_interference_case(opts));
  for (const auto& opts : emulation::contention_sweep(
           emulation::ContentionOptions::App::kHotelReservation, n_each, 4,
           43))
    set.cases.push_back(emulation::make_contention_case(opts));
  return set;
}

double recall_at_5(const CaseSet& set, const core::MurphyOptions& opts) {
  core::MurphyDiagnoser murphy(opts);
  eval::Accuracy acc;
  for (const auto& c : set.cases) acc.add(eval::run_case(murphy, c));
  return acc.top_k(5);
}

}  // namespace

int main() {
  bench::print_header(
      "Sensitivity analysis & ablations (recall@5, mixed scenario set)",
      "B in {5,10,20} within ~3%; W=4 at the knee; accuracy saturates with "
      "sample count; Murphy robust to alpha around 0.01");

  const std::size_t n_each = bench::scaled(4, 16);
  std::fprintf(stderr, "building %zu cases...\n", 2 * n_each);
  const auto set = build_cases(n_each);
  bench::stamp_workload({"hotel-reservation",
                         set.cases.front().entities.services.size(),
                         set.cases.front().entities.nodes.size(),
                         /*sweep seed=*/41, "interference"});
  bench::stamp_workload({"hotel-reservation",
                         set.cases[n_each].entities.services.size(),
                         set.cases[n_each].entities.nodes.size(),
                         /*sweep seed=*/43, "contention"});
  const std::size_t samples = bench::full_scale() ? 400 : 120;

  core::MurphyOptions base;
  base.sampler.num_samples = samples;

  eval::Table table({"knob", "setting", "recall@5"});
  const auto sweep = [&](const char* knob, auto&& values, auto&& apply) {
    for (const auto v : values) {
      core::MurphyOptions opts = base;
      apply(opts, v);
      table.add_row({knob, format_double(static_cast<double>(v), 3),
                     format_double(recall_at_5(set, opts), 2)});
      std::fprintf(stderr, "  %s=%g done\n", knob, static_cast<double>(v));
    }
  };

  sweep("top-B features", std::vector<int>{5, 10, 20},
        [](core::MurphyOptions& o, int v) {
          o.training.top_b = static_cast<std::size_t>(v);
        });
  sweep("gibbs rounds W", std::vector<int>{1, 2, 4, 8},
        [](core::MurphyOptions& o, int v) {
          o.sampler.gibbs_rounds = static_cast<std::size_t>(v);
        });
  sweep("samples/side", std::vector<int>{30, 120, 400},
        [](core::MurphyOptions& o, int v) {
          o.sampler.num_samples = static_cast<std::size_t>(v);
        });
  sweep("t-test alpha", std::vector<double>{0.10, 0.01, 0.001},
        [](core::MurphyOptions& o, double v) { o.sampler.significance = v; });
  sweep("path slack", std::vector<int>{0, 1, 2, 4},
        [](core::MurphyOptions& o, int v) {
          o.sampler.path_slack = static_cast<std::size_t>(v);
        });
  sweep("counterfactual sigmas", std::vector<double>{1.0, 2.0, 4.0},
        [](core::MurphyOptions& o, double v) {
          o.sampler.counterfactual_sigmas = v;
        });
  sweep("ridge l2", std::vector<double>{1.0, 25.0, 100.0},
        [](core::MurphyOptions& o, double v) { o.training.predictor.l2 = v; });

  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: flat across top-B (a few %%); W>=2 needed for "
              "multi-hop causes; recall stable for alpha in [0.001, 0.1]; "
              "slack>=1 required when siblings share the signal; moderate "
              "ridge regularization beats near-zero (collinearity)\n");
  murphy::bench::write_bench_json("sensitivity_ablations");
  return 0;
}
