// The enterprise incident dataset (Table 1 of the paper).
//
// Thirteen scripted incidents matching the observed-problem descriptions of
// Table 1, each built on a fresh enterprise topology: a set of perturbations
// (the injected cause plus realistic confounders), a problematic symptom
// handed to the diagnosis schemes, and an operator-style ground truth.
//
// Two fidelity notes taken from §5.1.1/§6.2: the ground truth is what the
// *operator's resolution* touched, which is not always the injected cause
// (incident 10's operators rebooted the nodes even though heavy flows were
// the trigger); and two incidents (2 and 13) are designated "calibration"
// incidents with fully certain ground truth, used to calibrate every
// scheme's thresholds for the FP comparison.
#pragma once

#include <string>
#include <vector>

#include "src/enterprise/dynamics.h"
#include "src/enterprise/topology.h"

namespace murphy::enterprise {

struct EnterpriseIncident {
  int number = 0;              // 1..13, matching Table 1 rows
  std::string description;     // "observed problem" column
  Topology topo;               // includes populated MonitoringDb

  EntityId symptom_entity;
  std::string symptom_metric;

  // Operator-decided ground truth (may differ from injected cause).
  std::vector<EntityId> ground_truth;
  // Entities actually perturbed (diagnostics for tests).
  std::vector<EntityId> injected;

  TimeIndex incident_start = 0;
  TimeIndex incident_end = 0;

  // True for the two incidents with certain ground truth (§6.2 footnote).
  bool calibration = false;
};

struct IncidentDatasetOptions {
  // Topology scale for each incident's environment. Defaults give graphs of
  // roughly a thousand entities; the Fig. 1 incident (number 2) uses a
  // larger crawler/frontend/backend arrangement.
  TopologyOptions topology;
  DynamicsOptions dynamics;
  std::uint64_t seed = 2023;
};

// Builds all 13 incidents. Incident numbers/descriptions follow Table 1.
[[nodiscard]] std::vector<EnterpriseIncident> make_incident_dataset(
    const IncidentDatasetOptions& opts = {});

// Builds just incident `number` (1-based); useful for examples and tests.
[[nodiscard]] EnterpriseIncident make_incident(
    int number, const IncidentDatasetOptions& opts = {});

}  // namespace murphy::enterprise
