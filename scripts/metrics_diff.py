#!/usr/bin/env python3
"""Diff two metrics-registry JSON snapshots instrument by instrument.

Usage: scripts/metrics_diff.py [--prefix P]... [--ignore P]... \
           [--rel-tol R] <a> <b>

Accepts any of the snapshot shapes the repo emits:
  * a raw registry object        {"name": {"kind": ..., "value": ...}, ...}
  * a BENCH_*.json wrapper       {..., "metrics": {<registry object>}}
  * a murphyd STATS line         "OK ... metrics={<registry object>}"
    (or a whole murphyd transcript — the LAST metrics= line wins)

--prefix restricts the comparison to instruments whose name starts with any
given prefix (repeatable; default: everything). --ignore drops instruments
whose name starts with any given prefix AFTER --prefix selection; wall-clock
namespaces (*_latency., *_wall., phase., service.) legitimately vary run to
run, so CI determinism checks pass e.g.
    --prefix watchdog. --prefix ingest.
Counters and gauges compare by value; histograms by count and sum. Exit 0
when everything selected matches exactly, 1 on any difference, 2 on usage
or parse errors.

--rel-tol R admits numeric values within relative tolerance R
(|a-b| <= R * max(|a|, |b|)): fast-inference runs are statistically, not
bitwise, equivalent, so CI gates their timing/score metrics approximately
while a second exact invocation (no --rel-tol) still guards the
deterministic prefixes. Default 0.0 = exact comparison.
"""
import json
import sys


def load_registry(path):
    with open(path) as f:
        text = f.read()
    # murphyd transcript: take the last "metrics={...}" payload on any line.
    if "metrics={" in text and not text.lstrip().startswith("{"):
        start = text.rindex("metrics={") + len("metrics=")
        depth = 0
        for i in range(start, len(text)):
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
                if depth == 0:
                    return json.loads(text[start : i + 1])
        raise ValueError(f"{path}: unterminated metrics= object")
    doc = json.loads(text)
    if "metrics" in doc and isinstance(doc["metrics"], dict):
        return doc["metrics"]  # BENCH_*.json wrapper
    return doc


def key_stats(entry):
    if entry.get("kind") == "histogram":
        return {"count": entry.get("count"), "sum": entry.get("sum")}
    return {"value": entry.get("value")}


def within_tolerance(a, b, rel_tol):
    """Exact match, or — for two finite numbers — within relative tolerance."""
    if a == b:
        return True
    if rel_tol <= 0.0:
        return False
    if not all(isinstance(v, (int, float)) and not isinstance(v, bool)
               for v in (a, b)):
        return False
    return abs(a - b) <= rel_tol * max(abs(a), abs(b))


def main():
    prefixes, ignores, paths = [], [], []
    rel_tol = 0.0
    argv = sys.argv[1:]
    i = 0
    while i < len(argv):
        if argv[i] == "--prefix" and i + 1 < len(argv):
            prefixes.append(argv[i + 1])
            i += 2
        elif argv[i] == "--ignore" and i + 1 < len(argv):
            ignores.append(argv[i + 1])
            i += 2
        elif argv[i] == "--rel-tol" and i + 1 < len(argv):
            try:
                rel_tol = float(argv[i + 1])
            except ValueError:
                print(f"bad --rel-tol: {argv[i + 1]}", file=sys.stderr)
                return 2
            i += 2
        else:
            paths.append(argv[i])
            i += 1
    if len(paths) != 2:
        print(
            f"usage: {sys.argv[0]} [--prefix P]... [--ignore P]..."
            f" [--rel-tol R] <a> <b>",
            file=sys.stderr,
        )
        return 2

    def selected(name):
        if prefixes and not any(name.startswith(p) for p in prefixes):
            return False
        return not any(name.startswith(p) for p in ignores)

    try:
        a = {k: v for k, v in load_registry(paths[0]).items() if selected(k)}
        b = {k: v for k, v in load_registry(paths[1]).items() if selected(k)}
    except (ValueError, OSError, json.JSONDecodeError) as e:
        print(f"load failed: {e}", file=sys.stderr)
        return 2
    if not a and not b:
        print("no instruments selected — wrong snapshot or prefix?",
              file=sys.stderr)
        return 2

    bad = 0
    for name in sorted(set(a) | set(b)):
        if name not in a or name not in b:
            where = paths[0] if name in a else paths[1]
            print(f"MISSING {name}: only in {where}")
            bad += 1
            continue
        sa, sb = key_stats(a[name]), key_stats(b[name])
        if any(not within_tolerance(sa.get(k), sb.get(k), rel_tol)
               for k in set(sa) | set(sb)):
            print(f"DIFF {name}: {sa} != {sb}")
            bad += 1
    if bad:
        print(f"{bad} instrument(s) differ", file=sys.stderr)
        return 1
    print(f"{len(a)} instruments match")
    return 0


if __name__ == "__main__":
    sys.exit(main())
