// Socket front end for the murphyd line protocol (DESIGN.md §12).
//
// One epoll event-loop thread serves a TCP listener (loopback) and/or a
// unix-domain listener. Requests are newline-framed and fully pipelined: a
// client may write any number of commands without waiting, immediate verbs
// are answered in order, and DIAGNOSE completions are delivered by the
// worker that finishes them — out of order across a connection's in-flight
// window, correlated by the protocol's '#tag' prefix (protocol.h). The
// blocking `fut.get()` of the stdio loop never happens here; the event loop
// thread only parses, dispatches, and shuttles bytes.
//
// Backpressure (never unbounded memory):
//   * per-connection in-flight limit — commands beyond
//     `max_inflight_per_conn` outstanding responses are answered
//     immediately with an `ERR rejected_conn_inflight_full` line, the
//     connection-level analogue of the service queue's kRejectedQueueFull;
//   * per-connection write-buffer cap — a connection whose unread responses
//     exceed `max_outbuf_bytes` stops being read (natural TCP backpressure)
//     until the client drains it, so the buffer is bounded by
//     max_outbuf_bytes + max_inflight_per_conn responses;
//   * line-length cap — an unterminated or oversized command line answers
//     `ERR line too long` and closes the connection (framing is lost);
//   * connection cap — accepts beyond `max_connections` are answered
//     `ERR server full` and closed.
//
// Graceful drain: shutdown() stops accepting, stops reading every
// connection, lets the already-admitted diagnoses settle (their completions
// still deliver), flushes each connection's write buffer and closes it. A
// connection that will not drain within `drain_timeout_ms` is force-closed.
// shutdown() joins the loop thread and is idempotent; the destructor calls
// it.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "src/service/protocol.h"

namespace murphy::service {

struct NetServerOptions {
  // Unix-domain listener path; empty = no unix listener. An existing
  // socket file at the path is replaced.
  std::string unix_path;
  // TCP listener port on 127.0.0.1; -1 = no TCP listener, 0 = ephemeral
  // (read the bound port back with tcp_port()).
  int tcp_port = -1;
  std::size_t max_connections = 64;
  // Outstanding responses (commands dispatched, response not yet queued)
  // per connection before ERR rejected_conn_inflight_full.
  std::size_t max_inflight_per_conn = 32;
  std::size_t max_line_bytes = 64 * 1024;
  std::size_t max_outbuf_bytes = 1 << 20;
  // Force-close bound for shutdown()'s graceful drain.
  long drain_timeout_ms = 10000;
};

class NetServer {
 public:
  // The protocol (and everything behind it) must outlive the server's
  // shutdown(); the completion plumbing itself is lifetime-safe past that
  // (late sinks land in a refcounted queue, not in the server).
  NetServer(Protocol& proto, NetServerOptions opts);
  ~NetServer();
  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  // Binds the configured listeners and spawns the loop thread. False (with
  // *error set) on any bind/listen failure; no partial listeners survive.
  [[nodiscard]] bool start(std::string* error = nullptr);

  // Actual bound TCP port (resolves port 0), -1 when no TCP listener.
  [[nodiscard]] int tcp_port() const { return bound_tcp_port_; }

  // Graceful drain, then joins the loop thread. Safe to call repeatedly
  // and without start().
  void shutdown();

  // Live connection count / total ever accepted (tests, STATS forensics).
  [[nodiscard]] std::size_t active_connections() const {
    return active_.load();
  }
  [[nodiscard]] std::uint64_t accepted_connections() const {
    return accepted_.load();
  }

 private:
  struct Conn;
  struct CompletionQueue;
  class Loop;

  Protocol& proto_;
  NetServerOptions opts_;
  int bound_tcp_port_ = -1;
  int tcp_listen_fd_ = -1;
  int unix_listen_fd_ = -1;
  int epoll_fd_ = -1;
  std::shared_ptr<CompletionQueue> cq_;
  std::thread loop_thread_;
  bool started_ = false;
  std::atomic<bool> draining_{false};
  std::atomic<std::size_t> active_{0};
  std::atomic<std::uint64_t> accepted_{0};

  void run_loop();
};

}  // namespace murphy::service
