# Empty dependencies file for murphy_eval.
# This may be replaced when dependencies are built.
