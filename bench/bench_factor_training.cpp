// Factor-training microbenchmark: cross-symptom cache off vs on.
//
// A batch diagnosis trains one FactorSet per symptom, and the symptoms of
// one incident share most of their relationship-graph neighborhoods — so
// without sharing, the same (entity, kind, in-neighbor-set) conditional is
// re-scored and re-fit once per symptom. This bench isolates the training
// phase (graph build + MetricSpace + FactorSet) over a set of symptom seeds
// from one enterprise incident and times it three ways:
//
//   cold   — no caches (the pre-cache engine's behaviour);
//   shared — WindowStats + FactorCache shared across the symptom set, as
//            BatchDiagnoser wires it (first pass trains misses);
//   warm   — a second pass over the same generation (everything hits, the
//            repeat-diagnosis case).
//
// The trained conditionals are bitwise identical in all three modes (the
// concurrency/cache tests assert this); only the work changes. The shared-
// mode target for this PR is >= 5x over cold.
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/batch.h"
#include "src/core/factor_cache.h"
#include "src/core/symptom_finder.h"
#include "src/enterprise/incidents.h"
#include "src/stats/window_stats.h"

using namespace murphy;

namespace {

double train_all(const telemetry::MonitoringDb& db,
                 std::span<const core::Symptom> symptoms,
                 TimeIndex train_begin, TimeIndex train_end,
                 stats::WindowStats* ws, core::FactorCache* fc,
                 std::size_t* factors_out, bool epoch_keys = false) {
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t factors = 0;
  for (const core::Symptom& symptom : symptoms) {
    const std::vector<EntityId> seed_vec{symptom.entity};
    const auto graph = graph::RelationshipGraph::build(db, seed_vec);
    const core::MetricSpace space(db, graph);
    core::FactorTrainingOptions topts;
    topts.window_stats = ws;
    topts.factor_cache = fc;
    topts.epoch_keys = epoch_keys;
    const core::FactorSet factors_set(db, graph, space, train_begin,
                                      train_end, topts);
    factors += factors_set.size();
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (factors_out != nullptr) *factors_out = factors;
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

// Streams one fresh value onto every series of ~`fraction` of the entities
// (collectors report all metrics of an entity together, so real churn is
// entity-clustered). Returns the number of series touched.
std::size_t churn_series(telemetry::MonitoringDb& db, double fraction,
                         TimeIndex t) {
  const auto entities = db.all_entities();
  const std::size_t stride = static_cast<std::size_t>(1.0 / fraction);
  std::size_t touched = 0;
  for (std::size_t i = 0; i < entities.size(); i += stride) {
    for (const MetricKindId kind : db.metrics().kinds_of(entities[i])) {
      const telemetry::TimeSeries* s = db.metrics().find(entities[i], kind);
      const double v = s->value_or(t, 0.0) + 0.125;  // bitwise-new value
      db.metrics().upsert_cell(entities[i], kind, t, v);
      ++touched;
    }
  }
  return touched;
}

}  // namespace

int main() {
  bench::print_header(
      "Factor-training microbench: cross-symptom factor reuse",
      "engineering experiment (no paper figure) — batch training cost with "
      "the window-moment and factor caches off vs shared");

  enterprise::IncidentDatasetOptions opts;
  if (!bench::full_scale()) {
    opts.topology.num_apps = 8;
    opts.topology.hosts = 12;
    opts.topology.tors = 3;
    opts.topology.ports_per_tor = 8;
    opts.topology.datastores = 4;
    opts.dynamics.slices = 168;
  }
  const auto incident = enterprise::make_incident(2, opts);
  bench::stamp_workload({"enterprise-incidents", opts.topology.num_apps,
                         opts.topology.hosts, opts.seed, "incident-2"});
  const telemetry::MonitoringDb& db = incident.topo.db;
  const TimeIndex train_end = incident.incident_end;
  const TimeIndex train_begin = 0;

  // Symptom list: whatever find_symptoms flags on the incident's app at the
  // incident window — the exact shape diagnose_app feeds into a batch run.
  // Several symptoms name the same entity (one noisy VM trips cpu_util,
  // mem_util, and net_* at once), and same-entity symptoms share identical
  // relationship graphs, which is where cross-symptom reuse pays off.
  const AppId app = db.entity(incident.symptom_entity).app;
  core::SymptomFinderOptions fopts;
  fopts.max_symptoms = 32;
  const auto symptoms =
      core::find_symptoms(db, app, incident.incident_end - 1, fopts);
  std::size_t distinct = 0;
  {
    std::vector<EntityId> ents;
    for (const auto& s : symptoms) ents.push_back(s.entity);
    std::sort(ents.begin(), ents.end());
    distinct = static_cast<std::size_t>(
        std::unique(ents.begin(), ents.end()) - ents.begin());
  }
  std::printf(
      "incident 2, %zu symptoms over %zu distinct entities, window "
      "[%zu, %zu)\n\n",
      symptoms.size(), distinct, static_cast<std::size_t>(train_begin),
      static_cast<std::size_t>(train_end));

  const std::size_t reps = bench::scaled(3, 5);
  double cold_ms = 1e300, shared_ms = 1e300, warm_ms = 1e300;
  std::size_t factors = 0;
  for (std::size_t r = 0; r < reps; ++r) {
    cold_ms = std::min(
        cold_ms, train_all(db, symptoms, train_begin, train_end, nullptr,
                           nullptr, &factors));

    stats::WindowStats ws;
    core::FactorCache fc;
    ws.reset(1);
    fc.reset(1);
    shared_ms =
        std::min(shared_ms, train_all(db, symptoms, train_begin, train_end,
                                      &ws, &fc, nullptr));
    warm_ms = std::min(warm_ms, train_all(db, symptoms, train_begin,
                                          train_end, &ws, &fc, nullptr));
    std::fprintf(stderr, "  rep %zu done\n", r + 1);
  }

  std::printf("conditionals trained per pass: %zu\n", factors);
  std::printf("cold   (no caches)      : %9.1f ms\n", cold_ms);
  std::printf("shared (first pass)     : %9.1f ms   %.1fx\n", shared_ms,
              cold_ms / shared_ms);
  std::printf("warm   (repeat pass)    : %9.1f ms   %.1fx\n", warm_ms,
              cold_ms / warm_ms);
  std::printf("\ntarget: shared >= 5x cold (this PR's acceptance bar)\n");

  auto& m = obs::global_metrics();
  m.gauge("bench.cold_ms")->set(cold_ms);
  m.gauge("bench.shared_ms")->set(shared_ms);
  m.gauge("bench.warm_ms")->set(warm_ms);
  m.gauge("bench.shared_speedup")->set(cold_ms / shared_ms);
  m.gauge("bench.warm_speedup")->set(cold_ms / warm_ms);

  // --- streaming churn: epoch-keyed vs global invalidation ------------------
  // The long-running service's case for FactorTrainingOptions::epoch_keys:
  // after ~1% of series receive a streamed value, a generation keyed on
  // data_version() is worthless (every retrain misses), while epoch keys
  // retire only the factors whose neighborhood read a touched series.
  std::printf("\nstreaming churn (~1%% of series written between passes):\n");
  double epoch_rate = 0.0, global_rate = 0.0;
  {
    telemetry::MonitoringDb churn_db = db;  // mutable copy, fresh uid
    stats::WindowStats ws;
    core::FactorCache fc;
    // Epoch mode: fingerprint over identity + STRUCTURE only (the service's
    // wiring); value churn keeps the generation alive.
    const auto fp = [&] {
      return core::hash_mix(core::hash_mix(0xBE9C11u, churn_db.uid()),
                            churn_db.structural_data_version());
    };
    ws.reset(fp());
    fc.reset(fp());
    train_all(churn_db, symptoms, train_begin, train_end, &ws, &fc, nullptr,
              /*epoch_keys=*/true);
    // Every pass-1 miss is one unique factor; a pass-2 miss is a factor the
    // churn invalidated. retained = the fraction that did NOT retrain —
    // the raw hit rate would flatter both modes with intra-pass
    // cross-symptom reuse, which is not what invalidation granularity is
    // about.
    const std::uint64_t unique = fc.misses();
    const std::size_t touched = churn_series(churn_db, 0.01, train_end - 1);
    ws.reset(fp());
    fc.reset(fp());
    const std::uint64_t h0 = fc.hits(), m0 = fc.misses();
    train_all(churn_db, symptoms, train_begin, train_end, &ws, &fc, nullptr,
              /*epoch_keys=*/true);
    const std::uint64_t h = fc.hits() - h0, mm = fc.misses() - m0;
    epoch_rate =
        unique == 0
            ? 0.0
            : 1.0 - static_cast<double>(mm) / static_cast<double>(unique);
    std::printf("  %zu series touched, %llu unique factors\n", touched,
                static_cast<unsigned long long>(unique));
    std::printf(
        "  epoch-keyed : %5.1f%% factors retained (%llu retrained), "
        "%5.1f%% lookup hits\n",
        100.0 * epoch_rate, static_cast<unsigned long long>(mm),
        100.0 * static_cast<double>(h) / static_cast<double>(h + mm));
  }
  {
    telemetry::MonitoringDb churn_db = db;
    stats::WindowStats ws;
    core::FactorCache fc;
    // Global mode: BatchDiagnoser's fingerprint includes data_version(), so
    // the churn resets the whole generation.
    const auto fp = [&] {
      return core::hash_mix(core::hash_mix(0xBE9C11u, churn_db.uid()),
                            churn_db.data_version());
    };
    ws.reset(fp());
    fc.reset(fp());
    train_all(churn_db, symptoms, train_begin, train_end, &ws, &fc, nullptr);
    const std::uint64_t unique = fc.misses();
    churn_series(churn_db, 0.01, train_end - 1);
    ws.reset(fp());
    fc.reset(fp());
    const std::uint64_t m0 = fc.misses();
    train_all(churn_db, symptoms, train_begin, train_end, &ws, &fc, nullptr);
    const std::uint64_t mm = fc.misses() - m0;
    global_rate =
        unique == 0
            ? 0.0
            : 1.0 - static_cast<double>(mm) / static_cast<double>(unique);
    std::printf(
        "  global      : %5.1f%% factors retained (%llu retrained)\n",
        100.0 * global_rate, static_cast<unsigned long long>(mm));
  }
  std::printf(
      "\ntarget: epoch-keyed retains >= 80%% of factors at 1%% churn "
      "(global: ~0%%)\n");
  m.gauge("bench.churn_epoch_retained")->set(epoch_rate);
  m.gauge("bench.churn_global_retained")->set(global_rate);

  bench::write_bench_json("factor_training");
  return 0;
}
