file(REMOVE_RECURSE
  "CMakeFiles/murphy_baselines.dir/explainit.cpp.o"
  "CMakeFiles/murphy_baselines.dir/explainit.cpp.o.d"
  "CMakeFiles/murphy_baselines.dir/netmedic.cpp.o"
  "CMakeFiles/murphy_baselines.dir/netmedic.cpp.o.d"
  "CMakeFiles/murphy_baselines.dir/sage.cpp.o"
  "CMakeFiles/murphy_baselines.dir/sage.cpp.o.d"
  "libmurphy_baselines.a"
  "libmurphy_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/murphy_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
