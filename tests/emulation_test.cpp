// Tests for the microservice emulation substrate: app topologies, demand
// propagation, queueing behaviour, fault injection effects and the scenario
// builders' invariants.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/emulation/app_model.h"
#include "src/emulation/faults.h"
#include "src/emulation/scenarios.h"
#include "src/emulation/simulator.h"
#include "src/emulation/workload.h"
#include "src/graph/relationship_graph.h"
#include "src/stats/summary.h"

namespace murphy::emulation {
namespace {

TEST(AppModel, HotelReservationCensus) {
  const AppModel app = make_hotel_reservation();
  EXPECT_EQ(app.services.size(), 8u);
  EXPECT_EQ(app.containers.size(), 8u);
  EXPECT_EQ(app.nodes.size(), 7u);
  // 16 relationship-graph entities (services + containers), per §5.1.2.
  EXPECT_EQ(app.services.size() + app.containers.size(), 16u);
}

TEST(AppModel, SocialNetworkCensus) {
  const AppModel app = make_social_network();
  EXPECT_EQ(app.services.size(), 24u);
  // 57 total entities: services + containers + node.
  EXPECT_EQ(app.services.size() + app.containers.size() + app.nodes.size(),
            57u);
}

TEST(AppModel, DemandVectorPropagatesFanout) {
  const AppModel app = make_hotel_reservation();
  const auto frontend = app.find_service("frontend");
  const auto d = app.demand_vector(frontend);
  EXPECT_DOUBLE_EQ(d[frontend], 1.0);
  // search is called once per frontend request; geo once per search request.
  EXPECT_DOUBLE_EQ(d[app.find_service("search")], 1.0);
  EXPECT_DOUBLE_EQ(d[app.find_service("geo")], 1.0);
  // profile: direct (1.0) + via search (1.0 * 0.7) + via recommendation
  // (0.5 * 0.5).
  EXPECT_NEAR(d[app.find_service("profile")], 1.95, 1e-12);
  // rate: via search (1.0) + via recommendation (0.5 * 0.5).
  EXPECT_NEAR(d[app.find_service("rate")], 1.25, 1e-12);
  // user: direct 0.8 + via reservation 0.3*0.5.
  EXPECT_NEAR(d[app.find_service("user")], 0.95, 1e-12);
}

TEST(AppModel, CallTreeCoversReachableServicesOnly) {
  const AppModel app = make_hotel_reservation();
  const auto tree = app.call_tree(app.find_service("search"));
  // search -> geo, rate, profile. Nothing upstream.
  EXPECT_EQ(tree.size(), 4u);
  const auto t2 = app.call_tree(app.find_service("geo"));
  EXPECT_EQ(t2.size(), 1u);
}

TEST(Workload, StepLoadRampsAtGivenSlice) {
  Rng rng(1);
  const auto sched = step_load(100, 10.0, 200.0, 60, 40, 0.0, rng);
  EXPECT_NEAR(sched[59], 10.0, 1e-9);
  EXPECT_NEAR(sched[60], 200.0, 1e-9);
  EXPECT_NEAR(sched[99], 200.0, 1e-9);
}

TEST(Workload, BurstMultipliesWindow) {
  std::vector<double> sched(10, 5.0);
  add_burst(sched, 3, 2, 4.0);
  EXPECT_DOUBLE_EQ(sched[2], 5.0);
  EXPECT_DOUBLE_EQ(sched[3], 20.0);
  EXPECT_DOUBLE_EQ(sched[4], 20.0);
  EXPECT_DOUBLE_EQ(sched[5], 5.0);
}

TEST(Workload, DiurnalLoadOscillates) {
  Rng rng(2);
  const auto sched = diurnal_load(100, 50.0, 0.4, 100, 0.0, rng);
  const double hi = *std::max_element(sched.begin(), sched.end());
  const double lo = *std::min_element(sched.begin(), sched.end());
  EXPECT_GT(hi, 65.0);
  EXPECT_LT(lo, 35.0);
}

TEST(Faults, PressureOnlyDuringWindowAndTarget) {
  std::vector<Fault> faults{{FaultKind::kCpuStress, 2, 10, 5, 0.5}};
  EXPECT_DOUBLE_EQ(pressure_at(faults, 2, 4.0, 9).cpu_cores, 0.0);
  EXPECT_DOUBLE_EQ(pressure_at(faults, 2, 4.0, 10).cpu_cores, 2.0);
  EXPECT_DOUBLE_EQ(pressure_at(faults, 2, 4.0, 14).cpu_cores, 2.0);
  EXPECT_DOUBLE_EQ(pressure_at(faults, 2, 4.0, 15).cpu_cores, 0.0);
  EXPECT_DOUBLE_EQ(pressure_at(faults, 1, 4.0, 12).cpu_cores, 0.0);
}

TEST(Faults, MemAndDiskStressAlsoCostSomeCpu) {
  std::vector<Fault> mem{{FaultKind::kMemStress, 0, 0, 10, 0.8}};
  const auto pm = pressure_at(mem, 0, 2.0, 5);
  EXPECT_DOUBLE_EQ(pm.mem_fraction, 0.8);
  EXPECT_GT(pm.cpu_cores, 0.0);
  std::vector<Fault> disk{{FaultKind::kDiskStress, 0, 0, 10, 0.5}};
  const auto pd = pressure_at(disk, 0, 2.0, 5);
  EXPECT_DOUBLE_EQ(pd.disk_mbps, 50.0);
  EXPECT_GT(pd.cpu_cores, 0.0);
}

class SimulatorTest : public ::testing::Test {
 protected:
  static AppModel app_with_client(double rps, std::size_t slices) {
    AppModel app = make_hotel_reservation();
    Rng rng(3);
    ClientSpec c;
    c.name = "client";
    c.entry_service = app.find_service("frontend");
    c.rps_schedule = steady_load(slices, rps, 0.02, rng);
    app.clients.push_back(c);
    return app;
  }
};

TEST_F(SimulatorTest, PopulatesAllEntitiesAndMetrics) {
  const auto app = app_with_client(20.0, 60);
  SimOptions opts;
  opts.slices = 60;
  const auto res = simulate(app, {}, opts);
  EXPECT_EQ(res.entities.services.size(), 8u);
  EXPECT_EQ(res.entities.containers.size(), 8u);
  EXPECT_EQ(res.entities.nodes.size(), 7u);
  EXPECT_EQ(res.entities.clients.size(), 1u);
  // service latency + rate, container cpu/mem/disk/net, node cpu, client 2.
  EXPECT_EQ(res.db.metrics().series_count(),
            8u * 2 + 8u * 4 + 7u * 1 + 1u * 2);
  const auto axis = res.db.metrics().axis();
  EXPECT_EQ(axis.size(), 60u);
  EXPECT_DOUBLE_EQ(axis.interval(), 10.0);
}

TEST_F(SimulatorTest, LatencyIncreasesWithLoad) {
  SimOptions opts;
  opts.slices = 60;
  const auto light = simulate(app_with_client(10.0, 60), {}, opts);
  const auto heavy = simulate(app_with_client(300.0, 60), {}, opts);
  const double l_lat = stats::mean(light.client_latency[0]);
  const double h_lat = stats::mean(heavy.client_latency[0]);
  EXPECT_GT(h_lat, l_lat * 1.5);
}

TEST_F(SimulatorTest, CpuStressRaisesTargetUtilAndClientLatency) {
  SimOptions opts;
  opts.slices = 120;
  const auto app = app_with_client(30.0, 120);
  const ContainerIdx target =
      app.services[app.find_service("search")].container;
  std::vector<Fault> faults{{FaultKind::kCpuStress, target, 60, 60, 0.95}};
  const auto res = simulate(app, faults, opts);

  const auto& util = res.container_util[target];
  const double before = stats::mean(std::span(util).subspan(0, 60));
  const double during = stats::mean(std::span(util).subspan(60, 60));
  EXPECT_GT(during, before + 30.0);  // cpu% jump

  const auto& lat = res.client_latency[0];
  const double lat_before = stats::mean(std::span(lat).subspan(0, 60));
  const double lat_during = stats::mean(std::span(lat).subspan(60, 60));
  EXPECT_GT(lat_during, lat_before * 1.3);
}

TEST_F(SimulatorTest, NodeContentionCouplesColocatedContainers) {
  // reservation and user share node 6; stressing reservation's container
  // must inflate user's latency through the shared node.
  AppModel app = app_with_client(30.0, 120);
  const auto reserve_ctr =
      app.services[app.find_service("reservation")].container;
  const auto user_svc = app.find_service("user");
  ASSERT_EQ(app.containers[reserve_ctr].node,
            app.containers[app.services[user_svc].container].node);

  SimOptions opts;
  opts.slices = 120;
  std::vector<Fault> faults{
      {FaultKind::kCpuStress, reserve_ctr, 60, 60, 3.5}};
  const auto res = simulate(app, faults, opts);

  const auto* lat = res.db.metrics().find(
      res.entities.services[user_svc],
      res.db.catalog().find(telemetry::metrics::kLatency));
  ASSERT_NE(lat, nullptr);
  const auto w_before = lat->window(0, 60);
  const auto w_during = lat->window(60, 120);
  EXPECT_GT(stats::mean(w_during), stats::mean(w_before) * 1.2);
}

TEST_F(SimulatorTest, BidirectionalFlagControlsCycles) {
  const auto app = app_with_client(20.0, 30);
  SimOptions opts;
  opts.slices = 30;
  opts.bidirectional_call_edges = true;
  const auto cyc = simulate(app, {}, opts);
  const auto seeds = std::vector<EntityId>{cyc.entities.clients[0]};
  const auto g = graph::RelationshipGraph::build(cyc.db, seeds, 10);
  EXPECT_FALSE(g.is_dag());

  opts.bidirectional_call_edges = false;
  const auto dag = simulate(app, {}, opts);
  const auto seeds2 = std::vector<EntityId>{dag.entities.clients[0]};
  const auto g2 = graph::RelationshipGraph::build(dag.db, seeds2, 10);
  // Call and client edges are directed; container/node associations remain
  // bidirectional, so restrict to the service layer: caller->callee edges
  // must not form cycles.
  bool cycle_among_services = false;
  for (const auto& e : g2.edges()) {
    if (e.kind != telemetry::RelationKind::kCallerCallee) continue;
    // directed edge: reverse must not exist
    for (const auto& e2 : g2.edges()) {
      if (e2.kind == telemetry::RelationKind::kCallerCallee &&
          e2.src == e.dst && e2.dst == e.src)
        cycle_among_services = true;
    }
  }
  EXPECT_FALSE(cycle_among_services);
}

TEST(Scenarios, InterferenceCaseShape) {
  InterferenceOptions opts;
  opts.slices = 120;
  opts.ramp_at = 80;
  const auto c = make_interference_case(opts);
  EXPECT_EQ(c.symptom_entity, c.entities.clients[1]);
  EXPECT_EQ(c.root_cause, c.entities.clients[0]);
  EXPECT_GE(c.relaxed_set.size(), 3u);
  EXPECT_EQ(c.incident_start, 80u);

  // Victim latency must actually spike after the ramp.
  const auto* lat = c.db.metrics().find(
      c.symptom_entity, c.db.catalog().find(telemetry::metrics::kLatency));
  ASSERT_NE(lat, nullptr);
  const double before = stats::mean(lat->window(0, 80));
  const double after = stats::mean(lat->window(80, 120));
  EXPECT_GT(after, before * 1.3);
}

TEST(Scenarios, InterferenceSweepVariesIntensity) {
  const auto sweep = interference_sweep(32, 7);
  EXPECT_EQ(sweep.size(), 32u);
  stats::OnlineStats s;
  for (const auto& o : sweep) s.add(o.aggressor_high_rps);
  EXPECT_GT(s.max() - s.min(), 50.0);  // actually swept
}

TEST(Scenarios, ContentionCaseFaultsAServiceContainer) {
  ContentionOptions opts;
  opts.app = ContentionOptions::App::kSocialNetwork;
  opts.seed = 5;
  opts.slices = 240;
  const auto c = make_contention_case(opts);
  // Root cause is a container hosting at least one service.
  bool hosts_service = false;
  for (const auto e : c.relaxed_set)
    if (c.db.entity(e).type == telemetry::EntityType::kService)
      hosts_service = true;
  EXPECT_TRUE(hosts_service);
  EXPECT_EQ(c.db.entity(c.root_cause).type,
            telemetry::EntityType::kContainer);
  EXPECT_GT(c.incident_start, 0u);
  EXPECT_LE(c.incident_end, 240u);
}

TEST(Scenarios, ContentionSweepCoversAllFaultKinds) {
  const auto sweep =
      contention_sweep(ContentionOptions::App::kHotelReservation, 60, 4, 11);
  EXPECT_EQ(sweep.size(), 60u);
  bool cpu = false, mem = false, disk = false;
  for (const auto& o : sweep) {
    cpu |= o.fault == FaultKind::kCpuStress;
    mem |= o.fault == FaultKind::kMemStress;
    disk |= o.fault == FaultKind::kDiskStress;
  }
  EXPECT_TRUE(cpu && mem && disk);
}

TEST(Scenarios, DeterministicForSeed) {
  InterferenceOptions opts;
  opts.slices = 60;
  opts.ramp_at = 40;
  opts.seed = 99;
  const auto a = make_interference_case(opts);
  const auto b = make_interference_case(opts);
  const auto* la = a.db.metrics().find(
      a.symptom_entity, a.db.catalog().find(telemetry::metrics::kLatency));
  const auto* lb = b.db.metrics().find(
      b.symptom_entity, b.db.catalog().find(telemetry::metrics::kLatency));
  ASSERT_NE(la, nullptr);
  ASSERT_NE(lb, nullptr);
  for (std::size_t t = 0; t < 60; ++t)
    EXPECT_DOUBLE_EQ(la->value(t), lb->value(t));
}

// ---------------------------------------------------------------------------
// Incident planner: ground-truth labels must match the injected perturbation.

// Three services on three containers: s0 -> s2, s1 isolated. Client A
// enters s0 (its tree touches s2), client B enters s1 (it never sees s2).
AppModel tiny_incident_app() {
  AppModel app;
  app.name = "tiny";
  app.nodes.push_back(NodeSpec{"n0", 8.0});
  for (std::size_t i = 0; i < 3; ++i) {
    ContainerSpec c;
    c.name = "c" + std::to_string(i);
    c.cpu_limit_cores = 1.0;
    app.containers.push_back(c);
    ServiceSpec s;
    s.name = "s" + std::to_string(i);
    s.container = i;
    app.services.push_back(s);
  }
  app.call_edges.push_back(CallEdge{0, 2, 1.0});
  ClientSpec a;
  a.name = "clA";
  a.entry_service = 0;
  a.rps_schedule.assign(60, 10.0);
  ClientSpec b;
  b.name = "clB";
  b.entry_service = 1;
  b.rps_schedule.assign(60, 10.0);
  app.clients.push_back(a);
  app.clients.push_back(b);
  return app;
}

IncidentOptions incident_opts(IncidentKind kind) {
  IncidentOptions o;
  o.kind = kind;
  o.seed = 9;
  o.start = 20;
  o.duration = 20;
  o.intensity = 1.0;
  return o;
}

TEST(Incidents, CorrelatedLabelsEveryRoot) {
  const AppModel app = tiny_incident_app();
  IncidentOptions opts = incident_opts(IncidentKind::kCorrelatedMultiRoot);
  opts.num_roots = 2;
  const IncidentPlan plan = plan_incident(app, {0, 1, 2}, opts);
  ASSERT_EQ(plan.root_containers.size(), 2u);
  EXPECT_NE(plan.root_containers[0], plan.root_containers[1]);
  EXPECT_TRUE(plan.secondary_containers.empty());
  EXPECT_TRUE(plan.amplifications.empty());
  // One fault per root, every window inside the incident window.
  ASSERT_EQ(plan.faults.size(), 2u);
  for (std::size_t i = 0; i < plan.faults.size(); ++i) {
    EXPECT_EQ(plan.faults[i].target, plan.root_containers[i]);
    EXPECT_GE(plan.faults[i].start, plan.start);
    EXPECT_LE(plan.faults[i].start + plan.faults[i].duration, plan.end);
  }
}

TEST(Incidents, CascadeLabelsOriginOnly) {
  const AppModel app = tiny_incident_app();
  const IncidentPlan plan =
      plan_incident(app, {2}, incident_opts(IncidentKind::kCascade));
  // Ground truth is the origin alone; the upstream spread (c0 calls s2) is
  // secondary — an effect an operator would accept, never the answer.
  ASSERT_EQ(plan.root_containers.size(), 1u);
  EXPECT_EQ(plan.root_containers[0], 2u);
  ASSERT_EQ(plan.secondary_containers.size(), 1u);
  EXPECT_EQ(plan.secondary_containers[0], 0u);
  // Induced faults are delayed and weaker than the origin fault.
  ASSERT_EQ(plan.faults.size(), 2u);
  const Fault& origin = plan.faults[0];
  const Fault& induced = plan.faults[1];
  EXPECT_EQ(origin.target, 2u);
  EXPECT_EQ(induced.target, 0u);
  EXPECT_GT(induced.start, origin.start);
  EXPECT_LT(induced.intensity, origin.intensity);
}

TEST(Incidents, SlowBurnRampsIntensity) {
  const AppModel app = tiny_incident_app();
  const IncidentPlan plan =
      plan_incident(app, {1}, incident_opts(IncidentKind::kSlowBurn));
  ASSERT_EQ(plan.faults.size(), 1u);
  const Fault& f = plan.faults[0];
  EXPECT_GT(f.ramp_slices, 0u);
  // Intensity climbs through the ramp and plateaus at the configured level.
  EXPECT_DOUBLE_EQ(f.intensity_at(f.start - 1), 0.0);
  const double early = f.intensity_at(f.start);
  const double mid = f.intensity_at(f.start + f.ramp_slices / 2);
  const double late = f.intensity_at(f.start + f.ramp_slices);
  EXPECT_LT(early, mid);
  EXPECT_LT(mid, late);
  EXPECT_DOUBLE_EQ(late, f.intensity);
  // Ramp never overshoots: pressure mid-ramp is below the plateau's (mem
  // and disk faults both bleed CPU, so cpu_cores tracks either kind).
  std::vector<Fault> faults{f};
  EXPECT_LT(pressure_at(faults, 1, 1.0, f.start + 2).cpu_cores,
            pressure_at(faults, 1, 1.0, f.start + f.ramp_slices).cpu_cores);
}

TEST(Incidents, RetryStormAmplifiesOnlyTouchingClients) {
  const AppModel app = tiny_incident_app();
  const IncidentPlan plan =
      plan_incident(app, {2}, incident_opts(IncidentKind::kRetryStorm));
  ASSERT_EQ(plan.root_containers.size(), 1u);
  EXPECT_EQ(plan.root_containers[0], 2u);
  // Only client A's call tree reaches c2; client B must not retry.
  ASSERT_EQ(plan.amplifications.size(), 1u);
  const ClientAmplification& amp = plan.amplifications[0];
  EXPECT_EQ(amp.client, 0u);
  EXPECT_GT(amp.start, plan.start) << "timeouts fire before retries";
  EXPECT_GT(amp.factor, 1.0);

  // apply_amplifications scales exactly the windowed slices of that client.
  AppModel amplified = app;
  apply_amplifications(amplified, plan.amplifications);
  for (TimeIndex t = 0; t < 60; ++t) {
    const bool in_window = t >= amp.start && t < amp.start + amp.duration;
    EXPECT_DOUBLE_EQ(amplified.clients[0].rps_schedule[t],
                     in_window ? 10.0 * amp.factor : 10.0);
    EXPECT_DOUBLE_EQ(amplified.clients[1].rps_schedule[t], 10.0);
  }
}

TEST(Incidents, PlansAreSeedDeterministic) {
  const AppModel app = tiny_incident_app();
  for (const IncidentKind kind :
       {IncidentKind::kSingleContention, IncidentKind::kCorrelatedMultiRoot,
        IncidentKind::kSlowBurn, IncidentKind::kRetryStorm,
        IncidentKind::kCascade}) {
    const IncidentPlan a = plan_incident(app, {0, 1, 2}, incident_opts(kind));
    const IncidentPlan b = plan_incident(app, {0, 1, 2}, incident_opts(kind));
    EXPECT_EQ(a.root_containers, b.root_containers);
    EXPECT_EQ(a.secondary_containers, b.secondary_containers);
    ASSERT_EQ(a.faults.size(), b.faults.size());
    for (std::size_t i = 0; i < a.faults.size(); ++i) {
      EXPECT_EQ(a.faults[i].target, b.faults[i].target);
      EXPECT_EQ(a.faults[i].start, b.faults[i].start);
      EXPECT_DOUBLE_EQ(a.faults[i].intensity, b.faults[i].intensity);
    }
  }
}

}  // namespace
}  // namespace murphy::emulation
