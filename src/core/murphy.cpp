#include "src/core/murphy.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <optional>

#include "src/common/thread_pool.h"
#include "src/core/explain.h"

namespace murphy::core {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

TimeIndex recent_config_window_begin(TimeIndex train_begin,
                                     TimeIndex train_end, TimeIndex now) {
  const TimeIndex span = train_end > train_begin ? train_end - train_begin : 0;
  // ~10% of the training range, but never an empty window: with a short
  // range (span < 10) the old `span / 10` arithmetic degenerated to a
  // zero-length window that silently dropped every change before `now`.
  const TimeIndex window = std::max<TimeIndex>(1, span / 10);
  return now > window ? now - window : 0;  // clamp, TimeIndex is unsigned
}

MurphyDiagnoser::MurphyDiagnoser(MurphyOptions opts) : opts_(opts) {}

DiagnosisResult MurphyDiagnoser::diagnose(const DiagnosisRequest& request) {
  assert(request.db != nullptr);
  const telemetry::MonitoringDb& db = *request.db;
  DiagnosisResult result;
  const auto t_start = Clock::now();

  // 1. Relationship graph from the symptom entity.
  const std::vector<EntityId> seeds{request.symptom_entity};
  const auto graph = graph::RelationshipGraph::build(
      db, seeds, request.max_hops, opts_.max_graph_nodes);
  const auto symptom_node = graph.index_of(request.symptom_entity);
  if (!symptom_node) return result;

  const MetricSpace space(db, graph);
  const auto kind = db.catalog().find(request.symptom_metric);
  if (!kind.valid()) return result;
  const auto symptom_var = space.find(request.symptom_entity, kind);
  if (!symptom_var) return result;
  result.timings.graph_ms = ms_since(t_start);

  // 2. Online training on [train_begin, train_end).
  const auto t_train = Clock::now();
  FactorTrainingOptions topts = opts_.training;
  topts.seed = opts_.seed;
  topts.num_threads = opts_.num_threads;
  const FactorSet factors(db, graph, space, request.train_begin,
                          request.train_end, topts);
  result.timings.training_ms = ms_since(t_train);

  // 3. Candidate pruning.
  const auto t_search = Clock::now();
  const auto state = space.snapshot(db, request.now);
  const bool symptom_high =
      state[*symptom_var] >=
      factors.conditional(*symptom_var).robust_center();

  CandidateSearchOptions sopts = opts_.search;
  sopts.thresholds = opts_.thresholds;
  const auto candidates = candidate_search(db, graph, space, factors, state,
                                           *symptom_node, sopts);
  result.timings.search_ms = ms_since(t_search);

  // 4. Counterfactual evaluation of each candidate. Candidates are
  // independent, so evaluate them in parallel; each gets its own RNG stream
  // derived from (seed, candidate), which makes the verdicts — and hence the
  // whole diagnosis — bitwise identical at every thread count.
  const auto t_infer = Clock::now();
  SamplerOptions smp = opts_.sampler;
  smp.seed = opts_.seed ^ 0x5EEDULL;
  const CounterfactualSampler sampler(graph, space, factors, smp);

  struct Accepted {
    graph::NodeIndex node;
    double anomaly;
  };
  std::vector<std::optional<Accepted>> verdicts(candidates.size());
  parallel_for(opts_.num_threads, candidates.size(), [&](std::size_t i) {
    const graph::NodeIndex cand = candidates[i];
    const NodeAnomaly anomaly = node_anomaly(factors, space, cand, state);
    if (cand == *symptom_node) {
      // The symptom entity itself is a root-cause candidate when its own
      // anomaly is strong (self-inflicted problems); counterfactualizing it
      // against itself is meaningless, so accept on anomaly alone.
      if (anomaly.score > sopts.z_min)
        verdicts[i] = Accepted{cand, anomaly.rank_score};
      return;
    }
    Rng rng(mix_seed(smp.seed, cand));
    const auto verdict =
        sampler.evaluate(cand, anomaly.driver, *symptom_node, *symptom_var,
                         state, symptom_high, rng);
    if (verdict.is_root_cause)
      verdicts[i] = Accepted{cand, anomaly.rank_score};
  });
  std::vector<Accepted> accepted;
  for (const auto& v : verdicts)
    if (v) accepted.push_back(*v);
  result.timings.inference_ms = ms_since(t_infer);

  // 5. Rank by anomaly score (most anomalous first).
  std::sort(accepted.begin(), accepted.end(),
            [](const Accepted& a, const Accepted& b) {
              if (a.anomaly != b.anomaly) return a.anomaly > b.anomaly;
              return a.node < b.node;
            });

  // 6. Labels + explanation chains.
  const auto t_explain = Clock::now();
  std::vector<EntityLabel> labels(graph.node_count());
  parallel_for(opts_.num_threads, graph.node_count(), [&](std::size_t n) {
    labels[n] =
        label_node(db, space, factors, n, state, opts_.thresholds);
  });

  for (const Accepted& a : accepted) {
    result.causes.push_back(
        RankedRootCause{graph.entity_of(a.node), a.anomaly});
    const auto path = explanation_path(graph, labels, a.node, *symptom_node);
    result.explanations.push_back(
        render_explanation(db, graph, labels, path));
  }
  result.timings.explain_ms = ms_since(t_explain);

  // Surface configuration changes in the recent window (~10% of the
  // training range, i.e. the stretch that likely contains the incident).
  result.recent_config_changes = db.config_events().in_window(
      recent_config_window_begin(request.train_begin, request.train_end,
                                 request.now),
      request.now + 1);
  result.timings.total_ms = ms_since(t_start);
  return result;
}

}  // namespace murphy::core
