file(REMOVE_RECURSE
  "libmurphy_eval.a"
)
