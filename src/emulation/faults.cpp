#include "src/emulation/faults.h"

#include <algorithm>
#include <cassert>

#include "src/common/rng.h"

namespace murphy::emulation {

std::string_view fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kCpuStress: return "cpu_stress";
    case FaultKind::kMemStress: return "mem_stress";
    case FaultKind::kDiskStress: return "disk_stress";
  }
  return "unknown";
}

double Fault::intensity_at(TimeIndex t) const {
  if (!active_at(t)) return 0.0;
  if (ramp_slices == 0) return intensity;
  const std::size_t into = t - start;
  if (into >= ramp_slices) return intensity;
  // Linear ramp; the +1 keeps the first slice nonzero so the fault window
  // and the perturbation window coincide exactly.
  return intensity * static_cast<double>(into + 1) /
         static_cast<double>(ramp_slices);
}

ContainerPressure pressure_at(const std::vector<Fault>& faults,
                              ContainerIdx container, double cpu_limit_cores,
                              TimeIndex t) {
  ContainerPressure p;
  for (const Fault& f : faults) {
    if (f.target != container || !f.active_at(t)) continue;
    const double intensity = f.intensity_at(t);
    switch (f.kind) {
      case FaultKind::kCpuStress:
        p.cpu_cores += intensity * cpu_limit_cores;
        break;
      case FaultKind::kMemStress:
        p.mem_fraction += intensity;
        // Memory pressure causes paging: page faults and reclaim burn a
        // large share of the container's CPU budget, which is what makes
        // stress-ng --vm degrade co-located request serving.
        p.cpu_cores += 0.7 * intensity * cpu_limit_cores;
        break;
      case FaultKind::kDiskStress:
        p.disk_mbps += intensity * 100.0;
        // IO-wait and kernel block-layer work steal substantial CPU.
        p.cpu_cores += 0.6 * intensity * cpu_limit_cores;
        break;
    }
  }
  return p;
}

std::string_view incident_kind_name(IncidentKind k) {
  switch (k) {
    case IncidentKind::kSingleContention: return "single_contention";
    case IncidentKind::kCorrelatedMultiRoot: return "correlated_multi_root";
    case IncidentKind::kSlowBurn: return "slow_burn";
    case IncidentKind::kRetryStorm: return "retry_storm";
    case IncidentKind::kCascade: return "cascade";
  }
  return "unknown";
}

namespace {

// Containers of the services one hop UPSTREAM of any service hosted on
// `origin` — the callers whose queues back up when the origin browns out.
std::vector<ContainerIdx> upstream_containers(const AppModel& app,
                                              ContainerIdx origin) {
  std::vector<ContainerIdx> out;
  for (const CallEdge& e : app.call_edges) {
    if (app.services[e.callee].container != origin) continue;
    const ContainerIdx c = app.services[e.caller].container;
    if (c == origin) continue;
    if (std::find(out.begin(), out.end(), c) == out.end()) out.push_back(c);
  }
  return out;
}

// True when `client`'s call tree reaches any service hosted on `target`.
bool client_touches_container(const AppModel& app, const ClientSpec& client,
                              ContainerIdx target) {
  for (const ServiceIdx s : app.call_tree(client.entry_service))
    if (app.services[s].container == target) return true;
  return false;
}

Fault base_fault(Rng& rng, ContainerIdx target, const IncidentOptions& opts) {
  Fault f;
  f.kind = static_cast<FaultKind>(rng.below(3));
  f.target = target;
  f.start = opts.start;
  f.duration = opts.duration;
  f.intensity = opts.intensity;
  return f;
}

}  // namespace

IncidentPlan plan_incident(const AppModel& app,
                           const std::vector<ContainerIdx>& candidates,
                           const IncidentOptions& opts) {
  assert(!candidates.empty() && "incident needs root candidates");
  Rng rng(opts.seed);
  IncidentPlan plan;
  plan.kind = opts.kind;
  plan.start = opts.start;
  plan.end = opts.start + opts.duration;

  switch (opts.kind) {
    case IncidentKind::kSingleContention: {
      const ContainerIdx target = candidates[rng.below(candidates.size())];
      plan.faults.push_back(base_fault(rng, target, opts));
      plan.root_containers.push_back(target);
      break;
    }

    case IncidentKind::kCorrelatedMultiRoot: {
      // Draw `num_roots` DISTINCT containers; every one is ground truth.
      // The windows overlap but are jittered a little so the onsets are not
      // suspiciously synchronized.
      std::vector<ContainerIdx> pool = candidates;
      const std::size_t roots = std::min(opts.num_roots, pool.size());
      for (std::size_t i = 0; i < roots; ++i) {
        const std::size_t pick = rng.below(pool.size());
        const ContainerIdx target = pool[pick];
        pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
        Fault f = base_fault(rng, target, opts);
        const std::size_t jitter = rng.below(5);
        f.start = opts.start + jitter;
        f.duration = opts.duration > jitter ? opts.duration - jitter : 1;
        plan.faults.push_back(f);
        plan.root_containers.push_back(target);
      }
      break;
    }

    case IncidentKind::kSlowBurn: {
      const ContainerIdx target = candidates[rng.below(candidates.size())];
      Fault f = base_fault(rng, target, opts);
      // Memory-leak-like shapes are the canonical slow burn; bias toward
      // mem/disk so the symptom builds through paging and IO-wait.
      f.kind = rng.chance(0.5) ? FaultKind::kMemStress : FaultKind::kDiskStress;
      // Ramp over ~80% of the window: the full-intensity plateau is short.
      f.ramp_slices = std::max<std::size_t>(opts.duration * 4 / 5, 1);
      plan.faults.push_back(f);
      plan.root_containers.push_back(target);
      break;
    }

    case IncidentKind::kRetryStorm: {
      // Brown out one backend, then amplify every client whose call tree
      // touches it. The amplified load spreads pressure over the whole
      // graph; the scheme must still point at the browned-out container,
      // not at the loudly retrying clients.
      ContainerIdx target = candidates[rng.below(candidates.size())];
      // Prefer a backend some client actually depends on; otherwise the
      // storm never ignites and the incident degenerates to contention.
      for (std::size_t attempt = 0;
           attempt < candidates.size() && !app.clients.empty(); ++attempt) {
        bool touched = false;
        for (const ClientSpec& cl : app.clients)
          if (client_touches_container(app, cl, target)) touched = true;
        if (touched) break;
        target = candidates[rng.below(candidates.size())];
      }
      Fault f = base_fault(rng, target, opts);
      f.kind = FaultKind::kCpuStress;  // brown-out = starved of cycles
      plan.faults.push_back(f);
      plan.root_containers.push_back(target);
      for (ClientIdx cl = 0; cl < app.clients.size(); ++cl) {
        if (!client_touches_container(app, app.clients[cl], target)) continue;
        ClientAmplification amp;
        amp.client = cl;
        // Retries start a few slices after the brown-out begins (timeouts
        // must fire first) and persist through the window.
        amp.start = opts.start + 2;
        amp.duration = opts.duration > 2 ? opts.duration - 2 : 1;
        amp.factor = opts.retry_amplification * rng.uniform(0.85, 1.15);
        plan.amplifications.push_back(amp);
      }
      break;
    }

    case IncidentKind::kCascade: {
      const ContainerIdx origin = candidates[rng.below(candidates.size())];
      plan.faults.push_back(base_fault(rng, origin, opts));
      plan.root_containers.push_back(origin);
      // Induced faults spread upstream hop by hop: weaker, delayed, and
      // explicitly NOT ground truth.
      std::vector<ContainerIdx> frontier{origin};
      std::vector<ContainerIdx> seen{origin};
      double induced = opts.intensity * 0.6;
      TimeIndex onset = opts.start;
      for (std::size_t hop = 0; hop < opts.cascade_depth; ++hop) {
        onset += 4 + rng.below(4);  // queue buildup takes a few slices
        std::vector<ContainerIdx> next;
        for (const ContainerIdx c : frontier) {
          for (const ContainerIdx up : upstream_containers(app, c)) {
            if (std::find(seen.begin(), seen.end(), up) != seen.end())
              continue;
            seen.push_back(up);
            next.push_back(up);
            Fault f;
            f.kind = FaultKind::kCpuStress;  // queued work burns CPU
            f.target = up;
            f.start = onset;
            f.duration = plan.end > onset
                             ? static_cast<std::size_t>(plan.end - onset)
                             : 1;
            f.intensity = induced * rng.uniform(0.8, 1.0);
            plan.faults.push_back(f);
            plan.secondary_containers.push_back(up);
          }
        }
        frontier = std::move(next);
        induced *= 0.6;
        if (frontier.empty()) break;
      }
      break;
    }
  }

  // Incident window = union of the ROOT faults' windows (secondaries are
  // inside it by construction).
  plan.start = plan.faults.front().start;
  plan.end = plan.faults.front().start + plan.faults.front().duration;
  for (std::size_t i = 0; i < plan.root_containers.size() &&
                          i < plan.faults.size();
       ++i) {
    plan.start = std::min(plan.start, plan.faults[i].start);
    plan.end = std::max(plan.end, plan.faults[i].start +
                                      plan.faults[i].duration);
  }
  return plan;
}

void apply_amplifications(AppModel& app,
                          const std::vector<ClientAmplification>& amps) {
  for (const ClientAmplification& amp : amps) {
    assert(amp.client < app.clients.size());
    std::vector<double>& sched = app.clients[amp.client].rps_schedule;
    const TimeIndex stop =
        std::min<TimeIndex>(amp.start + amp.duration, sched.size());
    for (TimeIndex t = amp.start; t < stop; ++t) sched[t] *= amp.factor;
  }
}

}  // namespace murphy::emulation
