#include "src/eval/runner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/obs/metrics.h"

namespace murphy::eval {
namespace {

// Case accounting goes to the process-global registry so eval binaries can
// snapshot it without plumbing a registry through every run_case call site.
void count_case(bool hit_top1) {
#ifndef MURPHY_OBS_DISABLED
  obs::global_metrics().counter("eval.cases_run")->add(1);
  if (hit_top1) obs::global_metrics().counter("eval.cases_top1_hit")->add(1);
#else
  (void)hit_top1;
#endif
}

}  // namespace

core::DiagnosisRequest request_for(const emulation::DiagnosisCase& c) {
  core::DiagnosisRequest req;
  req.db = &c.db;
  req.symptom_entity = c.symptom_entity;
  req.symptom_metric = c.symptom_metric;
  req.now = c.incident_end > 0 ? c.incident_end - 1 : 0;
  req.train_begin = 0;
  req.train_end = c.incident_end;
  req.max_hops = c.max_hops;
  return req;
}

core::DiagnosisRequest request_for(const enterprise::EnterpriseIncident& inc) {
  core::DiagnosisRequest req;
  req.db = &inc.topo.db;
  req.symptom_entity = inc.symptom_entity;
  req.symptom_metric = inc.symptom_metric;
  req.now = inc.incident_end > 0 ? inc.incident_end - 1 : 0;
  req.train_begin = 0;
  req.train_end = inc.incident_end;
  return req;
}

CaseOutcome run_case(core::Diagnoser& scheme,
                     const emulation::DiagnosisCase& c) {
  const auto result = scheme.diagnose(request_for(c));
  const std::vector<EntityId> truth{c.root_cause};
  const CaseOutcome outcome = score_result(result, truth, c.relaxed_set);
  count_case(outcome.hit(1));
  return outcome;
}

CaseOutcome run_case(core::Diagnoser& scheme,
                     const enterprise::EnterpriseIncident& inc) {
  const auto result = scheme.diagnose(request_for(inc));
  const CaseOutcome outcome = score_result(result, inc.ground_truth);
  count_case(outcome.hit(1));
  return outcome;
}

core::DiagnosisResult truncated(core::DiagnosisResult result, std::size_t k) {
  if (result.causes.size() > k) result.causes.resize(k);
  if (result.explanations.size() > k) result.explanations.resize(k);
  return result;
}

double calibrate_score_floor(
    core::Diagnoser& scheme,
    const std::vector<const enterprise::EnterpriseIncident*>& calibration) {
  double floor = std::numeric_limits<double>::infinity();
  for (const auto* inc : calibration) {
    const auto result = scheme.diagnose(request_for(*inc));
    for (const EntityId t : inc->ground_truth) {
      bool found = false;
      for (const auto& cause : result.causes) {
        if (cause.entity == t) {
          floor = std::min(floor, cause.score);
          found = true;
          break;
        }
      }
      if (!found) return 0.0;  // recall 1 unreachable: keep everything
    }
  }
  if (!std::isfinite(floor)) return 0.0;
  return floor * 0.999;  // keep the calibration truths themselves
}

core::DiagnosisResult filtered_by_score(core::DiagnosisResult result,
                                        double floor) {
  std::size_t keep = 0;
  for (std::size_t i = 0; i < result.causes.size(); ++i) {
    if (result.causes[i].score < floor) continue;
    result.causes[keep] = result.causes[i];
    if (i < result.explanations.size() && keep < result.explanations.size())
      result.explanations[keep] = result.explanations[i];
    ++keep;
  }
  result.causes.resize(keep);
  if (result.explanations.size() > keep) result.explanations.resize(keep);
  return result;
}

}  // namespace murphy::eval
