// Minimal fixed-size thread pool with an index-claiming parallel_for.
//
// Murphy's hot loops (per-variable factor fits, per-candidate counterfactual
// evaluations, per-symptom batch diagnoses) are embarrassingly parallel:
// every iteration writes only its own output slot and draws from its own
// deterministically derived RNG stream (see mix_seed in rng.h). The schedule
// can therefore be fully dynamic — workers claim the next iteration index
// from one atomic counter; no work stealing, no chunking heuristics — while
// results stay bitwise identical for any thread count or interleaving. See
// DESIGN.md "Execution model".
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace murphy {

// Resolves a user-facing thread-count option: 0 means "use the hardware"
// (std::thread::hardware_concurrency, at least 1), any other value is taken
// verbatim.
[[nodiscard]] std::size_t resolve_num_threads(std::size_t requested);

class ThreadPool {
 public:
  // Spawns `num_workers` persistent worker threads. Zero is legal: every
  // parallel_for then runs inline on the calling thread.
  explicit ThreadPool(std::size_t num_workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  // Runs body(i) for every i in [0, n). The calling thread participates, so
  // n iterations engage worker_count() + 1 threads at most. Blocks until all
  // iterations finish; the first exception thrown by any iteration is
  // rethrown here after the loop drains.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();
  void run_iterations();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a new batch
  std::condition_variable done_cv_;   // caller waits for batch completion
  const std::function<void(std::size_t)>* body_ = nullptr;  // guarded by mu_
  std::size_t n_ = 0;                 // guarded by mu_ (stable during batch)
  std::atomic<std::size_t> next_{0};  // next unclaimed iteration index
  std::size_t pending_ = 0;           // workers still inside current batch
  std::uint64_t epoch_ = 0;           // batch counter, guarded by mu_
  bool stop_ = false;
  std::exception_ptr error_;          // first iteration failure, guarded by mu_
};

// One-shot convenience: runs body(i) for i in [0, n) on `num_threads`
// threads (0 = hardware concurrency). num_threads <= 1 — the legacy serial
// path — executes a plain inline loop with no atomics or thread machinery.
void parallel_for(std::size_t num_threads, std::size_t n,
                  const std::function<void(std::size_t)>& body);

}  // namespace murphy
