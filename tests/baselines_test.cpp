// Tests for the reference baselines: ExplainIt's correlation ranking,
// NetMedic's heuristic path scoring, and Sage's DAG-only counterfactual
// replay — including the structural behaviours the paper's comparisons
// depend on (Sage refusing cyclic/undirected inputs, out-of-model blindness).
#include <gtest/gtest.h>

#include "src/baselines/explainit.h"
#include "src/baselines/netmedic.h"
#include "src/baselines/sage.h"
#include "src/emulation/scenarios.h"
#include "src/enterprise/incidents.h"
#include "src/telemetry/metric_catalog.h"

namespace murphy::baselines {
namespace {

namespace mk = telemetry::metrics;

emulation::DiagnosisCase contention_case(bool dag, std::uint64_t seed) {
  emulation::ContentionOptions opts;
  opts.app = emulation::ContentionOptions::App::kHotelReservation;
  opts.fault = emulation::FaultKind::kCpuStress;
  opts.intensity = 0.9;
  opts.seed = seed;
  opts.slices = 240;
  opts.prior_incidents = 2;
  opts.bidirectional_call_edges = !dag;
  return emulation::make_contention_case(opts);
}

core::DiagnosisRequest request_for(const emulation::DiagnosisCase& c) {
  core::DiagnosisRequest req;
  req.db = &c.db;
  req.symptom_entity = c.symptom_entity;
  req.symptom_metric = c.symptom_metric;
  req.now = c.incident_end - 1;
  req.train_begin = 0;
  req.train_end = c.incident_end;
  return req;
}

TEST(ExplainIt, RanksCorrelatedEntities) {
  const auto c = contention_case(/*dag=*/true, 21);
  ExplainIt explainit;
  const auto result = explainit.diagnose(request_for(c));
  EXPECT_FALSE(result.causes.empty());
  // Scores are |correlations|: within [0, 1] and sorted descending.
  for (std::size_t i = 0; i < result.causes.size(); ++i) {
    EXPECT_GE(result.causes[i].score, 0.0);
    EXPECT_LE(result.causes[i].score, 1.0);
    if (i > 0) {
      EXPECT_LE(result.causes[i].score, result.causes[i - 1].score);
    }
  }
}

TEST(ExplainIt, DoesNotReportSymptomItself) {
  const auto c = contention_case(true, 22);
  ExplainIt explainit;
  const auto result = explainit.diagnose(request_for(c));
  EXPECT_EQ(result.rank_of(c.symptom_entity), 0u);
}

TEST(NetMedic, ProducesRankedCandidates) {
  const auto c = contention_case(true, 23);
  NetMedic netmedic;
  const auto result = netmedic.diagnose(request_for(c));
  EXPECT_FALSE(result.causes.empty());
  for (std::size_t i = 1; i < result.causes.size(); ++i)
    EXPECT_LE(result.causes[i].score, result.causes[i - 1].score);
}

TEST(NetMedic, MinScoreCalibrationFiltersOutput) {
  const auto c = contention_case(true, 24);
  NetMedic loose{NetMedicOptions{.min_score = 0.0}};
  NetMedic strict{NetMedicOptions{.min_score = 0.9}};
  const auto many = loose.diagnose(request_for(c));
  const auto few = strict.diagnose(request_for(c));
  EXPECT_GE(many.causes.size(), few.causes.size());
}

TEST(Sage, FindsContentionRootCauseInDagEnvironment) {
  // §6.3: Sage was designed for acyclic resource-contention scenarios and
  // performs well there. Expect it to usually surface the faulted container
  // (we assert top-5 on a seed where the fault clearly manifests).
  const auto c = contention_case(true, 25);
  Sage sage;
  const auto result = sage.diagnose(request_for(c));
  ASSERT_FALSE(result.causes.empty());
  const auto rank = result.rank_of(c.root_cause);
  EXPECT_GE(rank, 1u);
  EXPECT_LE(rank, 5u);
}

TEST(Sage, RefusesUndirectedCallGraph) {
  // §6.2: the enterprise environment has no causal DAG; Sage cannot model it.
  const auto c = contention_case(/*dag=*/false, 26);
  Sage sage;
  const auto result = sage.diagnose(request_for(c));
  EXPECT_TRUE(result.causes.empty());
}

TEST(Sage, EnterpriseEnvironmentIsOutOfScope) {
  enterprise::IncidentDatasetOptions opts;
  opts.topology.num_apps = 4;
  opts.topology.hosts = 6;
  opts.topology.tors = 2;
  opts.topology.ports_per_tor = 4;
  opts.topology.datastores = 2;
  opts.dynamics.slices = 96;
  const auto inc = enterprise::make_incident(2, opts);
  core::DiagnosisRequest req;
  req.db = &inc.topo.db;
  req.symptom_entity = inc.symptom_entity;
  req.symptom_metric = inc.symptom_metric;
  req.now = inc.incident_end - 1;
  req.train_begin = 0;
  req.train_end = inc.incident_end;
  Sage sage;
  EXPECT_TRUE(sage.diagnose(req).causes.empty());
}

TEST(Sage, OutOfModelRootCauseIsInvisible) {
  // §6.1: in the interference scenario the true root cause (the aggressor
  // client) is outside the victim's dependency subtree; Sage cannot produce
  // it even when the call graph directions are known.
  emulation::InterferenceOptions iopts;
  iopts.slices = 240;
  iopts.ramp_at = 180;
  iopts.seed = 31;
  iopts.bidirectional_call_edges = false;  // give Sage its directions
  const auto c = emulation::make_interference_case(iopts);
  core::DiagnosisRequest req;
  req.db = &c.db;
  req.symptom_entity = c.symptom_entity;
  req.symptom_metric = c.symptom_metric;
  req.now = 239;
  req.train_begin = 0;
  req.train_end = 240;
  Sage sage;
  const auto result = sage.diagnose(req);
  // The aggressor client must not appear.
  EXPECT_EQ(result.rank_of(c.root_cause), 0u);
}

TEST(AllBaselines, DeterministicForFixedInputs) {
  const auto c = contention_case(true, 27);
  const auto req = request_for(c);
  for (int pass = 0; pass < 2; ++pass) {
    ExplainIt e1, e2;
    const auto r1 = e1.diagnose(req);
    const auto r2 = e2.diagnose(req);
    ASSERT_EQ(r1.causes.size(), r2.causes.size());
    for (std::size_t i = 0; i < r1.causes.size(); ++i)
      EXPECT_EQ(r1.causes[i].entity, r2.causes[i].entity);
  }
  Sage s1, s2;
  const auto r1 = s1.diagnose(req);
  const auto r2 = s2.diagnose(req);
  ASSERT_EQ(r1.causes.size(), r2.causes.size());
  for (std::size_t i = 0; i < r1.causes.size(); ++i)
    EXPECT_EQ(r1.causes[i].entity, r2.causes[i].entity);
}

}  // namespace
}  // namespace murphy::baselines
