// Automatic problematic-symptom identification (Appendix A.1).
//
// A trouble ticket ("app foo is slow") rarely names an (entity, metric)
// pair. Given an affected application, this scans its member entities for
// metrics that are anomalous in the current time slice — above the
// conservative alert thresholds operators configure, or far from their
// historical behaviour — and emits ranked (E_o, M_o) symptoms that Murphy
// can then diagnose one by one.
#pragma once

#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/time_axis.h"
#include "src/core/thresholds.h"
#include "src/obs/metrics.h"
#include "src/telemetry/monitoring_db.h"

namespace murphy::core {

struct Symptom {
  EntityId entity;
  std::string metric;
  double value = 0.0;      // current value
  double severity = 0.0;   // robust z-score vs the history window
};

struct SymptomFinderOptions {
  Thresholds thresholds;
  // Also report metrics whose robust |z| exceeds this even when below the
  // static thresholds (catches collapses: a web VM doing 0 rx is a symptom
  // even though 0 crosses no "too high" line).
  double z_min = 3.0;
  // History window used for the robust baseline.
  TimeIndex history_begin = 0;
  std::size_t max_symptoms = 10;
  // Optional observability sink: counts metrics scanned / symptoms found.
  obs::MetricsRegistry* metrics = nullptr;
};

// Scans all members of `app` at time `now`; returns symptoms ordered most
// severe first. An empty result means the application looks healthy.
[[nodiscard]] std::vector<Symptom> find_symptoms(
    const telemetry::MonitoringDb& db, AppId app, TimeIndex now,
    const SymptomFinderOptions& opts = {});

// Same scan for an explicit entity set (e.g. "these three VMs from the
// ticket").
[[nodiscard]] std::vector<Symptom> find_symptoms(
    const telemetry::MonitoringDb& db, std::span<const EntityId> entities,
    TimeIndex now, const SymptomFinderOptions& opts = {});

}  // namespace murphy::core
