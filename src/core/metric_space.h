// The flattened variable space of the MRF.
//
// The MRF's random variables are (entity, metric-kind) pairs over one
// relationship graph. MetricSpace assigns each such pair a dense VarIndex so
// samplers and factors can work on flat arrays, and snapshots the monitoring
// database's values at a time slice into a state vector.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/graph/relationship_graph.h"
#include "src/telemetry/monitoring_db.h"

namespace murphy::core {

using VarIndex = std::size_t;

class MetricSpace {
 public:
  // Enumerates every metric recorded for every node of `graph`, in node
  // order then kind order (deterministic).
  MetricSpace(const telemetry::MonitoringDb& db,
              const graph::RelationshipGraph& graph);

  [[nodiscard]] std::size_t size() const { return vars_.size(); }

  struct Var {
    graph::NodeIndex node;
    EntityId entity;
    MetricKindId kind;
  };
  [[nodiscard]] const Var& var(VarIndex i) const { return vars_[i]; }
  [[nodiscard]] std::optional<VarIndex> find(EntityId entity,
                                             MetricKindId kind) const;
  // Variable indices belonging to one graph node.
  [[nodiscard]] std::span<const VarIndex> vars_of(
      graph::NodeIndex node) const {
    return node_vars_[node];
  }

  // Snapshot of all variable values at time slice t (missing -> 0, the
  // paper's placeholder default).
  [[nodiscard]] std::vector<double> snapshot(
      const telemetry::MonitoringDb& db, TimeIndex t) const;

  // Per-variable training matrix column: values over [from, to).
  [[nodiscard]] std::vector<double> history(const telemetry::MonitoringDb& db,
                                            VarIndex v, TimeIndex from,
                                            TimeIndex to) const;

 private:
  std::vector<Var> vars_;
  std::vector<std::vector<VarIndex>> node_vars_;
  std::unordered_map<MetricRef, VarIndex> index_;
};

}  // namespace murphy::core
