// Time-series storage for entity metrics.
//
// All series share one TimeAxis (the monitoring platform's collection grid).
// Values may be missing — a newly spawned entity has no history, and the
// robustness experiments (Table 2) deliberately delete values — so each
// series carries a validity mask alongside its values.
//
// Telemetry-defect semantics (DESIGN.md §8): real collectors emit NaN/Inf
// payloads, and a single non-finite slice would otherwise poison every
// moment, factor and ranking downstream. The store therefore defines
// non-finite values as MISSING:
//  * MetricStore::put() sanitizes at ingest — non-finite slices are marked
//    invalid (counter `ingest.nonfinite_dropped`), the stored payload is
//    untouched;
//  * TimeSeries::value_or() / window() treat a stored non-finite value as
//    missing even when its validity bit is set (counter
//    `ingest.nonfinite_reads`), covering raw writes through set() /
//    find_mutable() that bypass ingest;
//  * the raw accessors value() / values() still expose the stored payload
//    (the exporter round-trips it; the importer re-drops it).
// Finite data is returned bit-for-bit unchanged on every path.
#pragma once

#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/common/time_axis.h"

namespace murphy::telemetry {

// One metric's samples on the store's axis, with per-slice validity.
class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::vector<double> values);
  TimeSeries(std::vector<double> values, std::vector<bool> valid);

  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] double value(TimeIndex t) const { return values_[t]; }
  [[nodiscard]] bool is_valid(TimeIndex t) const { return valid_[t]; }
  // Value at t, or `fallback` when the slice is missing. The paper uses a
  // default (e.g. 0% CPU) as placeholder for missing history (§4.2).
  // Non-finite stored values count as missing (see header comment).
  [[nodiscard]] double value_or(TimeIndex t, double fallback) const;

  [[nodiscard]] std::span<const double> values() const { return values_; }

  void set(TimeIndex t, double v);
  void invalidate(TimeIndex t);
  // Marks every valid-but-non-finite slice invalid; returns how many were
  // dropped. put() applies this to everything it ingests.
  std::size_t sanitize();
  // Drop history before `t` (keeps values from t onward). Used by the
  // "missing values" degradation, which removes history but keeps the
  // incident window.
  void invalidate_before(TimeIndex t);

  // True when `other` stores the same payload bit-for-bit (values compared
  // by bit pattern — NaN payloads and signed zeros included) and the same
  // validity mask. The no-op-put detection in MetricStore::put uses this.
  [[nodiscard]] bool bitwise_equal(const TimeSeries& other) const;

  // Appends `n` missing slices (axis growth under streaming ingestion).
  void append_missing(std::size_t n);

  // Values restricted to [from, to) with missing slices replaced by
  // `fallback`; the shape the trainers consume. Total: an inverted window
  // (to < from) is empty, slices beyond the axis read as `fallback`.
  [[nodiscard]] std::vector<double> window(TimeIndex from, TimeIndex to,
                                           double fallback = 0.0) const;

 private:
  std::vector<double> values_;
  std::vector<bool> valid_;
};

class SnapshotIo;  // snapshot.cpp serializer; needs raw member access

class MetricStore {
 public:
  MetricStore() = default;
  explicit MetricStore(TimeAxis axis) : axis_(axis) {}

  [[nodiscard]] const TimeAxis& axis() const { return axis_; }
  void set_axis(TimeAxis axis) {
    axis_ = axis;
    ++version_;
    ++structural_version_;
  }

  // Monotonic data version: bumped by every mutation path, including
  // find_mutable() (conservatively — the caller may write through the
  // pointer). Caches keyed on (window, version) use this to detect staleness
  // without diffing series.
  [[nodiscard]] std::uint64_t version() const { return version_; }

  // Structural subset of version(): bumped only by mutations that change
  // WHICH series exist or how they are read (axis replacement, erase paths),
  // never by value writes to an existing or fresh series. The long-running
  // service keys its cache generation on this plus per-series epochs, so a
  // streaming append invalidates only the entries that read the touched
  // series instead of the whole cache (DESIGN.md §9).
  [[nodiscard]] std::uint64_t structural_version() const {
    return structural_version_;
  }

  // Per-series write epoch: bumped every time (entity, kind) is written
  // (put / upsert_cell / find_mutable). 0 = the series has never existed;
  // the first write makes it 1. Epoch-keyed caches mix this into their entry
  // keys, so a write retires exactly the entries that read this series.
  [[nodiscard]] std::uint64_t series_epoch(EntityId entity,
                                           MetricKindId kind) const;

  // Replaces any existing series for (entity, kind). `values.size()` must
  // equal axis().size(). Ingest sanitizes: non-finite slices are marked
  // missing (counter `ingest.nonfinite_dropped`). A no-op put — a series
  // bitwise identical (values and validity) to the one already stored —
  // bumps nothing (counter `ingest.noop_puts`), so idempotent re-ingestion
  // keeps warm caches warm.
  void put(EntityId entity, MetricKindId kind, std::vector<double> values);
  void put(EntityId entity, MetricKindId kind, TimeSeries series);

  // Streaming ingestion: writes one slice of (entity, kind), creating the
  // series (all slices missing) when absent. Non-finite values are the usual
  // telemetry defect: the slice stays missing (`ingest.nonfinite_dropped`).
  // Bumps version() and the series epoch. Returns true when the series was
  // created by this call. When `epoch_out` is non-null it receives the
  // post-write series epoch — the commit-observer path captures it here,
  // at the write, instead of paying a second lookup per cell.
  bool upsert_cell(EntityId entity, MetricKindId kind, TimeIndex t, double v,
                   std::uint64_t* epoch_out = nullptr);

  // Grows the axis by `extra_slices`; every stored series is padded with
  // missing slices. Existing window reads are unchanged (slices past the old
  // end already read as missing), so neither series epochs nor the
  // structural version move; version() bumps conservatively.
  void extend_axis(std::size_t extra_slices);

  [[nodiscard]] const TimeSeries* find(EntityId entity,
                                       MetricKindId kind) const;
  [[nodiscard]] TimeSeries* find_mutable(EntityId entity, MetricKindId kind);

  // Metric kinds recorded for this entity, in insertion order.
  [[nodiscard]] std::vector<MetricKindId> kinds_of(EntityId entity) const;

  // Removes one metric (Table 2 "missing metric" degradation).
  void erase(EntityId entity, MetricKindId kind);
  // Removes all series of an entity (Table 2 "missing entity").
  void erase_entity(EntityId entity);

  [[nodiscard]] std::size_t series_count() const { return series_.size(); }

 private:
  friend class SnapshotIo;

  TimeAxis axis_;
  std::uint64_t version_ = 0;
  std::uint64_t structural_version_ = 0;
  std::unordered_map<MetricRef, TimeSeries> series_;
  std::unordered_map<MetricRef, std::uint64_t> epochs_;
  std::unordered_map<EntityId, std::vector<MetricKindId>> kinds_;
};

}  // namespace murphy::telemetry
