#include "src/core/factor_model.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <limits>

#include "src/common/thread_pool.h"
#include "src/stats/correlation.h"
#include "src/stats/ridge.h"
#include "src/stats/summary.h"

namespace murphy::core {

MetricConditional::MetricConditional(
    VarIndex target, std::vector<VarIndex> features,
    std::shared_ptr<const stats::Predictor> model, double hist_mean,
    double hist_sigma)
    : target_(target),
      features_(std::move(features)),
      model_(std::move(model)),
      hist_mean_(hist_mean),
      hist_sigma_(hist_sigma) {}

double MetricConditional::predict(std::span<const double> state) const {
  if (features_.empty() || model_ == nullptr) return hist_mean_;
  // Thread-local scratch: conditionals are shared read-only across sampler
  // threads, so a per-object buffer would race.
  thread_local std::vector<double> feature_buf;
  feature_buf.resize(features_.size());
  for (std::size_t i = 0; i < features_.size(); ++i)
    feature_buf[i] = state[features_[i]];
  return model_->predict(feature_buf);
}

double MetricConditional::sample(std::span<const double> state,
                                 Rng& rng) const {
  const double mu = predict(state);
  const double sigma = model_ ? model_->residual_sigma() : hist_sigma_;
  return mu + sigma * rng.normal();
}

FactorSet::FactorSet(const telemetry::MonitoringDb& db,
                     const graph::RelationshipGraph& graph,
                     const MetricSpace& space, TimeIndex train_begin,
                     TimeIndex train_end, const FactorTrainingOptions& opts) {
  // Degenerate training windows (empty after a symptom at t=0, or inverted
  // after clock-skewed telemetry) are defined, not asserted: clamp to an
  // empty window, which trains flat hist-mean conditionals everywhere
  // (DESIGN.md §8, counter `train.empty_windows`).
  if (train_end < train_begin) train_end = train_begin;
  const std::size_t n_rows = train_end - train_begin;
  if (n_rows == 0 && opts.metrics != nullptr)
    opts.metrics->counter("train.empty_windows")->add(1);
  conditionals_.resize(space.size());

  // Per-variable window moments (mean, centered column, sum of squares):
  // pulled from the shared cross-symptom cache when one is attached,
  // materialized locally otherwise. Either way the feature-scoring loop
  // below does one dot product per candidate pair instead of a three-pass
  // mean/variance rescan.
  std::vector<const stats::ColumnMoments*> col(space.size());
  std::vector<stats::ColumnMoments> local;
  if (opts.window_stats != nullptr) {
    for (VarIndex v = 0; v < space.size(); ++v) {
      const auto& var = space.var(v);
      std::uint64_t key =
          (static_cast<std::uint64_t>(var.entity.value()) << 32) |
          var.kind.value();
      if (opts.epoch_keys) {
        // A write to this series changes its epoch, hence the key: the stale
        // column is simply never looked up again (see FactorTrainingOptions).
        // The window rides in the key too — the service's generation
        // fingerprint deliberately excludes it so concurrent requests with
        // different windows can share one cache generation.
        key = hash_mix(hash_mix(0xE90C4B11u, key),
                       db.metrics().series_epoch(var.entity, var.kind));
        key = hash_mix(key, (static_cast<std::uint64_t>(train_begin) << 32) |
                                train_end);
      }
      col[v] = &opts.window_stats->get_or_build(key, [&] {
        return space.history(db, v, train_begin, train_end);
      });
    }
  } else {
    local.resize(space.size());
    for (VarIndex v = 0; v < space.size(); ++v) {
      local[v] = stats::build_column_moments(
          space.history(db, v, train_begin, train_end));
      col[v] = &local[v];
    }
  }

  // Observability: resolve instruments once, outside the hot loop (the
  // registry lookup takes a mutex; the updates below are lock-free atomics).
  obs::Counter* c_fits = nullptr;
  obs::Counter* c_pruned = nullptr;
  obs::Counter* c_corr_cells = nullptr;
  obs::Counter* c_cache_hits = nullptr;
  obs::Counter* c_cache_misses = nullptr;
  obs::Histogram* h_features = nullptr;
  if (opts.metrics != nullptr) {
    c_fits = opts.metrics->counter("train.factors_trained");
    c_pruned = opts.metrics->counter("train.features_pruned_one_in_ten");
    c_corr_cells = opts.metrics->counter("train.corr_cells");
    h_features = opts.metrics->histogram(
        "train.features_per_factor",
        {0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0});
  }

  // Trains the factor of one target variable from the cached column moments,
  // in graph-independent (CachedFactor) form. Pure: everything it returns is
  // a function of the candidate histories and options alone, which is what
  // makes the result shareable across symptoms (see FactorCache).
  auto train_target = [&](VarIndex target, obs::Tracer* tracer) {
    obs::Span fit_span(tracer, "fit_factor", target, opts.trace_parent);
    const auto& tvar = space.var(target);
    const stats::ColumnMoments& ty = *col[target];

    CachedFactor cf;
    cf.hist_mean = ty.mean;    // == stats::mean(y)
    cf.hist_sigma = ty.sigma;  // == stats::stddev(y), bitwise (see WindowStats)

    // Candidate features: all metrics of in-neighbor nodes (the in_nbrs(v)
    // of the factor definition), plus the entity's OTHER own metrics, which
    // the paper's P_v(v | ...) treats jointly.
    std::vector<std::pair<double, VarIndex>> scored;
    std::uint64_t corr_cells = 0;
    auto consider = [&](VarIndex f) {
      if (f == target) return;
      const stats::ColumnMoments& fx = *col[f];
      const double c = std::abs(stats::pearson_centered(
          fx.centered, fx.sxx, fx.mean, ty.centered, ty.sxx, ty.mean));
      corr_cells += n_rows;
      if (c > 0.05) scored.emplace_back(c, f);
    };
    for (const graph::NodeIndex nb : graph.in_neighbors(tvar.node))
      for (const VarIndex f : space.vars_of(nb)) consider(f);
    for (const VarIndex f : space.vars_of(tvar.node)) consider(f);
    if (c_corr_cells != nullptr) c_corr_cells->add(corr_cells);

    std::sort(scored.begin(), scored.end(),
              [&](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                // Graph-invariant tiebreak: equal |pearson| resolves on
                // (entity, kind), never on VarIndex — a VarIndex order would
                // depend on the graph's node numbering and break factor
                // sharing across symptoms.
                const auto& va = space.var(a.second);
                const auto& vb = space.var(b.second);
                if (va.entity != vb.entity) return va.entity < vb.entity;
                return va.kind < vb.kind;
              });
    cf.considered = scored.size();
    if (scored.size() > opts.top_b) scored.resize(opts.top_b);

    std::vector<VarIndex> features;
    features.reserve(scored.size());
    for (const auto& [c, f] : scored) features.push_back(f);

    std::unique_ptr<stats::Predictor> model;
    if (!features.empty()) {
      const auto& y = ty.values;
      stats::Matrix x(n_rows, features.size());
      for (std::size_t r = 0; r < n_rows; ++r)
        for (std::size_t c = 0; c < features.size(); ++c)
          x.at(r, c) = col[features[c]]->values[r];
      stats::PredictorOptions popts = opts.predictor;
      popts.seed = mix_seed(opts.seed, target);
      model = stats::make_predictor(opts.model, popts);
      if (opts.recency_half_life > 0.0 &&
          opts.model == stats::ModelKind::kRidge) {
        stats::Vector weights(n_rows);
        for (std::size_t r = 0; r < n_rows; ++r)
          weights[r] = std::pow(
              0.5, static_cast<double>(n_rows - 1 - r) /
                       opts.recency_half_life);
        static_cast<stats::RidgeRegression*>(model.get())
            ->fit_weighted(x, y, weights);
      } else {
        model->fit(x, y);
      }

      // Training-error MASE for the Fig. 8a comparison.
      std::vector<double> preds(n_rows);
      std::vector<double> row(features.size());
      for (std::size_t r = 0; r < n_rows; ++r) {
        for (std::size_t c = 0; c < features.size(); ++c)
          row[c] = x.at(r, c);
        preds[r] = model->predict(row);
      }
      cf.training_mase = stats::mase(preds, y);
    }

    cf.features.reserve(features.size());
    for (const VarIndex f : features) {
      const auto& fv = space.var(f);
      cf.features.push_back(MetricRef{fv.entity, fv.kind});
    }
    cf.model = std::shared_ptr<const stats::Predictor>(std::move(model));
    cf.robust_center = stats::median(ty.values);
    cf.robust_sigma = stats::mad_sigma(ty.values);

    if (c_fits != nullptr) c_fits->add(1);
    if (fit_span.enabled()) {
      fit_span.arg("features",
                   static_cast<std::uint64_t>(cf.features.size()));
      fit_span.arg("rows", static_cast<std::uint64_t>(n_rows));
      fit_span.arg("mase", cf.training_mase);
    }
    return cf;
  };

  // Rebinds a (possibly cache-shared) factor to this graph's VarIndex space.
  auto bind_factor = [&](VarIndex target, const CachedFactor& cf) {
    std::vector<VarIndex> features;
    features.reserve(cf.features.size());
    for (const MetricRef& m : cf.features) {
      const auto f = space.find(m.entity, m.kind);
      assert(f.has_value());  // cache key fixes the candidate entity set
      features.push_back(*f);
    }
    auto cond = std::make_unique<MetricConditional>(
        target, std::move(features), cf.model, cf.hist_mean, cf.hist_sigma);
    cond->set_training_mase(cf.training_mase);
    cond->set_robust(cf.robust_center, cf.robust_sigma);

    if (c_pruned != nullptr && cf.considered > cf.features.size())
      c_pruned->add(cf.considered - cf.features.size());
    if (h_features != nullptr)
      h_features->observe(static_cast<double>(cf.features.size()));
    conditionals_[target] = std::move(cond);
  };

  // The factor cache only engages for ridge: its closed-form fit ignores
  // popts.seed, which is the one graph-dependent fit input (mix_seed over
  // VarIndex). Stochastic families train per graph.
  const bool cacheable = opts.factor_cache != nullptr &&
                         opts.model == stats::ModelKind::kRidge;
  if (cacheable && opts.metrics != nullptr) {
    c_cache_hits = opts.metrics->counter("cache.factor_hits");
    c_cache_misses = opts.metrics->counter("cache.factor_misses");
  }

  // One ridge fit per variable, all independent: parallelize over targets.
  // Each target's predictor seed is derived from (opts.seed, target) alone,
  // so the trained set is bitwise identical at any thread count.
  parallel_for(opts.num_threads, space.size(), [&](std::size_t t) {
    const VarIndex target = t;
    if (cacheable) {
      const auto& tvar = space.var(target);
      std::uint64_t key = hash_mix(0x0FAC70C5u, tvar.entity.value());
      key = hash_mix(key, tvar.kind.value());
      // Sorted in-neighbor entity set: equal keys => identical candidate
      // feature set => identical selection and fit (see FactorCache).
      std::vector<std::uint32_t> nbrs;
      for (const graph::NodeIndex nb : graph.in_neighbors(tvar.node))
        nbrs.push_back(graph.entity_of(nb).value());
      std::sort(nbrs.begin(), nbrs.end());
      for (const std::uint32_t e : nbrs) key = hash_mix(key, e);
      if (opts.epoch_keys) {
        // Fine-grained invalidation: the fit is a pure function of the
        // target and candidate-feature histories, so mix the (kind, epoch)
        // vector of every series the trainer may read — the target entity's
        // and each sorted in-neighbor's metric kinds. A write to any of them
        // (or a freshly appearing series) changes the key; everything else
        // keeps hitting (see FactorTrainingOptions::epoch_keys).
        const auto mix_entity_series = [&](std::uint32_t ev) {
          const EntityId e(ev);
          for (const MetricKindId k : db.metrics().kinds_of(e)) {
            key = hash_mix(key, (static_cast<std::uint64_t>(ev) << 32) |
                                    k.value());
            key = hash_mix(key, db.metrics().series_epoch(e, k));
          }
        };
        mix_entity_series(tvar.entity.value());
        for (const std::uint32_t e : nbrs) mix_entity_series(e);
        // Window in the key, not the generation fingerprint (see above).
        key = hash_mix(key, (static_cast<std::uint64_t>(train_begin) << 32) |
                                train_end);
      }

      bool trained = false;
      // The cached trainer runs with tracing off: WHICH symptom pays the
      // miss is scheduling-dependent, and per-fit spans would make traces
      // vary run to run. Counter totals stay deterministic (misses = unique
      // keys, hits = lookups - misses).
      const CachedFactor& cf = opts.factor_cache->get_or_train(
          key, [&] { return train_target(target, nullptr); }, &trained);
      if (trained) {
        if (c_cache_misses != nullptr) c_cache_misses->add(1);
      } else if (c_cache_hits != nullptr) {
        c_cache_hits->add(1);
      }
      bind_factor(target, cf);
      return;
    }
    bind_factor(target, train_target(target, opts.tracer));
  });

  build_kernel();
}

void FactorSet::resample_node(graph::NodeIndex node, const MetricSpace& space,
                              std::vector<double>& state, Rng& rng) const {
  for (const VarIndex v : space.vars_of(node))
    state[v] = conditionals_[v]->sample(state, rng);
}

void FactorSet::build_kernel() {
  const std::size_t n = conditionals_.size();
  assert(n < std::numeric_limits<std::uint32_t>::max());
  kernel_.vars.assign(n, {});
  kernel_.mean.assign(n, 0.0);
  kernel_.feat.clear();
  kernel_.w.clear();
  kernel_.fscale.clear();
  kernel_.wdiv.clear();
  kernel_.flat_count = 0;
  // Tracks which variables already have their shared mean pinned by an
  // earlier conditional. The serial ascending-v order makes the build
  // deterministic.
  std::vector<char> seen(n, 0);
  for (VarIndex v = 0; v < n; ++v) {
    const MetricConditional& c = *conditionals_[v];
    SampleKernel::VarEntry& e = kernel_.vars[v];
    const stats::Predictor* m = c.model();
    const auto features = c.features();
    if (features.empty() || m == nullptr) {
      // predict() returns hist_mean; sample sigma is the residual sigma when
      // a model exists, the historical sigma otherwise.
      e.flat = true;
      e.base = c.hist_mean();
      e.sigma = m != nullptr ? m->residual_sigma() : c.hist_sigma();
      ++kernel_.flat_count;
      continue;
    }
    if (m->kind() != stats::ModelKind::kRidge) continue;  // fallback path
    const auto* r = static_cast<const stats::RidgeRegression*>(m);
    const stats::Vector& fm = r->feature_means();
    const stats::Vector& fs = r->feature_scales();
    // A shared centered entry is only valid if every conditional derives the
    // exact same mean for the feature. fit_weighted() guarantees this (its
    // column statistics depend only on the row weights, which are a function
    // of the window length alone) — verify bitwise and fall back rather
    // than trust it.
    const auto same_bits = [](double a, double b) {
      return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
    };
    bool shareable = true;
    for (std::size_t j = 0; j < features.size(); ++j) {
      const VarIndex f = features[j];
      if (seen[f] != 0 && !same_bits(kernel_.mean[f], fm[j])) {
        shareable = false;
        break;
      }
    }
    if (!shareable) continue;
    for (std::size_t j = 0; j < features.size(); ++j) {
      const VarIndex f = features[j];
      if (seen[f] == 0) {
        seen[f] = 1;
        kernel_.mean[f] = fm[j];
      }
    }
    const stats::Vector& w = r->standardized_weights();
    e.flat = true;
    e.base = r->intercept();
    e.sigma = m->residual_sigma();
    e.begin = static_cast<std::uint32_t>(kernel_.feat.size());
    e.count = static_cast<std::uint32_t>(features.size());
    for (std::size_t j = 0; j < features.size(); ++j) {
      kernel_.feat.push_back(static_cast<std::uint32_t>(features[j]));
      kernel_.w.push_back(w[j]);
      kernel_.fscale.push_back(fs[j]);
      kernel_.wdiv.push_back(w[j] / fs[j]);
    }
    ++kernel_.flat_count;
  }
}

}  // namespace murphy::core
