#include "src/emulation/simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/telemetry/metric_catalog.h"

namespace murphy::emulation {
namespace {

using telemetry::EntityType;
using telemetry::RelationKind;

// Queueing delay multiplier for utilization rho: an M/M/1-style 1/(1-rho)
// curve, clamped so saturated services degrade sharply but stay finite.
double queue_factor(double rho) {
  constexpr double kMaxRho = 0.95;
  const double r = std::clamp(rho, 0.0, kMaxRho);
  const double base = 1.0 / (1.0 - r);
  // Past saturation, add a linear overload penalty (requests queue up).
  const double overload = rho > kMaxRho ? (rho - kMaxRho) * 60.0 : 0.0;
  return base + overload;
}

}  // namespace

SimResult simulate(const AppModel& app, const std::vector<Fault>& faults,
                   const SimOptions& opts) {
  for (const ClientSpec& c : app.clients) {
    assert(c.rps_schedule.size() == opts.slices &&
           "client schedule must match slice count");
    (void)c;
  }

  SimResult result;
  telemetry::MonitoringDb& db = result.db;
  SimEntities& ents = result.entities;

  // --- entities & associations ----------------------------------------------
  ents.app = db.define_app(app.name);
  for (const NodeSpec& n : app.nodes)
    ents.nodes.push_back(db.add_entity(EntityType::kNode, n.name));
  for (const ContainerSpec& c : app.containers) {
    const EntityId id = db.add_entity(EntityType::kContainer, c.name, ents.app);
    ents.containers.push_back(id);
    db.add_association(id, ents.nodes[c.node], RelationKind::kContainerOnNode);
  }
  for (const ServiceSpec& s : app.services) {
    const EntityId id = db.add_entity(EntityType::kService, s.name, ents.app);
    ents.services.push_back(id);
    db.add_association(id, ents.containers[s.container],
                       RelationKind::kServiceOnContainer);
  }
  // Directed associations carry influence semantics (a -> b): the callee's
  // performance influences the caller, and the entry service's performance
  // influences the client. When the direction is unknown (the common cyclic
  // environment), the same pairs are stored undirected.
  for (const CallEdge& e : app.call_edges) {
    if (opts.bidirectional_call_edges) {
      db.add_association(ents.services[e.caller], ents.services[e.callee],
                         RelationKind::kCallerCallee, /*directed=*/false);
    } else {
      db.add_association(ents.services[e.callee], ents.services[e.caller],
                         RelationKind::kCallerCallee, /*directed=*/true);
    }
  }
  for (const ClientSpec& c : app.clients) {
    const EntityId id = db.add_entity(EntityType::kClient, c.name, ents.app);
    ents.clients.push_back(id);
    if (opts.bidirectional_call_edges) {
      db.add_association(id, ents.services[c.entry_service],
                         RelationKind::kClientOfService, /*directed=*/false);
    } else {
      db.add_association(ents.services[c.entry_service], id,
                         RelationKind::kClientOfService, /*directed=*/true);
    }
  }

  db.metrics().set_axis(
      TimeAxis(0.0, opts.interval_seconds, opts.slices));

  // Precompute each client's demand vector over services.
  std::vector<std::vector<double>> demand;  // [client][service]
  demand.reserve(app.clients.size());
  for (const ClientSpec& c : app.clients)
    demand.push_back(app.demand_vector(c.entry_service));

  const std::size_t num_s = app.services.size();
  const std::size_t num_c = app.containers.size();
  const std::size_t num_n = app.nodes.size();
  const std::size_t num_cl = app.clients.size();
  const std::size_t slices = opts.slices;

  // Metric buffers [entity][slice].
  auto buf = [&](std::size_t n) {
    return std::vector<std::vector<double>>(n, std::vector<double>(slices));
  };
  auto svc_rate = buf(num_s), svc_latency = buf(num_s);
  auto ctr_cpu = buf(num_c), ctr_mem = buf(num_c), ctr_disk = buf(num_c),
       ctr_net = buf(num_c);
  auto node_cpu = buf(num_n);
  auto cl_latency = buf(num_cl), cl_rate = buf(num_cl);

  Rng rng(opts.seed);
  std::vector<double> rho(num_s);
  std::vector<double> own_latency(num_s);

  for (TimeIndex t = 0; t < slices; ++t) {
    // Request rate per service = sum of client rps * demand multiplier.
    std::vector<double> rate(num_s, 0.0);
    for (std::size_t cl = 0; cl < num_cl; ++cl) {
      const double rps = app.clients[cl].rps_schedule[t];
      for (std::size_t s = 0; s < num_s; ++s)
        rate[s] += rps * demand[cl][s];
    }

    // Container CPU demand (cores): service work + fault pressure.
    std::vector<double> ctr_demand(num_c, 0.0);
    std::vector<ContainerPressure> pressure(num_c);
    for (std::size_t c = 0; c < num_c; ++c) {
      pressure[c] =
          pressure_at(faults, c, app.containers[c].cpu_limit_cores, t);
      ctr_demand[c] = pressure[c].cpu_cores;
    }
    for (std::size_t s = 0; s < num_s; ++s)
      ctr_demand[app.services[s].container] +=
          rate[s] * app.services[s].cpu_cost_per_req;

    // Node contention: when the sum of co-located demand exceeds the node's
    // cores, every container on the node gets squeezed proportionally. This
    // is the shared-resource coupling that creates cyclic influence.
    std::vector<double> node_demand(num_n, 0.0);
    for (std::size_t c = 0; c < num_c; ++c)
      node_demand[app.containers[c].node] += ctr_demand[c];
    std::vector<double> squeeze(num_n, 1.0);
    for (std::size_t n = 0; n < num_n; ++n) {
      const double cores = app.nodes[n].cpu_cores;
      if (node_demand[n] > cores) squeeze[n] = cores / node_demand[n];
      node_cpu[n][t] =
          std::clamp(node_demand[n] / cores, 0.0, 1.0) * 100.0 *
          (1.0 + rng.normal(0.0, opts.noise));
    }

    // Per-service utilization & latency.
    for (std::size_t s = 0; s < num_s; ++s) {
      const ServiceSpec& spec = app.services[s];
      const ContainerSpec& ctr = app.containers[spec.container];
      const double capacity =
          ctr.cpu_limit_cores * squeeze[ctr.node];  // effective cores
      const double demand_cores = ctr_demand[spec.container];
      rho[s] = capacity > 1e-9 ? demand_cores / capacity : 10.0;
      // Two contention effects: queueing inside the container (rho), and CPU
      // starvation when the node is oversubscribed — every request on a
      // squeezed node receives fewer cycles/second, inflating service time
      // by 1/squeeze even for lightly loaded co-located containers.
      const double starvation = 1.0 / std::max(squeeze[ctr.node], 0.2);
      own_latency[s] = spec.base_latency_ms * queue_factor(rho[s]) *
                       starvation *
                       (1.0 + std::abs(rng.normal(0.0, opts.noise)));
      svc_rate[s][t] = rate[s] * (1.0 + rng.normal(0.0, opts.noise));
    }

    // End-to-end latency per service via the call graph: repeated relaxation
    // L(s) = own(s) + sum over callees fanout * L(callee). Call graphs are
    // DAGs so |V| passes converge.
    std::vector<double> total_latency = own_latency;
    for (std::size_t pass = 0; pass < num_s; ++pass) {
      bool changed = false;
      for (std::size_t s = 0; s < num_s; ++s) {
        double l = own_latency[s];
        for (const CallEdge& e : app.call_edges)
          if (e.caller == s) l += e.calls_per_request * total_latency[e.callee];
        if (std::abs(l - total_latency[s]) > 1e-9) changed = true;
        total_latency[s] = l;
      }
      if (!changed) break;
    }
    for (std::size_t s = 0; s < num_s; ++s) svc_latency[s][t] = total_latency[s];

    // Container metrics.
    for (std::size_t c = 0; c < num_c; ++c) {
      const ContainerSpec& spec = app.containers[c];
      const double util =
          ctr_demand[c] / std::max(spec.cpu_limit_cores, 1e-9);
      ctr_cpu[c][t] = std::clamp(util, 0.0, 1.5) * 100.0 *
                      (1.0 + rng.normal(0.0, opts.noise));
      double mem = 0.0, disk = 0.0, net = 0.0;
      for (std::size_t s = 0; s < num_s; ++s) {
        if (app.services[s].container != c) continue;
        mem += app.services[s].mem_base +
               app.services[s].mem_per_rps * rate[s];
        net += rate[s] * 0.01;  // ~10 KB per request
        disk += rate[s] * 0.002;
      }
      mem += pressure[c].mem_fraction;
      disk += pressure[c].disk_mbps;
      ctr_mem[c][t] = std::clamp(mem, 0.0, 1.2) * 100.0 *
                      (1.0 + rng.normal(0.0, opts.noise));
      ctr_disk[c][t] = disk * (1.0 + std::abs(rng.normal(0.0, opts.noise)));
      ctr_net[c][t] = net * (1.0 + rng.normal(0.0, opts.noise));
    }

    // Client-observed latency = entry service end-to-end latency (+ network).
    for (std::size_t cl = 0; cl < num_cl; ++cl) {
      const ServiceIdx entry = app.clients[cl].entry_service;
      cl_latency[cl][t] = total_latency[entry] + 0.5 +
                          std::abs(rng.normal(0.0, 0.2));
      cl_rate[cl][t] = app.clients[cl].rps_schedule[t];
    }
  }

  // --- write series into the db ---------------------------------------------
  auto& cat = db.catalog();
  const auto m_lat = cat.intern(telemetry::metrics::kLatency);
  const auto m_rate = cat.intern(telemetry::metrics::kRequestRate);
  const auto m_cpu = cat.intern(telemetry::metrics::kCpuUtil);
  const auto m_mem = cat.intern(telemetry::metrics::kMemUtil);
  const auto m_disk = cat.intern(telemetry::metrics::kDiskIo);
  const auto m_net = cat.intern(telemetry::metrics::kNetTx);

  for (std::size_t s = 0; s < num_s; ++s) {
    db.metrics().put(ents.services[s], m_lat, svc_latency[s]);
    db.metrics().put(ents.services[s], m_rate, svc_rate[s]);
  }
  for (std::size_t c = 0; c < num_c; ++c) {
    db.metrics().put(ents.containers[c], m_cpu, ctr_cpu[c]);
    db.metrics().put(ents.containers[c], m_mem, ctr_mem[c]);
    db.metrics().put(ents.containers[c], m_disk, ctr_disk[c]);
    db.metrics().put(ents.containers[c], m_net, ctr_net[c]);
  }
  for (std::size_t n = 0; n < num_n; ++n)
    db.metrics().put(ents.nodes[n], m_cpu, node_cpu[n]);
  for (std::size_t cl = 0; cl < num_cl; ++cl) {
    db.metrics().put(ents.clients[cl], m_lat, cl_latency[cl]);
    db.metrics().put(ents.clients[cl], m_rate, cl_rate[cl]);
  }

  result.client_latency = std::move(cl_latency);
  result.container_util = std::move(ctr_cpu);
  return result;
}

}  // namespace murphy::emulation
