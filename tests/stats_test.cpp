// Unit tests for the stats substrate: matrix kernels, summaries,
// correlations, t-tests and the four predictor families.
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/stats/correlation.h"
#include "src/stats/gmm.h"
#include "src/stats/matrix.h"
#include "src/stats/mlp.h"
#include "src/stats/predictor.h"
#include "src/stats/ridge.h"
#include "src/stats/summary.h"
#include "src/stats/svr.h"
#include "src/stats/ttest.h"
#include "src/stats/window_stats.h"

namespace murphy::stats {
namespace {

TEST(Matrix, IdentityAndMultiply) {
  Matrix id = Matrix::identity(3);
  Vector v{1.0, 2.0, 3.0};
  EXPECT_EQ(id.times(v), v);
  EXPECT_EQ(id.transpose_times(v), v);
}

TEST(Matrix, GramIsXtX) {
  Matrix x(2, 2);
  x.at(0, 0) = 1.0;
  x.at(0, 1) = 2.0;
  x.at(1, 0) = 3.0;
  x.at(1, 1) = 4.0;
  const Matrix g = x.gram();
  EXPECT_DOUBLE_EQ(g.at(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(g.at(0, 1), 14.0);
  EXPECT_DOUBLE_EQ(g.at(1, 0), 14.0);
  EXPECT_DOUBLE_EQ(g.at(1, 1), 20.0);
}

TEST(Matrix, CholeskySolvesSpdSystem) {
  // A = [[4,2],[2,3]], b = [2,1] -> x = [0.5, 0]
  Matrix a(2, 2);
  a.at(0, 0) = 4.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 3.0;
  const auto x = solve_spd(a, Vector{2.0, 1.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 0.5, 1e-12);
  EXPECT_NEAR((*x)[1], 0.0, 1e-12);
}

TEST(Matrix, CholeskyRejectsIndefinite) {
  Matrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 1.0;  // eigenvalues 3, -1
  EXPECT_FALSE(solve_spd(a, Vector{1.0, 1.0}).has_value());
}

TEST(Summary, WelfordMatchesBatch) {
  Rng rng(7);
  std::vector<double> xs;
  OnlineStats os;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(5.0, 2.0);
    xs.push_back(v);
    os.add(v);
  }
  EXPECT_NEAR(os.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(os.variance(), variance(xs), 1e-6);
}

TEST(Summary, QuantileInterpolates) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
}

TEST(Summary, ZscoreFlooredForConstantSeries) {
  EXPECT_LT(std::abs(zscore(5.0, 5.0, 0.0)), 1e-6);
  EXPECT_GT(zscore(6.0, 5.0, 0.0), 1.0);  // finite, not inf
  EXPECT_TRUE(std::isfinite(zscore(6.0, 5.0, 0.0)));
}

TEST(Summary, MaseZeroForPerfectPrediction) {
  std::vector<double> a{1.0, 3.0, 2.0, 5.0};
  EXPECT_DOUBLE_EQ(mase(a, a), 0.0);
}

TEST(Summary, MaseScalesByNaiveError) {
  std::vector<double> actual{0.0, 1.0, 0.0, 1.0};  // naive MAE = 1
  std::vector<double> pred{0.5, 0.5, 0.5, 0.5};    // MAE = 0.5
  EXPECT_NEAR(mase(pred, actual), 0.5, 1e-12);
}

TEST(Correlation, PerfectPositiveAndNegative) {
  std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  std::vector<double> y{2.0, 4.0, 6.0, 8.0};
  std::vector<double> z{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
}

TEST(Correlation, ConstantSeriesGivesZero) {
  std::vector<double> x{1.0, 1.0, 1.0};
  std::vector<double> y{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

TEST(Correlation, SpearmanRobustToMonotoneTransform) {
  Rng rng(3);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    const double v = rng.uniform(0.0, 4.0);
    x.push_back(v);
    y.push_back(std::exp(v));  // monotone nonlinear
  }
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-9);
  EXPECT_LT(pearson(x, y), 0.95);  // pearson under-reads the relationship
}

TEST(Correlation, AbnormalityCorrelationCatchesAntiMoving) {
  // Two series that become abnormal at the same times, in opposite raw
  // directions. Pearson is strongly negative; abnormality corr is positive.
  std::vector<double> x, y;
  for (int i = 0; i < 100; ++i) {
    const bool spike = (i % 25 == 0);
    x.push_back(spike ? 10.0 : 1.0 + 0.01 * (i % 5));
    y.push_back(spike ? -10.0 : -1.0 - 0.01 * ((i + 2) % 5));
  }
  EXPECT_LT(pearson(x, y), -0.9);
  EXPECT_GT(abnormality_correlation(x, y), 0.9);
}

TEST(TTest, DetectsMeanShift) {
  Rng rng(11);
  std::vector<double> lo, hi;
  for (int i = 0; i < 200; ++i) {
    lo.push_back(rng.normal(0.0, 1.0));
    hi.push_back(rng.normal(1.0, 1.0));
  }
  const auto r = welch_t_test(lo, hi);
  EXPECT_LT(r.p_less, 1e-6);
  const auto rev = welch_t_test(hi, lo);
  EXPECT_GT(rev.p_less, 1.0 - 1e-6);
}

TEST(TTest, NoShiftGivesLargePValue) {
  Rng rng(13);
  std::vector<double> a, b;
  for (int i = 0; i < 500; ++i) {
    a.push_back(rng.normal(3.0, 1.0));
    b.push_back(rng.normal(3.0, 1.0));
  }
  const auto r = welch_t_test(a, b);
  EXPECT_GT(r.p_two_sided, 0.01);
}

TEST(TTest, StudentTCdfMatchesKnownValues) {
  // t=0 -> 0.5 for any dof; large dof approximates the normal CDF.
  EXPECT_NEAR(student_t_cdf(0.0, 5.0), 0.5, 1e-12);
  EXPECT_NEAR(student_t_cdf(1.96, 1e6), 0.975, 1e-3);
  // Symmetry.
  EXPECT_NEAR(student_t_cdf(-2.0, 10.0) + student_t_cdf(2.0, 10.0), 1.0,
              1e-10);
}

TEST(TTest, DegenerateConstantSamples) {
  std::vector<double> a{1.0, 1.0, 1.0};
  std::vector<double> b{2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(welch_t_test(a, b).p_less, 0.0);
  EXPECT_DOUBLE_EQ(welch_t_test(b, a).p_less, 1.0);
  EXPECT_DOUBLE_EQ(welch_t_test(a, a).p_two_sided, 1.0);
}

TEST(TTest, TinySamplesGiveNeutralFiniteResult) {
  // n < 2 on either side is defined (no UB, no assert): the evidence-free
  // verdict — neutral p = 0.5, so a degenerate sample can never implicate.
  const std::vector<double> empty;
  const std::vector<double> one{3.0};
  const std::vector<double> many{1.0, 2.0, 3.0, 4.0};
  for (const auto* x : {&empty, &one}) {
    for (const auto* y : {&empty, &one, &many}) {
      const auto r = welch_t_test(*x, *y);
      EXPECT_TRUE(std::isfinite(r.t));
      EXPECT_DOUBLE_EQ(r.t, 0.0);
      EXPECT_DOUBLE_EQ(r.p_less, 0.5);
      EXPECT_DOUBLE_EQ(r.p_two_sided, 1.0);
    }
  }
  const auto r = welch_t_test(many, one);
  EXPECT_DOUBLE_EQ(r.p_less, 0.5);
  EXPECT_DOUBLE_EQ(r.p_two_sided, 1.0);
}

TEST(TTest, NonFiniteSamplesGiveNeutralFiniteResult) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> clean{1.0, 2.0, 3.0};
  for (const double poison : {nan, inf, -inf}) {
    const std::vector<double> bad{1.0, poison, 3.0};
    for (const auto& [x, y] : {std::pair{bad, clean}, std::pair{clean, bad},
                               std::pair{bad, bad}}) {
      const auto r = welch_t_test(x, y);
      EXPECT_TRUE(std::isfinite(r.t));
      EXPECT_TRUE(std::isfinite(r.dof));
      EXPECT_DOUBLE_EQ(r.p_less, 0.5);
      EXPECT_DOUBLE_EQ(r.p_two_sided, 1.0);
    }
  }
}

TEST(Correlation, RelativeToleranceKeepsTinyScaleSignal) {
  // Legitimately tiny-scale metrics (nanosecond fractions, error rates):
  // variance is far below the old absolute 1e-15 epsilon, but the columns
  // carry a real, perfect linear relationship. The scale-aware tolerance
  // must keep the signal instead of misclassifying the columns as constant.
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(1e-9 + 1e-11 * i);
    y.push_back(3e-9 + 2e-11 * i);
  }
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-9);
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-9);
}

TEST(Correlation, RelativeToleranceRejectsHugeScaleJitter) {
  // A huge-scale column that is constant up to ~1-ulp rounding jitter: its
  // absolute variance dwarfs 1e-15, so the old epsilon declared it
  // informative and correlations against it were rounding noise in [-1, 1].
  // Relative to the scale it is constant, so it must read as 0.
  const double base = 1.5e9;
  const double ulp = 2.220446049250313e-16;  // 2^-52
  std::vector<double> jitter, ramp;
  for (int i = 0; i < 60; ++i) {
    jitter.push_back(base * (1.0 + (i % 3 == 0 ? ulp : 0.0)));
    ramp.push_back(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(pearson(jitter, ramp), 0.0);
  EXPECT_DOUBLE_EQ(pearson(ramp, jitter), 0.0);
}

TEST(Correlation, NonFiniteInputsGiveZeroNotNaN) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> clean{1.0, 2.0, 3.0, 4.0};
  for (const double poison : {nan, inf, -inf}) {
    const std::vector<double> bad{1.0, poison, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(pearson(bad, clean), 0.0);
    EXPECT_DOUBLE_EQ(pearson(clean, bad), 0.0);
    // spearman sorts; a NaN would break strict weak ordering without the
    // rank-path sanitization — must return a finite correlation.
    EXPECT_TRUE(std::isfinite(spearman(bad, clean)));
    EXPECT_TRUE(std::isfinite(abnormality_correlation(bad, clean)));
  }
}

TEST(Correlation, CenteredKernelMatchesPearsonInBothToleranceRegimes) {
  // The cached kernel must make the exact same constancy decision as
  // pearson() at tiny and huge scales — the bit-identity contract.
  std::vector<double> tiny_x, tiny_y, huge_jitter, ramp;
  for (int i = 0; i < 50; ++i) {
    tiny_x.push_back(1e-9 + 1e-11 * i);
    tiny_y.push_back(3e-9 + 2e-11 * i);
    huge_jitter.push_back(1.5e9 *
                          (1.0 + (i % 3 == 0 ? 2.220446049250313e-16 : 0.0)));
    ramp.push_back(static_cast<double>(i));
  }
  const auto check = [](const std::vector<double>& x,
                        const std::vector<double>& y) {
    const ColumnMoments mx = build_column_moments(x);
    const ColumnMoments my = build_column_moments(y);
    EXPECT_EQ(pearson_centered(mx.centered, mx.sxx, mx.mean, my.centered,
                               my.sxx, my.mean),
              pearson(x, y));
  };
  check(tiny_x, tiny_y);
  check(huge_jitter, ramp);
  check(ramp, huge_jitter);
}

TEST(WindowStatsHardening, NonFiniteValuesDegradeToMissingFallback) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const ColumnMoments m =
      build_column_moments({1.0, nan, 3.0, std::numeric_limits<double>::infinity()});
  // The poisoned slices read as 0.0 (the missing-value fallback), so every
  // moment is finite and matches the sanitized column.
  const std::vector<double> sanitized{1.0, 0.0, 3.0, 0.0};
  EXPECT_EQ(m.values, sanitized);
  EXPECT_EQ(m.mean, mean(sanitized));
  EXPECT_TRUE(std::isfinite(m.sxx));
  EXPECT_TRUE(std::isfinite(m.sigma));
}

TEST(RidgeHardening, NonFiniteCellsDegradeInsteadOfPoisoningFit) {
  // One NaN design cell and one Inf target: the fit must stay finite and
  // match the fit over the 0.0-sanitized copy bit for bit.
  Matrix x(4, 1), xs(4, 1);
  Vector y{1.0, 2.0, std::numeric_limits<double>::infinity(), 4.0};
  Vector ys{1.0, 2.0, 0.0, 4.0};
  const double vals[4] = {1.0, 2.0, 3.0, 4.0};
  for (std::size_t i = 0; i < 4; ++i) x.at(i, 0) = xs.at(i, 0) = vals[i];
  x.at(1, 0) = std::numeric_limits<double>::quiet_NaN();
  xs.at(1, 0) = 0.0;

  RidgeRegression poisoned(0.1), sanitized(0.1);
  poisoned.fit(x, y);
  sanitized.fit(xs, ys);
  const std::vector<double> probe{2.5};
  EXPECT_TRUE(std::isfinite(poisoned.predict(probe)));
  EXPECT_EQ(poisoned.predict(probe), sanitized.predict(probe));
  EXPECT_EQ(poisoned.residual_sigma(), sanitized.residual_sigma());
}

// Shared fixture: y = 2*x0 - 3*x1 + 5 + noise.
class LinearRecovery : public ::testing::TestWithParam<ModelKind> {
 protected:
  void make_data(std::size_t n, Matrix& x, Vector& y, double noise_sd) {
    Rng rng(42);
    x = Matrix(n, 2);
    y.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      x.at(i, 0) = rng.uniform(0.0, 10.0);
      x.at(i, 1) = rng.uniform(-5.0, 5.0);
      y[i] = 2.0 * x.at(i, 0) - 3.0 * x.at(i, 1) + 5.0 +
             rng.normal(0.0, noise_sd);
    }
  }
};

TEST_P(LinearRecovery, PredictsHeldOutPoints) {
  Matrix x;
  Vector y;
  make_data(300, x, y, 0.1);
  PredictorOptions opts;
  opts.mlp_epochs = 400;
  opts.gmm_components = 12;
  auto model = make_predictor(GetParam(), opts);
  model->fit(x, y);

  Rng rng(99);
  double worst = 0.0;
  for (int i = 0; i < 50; ++i) {
    const double x0 = rng.uniform(1.0, 9.0);
    const double x1 = rng.uniform(-4.0, 4.0);
    const double truth = 2.0 * x0 - 3.0 * x1 + 5.0;
    const double pred = model->predict(std::vector<double>{x0, x1});
    worst = std::max(worst, std::abs(pred - truth));
  }
  // Ridge is near-exact. A diagonal-covariance GMM approximates a linear
  // surface piecewise-constantly, so its worst-case error is structurally
  // larger (this is exactly why the paper's Fig. 8a prefers ridge).
  const double budget = GetParam() == ModelKind::kRidge  ? 0.2
                        : GetParam() == ModelKind::kGmm ? 15.0
                                                        : 6.0;
  EXPECT_LT(worst, budget);
}

TEST_P(LinearRecovery, ResidualSigmaTracksNoise) {
  Matrix x;
  Vector y;
  make_data(400, x, y, 2.0);
  PredictorOptions opts;
  auto model = make_predictor(GetParam(), opts);
  model->fit(x, y);
  // All models should report sigma >= the irreducible noise scale and not
  // wildly above the raw stddev of y.
  EXPECT_GT(model->residual_sigma(), 0.5);
  EXPECT_LT(model->residual_sigma(), stddev(y) * 1.5);
}

INSTANTIATE_TEST_SUITE_P(AllModels, LinearRecovery,
                         ::testing::Values(ModelKind::kRidge, ModelKind::kGmm,
                                           ModelKind::kSvr, ModelKind::kMlp),
                         [](const auto& info) {
                           return std::string(model_kind_name(info.param));
                         });

TEST(Ridge, HandlesConstantColumn) {
  Matrix x(50, 2);
  Vector y(50);
  Rng rng(5);
  for (std::size_t i = 0; i < 50; ++i) {
    x.at(i, 0) = rng.uniform(0.0, 1.0);
    x.at(i, 1) = 7.0;  // constant
    y[i] = 3.0 * x.at(i, 0) + 1.0;
  }
  RidgeRegression m(0.1);
  m.fit(x, y);
  const double pred = m.predict(std::vector<double>{0.5, 7.0});
  EXPECT_NEAR(pred, 2.5, 0.1);
}

TEST(Ridge, HandlesMoreFeaturesThanRows) {
  // n=5, p=8: normal equations are singular without the ridge term.
  Matrix x(5, 8);
  Vector y(5);
  Rng rng(17);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 8; ++j) x.at(i, j) = rng.uniform(0.0, 1.0);
    y[i] = x.at(i, 0);
  }
  RidgeRegression m(1.0);
  m.fit(x, y);  // must not crash / produce NaN
  const double pred = m.predict(std::vector<double>(8, 0.5));
  EXPECT_TRUE(std::isfinite(pred));
}

TEST(Ridge, ShrinksWithStrongRegularization) {
  Matrix x(100, 1);
  Vector y(100);
  Rng rng(23);
  for (std::size_t i = 0; i < 100; ++i) {
    x.at(i, 0) = rng.uniform(-1.0, 1.0);
    y[i] = 10.0 * x.at(i, 0);
  }
  RidgeRegression weak(0.001), strong(1e5);
  weak.fit(x, y);
  strong.fit(x, y);
  EXPECT_GT(std::abs(weak.standardized_weights()[0]),
            std::abs(strong.standardized_weights()[0]) * 2.0);
}


TEST(Ridge, WeightedFitTracksRecentRegime) {
  // The relationship changes mid-window: old regime y = 2x, recent y = 5x.
  // Uniform fit lands in between; recency weighting tracks the new slope.
  Rng rng(61);
  Matrix x(200, 1);
  Vector y(200);
  for (std::size_t i = 0; i < 200; ++i) {
    x.at(i, 0) = rng.uniform(0.0, 10.0);
    const double slope = i < 150 ? 2.0 : 5.0;
    y[i] = slope * x.at(i, 0) + rng.normal(0.0, 0.2);
  }
  RidgeRegression uniform(1.0);
  uniform.fit(x, y);
  RidgeRegression recent(1.0);
  Vector w(200);
  for (std::size_t i = 0; i < 200; ++i)
    w[i] = std::pow(0.5, static_cast<double>(199 - i) / 20.0);
  recent.fit_weighted(x, y, w);

  const std::vector<double> probe{8.0};
  const double u = uniform.predict(probe);
  const double r = recent.predict(probe);
  EXPECT_NEAR(r, 40.0, 4.0);            // tracks the fresh regime
  EXPECT_LT(u, r - 5.0);                // uniform lags behind
}

TEST(Ridge, UniformWeightsMatchUnweightedFit) {
  Rng rng(62);
  Matrix x(100, 2);
  Vector y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    x.at(i, 0) = rng.uniform(-1.0, 1.0);
    x.at(i, 1) = rng.uniform(-1.0, 1.0);
    y[i] = 3.0 * x.at(i, 0) - x.at(i, 1) + rng.normal(0.0, 0.1);
  }
  RidgeRegression a(1.0), b(1.0);
  a.fit(x, y);
  b.fit_weighted(x, y, Vector(100, 1.0));
  const std::vector<double> probe{0.3, -0.4};
  EXPECT_NEAR(a.predict(probe), b.predict(probe), 1e-9);
}

TEST(Ridge, ZeroWeightRowsAreIgnored) {
  Matrix x(4, 1);
  Vector y(4);
  // Two "real" points on y = x and two poisoned points with zero weight.
  x.at(0, 0) = 1.0; y[0] = 1.0;
  x.at(1, 0) = 3.0; y[1] = 3.0;
  x.at(2, 0) = 2.0; y[2] = 500.0;
  x.at(3, 0) = 2.5; y[3] = -700.0;
  RidgeRegression m(0.01);
  m.fit_weighted(x, y, Vector{1.0, 1.0, 0.0, 0.0});
  EXPECT_NEAR(m.predict(std::vector<double>{2.0}), 2.0, 0.3);
}

TEST(Gmm, SeparatesBimodalConditional) {
  // Two clusters: x near 0 -> y near 0; x near 10 -> y near 100.
  Rng rng(31);
  Matrix x(200, 1);
  Vector y(200);
  for (std::size_t i = 0; i < 200; ++i) {
    if (i % 2 == 0) {
      x.at(i, 0) = rng.normal(0.0, 0.5);
      y[i] = rng.normal(0.0, 1.0);
    } else {
      x.at(i, 0) = rng.normal(10.0, 0.5);
      y[i] = rng.normal(100.0, 1.0);
    }
  }
  GmmRegressor m(2, 7);
  m.fit(x, y);
  EXPECT_NEAR(m.predict(std::vector<double>{0.0}), 0.0, 5.0);
  EXPECT_NEAR(m.predict(std::vector<double>{10.0}), 100.0, 5.0);
}

TEST(Gmm, CapsComponentsForTinyData) {
  Matrix x(6, 1);
  Vector y(6);
  for (std::size_t i = 0; i < 6; ++i) {
    x.at(i, 0) = static_cast<double>(i);
    y[i] = static_cast<double>(i);
  }
  GmmRegressor m(8, 3);  // more components than data supports
  m.fit(x, y);
  EXPECT_LE(m.num_components(), 1);
  EXPECT_TRUE(std::isfinite(m.predict(std::vector<double>{2.0})));
}

TEST(Mlp, LearnsNonlinearFunction) {
  // y = x^2 on [-2, 2]; linear models can't represent this.
  Rng rng(41);
  Matrix x(400, 1);
  Vector y(400);
  for (std::size_t i = 0; i < 400; ++i) {
    x.at(i, 0) = rng.uniform(-2.0, 2.0);
    y[i] = x.at(i, 0) * x.at(i, 0);
  }
  MlpRegressor m(2, 8, 600, 0.02, 5);
  m.fit(x, y);
  EXPECT_NEAR(m.predict(std::vector<double>{0.0}), 0.0, 0.5);
  EXPECT_NEAR(m.predict(std::vector<double>{1.5}), 2.25, 0.6);

  RidgeRegression lin(0.1);
  lin.fit(x, y);
  const double mlp_err =
      std::abs(m.predict(std::vector<double>{1.5}) - 2.25) +
      std::abs(m.predict(std::vector<double>{0.0}) - 0.0);
  const double lin_err =
      std::abs(lin.predict(std::vector<double>{1.5}) - 2.25) +
      std::abs(lin.predict(std::vector<double>{0.0}) - 0.0);
  EXPECT_LT(mlp_err, lin_err);
}

TEST(Svr, IgnoresSmallErrorsInsideTube) {
  // With a huge epsilon the SVR should stay at the mean model.
  Rng rng(51);
  Matrix x(100, 1);
  Vector y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    x.at(i, 0) = rng.uniform(0.0, 1.0);
    y[i] = 2.0 + 0.01 * x.at(i, 0);
  }
  LinearSvr m(1.0, /*epsilon=*/100.0, 50, 3);
  m.fit(x, y);
  EXPECT_NEAR(m.predict(std::vector<double>{0.5}), 2.0, 0.2);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, ForkDecorrelates) {
  Rng a(123);
  Rng child = a.fork();
  // Streams should differ immediately.
  Rng a2(123);
  (void)a2();  // advance like `a` did in fork()
  EXPECT_NE(child(), a2());
}

TEST(Rng, UniformBelowIsInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(77);
  OnlineStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.normal(2.0, 3.0));
  EXPECT_NEAR(s.mean(), 2.0, 0.1);
  EXPECT_NEAR(s.stddev(), 3.0, 0.1);
}

// ---------- window moment cache --------------------------------------------

// Two correlated columns with a few exact ties (so midranks average).
std::pair<std::vector<double>, std::vector<double>> make_test_columns() {
  Rng rng(123);
  std::vector<double> x(64), y(64);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(0.2 * static_cast<double>(i)) + rng.normal(0.0, 0.4);
    y[i] = 1.7 * x[i] + rng.normal(0.0, 0.6);
  }
  x[10] = x[30];  // exact ties exercise the midrank path
  y[5] = y[41];
  return {x, y};
}

TEST(WindowStats, ColumnMomentsReproduceSummariesBitwise) {
  const auto [x, y] = make_test_columns();
  const ColumnMoments mx = build_column_moments(x);
  const ColumnMoments my = build_column_moments(y);
  // EXPECT_EQ on double demands exact (bitwise for non-NaN) equality.
  EXPECT_EQ(mx.mean, mean(x));
  EXPECT_EQ(mx.sigma, stddev(x));
  EXPECT_EQ(pearson_centered(mx.centered, mx.sxx, mx.mean, my.centered,
                             my.sxx, my.mean),
            pearson(x, y));
}

TEST(WindowStats, DegenerateColumnsMatchUncachedConventions) {
  const ColumnMoments one = build_column_moments({42.0});
  EXPECT_EQ(one.sigma, 0.0);  // n < 2: stddev() returns 0
  const ColumnMoments flat = build_column_moments({3.0, 3.0, 3.0});
  const ColumnMoments ramp = build_column_moments({1.0, 2.0, 3.0});
  // Constant column: pearson() returns 0, and so must the kernel.
  EXPECT_EQ(pearson_centered(flat.centered, flat.sxx, flat.mean,
                             ramp.centered, ramp.sxx, ramp.mean),
            0.0);
}

TEST(WindowStats, RankAndAbnormalityKernelsMatchUncached) {
  const auto [x, y] = make_test_columns();
  WindowStats ws;
  ws.reset(1);
  const ColumnMoments& mx = ws.with_ranks(1, [&] { return x; });
  const ColumnMoments& my = ws.with_ranks(2, [&] { return y; });
  EXPECT_EQ(pearson_centered(mx.rank_centered, mx.rank_sxx, mx.rank_mean,
                             my.rank_centered, my.rank_sxx, my.rank_mean),
            spearman(x, y));
  const ColumnMoments& ax = ws.with_abnormality(1, [&] { return x; });
  const ColumnMoments& ay = ws.with_abnormality(2, [&] { return y; });
  EXPECT_EQ(pearson_centered(ax.abn_centered, ax.abn_sxx, ax.abn_mean,
                             ay.abn_centered, ay.abn_sxx, ay.abn_mean),
            abnormality_correlation(x, y));
}

TEST(WindowStats, GenerationResetInvalidatesOnWindowShift) {
  WindowStats ws;
  ws.reset(/*fingerprint=*/10);
  std::size_t loads = 0;
  const auto loader = [&] {
    ++loads;
    return std::vector<double>{1.0, 2.0, 3.0};
  };
  (void)ws.get_or_build(7, loader);
  (void)ws.get_or_build(7, loader);
  EXPECT_EQ(loads, 1u);  // second lookup hits
  EXPECT_EQ(ws.misses(), 1u);
  EXPECT_EQ(ws.hits(), 1u);

  ws.reset(10);  // same generation: cache survives
  (void)ws.get_or_build(7, loader);
  EXPECT_EQ(loads, 1u);

  ws.reset(11);  // window shifted (or data version bumped): cache dropped
  (void)ws.get_or_build(7, loader);
  EXPECT_EQ(loads, 2u);
  EXPECT_EQ(ws.fingerprint(), 11u);
}

}  // namespace
}  // namespace murphy::stats
