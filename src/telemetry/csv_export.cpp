#include "src/telemetry/csv_export.h"

#include <fstream>

#include "src/common/strings.h"

namespace murphy::telemetry {
namespace {

// CSV-escapes a field (quotes when it contains a comma or quote).
std::string field(std::string_view s) {
  if (s.find(',') == std::string_view::npos &&
      s.find('"') == std::string_view::npos)
    return std::string(s);
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void export_entities_csv(const MonitoringDb& db, std::ostream& out) {
  out << "entity_id,type,name,app\n";
  for (const EntityId id : db.all_entities()) {
    const EntityInfo& info = db.entity(id);
    out << id.value() << ',' << entity_type_name(info.type) << ','
        << field(info.name) << ','
        << (info.app.valid() ? field(db.app(info.app).name) : "") << '\n';
  }
}

void export_associations_csv(const MonitoringDb& db, std::ostream& out) {
  out << "entity_a,entity_b,kind,directed\n";
  for (std::size_t i = 0; i < db.association_count(); ++i) {
    const Association& a = db.association(i);
    out << a.a.value() << ',' << a.b.value() << ','
        << relation_kind_name(a.kind) << ',' << (a.directed ? 1 : 0) << '\n';
  }
}

void export_metrics_csv(const MonitoringDb& db, std::ostream& out) {
  out << "entity_id,metric,slice,value,valid\n";
  for (const EntityId id : db.all_entities()) {
    for (const MetricKindId kind : db.metrics().kinds_of(id)) {
      const TimeSeries* ts = db.metrics().find(id, kind);
      if (ts == nullptr) continue;
      const auto name = db.catalog().name(kind);
      for (TimeIndex t = 0; t < ts->size(); ++t) {
        out << id.value() << ',' << name << ',' << t << ','
            << format_double(ts->value(t), 6) << ','
            << (ts->is_valid(t) ? 1 : 0) << '\n';
      }
    }
  }
}

bool export_csv(const MonitoringDb& db, const std::string& path_prefix) {
  {
    std::ofstream f(path_prefix + "_entities.csv");
    if (!f) return false;
    export_entities_csv(db, f);
  }
  {
    std::ofstream f(path_prefix + "_associations.csv");
    if (!f) return false;
    export_associations_csv(db, f);
  }
  {
    std::ofstream f(path_prefix + "_metrics.csv");
    if (!f) return false;
    export_metrics_csv(db, f);
  }
  return true;
}

}  // namespace murphy::telemetry
